//===- tests/TestIR.cpp - IR data structures ----------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace ipas;

TEST(Type, WidthsAndBytes) {
  EXPECT_EQ(types::Void.bits(), 0u);
  EXPECT_EQ(types::I1.bits(), 1u);
  EXPECT_EQ(types::I64.bits(), 64u);
  EXPECT_EQ(types::F64.bits(), 64u);
  EXPECT_EQ(types::Ptr.bits(), 64u);
  EXPECT_EQ(types::I1.bytes(), 1u);
  EXPECT_EQ(types::I64.bytes(), 8u);
  EXPECT_EQ(types::Void.bytes(), 0u);
}

TEST(Module, ConstantInterning) {
  Module M("m");
  EXPECT_EQ(M.getInt64(7), M.getInt64(7));
  EXPECT_NE(M.getInt64(7), M.getInt64(8));
  EXPECT_EQ(M.getFloat(1.5), M.getFloat(1.5));
  // -0.0 and 0.0 are distinct bit patterns and intern separately.
  EXPECT_NE(M.getFloat(0.0), M.getFloat(-0.0));
  EXPECT_NE(static_cast<Value *>(M.getInt64(0)),
            static_cast<Value *>(M.getNullPtr()));
}

namespace {

/// Builds: f(a, b) { entry: c = a + b; d = c * a; ret d }
struct SimpleFn {
  Module M{"m"};
  Function *F;
  BasicBlock *Entry;
  Value *C, *D;

  SimpleFn() {
    F = M.createFunction("f", types::I64, {types::I64, types::I64});
    Entry = F->addBlock("entry");
    IRBuilder B(M);
    B.setInsertPoint(Entry);
    C = B.createAdd(F->arg(0), F->arg(1));
    D = B.createMul(C, F->arg(0));
    B.createRet(D);
    M.renumber();
  }
};

} // namespace

TEST(IR, UseDefChains) {
  SimpleFn S;
  // a is used by c (add) and d (mul).
  EXPECT_EQ(S.F->arg(0)->users().size(), 2u);
  EXPECT_EQ(S.F->arg(1)->users().size(), 1u);
  EXPECT_EQ(S.C->users().size(), 1u);
  EXPECT_EQ(S.C->users()[0], S.D);
  // d is used by ret.
  ASSERT_EQ(S.D->users().size(), 1u);
  EXPECT_EQ(S.D->users()[0]->opcode(), Opcode::Ret);
}

TEST(IR, ReplaceAllUsesWith) {
  SimpleFn S;
  Value *Seven = S.M.getInt64(7);
  S.C->replaceAllUsesWith(Seven);
  EXPECT_FALSE(S.C->hasUses());
  auto *Mul = cast<Instruction>(S.D);
  EXPECT_EQ(Mul->operand(0), Seven);
}

TEST(IR, SetOperandMaintainsUseLists) {
  SimpleFn S;
  auto *Mul = cast<Instruction>(S.D);
  size_t AUses = S.F->arg(0)->users().size();
  Mul->setOperand(1, S.F->arg(1));
  EXPECT_EQ(S.F->arg(0)->users().size(), AUses - 1);
  EXPECT_EQ(S.F->arg(1)->users().size(), 2u);
}

TEST(IR, DuplicateOperandUsesCountTwice) {
  Module M("m");
  Function *F = M.createFunction("g", types::I64, {types::I64});
  BasicBlock *BB = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *Sq = B.createMul(F->arg(0), F->arg(0));
  B.createRet(Sq);
  EXPECT_EQ(F->arg(0)->users().size(), 2u);
}

TEST(IR, CloneSharesOperands) {
  SimpleFn S;
  auto *Mul = cast<Instruction>(S.D);
  std::unique_ptr<Instruction> Clone(Mul->clone());
  EXPECT_EQ(Clone->opcode(), Opcode::Mul);
  EXPECT_EQ(Clone->operand(0), S.C);
  EXPECT_EQ(Clone->operand(1), S.F->arg(0));
  // The clone registered itself as a user.
  EXPECT_EQ(S.C->users().size(), 2u);
  Clone->dropAllReferences();
  EXPECT_EQ(S.C->users().size(), 1u);
}

TEST(IR, InsertBeforeAfterAndIndexOf) {
  SimpleFn S;
  auto *CInst = cast<Instruction>(S.C);
  auto *New = new BinaryInst(Opcode::Sub, S.F->arg(0), S.F->arg(1));
  S.Entry->insertAfter(CInst, std::unique_ptr<Instruction>(New));
  EXPECT_EQ(S.Entry->indexOf(New), 1u);
  EXPECT_EQ(S.Entry->size(), 4u);
  EXPECT_EQ(S.Entry->at(0), CInst);
}

TEST(IR, TerminatorAndSuccessors) {
  Module M("m");
  Function *F = M.createFunction("h", types::Void, {types::I1});
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *T = F->addBlock("t");
  BasicBlock *E = F->addBlock("e");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createCondBr(F->arg(0), T, E);
  B.setInsertPoint(T);
  B.createRet();
  B.setInsertPoint(E);
  B.createRet();
  auto Succs = Entry->successors();
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0], T);
  EXPECT_EQ(Succs[1], E);
  auto Preds = F->predecessors(T);
  ASSERT_EQ(Preds.size(), 1u);
  EXPECT_EQ(Preds[0], Entry);
  EXPECT_EQ(T->terminator()->opcode(), Opcode::Ret);
}

TEST(IR, PhiIncoming) {
  Module M("m");
  Function *F = M.createFunction("p", types::I64, {types::I1});
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *A = F->addBlock("a");
  BasicBlock *Bb = F->addBlock("b");
  BasicBlock *Merge = F->addBlock("merge");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createCondBr(F->arg(0), A, Bb);
  B.setInsertPoint(A);
  B.createBr(Merge);
  B.setInsertPoint(Bb);
  B.createBr(Merge);
  B.setInsertPoint(Merge);
  PhiInst *Phi = B.createPhi(types::I64, "x");
  Phi->addIncoming(M.getInt64(1), A);
  Phi->addIncoming(M.getInt64(2), Bb);
  B.createRet(Phi);
  EXPECT_EQ(Phi->numIncoming(), 2u);
  EXPECT_EQ(cast<ConstantInt>(Phi->incomingValueFor(A))->value(), 1);
  EXPECT_EQ(cast<ConstantInt>(Phi->incomingValueFor(Bb))->value(), 2);
  EXPECT_EQ(Phi->incomingValueFor(Entry), nullptr);
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(IR, CastRtti) {
  SimpleFn S;
  Value *V = S.C;
  EXPECT_TRUE(isa<Instruction>(V));
  EXPECT_TRUE(isa<BinaryInst>(V));
  EXPECT_FALSE(isa<CmpInst>(V));
  EXPECT_NE(dyn_cast<BinaryInst>(V), nullptr);
  EXPECT_EQ(dyn_cast<PhiInst>(V), nullptr);
  EXPECT_FALSE(isa<Instruction>(static_cast<Value *>(S.F->arg(0))));
}

TEST(Verifier, DetectsMissingTerminator) {
  Module M("m");
  Function *F = M.createFunction("f", types::Void, {});
  BasicBlock *BB = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createAdd(M.getInt64(1), M.getInt64(2));
  auto Errs = verifyModule(M);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("terminator"), std::string::npos);
}

TEST(Verifier, DetectsRetTypeMismatch) {
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {});
  BasicBlock *BB = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createRet(M.getFloat(1.0));
  auto Errs = verifyFunction(*F);
  ASSERT_FALSE(Errs.empty());
}

TEST(Verifier, DetectsUseBeforeDef) {
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {types::I64});
  BasicBlock *BB = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *X = B.createAdd(F->arg(0), F->arg(0));
  Value *Y = B.createMul(X, F->arg(0));
  B.createRet(Y);
  // Move the mul before the add: now it uses a later definition.
  auto *MulI = cast<Instruction>(Y);
  std::unique_ptr<Instruction> Owned = BB->remove(MulI);
  BB->insertBefore(cast<Instruction>(X), std::move(Owned));
  auto Errs = verifyFunction(*F);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("dominated"), std::string::npos);
}

TEST(Verifier, AcceptsWellFormedFunction) {
  SimpleFn S;
  EXPECT_TRUE(verifyModule(S.M).empty());
}

TEST(Printer, RendersInstructionsAndBlocks) {
  SimpleFn S;
  std::string Text = printFunction(*S.F);
  EXPECT_NE(Text.find("define i64 @f"), std::string::npos);
  EXPECT_NE(Text.find("entry:"), std::string::npos);
  EXPECT_NE(Text.find("add"), std::string::npos);
  EXPECT_NE(Text.find("mul"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
}

TEST(Printer, RendersCallAndCheck) {
  Module M("m");
  Function *Callee = M.createFunction("callee", types::F64, {types::F64});
  {
    IRBuilder B(M);
    B.setInsertPoint(Callee->addBlock("entry"));
    B.createRet(Callee->arg(0));
  }
  Function *F = M.createFunction("f", types::F64, {types::F64});
  IRBuilder B(M);
  B.setInsertPoint(F->addBlock("entry"));
  Value *C = B.createCall(Callee, {F->arg(0)});
  Value *C2 = B.createCall(Callee, {F->arg(0)});
  B.insertBlock()->append(std::make_unique<CheckInst>(C, C2));
  B.createRet(C);
  std::string Text = printFunction(*F);
  EXPECT_NE(Text.find("call @callee"), std::string::npos);
  EXPECT_NE(Text.find("soc.check"), std::string::npos);
}

TEST(Module, RenumberAssignsSequentialIds) {
  SimpleFn S;
  std::vector<Instruction *> All = S.M.renumber();
  ASSERT_EQ(All.size(), 3u);
  for (unsigned I = 0; I != All.size(); ++I)
    EXPECT_EQ(All[I]->id(), I);
  EXPECT_EQ(S.M.numInstructions(), 3u);
}

TEST(Intrinsics, NameRoundTrip) {
  for (Intrinsic I :
       {Intrinsic::Sqrt, Intrinsic::Malloc, Intrinsic::MpiRank,
        Intrinsic::MpiAlltoallD, Intrinsic::RandSeed}) {
    EXPECT_EQ(intrinsicByName(intrinsicName(I)), I);
  }
  EXPECT_EQ(intrinsicByName("definitely_not_an_intrinsic"),
            Intrinsic::None);
}

TEST(Intrinsics, MpiClassification) {
  EXPECT_TRUE(isMpiIntrinsic(Intrinsic::MpiBarrier));
  EXPECT_TRUE(isMpiIntrinsic(Intrinsic::MpiAllreduceSumD));
  EXPECT_FALSE(isMpiIntrinsic(Intrinsic::Sqrt));
  EXPECT_FALSE(isMpiIntrinsic(Intrinsic::MpiRank)); // resolves locally
}

TEST(Verifier, AcceptsWellFormedSocCheck) {
  Module M("m");
  Function *F = M.createFunction("f", types::Void, {types::I64});
  BasicBlock *BB = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *V = B.createAdd(F->arg(0), M.getInt64(1));
  Value *V2 = B.createAdd(F->arg(0), M.getInt64(1));
  BB->append(std::make_unique<CheckInst>(V, V2));
  B.createRet();
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(Verifier, DetectsSocCheckArityMismatch) {
  Module M("m");
  Function *F = M.createFunction("f", types::Void, {types::I64});
  BasicBlock *BB = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *V = B.createAdd(F->arg(0), M.getInt64(1));
  auto *Check = static_cast<Instruction *>(
      BB->append(std::make_unique<CheckInst>(V, V)));
  B.createRet();
  EXPECT_TRUE(verifyFunction(*F).empty());
  // Simulate a broken mutation stripping the operands: release builds
  // (asserts off) must still catch this in the verifier.
  Check->dropAllReferences();
  auto Errs = verifyFunction(*F);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("soc.check arity mismatch"), std::string::npos);
}
