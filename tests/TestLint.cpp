//===- tests/TestLint.cpp - ipas-lint protection-invariant tests --------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Each test seeds exactly one class of protection damage into a freshly
/// duplicated module and asserts that ipas-lint reports exactly the seeded
/// violations — detection without false positives is the whole point of
/// the checker.
///
//===----------------------------------------------------------------------===//

#include "analysis/ProtectionLint.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "transform/Duplication.h"

#include <gtest/gtest.h>

using namespace ipas;

namespace {

/// f(a, b) = (a + b) * 2, fully duplicated. The mul is the only path end,
/// so duplication inserts exactly one soc.check (on mul), and the add is
/// covered transitively through the shadow chain.
struct ProtectedFn {
  Module M{"m"};
  Function *F = nullptr;
  BasicBlock *BB = nullptr;
  Instruction *Add = nullptr, *Mul = nullptr;
  Instruction *AddShadow = nullptr, *MulShadow = nullptr;
  CheckInst *Check = nullptr;

  ProtectedFn() {
    F = M.createFunction("f", types::I64, {types::I64, types::I64});
    BB = F->addBlock("entry");
    IRBuilder B(M);
    B.setInsertPoint(BB);
    Add = cast<Instruction>(B.createAdd(F->arg(0), F->arg(1)));
    Mul = cast<Instruction>(B.createMul(Add, M.getInt64(2)));
    B.createRet(Mul);
    duplicateAllInstructions(M);
    M.renumber();
    for (Instruction *I : *BB) {
      if (I->dupRole() == DupRole::Shadow && I->dupLink() == Add)
        AddShadow = I;
      if (I->dupRole() == DupRole::Shadow && I->dupLink() == Mul)
        MulShadow = I;
      if (auto *C = dyn_cast<CheckInst>(I))
        Check = C;
    }
  }
};

std::vector<LintViolation> lintFull(const Module &M) {
  LintOptions Opts;
  Opts.ExpectFullDuplication = true;
  return lintProtectedModule(M, Opts);
}

} // namespace

TEST(Lint, CleanProtectedModuleHasNoViolations) {
  ProtectedFn P;
  ASSERT_NE(P.AddShadow, nullptr);
  ASSERT_NE(P.MulShadow, nullptr);
  ASSERT_NE(P.Check, nullptr);
  EXPECT_TRUE(verifyModule(P.M).empty());
  EXPECT_TRUE(lintFull(P.M).empty());
}

TEST(Lint, DeletedCheckUncoversWholeDuplicationPath) {
  ProtectedFn P;
  ASSERT_NE(P.Check, nullptr);
  P.BB->erase(P.Check);
  // Both originals on the now check-less path are uncovered: the mul that
  // was checked directly and the add that was covered through the chain.
  std::vector<LintViolation> Vs = lintFull(P.M);
  ASSERT_EQ(Vs.size(), 2u);
  EXPECT_EQ(Vs[0].Rule, LintRule::UncoveredOriginal);
  EXPECT_EQ(Vs[1].Rule, LintRule::UncoveredOriginal);
}

TEST(Lint, ShadowFlowingIntoOriginalIsReported) {
  ProtectedFn P;
  ASSERT_NE(P.AddShadow, nullptr);
  // Reroute the original mul to consume the shadow add. Coverage and the
  // shadow's own operands are untouched, so R2 must be the only report.
  P.Mul->setOperand(0, P.AddShadow);
  std::vector<LintViolation> Vs = lintFull(P.M);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Rule, LintRule::ShadowEscapes);
  EXPECT_EQ(Vs[0].FunctionName, "f");
}

TEST(Lint, CrossedShadowEdgeIsReported) {
  ProtectedFn P;
  ASSERT_NE(P.MulShadow, nullptr);
  // The shadow mul recomputes from the *original* add: faults in the add
  // no longer skew the comparison, so the add also loses coverage.
  P.MulShadow->setOperand(0, P.Add);
  std::vector<LintViolation> Vs = lintFull(P.M);
  ASSERT_EQ(Vs.size(), 2u);
  bool SawWrongOperand = false, SawUncovered = false;
  for (const LintViolation &V : Vs) {
    SawWrongOperand |= V.Rule == LintRule::WrongShadowOperand;
    SawUncovered |= V.Rule == LintRule::UncoveredOriginal;
  }
  EXPECT_TRUE(SawWrongOperand);
  EXPECT_TRUE(SawUncovered);
}

TEST(Lint, StrippedDuplicationStampIsReported) {
  ProtectedFn P;
  // Simulate a pass dropping provenance: the add looks like a
  // selected-but-unduplicated instruction under full duplication.
  P.Add->setDupRole(DupRole::None);
  P.Add->setDupLink(nullptr);
  std::vector<LintViolation> Vs = lintFull(P.M);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Rule, LintRule::Unduplicated);
}

TEST(Lint, UnprotectedModuleFailsOnlyUnderFullDuplicationExpectation) {
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {types::I64});
  BasicBlock *BB = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *V = B.createAdd(F->arg(0), M.getInt64(1));
  B.createRet(V);
  M.renumber();
  // Without the expectation an unprotected module is fine (predicate
  // selection may legitimately leave instructions unduplicated).
  EXPECT_TRUE(lintProtectedModule(M).empty());
  std::vector<LintViolation> Vs = lintFull(M);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Rule, LintRule::Unduplicated);
}

TEST(Lint, CheckAgainstForeignShadowIsReported) {
  ProtectedFn P;
  ASSERT_NE(P.MulShadow, nullptr);
  // Append a second check pairing the add with the *mul's* shadow. The
  // shadow's dupLink disagrees with the check's original operand.
  P.BB->insertBefore(P.BB->terminator(),
                     std::make_unique<CheckInst>(P.Add, P.MulShadow));
  std::vector<LintViolation> Vs = lintFull(P.M);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Rule, LintRule::BadCheckPairing);
}

TEST(Lint, ViolationReportNamesLocation) {
  ProtectedFn P;
  P.Mul->setOperand(0, P.AddShadow);
  std::vector<LintViolation> Vs = lintFull(P.M);
  ASSERT_EQ(Vs.size(), 1u);
  std::string S = Vs[0].toString();
  EXPECT_NE(S.find("R2"), std::string::npos);
  EXPECT_NE(S.find("f/entry"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// R6: duplicated values crossing a call boundary
//===----------------------------------------------------------------------===//

namespace {

/// g(x) = x + 1 and f(a) = g(a * 2) + (a * 2 * 3), fully duplicated.
/// The mul feeding the call is a duplicated original with no check
/// before the call — the R6 scenario. Built by hand so the test controls
/// exactly which checks exist.
struct CallBoundaryFn {
  Module M{"m"};
  Function *G = nullptr, *F = nullptr;
  BasicBlock *FB = nullptr;
  Instruction *Mul = nullptr;
  CallInst *Call = nullptr;

  explicit CallBoundaryFn(bool InsertBoundaryChecks) {
    G = M.createFunction("g", types::I64, {types::I64});
    IRBuilder B(M);
    B.setInsertPoint(G->addBlock("entry"));
    B.createRet(B.createAdd(G->arg(0), M.getInt64(1)));

    F = M.createFunction("f", types::I64, {types::I64});
    FB = F->addBlock("entry");
    B.setInsertPoint(FB);
    Mul = cast<Instruction>(B.createMul(F->arg(0), M.getInt64(2)));
    Value *Res = B.createCall(G, {Mul});
    Call = cast<CallInst>(Res);
    B.createRet(B.createAdd(Res, B.createMul(Mul, M.getInt64(3))));

    DuplicationOptions Opts;
    Opts.CheckCallBoundary = InsertBoundaryChecks;
    duplicateInstructions(M, [](const Instruction &) { return true; },
                          Opts);
    M.renumber();
  }
};

std::vector<LintViolation> lintCallBoundary(const Module &M) {
  LintOptions Opts;
  Opts.ExpectFullDuplication = true;
  Opts.CheckCallBoundary = true;
  return lintProtectedModule(M, Opts);
}

} // namespace

TEST(Lint, UncheckedCallArgumentIsReportedOnlyUnderR6) {
  CallBoundaryFn P(/*InsertBoundaryChecks=*/false);
  EXPECT_TRUE(verifyModule(P.M).empty());
  // Default rule set: the module is a perfectly well-formed duplication.
  EXPECT_TRUE(lintFull(P.M).empty());
  // R6 flags the unchecked argument.
  std::vector<LintViolation> Vs = lintCallBoundary(P.M);
  ASSERT_EQ(Vs.size(), 1u);
  EXPECT_EQ(Vs[0].Rule, LintRule::UncheckedCallArgument);
  EXPECT_NE(Vs[0].toString().find("R6"), std::string::npos);
  EXPECT_NE(Vs[0].toString().find("argument 0"), std::string::npos);
}

TEST(Lint, CallBoundaryTransformClosesR6) {
  CallBoundaryFn P(/*InsertBoundaryChecks=*/true);
  EXPECT_TRUE(verifyModule(P.M).empty());
  EXPECT_TRUE(lintCallBoundary(P.M).empty());
  // The inserted check sits between the mul and the call.
  bool CheckBeforeCall = false;
  for (Instruction *I : *P.FB) {
    if (I == P.Call)
      break;
    if (auto *C = dyn_cast<CheckInst>(I))
      CheckBeforeCall |= C->original() == P.Mul;
  }
  EXPECT_TRUE(CheckBeforeCall);
}

TEST(Lint, CheckInDefiningBlockSatisfiesR6AcrossBlocks) {
  // A duplicated value defined (and checked) in one block, passed to a
  // call in another: the defining-block check is accepted.
  Module M("m");
  Function *G = M.createFunction("g", types::I64, {types::I64});
  IRBuilder B(M);
  B.setInsertPoint(G->addBlock("entry"));
  B.createRet(G->arg(0));

  Function *F = M.createFunction("f", types::I64, {types::I64});
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Next = F->addBlock("next");
  B.setInsertPoint(Entry);
  auto *Mul = cast<Instruction>(B.createMul(F->arg(0), M.getInt64(2)));
  B.createBr(Next);
  B.setInsertPoint(Next);
  Value *Res = B.createCall(G, {Mul});
  B.createRet(Res);
  duplicateInstructions(M, [](const Instruction &) { return true; });
  M.renumber();
  ASSERT_TRUE(verifyModule(M).empty());

  // Full duplication placed the path-end check on the mul in its own
  // block (its only user is in another block), which satisfies R6.
  std::vector<LintViolation> Vs = lintCallBoundary(M);
  EXPECT_TRUE(Vs.empty());
}
