//===- tests/TestComparators.cpp - Decision tree and kNN ----------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/Comparators.h"
#include "ml/ModelSelection.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace ipas;

namespace {

Dataset makeBlobs(size_t PerClass, Rng &R) {
  Dataset D;
  for (size_t I = 0; I != PerClass; ++I) {
    D.add({R.nextDoubleIn(-0.8, 0.8), R.nextDoubleIn(-0.8, 0.8)}, -1);
    D.add({3.0 + R.nextDoubleIn(-0.8, 0.8), 3.0 + R.nextDoubleIn(-0.8, 0.8)},
          1);
  }
  return D;
}

} // namespace

TEST(DecisionTree, SeparatesBlobs) {
  Rng R(1);
  Dataset D = makeBlobs(50, R);
  DecisionTree T = DecisionTree::train(D);
  size_t Correct = 0;
  for (size_t I = 0; I != D.size(); ++I)
    Correct += T.predict(D.X[I]) == D.Y[I];
  EXPECT_GT(static_cast<double>(Correct) / static_cast<double>(D.size()),
            0.98);
  EXPECT_GT(T.numNodes(), 1u);
}

TEST(DecisionTree, HandlesXor) {
  // Axis-aligned splits solve XOR with depth >= 2 — provided the data is
  // not perfectly symmetric (symmetric XOR has zero Gini gain at the
  // root, the classic greedy-CART blind spot). Use uneven quadrants.
  Rng R(2);
  Dataset D;
  auto Quadrant = [&](double Sx, double Sy, int Label, int N) {
    for (int I = 0; I != N; ++I)
      D.add({Sx * R.nextDoubleIn(0.2, 1.0), Sy * R.nextDoubleIn(0.2, 1.0)},
            Label);
  };
  Quadrant(+1, +1, 1, 40);
  Quadrant(-1, -1, 1, 20);
  Quadrant(-1, +1, -1, 35);
  Quadrant(+1, -1, -1, 15);
  DecisionTree T = DecisionTree::train(D);
  size_t Correct = 0;
  for (size_t I = 0; I != D.size(); ++I)
    Correct += T.predict(D.X[I]) == D.Y[I];
  EXPECT_GT(static_cast<double>(Correct) / static_cast<double>(D.size()),
            0.95);
}

TEST(DecisionTree, DepthLimitProducesLeafOnPureMajority) {
  Rng R(3);
  Dataset D = makeBlobs(30, R);
  DecisionTree::Params P;
  P.MaxDepth = 0; // forced to a single leaf
  DecisionTree T = DecisionTree::train(D, P);
  EXPECT_EQ(T.numNodes(), 1u);
  // Balanced classes: the leaf predicts one class for everything.
  int Pred = T.predict(D.X[0]);
  for (size_t I = 0; I != D.size(); ++I)
    EXPECT_EQ(T.predict(D.X[I]), Pred);
}

TEST(DecisionTree, PureNodeStopsSplitting) {
  Dataset D;
  for (int I = 0; I != 10; ++I)
    D.add({static_cast<double>(I), 0.0}, 1);
  DecisionTree T = DecisionTree::train(D);
  EXPECT_EQ(T.numNodes(), 1u);
  EXPECT_EQ(T.predict({100.0, 0.0}), 1);
}

TEST(Knn, NearestNeighbourVotes) {
  Dataset D;
  D.add({0.0, 0.0}, -1);
  D.add({0.1, 0.0}, -1);
  D.add({0.2, 0.1}, -1);
  D.add({5.0, 5.0}, 1);
  D.add({5.1, 5.0}, 1);
  D.add({5.0, 5.2}, 1);
  KnnClassifier K3(D, 3);
  EXPECT_EQ(K3.predict({0.05, 0.05}), -1);
  EXPECT_EQ(K3.predict({5.05, 5.05}), 1);
  KnnClassifier K1(D, 1);
  EXPECT_EQ(K1.predict({4.0, 4.0}), 1);
}

TEST(Knn, KLargerThanDatasetUsesAll) {
  Dataset D;
  D.add({0.0}, 1);
  D.add({1.0}, 1);
  D.add({2.0}, -1);
  KnnClassifier K(D, 99);
  // Majority of all three is +1.
  EXPECT_EQ(K.predict({10.0}), 1);
}

TEST(Comparators, SvmBeatsBothOnImbalancedOverlap) {
  // The §4.3.1 claim, in miniature: 6% positives with heavy overlap.
  Rng R(4);
  Dataset D;
  for (int I = 0; I != 470; ++I)
    D.add({R.nextDoubleIn(-1.5, 1.5), R.nextDoubleIn(-1.5, 1.5)}, -1);
  for (int I = 0; I != 30; ++I)
    D.add({1.0 + R.nextDoubleIn(-1.2, 1.2),
           1.0 + R.nextDoubleIn(-1.2, 1.2)},
          1);

  SvmParams P;
  P.C = 10.0;
  P.Gamma = 1.0;
  SvmModel Svm = trainCSvc(D, P);
  DecisionTree Tree = DecisionTree::train(D);
  KnnClassifier Knn(D, 5);

  auto MinorityRecall = [&](auto Predict) {
    size_t Correct = 0, Total = 0;
    for (size_t I = 0; I != D.size(); ++I)
      if (D.Y[I] > 0) {
        ++Total;
        Correct += Predict(D.X[I]) > 0;
      }
    return static_cast<double>(Correct) / static_cast<double>(Total);
  };
  double SvmRecall =
      MinorityRecall([&](const std::vector<double> &X) { return Svm.predict(X); });
  double KnnRecall = MinorityRecall(
      [&](const std::vector<double> &X) { return Knn.predict(X); });
  // The class-weighted SVM must not abandon the minority class; kNN with
  // a majority vote typically does.
  EXPECT_GT(SvmRecall, 0.5);
  EXPECT_GT(SvmRecall, KnnRecall);
  (void)Tree; // tree behaviour varies; covered by the ablation bench
}
