//===- tests/TestOptimizations.cpp - Constant folding and DCE -----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fault/Campaign.h"
#include "transform/ConstantFold.h"
#include "transform/DCE.h"
#include "transform/Duplication.h"

using namespace ipas;
using namespace ipas::testutil;

namespace {

size_t countOps(const Function &F, Opcode Op) {
  size_t N = 0;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (I->opcode() == Op)
        ++N;
  return N;
}

} // namespace

TEST(ConstantFold, FoldsFullyConstantExpressions) {
  auto M = compile("int f() { return (2 + 3) * 4 - 6 / 2; }");
  Function *F = M->getFunction("f");
  unsigned Folded = foldConstants(*F);
  EXPECT_GT(Folded, 0u);
  M->renumber();
  EXPECT_TRUE(verifyModule(*M).empty());
  RunResult R = runFunction(*M, "f", {});
  EXPECT_EQ(R.Value.asI64(), 17);
  // Everything folds: only the ret remains.
  EXPECT_EQ(F->numInstructions(), 1u);
}

TEST(ConstantFold, FoldsDoubleArithmeticAndCasts) {
  auto M = compile("double f() { return (double)3 * 1.5 + 0.25; }");
  foldConstants(*M);
  M->renumber();
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_EQ(M->getFunction("f")->numInstructions(), 1u);
  EXPECT_DOUBLE_EQ(runFunction(*M, "f", {}).Value.asF64(), 4.75);
}

TEST(ConstantFold, NeverFoldsTrappingDivision) {
  // 1/0 must stay in the IR and still trap at runtime.
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->addBlock("entry"));
  Value *Div = B.createSDiv(B.getInt64(1), B.getInt64(0));
  B.createRet(Div);
  M.renumber();
  EXPECT_EQ(foldConstants(*F), 0u);
  RunResult R = runFunction(M, "f", {});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::DivByZero);
}

TEST(ConstantFold, AppliesIdentities) {
  // x + 0 and x * 1 fold away without constant operands on both sides.
  auto M = compile("int f(int x) { return (x + 0) * 1; }");
  Function *F = M->getFunction("f");
  foldConstants(*F);
  M->renumber();
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_EQ(F->numInstructions(), 1u); // just the ret
  EXPECT_EQ(runFunction(*M, "f", {RtValue::fromI64(9)}).Value.asI64(), 9);
}

TEST(ConstantFold, SemanticsPreservedOnWorkloadStyleCode) {
  const char *Src = "int f(int a) { int s = 0;\n"
                    "  for (int i = 0; i < a; i = i + 1)\n"
                    "    s += (i * 2 + 1) % 7;\n"
                    "  return s * (3 - 2); }";
  auto Plain = compile(Src);
  auto Opt = compile(Src);
  foldConstants(*Opt);
  eliminateDeadCode(*Opt);
  Opt->renumber();
  ASSERT_TRUE(verifyModule(*Opt).empty());
  for (int64_t Arg : {0, 3, 17}) {
    RunResult A = runFunction(*Plain, "f", {RtValue::fromI64(Arg)});
    RunResult B = runFunction(*Opt, "f", {RtValue::fromI64(Arg)});
    EXPECT_EQ(A.Value.asI64(), B.Value.asI64()) << Arg;
    EXPECT_LE(B.Steps, A.Steps);
  }
}

TEST(Dce, RemovesUnusedChains) {
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {types::I64});
  IRBuilder B(M);
  B.setInsertPoint(F->addBlock("entry"));
  // A dead chain feeding nothing.
  Value *D1 = B.createAdd(F->arg(0), M.getInt64(1));
  Value *D2 = B.createMul(D1, D1);
  B.createSub(D2, M.getInt64(3));
  B.createRet(F->arg(0));
  M.renumber();
  EXPECT_EQ(eliminateDeadCode(*F), 3u);
  EXPECT_EQ(F->numInstructions(), 1u);
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(Dce, KeepsSideEffects) {
  auto M = compile("int f(double* p) { p[0] = 1.0;\n"
                   "  double unused = p[0] * 2.0;\n"
                   "  rand_seed(1);\n"
                   "  return 0; }");
  Function *F = M->getFunction("f");
  size_t StoresBefore = countOps(*F, Opcode::Store);
  eliminateDeadCode(*F);
  M->renumber();
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_EQ(countOps(*F, Opcode::Store), StoresBefore);
  EXPECT_EQ(countOps(*F, Opcode::Call), 1u); // rand_seed kept
  EXPECT_EQ(countOps(*F, Opcode::FMul), 0u); // dead multiply removed
}

TEST(Dce, RemovesUnusedAllocaAndLoad) {
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(F->addBlock("entry"));
  Value *A = B.createAlloca(4);
  B.createLoad(types::I64, A); // unused load
  B.createRet(M.getInt64(0));
  M.renumber();
  EXPECT_EQ(eliminateDeadCode(*F), 2u);
  EXPECT_EQ(F->numInstructions(), 1u);
}

TEST(Dce, FixpointAcrossBlocks) {
  auto M = compile("int f(int a) {\n"
                   "  int x = a * 2;\n"
                   "  if (a > 0) { int y = x + 1; }\n"
                   "  return a; }");
  eliminateDeadCode(*M);
  M->renumber();
  ASSERT_TRUE(verifyModule(*M).empty());
  // x and y are dead through the branch.
  Function *F = M->getFunction("f");
  EXPECT_EQ(countOps(*F, Opcode::Mul), 0u);
  EXPECT_EQ(countOps(*F, Opcode::Add), 0u);
  EXPECT_EQ(runFunction(*M, "f", {RtValue::fromI64(5)}).Value.asI64(), 5);
}

TEST(Campaign, ThreadedCampaignMatchesSerial) {
  // Determinism across thread counts: plans are pre-drawn.
  const char *Src = "int f(int n) {\n"
                    "  double s = 0.0;\n"
                    "  for (int i = 0; i < n; i = i + 1)\n"
                    "    s = s + 1.0 / (1.0 + i);\n"
                    "  return (int)(s * 1000.0); }";
  auto M = compile(Src);
  duplicateAllInstructions(*M);
  M->renumber();
  ModuleLayout Layout(*M);

  struct H : ProgramHarness {
    const Module &M;
    int64_t Golden = 0;
    bool Have = false;
    explicit H(const Module &M) : M(M) {}
    ExecutionRecord execute(const ModuleLayout &L, const FaultPlan *P,
                            uint64_t Budget) override {
      ExecutionContext Ctx(L);
      if (P)
        Ctx.setFaultPlan(*P);
      Ctx.start(M.getFunction("f"), {RtValue::fromI64(40)});
      ExecutionRecord R;
      R.Status = Ctx.run(Budget);
      R.Trap = Ctx.trap();
      R.Steps = Ctx.steps();
      R.ValueSteps = Ctx.valueSteps();
      R.FaultInjected = Ctx.faultWasInjected();
      R.FaultedInstructionId = Ctx.faultedInstructionId();
      if (R.Status == RunStatus::Finished) {
        if (!Have) {
          Golden = Ctx.returnValue().asI64();
          Have = true;
        }
        R.OutputValid = Ctx.returnValue().asI64() == Golden;
      }
      return R;
    }
  };

  CampaignConfig Serial;
  Serial.NumRuns = 80;
  Serial.Seed = 99;
  CampaignConfig Threaded = Serial;
  Threaded.NumThreads = 4;

  H H1(*M);
  CampaignResult A = runCampaign(H1, Layout, Serial);
  H H2(*M);
  // Capture the golden before going parallel (the campaign's clean run
  // does this, single-threaded, before any injection).
  CampaignResult B = runCampaign(H2, Layout, Threaded);
  ASSERT_EQ(A.Records.size(), B.Records.size());
  for (size_t I = 0; I != A.Records.size(); ++I) {
    EXPECT_EQ(A.Records[I].InstructionId, B.Records[I].InstructionId);
    EXPECT_EQ(A.Records[I].Result, B.Records[I].Result);
  }
}
