//===- tests/TestFrontend.cpp - Lexer, parser, codegen ------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "frontend/Parser.h"

using namespace ipas;
using namespace ipas::testutil;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

static std::vector<Token> lex(const std::string &Src) {
  Diagnostics D;
  Lexer L(Src, D);
  EXPECT_FALSE(D.hasErrors()) << D.summary();
  return L.tokens();
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto T = lex("int foo double while whilex");
  ASSERT_EQ(T.size(), 6u); // + End
  EXPECT_EQ(T[0].Kind, TokenKind::KwInt);
  EXPECT_EQ(T[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[1].Text, "foo");
  EXPECT_EQ(T[2].Kind, TokenKind::KwDouble);
  EXPECT_EQ(T[3].Kind, TokenKind::KwWhile);
  EXPECT_EQ(T[4].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[5].Kind, TokenKind::End);
}

TEST(Lexer, NumericLiterals) {
  auto T = lex("42 3.5 1e-6 2.5E+3 7.");
  EXPECT_EQ(T[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(T[0].IntValue, 42);
  EXPECT_EQ(T[1].Kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(T[1].FloatValue, 3.5);
  EXPECT_DOUBLE_EQ(T[2].FloatValue, 1e-6);
  EXPECT_DOUBLE_EQ(T[3].FloatValue, 2500.0);
  EXPECT_DOUBLE_EQ(T[4].FloatValue, 7.0);
}

TEST(Lexer, MultiCharOperators) {
  auto T = lex("<= >= == != && || += -= *= /=");
  TokenKind Expected[] = {
      TokenKind::LessEqual,  TokenKind::GreaterEqual, TokenKind::EqualEqual,
      TokenKind::NotEqual,   TokenKind::AmpAmp,       TokenKind::PipePipe,
      TokenKind::PlusAssign, TokenKind::MinusAssign,  TokenKind::StarAssign,
      TokenKind::SlashAssign};
  for (size_t I = 0; I != 10; ++I)
    EXPECT_EQ(T[I].Kind, Expected[I]) << I;
}

TEST(Lexer, CommentsAreSkipped) {
  auto T = lex("a // line comment\n /* block \n comment */ b");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
}

TEST(Lexer, TracksLineNumbers) {
  auto T = lex("a\nb\n  c");
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[1].Loc.Line, 2u);
  EXPECT_EQ(T[2].Loc.Line, 3u);
  EXPECT_EQ(T[2].Loc.Column, 3u);
}

TEST(Lexer, ReportsUnknownCharacters) {
  Diagnostics D;
  Lexer L("a $ b", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Lexer, CountCodeLines) {
  const char *Src = "int f() {\n"
                    "  // comment only\n"
                    "\n"
                    "  return 1; /* trailing */\n"
                    "  /* multi\n"
                    "     line */\n"
                    "}\n";
  EXPECT_EQ(Lexer::countCodeLines(Src), 3u); // header, return, brace
}

//===----------------------------------------------------------------------===//
// Parser diagnostics
//===----------------------------------------------------------------------===//

static bool parses(const std::string &Src) {
  Diagnostics D;
  Lexer L(Src, D);
  if (D.hasErrors())
    return false;
  Parser P(L.tokens(), D);
  P.parseTranslationUnit();
  return !D.hasErrors();
}

TEST(Parser, AcceptsCoreLanguage) {
  EXPECT_TRUE(parses("int f(int a) { return a + 1; }"));
  EXPECT_TRUE(parses("double g() { double x[4]; x[0] = 1.0; return x[0]; }"));
  EXPECT_TRUE(parses("void h(int n) { for (int i = 0; i < n; i += 1) {} }"));
  EXPECT_TRUE(parses("int k(int a) { if (a > 0 && a < 9) return 1; "
                     "else return 0; }"));
  EXPECT_TRUE(parses("int m(double* p) { *p = 2.0; return (int)*p; }"));
}

TEST(Parser, RejectsSyntaxErrors) {
  EXPECT_FALSE(parses("int f( { return 1; }"));
  EXPECT_FALSE(parses("int f() { return 1 +; }"));   // dangling operator
  EXPECT_FALSE(parses("int f() { int x = ; }"));
  EXPECT_FALSE(parses("int f() { while true {} }")); // missing parens
  EXPECT_FALSE(parses("int f() { return 1 }"));      // missing semicolon
}

TEST(Parser, RejectsBadArrayDecls) {
  EXPECT_FALSE(parses("int f() { double x[0]; return 0; }"));
  EXPECT_FALSE(parses("int f() { double x[-1]; return 0; }"));
  EXPECT_FALSE(parses("int f() { double x[n]; return 0; }"));
}

TEST(Parser, RejectsTriplePointer) {
  EXPECT_FALSE(parses("int f(double*** p) { return 0; }"));
}

// Compiler-grade diagnostics: file:line:col, the offending source line,
// and a caret under the column.
TEST(Diagnostics, RendersFileLineColWithCaret) {
  Diagnostics D;
  auto M = compileMiniC("int f() {\n  return 1 +;\n}\n", "demo.mc", D);
  EXPECT_EQ(M, nullptr);
  ASSERT_TRUE(D.hasErrors());
  std::string S = D.summary();
  EXPECT_NE(S.find("demo.mc:2:"), std::string::npos) << S;
  EXPECT_NE(S.find("error:"), std::string::npos) << S;
  EXPECT_NE(S.find("\n    return 1 +;\n"), std::string::npos) << S;
  EXPECT_NE(S.find("^"), std::string::npos) << S;
}

// Without an attached source the legacy "line L:C:" rendering survives,
// so drivers that never call setSource keep working.
TEST(Diagnostics, LegacyFormatWithoutSource) {
  Diagnostics D;
  D.error(SourceLoc{3, 7}, "boom");
  EXPECT_NE(D.summary().find("line 3:7: error: boom"), std::string::npos)
      << D.summary();
}

//===----------------------------------------------------------------------===//
// CodeGen + execution (semantics)
//===----------------------------------------------------------------------===//

TEST(CodeGen, ArithmeticAndPrecedence) {
  EXPECT_EQ(evalInt("int f() { return 2 + 3 * 4; }", "f"), 14);
  EXPECT_EQ(evalInt("int f() { return (2 + 3) * 4; }", "f"), 20);
  EXPECT_EQ(evalInt("int f() { return 7 / 2; }", "f"), 3);
  EXPECT_EQ(evalInt("int f() { return 7 % 3; }", "f"), 1);
  EXPECT_EQ(evalInt("int f() { return -5 + 2; }", "f"), -3);
}

TEST(CodeGen, DoubleArithmeticAndConversions) {
  EXPECT_DOUBLE_EQ(evalDouble("double f() { return 1.5 * 2.0; }", "f"), 3.0);
  EXPECT_DOUBLE_EQ(evalDouble("double f() { return 3 / 2.0; }", "f"), 1.5);
  EXPECT_EQ(evalInt("int f() { return (int)2.9; }", "f"), 2);
  EXPECT_DOUBLE_EQ(evalDouble("double f() { return (double)7 / 2; }", "f"),
                   3.5);
  EXPECT_DOUBLE_EQ(evalDouble("double f(int a) { double x = a; return x; }",
                              "f", {RtValue::fromI64(4)}),
                   4.0);
}

TEST(CodeGen, ComparisonsYieldInt) {
  EXPECT_EQ(evalInt("int f() { return 3 < 4; }", "f"), 1);
  EXPECT_EQ(evalInt("int f() { return 3 >= 4; }", "f"), 0);
  EXPECT_EQ(evalInt("int f() { return (1 < 2) + (3 == 3); }", "f"), 2);
  EXPECT_EQ(evalInt("int f() { return 1.5 > 1.0; }", "f"), 1);
}

TEST(CodeGen, ShortCircuitEvaluation) {
  // The second operand must not execute when the first decides: an OOB
  // guard is the classic use.
  const char *Src = "int f(int i) {\n"
                    "  double a[2];\n"
                    "  a[0] = 5.0; a[1] = 6.0;\n"
                    "  if (i < 2 && a[i] > 4.0) return 1;\n"
                    "  return 0;\n"
                    "}\n";
  EXPECT_EQ(evalInt(Src, "f", {RtValue::fromI64(0)}), 1);
  // i = 99 must not fault: && short-circuits before a[99].
  EXPECT_EQ(evalInt(Src, "f", {RtValue::fromI64(99)}), 0);
}

TEST(CodeGen, LogicalOrAndNot) {
  EXPECT_EQ(evalInt("int f() { return 0 || 2; }", "f"), 1);
  EXPECT_EQ(evalInt("int f() { return 0 || 0; }", "f"), 0);
  EXPECT_EQ(evalInt("int f() { return !0; }", "f"), 1);
  EXPECT_EQ(evalInt("int f() { return !3; }", "f"), 0);
  EXPECT_EQ(evalInt("int f(int a) { return !(a < 5) || a == 2; }", "f",
                    {RtValue::fromI64(2)}),
            1);
}

TEST(CodeGen, WhileAndForLoops) {
  EXPECT_EQ(evalInt("int f(int n) { int s = 0; int i = 0;\n"
                    "  while (i < n) { s += i; i = i + 1; } return s; }",
                    "f", {RtValue::fromI64(10)}),
            45);
  EXPECT_EQ(evalInt("int f(int n) { int s = 0;\n"
                    "  for (int i = 0; i < n; i = i + 1) s += i * i;\n"
                    "  return s; }",
                    "f", {RtValue::fromI64(5)}),
            30);
}

TEST(CodeGen, BreakAndContinue) {
  EXPECT_EQ(evalInt("int f() { int s = 0;\n"
                    "  for (int i = 0; i < 100; i = i + 1) {\n"
                    "    if (i == 5) break;\n"
                    "    if (i % 2 == 0) continue;\n"
                    "    s += i;\n"
                    "  } return s; }",
                    "f"),
            4); // 1 + 3
}

TEST(CodeGen, ArraysAndPointers) {
  EXPECT_DOUBLE_EQ(evalDouble("double f() {\n"
                              "  double a[4];\n"
                              "  for (int i = 0; i < 4; i = i + 1)\n"
                              "    a[i] = 1.5 * i;\n"
                              "  double* p = a + 1;\n"
                              "  return p[2] + *p;\n"
                              "}",
                              "f"),
                   6.0); // a[3] + a[1] = 4.5 + 1.5
}

TEST(CodeGen, MallocAndPointerToPointer) {
  EXPECT_DOUBLE_EQ(evalDouble("double f() {\n"
                              "  double** rows = (double**)malloc(3);\n"
                              "  for (int r = 0; r < 3; r = r + 1) {\n"
                              "    rows[r] = (double*)malloc(4);\n"
                              "    for (int c = 0; c < 4; c = c + 1)\n"
                              "      rows[r][c] = r * 10.0 + c;\n"
                              "  }\n"
                              "  return rows[2][3];\n"
                              "}",
                              "f"),
                   23.0);
}

TEST(CodeGen, FunctionCallsAndRecursion) {
  EXPECT_EQ(evalInt("int fib(int n) {\n"
                    "  if (n < 2) return n;\n"
                    "  return fib(n - 1) + fib(n - 2);\n"
                    "}\n"
                    "int f() { return fib(12); }",
                    "f"),
            144);
}

TEST(CodeGen, ForwardCallsWork) {
  EXPECT_EQ(evalInt("int f() { return helper(4); }\n"
                    "int helper(int x) { return x * x; }",
                    "f"),
            16);
}

TEST(CodeGen, MathIntrinsics) {
  EXPECT_DOUBLE_EQ(evalDouble("double f() { return sqrt(16.0); }", "f"), 4.0);
  EXPECT_DOUBLE_EQ(evalDouble("double f() { return fabs(-2.5); }", "f"), 2.5);
  EXPECT_DOUBLE_EQ(evalDouble("double f() { return pow(2.0, 10.0); }", "f"),
                   1024.0);
  EXPECT_DOUBLE_EQ(evalDouble("double f() { return fmax(1.0, 2.0); }", "f"),
                   2.0);
  EXPECT_EQ(evalInt("int f() { return imin(3, -4); }", "f"), -4);
}

TEST(CodeGen, RandIntrinsicsAreDeterministic) {
  const char *Src = "int f() { rand_seed(5);\n"
                    "  int a = rand_i64(100); rand_seed(5);\n"
                    "  int b = rand_i64(100);\n"
                    "  return (a == b) && a >= 0 && a < 100; }";
  EXPECT_EQ(evalInt(Src, "f"), 1);
}

TEST(CodeGen, CompoundAssignOnArrayElement) {
  EXPECT_DOUBLE_EQ(evalDouble("double f() { double a[2]; a[0] = 1.0;\n"
                              "  a[0] += 2.5; a[0] *= 2.0; return a[0]; }",
                              "f"),
                   7.0);
}

TEST(CodeGen, DeclShadowingInInnerScope) {
  EXPECT_EQ(evalInt("int f() { int x = 1; { int x = 2; } return x; }", "f"),
            1);
}

//===----------------------------------------------------------------------===//
// CodeGen semantic errors
//===----------------------------------------------------------------------===//

static bool compilesCleanly(const std::string &Src) {
  Diagnostics D;
  return compileMiniC(Src, "t", D) != nullptr;
}

TEST(CodeGen, RejectsUndeclaredIdentifier) {
  EXPECT_FALSE(compilesCleanly("int f() { return nope; }"));
}

TEST(CodeGen, RejectsUndeclaredFunction) {
  EXPECT_FALSE(compilesCleanly("int f() { return g(1); }"));
}

TEST(CodeGen, RejectsArityMismatch) {
  EXPECT_FALSE(compilesCleanly(
      "int g(int a, int b) { return a; } int f() { return g(1); }"));
}

TEST(CodeGen, RejectsAssignToArrayName) {
  EXPECT_FALSE(
      compilesCleanly("int f() { double a[2]; double b[2]; a = b;"
                      " return 0; }"));
}

TEST(CodeGen, RejectsPointerArithmeticTypeErrors) {
  EXPECT_FALSE(compilesCleanly(
      "int f(double* p, double* q) { return (int)(p * q); }"));
  EXPECT_FALSE(
      compilesCleanly("int f(double* p) { double x = p; return 0; }"));
}

TEST(CodeGen, RejectsVoidMisuse) {
  EXPECT_FALSE(compilesCleanly("void f() { return 1; }"));
  EXPECT_FALSE(compilesCleanly("int f() { return; }"));
  EXPECT_FALSE(compilesCleanly("int f() { void x; return 0; }"));
}

TEST(CodeGen, RejectsBreakOutsideLoop) {
  EXPECT_FALSE(compilesCleanly("int f() { break; return 0; }"));
}

TEST(CodeGen, RejectsDuplicateFunctions) {
  EXPECT_FALSE(compilesCleanly("int f() { return 0; } int f() { return 1; }"));
}

TEST(CodeGen, RejectsShadowingIntrinsics) {
  EXPECT_FALSE(compilesCleanly("double sqrt(double x) { return x; }"));
}

TEST(CodeGen, RejectsIndexingVoidPointer) {
  EXPECT_FALSE(compilesCleanly(
      "int f() { return (int)(malloc(4)[0]); }"));
}

TEST(CodeGen, ImplicitReturnZeroOnFallThrough) {
  EXPECT_EQ(evalInt("int f(int a) { if (a > 0) return 7; }", "f",
                    {RtValue::fromI64(-1)}),
            0);
}

TEST(CodeGen, DeadCodeAfterReturnIsTolerated) {
  EXPECT_EQ(evalInt("int f() { return 3; int x = 1; x = x + 1; }", "f"), 3);
}
