//===- tests/TestUtil.h - Shared helpers for the test suite ----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_TESTS_TESTUTIL_H
#define IPAS_TESTS_TESTUTIL_H

#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "transform/Mem2Reg.h"
#include "transform/SimplifyCFG.h"

#include <gtest/gtest.h>

namespace ipas {
namespace testutil {

/// Compiles MiniC source, failing the test on diagnostics.
inline std::unique_ptr<Module> compile(const std::string &Source,
                                       bool RunMem2Reg = true) {
  Diagnostics Diags;
  std::unique_ptr<Module> M = compileMiniC(Source, "test", Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.summary();
  if (!M)
    return nullptr;
  removeUnreachableBlocks(*M);
  if (RunMem2Reg)
    promoteAllocasToRegisters(*M);
  M->renumber();
  std::vector<std::string> Errs = verifyModule(*M);
  for (const std::string &E : Errs)
    ADD_FAILURE() << "verifier: " << E;
  return M;
}

/// Runs \p FnName with integer/double arguments and returns the context
/// for inspection. The caller owns the layout lifetime via the returned
/// pair.
struct RunResult {
  RunStatus Status = RunStatus::Finished;
  TrapKind Trap = TrapKind::None;
  RtValue Value;
  uint64_t Steps = 0;
};

inline RunResult runFunction(const Module &M, const std::string &FnName,
                             const std::vector<RtValue> &Args,
                             uint64_t MaxSteps = 100000000ull,
                             const FaultPlan *Plan = nullptr) {
  ModuleLayout Layout(M);
  ExecutionContext Ctx(Layout);
  const Function *F = M.getFunction(FnName);
  EXPECT_NE(F, nullptr) << "no function " << FnName;
  RunResult R;
  if (!F) {
    R.Status = RunStatus::Trapped;
    return R;
  }
  if (Plan)
    Ctx.setFaultPlan(*Plan);
  Ctx.start(F, Args);
  R.Status = Ctx.run(MaxSteps);
  R.Trap = Ctx.trap();
  R.Value = Ctx.returnValue();
  R.Steps = Ctx.steps();
  return R;
}

/// Compile + run an int-valued function in one go.
inline int64_t evalInt(const std::string &Source, const std::string &FnName,
                       const std::vector<RtValue> &Args = {}) {
  std::unique_ptr<Module> M = compile(Source);
  if (!M)
    return INT64_MIN;
  RunResult R = runFunction(*M, FnName, Args);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  return R.Value.asI64();
}

/// Compile + run a double-valued function in one go.
inline double evalDouble(const std::string &Source,
                         const std::string &FnName,
                         const std::vector<RtValue> &Args = {}) {
  std::unique_ptr<Module> M = compile(Source);
  if (!M)
    return -1e308;
  RunResult R = runFunction(*M, FnName, Args);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  return R.Value.asF64();
}

} // namespace testutil
} // namespace ipas

#endif // IPAS_TESTS_TESTUTIL_H
