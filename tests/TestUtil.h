//===- tests/TestUtil.h - Shared helpers for the test suite ----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_TESTS_TESTUTIL_H
#define IPAS_TESTS_TESTUTIL_H

#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "transform/Mem2Reg.h"
#include "transform/SimplifyCFG.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ipas {
namespace testutil {

/// Base seed for randomized tests: the IPAS_TEST_SEED environment
/// variable when set (decimal or 0x-hex), otherwise a fixed default so
/// plain `ctest` runs are reproducible. Tests that draw randomness must
/// use this seed (directly or via derived streams) and report it on
/// failure with IPAS_SEED_TRACE, so any failure in a ctest log can be
/// replayed with `IPAS_TEST_SEED=<seed> ctest -R <test>`.
inline uint64_t testSeed() {
  static const uint64_t Seed = [] {
    const char *E = std::getenv("IPAS_TEST_SEED");
    return (E && *E) ? static_cast<uint64_t>(std::strtoull(E, nullptr, 0))
                     : static_cast<uint64_t>(0x1905);
  }();
  return Seed;
}

/// Attaches the active seed to every assertion failure in the enclosing
/// scope, so the ctest log alone suffices to reproduce.
#define IPAS_SEED_TRACE(SeedExpr)                                            \
  SCOPED_TRACE(::testing::Message()                                          \
               << "reproduce with IPAS_TEST_SEED=" << (SeedExpr))

/// Compiles MiniC source, failing the test on diagnostics.
inline std::unique_ptr<Module> compile(const std::string &Source,
                                       bool RunMem2Reg = true) {
  Diagnostics Diags;
  std::unique_ptr<Module> M = compileMiniC(Source, "test", Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.summary();
  if (!M)
    return nullptr;
  removeUnreachableBlocks(*M);
  if (RunMem2Reg)
    promoteAllocasToRegisters(*M);
  M->renumber();
  std::vector<std::string> Errs = verifyModule(*M);
  for (const std::string &E : Errs)
    ADD_FAILURE() << "verifier: " << E;
  return M;
}

/// Runs \p FnName with integer/double arguments and returns the context
/// for inspection. The caller owns the layout lifetime via the returned
/// pair.
struct RunResult {
  RunStatus Status = RunStatus::Finished;
  TrapKind Trap = TrapKind::None;
  RtValue Value;
  uint64_t Steps = 0;
};

inline RunResult runFunction(const Module &M, const std::string &FnName,
                             const std::vector<RtValue> &Args,
                             uint64_t MaxSteps = 100000000ull,
                             const FaultPlan *Plan = nullptr) {
  ModuleLayout Layout(M);
  ExecutionContext Ctx(Layout);
  const Function *F = M.getFunction(FnName);
  EXPECT_NE(F, nullptr) << "no function " << FnName;
  RunResult R;
  if (!F) {
    R.Status = RunStatus::Trapped;
    return R;
  }
  if (Plan)
    Ctx.setFaultPlan(*Plan);
  Ctx.start(F, Args);
  R.Status = Ctx.run(MaxSteps);
  R.Trap = Ctx.trap();
  R.Value = Ctx.returnValue();
  R.Steps = Ctx.steps();
  return R;
}

/// Compile + run an int-valued function in one go.
inline int64_t evalInt(const std::string &Source, const std::string &FnName,
                       const std::vector<RtValue> &Args = {}) {
  std::unique_ptr<Module> M = compile(Source);
  if (!M)
    return INT64_MIN;
  RunResult R = runFunction(*M, FnName, Args);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  return R.Value.asI64();
}

/// Compile + run a double-valued function in one go.
inline double evalDouble(const std::string &Source,
                         const std::string &FnName,
                         const std::vector<RtValue> &Args = {}) {
  std::unique_ptr<Module> M = compile(Source);
  if (!M)
    return -1e308;
  RunResult R = runFunction(*M, FnName, Args);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  return R.Value.asF64();
}

} // namespace testutil
} // namespace ipas

#endif // IPAS_TESTS_TESTUTIL_H
