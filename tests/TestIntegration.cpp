//===- tests/TestIntegration.cpp - Cross-module integration -------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Cross-cutting scenarios that exercise several layers at once: golden
/// IR text, harness hang classification, module layout, verifier
/// signature checks, and a protected end-to-end run on a second workload.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Pipeline.h"
#include "fault/Campaign.h"
#include "ir/IRPrinter.h"
#include "transform/ConstantFold.h"
#include "transform/DCE.h"
#include "transform/Duplication.h"
#include "workloads/WorkloadHarness.h"

using namespace ipas;
using namespace ipas::testutil;

TEST(Integration, GoldenIRText) {
  auto M = compile("int f(int a, int b) { return a * b + 1; }");
  std::string Text = printFunction(*M->getFunction("f"));
  EXPECT_EQ(Text, "define i64 @f(i64 %a, i64 %b) {\n"
                  "entry:\n"
                  "  %0 = mul i64 %a, %b\n"
                  "  %1 = add i64 %0, 1\n"
                  "  ret %1\n"
                  "}\n");
}

TEST(Integration, GoldenIRWithControlFlow) {
  auto M = compile("int f(int a) { if (a > 0) return 1; return 2; }");
  std::string Text = printFunction(*M->getFunction("f"));
  EXPECT_NE(Text.find("icmp gt i1 %a, 0"), std::string::npos);
  EXPECT_NE(Text.find("condbr"), std::string::npos);
  EXPECT_NE(Text.find("label %if.then.0"), std::string::npos);
}

TEST(Integration, ModuleLayoutAssignsDenseSlots) {
  auto M = compile("int f(int a) { int b = a + 1; int c = b * 2;\n"
                   "  return c - 3; }");
  ModuleLayout Layout(*M);
  const Function *F = M->getFunction("f");
  // Args occupy the first slots; value-producing instructions follow.
  EXPECT_EQ(Layout.frameSlots(F), 1u + 3u);
  std::set<unsigned> Slots;
  for (Instruction *I : M->allInstructions())
    if (I->producesValue())
      Slots.insert(Layout.slotOfInstruction(I));
  EXPECT_EQ(Slots.size(), 3u);
  EXPECT_EQ(*Slots.begin(), 1u);
}

TEST(Integration, VerifierCatchesBadIntrinsicSignature) {
  Module M("m");
  Function *F = M.createFunction("f", types::F64, {types::F64});
  IRBuilder B(M);
  B.setInsertPoint(F->addBlock("entry"));
  // sqrt takes one f64; build a call with an i64 argument instead.
  auto *Bad = new CallInst(Intrinsic::Sqrt, types::F64,
                           {static_cast<Value *>(M.getInt64(4))});
  B.insertBlock()->append(std::unique_ptr<Instruction>(Bad));
  B.createRet(Bad);
  auto Errs = verifyFunction(*F);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("intrinsic"), std::string::npos);
}

TEST(Integration, VerifierCatchesPhiPredecessorMismatch) {
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {types::I1});
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Next = F->addBlock("next");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createBr(Next);
  B.setInsertPoint(Next);
  PhiInst *Phi = B.createPhi(types::I64);
  Phi->addIncoming(M.getInt64(1), Entry);
  Phi->addIncoming(M.getInt64(2), Next); // Next is not a predecessor
  B.createRet(Phi);
  auto Errs = verifyFunction(*F);
  ASSERT_FALSE(Errs.empty());
}

TEST(Integration, HarnessClassifiesHangViaBudget) {
  // An injected fault that corrupts a loop bound can make the run exceed
  // the campaign's hang budget; simulate directly with a small budget.
  auto W = makeWorkload("IS");
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  WorkloadHarness H(*W, 1);
  ExecutionRecord R = H.execute(Layout, nullptr, /*StepBudget=*/1000);
  EXPECT_EQ(R.Status, RunStatus::OutOfSteps);
  EXPECT_EQ(classifyOutcome(R), Outcome::Hang);
}

TEST(Integration, OptimizedWorkloadStillVerifies) {
  // The paper protects after user-level optimizations; fold + DCE a
  // workload and confirm the whole harness still passes verification.
  auto W = makeWorkload("FFT");
  auto M = compileWorkload(*W);
  size_t Before = M->numInstructions();
  foldConstants(*M);
  eliminateDeadCode(*M);
  duplicateAllInstructions(*M);
  M->renumber();
  ASSERT_TRUE(verifyModule(*M).empty());
  EXPECT_GT(M->numInstructions(), Before); // dup outweighs folding
  ModuleLayout Layout(*M);
  WorkloadHarness H(*W, 1);
  ExecutionRecord R = H.execute(Layout, nullptr, UINT64_MAX);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_TRUE(R.OutputValid);
}

TEST(Integration, SelectiveProtectionOnSecondWorkload) {
  // End-to-end sanity on FFT (the pipeline tests use IS): protect the
  // top-SOC instructions found by a small campaign and confirm SOC drops.
  auto W = makeWorkload("FFT");
  PipelineConfig Cfg = PipelineConfig::defaults();
  Cfg.TrainSamples = 120;
  Cfg.EvalRuns = 100;
  Cfg.Grid.CSteps = 3;
  Cfg.Grid.GammaSteps = 3;
  Cfg.TopN = 1;
  IpasPipeline Pipeline(*W, Cfg);
  TrainingArtifacts A = Pipeline.collectAndTrain();
  ASSERT_FALSE(A.IpasConfigs.empty());
  auto Ids = Pipeline.selectInstructions(Technique::Ipas,
                                         A.IpasConfigs.front().Params, A);
  auto PM = Pipeline.protect(Ids);
  auto Unprot = Pipeline.protectNone();
  CampaignResult RP = Pipeline.evaluate(PM, 0x11);
  CampaignResult RU = Pipeline.evaluate(Unprot, 0x11);
  EXPECT_LT(RP.fraction(Outcome::SOC), RU.fraction(Outcome::SOC));
  EXPECT_GT(RP.count(Outcome::Detected), 0u);
  EXPECT_LT(static_cast<double>(RP.CleanSteps),
            1.9 * static_cast<double>(RU.CleanSteps));
}

TEST(Integration, DuplicatedShadowsAreWellFormedPaths) {
  // Structural invariant of the pass: every check compares an original
  // against its shadow, and the shadow is a clone with the same opcode.
  auto W = makeWorkload("HPCCG");
  auto M = compileWorkload(*W);
  duplicateAllInstructions(*M);
  M->renumber();
  size_t Checks = 0;
  for (Instruction *I : M->allInstructions()) {
    auto *Check = dyn_cast<CheckInst>(I);
    if (!Check)
      continue;
    ++Checks;
    const auto *Orig = dyn_cast<Instruction>(Check->original());
    const auto *Shadow = dyn_cast<Instruction>(Check->shadow());
    ASSERT_TRUE(Orig && Shadow);
    EXPECT_EQ(Orig->opcode(), Shadow->opcode());
    EXPECT_EQ(Orig->parent(), Shadow->parent());
    EXPECT_TRUE(isDuplicableOpcode(Orig->opcode()));
  }
  EXPECT_GT(Checks, 10u);
}
