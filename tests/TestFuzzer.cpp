//===- tests/TestFuzzer.cpp - Differential-testing subsystem --------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for src/testing/: the seeded MiniC generator, the five
/// semantic oracles, and the delta-debugging shrinker. The generator
/// tests draw their seeds from IPAS_TEST_SEED (see TestUtil.h), so a
/// failing nightly run is replayable from the ctest log alone.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "testing/Fuzzer.h"
#include "testing/SourcePrinter.h"

#include <set>

using namespace ipas;
using namespace ipas::testutil;

// `using namespace ipas` would make `testing::` ambiguous with gtest's.
namespace fz = ipas::testing;

namespace {

fz::GeneratedProgram genAt(uint64_t Seed) {
  fz::GenConfig GC;
  GC.Seed = Seed;
  return fz::generateProgram(GC);
}

} // namespace

TEST(Fuzzer, GeneratorIsDeterministic) {
  const uint64_t Seed = fz::programSeed(testSeed(), 0);
  IPAS_SEED_TRACE(testSeed());
  fz::GeneratedProgram A = genAt(Seed);
  fz::GeneratedProgram B = genAt(Seed);
  EXPECT_EQ(A.Source, B.Source);
  EXPECT_FALSE(A.Source.empty());
  // A different seed must (overwhelmingly) give a different program.
  fz::GeneratedProgram C = genAt(fz::programSeed(testSeed(), 1));
  EXPECT_NE(A.Source, C.Source);
}

TEST(Fuzzer, ProgramSeedsAreDistinct) {
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I != 1000; ++I)
    Seen.insert(fz::programSeed(1, I));
  EXPECT_EQ(Seen.size(), 1000u);
  // Different base seeds give different streams.
  EXPECT_NE(fz::programSeed(1, 0), fz::programSeed(2, 0));
}

// The generator's core contract: every program it emits compiles,
// verifies, and runs to completion on the oracle argument sets — UB-free
// by construction, not by filtering.
TEST(Fuzzer, GeneratedProgramsAreUBFreeByConstruction) {
  IPAS_SEED_TRACE(testSeed());
  for (uint64_t I = 0; I != 24; ++I) {
    const uint64_t Seed = fz::programSeed(testSeed(), I);
    SCOPED_TRACE(::testing::Message() << "program index " << I << ", seed 0x"
                                      << std::hex << Seed);
    fz::GeneratedProgram P = genAt(Seed);
    auto M = compile(P.Source);
    ASSERT_NE(M, nullptr) << P.Source;
    const int64_t Args[][2] = {{3, 5}, {250, -9}, {-1000000, 999983}};
    for (const auto &AB : Args) {
      const int64_t A = AB[0], B = AB[1];
      RunResult R = runFunction(
          *M, fz::GenEntryName,
          {RtValue::fromI64(A), RtValue::fromI64(B)}, 20000000ull);
      EXPECT_EQ(R.Status, RunStatus::Finished)
          << "run(" << A << ", " << B << ") " << runStatusName(R.Status)
          << "\n" << P.Source;
    }
  }
}

// Canonical-print fixpoint: parsing the printed source and printing the
// result is byte-identical. (O1 additionally checks behavior; this pins
// the printer half in isolation.)
TEST(Fuzzer, PrinterRoundTripIsAFixpoint) {
  IPAS_SEED_TRACE(testSeed());
  for (uint64_t I = 0; I != 12; ++I) {
    fz::GeneratedProgram P = genAt(fz::programSeed(testSeed(), I));
    Diagnostics Diags;
    Lexer Lex(P.Source, Diags);
    Parser Psr(Lex.tokens(), Diags);
    std::unique_ptr<TranslationUnit> TU = Psr.parseTranslationUnit();
    ASSERT_TRUE(TU && !Diags.hasErrors()) << Diags.summary() << P.Source;
    EXPECT_EQ(fz::printTranslationUnit(*TU), P.Source);
  }
}

TEST(Fuzzer, OracleNamesParse) {
  fz::OracleKind K;
  bool IsAll = false;
  EXPECT_TRUE(fz::parseOracleName("O2", K, IsAll));
  EXPECT_EQ(K, fz::OracleKind::Optimizer);
  EXPECT_TRUE(fz::parseOracleName("O4-lint", K, IsAll));
  EXPECT_EQ(K, fz::OracleKind::Lint);
  EXPECT_FALSE(fz::parseOracleName("all", K, IsAll));
  EXPECT_TRUE(IsAll);
  EXPECT_FALSE(fz::parseOracleName("bogus", K, IsAll));
  EXPECT_FALSE(IsAll);
}

// End-to-end smoke: a small campaign over all five oracles is clean and
// deterministic (same config twice gives the same report).
TEST(Fuzzer, SmallCampaignPassesAllOracles) {
  fz::FuzzConfig Cfg;
  Cfg.Seed = testSeed();
  Cfg.Count = 10;
  Cfg.Shrink = false;
  IPAS_SEED_TRACE(Cfg.Seed);
  fz::FuzzReport R = fz::runFuzzCampaign(Cfg);
  EXPECT_EQ(R.ProgramsRun, 10u);
  EXPECT_EQ(R.OraclesRun, 10u * fz::NumOracles);
  for (const fz::FuzzFailure &F : R.Failures)
    ADD_FAILURE() << fz::oracleName(F.Oracle) << " seed 0x" << std::hex
                  << F.Seed << ": " << F.Detail << "\n" << F.Source;
  fz::FuzzReport R2 = fz::runFuzzCampaign(Cfg);
  EXPECT_EQ(R2.ProgramsRun, R.ProgramsRun);
  EXPECT_EQ(R2.Failures.size(), R.Failures.size());
}

// The harness must be able to see a real bug: with the canned operand
// swap injected into O2's optimized module, some program in a short
// campaign diverges, and the shrinker reduces it to a tiny repro that
// still fails for the same reason.
TEST(Fuzzer, InjectedMiscompileIsCaughtAndShrunk) {
  fz::OracleOptions Opts;
  Opts.InjectMiscompile = true;
  bool Caught = false;
  for (uint64_t I = 0; I != 64 && !Caught; ++I) {
    const uint64_t Seed = fz::programSeed(1, I);
    fz::GeneratedProgram P = genAt(Seed);
    fz::OracleResult R =
        fz::runOracle(fz::OracleKind::Optimizer, P.Source, Opts);
    if (R.Passed)
      continue;
    Caught = true;
    EXPECT_FALSE(R.InvalidProgram) << R.Detail;
    fz::ShrinkResult SR =
        fz::shrinkFailure(P.Source, fz::OracleKind::Optimizer, Opts);
    EXPECT_LE(SR.FinalLines, 25u) << SR.Source;
    EXPECT_LE(SR.FinalLines, SR.OriginalLines);
    // The minimized program must still trip the same oracle...
    fz::OracleResult RMin =
        fz::runOracle(fz::OracleKind::Optimizer, SR.Source, Opts);
    EXPECT_FALSE(RMin.Passed) << SR.Source;
    // ...and be a healthy program without the injected bug.
    fz::OracleOptions Clean;
    fz::OracleResult RClean =
        fz::runOracle(fz::OracleKind::Optimizer, SR.Source, Clean);
    EXPECT_TRUE(RClean.Passed) << RClean.Detail << "\n" << SR.Source;
  }
  EXPECT_TRUE(Caught) << "operand-swap miscompile never manifested";
}
