//===- tests/TestInterpreter.cpp - Interpreter and memory ---------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <cmath>

using namespace ipas;
using namespace ipas::testutil;

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

TEST(Memory, NullPageIsInvalid) {
  Memory Mem;
  EXPECT_FALSE(Mem.validRange(0, 8));
  EXPECT_FALSE(Mem.validRange(7, 8));
}

TEST(Memory, AllocationsAreValidAndAligned) {
  Memory Mem;
  uint64_t A = Mem.mallocBytes(64);
  ASSERT_NE(A, 0u);
  EXPECT_EQ(A % 8, 0u);
  EXPECT_TRUE(Mem.validRange(A, 64));
  Mem.write64(A + 8, 0xdeadbeef);
  EXPECT_EQ(Mem.read64(A + 8), 0xdeadbeefull);
}

TEST(Memory, HeapExhaustionReturnsNull) {
  Memory::Config Cfg;
  Cfg.HeapBytes = 1024;
  Memory Mem(Cfg);
  EXPECT_EQ(Mem.mallocBytes(1 << 20), 0u);
  EXPECT_NE(Mem.mallocBytes(512), 0u);
}

TEST(Memory, StackSaveRestore) {
  Memory Mem;
  uint64_t SP = Mem.stackPointer();
  uint64_t A = Mem.allocaBytes(128);
  ASSERT_NE(A, 0u);
  EXPECT_GT(Mem.stackPointer(), SP);
  Mem.restoreStackPointer(SP);
  EXPECT_EQ(Mem.stackPointer(), SP);
}

TEST(Memory, OverflowDetectedAtEnd) {
  Memory Mem;
  // Cross-boundary ranges are invalid even when the start is valid.
  uint64_t A = Mem.mallocBytes(16);
  EXPECT_TRUE(Mem.validRange(A, 16));
  EXPECT_FALSE(Mem.validRange(UINT64_MAX - 4, 8)); // wraparound guard
}

//===----------------------------------------------------------------------===//
// RtValue / fault model
//===----------------------------------------------------------------------===//

TEST(RtValue, RoundTrips) {
  EXPECT_EQ(RtValue::fromI64(-5).asI64(), -5);
  EXPECT_DOUBLE_EQ(RtValue::fromF64(2.75).asF64(), 2.75);
  EXPECT_TRUE(RtValue::fromBool(true).asBool());
  EXPECT_EQ(RtValue::fromPtr(4096).asPtr(), 4096u);
}

TEST(RtValue, FlipBitRespectsWidth) {
  RtValue B = RtValue::fromBool(true);
  B.flipBit(0, types::I1);
  EXPECT_FALSE(B.asBool());
  // Bit index wraps modulo the width: flipping "bit 65" of an i1 flips
  // bit 0 again... and bit 7 of an i1 wraps to bit 0 too.
  B.flipBit(7, types::I1);
  EXPECT_TRUE(B.asBool());

  RtValue V = RtValue::fromI64(0);
  V.flipBit(63, types::I64);
  EXPECT_LT(V.asI64(), 0);

  RtValue F = RtValue::fromF64(1.0);
  F.flipBit(62, types::F64); // exponent bit: huge change
  EXPECT_GT(std::fabs(F.asF64() - 1.0), 1.0);
}

/// Property: a double bit flip in the low mantissa produces a tiny
/// relative error; in the exponent, a large one.
class BitFlipMagnitude : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitFlipMagnitude, MantissaVsExponent) {
  unsigned Bit = GetParam();
  RtValue V = RtValue::fromF64(1.2345678);
  V.flipBit(Bit, types::F64);
  double RelErr = std::fabs(V.asF64() - 1.2345678) / 1.2345678;
  if (Bit < 26) {
    EXPECT_LT(RelErr, 1e-7) << "bit " << Bit;
  } else if (Bit >= 52 && Bit < 63) {
    // Exponent flips at least halve the value; some produce inf/NaN.
    EXPECT_TRUE(std::isnan(RelErr) || RelErr >= 0.5) << "bit " << Bit;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitFlipMagnitude,
                         ::testing::Values(0u, 5u, 12u, 20u, 25u, 52u, 55u,
                                           58u, 62u));

//===----------------------------------------------------------------------===//
// Interpreter semantics
//===----------------------------------------------------------------------===//

TEST(Interpreter, IntegerArithmeticMatchesNative) {
  const char *Src = "int f(int a, int b) { return (a + b) * (a - b); }";
  auto M = compile(Src);
  Rng R(5);
  for (int I = 0; I != 50; ++I) {
    int64_t A = R.nextInRange(-1000000, 1000000);
    int64_t B = R.nextInRange(-1000000, 1000000);
    RunResult Res = runFunction(
        *M, "f", {RtValue::fromI64(A), RtValue::fromI64(B)});
    EXPECT_EQ(Res.Value.asI64(), (A + B) * (A - B));
  }
}

TEST(Interpreter, DoubleArithmeticMatchesNative) {
  const char *Src =
      "double f(double a, double b) { return a / b + a * b - 1.0; }";
  auto M = compile(Src);
  Rng R(9);
  for (int I = 0; I != 50; ++I) {
    double A = R.nextDoubleIn(-100.0, 100.0);
    double B = R.nextDoubleIn(0.5, 10.0);
    RunResult Res = runFunction(
        *M, "f", {RtValue::fromF64(A), RtValue::fromF64(B)});
    EXPECT_DOUBLE_EQ(Res.Value.asF64(), A / B + A * B - 1.0);
  }
}

TEST(Interpreter, DivisionByZeroTraps) {
  auto M = compile("int f(int a) { return 10 / a; }");
  RunResult R = runFunction(*M, "f", {RtValue::fromI64(0)});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::DivByZero);
  R = runFunction(*M, "f", {RtValue::fromI64(2)});
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_EQ(R.Value.asI64(), 5);
}

TEST(Interpreter, IntMinDivMinusOneTraps) {
  auto M = compile("int f(int a, int b) { return a / b; }");
  RunResult R = runFunction(
      *M, "f", {RtValue::fromI64(INT64_MIN), RtValue::fromI64(-1)});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::DivByZero);
}

TEST(Interpreter, OutOfBoundsAccessTraps) {
  auto M = compile("double f(int i) { double a[4]; a[0] = 1.0;\n"
                   "  return a[i]; }");
  RunResult R = runFunction(*M, "f", {RtValue::fromI64(100000000)});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::OutOfBounds);
  R = runFunction(*M, "f", {RtValue::fromI64(-100000000)});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
}

TEST(Interpreter, ModuloByZeroTraps) {
  auto M = compile("int f(int a, int b) { return a % b; }");
  RunResult R = runFunction(*M, "f", {RtValue::fromI64(10), RtValue::fromI64(0)});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::DivByZero);
  // INT64_MIN % -1 raises SIGFPE on x86 just like the division.
  R = runFunction(*M, "f", {RtValue::fromI64(INT64_MIN), RtValue::fromI64(-1)});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::DivByZero);
  R = runFunction(*M, "f", {RtValue::fromI64(10), RtValue::fromI64(3)});
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_EQ(R.Value.asI64(), 1);
}

TEST(Interpreter, OutOfBoundsStoreTraps) {
  auto M = compile("int f(int i) { double a[4]; a[i] = 1.0; return 0; }");
  // Far enough past the whole address space (stack + heap), since the
  // memory model validates addresses, not per-object extents.
  RunResult R = runFunction(*M, "f", {RtValue::fromI64(100000000)});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::OutOfBounds);
  // Exact boundary: a[4] is one slot past a 4-element array. The stack
  // allocator packs later slots there, so a naive bounds check that only
  // validates addresses (not object extents) cannot catch it; assert the
  // well-defined accesses around it instead and that a[4] on the *last*
  // stack object traps.
  auto M2 = compile("int f(int i) { double a[4];\n"
                    "  for (int k = 0; k < 4; k = k + 1) a[k] = 1.0 * k;\n"
                    "  a[i] = 9.0; return (int)a[3]; }");
  RunResult Edge = runFunction(*M2, "f", {RtValue::fromI64(3)});
  EXPECT_EQ(Edge.Status, RunStatus::Finished);
  EXPECT_EQ(Edge.Value.asI64(), 9);
  RunResult Neg = runFunction(*M2, "f", {RtValue::fromI64(-1)});
  EXPECT_EQ(Neg.Status, RunStatus::Trapped);
  EXPECT_EQ(Neg.Trap, TrapKind::OutOfBounds);
}

TEST(Interpreter, NullPointerDereferenceTraps) {
  // A pointer read before any assignment is defined as null (mem2reg
  // seeds undef with zero); address 0 sits in the guard region, so both
  // the load and the store through it must trap, not corrupt memory.
  auto MLoad = compile("double f() { double* p; return p[0]; }");
  RunResult R = runFunction(*MLoad, "f", {});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::OutOfBounds);

  auto MStore = compile("int f() { double* p; p[0] = 1.0; return 0; }");
  R = runFunction(*MStore, "f", {});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::OutOfBounds);

  // Same guarantee without mem2reg: the zero-filled alloca slot itself
  // yields the null pointer.
  auto MRaw = compile("double f() { double* p; return p[3]; }",
                      /*RunMem2Reg=*/false);
  R = runFunction(*MRaw, "f", {});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::OutOfBounds);
}

TEST(Interpreter, FpDivisionByZeroDoesNotTrap) {
  // IEEE semantics: inf, not a hardware exception.
  auto M = compile("double f(double a) { return a / 0.0; }");
  RunResult R = runFunction(*M, "f", {RtValue::fromF64(1.0)});
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_TRUE(std::isinf(R.Value.asF64()));
}

TEST(Interpreter, DeepRecursionTrapsOnCallDepth) {
  auto M = compile("int f(int n) { if (n <= 0) return 0;\n"
                   "  return 1 + f(n - 1); }");
  RunResult R = runFunction(*M, "f", {RtValue::fromI64(100000)});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::CallDepthExceeded);
  R = runFunction(*M, "f", {RtValue::fromI64(100)});
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_EQ(R.Value.asI64(), 100);
}

TEST(Interpreter, StackRestoredAcrossCalls) {
  // Each call allocates a frame array; without restore the stack would
  // overflow long before 20000 iterations.
  auto M = compile("int g(int x) { double t[64]; t[0] = 1.0 * x;\n"
                   "  return (int)t[0]; }\n"
                   "int f() { int s = 0;\n"
                   "  for (int i = 0; i < 20000; i = i + 1) s = g(i);\n"
                   "  return s; }");
  RunResult R = runFunction(*M, "f", {});
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_EQ(R.Value.asI64(), 19999);
}

TEST(Interpreter, OutOfStepsIsResumable) {
  auto M = compile("int f() { int s = 0;\n"
                   "  for (int i = 0; i < 1000; i = i + 1) s += i;\n"
                   "  return s; }");
  ModuleLayout Layout(*M);
  ExecutionContext Ctx(Layout);
  Ctx.start(M->getFunction("f"), {});
  EXPECT_EQ(Ctx.run(10), RunStatus::OutOfSteps);
  EXPECT_EQ(Ctx.run(100), RunStatus::OutOfSteps);
  EXPECT_EQ(Ctx.run(UINT64_MAX), RunStatus::Finished);
  EXPECT_EQ(Ctx.returnValue().asI64(), 499500);
}

TEST(Interpreter, StepCountsAreDeterministic) {
  auto M = compile("int f(int n) { int s = 0;\n"
                   "  for (int i = 0; i < n; i = i + 1) s += i;\n"
                   "  return s; }");
  RunResult A = runFunction(*M, "f", {RtValue::fromI64(50)});
  RunResult B = runFunction(*M, "f", {RtValue::fromI64(50)});
  EXPECT_EQ(A.Steps, B.Steps);
  RunResult C = runFunction(*M, "f", {RtValue::fromI64(51)});
  EXPECT_GT(C.Steps, A.Steps);
}

TEST(Interpreter, FaultInjectionHitsExactInstance) {
  // f returns a + a; flipping bit 1 of the first add's result changes the
  // return by exactly +-2 when the fault lands pre-return.
  auto M = compile("int f(int a) { int b = a + a; return b; }");
  ModuleLayout Layout(*M);
  FaultPlan Plan;
  Plan.TargetValueStep = 0; // the add
  Plan.BitDraw = 1;
  ExecutionContext Ctx(Layout);
  Ctx.setFaultPlan(Plan);
  Ctx.start(M->getFunction("f"), {RtValue::fromI64(10)});
  EXPECT_EQ(Ctx.run(UINT64_MAX), RunStatus::Finished);
  EXPECT_TRUE(Ctx.faultWasInjected());
  EXPECT_EQ(Ctx.returnValue().asI64(), 20 ^ 2);
}

TEST(Interpreter, FaultBeyondExecutionNeverInjects) {
  auto M = compile("int f() { return 1 + 2; }");
  ModuleLayout Layout(*M);
  FaultPlan Plan;
  Plan.TargetValueStep = 1000000;
  ExecutionContext Ctx(Layout);
  Ctx.setFaultPlan(Plan);
  Ctx.start(M->getFunction("f"), {});
  EXPECT_EQ(Ctx.run(UINT64_MAX), RunStatus::Finished);
  EXPECT_FALSE(Ctx.faultWasInjected());
  EXPECT_EQ(Ctx.returnValue().asI64(), 3);
}

TEST(Interpreter, FaultedInstructionIdIsRecorded) {
  auto M = compile("int f(int a) { int b = a * 2; int c = b + 1;\n"
                   "  return c; }");
  ModuleLayout Layout(*M);
  for (uint64_t Step : {0ull, 1ull}) {
    FaultPlan Plan;
    Plan.TargetValueStep = Step;
    Plan.BitDraw = 0;
    ExecutionContext Ctx(Layout);
    Ctx.setFaultPlan(Plan);
    Ctx.start(M->getFunction("f"), {RtValue::fromI64(3)});
    Ctx.run(UINT64_MAX);
    ASSERT_TRUE(Ctx.faultWasInjected());
    const Instruction *Hit = nullptr;
    for (Instruction *I : M->allInstructions())
      if (I->id() == Ctx.faultedInstructionId())
        Hit = I;
    ASSERT_NE(Hit, nullptr);
    EXPECT_EQ(Hit->opcode(), Step == 0 ? Opcode::Mul : Opcode::Add);
  }
}

TEST(Interpreter, PhisReadSimultaneously) {
  // Swap two values through a loop: phis must snapshot their inputs.
  auto M = compile("int f(int n) { int a = 1; int b = 2;\n"
                   "  for (int i = 0; i < n; i = i + 1) {\n"
                   "    int t = a; a = b; b = t;\n"
                   "  }\n"
                   "  return a * 10 + b; }");
  EXPECT_EQ(runFunction(*M, "f", {RtValue::fromI64(0)}).Value.asI64(), 12);
  EXPECT_EQ(runFunction(*M, "f", {RtValue::fromI64(1)}).Value.asI64(), 21);
  EXPECT_EQ(runFunction(*M, "f", {RtValue::fromI64(2)}).Value.asI64(), 12);
}

TEST(Interpreter, CheckMismatchRaisesDetected) {
  // Build a function with a check that cannot pass: check(x, x+1).
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {types::I64});
  IRBuilder B(M);
  B.setInsertPoint(F->addBlock("entry"));
  Value *X = B.createAdd(F->arg(0), B.getInt64(0));
  Value *Y = B.createAdd(F->arg(0), B.getInt64(1));
  B.insertBlock()->append(std::make_unique<CheckInst>(X, Y));
  B.createRet(X);
  M.renumber();
  RunResult R = runFunction(M, "f", {RtValue::fromI64(5)});
  EXPECT_EQ(R.Status, RunStatus::Detected);
}

TEST(Interpreter, MallocZeroAndNegative) {
  auto M = compile("int f(int n) { double* p = (double*)malloc(n);\n"
                   "  p[0] = 1.0; return (int)p[0]; }");
  // Zero slots still yields a valid (minimal) allocation.
  EXPECT_EQ(runFunction(*M, "f", {RtValue::fromI64(0)}).Value.asI64(), 1);
  // Negative requests trap.
  RunResult R = runFunction(*M, "f", {RtValue::fromI64(-5)});
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::OutOfMemory);
}

TEST(Interpreter, SingleRankMpiSemantics) {
  auto M = compile("double f(double x) {\n"
                   "  int r = mpi_rank(); int s = mpi_size();\n"
                   "  mpi_barrier();\n"
                   "  double sum = mpi_allreduce_sum_d(x);\n"
                   "  double m = mpi_allreduce_max_d(x * 2.0);\n"
                   "  return sum + m + r + s; }");
  RunResult R = runFunction(*M, "f", {RtValue::fromF64(3.0)});
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_DOUBLE_EQ(R.Value.asF64(), 3.0 + 6.0 + 0.0 + 1.0);
}

TEST(Interpreter, FPToSIOutOfRangeSaturates) {
  auto M = compile("int f(double x) { return (int)x; }");
  RunResult R = runFunction(*M, "f", {RtValue::fromF64(1e300)});
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_EQ(R.Value.asI64(), INT64_MIN); // x86 "integer indefinite"
  R = runFunction(*M, "f", {RtValue::fromF64(0.0 / 0.0)});
  EXPECT_EQ(R.Value.asI64(), INT64_MIN);
}
