//===- tests/TestDataflow.cpp - Dataflow framework unit tests -----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace ipas;

TEST(BitSet, SetTestResetCount) {
  BitSet S(130); // crosses two word boundaries
  EXPECT_EQ(S.size(), 130u);
  EXPECT_EQ(S.count(), 0u);
  S.set(0);
  S.set(64);
  S.set(129);
  EXPECT_TRUE(S.test(0));
  EXPECT_TRUE(S.test(64));
  EXPECT_TRUE(S.test(129));
  EXPECT_FALSE(S.test(1));
  EXPECT_EQ(S.count(), 3u);
  S.reset(64);
  EXPECT_FALSE(S.test(64));
  EXPECT_EQ(S.count(), 2u);
}

TEST(BitSet, FillKeepsPaddingClear) {
  BitSet S(70);
  S.fill();
  EXPECT_EQ(S.count(), 70u);
  for (unsigned I = 0; I != 70; ++I)
    EXPECT_TRUE(S.test(I));
}

TEST(BitSet, UnionIntersectSubtractAndChangeFlags) {
  BitSet A(10), B(10);
  A.set(1);
  A.set(3);
  B.set(3);
  B.set(5);
  EXPECT_TRUE(A.unionWith(B)); // gains bit 5
  EXPECT_TRUE(A.test(1));
  EXPECT_TRUE(A.test(5));
  EXPECT_FALSE(A.unionWith(B)); // already a superset: no change

  BitSet C(10);
  C.set(3);
  C.set(5);
  EXPECT_TRUE(A.intersectWith(C)); // loses bit 1
  EXPECT_FALSE(A.test(1));
  EXPECT_TRUE(A.test(3));
  EXPECT_FALSE(A.intersectWith(C));

  BitSet D(10);
  D.set(3);
  A.subtract(D);
  EXPECT_FALSE(A.test(3));
  EXPECT_TRUE(A.test(5));
}

TEST(BitSet, EqualityIncludesWidth) {
  BitSet A(5), B(5), C(6);
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == C);
  A.set(2);
  EXPECT_TRUE(A != B);
  B.set(2);
  EXPECT_TRUE(A == B);
}

namespace {

/// entry: x = a + 1; condbr c -> t | e
/// t:     y = x * 2; br m
/// e:     z = x + 3; br m
/// m:     p = phi [y, t], [z, e]; ret p
struct DiamondFn {
  Module M{"m"};
  Function *F;
  BasicBlock *Entry, *T, *E, *Merge;
  Instruction *X, *Y, *Z;
  PhiInst *P;

  DiamondFn() {
    F = M.createFunction("f", types::I64, {types::I1, types::I64});
    Entry = F->addBlock("entry");
    T = F->addBlock("t");
    E = F->addBlock("e");
    Merge = F->addBlock("m");
    IRBuilder B(M);
    B.setInsertPoint(Entry);
    X = cast<Instruction>(B.createAdd(F->arg(1), M.getInt64(1)));
    B.createCondBr(F->arg(0), T, E);
    B.setInsertPoint(T);
    Y = cast<Instruction>(B.createMul(X, M.getInt64(2)));
    B.createBr(Merge);
    B.setInsertPoint(E);
    Z = cast<Instruction>(B.createAdd(X, M.getInt64(3)));
    B.createBr(Merge);
    B.setInsertPoint(Merge);
    P = B.createPhi(types::I64, "p");
    P->addIncoming(Y, T);
    P->addIncoming(Z, E);
    B.createRet(P);
    M.renumber();
  }
};

} // namespace

TEST(ValueNumbering, ArgumentsFirstThenLayoutOrder) {
  DiamondFn D;
  ValueNumbering N(*D.F);
  // 2 arguments + 8 instructions.
  EXPECT_EQ(N.size(), 10u);
  EXPECT_EQ(N.indexOf(D.F->arg(0)), 0u);
  EXPECT_EQ(N.indexOf(D.F->arg(1)), 1u);
  EXPECT_EQ(N.indexOf(D.X), 2u);
  EXPECT_EQ(N.valueAt(2), D.X);
  EXPECT_TRUE(N.has(D.P));
  EXPECT_FALSE(N.has(D.M.getInt64(1))); // constants are not numbered
}

TEST(Liveness, DiamondFacts) {
  DiamondFn D;
  LivenessAnalysis L(*D.F);
  // Both arguments are upward-exposed in entry.
  EXPECT_TRUE(L.isLiveIn(D.F->arg(0), D.Entry));
  EXPECT_TRUE(L.isLiveIn(D.F->arg(1), D.Entry));
  // x is defined in entry: live out of entry, not live into it.
  EXPECT_FALSE(L.isLiveIn(D.X, D.Entry));
  EXPECT_TRUE(L.isLiveOut(D.X, D.Entry));
  EXPECT_TRUE(L.isLiveIn(D.X, D.T));
  EXPECT_TRUE(L.isLiveIn(D.X, D.E));
  // x is dead past the branches; phi operands are conservatively live
  // into the phi's block.
  EXPECT_FALSE(L.isLiveIn(D.X, D.Merge));
  EXPECT_TRUE(L.isLiveIn(D.Y, D.Merge));
  EXPECT_TRUE(L.isLiveIn(D.Z, D.Merge));
  // Nothing is live out of the returning block.
  EXPECT_EQ(L.liveOut(D.Merge).count(), 0u);
}

TEST(Liveness, LoopCarriedValues) {
  // entry: br loop
  // loop:  i = phi [a, entry], [inc, loop]
  //        inc = i + 1; c = icmp lt inc, b; condbr c -> loop | exit
  // exit:  ret inc
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {types::I64, types::I64});
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Loop = F->addBlock("loop");
  BasicBlock *Exit = F->addBlock("exit");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  PhiInst *I = B.createPhi(types::I64, "i");
  Value *Inc = B.createAdd(I, M.getInt64(1));
  Value *C = B.createICmp(CmpPredicate::LT, Inc, F->arg(1));
  B.createCondBr(C, Loop, Exit);
  I->addIncoming(F->arg(0), Entry);
  I->addIncoming(Inc, Loop);
  B.setInsertPoint(Exit);
  B.createRet(Inc);
  M.renumber();

  LivenessAnalysis L(*F);
  // The bound b is live around the whole loop.
  EXPECT_TRUE(L.isLiveIn(F->arg(1), Loop));
  EXPECT_TRUE(L.isLiveOut(F->arg(1), Entry));
  // inc is live out of the loop (used by exit and by the backedge phi).
  EXPECT_TRUE(L.isLiveOut(Inc, Loop));
  EXPECT_TRUE(L.isLiveIn(Inc, Exit));
}

TEST(CheckCoverage, MustMeetRequiresChecksOnAllPaths) {
  // A check on only one branch of a diamond does not cover the merge.
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {types::I1, types::I64});
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *T = F->addBlock("t");
  BasicBlock *E = F->addBlock("e");
  BasicBlock *Merge = F->addBlock("m");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  Value *V = B.createAdd(F->arg(1), M.getInt64(1));
  B.createCondBr(F->arg(0), T, E);
  B.setInsertPoint(T);
  T->append(std::make_unique<CheckInst>(V, V));
  B.createBr(Merge);
  B.setInsertPoint(E);
  B.createBr(Merge);
  B.setInsertPoint(Merge);
  B.createRet(V);
  M.renumber();

  CheckCoverageAnalysis Cov(*F);
  EXPECT_TRUE(Cov.isCoveredAtBlockEnd(V, T));
  EXPECT_FALSE(Cov.isCoveredAtBlockEnd(V, E));
  EXPECT_FALSE(Cov.isCoveredAtBlockEnd(V, Merge));

  // A second check on the other branch completes the must-coverage.
  E->insertBefore(E->terminator(), std::make_unique<CheckInst>(V, V));
  CheckCoverageAnalysis Cov2(*F);
  EXPECT_TRUE(Cov2.isCoveredAtBlockEnd(V, E));
  EXPECT_TRUE(Cov2.isCoveredAtBlockEnd(V, Merge));
}

TEST(CheckCoverage, ShadowChainCoversWholePath) {
  // add -> mul duplication path with one path-end check: the chain walk
  // through the shadows covers the un-checked add too.
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {types::I64});
  BasicBlock *BB = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  auto *Add = cast<Instruction>(B.createAdd(F->arg(0), M.getInt64(1)));
  auto *AddS = cast<Instruction>(B.createAdd(F->arg(0), M.getInt64(1)));
  auto *Mul = cast<Instruction>(B.createMul(Add, M.getInt64(2)));
  auto *MulS = cast<Instruction>(B.createMul(AddS, M.getInt64(2)));
  Add->setDupRole(DupRole::Original);
  AddS->setDupRole(DupRole::Shadow);
  AddS->setDupLink(Add);
  Mul->setDupRole(DupRole::Original);
  MulS->setDupRole(DupRole::Shadow);
  MulS->setDupLink(Mul);
  BB->append(std::make_unique<CheckInst>(Mul, MulS));
  B.createRet(Mul);
  M.renumber();

  CheckCoverageAnalysis Cov(*F);
  EXPECT_TRUE(Cov.isCoveredAtBlockEnd(Mul, BB));
  EXPECT_TRUE(Cov.isCoveredAtBlockEnd(Add, BB));
  // The shadows themselves are not covered values.
  EXPECT_FALSE(Cov.isCoveredAtBlockEnd(AddS, BB));
}

TEST(DataflowSolver, ReportsTransferCount) {
  DiamondFn D;
  LivenessAnalysis L(*D.F);
  (void)L;
  ValueNumbering N(*D.F);
  CheckCoverageAnalysis Cov(*D.F);
  (void)Cov;
  // Indirect convergence check: rebuilding the analyses above must not
  // loop forever; a direct solver probe confirms at least one transfer
  // per block ran.
  class CountProbe : public GenKillProblem {
  public:
    explicit CountProbe(unsigned W) : Empty(W) {}
    DataflowDirection direction() const override {
      return DataflowDirection::Forward;
    }
    MeetKind meet() const override { return MeetKind::Union; }
    BitSet boundaryState() const override { return Empty; }
    BitSet initialState() const override { return Empty; }
    const BitSet &genSet(const BasicBlock *) const override { return Empty; }
    const BitSet &killSet(const BasicBlock *) const override {
      return Empty;
    }

  private:
    BitSet Empty;
  };
  CountProbe P(N.size());
  DataflowSolver S(*D.F, P);
  S.solve();
  EXPECT_GE(S.transfersApplied(), D.F->numBlocks());
}
