//===- tests/TestSupport.cpp - Rng, statistics, ArgParser ---------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"
#include "support/Random.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace ipas;

TEST(Rng, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_EQ(Same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng R(99);
  const int Buckets = 10;
  const int N = 100000;
  int Counts[Buckets] = {};
  for (int I = 0; I != N; ++I)
    ++Counts[R.nextBelow(Buckets)];
  for (int C : Counts) {
    EXPECT_GT(C, N / Buckets * 0.9);
    EXPECT_LT(C, N / Buckets * 1.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng R(5);
  double Sum = 0.0;
  for (int I = 0; I != 10000; ++I) {
    double X = R.nextDouble();
    ASSERT_GE(X, 0.0);
    ASSERT_LT(X, 1.0);
    Sum += X;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(3);
  std::set<int64_t> Seen;
  for (int I = 0; I != 1000; ++I)
    Seen.insert(R.nextInRange(-2, 2));
  EXPECT_EQ(Seen.size(), 5u);
  EXPECT_EQ(*Seen.begin(), -2);
  EXPECT_EQ(*Seen.rbegin(), 2);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng A(11);
  Rng B = A.split();
  // The split stream should not track the parent.
  int Same = 0;
  for (int I = 0; I != 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_EQ(Same, 0);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng R(17);
  std::vector<int> V{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  R.shuffle(V.size(), [&](size_t A, size_t B) { std::swap(V[A], V[B]); });
  std::set<int> S(V.begin(), V.end());
  EXPECT_EQ(S.size(), 10u);
}

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat S;
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
  S.add(3.5);
  EXPECT_DOUBLE_EQ(S.mean(), 3.5);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(Statistics, ZCriticalValues) {
  // Standard two-sided critical values.
  EXPECT_NEAR(zCriticalValue(0.95), 1.9600, 1e-3);
  EXPECT_NEAR(zCriticalValue(0.99), 2.5758, 1e-3);
  EXPECT_NEAR(zCriticalValue(0.90), 1.6449, 1e-3);
}

TEST(Statistics, ProportionMarginOfError) {
  // The paper (§6.2) reports ~0.71%-1.34% margins for 1,024-run campaigns
  // at 95% confidence; check the formula reproduces that range.
  double M = proportionMarginOfError(0.05, 1024, 0.95);
  EXPECT_NEAR(M, 0.0133, 5e-4);
  EXPECT_EQ(proportionMarginOfError(0.5, 0), 1.0);
  EXPECT_LT(proportionMarginOfError(0.05, 4096),
            proportionMarginOfError(0.05, 1024));
}

TEST(Statistics, MeanAndStddev) {
  std::vector<double> Xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(Xs), 2.5);
  EXPECT_NEAR(sampleStddev(Xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(sampleStddev({1.0}), 0.0);
}

TEST(Statistics, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(euclideanDistance(0, 0, 3, 4), 5.0);
  EXPECT_DOUBLE_EQ(euclideanDistance(1, 1, 1, 1), 0.0);
}

TEST(ArgParser, ParsesTypedFlags) {
  int64_t Runs = 0;
  double Factor = 0.0;
  std::string Name;
  bool Flag = false;
  ArgParser P("test");
  P.addInt("runs", &Runs, "runs");
  P.addDouble("factor", &Factor, "factor");
  P.addString("name", &Name, "name");
  P.addBool("flag", &Flag, "flag");
  const char *Argv[] = {"prog", "--runs", "42", "--factor=2.5",
                        "--name", "fft",  "--flag"};
  ASSERT_TRUE(P.parse(7, Argv));
  EXPECT_EQ(Runs, 42);
  EXPECT_DOUBLE_EQ(Factor, 2.5);
  EXPECT_EQ(Name, "fft");
  EXPECT_TRUE(Flag);
}

TEST(ArgParser, RejectsUnknownFlag) {
  ArgParser P("test");
  const char *Argv[] = {"prog", "--nope"};
  EXPECT_FALSE(P.parse(2, Argv));
}

TEST(ArgParser, RejectsMalformedNumber) {
  int64_t Runs = 0;
  ArgParser P("test");
  P.addInt("runs", &Runs, "runs");
  const char *Argv[] = {"prog", "--runs", "abc"};
  EXPECT_FALSE(P.parse(3, Argv));
}

TEST(ArgParser, CollectsPositionals) {
  ArgParser P("test");
  const char *Argv[] = {"prog", "one", "two"};
  ASSERT_TRUE(P.parse(3, Argv));
  ASSERT_EQ(P.positionals().size(), 2u);
  EXPECT_EQ(P.positionals()[0], "one");
}
