//===- tests/TestPropagation.cpp - Dynamic fault-propagation tracer -------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ground-truth tests for the shadow-dual-execution tracer
// (fault/Propagation.h) and the `.ipprop` store (obs/Propagation.h):
//
//  - micro-programs with hand-derived masking behaviour, asserting the
//    exact depth / masking / first-output-step the tracer must report;
//  - byte-level round-trip plus rejection of corrupted/truncated stores;
//  - a soundness sweep over generated programs: no statically
//    provably-benign site may ever dynamically corrupt output;
//  - the record-stream invariant: sampled tracing must not perturb the
//    campaign's (InstructionId, BitIndex, Result) stream at any thread
//    count.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/SocPropagation.h"
#include "fault/Campaign.h"
#include "fault/FunctionHarness.h"
#include "fault/Propagation.h"
#include "obs/Propagation.h"
#include "testing/ProgramGen.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

using namespace ipas;
using testutil::compile;

namespace {

unsigned firstInstructionId(const Module &M, Opcode Op) {
  for (const Instruction *I : M.allInstructions())
    if (I->opcode() == Op)
      return I->id();
  ADD_FAILURE() << "no instruction with opcode " << opcodeName(Op);
  return 0;
}

uint64_t stepOf(const std::vector<unsigned> &Trace, unsigned Id) {
  for (size_t K = 0; K != Trace.size(); ++K)
    if (Trace[K] == Id)
      return K;
  ADD_FAILURE() << "instruction " << Id << " never committed a value";
  return 0;
}

/// Traces one injection into the first \p TargetOp of f(\p Arg), flipping
/// \p Bit of its first dynamic result commit.
struct TraceResult {
  obs::PropRecord Rec;
  unsigned TargetId = 0;
};

TraceResult traceOne(Module &M, int64_t Arg, Opcode TargetOp, unsigned Bit) {
  ModuleLayout Layout(M);
  FunctionHarness H("f", {RtValue::fromI64(Arg)});
  TraceResult TR;
  TR.TargetId = firstInstructionId(M, TargetOp);
  std::vector<unsigned> Trace = H.traceValueSteps(Layout);
  EXPECT_FALSE(Trace.empty());
  uint64_t Step = stepOf(Trace, TR.TargetId);
  CleanReference Ref = captureCleanReference(H, Layout);
  EXPECT_TRUE(Ref.Valid);
  FaultPlan Plan;
  Plan.TargetValueStep = Step;
  Plan.BitDraw = Bit;
  TR.Rec = tracePropagation(H, Layout, Ref, Plan, 100000000ull, /*RunIndex=*/0);
  return TR;
}

const obs::PropEdge *findEdge(const obs::PropRecord &R, unsigned Src,
                              unsigned Dst, uint8_t Kind) {
  for (const obs::PropEdge &E : R.Edges)
    if (E.SrcId == Src && E.DstId == Dst && E.Kind == Kind)
      return &E;
  return nullptr;
}

uint8_t code(Outcome O) { return static_cast<uint8_t>(O); }
uint8_t code(Opcode O) { return static_cast<uint8_t>(O); }

} // namespace

//===----------------------------------------------------------------------===//
// Known-masking micro-programs: exact depth / masking / latency.
//===----------------------------------------------------------------------===//

// The corrupted value reaches a store, then a clean store to the same
// slot overwrites it before anything reads it back: exactly one
// overwrite-masking event, depth 1 (injection -> store), and the
// corruption *did* reach output state for two value steps.
TEST(Propagation, OverwriteMaskingIsAttributedToTheStore) {
  // a[0] stays in memory (arrays are not mem2reg-promoted), so the IR is
  //   %0 = add %x, 1 ; store %0 ; store 5 ; %4 = load ; %5 = add %4, 1
  std::unique_ptr<Module> M = compile("int f(int x) {\n"
                                      "  int a[1];\n"
                                      "  int t = x + 1;\n"
                                      "  a[0] = t;\n"
                                      "  a[0] = 5;\n"
                                      "  return a[0] + 1;\n"
                                      "}\n");
  ASSERT_TRUE(M);
  TraceResult TR = traceOne(*M, /*Arg=*/4, Opcode::Add, /*Bit=*/3);
  const obs::PropRecord &R = TR.Rec;

  EXPECT_EQ(R.Outcome, code(Outcome::Masked));
  EXPECT_EQ(R.ControlDiverged, 0u);
  EXPECT_EQ(R.CorruptedValues, 1u);  // Only the injected add itself.
  EXPECT_EQ(R.PropagationDepth, 1u); // Injection (0) -> store (1).
  EXPECT_EQ(R.MaskedOverwrite, 1u);
  EXPECT_EQ(R.MaskedLogical, 0u);
  EXPECT_EQ(R.MaskedDead, 0u);
  EXPECT_EQ(R.DynReachMask, obs::PropReachStore);

  // Corruption touched the stored output slot before dying: commits run
  // alloca(0) add(1=injection) gep(2) store, so the store fires at value
  // step 3 and the latency is 2.
  EXPECT_TRUE(R.reachedOutput());
  EXPECT_EQ(R.latencyToOutput(), 2u);

  ASSERT_EQ(R.Edges.size(), 1u);
  unsigned StoreId = firstInstructionId(*M, Opcode::Store);
  const obs::PropEdge *E =
      findEdge(R, TR.TargetId, StoreId, obs::PropEdgeDefUse);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Count, 1u);

  ASSERT_EQ(R.Masks.size(), 1u);
  EXPECT_EQ(R.Masks[0].Opcode, code(Opcode::Store));
  EXPECT_EQ(R.Masks[0].Kind, obs::PropMaskOverwrite);
  EXPECT_EQ(R.Masks[0].Count, 1u);
}

// Flipping bit 0 of x*x (16 -> 17) cannot change `t >= 0`: the icmp
// absorbs the corruption logically. Nothing propagates, nothing reaches
// any sink, and control flow stays on the clean path.
TEST(Propagation, LogicalMaskingAtComparison) {
  std::unique_ptr<Module> M = compile("int f(int x) {\n"
                                      "  int t = x * x;\n"
                                      "  if (t >= 0) { return 1; }\n"
                                      "  return 0;\n"
                                      "}\n");
  ASSERT_TRUE(M);
  TraceResult TR = traceOne(*M, /*Arg=*/4, Opcode::Mul, /*Bit=*/0);
  const obs::PropRecord &R = TR.Rec;

  EXPECT_EQ(R.Outcome, code(Outcome::Masked));
  EXPECT_EQ(R.ControlDiverged, 0u);
  EXPECT_EQ(R.CorruptedValues, 1u);
  EXPECT_EQ(R.PropagationDepth, 0u); // Corruption never left the injection.
  EXPECT_EQ(R.MaskedLogical, 1u);
  EXPECT_EQ(R.MaskedOverwrite, 0u);
  EXPECT_EQ(R.MaskedDead, 0u);
  EXPECT_EQ(R.DynReachMask, 0u);
  EXPECT_TRUE(R.Edges.empty());

  EXPECT_FALSE(R.reachedOutput());
  EXPECT_EQ(R.latencyToOutput(), UINT64_MAX);

  ASSERT_EQ(R.Masks.size(), 1u);
  EXPECT_EQ(R.Masks[0].Opcode, code(Opcode::ICmp));
  EXPECT_EQ(R.Masks[0].Kind, obs::PropMaskLogical);
  EXPECT_EQ(R.Masks[0].Count, 1u);
}

// A straight-line chain add -> mul -> sub -> store -> load -> ret: every
// hop corrupts, nothing masks, and the record reconstructs the exact
// chain with its depth and output latency.
TEST(Propagation, ChainDepthLatencyAndEdges) {
  std::unique_ptr<Module> M = compile("int f(int x) {\n"
                                      "  int a[1];\n"
                                      "  int t1 = x + 1;\n"
                                      "  int t2 = t1 * 2;\n"
                                      "  int t3 = t2 - 3;\n"
                                      "  a[0] = t3;\n"
                                      "  return a[0];\n"
                                      "}\n");
  ASSERT_TRUE(M);
  // x=4: t1 = 5, flip bit 2 -> 1; every downstream value diverges.
  TraceResult TR = traceOne(*M, /*Arg=*/4, Opcode::Add, /*Bit=*/2);
  const obs::PropRecord &R = TR.Rec;

  EXPECT_EQ(R.Outcome, code(Outcome::SOC));
  EXPECT_EQ(R.ControlDiverged, 0u);
  EXPECT_EQ(R.CorruptedValues, 4u);  // add, mul, sub, load.
  EXPECT_EQ(R.PropagationDepth, 4u); // ... store = 3, load = 4.
  EXPECT_EQ(R.MaskedLogical, 0u);
  EXPECT_EQ(R.MaskedOverwrite, 0u);
  EXPECT_EQ(R.MaskedDead, 0u);
  EXPECT_TRUE(R.Masks.empty());
  EXPECT_EQ(R.DynReachMask, obs::PropReachStore | obs::PropReachReturn);

  // Commits: alloca(0) add(1=injection) mul(2) sub(3) gep(4), store at
  // value step 5 -> latency 4.
  EXPECT_TRUE(R.reachedOutput());
  EXPECT_EQ(R.latencyToOutput(), 4u);

  unsigned AddId = TR.TargetId;
  unsigned MulId = firstInstructionId(*M, Opcode::Mul);
  unsigned SubId = firstInstructionId(*M, Opcode::Sub);
  unsigned StoreId = firstInstructionId(*M, Opcode::Store);
  unsigned LoadId = firstInstructionId(*M, Opcode::Load);
  ASSERT_EQ(R.Edges.size(), 4u);
  EXPECT_NE(findEdge(R, AddId, MulId, obs::PropEdgeDefUse), nullptr);
  EXPECT_NE(findEdge(R, MulId, SubId, obs::PropEdgeDefUse), nullptr);
  EXPECT_NE(findEdge(R, SubId, StoreId, obs::PropEdgeDefUse), nullptr);
  EXPECT_NE(findEdge(R, StoreId, LoadId, obs::PropEdgeMemory), nullptr);
}

//===----------------------------------------------------------------------===//
// `.ipprop` round-trip and corruption rejection.
//===----------------------------------------------------------------------===//

namespace {

obs::PropagationStore makeSyntheticStore() {
  obs::PropagationStore S;
  S.ModuleName = "synthetic.mc";
  S.EntryFunction = "run";
  S.Label = "unit";
  S.Seed = 0xABCDu;
  S.SampleEvery = 4;
  S.TotalRuns = 64;
  S.CleanSteps = 123;
  S.CleanValueSteps = 77;
  S.Functions = {"run", "helper"};

  obs::PropInstr I0;
  I0.Id = 0;
  I0.Opcode = code(Opcode::Add);
  I0.StaticBenign = 1;
  I0.Predicted = 2;
  I0.Line = 3;
  I0.Col = 9;
  I0.FunctionIndex = 0;
  I0.StaticSinkMask = 0;
  obs::PropInstr I1;
  I1.Id = 1;
  I1.Opcode = code(Opcode::Store);
  I1.FunctionIndex = 1;
  I1.StaticSinkMask = obs::PropReachStore | obs::PropReachReturn;
  S.Instructions = {I0, I1};

  obs::PropRecord R0;
  R0.RunIndex = 8;
  R0.InstructionId = 0;
  R0.BitIndex = 17;
  R0.TargetValueStep = 42;
  R0.Outcome = code(Outcome::SOC);
  R0.ControlDiverged = 1;
  R0.DynReachMask = obs::PropReachStore | obs::PropReachControlFlow;
  R0.PropagationDepth = 6;
  R0.CorruptedValues = 19;
  R0.InjectionStep = 40;
  R0.FirstOutputStep = 55;
  R0.MaskedLogical = 2;
  R0.MaskedOverwrite = 1;
  R0.MaskedDead = 3;
  R0.Edges = {{0, 1, obs::PropEdgeDefUse, 5},
              {1, 0, obs::PropEdgeMemory, 2},
              {0, 0, obs::PropEdgeControl, 1}};
  R0.Masks = {{code(Opcode::ICmp), obs::PropMaskLogical, 2},
              {code(Opcode::Store), obs::PropMaskOverwrite, 1}};

  obs::PropRecord R1; // All-default record, FirstOutputStep sentinel.
  R1.RunIndex = 12;
  R1.InstructionId = 1;
  R1.Outcome = code(Outcome::Masked);
  S.Records = {R0, R1};
  return S;
}

} // namespace

TEST(PropagationStore, RoundTripPreservesEveryField) {
  obs::PropagationStore S = makeSyntheticStore();
  std::string Bytes;
  obs::serializePropagationStore(S, Bytes);

  obs::PropagationStore P;
  std::string Err;
  ASSERT_TRUE(obs::parsePropagationStore(P, Bytes, &Err)) << Err;

  EXPECT_EQ(P.ModuleName, S.ModuleName);
  EXPECT_EQ(P.EntryFunction, S.EntryFunction);
  EXPECT_EQ(P.Label, S.Label);
  EXPECT_EQ(P.Seed, S.Seed);
  EXPECT_EQ(P.SampleEvery, S.SampleEvery);
  EXPECT_EQ(P.TotalRuns, S.TotalRuns);
  EXPECT_EQ(P.CleanSteps, S.CleanSteps);
  EXPECT_EQ(P.CleanValueSteps, S.CleanValueSteps);
  EXPECT_EQ(P.Functions, S.Functions);

  ASSERT_EQ(P.Instructions.size(), S.Instructions.size());
  for (size_t I = 0; I != S.Instructions.size(); ++I) {
    const obs::PropInstr &A = S.Instructions[I], &B = P.Instructions[I];
    EXPECT_EQ(B.Id, A.Id);
    EXPECT_EQ(B.Opcode, A.Opcode);
    EXPECT_EQ(B.StaticBenign, A.StaticBenign);
    EXPECT_EQ(B.Predicted, A.Predicted);
    EXPECT_EQ(B.Line, A.Line);
    EXPECT_EQ(B.Col, A.Col);
    EXPECT_EQ(B.FunctionIndex, A.FunctionIndex);
    EXPECT_EQ(B.StaticSinkMask, A.StaticSinkMask);
  }

  ASSERT_EQ(P.Records.size(), S.Records.size());
  for (size_t I = 0; I != S.Records.size(); ++I) {
    const obs::PropRecord &A = S.Records[I], &B = P.Records[I];
    EXPECT_EQ(B.RunIndex, A.RunIndex);
    EXPECT_EQ(B.InstructionId, A.InstructionId);
    EXPECT_EQ(B.BitIndex, A.BitIndex);
    EXPECT_EQ(B.TargetValueStep, A.TargetValueStep);
    EXPECT_EQ(B.Outcome, A.Outcome);
    EXPECT_EQ(B.ControlDiverged, A.ControlDiverged);
    EXPECT_EQ(B.DynReachMask, A.DynReachMask);
    EXPECT_EQ(B.PropagationDepth, A.PropagationDepth);
    EXPECT_EQ(B.CorruptedValues, A.CorruptedValues);
    EXPECT_EQ(B.InjectionStep, A.InjectionStep);
    EXPECT_EQ(B.FirstOutputStep, A.FirstOutputStep);
    EXPECT_EQ(B.MaskedLogical, A.MaskedLogical);
    EXPECT_EQ(B.MaskedOverwrite, A.MaskedOverwrite);
    EXPECT_EQ(B.MaskedDead, A.MaskedDead);
    ASSERT_EQ(B.Edges.size(), A.Edges.size());
    for (size_t E = 0; E != A.Edges.size(); ++E) {
      EXPECT_EQ(B.Edges[E].SrcId, A.Edges[E].SrcId);
      EXPECT_EQ(B.Edges[E].DstId, A.Edges[E].DstId);
      EXPECT_EQ(B.Edges[E].Kind, A.Edges[E].Kind);
      EXPECT_EQ(B.Edges[E].Count, A.Edges[E].Count);
    }
    ASSERT_EQ(B.Masks.size(), A.Masks.size());
    for (size_t K = 0; K != A.Masks.size(); ++K) {
      EXPECT_EQ(B.Masks[K].Opcode, A.Masks[K].Opcode);
      EXPECT_EQ(B.Masks[K].Kind, A.Masks[K].Kind);
      EXPECT_EQ(B.Masks[K].Count, A.Masks[K].Count);
    }
  }
  EXPECT_EQ(P.Records[1].FirstOutputStep, UINT64_MAX);
  EXPECT_FALSE(P.Records[1].reachedOutput());
}

TEST(PropagationStore, RejectsCorruptAndTruncatedImages) {
  std::string Bytes;
  obs::serializePropagationStore(makeSyntheticStore(), Bytes);
  // Layout: magic[0,8) version[8,12) payload-len[12,20) payload checksum.
  ASSERT_GT(Bytes.size(), 32u);

  obs::PropagationStore P;
  std::string Err;

  std::string BadMagic = Bytes;
  BadMagic[0] = 'X';
  EXPECT_FALSE(obs::parsePropagationStore(P, BadMagic, &Err));
  EXPECT_NE(Err.find("not a propagation store"), std::string::npos) << Err;

  std::string BadVersion = Bytes;
  BadVersion[8] = static_cast<char>(obs::PropStoreVersion + 1);
  EXPECT_FALSE(obs::parsePropagationStore(P, BadVersion, &Err));
  EXPECT_NE(Err.find("unsupported propagation store version"),
            std::string::npos)
      << Err;

  std::string Truncated = Bytes.substr(0, Bytes.size() / 2);
  EXPECT_FALSE(obs::parsePropagationStore(P, Truncated, &Err));
  EXPECT_NE(Err.find("truncated"), std::string::npos) << Err;

  std::string FlippedPayload = Bytes;
  FlippedPayload[24] = static_cast<char>(FlippedPayload[24] ^ 0x40);
  EXPECT_FALSE(obs::parsePropagationStore(P, FlippedPayload, &Err));
  EXPECT_NE(Err.find("checksum mismatch"), std::string::npos) << Err;

  // Appended garbage breaks the exact-size promise in the header.
  std::string Trailing = Bytes + "xx";
  EXPECT_FALSE(obs::parsePropagationStore(P, Trailing, &Err));
  EXPECT_NE(Err.find("propagation store"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Static-vs-dynamic soundness over generated programs.
//===----------------------------------------------------------------------===//

// SocPropagation's central claim: a provably-benign site reaches *no*
// sink, so no injection into one may ever be observed dynamically
// reaching a sink — let alone corrupting output. The tracer is the
// ground truth; any violation here is an analysis unsoundness bug, the
// same condition `ipas-prop --cross-validate` gates on.
TEST(Propagation, StaticallyBenignSitesNeverReachSinksDynamically) {
  for (uint64_t Seed : {11u, 23u, 37u, 58u, 71u, 94u}) {
    IPAS_SEED_TRACE(Seed);
    ipas::testing::GenConfig GC;
    GC.Seed = Seed;
    ipas::testing::GeneratedProgram GP = ipas::testing::generateProgram(GC);
    std::unique_ptr<Module> M = compile(GP.Source);
    ASSERT_TRUE(M) << GP.Source;
    SocPropagation Soc(*M);
    const std::vector<bool> &Benign = Soc.provablyBenign();

    ModuleLayout Layout(*M);
    FunctionHarness H(ipas::testing::GenEntryName,
                      {RtValue::fromI64(7), RtValue::fromI64(13)});
    CampaignConfig CC;
    CC.NumRuns = 48;
    CC.Seed = 0x5eed ^ Seed;
    CC.PropSampleEvery = 1; // Trace every injection.
    CC.TraceRuns = false;
    CampaignResult R = runCampaign(H, Layout, CC);
    EXPECT_EQ(R.TracedRuns, 48u);
    EXPECT_EQ(R.PropRecords.size(), R.TracedRuns);

    for (const obs::PropRecord &P : R.PropRecords) {
      if (P.InstructionId >= Benign.size() || !Benign[P.InstructionId])
        continue;
      EXPECT_NE(P.Outcome, code(Outcome::SOC))
          << "statically-benign instruction " << P.InstructionId
          << " silently corrupted output (run " << P.RunIndex << ")\n"
          << GP.Source;
      EXPECT_EQ(P.DynReachMask, 0u)
          << "statically-benign instruction " << P.InstructionId
          << " dynamically reached a sink (run " << P.RunIndex << ")\n"
          << GP.Source;
    }
  }
}

//===----------------------------------------------------------------------===//
// Sampled tracing must not perturb the campaign record stream.
//===----------------------------------------------------------------------===//

TEST(Propagation, RecordStreamInvariantAcrossThreadsAndTracing) {
  const std::string Src = "int g(int n) {\n"
                          "  int acc = 0;\n"
                          "  int i = 0;\n"
                          "  while (i < n) {\n"
                          "    acc = acc + i * 3;\n"
                          "    if (acc > 50) { acc = acc - 7; }\n"
                          "    i = i + 1;\n"
                          "  }\n"
                          "  return acc;\n"
                          "}\n";
  struct Variant {
    unsigned Threads;
    size_t Sample;
  };
  const Variant Variants[] = {{1, 0}, {4, 0}, {1, 8}, {4, 8}};

  using Stream = std::vector<std::tuple<unsigned, unsigned, Outcome>>;
  std::vector<Stream> Streams;
  for (const Variant &V : Variants) {
    std::unique_ptr<Module> M = compile(Src);
    ASSERT_TRUE(M);
    ModuleLayout Layout(*M);
    FunctionHarness H("g", {RtValue::fromI64(9)});
    CampaignConfig CC;
    CC.NumRuns = 96;
    CC.Seed = 0x1dea;
    CC.NumThreads = V.Threads;
    CC.PropSampleEvery = V.Sample;
    CC.TraceRuns = false;
    CampaignResult R = runCampaign(H, Layout, CC);
    ASSERT_EQ(R.Records.size(), 96u);

    // Runs 0, 8, ..., 88 are sampled; tracing off yields no records.
    EXPECT_EQ(R.TracedRuns, V.Sample ? 12u : 0u);
    EXPECT_EQ(R.PropRecords.size(), R.TracedRuns);
    for (const obs::PropRecord &P : R.PropRecords) {
      EXPECT_EQ(P.RunIndex % 8, 0u);
      // The traced re-execution reproduces the campaign run exactly.
      const InjectionRecord &IR = R.Records[P.RunIndex];
      EXPECT_EQ(P.InstructionId, IR.InstructionId);
      EXPECT_EQ(P.BitIndex, IR.BitIndex);
      EXPECT_EQ(P.Outcome, code(IR.Result));
    }

    Stream S;
    S.reserve(R.Records.size());
    for (const InjectionRecord &IR : R.Records)
      S.emplace_back(IR.InstructionId, IR.BitIndex, IR.Result);
    Streams.push_back(std::move(S));
  }
  for (size_t I = 1; I != Streams.size(); ++I)
    EXPECT_TRUE(Streams[0] == Streams[I])
        << "record stream diverged for variant " << I
        << " (threads=" << Variants[I].Threads
        << " sample=" << Variants[I].Sample << ")";
}
