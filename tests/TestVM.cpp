//===- tests/TestVM.cpp - Bytecode VM vs interpreter equivalence ----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Three layers of evidence that the threaded-code VM reproduces the
/// interpreter's observable semantics exactly (the fuzzed O5-backend
/// oracle is the fourth):
///  - a trap-parity table mirroring every interpreter trap case, run on
///    both backends and compared field by field;
///  - hand-derived bytecode goldens for the compiler's phi-edge moves,
///    trampolines, and fallthrough layout;
///  - a backend x threads x pruning campaign sweep whose eight
///    deterministic record streams must be byte-identical.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/SocPropagation.h"
#include "fault/Campaign.h"
#include "fault/FunctionHarness.h"
#include "transform/Duplication.h"
#include "vm/VM.h"

#include <cstring>
#include <fstream>
#include <sstream>

using namespace ipas;
using namespace ipas::testutil;

namespace {

/// Everything both backends promise to agree on for one run.
struct BackendRun {
  RunStatus Status = RunStatus::Finished;
  TrapKind Trap = TrapKind::None;
  uint64_t Bits = 0;
  uint64_t Steps = 0;
  uint64_t ValueSteps = 0;
  bool FaultInjected = false;
  unsigned FaultedId = 0;
};

BackendRun runOnInterp(const Module &M, const std::string &Fn,
                       const std::vector<RtValue> &Args,
                       uint64_t MaxSteps = 100000000ull,
                       const FaultPlan *Plan = nullptr) {
  ModuleLayout Layout(M);
  ExecutionContext Ctx(Layout);
  if (Plan)
    Ctx.setFaultPlan(*Plan);
  Ctx.start(M.getFunction(Fn), Args);
  BackendRun R;
  R.Status = Ctx.run(MaxSteps);
  R.Trap = Ctx.trap();
  R.Bits = Ctx.returnValue().Bits;
  R.Steps = Ctx.steps();
  R.ValueSteps = Ctx.valueSteps();
  R.FaultInjected = Ctx.faultWasInjected();
  R.FaultedId = Ctx.faultedInstructionId();
  return R;
}

BackendRun runOnVm(const Module &M, const std::string &Fn,
                   const std::vector<RtValue> &Args,
                   uint64_t MaxSteps = 100000000ull,
                   const FaultPlan *Plan = nullptr) {
  ModuleLayout Layout(M);
  std::string Err;
  std::unique_ptr<vm::VmProgram> Prog = vm::compile(Layout, &Err);
  EXPECT_NE(Prog, nullptr) << "vm compile failed: " << Err;
  BackendRun R;
  if (!Prog) {
    R.Status = RunStatus::Trapped;
    return R;
  }
  vm::VmContext Ctx(*Prog);
  vm::VmContext::Result V = Ctx.run(Prog->indexOf(Fn), Args, Plan, MaxSteps);
  R.Status = V.Status;
  R.Trap = V.Trap;
  R.Bits = V.ReturnValue.Bits;
  R.Steps = V.Steps;
  R.ValueSteps = V.ValueSteps;
  R.FaultInjected = V.FaultInjected;
  R.FaultedId = V.FaultedInstructionId;
  return R;
}

/// Runs \p Fn on both backends and demands identical observable results.
/// Returns the (shared) outcome for additional expectations.
BackendRun expectParity(const Module &M, const std::string &Fn,
                        const std::vector<RtValue> &Args,
                        uint64_t MaxSteps = 100000000ull,
                        const FaultPlan *Plan = nullptr) {
  BackendRun I = runOnInterp(M, Fn, Args, MaxSteps, Plan);
  BackendRun V = runOnVm(M, Fn, Args, MaxSteps, Plan);
  EXPECT_EQ(I.Status, V.Status);
  EXPECT_EQ(I.Trap, V.Trap);
  EXPECT_EQ(I.Steps, V.Steps);
  EXPECT_EQ(I.ValueSteps, V.ValueSteps);
  EXPECT_EQ(I.FaultInjected, V.FaultInjected);
  EXPECT_EQ(I.FaultedId, V.FaultedId);
  if (I.Status == RunStatus::Finished) {
    EXPECT_EQ(I.Bits, V.Bits);
  }
  return I;
}

//===----------------------------------------------------------------------===//
// Trap-parity table
//===----------------------------------------------------------------------===//

/// Every trap source the interpreter test suite covers, replayed on the
/// VM: same Outcome-relevant fields, with and without mem2reg, plain and
/// duplication-protected.
struct TrapCase {
  const char *Name;
  const char *Src;
  const char *Fn;
  std::vector<int64_t> Args;
  bool Mem2Reg;
  TrapKind Expect;
};

const TrapCase TrapTable[] = {
    {"div-by-zero", "int f(int a) { return 10 / a; }", "f", {0}, true,
     TrapKind::DivByZero},
    {"intmin-div-minus-one", "int f(int a, int b) { return a / b; }", "f",
     {INT64_MIN, -1}, true, TrapKind::DivByZero},
    {"mod-by-zero", "int f(int a, int b) { return a % b; }", "f", {7, 0},
     true, TrapKind::DivByZero},
    {"intmin-mod-minus-one", "int f(int a, int b) { return a % b; }", "f",
     {INT64_MIN, -1}, true, TrapKind::DivByZero},
    // The memory model validates addresses, not per-object extents, so
    // out-of-bounds indices must escape the whole address space (or go
    // negative into the guard) to trap — same values as the interpreter
    // suite.
    {"oob-load",
     "double f(int i) { double a[4]; a[0] = 1.0;\n  return a[i]; }", "f",
     {100000000}, true, TrapKind::OutOfBounds},
    {"oob-load-negative",
     "double f(int i) { double a[4]; a[0] = 1.0;\n  return a[i]; }", "f",
     {-100000000}, true, TrapKind::OutOfBounds},
    {"oob-load-no-mem2reg",
     "double f(int i) { double a[4]; a[0] = 1.0;\n  return a[i]; }", "f",
     {100000000}, false, TrapKind::OutOfBounds},
    {"oob-store", "int f(int i) { double a[4]; a[i] = 1.0; return 0; }",
     "f", {100000000}, true, TrapKind::OutOfBounds},
    {"negative-index-store",
     "int f(int i) { double a[4]; a[i] = 1.0; return 0; }", "f", {-1},
     true, TrapKind::OutOfBounds},
    {"null-load", "double f() { double* p; return p[0]; }", "f", {}, true,
     TrapKind::OutOfBounds},
    {"null-store", "int f() { double* p; p[0] = 1.0; return 0; }", "f", {},
     true, TrapKind::OutOfBounds},
    {"null-load-no-mem2reg", "double f() { double* p; return p[3]; }", "f",
     {}, false, TrapKind::OutOfBounds},
    {"call-depth",
     "int f(int n) { if (n <= 0) return 0;\n  return f(n - 1); }", "f",
     {100000}, true, TrapKind::CallDepthExceeded},
};

TEST(VmTrapParity, PlainModules) {
  for (const TrapCase &C : TrapTable) {
    SCOPED_TRACE(C.Name);
    std::unique_ptr<Module> M = compile(C.Src, C.Mem2Reg);
    ASSERT_NE(M, nullptr);
    std::vector<RtValue> Args;
    for (int64_t A : C.Args)
      Args.push_back(RtValue::fromI64(A));
    BackendRun R = expectParity(*M, C.Fn, Args);
    EXPECT_EQ(R.Status, RunStatus::Trapped);
    EXPECT_EQ(R.Trap, C.Expect);
  }
}

TEST(VmTrapParity, ProtectedModules) {
  // Duplication triples the step stream and adds soc.check traffic in
  // front of every trap; the two backends must still agree exactly.
  for (const TrapCase &C : TrapTable) {
    SCOPED_TRACE(C.Name);
    std::unique_ptr<Module> M = compile(C.Src, C.Mem2Reg);
    ASSERT_NE(M, nullptr);
    duplicateAllInstructions(*M);
    M->renumber();
    std::vector<RtValue> Args;
    for (int64_t A : C.Args)
      Args.push_back(RtValue::fromI64(A));
    BackendRun R = expectParity(*M, C.Fn, Args);
    EXPECT_EQ(R.Status, RunStatus::Trapped);
    EXPECT_EQ(R.Trap, C.Expect);
  }
}

TEST(VmTrapParity, FpDivisionByZeroDoesNotTrap) {
  std::unique_ptr<Module> M = compile("double f(double a) { return a / 0.0; }");
  ASSERT_NE(M, nullptr);
  BackendRun R = expectParity(*M, "f", {RtValue::fromF64(1.0)});
  EXPECT_EQ(R.Status, RunStatus::Finished); // IEEE inf, no trap
}

TEST(VmTrapParity, OutOfStepsBudget) {
  std::unique_ptr<Module> M = compile(
      "int f(int n) { int s = 0;\n"
      "  for (int i = 0; i < n; i = i + 1) s = s + i;\n"
      "  return s; }");
  ASSERT_NE(M, nullptr);
  // Identical step accounting means the budget trips at the same count.
  BackendRun Full = expectParity(*M, "f", {RtValue::fromI64(1000)});
  EXPECT_EQ(Full.Status, RunStatus::Finished);
  for (uint64_t Budget : {Full.Steps - 1, Full.Steps / 2, uint64_t(7)}) {
    BackendRun R = expectParity(*M, "f", {RtValue::fromI64(1000)}, Budget);
    EXPECT_EQ(R.Status, RunStatus::OutOfSteps);
  }
}

TEST(VmTrapParity, FaultPlansHitTheSameSite) {
  std::unique_ptr<Module> M = compile(
      "int f(int n) { int s = 1;\n"
      "  for (int i = 0; i < n; i = i + 1) s = s + s % (i + 1);\n"
      "  return s; }");
  ASSERT_NE(M, nullptr);
  BackendRun Clean = expectParity(*M, "f", {RtValue::fromI64(40)});
  ASSERT_EQ(Clean.Status, RunStatus::Finished);
  ASSERT_GT(Clean.ValueSteps, 8u);
  // Keep the budget modest: a flipped loop counter can turn the loop
  // near-infinite, and parity on *when* the budget trips is exactly what
  // this test checks.
  const uint64_t Budget = 100000;
  for (uint64_t Step = 0; Step < Clean.ValueSteps; Step += 7) {
    for (uint64_t Bit : {0ull, 31ull, 52ull, 63ull}) {
      SCOPED_TRACE(::testing::Message() << "step=" << Step << " bit=" << Bit);
      FaultPlan Plan;
      Plan.TargetValueStep = Step;
      Plan.BitDraw = Bit;
      BackendRun R = expectParity(*M, "f", {RtValue::fromI64(40)}, Budget,
                                  &Plan);
      EXPECT_TRUE(R.FaultInjected);
    }
  }
}

//===----------------------------------------------------------------------===//
// Bytecode goldens
//===----------------------------------------------------------------------===//

std::string disasmOf(const Module &M, const char *Fn) {
  ModuleLayout Layout(M);
  std::string Err;
  std::unique_ptr<vm::VmProgram> Prog = vm::compile(Layout, &Err);
  EXPECT_NE(Prog, nullptr) << Err;
  if (!Prog)
    return std::string();
  return vm::disassemble(*Prog, Fn);
}

size_t countSubstr(const std::string &Haystack, const std::string &Needle) {
  size_t N = 0;
  for (size_t At = Haystack.find(Needle); At != std::string::npos;
       At = Haystack.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

TEST(VmBytecode, StraightLineGolden) {
  std::unique_ptr<Module> M =
      compile("int f(int a, int b) { return a + b; }");
  ASSERT_NE(M, nullptr);
  // Hand-derived: args in r0/r1, one Add (instruction id 0) into the
  // instruction's frame slot, Ret of that slot. No constants, no
  // staging registers.
  EXPECT_EQ(disasmOf(*M, "f"),
            "func f: args=2 slots=3 stage=0 consts=0 ret=w64\n"
            "     0: BinAdd    r2 <- r0, r1  id=0\n"
            "     1: Ret       r2  id=1\n");
}

TEST(VmBytecode, PhiEdgeMovesAndFallthrough) {
  // After mem2reg the loop becomes two phis (s, i). The compiler must
  // stage both incoming values on each edge (entry and latch) and commit
  // them atomically at the loop head.
  std::unique_ptr<Module> M = compile(
      "int f(int n) { int s = 0; int i = 0;\n"
      "  while (i < n) { s = s + i; i = i + 1; }\n"
      "  return s; }");
  ASSERT_NE(M, nullptr);
  // Hand-derived layout: both edges into the header (entry and latch)
  // end in unconditional Br, so their phi moves stage inline before the
  // branch; the header commits both phis atomically (ids 1/2 are the
  // value-step sites a FaultPlan can hit); the entry->header branch is
  // a fallthrough in all but PC assignment.
  EXPECT_EQ(disasmOf(*M, "f"),
            "func f: args=1 slots=6 stage=2 consts=2 ret=w64\n"
            "  const c0 = 0x0000000000000000\n"
            "  const c1 = 0x0000000000000001\n"
            "     0: Stage     s0 <- c0\n"
            "     1: Stage     s1 <- c0\n"
            "     2: Br        -> 3  ; fallthrough\n"
            "     3: PhiCommit n=2 [r1 <- s0 w64 id=1] [r2 <- s1 w64 id=2]\n"
            "     4: ICmpLT    r3 <- r1, r0  id=3\n"
            "     5: CondBr    r3 ? -> 6 : -> 11  id=4\n"
            "     6: BinAdd    r4 <- r2, r1  id=5\n"
            "     7: BinAdd    r5 <- r1, c1  id=6\n"
            "     8: Stage     s0 <- r5\n"
            "     9: Stage     s1 <- r4\n"
            "    10: Br        -> 3\n"
            "    11: Ret       r2  id=8\n");
}

TEST(VmBytecode, CondBrEdgeIntoPhiBlockGetsGotoTrampoline) {
  // `if` without `else`: the false leg of the entry CondBr jumps
  // straight into the join block's phi, so its edge move cannot run
  // inline in the predecessor (the true leg must not see it). The
  // compiler appends a trampoline (Stage + step-free Goto) after the
  // function body and retargets the CondBr at it.
  std::unique_ptr<Module> M = compile(
      "int f(int n) { int s = 1; if (n > 0) s = n + 2; return s; }");
  ASSERT_NE(M, nullptr);
  std::string D = disasmOf(*M, "f");
  SCOPED_TRACE(D);
  EXPECT_EQ(countSubstr(D, "PhiCommit"), 1u);
  EXPECT_EQ(countSubstr(D, "Goto"), 1u);
  // One Stage on the then-edge (inline) + one in the trampoline.
  EXPECT_EQ(countSubstr(D, "Stage"), 2u);
  EXPECT_GE(countSubstr(D, "; fallthrough"), 1u);

  // The trampoline preserves semantics on both legs, on both backends.
  for (int64_t N : {5, -5}) {
    BackendRun R = expectParity(*M, "f", {RtValue::fromI64(N)});
    EXPECT_EQ(R.Status, RunStatus::Finished);
    EXPECT_EQ(static_cast<int64_t>(R.Bits), N > 0 ? N + 2 : 1);
  }
}

TEST(VmBytecode, ConstantsArePooledAndDeduped) {
  std::unique_ptr<Module> M = compile(
      "int f(int a) { return a * 7 + 7 + 2; }");
  ASSERT_NE(M, nullptr);
  std::string D = disasmOf(*M, "f");
  SCOPED_TRACE(D);
  // 7 appears twice in the source but once in the pool.
  EXPECT_EQ(countSubstr(D, "const c0 = 0x0000000000000007"), 1u);
  EXPECT_EQ(countSubstr(D, "const c1 = 0x0000000000000002"), 1u);
  EXPECT_EQ(countSubstr(D, "consts=2"), 1u);
}

TEST(VmBytecode, SelftestBugChangesSemantics) {
  std::unique_ptr<Module> M =
      compile("int f(int a, int b) { return a - b; }");
  ASSERT_NE(M, nullptr);
  ModuleLayout Layout(*M);
  std::unique_ptr<vm::VmProgram> Prog = vm::compile(Layout);
  ASSERT_NE(Prog, nullptr);
  ASSERT_TRUE(vm::injectSelftestBug(*Prog));
  vm::VmContext Ctx(*Prog);
  vm::VmContext::Result V = Ctx.run(
      Prog->indexOf("f"), {RtValue::fromI64(10), RtValue::fromI64(3)},
      nullptr, 1000);
  ASSERT_EQ(V.Status, RunStatus::Finished);
  EXPECT_EQ(V.ReturnValue.asI64(), -7); // operands swapped: b - a
}

//===----------------------------------------------------------------------===//
// Record-stream invariance: backend x threads x pruning
//===----------------------------------------------------------------------===//

std::string readTestdata(const char *Name) {
  std::ifstream In(std::string(IPAS_TESTDATA_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << "cannot open testdata file " << Name;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// The deterministic columns of one campaign's record stream, packed
/// into bytes (LatencyUs is wall time and documented as excluded).
std::string packRecordStream(const CampaignResult &R) {
  std::string Bytes;
  Bytes.reserve(R.Records.size() * 17);
  for (const InjectionRecord &Rec : R.Records) {
    char Buf[17];
    std::memcpy(Buf, &Rec.InstructionId, 4);
    std::memcpy(Buf + 4, &Rec.BitIndex, 4);
    std::memcpy(Buf + 8, &Rec.TargetValueStep, 8);
    Buf[16] = static_cast<char>(Rec.Result);
    Bytes.append(Buf, sizeof(Buf));
  }
  return Bytes;
}

void sweepRecordInvariance(const char *File, const char *Fn,
                           std::vector<RtValue> Args, size_t Runs) {
  std::string Src = readTestdata(File);
  ASSERT_FALSE(Src.empty());

  std::string GoldenStream;
  std::array<size_t, NumOutcomes> GoldenCounts{};
  bool HaveGoldenStream = false;
  size_t GoldenPruned = 0;

  for (ExecBackend Backend : {ExecBackend::Interp, ExecBackend::Vm}) {
    for (unsigned Threads : {1u, 4u}) {
      for (bool Prune : {false, true}) {
        SCOPED_TRACE(::testing::Message()
                     << File << " backend="
                     << (Backend == ExecBackend::Vm ? "vm" : "interp")
                     << " threads=" << Threads << " prune=" << Prune);
        // Fresh module/layout/harness per variant: every campaign must
        // reproduce the stream from scratch.
        std::unique_ptr<Module> M = compile(Src);
        ASSERT_NE(M, nullptr);
        duplicateAllInstructions(*M);
        M->renumber();
        SocPropagation Soc(*M);
        ModuleLayout Layout(*M);
        FunctionHarness Harness(Fn, Args);
        CampaignConfig CC;
        CC.NumRuns = Runs;
        CC.Seed = 11;
        CC.NumThreads = Threads;
        CC.Backend = Backend;
        CC.TraceRuns = false;
        if (Prune)
          CC.ProvablyBenign = &Soc.provablyBenign();
        CampaignResult R = runCampaign(Harness, Layout, CC);
        ASSERT_EQ(R.Records.size(), Runs);

        std::string Stream = packRecordStream(R);
        if (!HaveGoldenStream) {
          GoldenStream = Stream;
          GoldenCounts = R.Counts;
          HaveGoldenStream = true;
        } else {
          EXPECT_EQ(Stream, GoldenStream)
              << "record stream diverged from the first variant";
          EXPECT_EQ(R.Counts, GoldenCounts);
        }
        if (Prune) {
          if (GoldenPruned == 0)
            GoldenPruned = R.PrunedRuns;
          EXPECT_EQ(R.PrunedRuns, GoldenPruned);
        } else {
          EXPECT_EQ(R.PrunedRuns, 0u);
        }
      }
    }
  }
}

TEST(VmRecordSweep, ResidualEightWayInvariance) {
  sweepRecordInvariance("residual.mc", "f", {RtValue::fromI64(32)}, 120);
}

TEST(VmRecordSweep, GenfuzzEightWayInvariance) {
  sweepRecordInvariance("genfuzz.mc", "run",
                        {RtValue::fromI64(3), RtValue::fromI64(5)}, 60);
}

} // namespace
