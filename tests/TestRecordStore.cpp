//===- tests/TestRecordStore.cpp - .iprec provenance store tests ----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The record store is the campaign's archival format, so the tests pin
/// down the properties an archival format must have: serialize->parse->
/// serialize is byte-identical (including NaN feature payloads), every
/// corruption class is rejected with a diagnostic rather than parsed
/// into garbage, and the store built from a campaign is deterministic
/// across worker-thread counts (the documented exception: per-run
/// latency, which is wall time and is zeroed before comparing).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fault/FunctionHarness.h"
#include "fault/RecordBuild.h"
#include "obs/RecordStore.h"
#include "transform/Duplication.h"

#include <cmath>
#include <limits>

using namespace ipas;
using namespace ipas::testutil;
using obs::InjectionRow;
using obs::InstrRecord;
using obs::RecordStore;

namespace {

/// A store exercising every field: strings with escapes, NaN and
/// denormal doubles, 64-bit counters, multiple functions.
RecordStore sampleStore() {
  RecordStore S;
  S.ModuleName = "sample \"quoted\" \n module";
  S.EntryFunction = "run";
  S.Label = "unit";
  S.Seed = 0xdeadbeefcafef00dull;
  S.CleanSteps = UINT64_MAX - 3;
  S.CleanValueSteps = 123456789;
  S.PrunedRuns = 7;
  S.PrunedSites = 3;
  S.SourceText = "int f() {\n  return 1;\n}\n";
  S.Functions = {"f", "helper"};

  InstrRecord A;
  A.Id = 0;
  A.Opcode = 4;
  A.DupRole = 1;
  A.Predicted = obs::PredictProtect;
  A.Protected_ = 1;
  A.Line = 2;
  A.Col = 10;
  A.FunctionIndex = 0;
  A.DynExecCount = 1ull << 40;
  A.Score = -1.25;
  InstrRecord B;
  B.Id = 1;
  B.Opcode = 20;
  B.FunctionIndex = 1;
  B.Score = std::numeric_limits<double>::quiet_NaN();
  S.Instructions = {A, B};

  S.NumFeatures = 3;
  S.Features = {0.0, -0.0, std::numeric_limits<double>::infinity(),
                std::numeric_limits<double>::denorm_min(), 1e308, -42.5};

  InjectionRow R1;
  R1.InstructionId = 0;
  R1.BitIndex = 63;
  R1.TargetValueStep = 999;
  R1.Outcome = 4; // SOC
  R1.LatencyUs = 120;
  InjectionRow R2;
  R2.InstructionId = 1;
  R2.BitIndex = 0;
  R2.TargetValueStep = 0;
  R2.Outcome = 2; // Detected
  S.Rows = {R1, R2};
  S.tallyOutcomes();
  return S;
}

TEST(RecordStore, RoundTripIsByteIdentical) {
  RecordStore S = sampleStore();
  std::string Bytes;
  obs::serializeRecordStore(S, Bytes);

  RecordStore Parsed;
  std::string Err;
  ASSERT_TRUE(obs::parseRecordStore(Parsed, Bytes, &Err)) << Err;

  // Field-level round trip, including the bit pattern of the NaN score.
  EXPECT_EQ(Parsed.ModuleName, S.ModuleName);
  EXPECT_EQ(Parsed.Seed, S.Seed);
  EXPECT_EQ(Parsed.CleanSteps, S.CleanSteps);
  EXPECT_EQ(Parsed.SourceText, S.SourceText);
  EXPECT_EQ(Parsed.Functions, S.Functions);
  ASSERT_EQ(Parsed.Instructions.size(), 2u);
  EXPECT_EQ(Parsed.Instructions[0].DynExecCount, 1ull << 40);
  EXPECT_TRUE(std::isnan(Parsed.Instructions[1].Score));
  ASSERT_EQ(Parsed.Rows.size(), 2u);
  EXPECT_EQ(Parsed.Rows[0].LatencyUs, 120u);
  EXPECT_EQ(Parsed.OutcomeTotals, S.OutcomeTotals);

  // And the strong form: re-serializing reproduces the exact bytes.
  std::string Bytes2;
  obs::serializeRecordStore(Parsed, Bytes2);
  EXPECT_EQ(Bytes, Bytes2);
}

TEST(RecordStore, RejectsBadMagicAndVersion) {
  std::string Bytes;
  obs::serializeRecordStore(sampleStore(), Bytes);

  RecordStore S;
  std::string Err;
  std::string Bad = Bytes;
  Bad[0] = 'X';
  EXPECT_FALSE(obs::parseRecordStore(S, Bad, &Err));
  EXPECT_NE(Err.find("magic"), std::string::npos) << Err;

  // The version field is the u32 right after the 8-byte magic.
  for (uint32_t V : {0u, obs::RecordStoreVersion + 1}) {
    Bad = Bytes;
    Bad[8] = static_cast<char>(V & 0xff);
    Bad[9] = static_cast<char>((V >> 8) & 0xff);
    Bad[10] = Bad[11] = 0;
    EXPECT_FALSE(obs::parseRecordStore(S, Bad, &Err)) << "version " << V;
    EXPECT_NE(Err.find("version"), std::string::npos) << Err;
  }
}

TEST(RecordStore, RejectsTruncationCorruptionAndTrailingBytes) {
  std::string Bytes;
  obs::serializeRecordStore(sampleStore(), Bytes);

  RecordStore S;
  std::string Err;
  // Truncation at every prefix length must fail, never crash or
  // half-parse. (The store is small, so exhaustive is cheap.)
  for (size_t Len = 0; Len != Bytes.size(); ++Len)
    EXPECT_FALSE(
        obs::parseRecordStore(S, Bytes.substr(0, Len), &Err))
        << "prefix of " << Len << " bytes parsed";

  // A flipped payload byte must trip the checksum.
  std::string Bad = Bytes;
  Bad[Bytes.size() / 2] ^= 0x40;
  EXPECT_FALSE(obs::parseRecordStore(S, Bad, &Err));
  EXPECT_NE(Err.find("checksum"), std::string::npos) << Err;

  // Trailing garbage is rejected too: an .iprec file is one store.
  Bad = Bytes + "x";
  EXPECT_FALSE(obs::parseRecordStore(S, Bad, &Err));
}

TEST(RecordStore, RejectsAbsurdElementCounts) {
  // A corrupt count field must be caught by the remaining-bytes guard,
  // not turned into a multi-gigabyte allocation. Patch the instruction
  // count (first u64 after the variable-length metadata) by corrupting
  // the payload wholesale: any huge count implies fewer bytes than
  // needed, so every such mutation must fail cleanly.
  std::string Bytes;
  obs::serializeRecordStore(sampleStore(), Bytes);
  RecordStore S;
  std::string Err;
  for (size_t Pos = 20; Pos + 8 < Bytes.size(); Pos += 16) {
    std::string Bad = Bytes;
    for (int K = 0; K != 8; ++K)
      Bad[Pos + static_cast<size_t>(K)] = static_cast<char>(0xff);
    EXPECT_FALSE(obs::parseRecordStore(S, Bad, &Err)) << "at " << Pos;
  }
}

//===----------------------------------------------------------------------===//
// Campaign determinism
//===----------------------------------------------------------------------===//

const char *const RecSrc = R"(
double f(int n) {
  double acc = 0.0;
  for (int i = 0; i < n; i = i + 1) {
    acc = acc + 0.5 * i;
  }
  return acc;
}
)";

RecordStore campaignStore(const Module &M, unsigned Threads) {
  ModuleLayout Layout(M);
  FunctionHarness Harness("f", {RtValue::fromI64(24)});
  CampaignConfig CC;
  CC.NumRuns = 120;
  CC.Seed = testSeed();
  CC.NumThreads = Threads;
  CampaignResult R = runCampaign(Harness, Layout, CC);

  std::vector<unsigned> Trace = Harness.traceValueSteps(Layout);
  RecordBuildInputs In;
  In.M = &M;
  In.Result = &R;
  In.EntryFunction = "f";
  In.Label = "unit";
  In.Seed = CC.Seed;
  In.SourceText = RecSrc;
  In.ValueStepTrace = &Trace;
  return buildRecordStore(In);
}

TEST(RecordStore, CampaignStoreDeterministicAcrossThreadCounts) {
  IPAS_SEED_TRACE(testSeed());
  auto M = compile(RecSrc);
  ASSERT_TRUE(M);
  duplicateAllInstructions(*M);
  M->renumber();

  RecordStore S1 = campaignStore(*M, 1);
  RecordStore S4 = campaignStore(*M, 4);
  ASSERT_EQ(S1.Rows.size(), 120u);

  // Latency is wall time — the one documented nondeterministic column.
  for (InjectionRow &R : S1.Rows)
    R.LatencyUs = 0;
  for (InjectionRow &R : S4.Rows)
    R.LatencyUs = 0;

  std::string B1, B4;
  obs::serializeRecordStore(S1, B1);
  obs::serializeRecordStore(S4, B4);
  EXPECT_EQ(B1, B4);

  // The heatmap contract ipas-inspect relies on: summing outcomes over
  // rows reproduces the campaign's outcome totals exactly.
  std::vector<uint64_t> FromRows(NumOutcomes, 0);
  for (const InjectionRow &R : S1.Rows) {
    ASSERT_LT(R.Outcome, NumOutcomes);
    ++FromRows[R.Outcome];
  }
  ASSERT_EQ(S1.OutcomeTotals.size(), static_cast<size_t>(NumOutcomes));
  for (unsigned O = 0; O != NumOutcomes; ++O)
    EXPECT_EQ(S1.OutcomeTotals[O], FromRows[O]) << "outcome " << O;

  // Every instruction the campaign targeted has a side-table entry with
  // a valid source location (the MiniC frontend stamps every
  // instruction, and duplication inherits locations).
  ASSERT_EQ(S1.Instructions.size(), M->numInstructions());
  for (const InstrRecord &I : S1.Instructions)
    EXPECT_GT(I.Line, 0u) << "instruction " << I.Id << " has no line";
}

} // namespace
