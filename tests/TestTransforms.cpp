//===- tests/TestTransforms.cpp - mem2reg, SimplifyCFG, duplication -----------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "transform/Duplication.h"

using namespace ipas;
using namespace ipas::testutil;

//===----------------------------------------------------------------------===//
// SimplifyCFG
//===----------------------------------------------------------------------===//

TEST(SimplifyCFG, RemovesDeadBlocksAfterReturn) {
  Diagnostics D;
  auto M = compileMiniC("int f() { return 1; int x = 2; x = x + 1; }", "t",
                        D);
  ASSERT_TRUE(M);
  Function *F = M->getFunction("f");
  size_t Before = F->numBlocks();
  unsigned Removed = removeUnreachableBlocks(*F);
  EXPECT_GT(Removed, 0u);
  EXPECT_EQ(F->numBlocks(), Before - Removed);
  EXPECT_TRUE(verifyFunction(*F).empty());
}

TEST(SimplifyCFG, KeepsReachableBlocks) {
  auto M = compile("int f(int a) { if (a > 0) return 1; return 2; }",
                   /*RunMem2Reg=*/false);
  Function *F = M->getFunction("f");
  EXPECT_EQ(removeUnreachableBlocks(*F), 0u);
}

//===----------------------------------------------------------------------===//
// Mem2Reg
//===----------------------------------------------------------------------===//

namespace {

size_t countOpcode(const Function &F, Opcode Op) {
  size_t N = 0;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (I->opcode() == Op)
        ++N;
  return N;
}

} // namespace

TEST(Mem2Reg, PromotesScalarsCompletely) {
  Diagnostics D;
  auto M = compileMiniC("int f(int n) { int s = 0;\n"
                        "  for (int i = 0; i < n; i = i + 1) s += i;\n"
                        "  return s; }",
                        "t", D);
  ASSERT_TRUE(M);
  Function *F = M->getFunction("f");
  removeUnreachableBlocks(*F);
  EXPECT_GT(countOpcode(*F, Opcode::Alloca), 0u);
  unsigned Promoted = promoteAllocasToRegisters(*F);
  EXPECT_GE(Promoted, 3u); // n.addr, s, i
  EXPECT_EQ(countOpcode(*F, Opcode::Alloca), 0u);
  EXPECT_EQ(countOpcode(*F, Opcode::Load), 0u);
  EXPECT_EQ(countOpcode(*F, Opcode::Store), 0u);
  EXPECT_GT(countOpcode(*F, Opcode::Phi), 0u);
  M->renumber();
  EXPECT_TRUE(verifyModule(*M).empty());
}

TEST(Mem2Reg, LeavesArraysAlone) {
  auto M = compile("double f(int i) { double a[4]; a[i] = 2.0;\n"
                   "  return a[i]; }");
  Function *F = M->getFunction("f");
  // The array alloca must survive (its address is gep'd).
  EXPECT_EQ(countOpcode(*F, Opcode::Alloca), 1u);
  EXPECT_GT(countOpcode(*F, Opcode::Load), 0u);
}

TEST(Mem2Reg, ReadBeforeWriteBecomesZero) {
  // C would read indeterminate memory; the pass defines it as zero.
  Diagnostics D;
  auto M = compileMiniC("int f(int a) { int x; if (a > 0) x = 5;\n"
                        "  return x; }",
                        "t", D);
  ASSERT_TRUE(M);
  removeUnreachableBlocks(*M);
  promoteAllocasToRegisters(*M);
  M->renumber();
  ASSERT_TRUE(verifyModule(*M).empty());
  RunResult R = runFunction(*M, "f", {RtValue::fromI64(-3)});
  EXPECT_EQ(R.Value.asI64(), 0);
  R = runFunction(*M, "f", {RtValue::fromI64(3)});
  EXPECT_EQ(R.Value.asI64(), 5);
}

/// Property test: mem2reg must preserve program semantics. Each corpus
/// program is executed with several inputs before and after promotion.
class Mem2RegEquivalence : public ::testing::TestWithParam<const char *> {};

TEST_P(Mem2RegEquivalence, PreservesSemantics) {
  const char *Src = GetParam();
  for (int64_t Arg : {-7, 0, 1, 2, 5, 13, 64}) {
    Diagnostics D1;
    auto M1 = compileMiniC(Src, "raw", D1);
    ASSERT_TRUE(M1) << D1.summary();
    removeUnreachableBlocks(*M1);
    M1->renumber();
    RunResult R1 = runFunction(*M1, "f", {RtValue::fromI64(Arg)});

    auto M2 = compile(Src); // with mem2reg
    ASSERT_TRUE(M2);
    RunResult R2 = runFunction(*M2, "f", {RtValue::fromI64(Arg)});

    EXPECT_EQ(R1.Status, R2.Status) << "arg=" << Arg;
    EXPECT_EQ(R1.Value.Bits, R2.Value.Bits) << "arg=" << Arg;
    // Promotion must strictly reduce dynamic work (loads/stores vanish).
    if (R1.Status == RunStatus::Finished) {
      EXPECT_LT(R2.Steps, R1.Steps) << "arg=" << Arg;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Mem2RegEquivalence,
    ::testing::Values(
        "int f(int a) { int s = 0; for (int i = 0; i < a; i = i + 1)"
        " s += i * i; return s; }",
        "int f(int a) { int x = 1; if (a > 3) { x = a * 2; } else"
        " { x = a - 1; } return x + 1; }",
        "int f(int a) { int i = 0; int s = 1; while (i < a) {"
        " if (s > 100) break; s = s * 2; i = i + 1; } return s; }",
        "int f(int a) { double acc = 0.5; for (int i = 0; i < a;"
        " i = i + 1) { acc = acc * 1.5 + i; } return (int)acc; }",
        "int g(int x) { return x * 3; } int f(int a) { int t = g(a);"
        " int u = g(t); return u - a; }",
        "int f(int a) { int s = 0; for (int i = 0; i < a; i = i + 1)"
        " { for (int j = i; j < a; j = j + 1) { if ((i + j) % 3 == 0)"
        " continue; s += i * j; } } return s; }",
        "int f(int a) { double x[8]; for (int i = 0; i < 8; i = i + 1)"
        " x[i] = 1.0 * i * a; double s = 0.0; for (int i = 0; i < 8;"
        " i = i + 1) s += x[i]; return (int)s; }"));

//===----------------------------------------------------------------------===//
// Duplication
//===----------------------------------------------------------------------===//

TEST(Duplication, FullDuplicationStats) {
  auto M = compile("double f(double a, double b) {\n"
                   "  double c = a * b; double d = c + a;\n"
                   "  return d / 2.0; }");
  size_t Before = M->numInstructions();
  DuplicationStats Stats = duplicateAllInstructions(*M);
  M->renumber();
  EXPECT_EQ(Stats.TotalInstructions, Before);
  EXPECT_EQ(Stats.DuplicatedInstructions, 3u); // mul, add, div
  EXPECT_GE(Stats.ChecksInserted, 1u);
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_EQ(M->numInstructions(),
            Before + Stats.DuplicatedInstructions + Stats.ChecksInserted);
}

TEST(Duplication, ChecksOnlyAtPathEnds) {
  // A straight-line chain a -> b -> c within one block forms one
  // duplication path and must get exactly one check.
  auto M = compile("double f(double x) {\n"
                   "  double a = x * 2.0; double b = a + 1.0;\n"
                   "  double c = b * b; return c; }");
  DuplicationStats Stats = duplicateAllInstructions(*M);
  M->renumber();
  EXPECT_EQ(Stats.DuplicatedInstructions, 3u);
  EXPECT_EQ(Stats.ChecksInserted, 1u);
}

TEST(Duplication, SkipsNonDuplicableOpcodes) {
  auto M = compile("double f(double* p, int i) { return p[i] + 1.0; }");
  DuplicationStats Stats = duplicateAllInstructions(*M);
  M->renumber();
  ASSERT_TRUE(verifyModule(*M).empty());
  // Loads are never duplicated.
  for (Instruction *I : M->allInstructions()) {
    if (I->opcode() != Opcode::Check)
      continue;
    for (const Value *Op : I->operands())
      EXPECT_NE(cast<Instruction>(Op)->opcode(), Opcode::Load);
  }
  EXPECT_LT(Stats.DuplicatedInstructions, Stats.TotalInstructions);
}

TEST(Duplication, SelectivePredicateRespected) {
  auto M = compile("double f(double a) { double b = a * 2.0;\n"
                   "  double c = b + 3.0; return c; }");
  M->renumber();
  // Protect only the fmul.
  unsigned MulId = 0;
  for (Instruction *I : M->allInstructions())
    if (I->opcode() == Opcode::FMul)
      MulId = I->id();
  DuplicationStats Stats = duplicateInstructions(
      *M, [&](const Instruction &I) { return I.id() == MulId; });
  EXPECT_EQ(Stats.DuplicatedInstructions, 1u);
  EXPECT_EQ(Stats.ChecksInserted, 1u);
  EXPECT_EQ(Stats.SelectedInstructions, 1u);
}

TEST(Duplication, PreservesSemantics) {
  const char *Src = "int f(int a) { int s = 0;\n"
                    "  for (int i = 0; i < a; i = i + 1) s += i * i;\n"
                    "  return s; }";
  auto Plain = compile(Src);
  auto Dup = compile(Src);
  duplicateAllInstructions(*Dup);
  Dup->renumber();
  ASSERT_TRUE(verifyModule(*Dup).empty());
  for (int64_t Arg : {0, 1, 5, 20}) {
    RunResult A = runFunction(*Plain, "f", {RtValue::fromI64(Arg)});
    RunResult B = runFunction(*Dup, "f", {RtValue::fromI64(Arg)});
    EXPECT_EQ(A.Status, RunStatus::Finished);
    EXPECT_EQ(B.Status, RunStatus::Finished);
    EXPECT_EQ(A.Value.asI64(), B.Value.asI64());
    EXPECT_GT(B.Steps, A.Steps); // duplication costs instructions
  }
}

TEST(Duplication, DetectsInjectedFaults) {
  // Inject a fault into every dynamic value instance of a fully
  // duplicated arithmetic chain: every fault that lands on a duplicated
  // instruction (original or shadow) before the check must be Detected.
  const char *Src = "double f(double a) {\n"
                    "  double b = a * 3.0; double c = b + 7.0;\n"
                    "  double d = c * c; return d; }";
  auto M = compile(Src);
  duplicateAllInstructions(*M);
  M->renumber();

  // Count clean value steps first.
  RunResult Clean = runFunction(*M, "f", {RtValue::fromF64(1.25)});
  ASSERT_EQ(Clean.Status, RunStatus::Finished);

  ModuleLayout Layout(*M);
  int Detected = 0, Finished = 0;
  uint64_t ValueSteps = 0;
  {
    ExecutionContext Probe(Layout);
    Probe.start(M->getFunction("f"), {RtValue::fromF64(1.25)});
    Probe.run(UINT64_MAX);
    ValueSteps = Probe.valueSteps();
  }
  for (uint64_t Step = 0; Step != ValueSteps; ++Step) {
    FaultPlan Plan;
    Plan.TargetValueStep = Step;
    Plan.BitDraw = 52; // high mantissa bit: a large perturbation
    RunResult R =
        runFunction(*M, "f", {RtValue::fromF64(1.25)}, 100000, &Plan);
    if (R.Status == RunStatus::Detected)
      ++Detected;
    else if (R.Status == RunStatus::Finished)
      ++Finished;
  }
  // The duplicated chain dominates the dynamic profile; most injections
  // must be caught, and nothing may crash.
  EXPECT_GT(Detected, 0);
  EXPECT_EQ(Detected + Finished, static_cast<int>(ValueSteps));
}

TEST(Duplication, IsDuplicableOpcodeTable) {
  EXPECT_TRUE(isDuplicableOpcode(Opcode::Add));
  EXPECT_TRUE(isDuplicableOpcode(Opcode::FDiv));
  EXPECT_TRUE(isDuplicableOpcode(Opcode::ICmp));
  EXPECT_TRUE(isDuplicableOpcode(Opcode::Gep));
  EXPECT_TRUE(isDuplicableOpcode(Opcode::Select));
  EXPECT_TRUE(isDuplicableOpcode(Opcode::SIToFP));
  EXPECT_FALSE(isDuplicableOpcode(Opcode::Load));
  EXPECT_FALSE(isDuplicableOpcode(Opcode::Store));
  EXPECT_FALSE(isDuplicableOpcode(Opcode::Call));
  EXPECT_FALSE(isDuplicableOpcode(Opcode::Phi));
  EXPECT_FALSE(isDuplicableOpcode(Opcode::Br));
  EXPECT_FALSE(isDuplicableOpcode(Opcode::Alloca));
  EXPECT_FALSE(isDuplicableOpcode(Opcode::Check));
}

TEST(Duplication, PerInstructionPlacementInsertsMoreChecks) {
  const char *Src = "double f(double x) {\n"
                    "  double a = x * 2.0; double b = a + 1.0;\n"
                    "  double c = b * b; return c; }";
  auto MPath = compile(Src);
  DuplicationStats PathStats = duplicateAllInstructions(*MPath);
  auto MEvery = compile(Src);
  DuplicationOptions Opts;
  Opts.Placement = CheckPlacement::EveryInstruction;
  DuplicationStats EveryStats = duplicateInstructions(
      *MEvery, [](const Instruction &) { return true; }, Opts);
  MEvery->renumber();
  ASSERT_TRUE(verifyModule(*MEvery).empty());
  EXPECT_EQ(EveryStats.DuplicatedInstructions,
            PathStats.DuplicatedInstructions);
  EXPECT_GT(EveryStats.ChecksInserted, PathStats.ChecksInserted);
  EXPECT_EQ(EveryStats.ChecksInserted, EveryStats.DuplicatedInstructions);
  // Semantics still preserved.
  RunResult R = runFunction(*MEvery, "f", {RtValue::fromF64(1.5)});
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_DOUBLE_EQ(R.Value.asF64(), (1.5 * 2.0 + 1.0) * (1.5 * 2.0 + 1.0));
}
