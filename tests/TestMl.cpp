//===- tests/TestMl.cpp - SVM, cross validation, grid search ------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/ModelSelection.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ipas;

namespace {

/// Linearly separable blobs around (0,0) [-1] and (3,3) [+1].
Dataset makeBlobs(size_t PerClass, Rng &R, double Separation = 3.0) {
  Dataset D;
  for (size_t I = 0; I != PerClass; ++I) {
    D.add({R.nextDoubleIn(-0.8, 0.8), R.nextDoubleIn(-0.8, 0.8)}, -1);
    D.add({Separation + R.nextDoubleIn(-0.8, 0.8),
           Separation + R.nextDoubleIn(-0.8, 0.8)},
          1);
  }
  return D;
}

/// XOR pattern: not linearly separable; requires the RBF kernel.
Dataset makeXor(size_t PerQuadrant, Rng &R) {
  Dataset D;
  for (size_t I = 0; I != PerQuadrant; ++I) {
    double A = R.nextDoubleIn(0.2, 1.0);
    double B = R.nextDoubleIn(0.2, 1.0);
    D.add({A, B}, 1);
    D.add({-A, -B}, 1);
    D.add({-A, B}, -1);
    D.add({A, -B}, -1);
  }
  return D;
}

} // namespace

TEST(Scaler, MapsToUnitRangeAndHandlesConstants) {
  FeatureScaler S;
  S.fit({{0.0, 5.0, 7.0}, {10.0, 5.0, 3.0}, {5.0, 5.0, 5.0}});
  std::vector<double> T = S.transform({10.0, 5.0, 3.0});
  EXPECT_DOUBLE_EQ(T[0], 1.0);
  EXPECT_DOUBLE_EQ(T[1], 0.0); // constant feature maps to 0
  EXPECT_DOUBLE_EQ(T[2], 0.0);
  T = S.transform({0.0, 123.0, 7.0});
  EXPECT_DOUBLE_EQ(T[0], 0.0);
  EXPECT_DOUBLE_EQ(T[2], 1.0);
}

TEST(Svm, RbfKernelProperties) {
  std::vector<double> A{1.0, 2.0}, B{1.0, 2.0}, C{4.0, 6.0};
  EXPECT_DOUBLE_EQ(rbfKernel(A, B, 0.5), 1.0);
  EXPECT_LT(rbfKernel(A, C, 0.5), 1.0);
  EXPECT_GT(rbfKernel(A, C, 0.5), 0.0);
  // Larger gamma decays faster.
  EXPECT_GT(rbfKernel(A, C, 0.1), rbfKernel(A, C, 1.0));
}

TEST(Svm, SeparatesLinearBlobs) {
  Rng R(1);
  Dataset D = makeBlobs(40, R);
  SvmParams P;
  P.C = 10.0;
  P.Gamma = 0.5;
  SvmModel Model = trainCSvc(D, P);
  ClassAccuracies A = evaluateModel(Model, D);
  EXPECT_GT(A.Accuracy1, 0.99);
  EXPECT_GT(A.Accuracy2, 0.99);
  EXPECT_GT(Model.numSupportVectors(), 0u);
  EXPECT_LT(Model.numSupportVectors(), D.size());
}

TEST(Svm, SolvesXorWithRbf) {
  Rng R(2);
  Dataset D = makeXor(30, R);
  SvmParams P;
  P.C = 50.0;
  P.Gamma = 2.0;
  SvmModel Model = trainCSvc(D, P);
  ClassAccuracies A = evaluateModel(Model, D);
  EXPECT_GT(fScore(A), 0.95);
}

TEST(Svm, GeneralizesToHeldOutPoints) {
  Rng R(3);
  Dataset Train = makeBlobs(50, R);
  SvmParams P;
  P.C = 10.0;
  P.Gamma = 0.5;
  SvmModel Model = trainCSvc(Train, P);
  Dataset Test = makeBlobs(30, R);
  ClassAccuracies A = evaluateModel(Model, Test);
  EXPECT_GT(A.Accuracy1, 0.95);
  EXPECT_GT(A.Accuracy2, 0.95);
}

TEST(Svm, ClassWeightingHelpsImbalancedData) {
  // 6% positives, mimicking SOC training data (§4.3.1). Overlapping blobs
  // make the unweighted classifier collapse toward the majority class.
  Rng R(4);
  Dataset D;
  for (int I = 0; I != 470; ++I)
    D.add({R.nextDoubleIn(-1.5, 1.5), R.nextDoubleIn(-1.5, 1.5)}, -1);
  for (int I = 0; I != 30; ++I)
    D.add({1.2 + R.nextDoubleIn(-1.0, 1.0),
           1.2 + R.nextDoubleIn(-1.0, 1.0)},
          1);
  SvmParams Weighted;
  Weighted.C = 1.0;
  Weighted.Gamma = 0.5;
  Weighted.AutoClassWeight = true;
  SvmParams Unweighted = Weighted;
  Unweighted.AutoClassWeight = false;
  ClassAccuracies AW = evaluateModel(trainCSvc(D, Weighted), D);
  ClassAccuracies AU = evaluateModel(trainCSvc(D, Unweighted), D);
  EXPECT_GT(AW.Accuracy1, AU.Accuracy1);
  EXPECT_GT(fScore(AW), fScore(AU));
}

TEST(Svm, DeterministicTraining) {
  Rng R(5);
  Dataset D = makeBlobs(30, R);
  SvmParams P;
  SvmModel A = trainCSvc(D, P);
  SvmModel B = trainCSvc(D, P);
  EXPECT_EQ(A.numSupportVectors(), B.numSupportVectors());
  EXPECT_DOUBLE_EQ(A.bias(), B.bias());
  for (int I = 0; I != 10; ++I) {
    std::vector<double> X{R.nextDoubleIn(-1, 4), R.nextDoubleIn(-1, 4)};
    EXPECT_DOUBLE_EQ(A.decision(X), B.decision(X));
  }
}

TEST(Svm, MaxIterationsBoundsWork) {
  Rng R(6);
  Dataset D = makeXor(50, R);
  SvmParams P;
  P.C = 1e4;
  P.Gamma = 5.0;
  P.MaxIterations = 10;
  SvmModel Model = trainCSvc(D, P);
  EXPECT_LE(Model.iterationsUsed(), 10u);
}

TEST(FScore, MatchesPaperFormula) {
  ClassAccuracies A{0.8, 0.6};
  EXPECT_NEAR(fScore(A), 2.0 * 0.8 * 0.6 / 1.4, 1e-12);
  EXPECT_EQ(fScore({0.0, 0.0}), 0.0);
  EXPECT_EQ(fScore({1.0, 1.0}), 1.0);
  // Degenerate classifiers (all one class) score 0.
  EXPECT_EQ(fScore({1.0, 0.0}), 0.0);
}

TEST(CrossValidation, ReasonableOnSeparableData) {
  Rng R(7);
  Dataset D = makeBlobs(40, R);
  SvmParams P;
  P.C = 10.0;
  P.Gamma = 0.5;
  Rng FoldRng(1);
  ClassAccuracies A = crossValidate(D, P, 5, FoldRng);
  EXPECT_GT(fScore(A), 0.95);
}

TEST(CrossValidation, StratificationKeepsMinorityInEveryFold) {
  // With only 8 positives and 5 folds, unstratified splits could starve a
  // fold; stratified CV must still produce a usable score.
  Rng R(8);
  Dataset D;
  for (int I = 0; I != 192; ++I)
    D.add({R.nextDoubleIn(-1, 1), R.nextDoubleIn(-1, 1)}, -1);
  for (int I = 0; I != 8; ++I)
    D.add({4.0 + R.nextDoubleIn(-0.3, 0.3), 4.0}, 1);
  Rng FoldRng(2);
  ClassAccuracies A = crossValidate(D, SvmParams(), 4, FoldRng);
  EXPECT_GT(A.Accuracy1, 0.5);
  EXPECT_GT(A.Accuracy2, 0.9);
}

TEST(GridSearch, RanksByFScoreAndCoversGrid) {
  Rng R(9);
  Dataset D = makeXor(15, R);
  GridSearchConfig GC;
  GC.CSteps = 4;
  GC.GammaSteps = 3;
  GC.Folds = 3;
  GC.MaxIterations = 20000;
  std::vector<RankedConfig> All = gridSearch(D, GC);
  ASSERT_EQ(All.size(), 12u);
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_GE(All[I - 1].FScore, All[I].FScore);
  // The best configuration must actually solve XOR.
  EXPECT_GT(All.front().FScore, 0.9);
  // C and gamma stay within the requested ranges.
  for (const RankedConfig &RC : All) {
    EXPECT_GE(RC.Params.C, GC.CMin);
    EXPECT_LE(RC.Params.C, GC.CMax * 1.0001);
    EXPECT_GE(RC.Params.Gamma, GC.GammaMin);
    EXPECT_LE(RC.Params.Gamma, GC.GammaMax * 1.0001);
  }
}

TEST(GridSearch, PaperGridIs500Configurations) {
  GridSearchConfig GC; // defaults follow §4.3.2
  EXPECT_EQ(GC.CSteps * GC.GammaSteps, 500u);
  EXPECT_DOUBLE_EQ(GC.CMin, 1.0);
  EXPECT_DOUBLE_EQ(GC.CMax, 1e5);
  EXPECT_DOUBLE_EQ(GC.GammaMin, 1e-5);
  EXPECT_DOUBLE_EQ(GC.GammaMax, 1.0);
}
