//===- tests/TestAnalysis.cpp - Dominators, loops, slicing, features ----------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "analysis/Features.h"
#include "analysis/LoopInfo.h"
#include "analysis/Slicing.h"

using namespace ipas;
using namespace ipas::testutil;

namespace {

/// Diamond CFG: entry -> (a | b) -> merge -> exit.
struct DiamondCfg {
  Module M{"m"};
  Function *F;
  BasicBlock *Entry, *A, *B, *Merge;

  DiamondCfg() {
    F = M.createFunction("f", types::I64, {types::I1});
    Entry = F->addBlock("entry");
    A = F->addBlock("a");
    B = F->addBlock("b");
    Merge = F->addBlock("merge");
    IRBuilder Bld(M);
    Bld.setInsertPoint(Entry);
    Bld.createCondBr(F->arg(0), A, B);
    Bld.setInsertPoint(A);
    Bld.createBr(Merge);
    Bld.setInsertPoint(B);
    Bld.createBr(Merge);
    Bld.setInsertPoint(Merge);
    Bld.createRet(Bld.getInt64(0));
    M.renumber();
  }
};

} // namespace

TEST(Dominators, DiamondIdoms) {
  DiamondCfg D;
  DominatorTree DT(*D.F);
  EXPECT_EQ(DT.idom(D.Entry), nullptr);
  EXPECT_EQ(DT.idom(D.A), D.Entry);
  EXPECT_EQ(DT.idom(D.B), D.Entry);
  EXPECT_EQ(DT.idom(D.Merge), D.Entry);
  EXPECT_TRUE(DT.dominates(D.Entry, D.Merge));
  EXPECT_FALSE(DT.dominates(D.A, D.Merge));
  EXPECT_TRUE(DT.dominates(D.A, D.A));
}

TEST(Dominators, DiamondFrontiers) {
  DiamondCfg D;
  DominatorTree DT(*D.F);
  // The merge is in the frontier of both arms, not of the entry.
  ASSERT_EQ(DT.frontier(D.A).size(), 1u);
  EXPECT_EQ(DT.frontier(D.A)[0], D.Merge);
  ASSERT_EQ(DT.frontier(D.B).size(), 1u);
  EXPECT_EQ(DT.frontier(D.B)[0], D.Merge);
  EXPECT_TRUE(DT.frontier(D.Entry).empty());
  EXPECT_TRUE(DT.frontier(D.Merge).empty());
}

TEST(Dominators, LoopFrontierContainsHeader) {
  // From real code: the loop latch's frontier contains the loop header.
  auto M = compile("int f(int n) { int s = 0;\n"
                   "  for (int i = 0; i < n; i = i + 1) s += i;\n"
                   "  return s; }",
                   /*RunMem2Reg=*/false);
  ASSERT_TRUE(M);
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  BasicBlock *Header = LI.loops()[0].Header;
  bool HeaderInSomeFrontier = false;
  for (BasicBlock *BB : *F)
    for (BasicBlock *DF : DT.frontier(BB))
      if (DF == Header)
        HeaderInSomeFrontier = true;
  EXPECT_TRUE(HeaderInSomeFrontier);
}

TEST(Dominators, ReversePostOrderStartsAtEntry) {
  DiamondCfg D;
  DominatorTree DT(*D.F);
  ASSERT_EQ(DT.reversePostOrder().size(), 4u);
  EXPECT_EQ(DT.reversePostOrder()[0], D.Entry);
}

TEST(Dominators, DominatesUseSameBlock) {
  auto M = compile("int f(int a) { int b = a + 1; return b * 2; }");
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  BasicBlock *Entry = F->entry();
  Instruction *Add = Entry->at(0);
  Instruction *Mul = Entry->at(1);
  EXPECT_TRUE(DT.dominatesUse(Add, Mul, 0));
  EXPECT_FALSE(DT.dominatesUse(Mul, Add, 0));
}

TEST(LoopInfo, DetectsNestedLoops) {
  auto M = compile("int f(int n) { int s = 0;\n"
                   "  for (int i = 0; i < n; i = i + 1)\n"
                   "    for (int j = 0; j < n; j = j + 1)\n"
                   "      s += i * j;\n"
                   "  return s; }",
                   /*RunMem2Reg=*/false);
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  EXPECT_EQ(LI.loops().size(), 2u);
  unsigned MaxDepth = 0;
  for (BasicBlock *BB : *F)
    MaxDepth = std::max(MaxDepth, LI.loopDepth(BB));
  EXPECT_EQ(MaxDepth, 2u);
  EXPECT_FALSE(LI.isInLoop(F->entry()));
}

TEST(LoopInfo, StraightLineHasNoLoops) {
  auto M = compile("int f(int a) { return a + 1; }");
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  EXPECT_TRUE(LI.loops().empty());
}

//===----------------------------------------------------------------------===//
// Forward slicing
//===----------------------------------------------------------------------===//

TEST(Slicing, FollowsDefUseChain) {
  auto M = compile("int f(int a) { int b = a + 1; int c = b * 2;\n"
                   "  int d = c - 3; return d; }");
  Function *F = M->getFunction("f");
  BasicBlock *Entry = F->entry();
  // After mem2reg: add, mul, sub, ret.
  Instruction *Add = Entry->at(0);
  ASSERT_EQ(Add->opcode(), Opcode::Add);
  auto Slice = forwardSlice(Add);
  // mul, sub, ret are all influenced.
  EXPECT_EQ(Slice.size(), 3u);
  // The last value-producing instruction's slice is just the ret.
  Instruction *Sub = Entry->at(2);
  ASSERT_EQ(Sub->opcode(), Opcode::Sub);
  EXPECT_EQ(forwardSlice(Sub).size(), 1u);
}

TEST(Slicing, ExcludesUnrelatedInstructions) {
  auto M = compile("int f(int a, int b) { int x = a + 1; int y = b + 2;\n"
                   "  return x * y; }");
  Function *F = M->getFunction("f");
  BasicBlock *Entry = F->entry();
  Instruction *X = Entry->at(0);
  Instruction *Y = Entry->at(1);
  auto SliceX = forwardSlice(X);
  EXPECT_EQ(SliceX.count(Y), 0u);
  EXPECT_EQ(SliceX.size(), 2u); // mul + ret
}

TEST(Slicing, FlowsThroughMemoryWhenEnabled) {
  // The value stored through the array flows to the later load.
  auto M = compile("double f(int i) { double a[4]; a[0] = 1.0;\n"
                   "  double v = 2.0 * i;\n"
                   "  a[i] = v;\n"
                   "  return a[0] + 1.0; }");
  Function *F = M->getFunction("f");
  // Find the fmul (computing v) and check the load joins its slice.
  Instruction *Mul = nullptr;
  const Instruction *Load = nullptr;
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB) {
      if (I->opcode() == Opcode::FMul)
        Mul = I;
      if (I->opcode() == Opcode::Load && I->type().isF64())
        Load = I;
    }
  ASSERT_TRUE(Mul && Load);
  SliceOptions WithMem;
  auto Slice = forwardSlice(Mul, WithMem);
  EXPECT_EQ(Slice.count(Load), 1u);
  SliceOptions NoMem;
  NoMem.ThroughMemory = false;
  auto Pure = forwardSlice(Mul, NoMem);
  EXPECT_EQ(Pure.count(Load), 0u);
}

TEST(Slicing, FollowCallsIsIdentityOnCallFreePrograms) {
  // On a program without calls the interprocedural slice must be the
  // intraprocedural slice, instruction for instruction.
  auto M = compile("double f(int n) { double s = 0.0;\n"
                   "  for (int i = 0; i < n; i = i + 1) {\n"
                   "    s = s + 0.5 * i;\n"
                   "  }\n"
                   "  return s * 2.0; }");
  CallGraph CG(*M);
  SliceOptions Inter;
  Inter.FollowCalls = true;
  Inter.CG = &CG;
  for (BasicBlock *BB : *M->getFunction("f"))
    for (Instruction *I : *BB) {
      if (!I->producesValue())
        continue;
      EXPECT_EQ(forwardSlice(I), forwardSlice(I, Inter))
          << "slices diverge at instruction " << I->id();
    }
}

TEST(Slicing, FollowCallsCrossesArgumentAndReturnEdges) {
  auto M = compile("double g(double x) { return x * 2.0; }\n"
                   "double f(int n) {\n"
                   "  double t = 0.5 * n;\n"
                   "  return g(t) + 1.0; }");
  Function *F = M->getFunction("f");
  Function *G = M->getFunction("g");
  Instruction *T = nullptr;
  const Instruction *CalleeMul = nullptr, *CallerAdd = nullptr;
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB) {
      if (I->opcode() == Opcode::FMul)
        T = I;
      if (I->opcode() == Opcode::FAdd)
        CallerAdd = I;
    }
  for (BasicBlock *BB : *G)
    for (Instruction *I : *BB)
      if (I->opcode() == Opcode::FMul)
        CalleeMul = I;
  ASSERT_TRUE(T && CalleeMul && CallerAdd);

  // Intraprocedural: the call is a frontier; the callee's body and the
  // use of the returned value past the call are invisible.
  auto Intra = forwardSlice(T);
  EXPECT_EQ(Intra.count(CalleeMul), 0u);

  // Interprocedural: t -> g's formal -> callee mul -> ret -> call result
  // -> the caller's add.
  CallGraph CG(*M);
  SliceOptions Inter;
  Inter.FollowCalls = true;
  Inter.CG = &CG;
  auto Cross = forwardSlice(T, Inter);
  EXPECT_EQ(Cross.count(CalleeMul), 1u);
  EXPECT_EQ(Cross.count(CallerAdd), 1u);
  EXPECT_GE(Cross.size(), Intra.size());
}

TEST(Slicing, PointerRootWalksGeps) {
  auto M = compile("double f(double* p, int i) { return p[i + 1]; }");
  Function *F = M->getFunction("f");
  const Instruction *Load = nullptr;
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB)
      if (I->opcode() == Opcode::Load)
        Load = I;
  ASSERT_TRUE(Load);
  EXPECT_EQ(pointerRoot(cast<LoadInst>(Load)->pointer()), F->arg(0));
}

//===----------------------------------------------------------------------===//
// Feature extraction (Table 1)
//===----------------------------------------------------------------------===//

TEST(Features, InstructionCategoryFlags) {
  auto M = compile("double f(double* p, int i) {\n"
                   "  double v = p[i] * 2.0;\n"
                   "  if (v > 1.0) return v - 1.0;\n"
                   "  return v; }");
  FeatureExtractor FE;
  auto All = FE.extractModule(*M);
  ASSERT_EQ(All.size(), M->numInstructions());
  bool SawGep = false, SawCmp = false, SawMul = false;
  for (Instruction *I : M->allInstructions()) {
    const FeatureVector &FV = All[I->id()];
    if (I->opcode() == Opcode::Gep) {
      SawGep = true;
      EXPECT_EQ(FV[8], 1.0);  // is get-pointer
      EXPECT_EQ(FV[0], 0.0);  // not a binary op
      EXPECT_EQ(FV[11], 8.0); // pointer result bytes
    }
    if (I->opcode() == Opcode::FCmp) {
      SawCmp = true;
      EXPECT_EQ(FV[6], 1.0);  // is comparison
      EXPECT_EQ(FV[11], 1.0); // i1 result byte
    }
    if (I->opcode() == Opcode::FMul) {
      SawMul = true;
      EXPECT_EQ(FV[0], 1.0); // binary
      EXPECT_EQ(FV[2], 1.0); // mul/div
      EXPECT_EQ(FV[1], 0.0); // not add/sub
    }
  }
  EXPECT_TRUE(SawGep && SawCmp && SawMul);
}

TEST(Features, BlockAndFunctionCounts) {
  auto M = compile("int f(int a) { int b = a + 1; int c = b * 2;\n"
                   "  return c; }");
  Function *F = M->getFunction("f");
  FeatureExtractor FE;
  auto All = FE.extractModule(*M);
  BasicBlock *Entry = F->entry();
  Instruction *Add = Entry->at(0);
  const FeatureVector &FV = All[Add->id()];
  EXPECT_EQ(FV[13], 3.0); // bb size: add, mul, ret
  EXPECT_EQ(FV[12], 2.0); // remaining in bb
  EXPECT_EQ(FV[14], 0.0); // no successors (ret block)
  EXPECT_EQ(FV[19], 2.0); // remaining to return
  EXPECT_EQ(FV[20], 3.0); // insts in function
  EXPECT_EQ(FV[21], 1.0); // blocks in function
  EXPECT_EQ(FV[23], 1.0); // returns a value
  EXPECT_EQ(FV[18], 0.0); // terminator is ret, not branch
}

TEST(Features, LoopAndPhiFlags) {
  auto M = compile("int f(int n) { int s = 0;\n"
                   "  for (int i = 0; i < n; i = i + 1) s += i;\n"
                   "  return s; }");
  Function *F = M->getFunction("f");
  FeatureExtractor FE;
  auto All = FE.extractModule(*M);
  bool SawLoopPhiBlock = false;
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB)
      if (I->opcode() == Opcode::Phi) {
        const FeatureVector &FV = All[I->id()];
        EXPECT_EQ(FV[16], 1.0); // in loop
        EXPECT_EQ(FV[17], 1.0); // block has phi
        SawLoopPhiBlock = true;
      }
  EXPECT_TRUE(SawLoopPhiBlock);
}

TEST(Features, FutureCallsCounted) {
  auto M = compile("int g(int x) { return x; }\n"
                   "int f(int a) { int b = a + 1;\n"
                   "  int c = g(b); int d = g(c); return d; }");
  Function *F = M->getFunction("f");
  FeatureExtractor FE;
  auto All = FE.extractModule(*M);
  Instruction *Add = F->entry()->at(0);
  ASSERT_EQ(Add->opcode(), Opcode::Add);
  EXPECT_EQ(All[Add->id()][22], 2.0); // two calls ahead
}

TEST(Features, SliceCountsMatchForwardSlice) {
  auto M = compile("int f(int a) { int b = a + 1; int c = b * b;\n"
                   "  return c + 2; }");
  Function *F = M->getFunction("f");
  FeatureExtractor FE;
  Instruction *Add = F->entry()->at(0);
  FeatureVector FV = FE.extract(Add);
  auto Slice = forwardSlice(Add);
  EXPECT_EQ(FV[24], static_cast<double>(Slice.size()));
  double BinOps = 0;
  for (const Instruction *I : Slice)
    if (isBinaryOpcode(I->opcode()))
      ++BinOps;
  EXPECT_EQ(FV[28], BinOps);
}

TEST(Features, NamesAreDistinct) {
  std::set<std::string> Names;
  for (unsigned I = 0; I != NumInstructionFeatures; ++I)
    Names.insert(featureName(I));
  EXPECT_EQ(Names.size(), NumInstructionFeatures);
}
