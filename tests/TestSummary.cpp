//===- tests/TestSummary.cpp - Interprocedural summaries + incremental --------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Covers the compositional SOC-sensitivity layer end to end: canonical
/// content hashes (formatting-invariant, edit-sensitive), reachable-set
/// hashes, the SCC fixpoint on mutual recursion, dead argument channels
/// and the interprocedural-beats-intraprocedural guarantee (with a
/// dynamic soundness sweep), the `.ipsum` summary store, the v2 record
/// store function table (plus v1 compatibility), and the incremental
/// re-campaigning driver's reuse semantics.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/CallGraph.h"
#include "analysis/FunctionSummary.h"
#include "analysis/SocPropagation.h"
#include "fault/FunctionHarness.h"
#include "fault/Incremental.h"
#include "fault/RecordBuild.h"
#include "obs/BinCodec.h"
#include "obs/RecordStore.h"
#include "obs/SummaryStore.h"

#include <fstream>
#include <sstream>

using namespace ipas;
using namespace ipas::testutil;

namespace {

std::string readTestdata(const std::string &Name) {
  std::ifstream In(std::string(IPAS_TESTDATA_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << "cannot open testdata file " << Name;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

const char *const CalleeSrc =
    "double g(double x) {\n"
    "  return x * 2.0 + 1.0;\n"
    "}\n"
    "double f(int n) {\n"
    "  return g(0.5 * n);\n"
    "}\n";

/// CalleeSrc reformatted: comments, blank lines, and indentation only.
const char *const CalleeSrcReformatted =
    "// a comment the hash must not see\n"
    "double g(double x) { return x * 2.0 + 1.0; }\n"
    "\n"
    "double f(int n) {\n"
    "      return g(0.5 * n); // trailing note\n"
    "}\n";

/// CalleeSrc with g's body changed (2.0 -> 3.0).
const char *const CalleeSrcEdited =
    "double g(double x) {\n"
    "  return x * 3.0 + 1.0;\n"
    "}\n"
    "double f(int n) {\n"
    "  return g(0.5 * n);\n"
    "}\n";

uint64_t functionContentHash(const Module &M, const std::string &Name) {
  const Function *F = M.getFunction(Name);
  EXPECT_NE(F, nullptr);
  return F ? hashFunctionBody(*F) : 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// Canonical content and reachable-set hashes
//===----------------------------------------------------------------------===//

TEST(Summary, ContentHashIgnoresWhitespaceAndComments) {
  auto A = compile(CalleeSrc);
  auto B = compile(CalleeSrcReformatted);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(functionContentHash(*A, "g"), functionContentHash(*B, "g"));
  EXPECT_EQ(functionContentHash(*A, "f"), functionContentHash(*B, "f"));
}

TEST(Summary, ContentHashTracksSemanticEdit) {
  auto A = compile(CalleeSrc);
  auto B = compile(CalleeSrcEdited);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_NE(functionContentHash(*A, "g"), functionContentHash(*B, "g"));
  // f's own body is untouched by the callee edit.
  EXPECT_EQ(functionContentHash(*A, "f"), functionContentHash(*B, "f"));
}

TEST(Summary, ContentHashIndependentOfModulePosition) {
  // The hash must not see module-wide instruction ids, or adding a
  // function above would invalidate every function below it.
  auto A = compile(CalleeSrc);
  auto B = compile(std::string("double pad(double q) { return q + 4.0; }\n") +
                   CalleeSrc);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(functionContentHash(*A, "g"), functionContentHash(*B, "g"));
}

TEST(Summary, ReachableHashSeesCalleeEditContentHashDoesNot) {
  auto A = compile(CalleeSrc);
  auto B = compile(CalleeSrcEdited);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  CallGraph CGA(*A), CGB(*B);
  ModuleSummaries SA(*A, CGA), SB(*B, CGB);
  const Function *FA = A->getFunction("f"), *FB = B->getFunction("f");
  EXPECT_EQ(SA.contentHash(FA), SB.contentHash(FB));
  EXPECT_NE(SA.reachableHash(FA), SB.reachableHash(FB));
  // g reaches only itself; its two hashes track its own body together.
  const Function *GA = A->getFunction("g"), *GB = B->getFunction("g");
  EXPECT_NE(SA.reachableHash(GA), SB.reachableHash(GB));
}

//===----------------------------------------------------------------------===//
// SCC fixpoint and argument channels
//===----------------------------------------------------------------------===//

namespace {

const char *const MutualSrc =
    "int even(int n) {\n"
    "  if (n <= 0) { return 1; }\n"
    "  return odd(n - 1);\n"
    "}\n"
    "int odd(int n) {\n"
    "  if (n <= 0) { return n; }\n"
    "  return even(n - 1);\n"
    "}\n"
    "int f(int n) {\n"
    "  return even(n);\n"
    "}\n";

} // namespace

TEST(Summary, SccFixpointConvergesOnMutualRecursion) {
  auto M = compile(MutualSrc);
  ASSERT_NE(M, nullptr);
  CallGraph CG(*M);
  const Function *Even = M->getFunction("even");
  const Function *Odd = M->getFunction("odd");
  EXPECT_TRUE(CG.isRecursive(Even));
  EXPECT_TRUE(CG.isRecursive(Odd));
  EXPECT_EQ(CG.sccIndex(Even), CG.sccIndex(Odd));

  // The summary computation must terminate (finite lattice fixpoint) and
  // agree for the two symmetric members: n feeds the branch (a control
  // sink) in both, and flows to the returned value — directly in odd's
  // base case, and in even only through odd's summary, so the flag must
  // propagate around the recursion cycle.
  ModuleSummaries MS(*M, CG);
  const FunctionSummary &SE = MS.summary(Even);
  const FunctionSummary &SO = MS.summary(Odd);
  ASSERT_EQ(SE.Args.size(), 1u);
  ASSERT_EQ(SO.Args.size(), 1u);
  EXPECT_EQ(SE.Args[0].SinkMask, SO.Args[0].SinkMask);
  EXPECT_NE(SE.Args[0].SinkMask, SocSinkNone);
  EXPECT_TRUE(SE.Args[0].FlowsToReturn);
  // Mutual recursion shares one reachable set, hence one reachable hash.
  EXPECT_EQ(MS.reachableHash(Even), MS.reachableHash(Odd));
}

TEST(Summary, DeadArgumentChannelSharpensInterproceduralAnalysis) {
  auto M = compile(readTestdata("callchain.mc"));
  ASSERT_NE(M, nullptr);
  CallGraph CG(*M);
  ModuleSummaries MS(*M, CG);

  // wobble's first argument feeds a chain that reaches no sink and never
  // the return value; the second reaches the return.
  const FunctionSummary &SW = MS.summary(M->getFunction("wobble"));
  ASSERT_EQ(SW.Args.size(), 2u);
  EXPECT_EQ(SW.Args[0].SinkMask, SocSinkNone);
  EXPECT_FALSE(SW.Args[0].FlowsToReturn);
  EXPECT_TRUE(SW.Args[1].FlowsToReturn);

  // That dead channel is exactly what the summary-aware propagation
  // exploits: strictly more provably-benign sites than the call-barrier
  // model on this call-bearing program.
  SocPropagation Intra(*M);
  SocPropagation Inter(*M, MS);
  EXPECT_GT(Inter.numBenign(), Intra.numBenign());
  // Monotonicity: interprocedural knowledge only ever removes sinks.
  const std::vector<bool> &IntraB = Intra.provablyBenign();
  const std::vector<bool> &InterB = Inter.provablyBenign();
  ASSERT_EQ(IntraB.size(), InterB.size());
  for (size_t I = 0; I != IntraB.size(); ++I)
    EXPECT_LE(IntraB[I], InterB[I]) << "instruction " << I
                                    << " lost its benign verdict";
}

TEST(Summary, InterprocBenignVerdictsAreSoundOnCallchain) {
  // Every site the summary-aware analysis calls benign must survive real
  // injections with bit-identical output and step count — the dynamic
  // soundness gate for the sharper verdicts.
  auto M = compile(readTestdata("callchain.mc"));
  ASSERT_NE(M, nullptr);
  CallGraph CG(*M);
  ModuleSummaries MS(*M, CG);
  SocPropagation Soc(*M, MS);
  ASSERT_GT(Soc.numBenign(), 0u);
  const std::vector<bool> &Benign = Soc.provablyBenign();

  ModuleLayout Layout(*M);
  std::vector<RtValue> Args = {RtValue::fromI64(20)};
  std::vector<unsigned> Trace;
  uint64_t CleanBits = 0, CleanSteps = 0;
  {
    ExecutionContext Ctx(Layout);
    Ctx.setValueStepTrace(&Trace);
    Ctx.start(M->getFunction("f"), Args);
    ASSERT_EQ(Ctx.run(100000000ull), RunStatus::Finished);
    CleanBits = Ctx.returnValue().Bits;
    CleanSteps = Ctx.steps();
  }

  size_t Injected = 0;
  for (uint64_t Step = 0; Step != Trace.size() && Injected < 120; ++Step) {
    if (!Benign[Trace[Step]])
      continue;
    ++Injected;
    for (unsigned Bit : {0u, 31u, 63u}) {
      FaultPlan Plan;
      Plan.TargetValueStep = Step;
      Plan.BitDraw = Bit;
      RunResult R = runFunction(*M, "f", Args, 100000000ull, &Plan);
      ASSERT_EQ(R.Status, RunStatus::Finished);
      EXPECT_EQ(R.Value.Bits, CleanBits)
          << "interproc-benign injection at step " << Step << " bit " << Bit
          << " changed the output";
      EXPECT_EQ(R.Steps, CleanSteps);
    }
  }
  EXPECT_GT(Injected, 0u) << "sweep never injected; test is vacuous";
}

//===----------------------------------------------------------------------===//
// .ipsum summary store
//===----------------------------------------------------------------------===//

namespace {

obs::SummaryStore sampleSummaryStore() {
  obs::SummaryStore S;
  S.ModuleName = "mod \"quoted\"\nname";
  S.EntryFunction = "f";
  obs::SummaryFunc G;
  G.Name = "g";
  G.ContentHash = 0xfeedfacecafebeefull;
  G.ReachableHash = 0x123456789abcdef0ull;
  G.Args = {{0u, 0, 0xffffffffu}, {7u, 1, 2u}};
  obs::SummaryFunc F;
  F.Name = "f";
  F.ContentHash = 42;
  F.ReachableHash = UINT64_MAX;
  F.Callees = {"g", "g2"};
  F.Args = {{1u, 0, 0u}};
  S.Functions = {G, F};
  return S;
}

} // namespace

TEST(SummaryStore, RoundTripIsByteIdentical) {
  obs::SummaryStore S = sampleSummaryStore();
  std::string Bytes;
  obs::serializeSummaryStore(S, Bytes);

  obs::SummaryStore P;
  std::string Err;
  ASSERT_TRUE(obs::parseSummaryStore(P, Bytes, &Err)) << Err;
  EXPECT_EQ(P.ModuleName, S.ModuleName);
  EXPECT_EQ(P.EntryFunction, S.EntryFunction);
  ASSERT_EQ(P.Functions.size(), 2u);
  EXPECT_EQ(P.Functions[0].ContentHash, 0xfeedfacecafebeefull);
  ASSERT_EQ(P.Functions[0].Args.size(), 2u);
  EXPECT_EQ(P.Functions[0].Args[1].SinkMask, 7u);
  EXPECT_EQ(P.Functions[0].Args[1].FlowsToReturn, 1u);
  EXPECT_EQ(P.Functions[0].Args[1].MinSinkDistance, 2u);
  EXPECT_EQ(P.Functions[1].Callees,
            (std::vector<std::string>{"g", "g2"}));

  std::string Bytes2;
  obs::serializeSummaryStore(P, Bytes2);
  EXPECT_EQ(Bytes, Bytes2);
}

TEST(SummaryStore, RejectsTruncationCorruptionAndTrailingBytes) {
  std::string Bytes;
  obs::serializeSummaryStore(sampleSummaryStore(), Bytes);
  obs::SummaryStore S;
  std::string Err;
  for (size_t Len = 0; Len != Bytes.size(); ++Len)
    EXPECT_FALSE(obs::parseSummaryStore(S, Bytes.substr(0, Len), &Err))
        << "prefix of " << Len << " bytes parsed";
  std::string Bad = Bytes;
  Bad[Bytes.size() / 2] ^= 0x10;
  EXPECT_FALSE(obs::parseSummaryStore(S, Bad, &Err));
  Bad = Bytes;
  Bad[0] = 'Z';
  EXPECT_FALSE(obs::parseSummaryStore(S, Bad, &Err));
  EXPECT_NE(Err.find("magic"), std::string::npos) << Err;
  EXPECT_FALSE(obs::parseSummaryStore(S, Bytes + "y", &Err));
}

//===----------------------------------------------------------------------===//
// Record store v2: the function table, and v1 compatibility
//===----------------------------------------------------------------------===//

namespace {

obs::RecordStore storeWithMetas() {
  obs::RecordStore S;
  S.ModuleName = "m";
  S.EntryFunction = "f";
  S.Seed = 99;
  S.Functions = {"g", "f"};
  obs::InjectionRow R;
  R.InstructionId = 3;
  R.BitIndex = 5;
  R.Outcome = 2;
  S.Rows = {R};
  obs::FunctionMeta FM;
  FM.FunctionIndex = 1;
  FM.ContentHash = 0xabcdull;
  FM.ReachableHash = 0x1234ull;
  FM.ProfileHash = 0x77ull;
  FM.FirstInstructionId = 2;
  FM.LocalValueSteps = 40;
  FM.PlannedRuns = 1;
  FM.ReusedRuns = 1;
  FM.Invalidation =
      static_cast<uint8_t>(InvalidationReason::Reused);
  S.FunctionMetas = {FM};
  S.tallyOutcomes();
  return S;
}

} // namespace

TEST(RecordStoreV2, FunctionMetasRoundTrip) {
  obs::RecordStore S = storeWithMetas();
  std::string Bytes;
  obs::serializeRecordStore(S, Bytes);
  obs::RecordStore P;
  std::string Err;
  ASSERT_TRUE(obs::parseRecordStore(P, Bytes, &Err)) << Err;
  ASSERT_EQ(P.FunctionMetas.size(), 1u);
  EXPECT_EQ(P.FunctionMetas[0].FunctionIndex, 1u);
  EXPECT_EQ(P.FunctionMetas[0].ContentHash, 0xabcdull);
  EXPECT_EQ(P.FunctionMetas[0].ProfileHash, 0x77ull);
  EXPECT_EQ(P.FunctionMetas[0].LocalValueSteps, 40u);
  EXPECT_EQ(P.FunctionMetas[0].Invalidation,
            static_cast<uint8_t>(InvalidationReason::Reused));
}

TEST(RecordStoreV2, ParsesVersion1Files) {
  // A v1 file is a v2 file minus the trailing FunctionMetas section. The
  // writer always emits v2, so craft the v1 image by hand: drop the
  // empty-table count (the final 8 payload bytes), patch version and
  // payload length, and re-checksum.
  obs::RecordStore S = storeWithMetas();
  S.FunctionMetas.clear();
  std::string Bytes;
  obs::serializeRecordStore(S, Bytes);

  constexpr size_t MagicLen = 8, HeaderLen = MagicLen + 4 + 8;
  size_t PayloadLen = Bytes.size() - HeaderLen - 8;
  std::string Payload = Bytes.substr(HeaderLen, PayloadLen - 8);

  std::string V1 = Bytes.substr(0, MagicLen);
  auto PutU32 = [&](uint32_t V) {
    for (int I = 0; I != 4; ++I)
      V1.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  };
  auto PutU64 = [&](uint64_t V) {
    for (int I = 0; I != 8; ++I)
      V1.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  };
  PutU32(1);
  PutU64(Payload.size());
  V1 += Payload;
  PutU64(obs::fnv1a(Payload.data(), Payload.size()));

  obs::RecordStore P;
  std::string Err;
  ASSERT_TRUE(obs::parseRecordStore(P, V1, &Err)) << Err;
  EXPECT_TRUE(P.FunctionMetas.empty());
  EXPECT_EQ(P.Rows.size(), 1u);
  EXPECT_EQ(P.Seed, 99u);
}

//===----------------------------------------------------------------------===//
// Incremental re-campaigning
//===----------------------------------------------------------------------===//

namespace {

struct IncrementalRun {
  std::unique_ptr<Module> M;
  std::unique_ptr<ModuleLayout> Layout;
  IncrementalResult R;
};

IncrementalRun runIncremental(const std::string &Source, size_t NumRuns,
                              uint64_t Seed, const obs::RecordStore *Prior,
                              unsigned Threads = 1) {
  IncrementalRun Out;
  Out.M = compile(Source);
  EXPECT_NE(Out.M, nullptr);
  Out.Layout = std::make_unique<ModuleLayout>(*Out.M);
  FunctionHarness Harness("f", {RtValue::fromI64(24)});
  IncrementalConfig Cfg;
  Cfg.Base.NumRuns = NumRuns;
  Cfg.Base.Seed = Seed;
  Cfg.Base.NumThreads = Threads;
  Cfg.Prior = Prior;
  Out.R = runIncrementalCampaign(Harness, *Out.Layout, *Out.M, Cfg);
  return Out;
}

obs::RecordStore toStore(const IncrementalRun &Run, uint64_t Seed) {
  RecordBuildInputs In;
  In.M = Run.M.get();
  In.Result = &Run.R.Campaign;
  In.EntryFunction = "f";
  In.Seed = Seed;
  In.FunctionMetas = &Run.R.FunctionMetas;
  return buildRecordStore(In);
}

void expectSameRecords(const CampaignResult &A, const CampaignResult &B) {
  ASSERT_EQ(A.Records.size(), B.Records.size());
  for (size_t I = 0; I != A.Records.size(); ++I) {
    EXPECT_EQ(A.Records[I].InstructionId, B.Records[I].InstructionId);
    EXPECT_EQ(A.Records[I].BitIndex, B.Records[I].BitIndex);
    EXPECT_EQ(A.Records[I].Result, B.Records[I].Result);
  }
  for (size_t K = 0; K != NumOutcomes; ++K)
    EXPECT_EQ(A.Counts[K], B.Counts[K]);
}

} // namespace

TEST(Incremental, SecondRunReusesEverything) {
  IPAS_SEED_TRACE(testSeed());
  std::string Src = readTestdata("residual.mc");
  IncrementalRun First = runIncremental(Src, 90, testSeed(), nullptr);
  EXPECT_EQ(First.R.ReusedRuns, 0u);
  EXPECT_EQ(First.R.ExecutedRuns, 90u);
  ASSERT_EQ(First.R.FunctionMetas.size(), First.M->numFunctions());

  obs::RecordStore Prior = toStore(First, testSeed());
  IncrementalRun Second = runIncremental(Src, 90, testSeed(), &Prior);
  EXPECT_EQ(Second.R.ExecutedRuns, 0u);
  EXPECT_EQ(Second.R.ReusedRuns, 90u);
  for (size_t I = 0; I != Second.R.FunctionMetas.size(); ++I)
    EXPECT_EQ(Second.R.reason(I), InvalidationReason::Reused);
  expectSameRecords(First.R.Campaign, Second.R.Campaign);
}

TEST(Incremental, EditReexecutesOnlyTheEditedFunction) {
  IPAS_SEED_TRACE(testSeed());
  IncrementalRun First =
      runIncremental(readTestdata("residual.mc"), 90, testSeed(), nullptr);
  obs::RecordStore Prior = toStore(First, testSeed());

  // residual_edit.mc changes only f (value-preservingly), so smooth's
  // rows carry over and strictly less than half of the campaign re-runs.
  std::string Edited = readTestdata("residual_edit.mc");
  IncrementalRun Inc = runIncremental(Edited, 90, testSeed(), &Prior);
  ASSERT_EQ(Inc.R.FunctionMetas.size(), 2u);
  const Function *Smooth = Inc.M->getFunction("smooth");
  const Function *F = Inc.M->getFunction("f");
  ASSERT_NE(Smooth, nullptr);
  ASSERT_NE(F, nullptr);
  for (size_t I = 0; I != Inc.R.FunctionMetas.size(); ++I) {
    const Function *Fn =
        Inc.M->function(Inc.R.FunctionMetas[I].FunctionIndex);
    if (Fn == Smooth)
      EXPECT_EQ(Inc.R.reason(I), InvalidationReason::Reused);
    else
      EXPECT_EQ(Inc.R.reason(I), InvalidationReason::ContentChanged);
  }
  EXPECT_GT(Inc.R.ReusedRuns, 0u);
  EXPECT_LT(Inc.R.ExecutedRuns, 45u) << "edit re-ran half the campaign";

  // Merged outcomes must be indistinguishable from a from-scratch
  // incremental campaign on the edited module.
  IncrementalRun Scratch = runIncremental(Edited, 90, testSeed(), nullptr);
  expectSameRecords(Scratch.R.Campaign, Inc.R.Campaign);
}

TEST(Incremental, RecordsInvariantAcrossThreadCounts) {
  IPAS_SEED_TRACE(testSeed());
  std::string Src = readTestdata("residual.mc");
  IncrementalRun Serial = runIncremental(Src, 80, testSeed(), nullptr, 1);
  IncrementalRun Threaded = runIncremental(Src, 80, testSeed(), nullptr, 4);
  expectSameRecords(Serial.R.Campaign, Threaded.R.Campaign);
  // The function table — hashes included — is part of the contract.
  ASSERT_EQ(Serial.R.FunctionMetas.size(), Threaded.R.FunctionMetas.size());
  for (size_t I = 0; I != Serial.R.FunctionMetas.size(); ++I) {
    EXPECT_EQ(Serial.R.FunctionMetas[I].ContentHash,
              Threaded.R.FunctionMetas[I].ContentHash);
    EXPECT_EQ(Serial.R.FunctionMetas[I].ProfileHash,
              Threaded.R.FunctionMetas[I].ProfileHash);
    EXPECT_EQ(Serial.R.FunctionMetas[I].PlannedRuns,
              Threaded.R.FunctionMetas[I].PlannedRuns);
  }
}

TEST(Incremental, PriorWithDifferentSeedIsIgnored) {
  IPAS_SEED_TRACE(testSeed());
  std::string Src = readTestdata("residual.mc");
  IncrementalRun First = runIncremental(Src, 60, testSeed(), nullptr);
  obs::RecordStore Prior = toStore(First, testSeed());
  Prior.Seed ^= 1; // a campaign from some other seed
  IncrementalRun Second = runIncremental(Src, 60, testSeed(), &Prior);
  EXPECT_EQ(Second.R.ReusedRuns, 0u);
  EXPECT_EQ(Second.R.ExecutedRuns, 60u);
  for (size_t I = 0; I != Second.R.FunctionMetas.size(); ++I)
    EXPECT_EQ(Second.R.reason(I), InvalidationReason::Fresh);
}

TEST(Incremental, TamperedPriorRowsFallBackToExecution) {
  IPAS_SEED_TRACE(testSeed());
  std::string Src = readTestdata("residual.mc");
  IncrementalRun First = runIncremental(Src, 60, testSeed(), nullptr);
  obs::RecordStore Prior = toStore(First, testSeed());
  ASSERT_FALSE(Prior.Rows.empty());
  // Corrupt one row's bit index: the per-row plan verification must
  // demote that function to PlanMismatch, not hand back wrong data.
  Prior.Rows[0].BitIndex = (Prior.Rows[0].BitIndex + 1) % 64;
  IncrementalRun Second = runIncremental(Src, 60, testSeed(), &Prior);
  bool SawMismatch = false;
  for (size_t I = 0; I != Second.R.FunctionMetas.size(); ++I)
    SawMismatch |= Second.R.reason(I) == InvalidationReason::PlanMismatch;
  EXPECT_TRUE(SawMismatch);
  expectSameRecords(First.R.Campaign, Second.R.Campaign);
}
