//===- tests/TestMpi.cpp - SimMPI scheduler -----------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "mpi/SimMpi.h"

using namespace ipas;
using namespace ipas::testutil;

namespace {

/// Runs \p Src's `f(rank-independent args...)` on \p P ranks and returns
/// the JobResult plus per-rank return values.
struct ParallelRun {
  JobResult Result;
  std::vector<int64_t> ReturnValues;
};

ParallelRun runParallel(const std::string &Src, int P,
                        const std::vector<RtValue> &Args = {},
                        uint64_t Budget = UINT64_MAX,
                        const FaultPlan *PlanForRank0 = nullptr) {
  static std::unique_ptr<Module> M;
  static std::unique_ptr<ModuleLayout> Layout;
  static std::string LastSrc;
  if (Src != LastSrc) {
    M = compile(Src);
    Layout = std::make_unique<ModuleLayout>(*M);
    LastSrc = Src;
  }
  MpiJob::Config Cfg;
  Cfg.NumRanks = P;
  Cfg.StepBudgetPerRank = Budget;
  MpiJob Job(*Layout, Cfg);
  if (PlanForRank0)
    Job.rank(0).setFaultPlan(*PlanForRank0);
  Job.start(M->getFunction("f"),
            [&](ExecutionContext &, int) { return Args; });
  ParallelRun R;
  R.Result = Job.run();
  for (int K = 0; K != P; ++K)
    R.ReturnValues.push_back(Job.rank(K).returnValue().asI64());
  return R;
}

} // namespace

TEST(SimMpi, RankAndSize) {
  auto R = runParallel("int f() { return mpi_rank() * 100 + mpi_size(); }",
                       4);
  EXPECT_EQ(R.Result.Status, RunStatus::Finished);
  for (int K = 0; K != 4; ++K)
    EXPECT_EQ(R.ReturnValues[K], K * 100 + 4);
}

TEST(SimMpi, AllreduceSum) {
  auto R = runParallel(
      "int f() { return (int)mpi_allreduce_sum_d(1.0 * mpi_rank()); }", 4);
  EXPECT_EQ(R.Result.Status, RunStatus::Finished);
  for (int K = 0; K != 4; ++K)
    EXPECT_EQ(R.ReturnValues[K], 0 + 1 + 2 + 3);
}

TEST(SimMpi, AllreduceMaxAndSumI) {
  auto R = runParallel(
      "int f() { int m = (int)mpi_allreduce_max_d(1.0 * mpi_rank());\n"
      "  int s = mpi_allreduce_sum_i(2);\n"
      "  return m * 100 + s; }",
      3);
  EXPECT_EQ(R.Result.Status, RunStatus::Finished);
  for (int K = 0; K != 3; ++K)
    EXPECT_EQ(R.ReturnValues[K], 2 * 100 + 6);
}

TEST(SimMpi, BroadcastFromRoot) {
  auto R = runParallel("int f() { double v = 0.0;\n"
                       "  if (mpi_rank() == 1) v = 42.0;\n"
                       "  return (int)mpi_bcast_d(v, 1); }",
                       4);
  EXPECT_EQ(R.Result.Status, RunStatus::Finished);
  for (int K = 0; K != 4; ++K)
    EXPECT_EQ(R.ReturnValues[K], 42);
}

TEST(SimMpi, AllgatherAssemblesInRankOrder) {
  auto R = runParallel(
      "int f() {\n"
      "  double send[2]; double recv[16];\n"
      "  send[0] = 10.0 * mpi_rank(); send[1] = 10.0 * mpi_rank() + 1.0;\n"
      "  mpi_allgather_d(send, recv, 2);\n"
      "  int sum = 0;\n"
      "  for (int i = 0; i < 2 * mpi_size(); i = i + 1)\n"
      "    sum = sum * 100 + (int)recv[i];\n"
      "  return sum; }",
      3);
  EXPECT_EQ(R.Result.Status, RunStatus::Finished);
  // recv = [0,1,10,11,20,21] on every rank.
  int64_t Expect = 0;
  for (int V : {0, 1, 10, 11, 20, 21})
    Expect = Expect * 100 + V;
  for (int K = 0; K != 3; ++K)
    EXPECT_EQ(R.ReturnValues[K], Expect);
}

TEST(SimMpi, AlltoallTransposesSegments) {
  auto R = runParallel(
      "int f() {\n"
      "  int p = mpi_size(); int me = mpi_rank();\n"
      "  double send[4]; double recv[4];\n"
      "  for (int d = 0; d < p; d = d + 1) send[d] = 10.0 * me + d;\n"
      "  mpi_alltoall_d(send, recv, 1);\n"
      "  int sum = 0;\n"
      "  for (int s = 0; s < p; s = s + 1) sum = sum * 100 + (int)recv[s];\n"
      "  return sum; }",
      4);
  EXPECT_EQ(R.Result.Status, RunStatus::Finished);
  // Rank r receives segment me from each source s: value 10*s + r.
  for (int K = 0; K != 4; ++K) {
    int64_t Expect = 0;
    for (int S = 0; S != 4; ++S)
      Expect = Expect * 100 + (10 * S + K);
    EXPECT_EQ(R.ReturnValues[K], Expect);
  }
}

TEST(SimMpi, BarrierSynchronizesWithoutValues) {
  auto R = runParallel("int f() { mpi_barrier(); mpi_barrier();\n"
                       "  return 7; }",
                       5);
  EXPECT_EQ(R.Result.Status, RunStatus::Finished);
}

TEST(SimMpi, MismatchedCollectivesTrap) {
  auto R = runParallel("int f() {\n"
                       "  if (mpi_rank() == 0) { mpi_barrier(); }\n"
                       "  else { double x = mpi_allreduce_sum_d(1.0); }\n"
                       "  return 0; }",
                       2);
  EXPECT_EQ(R.Result.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Result.Trap, TrapKind::MpiMismatch);
}

TEST(SimMpi, PartialExitIsDeadlockHang) {
  auto R = runParallel("int f() {\n"
                       "  if (mpi_rank() > 0) { mpi_barrier(); }\n"
                       "  return 0; }",
                       2);
  EXPECT_EQ(R.Result.Status, RunStatus::OutOfSteps);
}

TEST(SimMpi, RankTrapAbortsJob) {
  auto R = runParallel("int f() {\n"
                       "  if (mpi_rank() == 1) { int z = 0; return 5 / z; }\n"
                       "  mpi_barrier();\n"
                       "  return 0; }",
                       3);
  EXPECT_EQ(R.Result.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Result.Trap, TrapKind::DivByZero);
  EXPECT_EQ(R.Result.FailedRank, 1);
}

TEST(SimMpi, BadGatherBufferTraps) {
  auto R2 = runParallel(
      "int f() {\n"
      "  double send[1]; double ok[8]; send[0] = 1.0;\n"
      "  double* bad = ok + 100000000;\n"
      "  mpi_allgather_d(send, bad, 1);\n"
      "  return 0; }",
      2);
  EXPECT_EQ(R2.Result.Status, RunStatus::Trapped);
  EXPECT_EQ(R2.Result.Trap, TrapKind::OutOfBounds);
}

TEST(SimMpi, FaultInOneRankPropagatesAsJobFailure) {
  // Flip a high bit in rank 0's loop bound computation: the job must not
  // silently complete with divergent collectives; it either finishes
  // (masked), hangs, mismatches, or traps — never reports Blocked.
  const char *Src = "int f() {\n"
                    "  double acc = 0.0;\n"
                    "  int n = 10 + mpi_rank();\n"
                    "  n = n - mpi_rank();\n"
                    "  for (int i = 0; i < n; i = i + 1)\n"
                    "    acc = acc + mpi_allreduce_sum_d(1.0);\n"
                    "  return (int)acc; }";
  int Terminal = 0;
  for (uint64_t Step = 0; Step != 12; ++Step) {
    FaultPlan Plan;
    Plan.TargetValueStep = Step;
    Plan.BitDraw = 60;
    auto R = runParallel(Src, 2, {}, /*Budget=*/200000, &Plan);
    EXPECT_NE(R.Result.Status, RunStatus::Blocked);
    if (R.Result.Status != RunStatus::Finished)
      ++Terminal;
  }
  // At least some of those flips must derail the job observably.
  EXPECT_GT(Terminal, 0);
}

TEST(SimMpi, CommCostChargedPerCollective) {
  auto M = compile("int f() { double s = mpi_allreduce_sum_d(1.0);\n"
                   "  return (int)s; }");
  ModuleLayout Layout(*M);
  MpiJob::Config Cfg;
  Cfg.NumRanks = 2;
  Cfg.AlphaCost = 1000;
  MpiJob Job(Layout, Cfg);
  Job.start(M->getFunction("f"),
            [](ExecutionContext &, int) { return std::vector<RtValue>{}; });
  JobResult R = Job.run();
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_GE(Job.rank(0).commCost(), 1000u);
  EXPECT_GT(R.CriticalPathCycles, Job.rank(0).steps());
}

TEST(SimMpi, DeterministicAcrossRuns) {
  const char *Src = "int f() { double s = 0.0;\n"
                    "  for (int i = 0; i < 5; i = i + 1)\n"
                    "    s = s + mpi_allreduce_sum_d(1.0 * mpi_rank());\n"
                    "  return (int)s; }";
  auto A = runParallel(Src, 4);
  auto B = runParallel(Src, 4);
  EXPECT_EQ(A.Result.TotalSteps, B.Result.TotalSteps);
  EXPECT_EQ(A.ReturnValues, B.ReturnValues);
}
