//===- tests/TestWorkloads.cpp - The five paper workloads ---------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "workloads/WorkloadHarness.h"
#include "transform/Duplication.h"

#include <cmath>

using namespace ipas;
using namespace ipas::testutil;

namespace {

class WorkloadSuite : public ::testing::TestWithParam<const char *> {
protected:
  std::unique_ptr<Workload> W = makeWorkload(GetParam());
};

} // namespace

TEST_P(WorkloadSuite, CompilesAndVerifies) {
  ASSERT_TRUE(W);
  auto M = compileWorkload(*W);
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_GT(M->numInstructions(), 50u);
  EXPECT_NE(M->getFunction(Workload::EntryName), nullptr);
}

TEST_P(WorkloadSuite, CleanSerialRunPassesVerification) {
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  WorkloadHarness H(*W, 1);
  ExecutionRecord R = H.execute(Layout, nullptr, UINT64_MAX);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_TRUE(R.OutputValid);
  EXPECT_GT(R.ValueSteps, 1000u);
  EXPECT_FALSE(H.golden().empty());
}

TEST_P(WorkloadSuite, InputLevelsGrowTheProblem) {
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  uint64_t PrevSteps = 0;
  for (int Level = 1; Level <= 3; ++Level) {
    WorkloadHarness H(*W, Level);
    ExecutionRecord R = H.execute(Layout, nullptr, UINT64_MAX);
    ASSERT_EQ(R.Status, RunStatus::Finished) << "level " << Level;
    EXPECT_TRUE(R.OutputValid) << "level " << Level;
    EXPECT_GT(R.Steps, PrevSteps) << "level " << Level;
    PrevSteps = R.Steps;
  }
}

TEST_P(WorkloadSuite, ParallelMatchesSerialOutput) {
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  WorkloadHarness Serial(*W, 1, 1);
  ExecutionRecord RS = Serial.execute(Layout, nullptr, UINT64_MAX);
  ASSERT_EQ(RS.Status, RunStatus::Finished);
  for (int P : {2, 4}) {
    WorkloadHarness Par(*W, 1, P);
    ExecutionRecord RP = Par.execute(Layout, nullptr, UINT64_MAX);
    ASSERT_EQ(RP.Status, RunStatus::Finished) << "P=" << P;
    EXPECT_TRUE(RP.OutputValid) << "P=" << P;
    // Verify the parallel output against the serial golden: it must be an
    // acceptable outcome of the same computation.
    EXPECT_TRUE(W->verify(Par.golden(), Serial.golden(), W->inputParams(1)))
        << "P=" << P;
  }
}

TEST_P(WorkloadSuite, ParallelCriticalPathShrinks) {
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  WorkloadHarness Serial(*W, 1, 1);
  ExecutionRecord R1 = Serial.execute(Layout, nullptr, UINT64_MAX);
  WorkloadHarness Par(*W, 1, 4);
  ExecutionRecord R4 = Par.execute(Layout, nullptr, UINT64_MAX);
  ASSERT_EQ(R4.Status, RunStatus::Finished);
  EXPECT_LT(R4.CriticalPathCycles, R1.CriticalPathCycles);
}

TEST_P(WorkloadSuite, DuplicationPreservesCleanBehaviour) {
  auto M = compileWorkload(*W);
  duplicateAllInstructions(*M);
  M->renumber();
  ASSERT_TRUE(verifyModule(*M).empty());
  ModuleLayout Layout(*M);
  WorkloadHarness H(*W, 1);
  ExecutionRecord R = H.execute(Layout, nullptr, UINT64_MAX);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_TRUE(R.OutputValid);
}

TEST_P(WorkloadSuite, VerificationRejectsCorruptedOutput) {
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  WorkloadHarness H(*W, 1);
  ExecutionRecord R = H.execute(Layout, nullptr, UINT64_MAX);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  std::vector<RtValue> Corrupt = H.golden();
  ASSERT_FALSE(Corrupt.empty());
  // Large alternating-sign corruption of the whole output must be
  // rejected by every workload's routine (energy shift, solution error,
  // unsorted keys, L2 blowup, residual blowup)...
  for (size_t I = 0; I != Corrupt.size(); ++I)
    Corrupt[I] = RtValue::fromF64(Corrupt[I].asF64() +
                                  (I % 2 == 0 ? 1e6 : -1e6));
  EXPECT_FALSE(W->verify(Corrupt, H.golden(), W->inputParams(1)));
  // ...while the golden output itself is accepted.
  EXPECT_TRUE(W->verify(H.golden(), H.golden(), W->inputParams(1)));
}

TEST_P(WorkloadSuite, DescriptionsAreInformative) {
  EXPECT_FALSE(W->description().empty());
  for (int Level = 1; Level <= 4; ++Level) {
    EXPECT_FALSE(W->inputDescription(Level).empty());
    EXPECT_FALSE(W->inputParams(Level).empty());
  }
  EXPECT_GT(Lexer::countCodeLines(W->source()), 20u);
}

INSTANTIATE_TEST_SUITE_P(AllFive, WorkloadSuite,
                         ::testing::Values("CoMD", "HPCCG", "AMG", "FFT",
                                           "IS"));

TEST(Workloads, RegistryIsComplete) {
  auto All = makeAllWorkloads();
  ASSERT_EQ(All.size(), 5u);
  EXPECT_EQ(All[0]->name(), "CoMD");
  EXPECT_EQ(All[1]->name(), "HPCCG");
  EXPECT_EQ(All[2]->name(), "AMG");
  EXPECT_EQ(All[3]->name(), "FFT");
  EXPECT_EQ(All[4]->name(), "IS");
  EXPECT_EQ(makeWorkload("nope"), nullptr);
}

TEST(Workloads, HpccgSolutionIsAllOnes) {
  auto W = makeWorkload("HPCCG");
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  WorkloadHarness H(*W, 1);
  ExecutionRecord R = H.execute(Layout, nullptr, UINT64_MAX);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  for (const RtValue &V : H.golden())
    EXPECT_NEAR(V.asF64(), 1.0, 1e-4);
}

TEST(Workloads, IsOutputIsSorted) {
  auto W = makeWorkload("IS");
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  WorkloadHarness H(*W, 1);
  ExecutionRecord R = H.execute(Layout, nullptr, UINT64_MAX);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  const auto &Out = H.golden();
  ASSERT_EQ(Out.size(), static_cast<size_t>(W->inputParams(1)[0]));
  for (size_t I = 1; I != Out.size(); ++I)
    ASSERT_LE(Out[I - 1].asF64(), Out[I].asF64());
}

TEST(Workloads, FftRoundTripIsTight) {
  auto W = makeWorkload("FFT");
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  WorkloadHarness H(*W, 1);
  ExecutionRecord R = H.execute(Layout, nullptr, UINT64_MAX);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  // The FFT+inverse round trip reproduces the deterministic input, so the
  // first real-plane entry matches sin/cos of the index function.
  double Expected = std::sin(0.0) + 0.25 * std::cos(0.0);
  EXPECT_NEAR(H.golden()[0].asF64(), Expected, 1e-9);
}

TEST(Workloads, CoMDEnergyTraceIsFlat) {
  auto W = makeWorkload("CoMD");
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  WorkloadHarness H(*W, 1);
  ExecutionRecord R = H.execute(Layout, nullptr, UINT64_MAX);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  const auto &E = H.golden();
  ASSERT_GE(E.size(), 2u);
  double First = E.front().asF64();
  double Last = E.back().asF64();
  EXPECT_LT(std::fabs(Last - First),
            1e-4 * std::max(1.0, std::fabs(First)));
}

TEST(Workloads, AmgChecksumGuardsInputIntegrity) {
  auto W = makeWorkload("AMG");
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  WorkloadHarness H(*W, 1);
  ExecutionRecord R = H.execute(Layout, nullptr, UINT64_MAX);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  std::vector<RtValue> Tampered = H.golden();
  Tampered.back() = RtValue::fromF64(Tampered.back().asF64() + 1.0);
  EXPECT_FALSE(W->verify(Tampered, H.golden(), W->inputParams(1)));
}
