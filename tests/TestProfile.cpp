//===- tests/TestProfile.cpp - Cost profiler + .ipprof store tests --------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the instruction-level cost profiler (interp/CostProfiler),
/// the .ipprof store codec (obs/ProfileStore), protection-overhead
/// attribution (fault/ProfileBuild), and the guarantee that profiling a
/// clean run never perturbs the deterministic campaign record stream.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fault/Campaign.h"
#include "fault/FunctionHarness.h"
#include "fault/ProfileBuild.h"
#include "fault/RecordBuild.h"
#include "interp/CostProfiler.h"
#include "obs/ProfileStore.h"
#include "obs/RecordStore.h"
#include "transform/Duplication.h"

using namespace ipas;
using testutil::compile;

namespace {

/// One profiled clean run of M.Fn(Args); asserts the run finishes with
/// valid output and that the profiler's step total matches the
/// interpreter's.
struct ProfiledRun {
  std::vector<uint64_t> Counts;
  uint64_t Steps = 0;
  uint64_t Cycles = 0;
  std::vector<uint64_t> Hashes;
  size_t NumContexts = 0;
};

ProfiledRun profileOnce(const Module &M, const std::string &Fn,
                        std::vector<RtValue> Args, CostProfiler::Mode Mode,
                        bool WithHashes = false) {
  ModuleLayout Layout(M);
  FunctionHarness H(Fn, std::move(Args));
  CostProfiler Prof(Layout, Mode);
  if (WithHashes)
    Prof.enableFunctionHashes();
  ExecutionRecord Rec = H.executeProfiled(Layout, Prof);
  EXPECT_EQ(Rec.Status, RunStatus::Finished);
  EXPECT_TRUE(Rec.OutputValid);
  EXPECT_EQ(Prof.totalSteps(), Rec.Steps);
  ProfiledRun R;
  R.Counts = Prof.flatCounts();
  R.Steps = Prof.totalSteps();
  R.Cycles = Prof.totalCycles();
  R.Hashes = Prof.functionHashes();
  R.NumContexts = Prof.contexts().size();
  EXPECT_EQ(R.Cycles, cyclesOfCounts(M, R.Counts, Prof.model()));
  return R;
}

/// Ids of every instruction of M with the given opcode.
std::vector<unsigned> idsOf(const Module &M, Opcode Op) {
  std::vector<unsigned> Ids;
  for (const Instruction *I : M.allInstructions())
    if (I->opcode() == Op)
      Ids.push_back(I->id());
  return Ids;
}

TEST(CostProfiler, StraightLineCountsAreAllOne) {
  std::unique_ptr<Module> M =
      compile("int f(int a, int b) { return a * b + a; }");
  ASSERT_NE(M, nullptr);
  ProfiledRun R = profileOnce(*M, "f",
                              {RtValue::fromI64(6), RtValue::fromI64(7)},
                              CostProfiler::Mode::Counting);
  // Straight-line code: every static instruction executes exactly once.
  ASSERT_EQ(R.Counts.size(), M->numInstructions());
  for (size_t Id = 0; Id != R.Counts.size(); ++Id)
    EXPECT_EQ(R.Counts[Id], 1u) << "instruction id " << Id;
  EXPECT_EQ(R.Steps, M->numInstructions());
}

TEST(CostProfiler, LoopCountsMatchHandDerivation) {
  std::unique_ptr<Module> M = compile(
      "int f(int n) {\n"
      "  int s = 1;\n"
      "  int i = 0;\n"
      "  while (i < n) { s = s * 3; i = i + 1; }\n"
      "  return s;\n"
      "}\n");
  ASSERT_NE(M, nullptr);
  ProfiledRun R = profileOnce(*M, "f", {RtValue::fromI64(5)},
                              CostProfiler::Mode::Counting);
  // n = 5: the body's unique multiply runs 5 times, the header's unique
  // compare 6 times (5 taken + 1 exit), the return once.
  std::vector<unsigned> Muls = idsOf(*M, Opcode::Mul);
  std::vector<unsigned> Cmps = idsOf(*M, Opcode::ICmp);
  std::vector<unsigned> Rets = idsOf(*M, Opcode::Ret);
  ASSERT_EQ(Muls.size(), 1u);
  ASSERT_EQ(Cmps.size(), 1u);
  ASSERT_EQ(Rets.size(), 1u);
  EXPECT_EQ(R.Counts[Muls[0]], 5u);
  EXPECT_EQ(R.Counts[Cmps[0]], 6u);
  EXPECT_EQ(R.Counts[Rets[0]], 1u);
  uint64_t Sum = 0;
  for (uint64_t C : R.Counts)
    Sum += C;
  EXPECT_EQ(Sum, R.Steps);
}

const char *CallTreeSource =
    "int g(int x) { return x + 1; }\n"
    "int h(int x) { return g(x) + 2; }\n"
    "int f(int x) { return g(x) + h(x); }\n";

TEST(CostProfiler, ContextTreeHasOneNodePerCallPath) {
  std::unique_ptr<Module> M = compile(CallTreeSource);
  ASSERT_NE(M, nullptr);
  ModuleLayout Layout(*M);
  FunctionHarness H("f", {RtValue::fromI64(7)});
  CostProfiler Prof(Layout, CostProfiler::Mode::Context);
  ExecutionRecord Rec = H.executeProfiled(Layout, Prof);
  ASSERT_EQ(Rec.Status, RunStatus::Finished);

  // Call paths: f, f->g, f->h, f->h->g — four distinct contexts.
  const std::vector<CostProfiler::ContextNode> &Nodes = Prof.contexts();
  ASSERT_EQ(Nodes.size(), 4u);
  EXPECT_EQ(Nodes[0].Parent, UINT32_MAX);
  ASSERT_NE(Nodes[0].Fn, nullptr);
  EXPECT_EQ(Nodes[0].Fn->name(), "f");
  size_t GNodes = 0, HNodes = 0;
  uint64_t NodeCycleSum = 0, NodeStepSum = 0;
  for (const CostProfiler::ContextNode &N : Nodes) {
    ASSERT_NE(N.Fn, nullptr);
    GNodes += N.Fn->name() == "g";
    HNodes += N.Fn->name() == "h";
    NodeCycleSum += Prof.nodeCycles(N);
    for (uint64_t C : N.Counts)
      NodeStepSum += C;
  }
  EXPECT_EQ(GNodes, 2u); // called from f and from h
  EXPECT_EQ(HNodes, 1u);
  // Exclusive node costs partition the whole run.
  EXPECT_EQ(NodeCycleSum, Prof.totalCycles());
  EXPECT_EQ(NodeStepSum, Prof.totalSteps());
}

TEST(CostProfiler, FlatCountsAgreeAcrossModes) {
  std::unique_ptr<Module> M = compile(CallTreeSource);
  ASSERT_NE(M, nullptr);
  ProfiledRun Counting = profileOnce(*M, "f", {RtValue::fromI64(7)},
                                     CostProfiler::Mode::Counting);
  ProfiledRun Context = profileOnce(*M, "f", {RtValue::fromI64(7)},
                                    CostProfiler::Mode::Context);
  EXPECT_EQ(Counting.Counts, Context.Counts);
  EXPECT_EQ(Counting.Steps, Context.Steps);
  EXPECT_EQ(Counting.Cycles, Context.Cycles);
}

TEST(CostProfiler, FunctionHashesAgreeAcrossModes) {
  std::unique_ptr<Module> M = compile(CallTreeSource);
  ASSERT_NE(M, nullptr);
  ProfiledRun Counting = profileOnce(*M, "f", {RtValue::fromI64(9)},
                                     CostProfiler::Mode::Counting,
                                     /*WithHashes=*/true);
  ProfiledRun Context = profileOnce(*M, "f", {RtValue::fromI64(9)},
                                    CostProfiler::Mode::Context,
                                    /*WithHashes=*/true);
  ASSERT_EQ(Counting.Hashes.size(), M->numFunctions());
  EXPECT_EQ(Counting.Hashes, Context.Hashes);
  // The run commits values in every function, so no hash stays at the
  // FNV offset basis.
  constexpr uint64_t FnvOffsetBasis = 1469598103934665603ull;
  for (uint64_t H : Counting.Hashes)
    EXPECT_NE(H, FnvOffsetBasis);
}

TEST(ProfileBuild, StoreMirrorsProfilerCounts) {
  std::unique_ptr<Module> M = compile(CallTreeSource);
  ASSERT_NE(M, nullptr);
  ModuleLayout Layout(*M);
  FunctionHarness H("f", {RtValue::fromI64(7)});
  CostProfiler Prof(Layout, CostProfiler::Mode::Context);
  ProfileBuildInputs In;
  In.EntryFunction = "f";
  In.Label = "test";
  In.SourceText = CallTreeSource;
  obs::ProfileStore S;
  std::string Err;
  ASSERT_TRUE(buildProfileStore(H, Layout, Prof, In, S, &Err)) << Err;

  EXPECT_EQ(S.Mode, obs::ProfileContext);
  EXPECT_EQ(S.CleanSteps, Prof.totalSteps());
  EXPECT_EQ(S.TotalCycles, Prof.totalCycles());
  ASSERT_EQ(S.Instructions.size(), M->numInstructions());
  ASSERT_EQ(S.Functions.size(), M->numFunctions());
  ASSERT_EQ(S.Contexts.size(), 4u);
  EXPECT_FALSE(S.LineCosts.empty());
  uint64_t InstrCycleSum = 0, InstrCountSum = 0;
  for (const obs::ProfInstr &P : S.Instructions) {
    InstrCycleSum += P.Cycles;
    InstrCountSum += P.ExecCount;
  }
  EXPECT_EQ(InstrCycleSum, S.TotalCycles);
  EXPECT_EQ(InstrCountSum, S.CleanSteps);
  uint64_t CtxCycleSum = 0;
  for (const obs::ProfContext &C : S.Contexts)
    CtxCycleSum += C.Cycles;
  EXPECT_EQ(CtxCycleSum, S.TotalCycles);
  uint64_t LineCycleSum = 0;
  for (const obs::ProfLineCost &LC : S.LineCosts)
    LineCycleSum += LC.Cycles;
  EXPECT_EQ(LineCycleSum, S.TotalCycles);
}

/// A fully-populated store exercising every column of the codec.
obs::ProfileStore sampleStore() {
  obs::ProfileStore S;
  S.ModuleName = "m";
  S.EntryFunction = "f";
  S.Label = "unit";
  S.SourceText = "int f() { return 42; }\n";
  S.Mode = obs::ProfileContext;
  S.CleanSteps = 123;
  S.TotalCycles = 456;
  S.HasOverhead = 1;
  S.BaselineTotalCycles = 400;
  S.CostModelCycles = {1, 3, 24, 4};
  S.Functions = {"f", "g"};
  S.Instructions.push_back({7, 2, 1, 3, 9, 1, 55, 110});
  S.Instructions.push_back({8, 5, 0, 4, 1, 0, 66, 66});
  S.Contexts.push_back({0, UINT32_MAX, 0, 100, 300});
  S.Contexts.push_back({1, 0, 1, 23, 156});
  S.LineCosts.push_back({1, 1, 3, 55, 110});
  S.Overheads.push_back({7, 2, 1, 3, 9, 1, 100, 100, 40, 16});
  return S;
}

TEST(ProfileStore, SerializeParseRoundTrip) {
  obs::ProfileStore S = sampleStore();
  std::string Bytes;
  obs::serializeProfileStore(S, Bytes);
  obs::ProfileStore R;
  std::string Err;
  ASSERT_TRUE(obs::parseProfileStore(R, Bytes, &Err)) << Err;

  EXPECT_EQ(R.ModuleName, S.ModuleName);
  EXPECT_EQ(R.EntryFunction, S.EntryFunction);
  EXPECT_EQ(R.Label, S.Label);
  EXPECT_EQ(R.SourceText, S.SourceText);
  EXPECT_EQ(R.Mode, S.Mode);
  EXPECT_EQ(R.CleanSteps, S.CleanSteps);
  EXPECT_EQ(R.TotalCycles, S.TotalCycles);
  EXPECT_EQ(R.HasOverhead, S.HasOverhead);
  EXPECT_EQ(R.BaselineTotalCycles, S.BaselineTotalCycles);
  EXPECT_EQ(R.CostModelCycles, S.CostModelCycles);
  EXPECT_EQ(R.Functions, S.Functions);
  ASSERT_EQ(R.Instructions.size(), S.Instructions.size());
  EXPECT_EQ(R.Instructions[0].Id, S.Instructions[0].Id);
  EXPECT_EQ(R.Instructions[0].DupRole, S.Instructions[0].DupRole);
  EXPECT_EQ(R.Instructions[1].Cycles, S.Instructions[1].Cycles);
  ASSERT_EQ(R.Contexts.size(), S.Contexts.size());
  EXPECT_EQ(R.Contexts[0].Parent, UINT32_MAX);
  EXPECT_EQ(R.Contexts[1].Cycles, S.Contexts[1].Cycles);
  ASSERT_EQ(R.LineCosts.size(), S.LineCosts.size());
  EXPECT_EQ(R.LineCosts[0].Count, S.LineCosts[0].Count);
  ASSERT_EQ(R.Overheads.size(), S.Overheads.size());
  EXPECT_EQ(obs::marginalCycles(R.Overheads[0]),
            obs::marginalCycles(S.Overheads[0]));
}

TEST(ProfileStore, RejectsTruncationCorruptionAndBadMagic) {
  obs::ProfileStore S = sampleStore();
  std::string Bytes;
  obs::serializeProfileStore(S, Bytes);
  ASSERT_GT(Bytes.size(), 16u);

  obs::ProfileStore R;
  std::string Err;
  for (size_t Keep : {size_t(0), size_t(4), Bytes.size() / 2,
                      Bytes.size() - 1}) {
    Err.clear();
    EXPECT_FALSE(obs::parseProfileStore(R, Bytes.substr(0, Keep), &Err))
        << "accepted a " << Keep << "-byte truncation";
    EXPECT_FALSE(Err.empty());
  }

  std::string Flipped = Bytes;
  Flipped[Flipped.size() / 2] ^= 0x20; // payload corruption -> checksum
  EXPECT_FALSE(obs::parseProfileStore(R, Flipped, &Err));

  std::string BadMagic = Bytes;
  BadMagic[0] ^= 0xff;
  EXPECT_FALSE(obs::parseProfileStore(R, BadMagic, &Err));
}

const char *KernelSource =
    "int f(int n) {\n"
    "  int s = 1;\n"
    "  int i = 0;\n"
    "  while (i < n) { s = s * 3 + i; i = i + 1; }\n"
    "  return s;\n"
    "}\n";

TEST(ProfileBuild, OverheadAttributionIsConservativeExact) {
  std::unique_ptr<Module> Base = compile(KernelSource);
  std::unique_ptr<Module> Prot = compile(KernelSource);
  ASSERT_NE(Base, nullptr);
  ASSERT_NE(Prot, nullptr);
  duplicateAllInstructions(*Prot);
  Prot->renumber();
  ASSERT_TRUE(verifyModule(*Prot).empty());
  ASSERT_GT(Prot->numInstructions(), Base->numInstructions());

  ProfiledRun BaseRun = profileOnce(*Base, "f", {RtValue::fromI64(12)},
                                    CostProfiler::Mode::Counting);
  ProfiledRun ProtRun = profileOnce(*Prot, "f", {RtValue::fromI64(12)},
                                    CostProfiler::Mode::Counting);
  ASSERT_GT(ProtRun.Cycles, BaseRun.Cycles);

  obs::ProfileStore S;
  std::string Err;
  ASSERT_TRUE(attributeOverhead(*Base, BaseRun.Counts, *Prot, ProtRun.Counts,
                                CostModel::standard(), S, &Err))
      << Err;
  EXPECT_EQ(S.HasOverhead, 1u);
  EXPECT_EQ(S.BaselineTotalCycles, BaseRun.Cycles);
  // One row per baseline site, every added cycle charged somewhere, and
  // the attribution is conservative-exact: marginal costs sum to the
  // protected-minus-baseline delta, with nothing double-counted.
  ASSERT_EQ(S.Overheads.size(), Base->numInstructions());
  int64_t MarginalSum = 0;
  uint64_t BaseSum = 0, ProtSum = 0;
  for (const obs::ProfSiteOverhead &O : S.Overheads) {
    EXPECT_GE(obs::marginalCycles(O), 0);
    MarginalSum += obs::marginalCycles(O);
    BaseSum += O.BaseCycles;
    ProtSum += O.ProtCycles + O.ShadowCycles + O.CheckCycles;
  }
  EXPECT_EQ(BaseSum, BaseRun.Cycles);
  EXPECT_EQ(ProtSum, ProtRun.Cycles);
  EXPECT_EQ(MarginalSum,
            static_cast<int64_t>(ProtRun.Cycles) -
                static_cast<int64_t>(BaseRun.Cycles));
}

TEST(ProfileBuild, OverheadAttributionRejectsMismatchedModules) {
  std::unique_ptr<Module> Base =
      compile("int f(int a, int b) { return a * b + a; }");
  std::unique_ptr<Module> Prot = compile(KernelSource);
  ASSERT_NE(Base, nullptr);
  ASSERT_NE(Prot, nullptr);
  duplicateAllInstructions(*Prot);
  Prot->renumber();
  std::vector<uint64_t> BaseCounts(Base->numInstructions(), 1);
  std::vector<uint64_t> ProtCounts(Prot->numInstructions(), 1);
  obs::ProfileStore S;
  std::string Err;
  EXPECT_FALSE(attributeOverhead(*Base, BaseCounts, *Prot, ProtCounts,
                                 CostModel::standard(), S, &Err));
  EXPECT_FALSE(Err.empty());
}

/// Runs one protected campaign and returns its serialized record store
/// with the (nondeterministic, wall-clock) per-run latency column
/// zeroed; everything else in the store is part of the deterministic
/// record stream and must be byte-identical however the campaign ran.
std::string campaignRecordBytes(unsigned NumThreads, bool ProfileFirst) {
  std::unique_ptr<Module> M = testutil::compile(KernelSource);
  if (!M)
    return {};
  duplicateAllInstructions(*M);
  M->renumber();
  ModuleLayout Layout(*M);
  FunctionHarness H("f", {RtValue::fromI64(20)});

  if (ProfileFirst) {
    CostProfiler Prof(Layout, CostProfiler::Mode::Counting);
    Prof.enableFunctionHashes();
    ExecutionRecord Rec = H.executeProfiled(Layout, Prof);
    EXPECT_EQ(Rec.Status, RunStatus::Finished);
  }

  CampaignConfig Cfg;
  Cfg.NumRuns = 80;
  Cfg.Seed = testutil::testSeed();
  Cfg.NumThreads = NumThreads;
  Cfg.TraceRuns = false;
  Cfg.ProgressEvery = Cfg.NumRuns; // keep test logs quiet
  CampaignResult Result = runCampaign(H, Layout, Cfg);

  RecordBuildInputs In;
  In.M = M.get();
  In.Result = &Result;
  In.EntryFunction = "f";
  In.Label = "profile-identity";
  In.Seed = Cfg.Seed;
  obs::RecordStore S = buildRecordStore(In);
  for (obs::InjectionRow &Row : S.Rows)
    Row.LatencyUs = 0;
  std::string Bytes;
  obs::serializeRecordStore(S, Bytes);
  return Bytes;
}

TEST(ProfileBuild, RecordStreamUnperturbedByProfilingAndThreads) {
  IPAS_SEED_TRACE(testutil::testSeed());
  std::string Plain1 = campaignRecordBytes(1, /*ProfileFirst=*/false);
  std::string Profiled1 = campaignRecordBytes(1, /*ProfileFirst=*/true);
  std::string Profiled4 = campaignRecordBytes(4, /*ProfileFirst=*/true);
  std::string Plain4 = campaignRecordBytes(4, /*ProfileFirst=*/false);
  ASSERT_FALSE(Plain1.empty());
  EXPECT_EQ(Plain1, Profiled1);
  EXPECT_EQ(Plain1, Profiled4);
  EXPECT_EQ(Plain1, Plain4);
}

} // namespace
