//===- tests/TestCampaign.cpp - Fault-injection campaigns ---------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/SocPropagation.h"
#include "fault/Campaign.h"
#include "transform/Duplication.h"

using namespace ipas;
using namespace ipas::testutil;

namespace {

/// A tiny synthetic harness: computes a checksum over arithmetic and
/// verifies it against the clean value exactly.
class ToyHarness : public ProgramHarness {
public:
  explicit ToyHarness(const Module &M) : M(M) {}

  ExecutionRecord execute(const ModuleLayout &Layout, const FaultPlan *Plan,
                          uint64_t StepBudget) override {
    ExecutionContext Ctx(Layout);
    if (Plan)
      Ctx.setFaultPlan(*Plan);
    Ctx.start(M.getFunction("f"), {RtValue::fromI64(25)});
    RunStatus S = Ctx.run(StepBudget);
    ExecutionRecord R;
    R.Status = S;
    R.Trap = Ctx.trap();
    R.Steps = Ctx.steps();
    R.ValueSteps = Ctx.valueSteps();
    R.FaultInjected = Ctx.faultWasInjected();
    R.FaultedInstructionId = Ctx.faultedInstructionId();
    if (S == RunStatus::Finished) {
      if (!HaveGolden) {
        Golden = Ctx.returnValue().asI64();
        HaveGolden = true;
        R.OutputValid = true;
      } else {
        R.OutputValid = Ctx.returnValue().asI64() == Golden;
      }
    }
    return R;
  }

private:
  const Module &M;
  int64_t Golden = 0;
  bool HaveGolden = false;
};

const char *ToySrc =
    "int f(int n) {\n"
    "  double a[32];\n"
    "  for (int i = 0; i < 32; i = i + 1) a[i] = 1.0 * i;\n"
    "  double s = 0.0;\n"
    "  for (int k = 0; k < n; k = k + 1)\n"
    "    for (int i = 0; i < 32; i = i + 1)\n"
    "      s = s + a[i] * 1.0001 - 0.5;\n"
    "  return (int)(s * 1000.0);\n"
    "}\n";

/// ToySrc plus a dead computation chain in the hot loop: `t` is never
/// read, so after mem2reg (and with DCE deliberately not run by
/// testutil::compile) its chain survives as SSA instructions whose
/// corruption provably reaches no sink — injection sites the
/// SocPropagation pruner can classify as Masked without executing.
const char *ToySrcWithBenign =
    "int f(int n) {\n"
    "  double a[32];\n"
    "  for (int i = 0; i < 32; i = i + 1) a[i] = 1.0 * i;\n"
    "  double s = 0.0;\n"
    "  for (int k = 0; k < n; k = k + 1)\n"
    "    for (int i = 0; i < 32; i = i + 1) {\n"
    "      double t = s * 0.25 + 1.0;\n"
    "      t = t * 2.0;\n"
    "      s = s + a[i] * 1.0001 - 0.5;\n"
    "    }\n"
    "  return (int)(s * 1000.0);\n"
    "}\n";

/// ToyHarness extended with value-step tracing so campaigns over it can
/// use ProvablyBenign pruning.
class TracingToyHarness : public ToyHarness {
public:
  using ToyHarness::ToyHarness;

  std::vector<unsigned> traceValueSteps(const ModuleLayout &Layout) override {
    std::vector<unsigned> Trace;
    ExecutionContext Ctx(Layout);
    Ctx.setValueStepTrace(&Trace);
    Ctx.start(Layout.module().getFunction("f"), {RtValue::fromI64(25)});
    EXPECT_EQ(Ctx.run(UINT64_MAX), RunStatus::Finished);
    return Trace;
  }
};

} // namespace

TEST(Campaign, ClassifyOutcomeMapping) {
  ExecutionRecord R;
  R.Status = RunStatus::Trapped;
  EXPECT_EQ(classifyOutcome(R), Outcome::Crash);
  R.Status = RunStatus::OutOfSteps;
  EXPECT_EQ(classifyOutcome(R), Outcome::Hang);
  R.Status = RunStatus::Detected;
  EXPECT_EQ(classifyOutcome(R), Outcome::Detected);
  R.Status = RunStatus::Finished;
  R.OutputValid = true;
  EXPECT_EQ(classifyOutcome(R), Outcome::Masked);
  R.OutputValid = false;
  EXPECT_EQ(classifyOutcome(R), Outcome::SOC);
}

TEST(Campaign, SymptomBucket) {
  EXPECT_TRUE(isSymptom(Outcome::Crash));
  EXPECT_TRUE(isSymptom(Outcome::Hang));
  EXPECT_FALSE(isSymptom(Outcome::Detected));
  EXPECT_FALSE(isSymptom(Outcome::Masked));
  EXPECT_FALSE(isSymptom(Outcome::SOC));
}

TEST(Campaign, RunsRequestedInjections) {
  auto M = compile(ToySrc);
  ModuleLayout Layout(*M);
  ToyHarness H(*M);
  CampaignConfig CC;
  CC.NumRuns = 100;
  CC.Seed = 11;
  CampaignResult R = runCampaign(H, Layout, CC);
  EXPECT_EQ(R.Records.size(), 100u);
  EXPECT_EQ(R.totalRuns(), 100u);
  EXPECT_GT(R.CleanSteps, 0u);
  EXPECT_GT(R.CleanValueSteps, 0u);
  size_t Sum = 0;
  for (Outcome O : {Outcome::Crash, Outcome::Hang, Outcome::Detected,
                    Outcome::Masked, Outcome::SOC})
    Sum += R.count(O);
  EXPECT_EQ(Sum, 100u);
  // The toy program is unprotected: nothing can be Detected.
  EXPECT_EQ(R.count(Outcome::Detected), 0u);
}

TEST(Campaign, DeterministicForSameSeed) {
  auto M = compile(ToySrc);
  ModuleLayout Layout(*M);
  CampaignConfig CC;
  CC.NumRuns = 60;
  CC.Seed = 42;
  ToyHarness H1(*M), H2(*M);
  CampaignResult A = runCampaign(H1, Layout, CC);
  CampaignResult B = runCampaign(H2, Layout, CC);
  ASSERT_EQ(A.Records.size(), B.Records.size());
  for (size_t I = 0; I != A.Records.size(); ++I) {
    EXPECT_EQ(A.Records[I].InstructionId, B.Records[I].InstructionId);
    EXPECT_EQ(A.Records[I].Result, B.Records[I].Result);
  }
}

TEST(Campaign, DifferentSeedsSampleDifferently) {
  auto M = compile(ToySrc);
  ModuleLayout Layout(*M);
  CampaignConfig A, B;
  A.NumRuns = B.NumRuns = 40;
  A.Seed = 1;
  B.Seed = 2;
  ToyHarness H1(*M), H2(*M);
  CampaignResult RA = runCampaign(H1, Layout, A);
  CampaignResult RB = runCampaign(H2, Layout, B);
  int Different = 0;
  for (size_t I = 0; I != 40; ++I)
    if (RA.Records[I].TargetValueStep != RB.Records[I].TargetValueStep)
      ++Different;
  EXPECT_GT(Different, 30);
}

TEST(Campaign, RecordsReferenceValidInstructionIds) {
  auto M = compile(ToySrc);
  ModuleLayout Layout(*M);
  ToyHarness H(*M);
  CampaignConfig CC;
  CC.NumRuns = 80;
  CampaignResult R = runCampaign(H, Layout, CC);
  size_t NumInsts = M->numInstructions();
  for (const InjectionRecord &Rec : R.Records)
    EXPECT_LT(Rec.InstructionId, NumInsts);
}

TEST(Campaign, ProtectedProgramDetectsFaults) {
  auto M = compile(ToySrc);
  duplicateAllInstructions(*M);
  M->renumber();
  ModuleLayout Layout(*M);
  ToyHarness H(*M);
  CampaignConfig CC;
  CC.NumRuns = 150;
  CC.Seed = 77;
  CampaignResult R = runCampaign(H, Layout, CC);
  EXPECT_GT(R.count(Outcome::Detected), 0u);
  // SOC under full duplication must be well below the unprotected rate.
  auto M2 = compile(ToySrc);
  ModuleLayout Layout2(*M2);
  ToyHarness H2(*M2);
  CampaignResult Unprot = runCampaign(H2, Layout2, CC);
  EXPECT_LT(R.fraction(Outcome::SOC), Unprot.fraction(Outcome::SOC));
}

// Regression: the per-record (InstructionId, BitIndex, Result) stream is
// a campaign invariant. Neither the thread count nor ProvablyBenign
// pruning may perturb it — plans are pre-drawn from the seed, and pruning
// only classifies runs without executing them. A change that breaks this
// silently invalidates every cached campaign result and cross-run diff.
TEST(Campaign, RecordStreamInvariantAcrossThreadsAndPruning) {
  auto M = compile(ToySrcWithBenign);
  ModuleLayout Layout(*M);
  SocPropagation Soc(*M);
  ASSERT_GT(Soc.numBenign(), 0u)
      << "dead chain in ToySrcWithBenign was not classified benign";
  const std::vector<bool> &Benign = Soc.provablyBenign();

  struct Variant {
    unsigned NumThreads;
    const std::vector<bool> *Pruning;
  };
  const Variant Variants[] = {
      {1, nullptr}, {4, nullptr}, {1, &Benign}, {4, &Benign}};

  std::vector<CampaignResult> Results;
  for (const Variant &V : Variants) {
    TracingToyHarness H(*M);
    CampaignConfig CC;
    CC.NumRuns = 200;
    CC.Seed = 1905;
    CC.NumThreads = V.NumThreads;
    CC.ProvablyBenign = V.Pruning;
    Results.push_back(runCampaign(H, Layout, CC));
  }

  const CampaignResult &Base = Results[0];
  ASSERT_EQ(Base.Records.size(), 200u);
  EXPECT_EQ(Base.PrunedRuns, 0u);
  for (size_t V = 1; V != Results.size(); ++V) {
    const CampaignResult &R = Results[V];
    ASSERT_EQ(R.Records.size(), Base.Records.size())
        << "variant " << V << " changed the number of records";
    for (size_t I = 0; I != Base.Records.size(); ++I) {
      EXPECT_EQ(R.Records[I].InstructionId, Base.Records[I].InstructionId)
          << "variant " << V << ", record " << I;
      EXPECT_EQ(R.Records[I].BitIndex, Base.Records[I].BitIndex)
          << "variant " << V << ", record " << I;
      EXPECT_EQ(R.Records[I].Result, Base.Records[I].Result)
          << "variant " << V << ", record " << I;
    }
  }
  // The pruned variants must actually have pruned something (the dead
  // chain sits in the hot loop, so the sampler hits it), and pruning must
  // never fire without a benign map.
  EXPECT_EQ(Results[1].PrunedRuns, 0u);
  EXPECT_GT(Results[2].PrunedRuns, 0u);
  EXPECT_GT(Results[2].PrunedSites, 0u);
  EXPECT_EQ(Results[2].PrunedRuns, Results[3].PrunedRuns);
  EXPECT_EQ(Results[2].PrunedSites, Results[3].PrunedSites);
}

TEST(Campaign, FractionsSumToOne) {
  auto M = compile(ToySrc);
  ModuleLayout Layout(*M);
  ToyHarness H(*M);
  CampaignConfig CC;
  CC.NumRuns = 50;
  CampaignResult R = runCampaign(H, Layout, CC);
  double Sum = 0;
  for (Outcome O : {Outcome::Crash, Outcome::Hang, Outcome::Detected,
                    Outcome::Masked, Outcome::SOC})
    Sum += R.fraction(O);
  EXPECT_NEAR(Sum, 1.0, 1e-12);
}
