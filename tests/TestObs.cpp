//===- tests/TestObs.cpp - Telemetry subsystem ---------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Pipeline.h"
#include "fault/Campaign.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

using namespace ipas;
using namespace ipas::obs;
using namespace ipas::testutil;

namespace {

//===----------------------------------------------------------------------===//
// Trace-file helpers
//===----------------------------------------------------------------------===//

/// Reads a JSONL trace back, failing the test on any malformed line.
std::vector<JsonValue> readTrace(const std::string &Path) {
  std::vector<JsonValue> Records;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    auto V = parseJson(Line);
    EXPECT_TRUE(V.has_value()) << Path << ":" << LineNo << ": bad JSON";
    if (!V)
      continue;
    EXPECT_TRUE(V->isObject()) << Path << ":" << LineNo;
    EXPECT_NE(V->get("type"), nullptr) << Path << ":" << LineNo;
    Records.push_back(std::move(*V));
  }
  return Records;
}

std::string recordType(const JsonValue &R) {
  const JsonValue *T = R.get("type");
  return T ? T->asString() : std::string();
}

/// All records of one type, in file order.
std::vector<const JsonValue *> recordsOfType(
    const std::vector<JsonValue> &Records, const std::string &Type) {
  std::vector<const JsonValue *> Out;
  for (const JsonValue &R : Records)
    if (recordType(R) == Type)
      Out.push_back(&R);
  return Out;
}

const JsonValue *findEvent(const std::vector<JsonValue> &Records,
                           const std::string &Name) {
  for (const JsonValue &R : Records)
    if (recordType(R) == "event" && R.get("name") &&
        R.get("name")->asString() == Name)
      return &R;
  return nullptr;
}

const JsonValue *findSpan(const std::vector<JsonValue> &Records,
                          const std::string &Name) {
  for (const JsonValue &R : Records)
    if (recordType(R) == "span" && R.get("name") &&
        R.get("name")->asString() == Name)
      return &R;
  return nullptr;
}

/// Asserts the spans of each thread form a laminar family: any two spans
/// are either disjoint or one contains the other (the property
/// `ipas-report --check` enforces).
void expectSpansNest(const std::vector<JsonValue> &Records) {
  struct Iv {
    uint64_t Start, End;
    std::string Name;
    int64_t Tid;
  };
  std::vector<Iv> Spans;
  for (const JsonValue &R : Records) {
    if (recordType(R) != "span")
      continue;
    Iv S;
    S.Start = R.get("start_us")->asU64();
    S.End = R.get("end_us")->asU64();
    S.Name = R.get("name")->asString();
    S.Tid = R.get("tid")->asI64();
    EXPECT_LE(S.Start, S.End) << S.Name;
    Spans.push_back(std::move(S));
  }
  std::sort(Spans.begin(), Spans.end(), [](const Iv &A, const Iv &B) {
    if (A.Tid != B.Tid)
      return A.Tid < B.Tid;
    if (A.Start != B.Start)
      return A.Start < B.Start;
    return A.End > B.End;
  });
  std::vector<const Iv *> Stack;
  int64_t Tid = INT64_MIN;
  for (const Iv &S : Spans) {
    if (S.Tid != Tid) {
      Stack.clear();
      Tid = S.Tid;
    }
    while (!Stack.empty() && Stack.back()->End <= S.Start)
      Stack.pop_back();
    if (!Stack.empty())
      EXPECT_LE(S.End, Stack.back()->End)
          << S.Name << " partially overlaps " << Stack.back()->Name;
    Stack.push_back(&S);
  }
}

std::string tempTracePath(const char *Name) {
  return ::testing::TempDir() + Name;
}

//===----------------------------------------------------------------------===//
// Toy campaign fixture (mirrors TestCampaign.cpp)
//===----------------------------------------------------------------------===//

class ToyHarness : public ProgramHarness {
public:
  explicit ToyHarness(const Module &M) : M(M) {}

  ExecutionRecord execute(const ModuleLayout &Layout, const FaultPlan *Plan,
                          uint64_t StepBudget) override {
    ExecutionContext Ctx(Layout);
    if (Plan)
      Ctx.setFaultPlan(*Plan);
    Ctx.start(M.getFunction("f"), {RtValue::fromI64(25)});
    RunStatus S = Ctx.run(StepBudget);
    ExecutionRecord R;
    R.Status = S;
    R.Trap = Ctx.trap();
    R.Steps = Ctx.steps();
    R.ValueSteps = Ctx.valueSteps();
    R.FaultInjected = Ctx.faultWasInjected();
    R.FaultedInstructionId = Ctx.faultedInstructionId();
    if (S == RunStatus::Finished) {
      if (!HaveGolden) {
        Golden = Ctx.returnValue().asI64();
        HaveGolden = true;
        R.OutputValid = true;
      } else {
        R.OutputValid = Ctx.returnValue().asI64() == Golden;
      }
    }
    return R;
  }

private:
  const Module &M;
  int64_t Golden = 0;
  bool HaveGolden = false;
};

const char *ToySrc =
    "int f(int n) {\n"
    "  double a[32];\n"
    "  for (int i = 0; i < 32; i = i + 1) a[i] = 1.0 * i;\n"
    "  double s = 0.0;\n"
    "  for (int k = 0; k < n; k = k + 1)\n"
    "    for (int i = 0; i < 32; i = i + 1)\n"
    "      s = s + a[i] * 1.0001 - 0.5;\n"
    "  return (int)(s * 1000.0);\n"
    "}\n";

} // namespace

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(ObsMetrics, ConcurrentUpdatesSumExactly) {
  auto &Reg = MetricsRegistry::global();
  Counter &C = Reg.counter("test.concurrent.counter");
  Histogram &H = Reg.histogram("test.concurrent.hist");
  C.reset();
  H.reset();

  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 50000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      // Half the threads race the registry lookup too: references must
      // be stable and name-identical lookups must alias.
      Counter &Mine = T % 2 ? Reg.counter("test.concurrent.counter") : C;
      for (uint64_t I = 0; I != PerThread; ++I) {
        Mine.inc();
        H.observe(T);
      }
    });
  for (std::thread &Th : Pool)
    Th.join();

  EXPECT_EQ(C.value(), Threads * PerThread);
  EXPECT_EQ(H.count(), Threads * PerThread);
  // Sum of observations: each thread T observed its own id PerThread
  // times, so sum = PerThread * (0 + 1 + ... + 7).
  EXPECT_EQ(H.sum(), PerThread * (Threads * (Threads - 1) / 2));
}

TEST(ObsMetrics, HistogramBinEdges) {
  EXPECT_EQ(Histogram::binOf(0), 0u);
  EXPECT_EQ(Histogram::binOf(1), 1u);
  EXPECT_EQ(Histogram::binOf(2), 2u);
  EXPECT_EQ(Histogram::binOf(3), 2u);
  EXPECT_EQ(Histogram::binOf(4), 3u);
  EXPECT_EQ(Histogram::binOf(UINT64_MAX), 64u);

  // Every bin's edges are consistent with binOf: the inclusive lower
  // edge and the last value below the exclusive upper edge both map back
  // to the bin.
  for (unsigned B = 1; B != 64; ++B) {
    EXPECT_EQ(Histogram::binOf(Histogram::binLowerEdge(B)), B);
    EXPECT_EQ(Histogram::binOf(Histogram::binUpperEdge(B) - 1), B);
    EXPECT_EQ(Histogram::binLowerEdge(B + 1), Histogram::binUpperEdge(B));
  }
  EXPECT_EQ(Histogram::binLowerEdge(0), 0u);
  EXPECT_EQ(Histogram::binUpperEdge(0), 1u);
  EXPECT_EQ(Histogram::binUpperEdge(64), UINT64_MAX);

  Histogram H;
  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 4ull, 1024ull})
    H.observe(V);
  EXPECT_EQ(H.count(), 6u);
  EXPECT_EQ(H.sum(), 1034u);
  EXPECT_DOUBLE_EQ(H.mean(), 1034.0 / 6.0);
  EXPECT_EQ(H.binCount(0), 1u); // 0
  EXPECT_EQ(H.binCount(1), 1u); // 1
  EXPECT_EQ(H.binCount(2), 2u); // 2, 3
  EXPECT_EQ(H.binCount(3), 1u); // 4
  EXPECT_EQ(H.binCount(11), 1u); // 1024
  EXPECT_EQ(H.approxQuantile(0.0), 1u);   // bin 0's upper edge
  EXPECT_EQ(H.approxQuantile(1.0), 2048u); // bin 11's upper edge
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

TEST(ObsJson, SixtyFourBitIntegersRoundTripExactly) {
  JsonWriter W;
  W.beginObject();
  W.key("umax").value(UINT64_MAX);
  W.key("imin").value(INT64_MIN);
  W.key("seedish").value(uint64_t(0x9E3779B97F4A7C15ull));
  W.key("pi").value(3.25);
  W.key("s").value("a\"b\\c\n\t\x01z");
  W.key("yes").value(true);
  W.endObject();

  auto V = parseJson(W.str());
  ASSERT_TRUE(V.has_value());
  ASSERT_TRUE(V->isObject());
  EXPECT_TRUE(V->get("umax")->IsInt);
  EXPECT_EQ(V->get("umax")->asU64(), UINT64_MAX);
  EXPECT_EQ(V->get("imin")->asI64(), INT64_MIN);
  EXPECT_EQ(V->get("seedish")->asU64(), 0x9E3779B97F4A7C15ull);
  EXPECT_DOUBLE_EQ(V->get("pi")->asNumber(), 3.25);
  EXPECT_EQ(V->get("s")->asString(), "a\"b\\c\n\t\x01z");
  EXPECT_TRUE(V->get("yes")->B);
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_FALSE(parseJson("").has_value());
  EXPECT_FALSE(parseJson("{").has_value());
  EXPECT_FALSE(parseJson("{\"a\":1,}").has_value());
  EXPECT_FALSE(parseJson("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(parseJson("\"unterminated").has_value());
  EXPECT_TRUE(parseJson(" {\"a\": [1, 2.5, null]} ").has_value());
}

//===----------------------------------------------------------------------===//
// Trace sink and spans
//===----------------------------------------------------------------------===//

TEST(ObsTrace, JsonlWellFormedAndSpansNest) {
  std::string Path = tempTracePath("obs_trace_basic.jsonl");
  ASSERT_TRUE(TraceSink::open(Path, AttrSet().add("tool", "ipas_tests")));
  {
    PhaseSpan Outer("outer", AttrSet().add("k", uint64_t(1)));
    { PhaseSpan Inner1("inner1"); }
    {
      PhaseSpan Inner2("inner2");
      { PhaseSpan Leaf("leaf"); }
    }
    TraceSink::event("test.event", AttrSet().add("x", 42));
    logMessage(Severity::Debug, "a trace-only message %d", 7);
  }
  TraceSink::close();

  std::vector<JsonValue> Records = readTrace(Path);
  ASSERT_GE(Records.size(), 8u); // header + 4 spans + event + log + metrics
  EXPECT_EQ(recordType(Records.front()), "header");
  EXPECT_EQ(Records.front().get("attrs")->get("tool")->asString(),
            "ipas_tests");
  EXPECT_EQ(recordType(Records.back()), "metrics");

  // All four spans present, with duration arithmetic consistent.
  for (const char *Name : {"outer", "inner1", "inner2", "leaf"}) {
    const JsonValue *S = findSpan(Records, Name);
    ASSERT_NE(S, nullptr) << Name;
    EXPECT_EQ(S->get("dur_us")->asU64(),
              S->get("end_us")->asU64() - S->get("start_us")->asU64());
  }

  // Parent/depth bookkeeping: children record their parent's name and
  // one more level of depth.
  const JsonValue *Outer = findSpan(Records, "outer");
  const JsonValue *Leaf = findSpan(Records, "leaf");
  EXPECT_EQ(Outer->get("depth")->asU64(), 1u);
  EXPECT_EQ(findSpan(Records, "inner1")->get("parent")->asString(), "outer");
  EXPECT_EQ(Leaf->get("parent")->asString(), "inner2");
  EXPECT_EQ(Leaf->get("depth")->asU64(), 3u);

  const JsonValue *Ev = findEvent(Records, "test.event");
  ASSERT_NE(Ev, nullptr);
  EXPECT_EQ(Ev->get("attrs")->get("x")->asI64(), 42);

  // The Debug message is below the stderr threshold but must still be in
  // the trace.
  auto Logs = recordsOfType(Records, "log");
  ASSERT_EQ(Logs.size(), 1u);
  EXPECT_EQ(Logs[0]->get("msg")->asString(), "a trace-only message 7");
  EXPECT_EQ(Logs[0]->get("sev")->asString(), "debug");

  expectSpansNest(Records);
  std::remove(Path.c_str());
}

TEST(ObsTrace, SecondOpenFailsUntilClosed) {
  std::string Path = tempTracePath("obs_trace_reopen.jsonl");
  ASSERT_TRUE(TraceSink::open(Path));
  EXPECT_TRUE(TraceSink::enabled());
  EXPECT_FALSE(TraceSink::open(tempTracePath("obs_trace_other.jsonl")));
  TraceSink::close();
  EXPECT_FALSE(TraceSink::enabled());
  ASSERT_TRUE(TraceSink::open(Path));
  TraceSink::close();
  std::remove(Path.c_str());
}

// The sink is line-buffered, so every complete record reaches the OS as
// it is written: a process that abort()s mid-run (the child below never
// calls close(), and abort() skips the atexit flush) must still leave
// the header and every event written before the abort readable on disk.
TEST(ObsTraceDeathTest, CompletedRecordsSurviveAbort) {
  std::string Path = tempTracePath("obs_trace_abort.jsonl");
  std::remove(Path.c_str());
  EXPECT_DEATH(
      {
        TraceSink::open(Path, AttrSet().add("tool", "abort_test"));
        TraceSink::event("pre.abort", AttrSet().add("k", uint64_t(42)));
        std::abort();
      },
      "");

  std::vector<JsonValue> Records = readTrace(Path);
  ASSERT_GE(Records.size(), 2u);
  EXPECT_EQ(recordType(Records.front()), "header");
  const JsonValue *Ev = findEvent(Records, "pre.abort");
  ASSERT_NE(Ev, nullptr);
  EXPECT_EQ(Ev->get("attrs")->get("k")->asU64(), 42u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Campaign reproducibility from the trace alone (the satellite-3 claim)
//===----------------------------------------------------------------------===//

TEST(ObsTrace, CampaignReproducibleFromTrace) {
  auto M = compile(ToySrc);
  ModuleLayout Layout(*M);

  std::string Path = tempTracePath("obs_trace_campaign.jsonl");
  ASSERT_TRUE(TraceSink::open(Path));
  CampaignConfig CC;
  CC.NumRuns = 80;
  CC.Seed = 0xDEC0DE5EEDull;
  CC.Label = "roundtrip";
  ToyHarness H1(*M);
  CampaignResult First = runCampaign(H1, Layout, CC);
  TraceSink::close();

  // Recover the campaign parameters from the trace file alone.
  std::vector<JsonValue> Records = readTrace(Path);
  const JsonValue *Begin = findEvent(Records, "campaign.begin");
  ASSERT_NE(Begin, nullptr);
  const JsonValue *Attrs = Begin->get("attrs");
  ASSERT_NE(Attrs, nullptr);
  EXPECT_EQ(Attrs->get("label")->asString(), "roundtrip");

  // The seed is rendered as a hex string so all 64 bits survive.
  const std::string &SeedStr = Attrs->get("seed")->asString();
  ASSERT_EQ(SeedStr.substr(0, 2), "0x");
  CampaignConfig Replay;
  Replay.Seed = std::strtoull(SeedStr.c_str(), nullptr, 16);
  Replay.NumRuns = Attrs->get("runs")->asU64();
  EXPECT_FALSE(Attrs->get("prune")->B);
  EXPECT_EQ(Replay.Seed, CC.Seed);
  EXPECT_EQ(Replay.NumRuns, CC.NumRuns);

  // One campaign.run record per injection, and the recorded outcome
  // tallies match the result.
  auto Runs = recordsOfType(Records, "event");
  size_t RunEvents = 0;
  for (const JsonValue *E : Runs)
    if (E->get("name")->asString() == "campaign.run")
      ++RunEvents;
  EXPECT_EQ(RunEvents, CC.NumRuns);
  const JsonValue *DoneEv = findEvent(Records, "campaign.done");
  ASSERT_NE(DoneEv, nullptr);
  for (Outcome O : {Outcome::Crash, Outcome::Hang, Outcome::Detected,
                    Outcome::Masked, Outcome::SOC})
    EXPECT_EQ(DoneEv->get("attrs")->get(outcomeName(O))->asU64(),
              First.count(O))
        << outcomeName(O);

  // Replaying with the recovered config (no sink this time) reproduces
  // the injection stream bit-identically.
  ToyHarness H2(*M);
  CampaignResult Second = runCampaign(H2, Layout, Replay);
  ASSERT_EQ(Second.Records.size(), First.Records.size());
  for (size_t I = 0; I != First.Records.size(); ++I) {
    EXPECT_EQ(Second.Records[I].InstructionId, First.Records[I].InstructionId);
    EXPECT_EQ(Second.Records[I].BitIndex, First.Records[I].BitIndex);
    EXPECT_EQ(Second.Records[I].Result, First.Records[I].Result);
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Pipeline phase spans
//===----------------------------------------------------------------------===//

TEST(ObsTrace, PipelinePhaseSpansCoverRun) {
  std::string Path = tempTracePath("obs_trace_pipeline.jsonl");
  ASSERT_TRUE(TraceSink::open(Path));
  {
    auto W = makeWorkload("IS");
    PipelineConfig Cfg = PipelineConfig::defaults();
    Cfg.TrainSamples = 150;
    Cfg.EvalRuns = 120;
    Cfg.Grid.CSteps = 3;
    Cfg.Grid.GammaSteps = 3;
    Cfg.Grid.Folds = 3;
    Cfg.TopN = 2;
    Cfg.Seed = 0xBEEF;
    Cfg.PropSampleEvery = 32; // Exercise the tracer path's spans too.
    IpasPipeline P(*W, Cfg);
    WorkloadEvaluation WE = P.run();
    EXPECT_GE(WE.Variants.size(), 4u);
  }
  TraceSink::close();

  std::vector<JsonValue> Records = readTrace(Path);
  expectSpansNest(Records);

  const JsonValue *Root = findSpan(Records, "pipeline");
  ASSERT_NE(Root, nullptr);
  uint64_t RootStart = Root->get("start_us")->asU64();
  uint64_t RootEnd = Root->get("end_us")->asU64();

  // The named phases exist, sit inside the root span, and between them
  // account for nearly all of its duration (the ISSUE acceptance bar is
  // 95% of wall time covered by phase spans).
  uint64_t Covered = 0;
  for (const char *Phase :
       {"pipeline.setup", "pipeline.training", "pipeline.evaluation"}) {
    const JsonValue *S = findSpan(Records, Phase);
    ASSERT_NE(S, nullptr) << Phase;
    EXPECT_EQ(S->get("parent")->asString(), "pipeline") << Phase;
    EXPECT_GE(S->get("start_us")->asU64(), RootStart) << Phase;
    EXPECT_LE(S->get("end_us")->asU64(), RootEnd) << Phase;
    Covered += S->get("dur_us")->asU64();
  }
  ASSERT_GT(RootEnd, RootStart);
  EXPECT_GE(static_cast<double>(Covered) /
                static_cast<double>(RootEnd - RootStart),
            0.95);

  // Training's child phases and per-variant spans are present too.
  EXPECT_NE(findSpan(Records, "training.campaign"), nullptr);
  EXPECT_NE(findSpan(Records, "training.grid_search"), nullptr);
  const JsonValue *Variant = findSpan(Records, "pipeline.variant");
  ASSERT_NE(Variant, nullptr);
  EXPECT_EQ(Variant->get("parent")->asString(), "pipeline.evaluation");

  // Begin/done markers for the run as a whole.
  EXPECT_NE(findEvent(Records, "pipeline.begin"), nullptr);
  EXPECT_NE(findEvent(Records, "pipeline.done"), nullptr);

  // Propagation tracing was sampled, so per-injection tracer spans exist
  // and every one nests inside a campaign span (the laminar rule
  // `ipas-report --check` enforces). expectSpansNest() above already
  // verified containment; here we pin the parent linkage.
  size_t PropSpans = 0;
  for (const JsonValue &R : Records) {
    if (recordType(R) != "span" || !R.get("name") ||
        R.get("name")->asString() != "campaign.prop")
      continue;
    ++PropSpans;
    ASSERT_NE(R.get("parent"), nullptr);
    EXPECT_EQ(R.get("parent")->asString(), "campaign");
  }
  EXPECT_GT(PropSpans, 0u);
  std::remove(Path.c_str());
}
