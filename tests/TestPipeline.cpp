//===- tests/TestPipeline.cpp - End-to-end IPAS workflow ----------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ResultsCache.h"
#include "obs/RecordStore.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace ipas;

namespace {

/// Small-but-meaningful configuration shared by the pipeline tests: IS is
/// the cheapest workload, and these sizes keep each test in seconds.
PipelineConfig tinyConfig() {
  PipelineConfig Cfg = PipelineConfig::defaults();
  Cfg.TrainSamples = 150;
  Cfg.EvalRuns = 120;
  Cfg.Grid.CSteps = 3;
  Cfg.Grid.GammaSteps = 3;
  Cfg.Grid.Folds = 3;
  Cfg.TopN = 2;
  Cfg.Seed = 0xBEEF;
  return Cfg;
}

/// The full evaluation is expensive; compute it once for the suite. It
/// also writes per-variant .iprec record stores into the temp dir so
/// RecordDirWritesInspectableStores can audit them without a second run.
const WorkloadEvaluation &isEvaluation() {
  static WorkloadEvaluation WE = [] {
    auto W = makeWorkload("IS");
    PipelineConfig Cfg = tinyConfig();
    Cfg.RecordDir = ::testing::TempDir();
    IpasPipeline P(*W, Cfg);
    return P.run();
  }();
  return WE;
}

} // namespace

TEST(Pipeline, TrainingProducesBothLabelings) {
  auto W = makeWorkload("IS");
  PipelineConfig Cfg = tinyConfig();
  IpasPipeline P(*W, Cfg);
  TrainingArtifacts A = P.collectAndTrain();
  EXPECT_EQ(A.Campaign.Records.size(), Cfg.TrainSamples);
  EXPECT_EQ(A.IpasData.size(), Cfg.TrainSamples);
  EXPECT_EQ(A.BaselineData.size(), Cfg.TrainSamples);
  // SOC-generating samples are the minority class (class imbalance,
  // §4.3.1) yet must be present to train at all.
  size_t Soc = A.IpasData.countLabel(1);
  EXPECT_GT(Soc, 0u);
  EXPECT_LT(Soc, Cfg.TrainSamples / 2);
  EXPECT_GT(A.BaselineData.countLabel(1), 0u);
  ASSERT_FALSE(A.IpasConfigs.empty());
  EXPECT_LE(A.IpasConfigs.size(), static_cast<size_t>(Cfg.TopN));
  EXPECT_GT(A.IpasConfigs.front().FScore, 0.0);
  EXPECT_GT(A.TrainSeconds, 0.0);
  // Features cover every instruction of the module.
  EXPECT_EQ(A.Features.size(),
            compileWorkload(*W)->numInstructions());
}

TEST(Pipeline, SelectInstructionsDiffersByTechnique) {
  auto W = makeWorkload("IS");
  IpasPipeline P(*W, tinyConfig());
  TrainingArtifacts A = P.collectAndTrain();
  auto IpasIds = P.selectInstructions(Technique::Ipas,
                                      A.IpasConfigs.front().Params, A);
  auto BaseIds = P.selectInstructions(Technique::Baseline,
                                      A.BaselineConfigs.front().Params, A);
  EXPECT_GT(IpasIds.size(), 0u);
  EXPECT_GT(BaseIds.size(), 0u);
  // The shoestring-style baseline overprotects relative to IPAS — the
  // paper's central claim (Figure 7).
  EXPECT_GT(BaseIds.size(), IpasIds.size());
}

TEST(Pipeline, FullEvaluationShapesMatchPaper) {
  const WorkloadEvaluation &WE = isEvaluation();
  ASSERT_GE(WE.Variants.size(), 4u);

  const VariantEvaluation *Unprot = WE.variant("unprotected");
  const VariantEvaluation *Full = WE.variant("full");
  ASSERT_TRUE(Unprot && Full);

  // Unprotected: no checks, slowdown 1, some SOC.
  EXPECT_EQ(Unprot->Dup.DuplicatedInstructions, 0u);
  EXPECT_DOUBLE_EQ(Unprot->Slowdown, 1.0);
  double UnprotSoc = Unprot->Campaign.fraction(Outcome::SOC);
  EXPECT_GT(UnprotSoc, 0.0);
  EXPECT_EQ(Unprot->Campaign.count(Outcome::Detected), 0u);

  // Full duplication: detects faults, reduces SOC, costs the most.
  EXPECT_GT(Full->Campaign.count(Outcome::Detected), 0u);
  EXPECT_LT(Full->Campaign.fraction(Outcome::SOC), UnprotSoc);
  EXPECT_GT(Full->Slowdown, 1.2);

  for (const VariantEvaluation &V : WE.Variants) {
    if (V.Tech != Technique::Ipas && V.Tech != Technique::Baseline)
      continue;
    // Every classifier-guided variant must cost less than full
    // duplication and reduce SOC meaningfully.
    EXPECT_LT(V.Slowdown, Full->Slowdown) << V.Label;
    EXPECT_GT(V.SocReductionPct, 20.0) << V.Label;
    EXPECT_GT(V.Campaign.count(Outcome::Detected), 0u) << V.Label;
    EXPECT_LT(V.Dup.DuplicatedInstructions,
              Full->Dup.DuplicatedInstructions)
        << V.Label;
  }
}

// The evaluation's RecordDir must hold one parseable .iprec per variant
// whose outcome totals equal the variant's campaign counts, with
// classifier columns populated for the classifier-guided variants.
TEST(Pipeline, RecordDirWritesInspectableStores) {
  const WorkloadEvaluation &WE = isEvaluation();
  for (const VariantEvaluation &V : WE.Variants) {
    std::string Path =
        ::testing::TempDir() + "IS-" + V.Label + ".iprec";
    obs::RecordStore S;
    std::string Err;
    ASSERT_TRUE(obs::readRecordStore(S, Path, &Err)) << Path << ": " << Err;
    EXPECT_EQ(S.Label, V.Label);
    EXPECT_EQ(S.Rows.size(), V.Campaign.Records.size()) << V.Label;
    ASSERT_EQ(S.OutcomeTotals.size(), static_cast<size_t>(NumOutcomes));
    for (unsigned O = 0; O != NumOutcomes; ++O)
      EXPECT_EQ(S.OutcomeTotals[O], V.Campaign.Counts[O])
          << V.Label << " outcome " << O;
    EXPECT_FALSE(S.SourceText.empty());

    bool AnyPrediction = false, AnyLoc = false;
    for (const obs::InstrRecord &I : S.Instructions) {
      AnyPrediction |= I.Predicted != obs::PredictNone;
      AnyLoc |= I.Line > 0;
    }
    EXPECT_TRUE(AnyLoc) << V.Label;
    bool Classifier =
        V.Tech == Technique::Ipas || V.Tech == Technique::Baseline;
    EXPECT_EQ(AnyPrediction, Classifier) << V.Label;
  }
}

TEST(Pipeline, BestVariantUsesIdealPointCriterion) {
  const WorkloadEvaluation &WE = isEvaluation();
  const VariantEvaluation *Best = WE.bestVariant(Technique::Ipas);
  ASSERT_TRUE(Best);
  double BestDist =
      euclideanDistance(Best->Slowdown, Best->SocReductionPct, 1.0, 100.0);
  for (const VariantEvaluation &V : WE.Variants) {
    if (V.Tech == Technique::Ipas) {
      EXPECT_LE(BestDist, euclideanDistance(V.Slowdown, V.SocReductionPct,
                                            1.0, 100.0) +
                              1e-12);
    }
  }
}

TEST(Pipeline, ScalabilitySlowdownStaysBounded) {
  auto W = makeWorkload("IS");
  IpasPipeline P(*W, tinyConfig());
  auto PM = P.protectAll();
  double S1 = P.scalabilitySlowdown(PM, 1);
  double S4 = P.scalabilitySlowdown(PM, 4);
  EXPECT_GT(S1, 1.0);
  EXPECT_GT(S4, 1.0);
  // Duplication instruments computation only (§6.4): scaling up must not
  // inflate the slowdown.
  EXPECT_LT(S4, S1 * 1.25);
}

TEST(Pipeline, TechniqueNames) {
  EXPECT_STREQ(techniqueName(Technique::Unprotected), "unprotected");
  EXPECT_STREQ(techniqueName(Technique::FullDup), "full-duplication");
  EXPECT_STREQ(techniqueName(Technique::Ipas), "ipas");
  EXPECT_STREQ(techniqueName(Technique::Baseline), "baseline");
}

//===----------------------------------------------------------------------===//
// Results cache
//===----------------------------------------------------------------------===//

TEST(ResultsCache, SerializationRoundTrips) {
  const WorkloadEvaluation &WE = isEvaluation();
  std::string Text = serializeEvaluation(WE);
  auto Back = deserializeEvaluation(Text);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->WorkloadName, WE.WorkloadName);
  EXPECT_EQ(Back->StaticInstructions, WE.StaticInstructions);
  EXPECT_EQ(Back->LinesOfCode, WE.LinesOfCode);
  ASSERT_EQ(Back->Variants.size(), WE.Variants.size());
  for (size_t I = 0; I != WE.Variants.size(); ++I) {
    const VariantEvaluation &A = WE.Variants[I];
    const VariantEvaluation &B = Back->Variants[I];
    EXPECT_EQ(A.Label, B.Label);
    EXPECT_EQ(A.Tech, B.Tech);
    EXPECT_DOUBLE_EQ(A.Slowdown, B.Slowdown);
    EXPECT_DOUBLE_EQ(A.SocReductionPct, B.SocReductionPct);
    EXPECT_EQ(A.Campaign.totalRuns(), B.Campaign.totalRuns());
    for (Outcome O : {Outcome::Crash, Outcome::Hang, Outcome::Detected,
                      Outcome::Masked, Outcome::SOC})
      EXPECT_EQ(A.Campaign.count(O), B.Campaign.count(O));
    EXPECT_EQ(A.Dup.DuplicatedInstructions, B.Dup.DuplicatedInstructions);
  }
  EXPECT_EQ(Back->Training.IpasConfigs.size(),
            WE.Training.IpasConfigs.size());
}

TEST(ResultsCache, RejectsMalformedInput) {
  EXPECT_FALSE(deserializeEvaluation("").has_value());
  EXPECT_FALSE(deserializeEvaluation("garbage").has_value());
  EXPECT_FALSE(
      deserializeEvaluation("ipas-cache-v1\nworkload IS\n").has_value());
  std::string Text = serializeEvaluation(isEvaluation());
  EXPECT_FALSE(
      deserializeEvaluation(Text.substr(0, Text.size() / 2)).has_value());
}

TEST(ResultsCache, ConfigHashDistinguishesConfigs) {
  PipelineConfig A = PipelineConfig::defaults();
  PipelineConfig B = A;
  EXPECT_EQ(pipelineConfigHash(A), pipelineConfigHash(B));
  B.EvalRuns += 1;
  EXPECT_NE(pipelineConfigHash(A), pipelineConfigHash(B));
  B = A;
  B.Seed ^= 1;
  EXPECT_NE(pipelineConfigHash(A), pipelineConfigHash(B));
  B = A;
  B.Grid.GammaSteps += 1;
  EXPECT_NE(pipelineConfigHash(A), pipelineConfigHash(B));
}
