//===- tests/TestSocPropagation.cpp - Static SOC reachability tests -----------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the sink classification, an exhaustive dynamic soundness
/// check of the provably-benign verdicts on the tools/testdata programs,
/// the dataflow-derived feature columns, and campaign injection-site
/// pruning (stat counters plus record-stream equivalence).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Features.h"
#include "analysis/SocPropagation.h"
#include "fault/Campaign.h"
#include "ir/IRBuilder.h"

#include <fstream>
#include <sstream>

using namespace ipas;
using namespace ipas::testutil;

namespace {

std::string readTestdata(const std::string &Name) {
  std::ifstream In(std::string(IPAS_TESTDATA_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << "cannot open testdata file " << Name;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

const Instruction *findByOpcode(const Function *F, Opcode Op,
                                unsigned Skip = 0) {
  for (const BasicBlock *BB : *F)
    for (const Instruction *I : *BB)
      if (I->opcode() == Op) {
        if (Skip == 0)
          return I;
        --Skip;
      }
  return nullptr;
}

} // namespace

TEST(SocPropagation, DeadResultIsBenignLiveResultReachesReturn) {
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {types::I64});
  BasicBlock *BB = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  auto *Dead = cast<Instruction>(B.createMul(F->arg(0), M.getInt64(3)));
  auto *Live = cast<Instruction>(B.createAdd(F->arg(0), M.getInt64(1)));
  B.createRet(Live);
  M.renumber();

  SocPropagation Soc(M);
  EXPECT_TRUE(Soc.isProvablyBenign(Dead));
  EXPECT_EQ(Soc.info(Dead).SinkMask, unsigned(SocSinkNone));
  EXPECT_EQ(Soc.info(Dead).SinkCount, 0u);
  EXPECT_EQ(Soc.info(Dead).MinSinkDistance, SocInstructionInfo::NoSink);

  EXPECT_FALSE(Soc.isProvablyBenign(Live));
  EXPECT_TRUE(Soc.info(Live).reaches(SocSinkReturn));
  EXPECT_FALSE(Soc.info(Live).reaches(SocSinkStore));
  EXPECT_EQ(Soc.info(Live).SinkCount, 1u);
  EXPECT_EQ(Soc.info(Live).MinSinkDistance, 1u);

  EXPECT_EQ(Soc.numBenign(), 1u);
  ASSERT_EQ(Soc.provablyBenign().size(), M.numInstructions());
  EXPECT_TRUE(Soc.provablyBenign()[Dead->id()]);
  EXPECT_FALSE(Soc.provablyBenign()[Live->id()]);
}

TEST(SocPropagation, StoreSinkAndMemoryEdgeToLoad) {
  // v is stored, loaded back, and returned: it reaches the store directly
  // (distance 1) and the return through the memory edge (distance 2).
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {types::I64});
  BasicBlock *BB = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *P = B.createAlloca(1);
  auto *V = cast<Instruction>(B.createMul(F->arg(0), M.getInt64(2)));
  B.createStore(V, P);
  Value *W = B.createLoad(types::I64, P);
  B.createRet(W);
  M.renumber();

  SocPropagation Soc(M);
  const SocInstructionInfo &VI = Soc.info(V);
  EXPECT_TRUE(VI.reaches(SocSinkStore));
  EXPECT_TRUE(VI.reaches(SocSinkReturn));
  EXPECT_EQ(VI.MinSinkDistance, 1u);
  EXPECT_EQ(VI.SinkCount, 2u); // the store and the ret

  // The pointer is trap-capable at both its memory uses.
  const auto *Ptr = cast<Instruction>(P);
  EXPECT_TRUE(Soc.info(Ptr).reaches(SocSinkTrapCapable));
  EXPECT_FALSE(Soc.isProvablyBenign(Ptr));
}

TEST(SocPropagation, ControlFlowTrapAndCheckSinks) {
  // entry: c = icmp lt a, b; condbr c -> t | e
  // t:     d = a + 7; q = a / d; soc.check(q, q); ret q
  // e:     ret a  (arguments are not instructions; nothing to report)
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {types::I64, types::I64});
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *T = F->addBlock("t");
  BasicBlock *E = F->addBlock("e");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  auto *C = cast<Instruction>(
      B.createICmp(CmpPredicate::LT, F->arg(0), F->arg(1)));
  B.createCondBr(C, T, E);
  B.setInsertPoint(T);
  auto *D = cast<Instruction>(B.createAdd(F->arg(0), M.getInt64(7)));
  auto *Q = cast<Instruction>(B.createSDiv(F->arg(0), D));
  T->append(std::make_unique<CheckInst>(Q, Q));
  B.createRet(Q);
  B.setInsertPoint(E);
  B.createRet(F->arg(0));
  M.renumber();

  SocPropagation Soc(M);
  EXPECT_TRUE(Soc.info(C).reaches(SocSinkControlFlow));
  EXPECT_EQ(Soc.info(C).MinSinkDistance, 1u);
  // A corrupted divisor can trap; the quotient also flows onward.
  EXPECT_TRUE(Soc.info(D).reaches(SocSinkTrapCapable));
  EXPECT_TRUE(Soc.info(D).reaches(SocSinkReturn));
  EXPECT_TRUE(Soc.info(Q).reaches(SocSinkCheck));
  EXPECT_TRUE(Soc.info(Q).reaches(SocSinkReturn));
  // Nothing here is benign: every result feeds a sink.
  EXPECT_EQ(Soc.numBenign(), 0u);
}

TEST(SocPropagation, CallArgumentSink) {
  auto M = compile("double g(double x) { return x * 2.0; }\n"
                   "double f(double a) { return g(a + 1.0); }\n");
  ASSERT_NE(M, nullptr);
  const Instruction *Arg = findByOpcode(M->getFunction("f"), Opcode::FAdd);
  ASSERT_NE(Arg, nullptr);
  SocPropagation Soc(*M);
  EXPECT_TRUE(Soc.info(Arg).reaches(SocSinkCallArgument));
  // The conservative summary also propagates corruption into the call's
  // result and from there to the return.
  EXPECT_TRUE(Soc.info(Arg).reaches(SocSinkReturn));
}

TEST(SocPropagation, FindsDeadChainInResidualWorkload) {
  // residual.mc carries a dead diagnostic accumulator specifically so the
  // default (no DCE) pipeline has prunable injection sites.
  auto M = compile(readTestdata("residual.mc"));
  ASSERT_NE(M, nullptr);
  SocPropagation Soc(*M);
  EXPECT_GT(Soc.numBenign(), 0u);
}

//===----------------------------------------------------------------------===//
// Dynamic soundness: provably-benign verdicts vs. actual injections
//===----------------------------------------------------------------------===//

namespace {

/// Runs \p FnName once cleanly with a value-step trace, then injects bit
/// flips at every dynamic step whose static instruction the analysis calls
/// benign, asserting the run stays bit-identical to the clean one.
void checkBenignVerdicts(const Module &M, const std::string &FnName,
                         const std::vector<RtValue> &Args,
                         size_t MaxInjections) {
  SocPropagation Soc(M);
  const std::vector<bool> &Benign = Soc.provablyBenign();

  ModuleLayout Layout(M);
  std::vector<unsigned> Trace;
  uint64_t CleanBits = 0, CleanSteps = 0;
  {
    ExecutionContext Ctx(Layout);
    Ctx.setValueStepTrace(&Trace);
    Ctx.start(M.getFunction(FnName), Args);
    ASSERT_EQ(Ctx.run(100000000ull), RunStatus::Finished);
    CleanBits = Ctx.returnValue().Bits;
    CleanSteps = Ctx.steps();
  }

  size_t Injected = 0;
  for (uint64_t Step = 0; Step != Trace.size(); ++Step) {
    if (!Benign[Trace[Step]])
      continue;
    for (unsigned Bit : {0u, 31u, 63u}) {
      FaultPlan Plan;
      Plan.TargetValueStep = Step;
      Plan.BitDraw = Bit;
      RunResult R = runFunction(M, FnName, Args, 100000000ull, &Plan);
      ASSERT_EQ(R.Status, RunStatus::Finished)
          << "benign injection at step " << Step << " bit " << Bit
          << " did not finish";
      EXPECT_EQ(R.Value.Bits, CleanBits)
          << "benign injection at step " << Step << " bit " << Bit
          << " changed the output";
      EXPECT_EQ(R.Steps, CleanSteps)
          << "benign injection at step " << Step << " bit " << Bit
          << " changed the step count";
    }
    if (++Injected == MaxInjections)
      break;
  }
  // The workloads below are chosen to have prunable sites; a soundness
  // sweep that never injects would be vacuous.
  EXPECT_GT(Injected, 0u);
}

} // namespace

TEST(SocPropagation, BenignVerdictsAreSoundOnResidual) {
  auto M = compile(readTestdata("residual.mc"));
  ASSERT_NE(M, nullptr);
  checkBenignVerdicts(*M, "f", {RtValue::fromI64(12)}, 150);
}

TEST(SocPropagation, BenignVerdictsAreSoundOnDotprod) {
  // dotprod has no intentionally dead code; whatever (possibly zero)
  // benign steps survive, none may perturb the run. The sweep guard is
  // relaxed accordingly.
  auto M = compile(readTestdata("dotprod.mc"));
  ASSERT_NE(M, nullptr);
  SocPropagation Soc(*M);
  if (Soc.numBenign() == 0)
    GTEST_SKIP() << "dotprod has no provably-benign instructions";
  checkBenignVerdicts(*M, "f", {RtValue::fromI64(16)}, 100);
}

//===----------------------------------------------------------------------===//
// Dataflow-derived feature columns
//===----------------------------------------------------------------------===//

TEST(Features, DefaultLayoutStaysThirtyOneColumns) {
  auto M = compile("int f(int a) { return a * 2 + 1; }");
  ASSERT_NE(M, nullptr);
  FeatureExtractor FE;
  EXPECT_EQ(FE.numFeatures(), NumInstructionFeatures);
  std::vector<std::vector<double>> Rows = FE.extractModuleRows(*M);
  ASSERT_EQ(Rows.size(), M->numInstructions());
  for (const std::vector<double> &Row : Rows)
    EXPECT_EQ(Row.size(), NumInstructionFeatures);
}

TEST(Features, DataflowColumnsAppendAndMatchAnalysis) {
  Module M("m");
  Function *F = M.createFunction("f", types::I64, {types::I64});
  BasicBlock *BB = F->addBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  auto *Dead = cast<Instruction>(B.createMul(F->arg(0), M.getInt64(3)));
  auto *Live = cast<Instruction>(B.createAdd(F->arg(0), M.getInt64(1)));
  B.createRet(Live);
  M.renumber();

  FeatureOptions Opts;
  Opts.IncludeDataflowFeatures = true;
  FeatureExtractor FE(Opts);
  EXPECT_EQ(FE.numFeatures(), NumInstructionFeatures + NumDataflowFeatures);
  std::vector<std::vector<double>> Rows = FE.extractModuleRows(M);
  ASSERT_EQ(Rows.size(), M.numInstructions());

  const std::vector<double> &DeadRow = Rows[Dead->id()];
  const std::vector<double> &LiveRow = Rows[Live->id()];
  ASSERT_EQ(DeadRow.size(), FE.numFeatures());
  unsigned Base = NumInstructionFeatures;
  // Column order: store, call, return, control, trap, count, distance,
  // live-at-entry (see extendedFeatureName).
  EXPECT_EQ(DeadRow[Base + 2], 0.0); // dead result reaches no return
  EXPECT_EQ(LiveRow[Base + 2], 1.0);
  EXPECT_EQ(DeadRow[Base + 5], 0.0); // zero sinks
  EXPECT_EQ(LiveRow[Base + 5], 1.0);
  // No-sink distance uses the function size as its finite sentinel.
  EXPECT_EQ(DeadRow[Base + 6], static_cast<double>(F->numInstructions()));
  EXPECT_EQ(LiveRow[Base + 6], 1.0);

  // The 31 base columns are unchanged by the extension.
  std::vector<FeatureVector> Plain = FeatureExtractor().extractModule(M);
  for (unsigned K = 0; K != NumInstructionFeatures; ++K)
    EXPECT_EQ(LiveRow[K], Plain[Live->id()][K]);
}

TEST(Features, ExtendedNamesCoverAllColumns) {
  EXPECT_STREQ(extendedFeatureName(0), featureName(0));
  EXPECT_STREQ(extendedFeatureName(NumInstructionFeatures),
               "soc_reaches_store");
  EXPECT_STREQ(
      extendedFeatureName(NumInstructionFeatures + NumDataflowFeatures - 1),
      "live_values_at_entry");
  for (unsigned K = 0;
       K != NumInstructionFeatures + NumDataflowFeatures; ++K)
    EXPECT_NE(extendedFeatureName(K), nullptr);
}

//===----------------------------------------------------------------------===//
// Campaign injection-site pruning
//===----------------------------------------------------------------------===//

namespace {

/// TestCampaign's ToyHarness plus the traceValueSteps capability the
/// pruning path requires.
class TracedHarness : public ProgramHarness {
public:
  TracedHarness(const Module &M, int64_t Input) : M(M), Input(Input) {}

  ExecutionRecord execute(const ModuleLayout &Layout, const FaultPlan *Plan,
                          uint64_t StepBudget) override {
    ExecutionContext Ctx(Layout);
    if (Plan)
      Ctx.setFaultPlan(*Plan);
    Ctx.start(M.getFunction("f"), {RtValue::fromI64(Input)});
    RunStatus S = Ctx.run(StepBudget);
    ExecutionRecord R;
    R.Status = S;
    R.Trap = Ctx.trap();
    R.Steps = Ctx.steps();
    R.ValueSteps = Ctx.valueSteps();
    R.FaultInjected = Ctx.faultWasInjected();
    R.FaultedInstructionId = Ctx.faultedInstructionId();
    if (S == RunStatus::Finished) {
      if (!HaveGolden) {
        Golden = Ctx.returnValue().asI64();
        HaveGolden = true;
        R.OutputValid = true;
      } else {
        R.OutputValid = Ctx.returnValue().asI64() == Golden;
      }
    }
    return R;
  }

  std::vector<unsigned> traceValueSteps(const ModuleLayout &Layout) override {
    ExecutionContext Ctx(Layout);
    std::vector<unsigned> Trace;
    Ctx.setValueStepTrace(&Trace);
    Ctx.start(M.getFunction("f"), {RtValue::fromI64(Input)});
    if (Ctx.run(UINT64_MAX) != RunStatus::Finished)
      return {};
    return Trace;
  }

private:
  const Module &M;
  int64_t Input;
  int64_t Golden = 0;
  bool HaveGolden = false;
};

/// A loop with a dead diagnostic accumulator: the `dead` chain reaches no
/// sink, so a sizable fraction of dynamic value steps is prunable.
const char *DeadChainSrc =
    "int f(int n) {\n"
    "  double s = 0.0;\n"
    "  double dead = 0.0;\n"
    "  for (int i = 0; i < n; i = i + 1) {\n"
    "    s = s + 1.5 * i;\n"
    "    dead = dead + s * 2.0;\n"
    "  }\n"
    "  return (int)(s * 10.0);\n"
    "}\n";

} // namespace

TEST(CampaignPruning, PrunesSitesAndKeepsRecordsBitIdentical) {
  auto M = compile(DeadChainSrc);
  ASSERT_NE(M, nullptr);
  SocPropagation Soc(*M);
  ASSERT_GT(Soc.numBenign(), 0u);

  ModuleLayout Layout(*M);
  CampaignConfig Cfg;
  Cfg.NumRuns = 200;
  Cfg.Seed = 2016;

  TracedHarness Plain(*M, 40);
  CampaignResult Unpruned = runCampaign(Plain, Layout, Cfg);
  EXPECT_EQ(Unpruned.PrunedRuns, 0u);
  EXPECT_EQ(Unpruned.PrunedSites, 0u);

  Cfg.ProvablyBenign = &Soc.provablyBenign();
  TracedHarness Traced(*M, 40);
  CampaignResult Pruned = runCampaign(Traced, Layout, Cfg);

  // The analysis found sites, the campaign hit some, and skipped runs are
  // reported.
  EXPECT_GT(Pruned.PrunedRuns, 0u);
  EXPECT_GT(Pruned.PrunedSites, 0u);
  EXPECT_LE(Pruned.PrunedSites, Soc.numBenign());

  // Pruning is an optimization, not a semantic change: every record —
  // pruned or executed — must be bit-identical to the unpruned campaign's.
  ASSERT_EQ(Pruned.Records.size(), Unpruned.Records.size());
  for (size_t I = 0; I != Pruned.Records.size(); ++I) {
    EXPECT_EQ(Pruned.Records[I].InstructionId,
              Unpruned.Records[I].InstructionId);
    EXPECT_EQ(Pruned.Records[I].BitIndex, Unpruned.Records[I].BitIndex);
    EXPECT_EQ(Pruned.Records[I].TargetValueStep,
              Unpruned.Records[I].TargetValueStep);
    EXPECT_EQ(Pruned.Records[I].Result, Unpruned.Records[I].Result);
  }
  for (size_t K = 0; K != NumOutcomes; ++K)
    EXPECT_EQ(Pruned.Counts[K], Unpruned.Counts[K]);
}

TEST(CampaignPruning, HarnessWithoutTraceSupportDisablesPruning) {
  // The base-class traceValueSteps returns an empty trace; the campaign
  // must fall back to executing everything.
  class UntracedHarness : public TracedHarness {
  public:
    using TracedHarness::TracedHarness;
    std::vector<unsigned> traceValueSteps(const ModuleLayout &) override {
      return {};
    }
  };

  auto M = compile(DeadChainSrc);
  ASSERT_NE(M, nullptr);
  SocPropagation Soc(*M);
  ModuleLayout Layout(*M);
  CampaignConfig Cfg;
  Cfg.NumRuns = 40;
  Cfg.ProvablyBenign = &Soc.provablyBenign();
  UntracedHarness H(*M, 20);
  CampaignResult R = runCampaign(H, Layout, Cfg);
  EXPECT_EQ(R.PrunedRuns, 0u);
  EXPECT_EQ(R.Records.size(), 40u);
}
