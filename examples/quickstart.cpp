//===- examples/quickstart.cpp - IPAS in five minutes --------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The smallest end-to-end tour of the library:
///   1. compile a MiniC kernel to IR,
///   2. run it in the interpreter,
///   3. inject a fault and watch it corrupt the output silently,
///   4. protect the kernel by duplication and watch the same fault get
///      detected.
///
/// Build and run:   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "transform/Duplication.h"
#include "transform/Mem2Reg.h"
#include "transform/SimplifyCFG.h"

#include <cstdio>

using namespace ipas;

static const char *KernelSrc = R"MINIC(
// A toy stencil: smooth an array and return its checksum.
double kernel(int n) {
  double a[64];
  for (int i = 0; i < 64; i = i + 1) {
    a[i] = sin(0.1 * i);
  }
  for (int sweep = 0; sweep < n; sweep = sweep + 1) {
    for (int i = 1; i < 63; i = i + 1) {
      a[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
    }
  }
  double sum = 0.0;
  for (int i = 0; i < 64; i = i + 1) {
    sum = sum + a[i];
  }
  return sum;
}
)MINIC";

static std::unique_ptr<Module> compileKernel(bool Protect) {
  Diagnostics Diags;
  std::unique_ptr<Module> M = compileMiniC(KernelSrc, "quickstart", Diags);
  if (!M) {
    std::fprintf(stderr, "compile error:\n%s\n", Diags.summary().c_str());
    std::exit(1);
  }
  removeUnreachableBlocks(*M);
  promoteAllocasToRegisters(*M);
  M->renumber();
  if (Protect) {
    DuplicationStats Stats = duplicateAllInstructions(*M);
    M->renumber();
    std::printf("protected the kernel: %zu of %zu instructions "
                "duplicated, %zu checks inserted\n",
                Stats.DuplicatedInstructions, Stats.TotalInstructions,
                Stats.ChecksInserted);
  }
  return M;
}

static void runOnce(const Module &M, const char *Label,
                    const FaultPlan *Plan) {
  ModuleLayout Layout(M);
  ExecutionContext Ctx(Layout);
  if (Plan)
    Ctx.setFaultPlan(*Plan);
  Ctx.start(M.getFunction("kernel"), {RtValue::fromI64(10)});
  RunStatus S = Ctx.run(UINT64_MAX);
  switch (S) {
  case RunStatus::Finished:
    std::printf("%-22s -> finished, checksum = %.12f (%llu instructions)\n",
                Label, Ctx.returnValue().asF64(),
                static_cast<unsigned long long>(Ctx.steps()));
    break;
  case RunStatus::Detected:
    std::printf("%-22s -> FAULT DETECTED by a soc.check after %llu "
                "instructions\n",
                Label, static_cast<unsigned long long>(Ctx.steps()));
    break;
  case RunStatus::Trapped:
    std::printf("%-22s -> trapped (%s)\n", Label,
                trapKindName(Ctx.trap()));
    break;
  default:
    std::printf("%-22s -> %s\n", Label, runStatusName(S));
    break;
  }
}

int main() {
  std::printf("--- 1. compile the kernel ---\n");
  std::unique_ptr<Module> Plain = compileKernel(/*Protect=*/false);
  std::printf("compiled %zu IR instructions; entry function:\n\n%s\n",
              Plain->numInstructions(),
              printFunction(*Plain->getFunction("kernel"))
                  .substr(0, 400)
                  .c_str());

  std::printf("--- 2. clean run ---\n");
  runOnce(*Plain, "clean", nullptr);

  std::printf("\n--- 3. inject a fault into the unprotected kernel ---\n");
  // Flip a high mantissa bit of the 5000th value produced at runtime.
  FaultPlan Plan;
  Plan.TargetValueStep = 5000;
  Plan.BitDraw = 51;
  runOnce(*Plain, "unprotected + fault", &Plan);
  std::printf("(the checksum silently changed: that is silent output "
              "corruption)\n");

  std::printf("\n--- 4. protect with instruction duplication ---\n");
  std::unique_ptr<Module> Protected = compileKernel(/*Protect=*/true);
  runOnce(*Protected, "protected clean", nullptr);
  // The protected binary executes more instructions, so aim at the same
  // logical region of the run.
  runOnce(*Protected, "protected + fault", &Plan);
  return 0;
}
