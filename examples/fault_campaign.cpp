//===- examples/fault_campaign.cpp - Statistical fault injection ---------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Runs a FlipIt-style statistical fault-injection campaign against one
/// workload and prints the outcome histogram with confidence intervals,
/// plus the instructions that most often produced SOC:
///
///   ./build/examples/fault_campaign [--workload FFT] [--runs 500]
///
//===----------------------------------------------------------------------===//

#include "analysis/SocPropagation.h"
#include "fault/Campaign.h"
#include "fault/RecordBuild.h"
#include "ir/IRPrinter.h"
#include "obs/CliOptions.h"
#include "support/ArgParser.h"
#include "support/Statistics.h"
#include "workloads/WorkloadHarness.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace ipas;

int main(int Argc, char **Argv) {
  std::string WorkloadName = "FFT";
  int64_t Runs = 500, Seed = 0xF417;
  bool Prune = false;
  ArgParser P("Fault-injection campaign on one workload");
  P.addString("workload", &WorkloadName, "CoMD/HPCCG/AMG/FFT/IS");
  P.addInt("runs", &Runs, "number of injections");
  P.addInt("seed", &Seed, "campaign seed");
  P.addBool("prune", &Prune,
            "classify injections at provably-benign sites (static SOC "
            "propagation) without executing them");
  std::string RecordOut;
  P.addString("record-out", &RecordOut,
              "write the campaign's .iprec record store (ipas-inspect) "
              "here");
  obs::CliOptions Obs;
  obs::addCliFlags(P, Obs);
  if (!P.parse(Argc, Argv))
    return 2;

  std::unique_ptr<Workload> W = makeWorkload(WorkloadName);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'\n", WorkloadName.c_str());
    return 2;
  }
  if (!obs::applyCliFlags(Obs, "fault_campaign",
                          obs::AttrSet()
                              .add("workload", WorkloadName)
                              .addHex("seed", static_cast<uint64_t>(Seed))
                              .add("runs", static_cast<uint64_t>(Runs))
                              .add("prune", Prune)))
    return 2;
  std::unique_ptr<Module> M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  WorkloadHarness Harness(*W, 1);

  CampaignConfig CC;
  CC.NumRuns = static_cast<size_t>(Runs);
  CC.Seed = static_cast<uint64_t>(Seed);
  CC.Label = WorkloadName;
  SocPropagation Soc(*M);
  if (Prune)
    CC.ProvablyBenign = &Soc.provablyBenign();
  std::printf("injecting %lld single-bit faults into %s (%zu static "
              "instructions)...\n\n",
              static_cast<long long>(Runs), W->name().c_str(),
              M->numInstructions());
  CampaignResult R = runCampaign(Harness, Layout, CC);

  std::printf("clean run: %llu dynamic instructions (%llu value-"
              "producing)\n\n",
              static_cast<unsigned long long>(R.CleanSteps),
              static_cast<unsigned long long>(R.CleanValueSteps));
  std::printf("%-22s %8s %10s %16s\n", "outcome", "count", "fraction",
              "95% margin");
  for (Outcome O : {Outcome::Crash, Outcome::Hang, Outcome::Detected,
                    Outcome::Masked, Outcome::SOC}) {
    double F = R.fraction(O);
    std::printf("%-22s %8zu %9.2f%% %15.2f%%\n", outcomeName(O),
                R.count(O), 100 * F,
                100 * proportionMarginOfError(F, R.totalRuns()));
  }

  if (Prune)
    std::printf("\npruning: %zu of %lld runs classified statically at %zu "
                "provably-benign sites (%zu in the module)\n",
                R.PrunedRuns, static_cast<long long>(Runs), R.PrunedSites,
                Soc.numBenign());

  if (!RecordOut.empty()) {
    std::vector<unsigned> Trace = Harness.traceValueSteps(Layout);
    RecordBuildInputs In;
    In.M = M.get();
    In.Result = &R;
    In.EntryFunction = Workload::EntryName;
    In.Label = WorkloadName;
    In.Seed = CC.Seed;
    In.SourceText = W->source();
    In.ValueStepTrace = &Trace;
    std::string Err;
    if (!writeCampaignRecord(buildRecordStore(In), RecordOut, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("\nrecord store: %s (inspect with ipas-inspect)\n",
                RecordOut.c_str());
  }

  // Which static instructions were the worst SOC offenders?
  std::map<unsigned, int> SocHits;
  for (const InjectionRecord &Rec : R.Records)
    if (Rec.Result == Outcome::SOC)
      ++SocHits[Rec.InstructionId];
  std::vector<std::pair<int, unsigned>> Ranked;
  for (const auto &[Id, N] : SocHits)
    Ranked.push_back({N, Id});
  std::sort(Ranked.rbegin(), Ranked.rend());

  std::printf("\ntop SOC-generating instructions:\n");
  std::vector<Instruction *> All = M->allInstructions();
  for (size_t K = 0; K != std::min<size_t>(8, Ranked.size()); ++K) {
    Instruction *I = All.at(Ranked[K].second);
    std::printf("  %3dx  [%s @%s]  %s\n", Ranked[K].first,
                I->parent()->parent()->name().c_str(),
                I->parent()->name().c_str(),
                printInstruction(*I).c_str());
  }
  return 0;
}
