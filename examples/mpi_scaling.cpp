//===- examples/mpi_scaling.cpp - Protected workloads under SimMPI -------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Demonstrates the simulated MPI substrate: runs a workload across rank
/// counts, unprotected and fully duplicated, and reports the per-rank
/// critical path — the measurement behind the paper's Figure 8 claim that
/// instruction duplication does not hurt scalability:
///
///   ./build/examples/mpi_scaling [--workload CoMD]
///
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"
#include "transform/Duplication.h"
#include "workloads/WorkloadHarness.h"

#include <cstdio>

using namespace ipas;

int main(int Argc, char **Argv) {
  std::string WorkloadName = "CoMD";
  ArgParser P("Strong scaling of a protected workload under SimMPI");
  P.addString("workload", &WorkloadName, "CoMD/HPCCG/AMG/FFT/IS");
  if (!P.parse(Argc, Argv))
    return 2;

  std::unique_ptr<Workload> W = makeWorkload(WorkloadName);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'\n", WorkloadName.c_str());
    return 2;
  }

  std::unique_ptr<Module> Plain = compileWorkload(*W);
  ModuleLayout PlainLayout(*Plain);
  std::unique_ptr<Module> Prot = compileWorkload(*W);
  DuplicationStats Stats = duplicateAllInstructions(*Prot);
  Prot->renumber();
  ModuleLayout ProtLayout(*Prot);

  std::printf("%s, input 1 (%s); full duplication adds %zu shadows and "
              "%zu checks\n\n",
              W->name().c_str(), W->inputDescription(1).c_str(),
              Stats.DuplicatedInstructions, Stats.ChecksInserted);
  std::printf("%6s %20s %20s %10s\n", "ranks", "critical path (plain)",
              "critical path (dup)", "slowdown");

  for (int Ranks : {1, 2, 4, 8}) {
    uint64_t PlainCycles = 0, ProtCycles = 0;
    for (int Pass = 0; Pass != 2; ++Pass) {
      const ModuleLayout &Layout = Pass ? ProtLayout : PlainLayout;
      WorkloadHarness Harness(*W, 1, Ranks);
      ExecutionRecord R = Harness.execute(Layout, nullptr, UINT64_MAX);
      if (R.Status != RunStatus::Finished || !R.OutputValid) {
        std::fprintf(stderr, "run failed: %s\n", runStatusName(R.Status));
        return 1;
      }
      (Pass ? ProtCycles : PlainCycles) = R.CriticalPathCycles;
    }
    std::printf("%6d %20llu %20llu %9.3fx\n", Ranks,
                static_cast<unsigned long long>(PlainCycles),
                static_cast<unsigned long long>(ProtCycles),
                static_cast<double>(ProtCycles) /
                    static_cast<double>(PlainCycles));
  }
  std::printf("\nThe slowdown column stays flat: duplicated computation "
              "scales with the ranks\nwhile communication (not "
              "duplicated) is unchanged.\n");
  return 0;
}
