//===- examples/protect_workload.cpp - The full IPAS workflow ------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Runs the complete four-step IPAS workflow (paper Figure 1) on one of
/// the five workloads and reports what the classifier decided to protect:
///
///   ./build/examples/protect_workload [--workload HPCCG]
///       [--train-samples 400] [--runs 200] [--grid 6]
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "support/ArgParser.h"

#include <cstdio>
#include <map>

using namespace ipas;

int main(int Argc, char **Argv) {
  std::string WorkloadName = "HPCCG";
  int64_t TrainSamples = 400, Runs = 200, Grid = 6;
  ArgParser P("Full IPAS workflow on one workload");
  P.addString("workload", &WorkloadName, "CoMD/HPCCG/AMG/FFT/IS");
  P.addInt("train-samples", &TrainSamples, "training injections");
  P.addInt("runs", &Runs, "evaluation injections");
  P.addInt("grid", &Grid, "grid points per axis");
  if (!P.parse(Argc, Argv))
    return 2;

  std::unique_ptr<Workload> W = makeWorkload(WorkloadName);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'\n", WorkloadName.c_str());
    return 2;
  }

  PipelineConfig Cfg = PipelineConfig::defaults();
  Cfg.TrainSamples = static_cast<size_t>(TrainSamples);
  Cfg.EvalRuns = static_cast<size_t>(Runs);
  Cfg.Grid.CSteps = Cfg.Grid.GammaSteps = static_cast<unsigned>(Grid);
  IpasPipeline Pipeline(*W, Cfg);

  std::printf("workload: %s — %s\n\n", W->name().c_str(),
              W->description().c_str());

  // Steps 1-3: verification routine + data collection + training.
  std::printf("step 2: injecting %zu faults to label instructions...\n",
              Cfg.TrainSamples);
  TrainingArtifacts A = Pipeline.collectAndTrain();
  std::printf("  outcome profile: crash %.1f%%, hang %.1f%%, masked "
              "%.1f%%, SOC %.1f%%\n",
              100 * A.Campaign.fraction(Outcome::Crash),
              100 * A.Campaign.fraction(Outcome::Hang),
              100 * A.Campaign.fraction(Outcome::Masked),
              100 * A.Campaign.fraction(Outcome::SOC));
  std::printf("step 3: SVM grid search done in %.1fs; top configuration "
              "C=%.3g gamma=%.3g (F-score %.3f)\n",
              A.TrainSeconds, A.IpasConfigs.front().Params.C,
              A.IpasConfigs.front().Params.Gamma,
              A.IpasConfigs.front().FScore);

  // Step 4: protection.
  std::set<unsigned> Ids = Pipeline.selectInstructions(
      Technique::Ipas, A.IpasConfigs.front().Params, A);
  IpasPipeline::ProtectedModule PM = Pipeline.protect(Ids);
  std::printf("step 4: classifier selected %zu instructions; duplicated "
              "%zu (%.1f%% of the code), %zu checks\n\n",
              Ids.size(), PM.Stats.DuplicatedInstructions,
              100.0 * PM.Stats.duplicatedFraction(),
              PM.Stats.ChecksInserted);

  // What kinds of instructions did the model decide to protect?
  std::map<std::string, int> ByOpcode;
  auto Unprot = Pipeline.protectNone();
  for (Instruction *I : Unprot.M->allInstructions())
    if (Ids.count(I->id()))
      ++ByOpcode[opcodeName(I->opcode())];
  std::printf("classifier-selected instructions by opcode (the pass "
              "skips non-duplicable kinds\nlike loads, calls, phis, and "
              "branches):\n");
  for (const auto &[Name, Count] : ByOpcode)
    std::printf("  %-12s %d\n", Name.c_str(), Count);

  // Evaluate the protected binary.
  std::printf("\nevaluating with %zu fresh injections each...\n",
              Cfg.EvalRuns);
  CampaignResult Before = Pipeline.evaluate(Unprot, 0xAB);
  CampaignResult After = Pipeline.evaluate(PM, 0xCD);
  double SocBefore = Before.fraction(Outcome::SOC);
  double SocAfter = After.fraction(Outcome::SOC);
  double Slowdown = static_cast<double>(After.CleanSteps) /
                    static_cast<double>(Before.CleanSteps);
  std::printf("  SOC: %.2f%% -> %.2f%%  (%.1f%% reduction)\n",
              100 * SocBefore, 100 * SocAfter,
              SocBefore > 0 ? 100 * (SocBefore - SocAfter) / SocBefore
                            : 0.0);
  std::printf("  detected by duplication: %.1f%%\n",
              100 * After.fraction(Outcome::Detected));
  std::printf("  slowdown: %.2fx\n", Slowdown);
  return 0;
}
