//===- workloads/IS.cpp - NPB-style integer sort ------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// IS performs a large integer sort in the NPB style: uniformly random
/// keys are range-bucketed across ranks (alltoall), each rank counting-
/// sorts its bucket, and the sorted buckets are re-assembled everywhere
/// (allgather). Verification follows the benchmark's own routine —
/// iterate over the sorted array and check key[i-1] <= key[i] — plus a
/// golden multiset comparison standing in for NPB's partial verification
/// of key ranks (DESIGN.md documents this).
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadImpl.h"

using namespace ipas;

static const char *IsSource = R"MINIC(
// IS: bucket + counting sort of n uniformly random keys in [0, maxkey).
// run(n, maxkey, out): out[0..n) = sorted keys (as doubles).

int run(int n, int maxkey, double* out) {
  int rank = mpi_rank();
  int size = mpi_size();
  int local_n = n / size;
  int width = maxkey / size;    // key range handled per rank

  int* keys = (int*)malloc(local_n);
  rand_seed(7777 + rank * 131);
  for (int i = 0; i < local_n; i = i + 1) {
    keys[i] = rand_i64(maxkey);
  }

  // Partition local keys into per-destination segments:
  // segment k = [count, keys...], capacity local_n + 1.
  int cap = local_n + 1;
  int* send = (int*)malloc(size * cap);
  int* recvb = (int*)malloc(size * cap);
  for (int k = 0; k < size; k = k + 1) {
    send[k * cap] = 0;
  }
  for (int i = 0; i < local_n; i = i + 1) {
    int d = keys[i] / width;
    if (d >= size) { d = size - 1; }
    int cnt = send[d * cap];
    send[d * cap + 1 + cnt] = keys[i];
    send[d * cap] = cnt + 1;
  }
  mpi_alltoall_d(send, recvb, cap);

  // NPB-style ranking of the keys received for my range: histogram, then
  // exclusive prefix sums give each key its rank; keys are then permuted
  // into place through the rank array (corrupted ranks scramble the
  // permutation, which the sortedness check catches).
  int base = rank * width;
  int* hist = (int*)malloc(width);
  for (int v = 0; v < width; v = v + 1) { hist[v] = 0; }
  int mycount = 0;
  for (int s = 0; s < size; s = s + 1) {
    int cnt = recvb[s * cap];
    for (int j = 0; j < cnt; j = j + 1) {
      int key = recvb[s * cap + 1 + j];
      hist[key - base] = hist[key - base] + 1;
      mycount = mycount + 1;
    }
  }
  // Exclusive prefix sum: rankpos[v] = number of smaller keys.
  int* rankpos = (int*)malloc(width);
  int acc = 0;
  for (int v = 0; v < width; v = v + 1) {
    rankpos[v] = acc;
    acc = acc + hist[v];
  }

  // Permute keys into my sorted bucket: [count, keys...], capacity n + 1.
  int gcap = n + 1;
  int* sorted = (int*)malloc(gcap);
  sorted[0] = mycount;
  for (int s = 0; s < size; s = s + 1) {
    int cnt = recvb[s * cap];
    for (int j = 0; j < cnt; j = j + 1) {
      int key = recvb[s * cap + 1 + j];
      int pos = rankpos[key - base];
      rankpos[key - base] = pos + 1;
      sorted[1 + pos] = key;
    }
  }

  // Re-assemble the globally sorted array on every rank.
  int* gathered = (int*)malloc(size * gcap);
  mpi_allgather_d(sorted, gathered, gcap);
  int pos = 0;
  for (int s = 0; s < size; s = s + 1) {
    int cnt = gathered[s * gcap];
    for (int j = 0; j < cnt; j = j + 1) {
      out[pos] = 1.0 * gathered[s * gcap + 1 + j];
      pos = pos + 1;
    }
  }
  return pos;
}
)MINIC";

namespace {

class IsWorkload : public Workload {
public:
  std::string name() const override { return "IS"; }
  std::string description() const override {
    return "NPB-style integer sort (bucket exchange + rank permutation); "
           "verified by the benchmark's sortedness check.";
  }
  std::string source() const override { return IsSource; }

  std::vector<int64_t> inputParams(int Level) const override {
    // (n, maxkey): scaled analogues of NPB classes S / W / A / B.
    static const int64_t N[4] = {2048, 8192, 32768, 131072};
    static const int64_t MaxKey[4] = {8192, 32768, 65536, 131072};
    int I = levelIndex(Level);
    return {N[I], MaxKey[I]};
  }
  std::string inputDescription(int Level) const override {
    return std::to_string(inputParams(Level)[0]) + " keys";
  }

  uint64_t outputSlots(const std::vector<int64_t> &P) const override {
    return static_cast<uint64_t>(P[0]);
  }

  Memory::Config memoryConfig(
      const std::vector<int64_t> &P) const override {
    Memory::Config Cfg;
    uint64_t N = static_cast<uint64_t>(P[0]);
    uint64_t MaxKey = static_cast<uint64_t>(P[1]);
    // keys + send/recv (2*(n+P)) + hist + sorted + gathered (P*(n+1)).
    Cfg.HeapBytes = (N * 64 + MaxKey * 8 + (2 << 20)) * 2;
    return Cfg;
  }

  bool verify(const std::vector<RtValue> &Output,
              const std::vector<RtValue> &Golden,
              const std::vector<int64_t> &P) const override {
    (void)P;
    (void)Golden;
    // The benchmark's own verification, exactly as in Table 2: iterate
    // over the sorted array and check key[i-1] <= key[i]. Keys corrupted
    // *before* ranking are placed consistently with their corrupted value
    // and count as masked; corruption after ranking breaks sortedness.
    for (size_t I = 1; I < Output.size(); ++I)
      if (Output[I - 1].asF64() > Output[I].asF64())
        return false;
    return true;
  }
};

} // namespace

std::unique_ptr<Workload> ipas::makeIsWorkload() {
  return std::make_unique<IsWorkload>();
}
