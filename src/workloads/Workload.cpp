//===- workloads/Workload.cpp -------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "transform/Mem2Reg.h"
#include "transform/SimplifyCFG.h"
#include "workloads/WorkloadImpl.h"

#include <cstdio>
#include <cstdlib>

using namespace ipas;

std::vector<std::unique_ptr<Workload>> ipas::makeAllWorkloads() {
  std::vector<std::unique_ptr<Workload>> All;
  All.push_back(makeCoMDWorkload());
  All.push_back(makeHpccgWorkload());
  All.push_back(makeAmgWorkload());
  All.push_back(makeFftWorkload());
  All.push_back(makeIsWorkload());
  return All;
}

std::unique_ptr<Workload> ipas::makeWorkload(const std::string &Name) {
  if (Name == "CoMD")
    return makeCoMDWorkload();
  if (Name == "HPCCG")
    return makeHpccgWorkload();
  if (Name == "AMG")
    return makeAmgWorkload();
  if (Name == "FFT")
    return makeFftWorkload();
  if (Name == "IS")
    return makeIsWorkload();
  return nullptr;
}

std::unique_ptr<Module> ipas::compileWorkload(const Workload &W) {
  Diagnostics Diags;
  std::unique_ptr<Module> M = compileMiniC(W.source(), W.name(), Diags);
  if (!M) {
    std::fprintf(stderr, "fatal: workload %s failed to compile:\n%s\n",
                 W.name().c_str(), Diags.summary().c_str());
    std::abort();
  }
  removeUnreachableBlocks(*M);
  promoteAllocasToRegisters(*M);
  M->renumber();
  return M;
}
