//===- workloads/WorkloadHarness.h - Workloads as injectable programs -----===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_WORKLOADS_WORKLOADHARNESS_H
#define IPAS_WORKLOADS_WORKLOADHARNESS_H

#include "fault/ProgramHarness.h"
#include "mpi/SimMpi.h"
#include "workloads/Workload.h"

namespace ipas {

/// Executes a workload (serial or multi-rank) under the campaign driver.
/// The first clean execution captures the golden output used by the
/// verification routine. Fault injection is supported for serial runs
/// (the paper's coverage methodology, §6); multi-rank runs are used for
/// the scalability measurements.
class WorkloadHarness : public ProgramHarness {
public:
  WorkloadHarness(const Workload &W, int InputLevel, int NumRanks = 1,
                  uint64_t WorkloadSeed = 0x1234abcd)
      : W(W), Params(W.inputParams(InputLevel)), NumRanks(NumRanks),
        WorkloadSeed(WorkloadSeed) {}

  ExecutionRecord execute(const ModuleLayout &Layout, const FaultPlan *Plan,
                          uint64_t StepBudget) override;

  /// Clean serial run with value-step tracing (see ProgramHarness).
  std::vector<unsigned> traceValueSteps(const ModuleLayout &Layout) override;

  /// Propagation tracing is defined for serial runs only (coverage
  /// campaigns are serial; see execute()).
  bool supportsObservation() const override { return NumRanks <= 1; }
  ExecutionRecord executeObserved(const ModuleLayout &Layout,
                                  const FaultPlan *Plan, uint64_t StepBudget,
                                  ExecObserver &Obs) override;

  /// Cost profiling rides the same serial clean-run machinery.
  bool supportsProfiling() const override { return NumRanks <= 1; }
  ExecutionRecord executeProfiled(const ModuleLayout &Layout,
                                  CostProfiler &Prof) override;

  /// Golden output captured by the first clean run (empty before that).
  const std::vector<RtValue> &golden() const { return Golden; }

  const std::vector<int64_t> &params() const { return Params; }

private:
  ExecutionRecord executeSerial(const ModuleLayout &Layout,
                                const FaultPlan *Plan, uint64_t StepBudget,
                                std::vector<unsigned> *Trace = nullptr,
                                ExecObserver *Obs = nullptr,
                                CostProfiler *Prof = nullptr);
  ExecutionRecord executeParallel(const ModuleLayout &Layout,
                                  uint64_t StepBudget);
  bool verifyAgainstGolden(const std::vector<RtValue> &Output);

  const Workload &W;
  std::vector<int64_t> Params;
  int NumRanks;
  uint64_t WorkloadSeed;
  std::vector<RtValue> Golden;
};

} // namespace ipas

#endif // IPAS_WORKLOADS_WORKLOADHARNESS_H
