//===- workloads/Workload.h - The five evaluation workloads ----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's five workloads (Table 2) as MiniC programs with their
/// output-verification routines and the four input levels of Table 5:
///
///   CoMD  - short-range molecular dynamics; energy-conservation check
///   HPCCG - conjugate gradient on a 3D stencil; exact-solution check
///   AMG   - multigrid Poisson solve kernel; input-integrity + residual
///   FFT   - 2D FFT + inverse round trip; L2-norm check vs golden run
///   IS    - integer bucket sort; sortedness (+ golden multiset) check
///
/// Every workload's MiniC entry point has the form
///   int run(<int params...>, double* out)
/// and is MPI-aware: with one rank the MPI intrinsics degrade to serial
/// semantics, with many ranks the work is domain-partitioned.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_WORKLOADS_WORKLOAD_H
#define IPAS_WORKLOADS_WORKLOAD_H

#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"

#include <memory>
#include <string>
#include <vector>

namespace ipas {

class Workload {
public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  /// The MiniC source of the workload.
  virtual std::string source() const = 0;

  /// Integer problem parameters for input level 1..4 (Table 5). Level 1 is
  /// the training input.
  virtual std::vector<int64_t> inputParams(int Level) const = 0;

  /// A short human-readable description of the input level.
  virtual std::string inputDescription(int Level) const = 0;

  /// Output buffer size (in 8-byte slots) for the given input.
  virtual uint64_t outputSlots(const std::vector<int64_t> &Params) const = 0;

  /// Memory sizing for the given input.
  virtual Memory::Config memoryConfig(
      const std::vector<int64_t> &Params) const {
    (void)Params;
    return Memory::Config();
  }

  /// The application-specific verification routine (Table 2): decides
  /// whether \p Output is an acceptable outcome given the golden (clean
  /// run) output. Called with Output == Golden for the clean run itself.
  virtual bool verify(const std::vector<RtValue> &Output,
                      const std::vector<RtValue> &Golden,
                      const std::vector<int64_t> &Params) const = 0;

  static constexpr const char *EntryName = "run";
};

/// Instantiates all five workloads in paper order.
std::vector<std::unique_ptr<Workload>> makeAllWorkloads();

/// Instantiates one workload by name (CoMD, HPCCG, AMG, FFT, IS); null if
/// unknown.
std::unique_ptr<Workload> makeWorkload(const std::string &Name);

/// Compiles the workload's MiniC source and runs the standard pass
/// pipeline (CFG cleanup, mem2reg) followed by Module::renumber().
/// Aborts on compile errors — workload sources are part of the library.
std::unique_ptr<Module> compileWorkload(const Workload &W);

} // namespace ipas

#endif // IPAS_WORKLOADS_WORKLOAD_H
