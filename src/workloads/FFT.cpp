//===- workloads/FFT.cpp - 2D FFT round-trip kernel ---------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// FFT computes the 2D discrete Fourier transform and its inverse of an
/// n x n complex matrix inside an iteration loop, following the paper's
/// FFT kernel. The parallel decomposition is the classic transpose-based
/// 2D FFT: row FFTs on block-partitioned rows, block alltoall transpose,
/// row FFTs again; the inverse mirrors the sequence. Verification (Table
/// 2): the L2 norm between the output and an error-free run's output must
/// be below 1e-6.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadImpl.h"

#include <cmath>

using namespace ipas;

static const char *FftSource = R"MINIC(
// FFT: 2D radix-2 FFT + inverse round trip, iterated.
// run(n, iters, out): out[0..n*n) = real parts, out[n*n..2*n*n) = imag.

int bitrev(int x, int bits) {
  int r = 0;
  for (int k = 0; k < bits; k = k + 1) {
    r = r * 2 + x % 2;
    x = x / 2;
  }
  return r;
}

int ilog2(int n) {
  int bits = 0;
  while (n > 1) {
    n = n / 2;
    bits = bits + 1;
  }
  return bits;
}

// In-place radix-2 FFT of the length-n row starting at offset off.
// sign = -1.0 forward, +1.0 inverse (inverse also scales by 1/n).
void fft_row(double* re, double* im, int off, int n, double sign) {
  int bits = ilog2(n);
  // Bit-reversal permutation.
  for (int i = 0; i < n; i = i + 1) {
    int j = bitrev(i, bits);
    if (j > i) {
      double tr = re[off + i];
      double ti = im[off + i];
      re[off + i] = re[off + j];
      im[off + i] = im[off + j];
      re[off + j] = tr;
      im[off + j] = ti;
    }
  }
  double pi = 3.14159265358979323846;
  for (int len = 2; len <= n; len = len * 2) {
    double ang = sign * 2.0 * pi / len;
    int half = len / 2;
    for (int blk = 0; blk < n; blk = blk + len) {
      for (int k = 0; k < half; k = k + 1) {
        double wr = cos(ang * k);
        double wi = sin(ang * k);
        int a = off + blk + k;
        int b2 = a + half;
        double xr = re[b2] * wr - im[b2] * wi;
        double xi = re[b2] * wi + im[b2] * wr;
        re[b2] = re[a] - xr;
        im[b2] = im[a] - xi;
        re[a] = re[a] + xr;
        im[a] = im[a] + xi;
      }
    }
  }
  if (sign > 0.0) {
    double inv = 1.0 / n;
    for (int i = 0; i < n; i = i + 1) {
      re[off + i] = re[off + i] * inv;
      im[off + i] = im[off + i] * inv;
    }
  }
}

// Transpose the block-row-partitioned matrix across ranks: my rpb rows of
// length n become (after the call) the rpb transposed rows. send/recv are
// scratch buffers of rpb * n slots each.
void transpose(double* re, double* im, double* sendr, double* sendi,
               double* recvr, double* recvi, int n, int rpb, int size) {
  int seg = rpb * rpb;
  for (int s = 0; s < size; s = s + 1) {
    for (int r = 0; r < rpb; r = r + 1) {
      for (int c = 0; c < rpb; c = c + 1) {
        sendr[s * seg + r * rpb + c] = re[r * n + s * rpb + c];
        sendi[s * seg + r * rpb + c] = im[r * n + s * rpb + c];
      }
    }
  }
  mpi_alltoall_d(sendr, recvr, seg);
  mpi_alltoall_d(sendi, recvi, seg);
  for (int s = 0; s < size; s = s + 1) {
    for (int r = 0; r < rpb; r = r + 1) {
      for (int c = 0; c < rpb; c = c + 1) {
        re[c * n + s * rpb + r] = recvr[s * seg + r * rpb + c];
        im[c * n + s * rpb + r] = recvi[s * seg + r * rpb + c];
      }
    }
  }
}

int run(int n, int iters, double* out) {
  int rank = mpi_rank();
  int size = mpi_size();
  int rpb = n / size; // rows per block

  double* re = (double*)malloc(rpb * n);
  double* im = (double*)malloc(rpb * n);
  double* sendr = (double*)malloc(rpb * n);
  double* sendi = (double*)malloc(rpb * n);
  double* recvr = (double*)malloc(rpb * n);
  double* recvi = (double*)malloc(rpb * n);

  // Deterministic smooth-ish input (same function of global indices).
  for (int r = 0; r < rpb; r = r + 1) {
    int grow = rank * rpb + r;
    for (int c = 0; c < n; c = c + 1) {
      re[r * n + c] = sin(0.37 * grow) + 0.25 * cos(0.91 * c);
      im[r * n + c] = 0.5 * cos(0.53 * grow * c + 1.0);
    }
  }

  for (int it = 0; it < iters; it = it + 1) {
    // Forward 2D FFT: rows, transpose, rows.
    for (int r = 0; r < rpb; r = r + 1) { fft_row(re, im, r * n, n, -1.0); }
    transpose(re, im, sendr, sendi, recvr, recvi, n, rpb, size);
    for (int r = 0; r < rpb; r = r + 1) { fft_row(re, im, r * n, n, -1.0); }
    // Inverse: rows, transpose, rows (mirrors the forward sequence).
    for (int r = 0; r < rpb; r = r + 1) { fft_row(re, im, r * n, n, 1.0); }
    transpose(re, im, sendr, sendi, recvr, recvi, n, rpb, size);
    for (int r = 0; r < rpb; r = r + 1) { fft_row(re, im, r * n, n, 1.0); }
  }

  // Assemble the full matrix on every rank: re then im planes.
  mpi_allgather_d(re, out, rpb * n);
  double* outim = out + n * n;
  mpi_allgather_d(im, outim, rpb * n);
  return 0;
}
)MINIC";

namespace {

class FftWorkload : public Workload {
public:
  std::string name() const override { return "FFT"; }
  std::string description() const override {
    return "Transpose-based 2D FFT + inverse round trip; verified by the "
           "L2 norm against an error-free run.";
  }
  std::string source() const override { return FftSource; }

  std::vector<int64_t> inputParams(int Level) const override {
    // (n, iters): the paper uses 8K..64K matrices with a 100-iteration
    // loop; these are the laptop-scale analogues.
    static const int64_t N[4] = {16, 32, 64, 128};
    return {N[levelIndex(Level)], 2};
  }
  std::string inputDescription(int Level) const override {
    int64_t N = inputParams(Level)[0];
    return std::to_string(N) + "x" + std::to_string(N) + " matrix";
  }

  uint64_t outputSlots(const std::vector<int64_t> &P) const override {
    uint64_t N = static_cast<uint64_t>(P[0]);
    return 2 * N * N;
  }

  Memory::Config memoryConfig(
      const std::vector<int64_t> &P) const override {
    Memory::Config Cfg;
    uint64_t N = static_cast<uint64_t>(P[0]);
    Cfg.HeapBytes = (N * N * 8 * 10 + (1 << 20)) * 2;
    return Cfg;
  }

  bool verify(const std::vector<RtValue> &Output,
              const std::vector<RtValue> &Golden,
              const std::vector<int64_t> &P) const override {
    (void)P;
    // Table 2: L2 norm between this output and the error-free output.
    double Sum = 0.0;
    for (size_t I = 0; I != Output.size(); ++I) {
      double D = Output[I].asF64() - Golden[I].asF64();
      Sum += D * D;
    }
    double Norm = std::sqrt(Sum);
    return std::isfinite(Norm) && Norm < 1e-6;
  }
};

} // namespace

std::unique_ptr<Workload> ipas::makeFftWorkload() {
  return std::make_unique<FftWorkload>();
}
