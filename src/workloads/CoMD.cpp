//===- workloads/CoMD.cpp - Molecular-dynamics mini application ---------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// CoMD simulates a Lennard-Jones crystal with short-range (cutoff)
/// interatomic forces under velocity-Verlet integration, the physics of
/// the ExMatEx CoMD proxy app. Atoms are block-partitioned across ranks;
/// positions are re-replicated with an allgather each step and the total
/// energy is reduced with an allreduce.
///
/// Verification (Table 2): in an MD simulation the total energy is
/// conserved; the routine checks that the final total energy falls within
/// 3 standard deviations of the clean run's energy trace.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadImpl.h"

#include <cmath>

using namespace ipas;

static const char *CoMDSource = R"MINIC(
// CoMD: Lennard-Jones MD with cutoff, velocity Verlet.
// run(nx, nsteps, out): out[s] = total energy after step s.

// Accumulates LJ forces and potential energy for atoms [lo, hi) against
// all atoms. Returns the potential energy share (half per pair).
double compute_forces(double* px, double* py, double* pz,
                      double* fx, double* fy, double* fz,
                      int lo, int hi, int natoms) {
  double rc2 = 6.25; // cutoff 2.5 sigma
  double pe = 0.0;
  for (int i = lo; i < hi; i = i + 1) {
    fx[i] = 0.0;
    fy[i] = 0.0;
    fz[i] = 0.0;
    for (int j = 0; j < natoms; j = j + 1) {
      if (j != i) {
        double dx = px[i] - px[j];
        double dy = py[i] - py[j];
        double dz = pz[i] - pz[j];
        double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 < rc2) {
          double inv2 = 1.0 / r2;
          double inv6 = inv2 * inv2 * inv2;
          double inv12 = inv6 * inv6;
          pe = pe + 0.5 * 4.0 * (inv12 - inv6);
          double fcoef = 24.0 * (2.0 * inv12 - inv6) * inv2;
          fx[i] = fx[i] + fcoef * dx;
          fy[i] = fy[i] + fcoef * dy;
          fz[i] = fz[i] + fcoef * dz;
        }
      }
    }
  }
  return pe;
}

int run(int nx, int nsteps, double* out) {
  int rank = mpi_rank();
  int size = mpi_size();
  int natoms = nx * nx * nx;
  int chunk = natoms / size;
  int lo = rank * chunk;
  int hi = lo + chunk;

  double* px = (double*)malloc(natoms);
  double* py = (double*)malloc(natoms);
  double* pz = (double*)malloc(natoms);
  double* vx = (double*)malloc(natoms);
  double* vy = (double*)malloc(natoms);
  double* vz = (double*)malloc(natoms);
  double* fx = (double*)malloc(natoms);
  double* fy = (double*)malloc(natoms);
  double* fz = (double*)malloc(natoms);
  double* sendbuf = (double*)malloc(chunk);

  // FCC-ish cubic lattice at the LJ minimum spacing with a small jitter;
  // every rank seeds identically so the initial state is replicated.
  rand_seed(424242 + nx);
  double a = 1.1225;
  int i = 0;
  for (int z = 0; z < nx; z = z + 1) {
    for (int y = 0; y < nx; y = y + 1) {
      for (int x = 0; x < nx; x = x + 1) {
        px[i] = a * x + 0.01 * (rand_f64() - 0.5);
        py[i] = a * y + 0.01 * (rand_f64() - 0.5);
        pz[i] = a * z + 0.01 * (rand_f64() - 0.5);
        vx[i] = 0.1 * (rand_f64() - 0.5);
        vy[i] = 0.1 * (rand_f64() - 0.5);
        vz[i] = 0.1 * (rand_f64() - 0.5);
        i = i + 1;
      }
    }
  }

  double dt = 0.002;
  double pe_local = compute_forces(px, py, pz, fx, fy, fz, lo, hi, natoms);

  for (int step = 0; step < nsteps; step = step + 1) {
    // Velocity Verlet: half kick + drift for my atoms.
    for (int k = lo; k < hi; k = k + 1) {
      vx[k] = vx[k] + 0.5 * dt * fx[k];
      vy[k] = vy[k] + 0.5 * dt * fy[k];
      vz[k] = vz[k] + 0.5 * dt * fz[k];
      px[k] = px[k] + dt * vx[k];
      py[k] = py[k] + dt * vy[k];
      pz[k] = pz[k] + dt * vz[k];
    }
    // Re-replicate positions (halo exchange analogue).
    for (int k = 0; k < chunk; k = k + 1) { sendbuf[k] = px[lo + k]; }
    mpi_allgather_d(sendbuf, px, chunk);
    for (int k = 0; k < chunk; k = k + 1) { sendbuf[k] = py[lo + k]; }
    mpi_allgather_d(sendbuf, py, chunk);
    for (int k = 0; k < chunk; k = k + 1) { sendbuf[k] = pz[lo + k]; }
    mpi_allgather_d(sendbuf, pz, chunk);

    pe_local = compute_forces(px, py, pz, fx, fy, fz, lo, hi, natoms);

    // Second half kick and kinetic energy.
    double ke_local = 0.0;
    for (int k = lo; k < hi; k = k + 1) {
      vx[k] = vx[k] + 0.5 * dt * fx[k];
      vy[k] = vy[k] + 0.5 * dt * fy[k];
      vz[k] = vz[k] + 0.5 * dt * fz[k];
      ke_local = ke_local
          + 0.5 * (vx[k] * vx[k] + vy[k] * vy[k] + vz[k] * vz[k]);
    }
    double e = mpi_allreduce_sum_d(ke_local + pe_local);
    out[step] = e;
  }
  return 0;
}
)MINIC";

namespace {

class CoMDWorkload : public Workload {
public:
  std::string name() const override { return "CoMD"; }
  std::string description() const override {
    return "Short-range Lennard-Jones molecular dynamics (CoMD proxy-app "
           "analogue); verified by total-energy conservation.";
  }
  std::string source() const override { return CoMDSource; }

  std::vector<int64_t> inputParams(int Level) const override {
    // (nx, nsteps): nx^3 atoms. The paper uses nx = 20 / 30 / 40 / 50.
    static const int64_t Nx[4] = {4, 5, 6, 7};
    return {Nx[levelIndex(Level)], 6};
  }
  std::string inputDescription(int Level) const override {
    int64_t Nx = inputParams(Level)[0];
    return std::to_string(Nx * Nx * Nx) + " atoms";
  }

  uint64_t outputSlots(const std::vector<int64_t> &P) const override {
    return static_cast<uint64_t>(P[1]); // energy trace, one per step
  }

  Memory::Config memoryConfig(
      const std::vector<int64_t> &P) const override {
    Memory::Config Cfg;
    uint64_t N = static_cast<uint64_t>(P[0] * P[0] * P[0]);
    Cfg.HeapBytes = (N * 10 * 8 + (1 << 20)) * 2;
    return Cfg;
  }

  bool verify(const std::vector<RtValue> &Output,
              const std::vector<RtValue> &Golden,
              const std::vector<int64_t> &P) const override {
    (void)P;
    // Energy conservation: the final total energy must lie within 3 sigma
    // of the clean run's energy trace (Table 2), with a relative floor so
    // a perfectly flat clean trace does not reject benign noise.
    double Mean = 0.0;
    for (const RtValue &V : Golden)
      Mean += V.asF64();
    Mean /= static_cast<double>(Golden.size());
    double Var = 0.0;
    for (const RtValue &V : Golden) {
      double D = V.asF64() - Mean;
      Var += D * D;
    }
    double Sigma =
        std::sqrt(Var / static_cast<double>(Golden.size() > 1
                                                ? Golden.size() - 1
                                                : 1));
    double Tol = std::max(3.0 * Sigma, 1e-9 * std::fabs(Mean));
    double Final = Output.back().asF64();
    return std::isfinite(Final) && std::fabs(Final - Mean) <= Tol;
  }
};

} // namespace

std::unique_ptr<Workload> ipas::makeCoMDWorkload() {
  return std::make_unique<CoMDWorkload>();
}
