//===- workloads/WorkloadImpl.h - Internal workload factory hooks ---------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_WORKLOADS_WORKLOADIMPL_H
#define IPAS_WORKLOADS_WORKLOADIMPL_H

#include "workloads/Workload.h"

#include <algorithm>

namespace ipas {

std::unique_ptr<Workload> makeCoMDWorkload();
std::unique_ptr<Workload> makeHpccgWorkload();
std::unique_ptr<Workload> makeAmgWorkload();
std::unique_ptr<Workload> makeFftWorkload();
std::unique_ptr<Workload> makeIsWorkload();

/// Clamps a 1-based Table-5 input level into [1, 4] and converts it to a
/// 0-based array index.
inline int levelIndex(int Level) { return std::clamp(Level, 1, 4) - 1; }

} // namespace ipas

#endif // IPAS_WORKLOADS_WORKLOADIMPL_H
