//===- workloads/WorkloadHarness.cpp ------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadHarness.h"

#include "interp/CostProfiler.h"

#include <cstdio>
#include <cstdlib>

using namespace ipas;

/// Reads \p Slots 8-byte values starting at \p Addr.
static std::vector<RtValue> readOutput(const Memory &Mem, uint64_t Addr,
                                       uint64_t Slots) {
  std::vector<RtValue> Out;
  if (!Mem.validRange(Addr, Slots * 8))
    return Out; // leaves Out empty; caller treats as invalid
  Out.reserve(Slots);
  for (uint64_t K = 0; K != Slots; ++K) {
    RtValue V;
    V.Bits = Mem.read64(Addr + K * 8);
    Out.push_back(V);
  }
  return Out;
}

bool WorkloadHarness::verifyAgainstGolden(
    const std::vector<RtValue> &Output) {
  if (Output.empty())
    return false;
  if (Golden.empty()) {
    // First clean run: the output becomes the golden reference, but it
    // must still satisfy the workload's internal invariants.
    bool Ok = W.verify(Output, Output, Params);
    if (Ok)
      Golden = Output;
    return Ok;
  }
  return W.verify(Output, Golden, Params);
}

ExecutionRecord WorkloadHarness::execute(const ModuleLayout &Layout,
                                         const FaultPlan *Plan,
                                         uint64_t StepBudget) {
  if (NumRanks <= 1)
    return executeSerial(Layout, Plan, StepBudget);
  assert(!Plan && "fault injection into parallel jobs is driven per-rank "
                  "via MpiJob directly (coverage campaigns are serial)");
  return executeParallel(Layout, StepBudget);
}

std::vector<unsigned>
WorkloadHarness::traceValueSteps(const ModuleLayout &Layout) {
  assert(NumRanks <= 1 &&
         "value-step tracing is defined for serial runs only");
  std::vector<unsigned> Trace;
  ExecutionRecord R = executeSerial(Layout, nullptr, UINT64_MAX, &Trace);
  if (R.Status != RunStatus::Finished)
    return {}; // broken program; let the campaign driver notice normally
  return Trace;
}

ExecutionRecord WorkloadHarness::executeObserved(const ModuleLayout &Layout,
                                                 const FaultPlan *Plan,
                                                 uint64_t StepBudget,
                                                 ExecObserver &Obs) {
  assert(NumRanks <= 1 &&
         "propagation tracing is defined for serial runs only");
  return executeSerial(Layout, Plan, StepBudget, nullptr, &Obs);
}

ExecutionRecord WorkloadHarness::executeProfiled(const ModuleLayout &Layout,
                                                 CostProfiler &Prof) {
  assert(NumRanks <= 1 && "cost profiling is defined for serial runs only");
  return executeSerial(Layout, nullptr, UINT64_MAX, nullptr, nullptr, &Prof);
}

ExecutionRecord WorkloadHarness::executeSerial(const ModuleLayout &Layout,
                                               const FaultPlan *Plan,
                                               uint64_t StepBudget,
                                               std::vector<unsigned> *Trace,
                                               ExecObserver *Obs,
                                               CostProfiler *Prof) {
  const Function *Entry = Layout.module().getFunction(Workload::EntryName);
  assert(Entry && "workload module lacks its entry function");

  ExecutionContext::Config Cfg;
  Cfg.Mem = W.memoryConfig(Params);
  Cfg.WorkloadRngSeed = WorkloadSeed;
  ExecutionContext Ctx(Layout, Cfg);

  uint64_t Slots = W.outputSlots(Params);
  uint64_t OutPtr = Ctx.hostAlloc(Slots);
  assert(OutPtr && "host output allocation failed: enlarge heap config");

  std::vector<RtValue> Args;
  Args.reserve(Params.size() + 1);
  for (int64_t P : Params)
    Args.push_back(RtValue::fromI64(P));
  Args.push_back(RtValue::fromPtr(OutPtr));
  assert(Entry->numArgs() == Args.size() &&
         "workload entry arity does not match its declared parameters");

  if (Plan)
    Ctx.setFaultPlan(*Plan);
  if (Trace)
    Ctx.setValueStepTrace(Trace);
  if (Obs)
    Ctx.setObserver(Obs);
  if (Prof)
    Prof->attach(Ctx, Entry); // arms site counts (+observer when needed)
  Ctx.start(Entry, Args);
  RunStatus S = Ctx.run(StepBudget);

  ExecutionRecord R;
  R.Status = S;
  R.Trap = Ctx.trap();
  R.Steps = Ctx.steps();
  R.ValueSteps = Ctx.valueSteps();
  R.CriticalPathCycles = Ctx.steps() + Ctx.commCost();
  R.FaultInjected = Ctx.faultWasInjected();
  R.FaultedInstructionId = Ctx.faultedInstructionId();
  if (S == RunStatus::Finished) {
    std::vector<RtValue> Output = readOutput(Ctx.memory(), OutPtr, Slots);
    R.OutputValid = verifyAgainstGolden(Output);
  }
  return R;
}

ExecutionRecord WorkloadHarness::executeParallel(const ModuleLayout &Layout,
                                                 uint64_t StepBudget) {
  const Function *Entry = Layout.module().getFunction(Workload::EntryName);
  assert(Entry && "workload module lacks its entry function");

  MpiJob::Config JobCfg;
  JobCfg.NumRanks = NumRanks;
  JobCfg.Rank.Mem = W.memoryConfig(Params);
  JobCfg.Rank.WorkloadRngSeed = WorkloadSeed;
  JobCfg.StepBudgetPerRank = StepBudget;
  MpiJob Job(Layout, JobCfg);

  uint64_t Slots = W.outputSlots(Params);
  std::vector<uint64_t> OutPtrs(static_cast<size_t>(NumRanks), 0);
  Job.start(Entry, [&](ExecutionContext &Ctx, int Rank) {
    uint64_t OutPtr = Ctx.hostAlloc(Slots);
    assert(OutPtr && "host output allocation failed: enlarge heap config");
    OutPtrs[static_cast<size_t>(Rank)] = OutPtr;
    std::vector<RtValue> Args;
    for (int64_t P : Params)
      Args.push_back(RtValue::fromI64(P));
    Args.push_back(RtValue::fromPtr(OutPtr));
    return Args;
  });
  JobResult JR = Job.run();

  ExecutionRecord R;
  R.Status = JR.Status;
  R.Trap = JR.Trap;
  R.Steps = JR.TotalSteps;
  R.ValueSteps = Job.rank(0).valueSteps();
  R.CriticalPathCycles = JR.CriticalPathCycles;
  if (JR.Status == RunStatus::Finished) {
    // Rank 0's output is canonical (every rank assembles the full result).
    std::vector<RtValue> Output =
        readOutput(Job.rank(0).memory(), OutPtrs[0], Slots);
    R.OutputValid = verifyAgainstGolden(Output);
  }
  return R;
}
