//===- workloads/AMG.cpp - Multigrid Poisson solve kernel ---------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// AMG iterates V-cycles of a 4-level multigrid hierarchy to solve a 2D
/// Poisson problem (5-point stencil, Dirichlet boundary) — the solve
/// kernel of an algebraic multigrid code, realized geometrically since
/// the model problem is a structured grid (DESIGN.md documents the
/// substitution). Weighted-Jacobi smoothing, full-weighting restriction,
/// bilinear-ish prolongation, and a smoother-iterated coarsest solve.
///
/// Verification (Table 2): (1) the solver inputs are re-checksummed at
/// exit and compared against the clean run (the paper reads correct
/// versions from disk), and (2) the solution must satisfy the residual
/// tolerance within the allotted cycles — checked host-side by
/// recomputing the residual with independent C++ arithmetic.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadImpl.h"

#include <cmath>

using namespace ipas;

static const char *AmgSource = R"MINIC(
// AMG: 4-level V-cycle multigrid for -Lap(u) = b on an n x n grid.
// Grids are stored with a ghost boundary: (m+2) x (m+2), interior 1..m.
// run(n, maxcycles, out): out[0..n*n) = solution interior,
//                         out[n*n] = input checksum.

// Fills the ghost ring with the Dirichlet reflection u_ghost = -u_int so
// that the zero boundary sits on the physical cell face at every level of
// the hierarchy (cell-centered discretization).
void reflect_boundary(double* u, int m) {
  int w = m + 2;
  for (int j = 1; j <= m; j = j + 1) {
    u[j] = 0.0 - u[w + j];
    u[(m + 1) * w + j] = 0.0 - u[m * w + j];
  }
  for (int i = 1; i <= m; i = i + 1) {
    u[i * w] = 0.0 - u[i * w + 1];
    u[i * w + m + 1] = 0.0 - u[i * w + m];
  }
}

// One weighted-Jacobi sweep on rows [rlo, rhi) of the m x m interior.
// unew and u may be distinct buffers.
void jacobi_rows(double* u, double* unew, double* b, int m,
                 int rlo, int rhi) {
  int w = m + 2;
  for (int i = rlo; i < rhi; i = i + 1) {
    for (int j = 1; j <= m; j = j + 1) {
      int p = i * w + j;
      double nb = u[p - 1] + u[p + 1] + u[p - w] + u[p + w];
      double jac = 0.25 * (b[p] + nb);
      unew[p] = u[p] + 0.8 * (jac - u[p]);
    }
  }
}

// Distributed smoothing on the finest level: each rank sweeps its row
// block, then the interior is re-replicated with an allgather. Coarse
// levels are smoothed redundantly on every rank (a common practice for
// small coarse grids).
void smooth(double* u, double* scratch, double* b, int m,
            double* sendbuf, int finest) {
  int w = m + 2;
  int rank = mpi_rank();
  int size = mpi_size();
  if (finest == 1 && size > 1) {
    int rows = m / size;
    int rlo = 1 + rank * rows;
    reflect_boundary(u, m);
    jacobi_rows(u, scratch, b, m, rlo, rlo + rows);
    // Pack my rows (interior only) and allgather into every rank.
    for (int i = 0; i < rows; i = i + 1) {
      for (int j = 0; j < m; j = j + 1) {
        sendbuf[i * m + j] = scratch[(rlo + i) * w + 1 + j];
      }
    }
    mpi_allgather_d(sendbuf, scratch, rows * m);
    // scratch[0..m*m) now holds the full interior, row-major; unpack.
    for (int i = 1; i <= m; i = i + 1) {
      for (int j = 1; j <= m; j = j + 1) {
        u[i * w + j] = scratch[(i - 1) * m + (j - 1)];
      }
    }
  } else {
    reflect_boundary(u, m);
    jacobi_rows(u, scratch, b, m, 1, m + 1);
    for (int i = 1; i <= m; i = i + 1) {
      for (int j = 1; j <= m; j = j + 1) {
        u[i * w + j] = scratch[i * w + j];
      }
    }
  }
}

// r = b - A u on the interior.
void residual(double* u, double* b, double* r, int m) {
  int w = m + 2;
  reflect_boundary(u, m);
  for (int i = 1; i <= m; i = i + 1) {
    for (int j = 1; j <= m; j = j + 1) {
      int p = i * w + j;
      double au = 4.0 * u[p] - u[p - 1] - u[p + 1] - u[p - w] - u[p + w];
      r[p] = b[p] - au;
    }
  }
}

// Full-weighting restriction of the fine residual to the coarse rhs.
void restrict_grid(double* rf, double* bc, int mf) {
  int wf = mf + 2;
  int mc = mf / 2;
  int wc = mc + 2;
  for (int i = 1; i <= mc; i = i + 1) {
    for (int j = 1; j <= mc; j = j + 1) {
      int fi = 2 * i - 1;
      int fj = 2 * j - 1;
      int p = fi * wf + fj;
      // Cell average times the (2h)^2 scaling of the coarse operator:
      // the coded stencil is h^2-scaled, so the coarse rhs is the plain
      // sum of the four fine residuals.
      double s = rf[p] + rf[p + 1] + rf[p + wf] + rf[p + wf + 1];
      bc[i * wc + j] = s;
    }
  }
}

// Bilinear (cell-centered) prolongation: each fine cell takes a 9/3/3/1
// weighted blend of its four nearest coarse cells; coarse ghost cells are
// zero, which realizes the Dirichlet boundary.
void prolong_add(double* uf, double* uc, int mf) {
  int wf = mf + 2;
  int mc = mf / 2;
  int wc = mc + 2;
  for (int fi = 1; fi <= mf; fi = fi + 1) {
    // Nearest coarse row and the secondary row on the other side.
    int ci = (fi + 1) / 2;
    int si = ci + 1;
    if (fi % 2 == 1) { si = ci - 1; }
    for (int fj = 1; fj <= mf; fj = fj + 1) {
      int cj = (fj + 1) / 2;
      int sj = cj + 1;
      if (fj % 2 == 1) { sj = cj - 1; }
      double v = 0.5625 * uc[ci * wc + cj]
               + 0.1875 * uc[si * wc + cj]
               + 0.1875 * uc[ci * wc + sj]
               + 0.0625 * uc[si * wc + sj];
      uf[fi * wf + fj] = uf[fi * wf + fj] + v;
    }
  }
}

void clear_grid(double* u, int m) {
  int w = m + 2;
  for (int p = 0; p < w * w; p = p + 1) { u[p] = 0.0; }
}

// One V-cycle over the hierarchy starting at level l.
void vcycle(double** us, double** bs, double** rs, double* scratch,
            double* sendbuf, int* ms, int nlevels, int l) {
  int m = ms[l];
  int finest = 0;
  if (l == 0) { finest = 1; }
  if (l == nlevels - 1) {
    // Coarsest grid: smooth hard (acts as the direct solve).
    for (int it = 0; it < 30; it = it + 1) {
      smooth(us[l], scratch, bs[l], m, sendbuf, 0);
    }
    return;
  }
  smooth(us[l], scratch, bs[l], m, sendbuf, finest);
  smooth(us[l], scratch, bs[l], m, sendbuf, finest);
  residual(us[l], bs[l], rs[l], m);
  restrict_grid(rs[l], bs[l + 1], m);
  clear_grid(us[l + 1], ms[l + 1]);
  vcycle(us, bs, rs, scratch, sendbuf, ms, nlevels, l + 1);
  reflect_boundary(us[l + 1], ms[l + 1]);
  prolong_add(us[l], us[l + 1], m);
  smooth(us[l], scratch, bs[l], m, sendbuf, finest);
  smooth(us[l], scratch, bs[l], m, sendbuf, finest);
}

int run(int n, int maxcycles, double* out) {
  int nlevels = 4;
  int* ms = (int*)malloc(nlevels);
  double** us = (double**)malloc(nlevels);
  double** bs = (double**)malloc(nlevels);
  double** rs = (double**)malloc(nlevels);
  int m = n;
  for (int l = 0; l < nlevels; l = l + 1) {
    ms[l] = m;
    int w = m + 2;
    us[l] = (double*)malloc(w * w);
    bs[l] = (double*)malloc(w * w);
    rs[l] = (double*)malloc(w * w);
    clear_grid(us[l], m);
    clear_grid(bs[l], m);
    clear_grid(rs[l], m);
    m = m / 2;
  }
  double* scratch = (double*)malloc((n + 2) * (n + 2));
  double* sendbuf = (double*)malloc(n * n);

  // Right-hand side: b = 1 on the interior of the finest grid.
  int w0 = n + 2;
  for (int i = 1; i <= n; i = i + 1) {
    for (int j = 1; j <= n; j = j + 1) {
      bs[0][i * w0 + j] = 1.0;
    }
  }

  // ||b||^2 for the relative tolerance.
  double btb = 0.0;
  for (int i = 1; i <= n; i = i + 1) {
    for (int j = 1; j <= n; j = j + 1) {
      double v = bs[0][i * w0 + j];
      btb = btb + v * v;
    }
  }
  double tol2 = 1.0e-12 * btb;

  int cycle = 0;
  double rr = btb;
  while (cycle < maxcycles && rr > tol2) {
    vcycle(us, bs, rs, scratch, sendbuf, ms, nlevels, 0);
    residual(us[0], bs[0], rs[0], n);
    rr = 0.0;
    for (int i = 1; i <= n; i = i + 1) {
      for (int j = 1; j <= n; j = j + 1) {
        double v = rs[0][i * w0 + j];
        rr = rr + v * v;
      }
    }
    cycle = cycle + 1;
  }

  // Emit the solution interior and re-checksum the inputs (the paper
  // checks the solver inputs against correct versions from disk).
  for (int i = 1; i <= n; i = i + 1) {
    for (int j = 1; j <= n; j = j + 1) {
      out[(i - 1) * n + (j - 1)] = us[0][i * w0 + j];
    }
  }
  double checksum = 0.0;
  for (int i = 1; i <= n; i = i + 1) {
    for (int j = 1; j <= n; j = j + 1) {
      checksum = checksum + bs[0][i * w0 + j] * (i + 2 * j);
    }
  }
  out[n * n] = checksum;
  return cycle;
}
)MINIC";

namespace {

class AmgWorkload : public Workload {
public:
  std::string name() const override { return "AMG"; }
  std::string description() const override {
    return "4-level multigrid V-cycle Poisson solve kernel; verified by "
           "input-integrity checksum plus host-recomputed residual.";
  }
  std::string source() const override { return AmgSource; }

  std::vector<int64_t> inputParams(int Level) const override {
    // (n, maxcycles): n x n finest grid in a 4-level hierarchy (paper:
    // 10K..30K problem on a 4-level hierarchy, 1000-iteration cap).
    static const int64_t N[4] = {24, 32, 48, 64};
    return {N[levelIndex(Level)], 60};
  }
  std::string inputDescription(int Level) const override {
    int64_t N = inputParams(Level)[0];
    return std::to_string(N) + "x" + std::to_string(N) + " grid, 4 levels";
  }

  uint64_t outputSlots(const std::vector<int64_t> &P) const override {
    uint64_t N = static_cast<uint64_t>(P[0]);
    return N * N + 1;
  }

  Memory::Config memoryConfig(
      const std::vector<int64_t> &P) const override {
    Memory::Config Cfg;
    uint64_t N = static_cast<uint64_t>(P[0]);
    Cfg.HeapBytes = ((N + 2) * (N + 2) * 8 * 16 + (1 << 20)) * 2;
    return Cfg;
  }

  bool verify(const std::vector<RtValue> &Output,
              const std::vector<RtValue> &Golden,
              const std::vector<int64_t> &P) const override {
    int64_t N = P[0];
    // Check 1: input integrity — the checksum of the solver inputs must
    // match the clean run's.
    double Checksum = Output.back().asF64();
    double GoldenChecksum = Golden.back().asF64();
    if (Checksum != GoldenChecksum)
      return false;
    // Check 2: the solver must actually have arrived at a solution —
    // recompute ||b - A u|| with independent host arithmetic.
    double Rr = 0.0;
    for (int64_t I = 0; I != N; ++I)
      for (int64_t J = 0; J != N; ++J) {
        auto Interior = [&](int64_t A, int64_t B) -> double {
          return Output[static_cast<size_t>(A * N + B)].asF64();
        };
        auto U = [&](int64_t A, int64_t B) -> double {
          // Ghost cells hold the Dirichlet reflection of their interior
          // neighbour, mirroring the workload's discretization.
          if (A < 0)
            return -Interior(0, B);
          if (A >= N)
            return -Interior(N - 1, B);
          if (B < 0)
            return -Interior(A, 0);
          if (B >= N)
            return -Interior(A, N - 1);
          return Interior(A, B);
        };
        double Au = 4.0 * U(I, J) - U(I - 1, J) - U(I + 1, J) -
                    U(I, J - 1) - U(I, J + 1);
        double R = 1.0 - Au;
        Rr += R * R;
      }
    double Btb = static_cast<double>(N * N);
    return std::isfinite(Rr) && Rr <= 4e-12 * Btb;
  }
};

} // namespace

std::unique_ptr<Workload> ipas::makeAmgWorkload() {
  return std::make_unique<AmgWorkload>();
}
