//===- workloads/HPCCG.cpp - Conjugate-gradient mini application -------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// HPCCG solves a sparse SPD system arising from a 7-point stencil on an
/// nx^3 grid with conjugate gradient, exactly the structure of the Mantevo
/// HPCCG mini application (which uses a 27-point stencil; we use 7 points
/// to keep interpreted campaigns fast — DESIGN.md documents the
/// substitution). The right-hand side is built from the known exact
/// solution x* = 1, so verification compares the computed solution against
/// x* with the paper's tolerance methodology (Table 2).
///
/// MPI decomposition: rows are block-partitioned (padded to a multiple of
/// the rank count with identity rows); the search direction is
/// re-assembled with an allgather every iteration and dot products use
/// allreduce, matching HPCCG's ddot/exchange structure.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadImpl.h"

#include <cmath>

using namespace ipas;

static const char *HpccgSource = R"MINIC(
// HPCCG: CG on a 7-point stencil over an nx^3 grid. Exact solution is 1.
// run(nx, maxiter, out): out[0..n) = computed solution.

// (A v)_i for the 7-point stencil with Dirichlet truncation; ghost rows
// (i >= n) are identity rows so that padded systems stay SPD.
double apply_row(double* v, int i, int nx, int n) {
  if (i >= n) {
    return v[i];
  }
  int nx2 = nx * nx;
  int z = i / nx2;
  int rem = i - z * nx2;
  int y = rem / nx;
  int x = rem - y * nx;
  double sum = 7.0 * v[i];
  if (x > 0)      { sum = sum - v[i - 1]; }
  if (x < nx - 1) { sum = sum - v[i + 1]; }
  if (y > 0)      { sum = sum - v[i - nx]; }
  if (y < nx - 1) { sum = sum - v[i + nx]; }
  if (z > 0)      { sum = sum - v[i - nx2]; }
  if (z < nx - 1) { sum = sum - v[i + nx2]; }
  return sum;
}

int run(int nx, int maxiter, double* out) {
  int rank = mpi_rank();
  int size = mpi_size();
  int n = nx * nx * nx;
  int chunk = (n + size - 1) / size;
  int npad = chunk * size;
  int lo = rank * chunk;

  double* x  = (double*)malloc(npad);
  double* b  = (double*)malloc(npad);
  double* r  = (double*)malloc(chunk);
  double* p  = (double*)malloc(npad);
  double* ap = (double*)malloc(chunk);
  double* sendbuf = (double*)malloc(chunk);

  // b = A * ones for real rows; ghost rows are zero so their solution is 0.
  for (int i = 0; i < npad; i = i + 1) {
    x[i] = 0.0;
    p[i] = 1.0;   // temporarily the all-ones vector to form b
  }
  for (int i = 0; i < npad; i = i + 1) {
    if (i < n) {
      b[i] = apply_row(p, i, nx, n);
    } else {
      b[i] = 0.0;
    }
  }

  // r = b - A x = b ; p = r (local block views)
  double rtr_local = 0.0;
  for (int i = 0; i < chunk; i = i + 1) {
    r[i] = b[lo + i];
    rtr_local = rtr_local + r[i] * r[i];
  }
  for (int i = 0; i < npad; i = i + 1) {
    if (i >= lo && i < lo + chunk) {
      p[i] = r[i - lo];
    } else {
      p[i] = 0.0;
    }
  }
  // Assemble the initial p across ranks.
  for (int i = 0; i < chunk; i = i + 1) { sendbuf[i] = r[i]; }
  mpi_allgather_d(sendbuf, p, chunk);

  double rtr = mpi_allreduce_sum_d(rtr_local);
  double btb = rtr;
  double tol2 = 1.0e-12 * btb; // ||r|| < 1e-6 * ||b||

  int iter = 0;
  while (iter < maxiter && rtr > tol2) {
    // ap = (A p) restricted to my rows
    double pap_local = 0.0;
    for (int i = 0; i < chunk; i = i + 1) {
      ap[i] = apply_row(p, lo + i, nx, n);
      pap_local = pap_local + p[lo + i] * ap[i];
    }
    double pap = mpi_allreduce_sum_d(pap_local);
    double alpha = rtr / pap;

    double rtrnew_local = 0.0;
    for (int i = 0; i < chunk; i = i + 1) {
      x[lo + i] = x[lo + i] + alpha * p[lo + i];
      r[i] = r[i] - alpha * ap[i];
      rtrnew_local = rtrnew_local + r[i] * r[i];
    }
    double rtrnew = mpi_allreduce_sum_d(rtrnew_local);
    double beta = rtrnew / rtr;
    rtr = rtrnew;

    for (int i = 0; i < chunk; i = i + 1) {
      sendbuf[i] = r[i] + beta * p[lo + i];
    }
    mpi_allgather_d(sendbuf, p, chunk);
    iter = iter + 1;
  }

  // Assemble the full solution on every rank and emit it.
  for (int i = 0; i < chunk; i = i + 1) { sendbuf[i] = x[lo + i]; }
  mpi_allgather_d(sendbuf, x, chunk);
  for (int i = 0; i < n; i = i + 1) {
    out[i] = x[i];
  }
  return iter;
}
)MINIC";

namespace {

class HpccgWorkload : public Workload {
public:
  std::string name() const override { return "HPCCG"; }
  std::string description() const override {
    return "Conjugate gradient on a 7-point nx^3 stencil (Mantevo HPCCG "
           "analogue); verified against the known exact solution.";
  }
  std::string source() const override { return HpccgSource; }

  std::vector<int64_t> inputParams(int Level) const override {
    // (nx, maxiter). The paper uses nx = 50 / 75 / 100 / 125 with a
    // 124-iteration limit; these are the laptop-scale analogues.
    static const int64_t Nx[4] = {8, 10, 12, 14};
    return {Nx[levelIndex(Level)], 124};
  }
  std::string inputDescription(int Level) const override {
    return "nx=ny=nz=" + std::to_string(inputParams(Level)[0]);
  }

  uint64_t outputSlots(const std::vector<int64_t> &P) const override {
    uint64_t Nx = static_cast<uint64_t>(P[0]);
    return Nx * Nx * Nx;
  }

  Memory::Config memoryConfig(
      const std::vector<int64_t> &P) const override {
    Memory::Config Cfg;
    uint64_t Nx = static_cast<uint64_t>(P[0]);
    Cfg.HeapBytes = (Nx * Nx * Nx * 8 * 8 + (1 << 20)) * 2;
    return Cfg;
  }

  bool verify(const std::vector<RtValue> &Output,
              const std::vector<RtValue> &Golden,
              const std::vector<int64_t> &P) const override {
    // Table 2: the difference between the known exact solution (all ones)
    // and the computed solution must be below tolerance within the
    // iteration limit. A CG that hit maxiter unconverged fails this.
    (void)Golden;
    (void)P;
    double MaxErr = 0.0;
    for (const RtValue &V : Output)
      MaxErr = std::max(MaxErr, std::fabs(V.asF64() - 1.0));
    return MaxErr < 1e-4 && std::isfinite(MaxErr);
  }
};

} // namespace

std::unique_ptr<Workload> ipas::makeHpccgWorkload() {
  return std::make_unique<HpccgWorkload>();
}
