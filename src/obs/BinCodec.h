//===- obs/BinCodec.h - Little-endian byte codec for versioned stores -----===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit little-endian encoder/decoder pair and the FNV-1a payload
/// checksum shared by every on-disk store in the obs layer (`.iprec`
/// campaign records, `.ipprop` propagation stores). Kept deliberately
/// dumb: integers are packed byte by byte, strings are u32 length +
/// bytes, doubles travel as their IEEE-754 bit pattern in a u64 so round
/// trips are bit-exact (including NaNs and signed zeros). The decoder
/// never throws — it latches a failure flag and returns zeros, and
/// `count()` rejects container sizes that could not possibly fit in the
/// remaining bytes so a corrupt count fails cleanly instead of
/// allocating.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_OBS_BINCODEC_H
#define IPAS_OBS_BINCODEC_H

#include <cstdint>
#include <cstring>
#include <string>

namespace ipas {
namespace obs {

constexpr uint64_t FnvOffset = 1469598103934665603ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

inline uint64_t fnv1a(const char *Data, size_t Len) {
  uint64_t H = FnvOffset;
  for (size_t I = 0; I != Len; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= FnvPrime;
  }
  return H;
}

/// Appends little-endian fields to a byte string.
class Encoder {
public:
  explicit Encoder(std::string &Out) : Out(Out) {}

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void f64(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S);
  }

private:
  std::string &Out;
};

/// Reads little-endian fields from a byte buffer; latches failure on
/// truncation instead of throwing.
class Decoder {
public:
  Decoder(const char *Data, size_t Len) : Data(Data), Len(Len) {}

  bool ok() const { return !Failed; }
  bool atEnd() const { return Pos == Len; }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(Data[Pos++]);
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(Data[Pos + I]))
           << (8 * I);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Data[Pos + I]))
           << (8 * I);
    Pos += 8;
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return std::string();
    std::string S(Data + Pos, N);
    Pos += N;
    return S;
  }
  /// A count that is about to size a container: reject values that could
  /// not possibly fit in the remaining bytes (at least one byte per
  /// element) so a corrupt count fails cleanly instead of allocating.
  uint64_t count(size_t MinElemSize) {
    uint64_t N = u64();
    if (ok() && MinElemSize > 0 && N > (Len - Pos) / MinElemSize)
      Failed = true;
    return Failed ? 0 : N;
  }

private:
  bool need(size_t N) {
    if (Failed || Len - Pos < N) {
      Failed = true;
      return false;
    }
    return true;
  }

  const char *Data;
  size_t Len;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace obs
} // namespace ipas

#endif // IPAS_OBS_BINCODEC_H
