//===- obs/RecordStore.cpp ----------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// File layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "IPASREC\0"
//   8       4     version (u32, currently 2; v1 files parse too — they
//                 predate the FunctionMetas section)
//   12      8     payload length (u64, bytes following this field minus
//                 the trailing 8-byte checksum)
//   20      N     payload (see serializePayload)
//   20+N    8     FNV-1a 64 checksum of the payload bytes
//
// The payload is a flat sequence of fields; strings are u32 length +
// bytes, vectors are u64 count + elements. Doubles are stored as the
// IEEE-754 bit pattern in a u64, so round trips are bit-exact (including
// NaNs and signed zeros).
//
//===----------------------------------------------------------------------===//

#include "obs/RecordStore.h"

#include "obs/BinCodec.h"

#include <cstdio>
#include <cstring>

using namespace ipas;
using namespace ipas::obs;

namespace {

constexpr char Magic[8] = {'I', 'P', 'A', 'S', 'R', 'E', 'C', '\0'};

void serializePayload(const RecordStore &S, Encoder &E) {
  E.str(S.ModuleName);
  E.str(S.EntryFunction);
  E.str(S.Label);
  E.u64(S.Seed);
  E.u64(S.CleanSteps);
  E.u64(S.CleanValueSteps);
  E.u64(S.PrunedRuns);
  E.u64(S.PrunedSites);
  E.u64(S.OutcomeTotals.size());
  for (uint64_t T : S.OutcomeTotals)
    E.u64(T);
  E.str(S.SourceText);
  E.u64(S.Functions.size());
  for (const std::string &F : S.Functions)
    E.str(F);
  E.u64(S.Instructions.size());
  for (const InstrRecord &I : S.Instructions) {
    E.u32(I.Id);
    E.u8(I.Opcode);
    E.u8(I.DupRole);
    E.u8(I.Predicted);
    E.u8(I.Protected_);
    E.u32(I.Line);
    E.u32(I.Col);
    E.u32(I.FunctionIndex);
    E.u64(I.DynExecCount);
    E.f64(I.Score);
  }
  E.u32(S.NumFeatures);
  E.u64(S.Features.size());
  for (double F : S.Features)
    E.f64(F);
  E.u64(S.Rows.size());
  for (const InjectionRow &R : S.Rows) {
    E.u32(R.InstructionId);
    E.u32(R.BitIndex);
    E.u64(R.TargetValueStep);
    E.u8(R.Outcome);
    E.u32(R.LatencyUs);
  }
  // v2: incremental-campaign function table.
  E.u64(S.FunctionMetas.size());
  for (const FunctionMeta &F : S.FunctionMetas) {
    E.u32(F.FunctionIndex);
    E.u64(F.ContentHash);
    E.u64(F.ReachableHash);
    E.u64(F.ProfileHash);
    E.u64(F.FirstInstructionId);
    E.u64(F.LocalValueSteps);
    E.u64(F.PlannedRuns);
    E.u64(F.ReusedRuns);
    E.u8(F.Invalidation);
  }
}

bool parsePayload(RecordStore &S, uint32_t Version, Decoder &D,
                  std::string *Err) {
  S.ModuleName = D.str();
  S.EntryFunction = D.str();
  S.Label = D.str();
  S.Seed = D.u64();
  S.CleanSteps = D.u64();
  S.CleanValueSteps = D.u64();
  S.PrunedRuns = D.u64();
  S.PrunedSites = D.u64();
  S.OutcomeTotals.resize(D.count(8));
  for (uint64_t &T : S.OutcomeTotals)
    T = D.u64();
  S.SourceText = D.str();
  S.Functions.resize(D.count(4));
  for (std::string &F : S.Functions)
    F = D.str();
  S.Instructions.resize(D.count(4 + 4 + 4 + 4 + 4 + 8 + 8));
  for (InstrRecord &I : S.Instructions) {
    I.Id = D.u32();
    I.Opcode = D.u8();
    I.DupRole = D.u8();
    I.Predicted = D.u8();
    I.Protected_ = D.u8();
    I.Line = D.u32();
    I.Col = D.u32();
    I.FunctionIndex = D.u32();
    I.DynExecCount = D.u64();
    I.Score = D.f64();
  }
  S.NumFeatures = D.u32();
  S.Features.resize(D.count(8));
  for (double &F : S.Features)
    F = D.f64();
  S.Rows.resize(D.count(4 + 4 + 8 + 1 + 4));
  for (InjectionRow &R : S.Rows) {
    R.InstructionId = D.u32();
    R.BitIndex = D.u32();
    R.TargetValueStep = D.u64();
    R.Outcome = D.u8();
    R.LatencyUs = D.u32();
  }
  S.FunctionMetas.clear();
  if (Version >= 2) {
    S.FunctionMetas.resize(D.count(4 + 7 * 8 + 1));
    for (FunctionMeta &F : S.FunctionMetas) {
      F.FunctionIndex = D.u32();
      F.ContentHash = D.u64();
      F.ReachableHash = D.u64();
      F.ProfileHash = D.u64();
      F.FirstInstructionId = D.u64();
      F.LocalValueSteps = D.u64();
      F.PlannedRuns = D.u64();
      F.ReusedRuns = D.u64();
      F.Invalidation = D.u8();
    }
  }
  if (!D.ok()) {
    if (Err)
      *Err = "record store payload truncated or corrupt";
    return false;
  }
  if (!D.atEnd()) {
    if (Err)
      *Err = "record store payload has trailing bytes";
    return false;
  }
  return true;
}

} // namespace

void RecordStore::tallyOutcomes() {
  OutcomeTotals.clear();
  for (const InjectionRow &R : Rows) {
    if (R.Outcome >= OutcomeTotals.size())
      OutcomeTotals.resize(R.Outcome + 1, 0);
    ++OutcomeTotals[R.Outcome];
  }
}

void ipas::obs::serializeRecordStore(const RecordStore &S, std::string &Out) {
  Out.clear();
  Out.append(Magic, sizeof(Magic));
  Encoder Header(Out);
  Header.u32(RecordStoreVersion);
  std::string Payload;
  Encoder E(Payload);
  serializePayload(S, E);
  Header.u64(Payload.size());
  Out.append(Payload);
  Encoder Footer(Out);
  Footer.u64(fnv1a(Payload.data(), Payload.size()));
}

bool ipas::obs::writeRecordStore(const RecordStore &S, const std::string &Path,
                                 std::string *Err) {
  std::string Bytes;
  serializeRecordStore(S, Bytes);
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = Written == Bytes.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok && Err)
    *Err = "short write to '" + Path + "'";
  return Ok;
}

bool ipas::obs::parseRecordStore(RecordStore &S, const std::string &Data,
                                 std::string *Err) {
  // Fixed header: magic + version + payload length.
  constexpr size_t HeaderSize = sizeof(Magic) + 4 + 8;
  if (Data.size() < HeaderSize) {
    if (Err)
      *Err = "not a record store (file too small)";
    return false;
  }
  if (std::memcmp(Data.data(), Magic, sizeof(Magic)) != 0) {
    if (Err)
      *Err = "not a record store (bad magic)";
    return false;
  }
  Decoder H(Data.data() + sizeof(Magic), Data.size() - sizeof(Magic));
  uint32_t Version = H.u32();
  if (Version == 0 || Version > RecordStoreVersion) {
    if (Err)
      *Err = "unsupported record store version " + std::to_string(Version) +
             " (reader supports up to " +
             std::to_string(RecordStoreVersion) + ")";
    return false;
  }
  uint64_t PayloadLen = H.u64();
  if (Data.size() != HeaderSize + PayloadLen + 8) {
    if (Err)
      *Err = "record store truncated (header promises " +
             std::to_string(PayloadLen) + " payload bytes)";
    return false;
  }
  const char *Payload = Data.data() + HeaderSize;
  uint64_t WantLE = 0;
  for (int I = 0; I != 8; ++I)
    WantLE |= static_cast<uint64_t>(static_cast<unsigned char>(
                  Data[HeaderSize + PayloadLen + I]))
              << (8 * I);
  if (fnv1a(Payload, PayloadLen) != WantLE) {
    if (Err)
      *Err = "record store checksum mismatch (corrupt file)";
    return false;
  }
  Decoder D(Payload, PayloadLen);
  return parsePayload(S, Version, D, Err);
}

bool ipas::obs::readRecordStore(RecordStore &S, const std::string &Path,
                                std::string *Err) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "'";
    return false;
  }
  std::string Data;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Data.append(Buf, N);
  bool ReadOk = !std::ferror(F);
  std::fclose(F);
  if (!ReadOk) {
    if (Err)
      *Err = "read error on '" + Path + "'";
    return false;
  }
  return parseRecordStore(S, Data, Err);
}
