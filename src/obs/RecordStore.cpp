//===- obs/RecordStore.cpp ----------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// File layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "IPASREC\0"
//   8       4     version (u32, currently 1)
//   12      8     payload length (u64, bytes following this field minus
//                 the trailing 8-byte checksum)
//   20      N     payload (see serializePayload)
//   20+N    8     FNV-1a 64 checksum of the payload bytes
//
// The payload is a flat sequence of fields; strings are u32 length +
// bytes, vectors are u64 count + elements. Doubles are stored as the
// IEEE-754 bit pattern in a u64, so round trips are bit-exact (including
// NaNs and signed zeros).
//
//===----------------------------------------------------------------------===//

#include "obs/RecordStore.h"

#include <cstdio>
#include <cstring>

using namespace ipas;
using namespace ipas::obs;

namespace {

constexpr char Magic[8] = {'I', 'P', 'A', 'S', 'R', 'E', 'C', '\0'};

constexpr uint64_t FnvOffset = 1469598103934665603ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

uint64_t fnv1a(const char *Data, size_t Len) {
  uint64_t H = FnvOffset;
  for (size_t I = 0; I != Len; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= FnvPrime;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Encoder
//===----------------------------------------------------------------------===//

class Encoder {
public:
  explicit Encoder(std::string &Out) : Out(Out) {}

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void f64(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S);
  }

private:
  std::string &Out;
};

//===----------------------------------------------------------------------===//
// Decoder
//===----------------------------------------------------------------------===//

class Decoder {
public:
  Decoder(const char *Data, size_t Len) : Data(Data), Len(Len) {}

  bool ok() const { return !Failed; }
  bool atEnd() const { return Pos == Len; }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(Data[Pos++]);
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(Data[Pos + I]))
           << (8 * I);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Data[Pos + I]))
           << (8 * I);
    Pos += 8;
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return std::string();
    std::string S(Data + Pos, N);
    Pos += N;
    return S;
  }
  /// A count that is about to size a container: reject values that could
  /// not possibly fit in the remaining bytes (at least one byte per
  /// element) so a corrupt count fails cleanly instead of allocating.
  uint64_t count(size_t MinElemSize) {
    uint64_t N = u64();
    if (ok() && MinElemSize > 0 && N > (Len - Pos) / MinElemSize)
      Failed = true;
    return Failed ? 0 : N;
  }

private:
  bool need(size_t N) {
    if (Failed || Len - Pos < N) {
      Failed = true;
      return false;
    }
    return true;
  }

  const char *Data;
  size_t Len;
  size_t Pos = 0;
  bool Failed = false;
};

void serializePayload(const RecordStore &S, Encoder &E) {
  E.str(S.ModuleName);
  E.str(S.EntryFunction);
  E.str(S.Label);
  E.u64(S.Seed);
  E.u64(S.CleanSteps);
  E.u64(S.CleanValueSteps);
  E.u64(S.PrunedRuns);
  E.u64(S.PrunedSites);
  E.u64(S.OutcomeTotals.size());
  for (uint64_t T : S.OutcomeTotals)
    E.u64(T);
  E.str(S.SourceText);
  E.u64(S.Functions.size());
  for (const std::string &F : S.Functions)
    E.str(F);
  E.u64(S.Instructions.size());
  for (const InstrRecord &I : S.Instructions) {
    E.u32(I.Id);
    E.u8(I.Opcode);
    E.u8(I.DupRole);
    E.u8(I.Predicted);
    E.u8(I.Protected_);
    E.u32(I.Line);
    E.u32(I.Col);
    E.u32(I.FunctionIndex);
    E.u64(I.DynExecCount);
    E.f64(I.Score);
  }
  E.u32(S.NumFeatures);
  E.u64(S.Features.size());
  for (double F : S.Features)
    E.f64(F);
  E.u64(S.Rows.size());
  for (const InjectionRow &R : S.Rows) {
    E.u32(R.InstructionId);
    E.u32(R.BitIndex);
    E.u64(R.TargetValueStep);
    E.u8(R.Outcome);
    E.u32(R.LatencyUs);
  }
}

bool parsePayload(RecordStore &S, Decoder &D, std::string *Err) {
  S.ModuleName = D.str();
  S.EntryFunction = D.str();
  S.Label = D.str();
  S.Seed = D.u64();
  S.CleanSteps = D.u64();
  S.CleanValueSteps = D.u64();
  S.PrunedRuns = D.u64();
  S.PrunedSites = D.u64();
  S.OutcomeTotals.resize(D.count(8));
  for (uint64_t &T : S.OutcomeTotals)
    T = D.u64();
  S.SourceText = D.str();
  S.Functions.resize(D.count(4));
  for (std::string &F : S.Functions)
    F = D.str();
  S.Instructions.resize(D.count(4 + 4 + 4 + 4 + 4 + 8 + 8));
  for (InstrRecord &I : S.Instructions) {
    I.Id = D.u32();
    I.Opcode = D.u8();
    I.DupRole = D.u8();
    I.Predicted = D.u8();
    I.Protected_ = D.u8();
    I.Line = D.u32();
    I.Col = D.u32();
    I.FunctionIndex = D.u32();
    I.DynExecCount = D.u64();
    I.Score = D.f64();
  }
  S.NumFeatures = D.u32();
  S.Features.resize(D.count(8));
  for (double &F : S.Features)
    F = D.f64();
  S.Rows.resize(D.count(4 + 4 + 8 + 1 + 4));
  for (InjectionRow &R : S.Rows) {
    R.InstructionId = D.u32();
    R.BitIndex = D.u32();
    R.TargetValueStep = D.u64();
    R.Outcome = D.u8();
    R.LatencyUs = D.u32();
  }
  if (!D.ok()) {
    if (Err)
      *Err = "record store payload truncated or corrupt";
    return false;
  }
  if (!D.atEnd()) {
    if (Err)
      *Err = "record store payload has trailing bytes";
    return false;
  }
  return true;
}

} // namespace

void RecordStore::tallyOutcomes() {
  OutcomeTotals.clear();
  for (const InjectionRow &R : Rows) {
    if (R.Outcome >= OutcomeTotals.size())
      OutcomeTotals.resize(R.Outcome + 1, 0);
    ++OutcomeTotals[R.Outcome];
  }
}

void ipas::obs::serializeRecordStore(const RecordStore &S, std::string &Out) {
  Out.clear();
  Out.append(Magic, sizeof(Magic));
  Encoder Header(Out);
  Header.u32(RecordStoreVersion);
  std::string Payload;
  Encoder E(Payload);
  serializePayload(S, E);
  Header.u64(Payload.size());
  Out.append(Payload);
  Encoder Footer(Out);
  Footer.u64(fnv1a(Payload.data(), Payload.size()));
}

bool ipas::obs::writeRecordStore(const RecordStore &S, const std::string &Path,
                                 std::string *Err) {
  std::string Bytes;
  serializeRecordStore(S, Bytes);
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = Written == Bytes.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok && Err)
    *Err = "short write to '" + Path + "'";
  return Ok;
}

bool ipas::obs::parseRecordStore(RecordStore &S, const std::string &Data,
                                 std::string *Err) {
  // Fixed header: magic + version + payload length.
  constexpr size_t HeaderSize = sizeof(Magic) + 4 + 8;
  if (Data.size() < HeaderSize) {
    if (Err)
      *Err = "not a record store (file too small)";
    return false;
  }
  if (std::memcmp(Data.data(), Magic, sizeof(Magic)) != 0) {
    if (Err)
      *Err = "not a record store (bad magic)";
    return false;
  }
  Decoder H(Data.data() + sizeof(Magic), Data.size() - sizeof(Magic));
  uint32_t Version = H.u32();
  if (Version == 0 || Version > RecordStoreVersion) {
    if (Err)
      *Err = "unsupported record store version " + std::to_string(Version) +
             " (reader supports up to " +
             std::to_string(RecordStoreVersion) + ")";
    return false;
  }
  uint64_t PayloadLen = H.u64();
  if (Data.size() != HeaderSize + PayloadLen + 8) {
    if (Err)
      *Err = "record store truncated (header promises " +
             std::to_string(PayloadLen) + " payload bytes)";
    return false;
  }
  const char *Payload = Data.data() + HeaderSize;
  uint64_t WantLE = 0;
  for (int I = 0; I != 8; ++I)
    WantLE |= static_cast<uint64_t>(static_cast<unsigned char>(
                  Data[HeaderSize + PayloadLen + I]))
              << (8 * I);
  if (fnv1a(Payload, PayloadLen) != WantLE) {
    if (Err)
      *Err = "record store checksum mismatch (corrupt file)";
    return false;
  }
  Decoder D(Payload, PayloadLen);
  return parsePayload(S, D, Err);
}

bool ipas::obs::readRecordStore(RecordStore &S, const std::string &Path,
                                std::string *Err) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "'";
    return false;
  }
  std::string Data;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Data.append(Buf, N);
  bool ReadOk = !std::ferror(F);
  std::fclose(F);
  if (!ReadOk) {
    if (Err)
      *Err = "read error on '" + Path + "'";
    return false;
  }
  return parseRecordStore(S, Data, Err);
}
