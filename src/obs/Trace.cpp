//===- obs/Trace.cpp -----------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Metrics.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

using namespace ipas;
using namespace ipas::obs;

//===----------------------------------------------------------------------===//
// Logging
//===----------------------------------------------------------------------===//

const char *ipas::obs::severityName(Severity S) {
  switch (S) {
  case Severity::Debug:
    return "debug";
  case Severity::Info:
    return "info";
  case Severity::Warn:
    return "warn";
  case Severity::Error:
    return "error";
  case Severity::Silent:
    return "silent";
  }
  return "<bad severity>";
}

static Severity levelFromEnv() {
  const char *V = std::getenv("IPAS_LOG_LEVEL");
  if (!V)
    return Severity::Warn;
  if (!std::strcmp(V, "debug"))
    return Severity::Debug;
  if (!std::strcmp(V, "info"))
    return Severity::Info;
  if (!std::strcmp(V, "warn"))
    return Severity::Warn;
  if (!std::strcmp(V, "error"))
    return Severity::Error;
  if (!std::strcmp(V, "silent") || !std::strcmp(V, "quiet"))
    return Severity::Silent;
  return Severity::Warn;
}

static std::atomic<Severity> Level{levelFromEnv()};

Severity ipas::obs::logLevel() {
  return Level.load(std::memory_order_relaxed);
}

void ipas::obs::setLogLevel(Severity S) {
  Level.store(S, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Clock
//===----------------------------------------------------------------------===//

uint64_t ipas::obs::monotonicMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Anchor = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            Anchor)
          .count());
}

//===----------------------------------------------------------------------===//
// AttrSet
//===----------------------------------------------------------------------===//

AttrSet &AttrSet::addRaw(std::string_view K, std::string Json) {
  KVs.emplace_back(std::string(K), std::move(Json));
  return *this;
}

AttrSet &AttrSet::add(std::string_view K, std::string_view V) {
  std::string J;
  J.reserve(V.size() + 2);
  J += '"';
  appendJsonEscaped(J, V);
  J += '"';
  return addRaw(K, std::move(J));
}

AttrSet &AttrSet::add(std::string_view K, uint64_t V) {
  return addRaw(K, std::to_string(V));
}

AttrSet &AttrSet::add(std::string_view K, int64_t V) {
  return addRaw(K, std::to_string(V));
}

AttrSet &AttrSet::add(std::string_view K, double V) {
  JsonWriter W;
  W.value(V);
  return addRaw(K, W.take());
}

AttrSet &AttrSet::add(std::string_view K, bool V) {
  return addRaw(K, V ? "true" : "false");
}

AttrSet &AttrSet::addHex(std::string_view K, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "\"0x%llx\"",
                static_cast<unsigned long long>(V));
  return addRaw(K, Buf);
}

AttrSet &AttrSet::merge(const AttrSet &Other) {
  KVs.insert(KVs.end(), Other.KVs.begin(), Other.KVs.end());
  return *this;
}

void AttrSet::writeInto(JsonWriter &W) const {
  for (const auto &[K, V] : KVs)
    W.key(K).rawValue(V);
}

//===----------------------------------------------------------------------===//
// TraceSink
//===----------------------------------------------------------------------===//

namespace {
struct SinkState {
  std::mutex Mu;
  FILE *File = nullptr;
};
} // namespace

static SinkState &sink() {
  static SinkState S;
  return S;
}

static std::atomic<bool> SinkOpen{false};

bool TraceSink::enabled() { return SinkOpen.load(std::memory_order_acquire); }

bool TraceSink::open(const std::string &Path, const AttrSet &HeaderAttrs) {
  SinkState &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.File)
    return false;
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  // Line buffering: every record ends with '\n', so each complete record
  // reaches the OS as it is written. A crash or abort() mid-run then
  // loses at most the record being formatted, never the tail of the
  // trace — which is exactly when the trace matters most.
  std::setvbuf(F, nullptr, _IOLBF, 1 << 16);
  S.File = F;
  SinkOpen.store(true, std::memory_order_release);
  setStatsEnabled(true);
  static bool AtExitRegistered = false;
  if (!AtExitRegistered) {
    AtExitRegistered = true;
    std::atexit([] { TraceSink::close(); });
  }

  JsonWriter W;
  W.beginObject();
  W.key("type").value("header");
  W.key("version").value(1);
  W.key("ts_us").value(monotonicMicros());
  W.key("wall_unix_s")
      .value(static_cast<int64_t>(
          std::chrono::duration_cast<std::chrono::seconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count()));
  W.key("attrs").beginObject();
  HeaderAttrs.writeInto(W);
  W.endObject();
  W.endObject();
  std::fputs(W.str().c_str(), S.File);
  std::fputc('\n', S.File);
  return true;
}

void TraceSink::close() {
  SinkState &S = sink();
  std::unique_lock<std::mutex> Lock(S.Mu);
  if (!S.File)
    return;
  JsonWriter W;
  W.beginObject();
  W.key("type").value("metrics");
  W.key("ts_us").value(monotonicMicros());
  W.key("metrics");
  MetricsRegistry::global().writeJson(W);
  W.endObject();
  std::fputs(W.str().c_str(), S.File);
  std::fputc('\n', S.File);
  std::fclose(S.File);
  S.File = nullptr;
  SinkOpen.store(false, std::memory_order_release);
}

void TraceSink::writeRecord(const std::string &JsonLine) {
  if (!enabled())
    return;
  SinkState &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (!S.File)
    return;
  std::fputs(JsonLine.c_str(), S.File);
  std::fputc('\n', S.File);
}

void TraceSink::event(std::string_view Name, const AttrSet &Attrs) {
  if (!enabled())
    return;
  JsonWriter W;
  W.beginObject();
  W.key("type").value("event");
  W.key("name").value(Name);
  W.key("ts_us").value(monotonicMicros());
  if (!Attrs.empty()) {
    W.key("attrs").beginObject();
    Attrs.writeInto(W);
    W.endObject();
  }
  W.endObject();
  writeRecord(W.str());
}

void ipas::obs::logMessage(Severity S, const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);

  if (logEnabled(S) && S != Severity::Silent)
    std::fprintf(stderr, "ipas: %s: %s\n", severityName(S), Buf);

  if (TraceSink::enabled()) {
    JsonWriter W;
    W.beginObject();
    W.key("type").value("log");
    W.key("sev").value(severityName(S));
    W.key("ts_us").value(monotonicMicros());
    W.key("msg").value(std::string_view(Buf));
    W.endObject();
    TraceSink::writeRecord(W.str());
  }
}

//===----------------------------------------------------------------------===//
// PhaseSpan
//===----------------------------------------------------------------------===//

namespace {
struct ThreadSpanState {
  int Tid = -1;
  std::vector<const std::string *> Stack; ///< Open span names, outermost first.
};
} // namespace

static thread_local ThreadSpanState TlSpans;
static std::atomic<int> NextTid{0};

static ThreadSpanState &threadSpans() {
  if (TlSpans.Tid < 0)
    TlSpans.Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return TlSpans;
}

PhaseSpan::PhaseSpan(std::string N, AttrSet A)
    : Name(std::move(N)), Attrs(std::move(A)),
      StartUs(monotonicMicros()) {
  ThreadSpanState &TS = threadSpans();
  Tid = TS.Tid;
  if (!TS.Stack.empty())
    Parent = *TS.Stack.back();
  Depth = static_cast<unsigned>(TS.Stack.size()) + 1;
  TS.Stack.push_back(&Name);
}

PhaseSpan::~PhaseSpan() {
  ThreadSpanState &TS = threadSpans();
  assert(!TS.Stack.empty() && TS.Stack.back() == &Name &&
         "phase spans must close in LIFO order on their own thread");
  TS.Stack.pop_back();
  if (!TraceSink::enabled())
    return;
  uint64_t EndUs = monotonicMicros();
  JsonWriter W;
  W.beginObject();
  W.key("type").value("span");
  W.key("name").value(Name);
  W.key("tid").value(Tid);
  W.key("depth").value(Depth);
  if (!Parent.empty())
    W.key("parent").value(Parent);
  W.key("start_us").value(StartUs);
  W.key("end_us").value(EndUs);
  W.key("dur_us").value(EndUs - StartUs);
  if (!Attrs.empty()) {
    W.key("attrs").beginObject();
    Attrs.writeInto(W);
    W.endObject();
  }
  W.endObject();
  TraceSink::writeRecord(W.str());
}

void PhaseSpan::addAttr(const AttrSet &More) { Attrs.merge(More); }

double PhaseSpan::seconds() const {
  return static_cast<double>(monotonicMicros() - StartUs) / 1e6;
}
