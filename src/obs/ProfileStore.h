//===- obs/ProfileStore.h - .ipprof cost-profile store --------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned, checksummed columnar store for one profiled clean run
/// (`.ipprof`), written by ipas-cc --profile-out and the pipeline's
/// ProfileDir, read by tools/ipas-profile. Same envelope as the .iprec /
/// .ipprop stores (BinCodec.h): magic, version, payload length, payload,
/// FNV-1a checksum — readers reject truncation, corruption, and newer
/// versions.
///
/// Contents: per-instruction dynamic execution counts and model cycles,
/// the per-opcode cycle model they were priced with, the calling-context
/// tree with (function, line, context) cost triples (context mode), and —
/// when the run was attributed against an unprotected baseline build —
/// the per-original-site protection-overhead table that the budget
/// optimizer consumes. See docs/OBSERVABILITY.md for the full layout.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_OBS_PROFILESTORE_H
#define IPAS_OBS_PROFILESTORE_H

#include <cstdint>
#include <string>
#include <vector>

namespace ipas {
namespace obs {

constexpr uint32_t ProfileStoreVersion = 1;

/// ProfileStore::Mode values.
enum : uint8_t { ProfileCounting = 0, ProfileContext = 1 };

/// One static instruction of the profiled module.
struct ProfInstr {
  uint32_t Id = 0;
  uint8_t Opcode = 0;
  uint8_t DupRole = 0; ///< ir::DupRole raw value (shadow/check provenance).
  uint32_t Line = 0;   ///< Source line; 0 = no location.
  uint32_t Col = 0;
  uint32_t FunctionIndex = 0;
  uint64_t ExecCount = 0; ///< Dynamic executions in the profiled run.
  uint64_t Cycles = 0;    ///< ExecCount × model cycles of Opcode.
};

/// One calling-context-tree node (context mode only). Node 0 is the entry
/// function's root context; following Parent links names the call path.
struct ProfContext {
  uint32_t Id = 0;
  uint32_t Parent = UINT32_MAX; ///< UINT32_MAX at the root.
  uint32_t FunctionIndex = 0;
  uint64_t Steps = 0;  ///< Instructions executed in this context (exclusive).
  uint64_t Cycles = 0; ///< Model cycles of those instructions (exclusive).
};

/// Cost of one (function, source line, context) triple (context mode).
struct ProfLineCost {
  uint32_t ContextId = 0;
  uint32_t FunctionIndex = 0;
  uint32_t Line = 0; ///< 0 = instructions with no source location.
  uint64_t Count = 0;
  uint64_t Cycles = 0;
};

/// Protection overhead charged to one ORIGINAL-module site. Present when
/// the profiled (protected) run was attributed against a baseline build:
/// every cycle the protected module spends is charged to the original
/// site whose protection caused it — the instruction itself, plus its
/// Shadow and Check clones via dupLink. The attribution is
/// conservative-exact: Σ marginalCycles over all sites equals the total
/// protected-minus-baseline cycle delta.
struct ProfSiteOverhead {
  uint32_t SiteId = 0; ///< Instruction id in the BASELINE module.
  uint8_t Opcode = 0;
  uint8_t Protected_ = 0; ///< 1 when the site was duplicated.
  uint32_t Line = 0;
  uint32_t Col = 0;
  uint32_t FunctionIndex = 0;
  uint64_t BaseCycles = 0;   ///< Site cost in the baseline run.
  uint64_t ProtCycles = 0;   ///< The surviving original's cost, protected run.
  uint64_t ShadowCycles = 0; ///< Its Shadow clones' cost, protected run.
  uint64_t CheckCycles = 0;  ///< Its Check clones' cost, protected run.
};

/// Added cycles this site's protection cost (negative only if protection
/// somehow shortened execution, which duplication never does).
inline int64_t marginalCycles(const ProfSiteOverhead &S) {
  return static_cast<int64_t>(S.ProtCycles + S.ShadowCycles +
                              S.CheckCycles) -
         static_cast<int64_t>(S.BaseCycles);
}

struct ProfileStore {
  std::string ModuleName;
  std::string EntryFunction;
  std::string Label;
  /// MiniC source of the profiled build (for the per-line heatmap);
  /// empty when unavailable.
  std::string SourceText;
  uint8_t Mode = ProfileCounting;
  uint64_t CleanSteps = 0;  ///< Dynamic instructions in the profiled run.
  uint64_t TotalCycles = 0; ///< Model cycles of the profiled run.
  uint8_t HasOverhead = 0;  ///< 1 when Overheads/BaselineTotalCycles are set.
  uint64_t BaselineTotalCycles = 0;
  /// The cycle model used, indexed by opcode — readers re-derive costs
  /// and diffs refuse to compare stores priced with different models.
  std::vector<uint32_t> CostModelCycles;
  std::vector<std::string> Functions; ///< By module function index.
  std::vector<ProfInstr> Instructions;
  std::vector<ProfContext> Contexts;
  std::vector<ProfLineCost> LineCosts;
  std::vector<ProfSiteOverhead> Overheads;
};

void serializeProfileStore(const ProfileStore &S, std::string &Out);
bool writeProfileStore(const ProfileStore &S, const std::string &Path,
                       std::string *Err);
bool parseProfileStore(ProfileStore &S, const std::string &Data,
                       std::string *Err);
bool readProfileStore(ProfileStore &S, const std::string &Path,
                      std::string *Err);

} // namespace obs
} // namespace ipas

#endif // IPAS_OBS_PROFILESTORE_H
