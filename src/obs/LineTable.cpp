//===- obs/LineTable.cpp ------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/LineTable.h"

#include <cstdio>

using namespace ipas;
using namespace ipas::obs;

std::vector<std::string> ipas::obs::splitSourceLines(const std::string &Text) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Text) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else if (C != '\r') {
      Cur.push_back(C);
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

void LineTable::add(uint32_t Line, size_t Col, uint64_t V) {
  std::vector<uint64_t> &Cells = Rows[Line];
  if (Cells.size() < Headers.size())
    Cells.resize(Headers.size(), 0);
  if (Col < Cells.size())
    Cells[Col] += V;
}

void LineTable::printRow(uint32_t Line, const std::vector<uint64_t> *Cells,
                         const char *Text) const {
  char Label[16];
  if (Line)
    std::snprintf(Label, sizeof Label, "%5u", Line);
  else
    std::snprintf(Label, sizeof Label, "%5s", "?");
  std::printf("%s", Label);
  for (size_t C = 0; C != Headers.size(); ++C)
    std::printf(" %6llu",
                Cells && C < Cells->size()
                    ? static_cast<unsigned long long>((*Cells)[C])
                    : 0ULL);
  std::printf("  %s\n", Text);
}

void LineTable::print(const std::string &SourceText, bool WithSource) const {
  std::printf("%5s", "line");
  for (const std::string &H : Headers)
    std::printf(" %6s", H.c_str());
  std::printf("  %s\n", WithSource ? "source" : "");

  std::vector<std::string> Lines =
      WithSource ? splitSourceLines(SourceText)
                 : std::vector<std::string>();
  if (WithSource && !Lines.empty()) {
    for (uint32_t L = 1; L <= Lines.size(); ++L) {
      auto It = Rows.find(L);
      printRow(L, It != Rows.end() ? &It->second : nullptr,
               Lines[L - 1].c_str());
    }
    // Data on line 0 (no location) or past the end of the source still
    // has to appear, or the columns would not sum to the totals.
    for (const auto &[Line, Cells] : Rows)
      if (Line == 0 || Line > Lines.size())
        printRow(Line, &Cells, "");
  } else {
    for (const auto &[Line, Cells] : Rows)
      printRow(Line, &Cells, "");
  }

  std::vector<uint64_t> Totals(Headers.size(), 0);
  for (const auto &[Line, Cells] : Rows)
    for (size_t C = 0; C != Cells.size() && C != Totals.size(); ++C)
      Totals[C] += Cells[C];
  printRow(0, &Totals, "<total>");
}
