//===- obs/Trace.h - Structured tracing, spans, and leveled logging -------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured side of the telemetry subsystem (docs/OBSERVABILITY.md
/// has the full schema):
///
///  - TraceSink: a process-wide JSONL sink. Each record is one JSON
///    object per line with a `type` of `header`, `span`, `event`, `log`,
///    or `metrics`. Timestamps are monotonic microseconds from a
///    process-start anchor, so traces are insensitive to wall-clock
///    steps.
///  - PhaseSpan: RAII scoped span. Construction pushes onto a
///    thread-local span stack (recording depth and parent); destruction
///    emits the span record with its duration. Spans also double as
///    plain monotonic stopwatches via seconds(), so instrumented code
///    can keep feeding existing `*Seconds` fields.
///  - AttrSet: key/value attributes attached to headers, spans, and
///    events. Values are pre-rendered JSON fragments, so building one is
///    cheap and allocation-light.
///  - logMessage and friends: a severity-leveled logger replacing raw
///    fprintf in library code. Messages below the active level are
///    suppressed on stderr; when a sink is open every message is also
///    mirrored into the trace as a `log` record.
///
/// Everything is safe to call with no sink open (events no-op, spans
/// still measure time) and thread-safe with one open.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_OBS_TRACE_H
#define IPAS_OBS_TRACE_H

#include "obs/Json.h"

#include <cstdarg>
#include <cstdint>
#include <string>
#include <string_view>

namespace ipas {
namespace obs {

//===----------------------------------------------------------------------===//
// Leveled logging
//===----------------------------------------------------------------------===//

enum class Severity : uint8_t { Debug = 0, Info, Warn, Error, Silent };

const char *severityName(Severity S);

/// Active stderr threshold. Defaults to Warn (library code is quiet);
/// initialized once from IPAS_LOG_LEVEL (debug/info/warn/error/silent)
/// when set. `-v` maps to Info, `-q` to Error.
Severity logLevel();
void setLogLevel(Severity S);
inline bool logEnabled(Severity S) { return S >= logLevel(); }

/// printf-style message: to stderr when \p S passes the level, and into
/// the open trace sink (any level) as a `log` record.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void logMessage(Severity S, const char *Fmt, ...);

//===----------------------------------------------------------------------===//
// Attributes
//===----------------------------------------------------------------------===//

/// An ordered set of (key, pre-rendered JSON value) attributes.
class AttrSet {
public:
  AttrSet &add(std::string_view K, std::string_view V);
  AttrSet &add(std::string_view K, const char *V) {
    return add(K, std::string_view(V));
  }
  AttrSet &add(std::string_view K, uint64_t V);
  AttrSet &add(std::string_view K, int64_t V);
  AttrSet &add(std::string_view K, int V) {
    return add(K, static_cast<int64_t>(V));
  }
  AttrSet &add(std::string_view K, unsigned V) {
    return add(K, static_cast<uint64_t>(V));
  }
  AttrSet &add(std::string_view K, double V);
  AttrSet &add(std::string_view K, bool V);
  /// Renders \p V as a "0x..." hex string — exact for 64-bit seeds and
  /// self-describing in the trace.
  AttrSet &addHex(std::string_view K, uint64_t V);

  bool empty() const { return KVs.empty(); }
  /// Appends every pair of \p Other after this set's pairs.
  AttrSet &merge(const AttrSet &Other);
  /// Appends all pairs into an already-open JSON object.
  void writeInto(JsonWriter &W) const;

private:
  AttrSet &addRaw(std::string_view K, std::string Json);
  std::vector<std::pair<std::string, std::string>> KVs;
};

//===----------------------------------------------------------------------===//
// Monotonic clock
//===----------------------------------------------------------------------===//

/// Microseconds since a process-start anchor (steady clock).
uint64_t monotonicMicros();

//===----------------------------------------------------------------------===//
// TraceSink
//===----------------------------------------------------------------------===//

class TraceSink {
public:
  /// Opens the process-wide sink at \p Path and writes the header record
  /// (version, wall-clock anchor, \p HeaderAttrs). Returns false if the
  /// file cannot be created or a sink is already open. Opening a sink
  /// also turns on statsEnabled().
  static bool open(const std::string &Path,
                   const AttrSet &HeaderAttrs = AttrSet());
  /// Writes a final `metrics` record (full registry snapshot) and closes.
  /// Safe to call with no sink open. Also runs at exit.
  static void close();
  static bool enabled();

  /// Emits an `event` record.
  static void event(std::string_view Name,
                    const AttrSet &Attrs = AttrSet());
  /// Appends one pre-rendered JSONL record (no trailing newline).
  static void writeRecord(const std::string &JsonLine);

private:
  TraceSink() = default;
};

//===----------------------------------------------------------------------===//
// PhaseSpan
//===----------------------------------------------------------------------===//

/// RAII scoped phase span. Nesting is tracked per thread; the emitted
/// record carries the thread id, depth (1 = top level), and parent span
/// name so `ipas-report --check` can verify proper nesting.
class PhaseSpan {
public:
  explicit PhaseSpan(std::string Name) : PhaseSpan(std::move(Name), AttrSet()) {}
  PhaseSpan(std::string Name, AttrSet Attrs);
  ~PhaseSpan();

  PhaseSpan(const PhaseSpan &) = delete;
  PhaseSpan &operator=(const PhaseSpan &) = delete;

  /// Merges more attributes before the span closes.
  void addAttr(const AttrSet &More);
  /// Elapsed seconds since construction (works with no sink open).
  double seconds() const;

private:
  std::string Name;
  AttrSet Attrs;
  std::string Parent;
  uint64_t StartUs = 0;
  unsigned Depth = 0;
  int Tid = 0;
};

} // namespace obs
} // namespace ipas

#endif // IPAS_OBS_TRACE_H
