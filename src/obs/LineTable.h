//===- obs/LineTable.h - Per-source-line table renderer -------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The annotated per-source-line table that ipas-inspect's outcome
/// heatmap and ipas-profile's cost heatmap share: a fixed-width numeric
/// column block keyed by source line, rendered against the program text,
/// with rows for locationless data (line 0, shown as "?") and lines past
/// the end of the source, and a trailing <total> row — so the columns
/// always sum to the campaign/profile totals no matter how patchy the
/// debug locations are.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_OBS_LINETABLE_H
#define IPAS_OBS_LINETABLE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ipas {
namespace obs {

/// Splits \p Text into lines ('\n' separated, '\r' dropped); a trailing
/// unterminated line counts.
std::vector<std::string> splitSourceLines(const std::string &Text);

/// Accumulator + renderer for one table. Columns are fixed at
/// construction; cells accumulate via add().
class LineTable {
public:
  explicit LineTable(std::vector<std::string> ColumnHeaders)
      : Headers(std::move(ColumnHeaders)) {}

  /// Adds \p V into column \p Col of \p Line. Line 0 is the "no source
  /// location" bucket. Creates the row even when V is 0, so callers
  /// control exactly which lines appear in the no-source listing.
  void add(uint32_t Line, size_t Col, uint64_t V);

  /// True when any row was added.
  bool empty() const { return Rows.empty(); }

  /// Renders the table: a header row, one row per line of \p SourceText
  /// (zeros when no data), rows for line 0 and past-end lines, then a
  /// <total> row. With \p WithSource false (or empty source) only lines
  /// with data are listed and no source text is shown.
  void print(const std::string &SourceText, bool WithSource) const;

private:
  void printRow(uint32_t Line, const std::vector<uint64_t> *Cells,
                const char *Text) const;

  std::vector<std::string> Headers;
  std::map<uint32_t, std::vector<uint64_t>> Rows;
};

} // namespace obs
} // namespace ipas

#endif // IPAS_OBS_LINETABLE_H
