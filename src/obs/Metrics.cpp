//===- obs/Metrics.cpp ---------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

#include <cstdio>
#include <sstream>

using namespace ipas;
using namespace ipas::obs;

uint64_t Histogram::count() const {
  uint64_t N = 0;
  for (const auto &B : Bins)
    N += B.load(std::memory_order_relaxed);
  return N;
}

double Histogram::mean() const {
  uint64_t N = count();
  return N ? static_cast<double>(sum()) / static_cast<double>(N) : 0.0;
}

uint64_t Histogram::approxQuantile(double Q) const {
  uint64_t N = count();
  if (!N)
    return 0;
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(N - 1));
  uint64_t Seen = 0;
  for (unsigned B = 0; B != NumBins; ++B) {
    Seen += binCount(B);
    if (Seen > Rank)
      return binUpperEdge(B);
  }
  return binUpperEdge(NumBins - 1);
}

void Histogram::reset() {
  for (auto &B : Bins)
    B.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
}

MetricsRegistry &MetricsRegistry::global() {
  // Intentionally leaked: trace sinks snapshot the registry from atexit
  // handlers and subsystem destructors flush into it during static
  // teardown, so it must outlive every other static.
  static MetricsRegistry *R = new MetricsRegistry;
  return *R;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

std::string MetricsRegistry::renderText() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  for (const auto &[Name, C] : Counters)
    OS << Name << " " << C->value() << "\n";
  OS.precision(6);
  for (const auto &[Name, G] : Gauges)
    OS << Name << " " << G->value() << "\n";
  for (const auto &[Name, H] : Histograms)
    OS << Name << " count=" << H->count() << " sum=" << H->sum()
       << " mean=" << H->mean() << " p50~" << H->approxQuantile(0.5)
       << " p95~" << H->approxQuantile(0.95) << "\n";
  return OS.str();
}

void MetricsRegistry::writeJson(JsonWriter &W) const {
  std::lock_guard<std::mutex> Lock(Mu);
  W.beginObject();
  W.key("counters").beginObject();
  for (const auto &[Name, C] : Counters)
    W.key(Name).value(C->value());
  W.endObject();
  W.key("gauges").beginObject();
  for (const auto &[Name, G] : Gauges)
    W.key(Name).value(G->value());
  W.endObject();
  W.key("histograms").beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name).beginObject();
    W.key("count").value(H->count());
    W.key("sum").value(H->sum());
    W.key("mean").value(H->mean());
    W.key("bins").beginArray();
    for (unsigned B = 0; B != Histogram::NumBins; ++B) {
      uint64_t N = H->binCount(B);
      if (!N)
        continue;
      W.beginArray()
          .value(Histogram::binLowerEdge(B))
          .value(Histogram::binUpperEdge(B))
          .value(N)
          .endArray();
    }
    W.endArray();
    W.endObject();
  }
  W.endObject();
  W.endObject();
}

void MetricsRegistry::resetAll() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

static std::atomic<bool> StatsOn{false};

bool ipas::obs::statsEnabled() {
  return StatsOn.load(std::memory_order_relaxed);
}

void ipas::obs::setStatsEnabled(bool On) {
  StatsOn.store(On, std::memory_order_relaxed);
}
