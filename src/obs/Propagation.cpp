//===- obs/Propagation.cpp ----------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// File layout (all integers little-endian), mirroring RecordStore:
//
//   offset  size  field
//   0       8     magic "IPASPROP"
//   8       4     version (u32, currently 1)
//   12      8     payload length (u64)
//   20      N     payload (see serializePayload)
//   20+N    8     FNV-1a 64 checksum of the payload bytes
//
//===----------------------------------------------------------------------===//

#include "obs/Propagation.h"

#include "obs/BinCodec.h"

#include <cstdio>
#include <cstring>

using namespace ipas;
using namespace ipas::obs;

namespace {

constexpr char Magic[8] = {'I', 'P', 'A', 'S', 'P', 'R', 'O', 'P'};

void serializePayload(const PropagationStore &S, Encoder &E) {
  E.str(S.ModuleName);
  E.str(S.EntryFunction);
  E.str(S.Label);
  E.u64(S.Seed);
  E.u64(S.SampleEvery);
  E.u64(S.TotalRuns);
  E.u64(S.CleanSteps);
  E.u64(S.CleanValueSteps);
  E.u64(S.Functions.size());
  for (const std::string &F : S.Functions)
    E.str(F);
  E.u64(S.Instructions.size());
  for (const PropInstr &I : S.Instructions) {
    E.u32(I.Id);
    E.u8(I.Opcode);
    E.u8(I.StaticBenign);
    E.u8(I.Predicted);
    E.u32(I.Line);
    E.u32(I.Col);
    E.u32(I.FunctionIndex);
    E.u32(I.StaticSinkMask);
  }
  E.u64(S.Records.size());
  for (const PropRecord &R : S.Records) {
    E.u64(R.RunIndex);
    E.u32(R.InstructionId);
    E.u32(R.BitIndex);
    E.u64(R.TargetValueStep);
    E.u8(R.Outcome);
    E.u8(R.ControlDiverged);
    E.u32(R.DynReachMask);
    E.u32(R.PropagationDepth);
    E.u64(R.CorruptedValues);
    E.u64(R.InjectionStep);
    E.u64(R.FirstOutputStep);
    E.u64(R.MaskedLogical);
    E.u64(R.MaskedOverwrite);
    E.u64(R.MaskedDead);
    E.u64(R.Edges.size());
    for (const PropEdge &Ed : R.Edges) {
      E.u32(Ed.SrcId);
      E.u32(Ed.DstId);
      E.u8(Ed.Kind);
      E.u32(Ed.Count);
    }
    E.u64(R.Masks.size());
    for (const PropMaskEvent &M : R.Masks) {
      E.u8(M.Opcode);
      E.u8(M.Kind);
      E.u32(M.Count);
    }
  }
}

bool parsePayload(PropagationStore &S, Decoder &D, std::string *Err) {
  S.ModuleName = D.str();
  S.EntryFunction = D.str();
  S.Label = D.str();
  S.Seed = D.u64();
  S.SampleEvery = D.u64();
  S.TotalRuns = D.u64();
  S.CleanSteps = D.u64();
  S.CleanValueSteps = D.u64();
  S.Functions.resize(D.count(4));
  for (std::string &F : S.Functions)
    F = D.str();
  S.Instructions.resize(D.count(4 + 1 + 1 + 1 + 4 + 4 + 4 + 4));
  for (PropInstr &I : S.Instructions) {
    I.Id = D.u32();
    I.Opcode = D.u8();
    I.StaticBenign = D.u8();
    I.Predicted = D.u8();
    I.Line = D.u32();
    I.Col = D.u32();
    I.FunctionIndex = D.u32();
    I.StaticSinkMask = D.u32();
  }
  // Fixed portion of a PropRecord (everything before the two vectors).
  S.Records.resize(D.count(8 + 4 + 4 + 8 + 1 + 1 + 4 + 4 + 7 * 8 + 8));
  for (PropRecord &R : S.Records) {
    R.RunIndex = D.u64();
    R.InstructionId = D.u32();
    R.BitIndex = D.u32();
    R.TargetValueStep = D.u64();
    R.Outcome = D.u8();
    R.ControlDiverged = D.u8();
    R.DynReachMask = D.u32();
    R.PropagationDepth = D.u32();
    R.CorruptedValues = D.u64();
    R.InjectionStep = D.u64();
    R.FirstOutputStep = D.u64();
    R.MaskedLogical = D.u64();
    R.MaskedOverwrite = D.u64();
    R.MaskedDead = D.u64();
    R.Edges.resize(D.count(4 + 4 + 1 + 4));
    for (PropEdge &Ed : R.Edges) {
      Ed.SrcId = D.u32();
      Ed.DstId = D.u32();
      Ed.Kind = D.u8();
      Ed.Count = D.u32();
    }
    R.Masks.resize(D.count(1 + 1 + 4));
    for (PropMaskEvent &M : R.Masks) {
      M.Opcode = D.u8();
      M.Kind = D.u8();
      M.Count = D.u32();
    }
  }
  if (!D.ok()) {
    if (Err)
      *Err = "propagation store payload truncated or corrupt";
    return false;
  }
  if (!D.atEnd()) {
    if (Err)
      *Err = "propagation store payload has trailing bytes";
    return false;
  }
  return true;
}

} // namespace

void ipas::obs::serializePropagationStore(const PropagationStore &S,
                                          std::string &Out) {
  Out.clear();
  Out.append(Magic, sizeof(Magic));
  Encoder Header(Out);
  Header.u32(PropStoreVersion);
  std::string Payload;
  Encoder E(Payload);
  serializePayload(S, E);
  Header.u64(Payload.size());
  Out.append(Payload);
  Encoder Footer(Out);
  Footer.u64(fnv1a(Payload.data(), Payload.size()));
}

bool ipas::obs::writePropagationStore(const PropagationStore &S,
                                      const std::string &Path,
                                      std::string *Err) {
  std::string Bytes;
  serializePropagationStore(S, Bytes);
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = Written == Bytes.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok && Err)
    *Err = "short write to '" + Path + "'";
  return Ok;
}

bool ipas::obs::parsePropagationStore(PropagationStore &S,
                                      const std::string &Data,
                                      std::string *Err) {
  // Fixed header: magic + version + payload length.
  constexpr size_t HeaderSize = sizeof(Magic) + 4 + 8;
  if (Data.size() < HeaderSize) {
    if (Err)
      *Err = "not a propagation store (file too small)";
    return false;
  }
  if (std::memcmp(Data.data(), Magic, sizeof(Magic)) != 0) {
    if (Err)
      *Err = "not a propagation store (bad magic)";
    return false;
  }
  Decoder H(Data.data() + sizeof(Magic), Data.size() - sizeof(Magic));
  uint32_t Version = H.u32();
  if (Version == 0 || Version > PropStoreVersion) {
    if (Err)
      *Err = "unsupported propagation store version " +
             std::to_string(Version) + " (reader supports up to " +
             std::to_string(PropStoreVersion) + ")";
    return false;
  }
  uint64_t PayloadLen = H.u64();
  if (Data.size() != HeaderSize + PayloadLen + 8) {
    if (Err)
      *Err = "propagation store truncated (header promises " +
             std::to_string(PayloadLen) + " payload bytes)";
    return false;
  }
  const char *Payload = Data.data() + HeaderSize;
  uint64_t WantLE = 0;
  for (int I = 0; I != 8; ++I)
    WantLE |= static_cast<uint64_t>(static_cast<unsigned char>(
                  Data[HeaderSize + PayloadLen + I]))
              << (8 * I);
  if (fnv1a(Payload, PayloadLen) != WantLE) {
    if (Err)
      *Err = "propagation store checksum mismatch (corrupt file)";
    return false;
  }
  Decoder D(Payload, PayloadLen);
  return parsePayload(S, D, Err);
}

bool ipas::obs::readPropagationStore(PropagationStore &S,
                                     const std::string &Path,
                                     std::string *Err) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "'";
    return false;
  }
  std::string Data;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Data.append(Buf, N);
  bool ReadOk = !std::ferror(F);
  std::fclose(F);
  if (!ReadOk) {
    if (Err)
      *Err = "read error on '" + Path + "'";
    return false;
  }
  return parsePropagationStore(S, Data, Err);
}
