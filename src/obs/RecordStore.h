//===- obs/RecordStore.h - Campaign injection provenance store (.iprec) ---===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact, versioned, columnar record of one fault-injection campaign:
/// per-injection rows (instruction id, bit, outcome, latency) plus a
/// per-instruction side table (opcode, duplication role, debug location,
/// dynamic execution count, static features, classifier score/prediction)
/// and enough campaign metadata — including the MiniC source text — to be
/// analysed standalone by `ipas-inspect` without re-running anything.
///
/// This lives in the obs layer, below ir/ and fault/, so opcode, role,
/// and outcome fields are raw integer codes; the fault layer (which can
/// see both sides) fills them in (fault/RecordBuild.h) and tools decode
/// them. Serialization is explicit little-endian byte packing with an
/// FNV-1a payload checksum, so a write→read→write cycle is bit-identical
/// and truncated or corrupt files are rejected loudly.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_OBS_RECORDSTORE_H
#define IPAS_OBS_RECORDSTORE_H

#include <cstdint>
#include <string>
#include <vector>

namespace ipas {
namespace obs {

/// Per-instruction provenance (side table; one entry per static
/// instruction, in id order).
struct InstrRecord {
  uint32_t Id = 0;        ///< Module-wide instruction id.
  uint8_t Opcode = 0;     ///< Raw ir::Opcode code.
  uint8_t DupRole = 0;    ///< Raw ir::DupRole code.
  uint8_t Predicted = 0;  ///< Classifier verdict: 0 none, 1 protect, 2 skip.
  uint8_t Protected_ = 0; ///< 1 if the evaluated module protects this id.
  uint32_t Line = 0;      ///< DebugLoc line (0 = unknown).
  uint32_t Col = 0;       ///< DebugLoc column.
  uint32_t FunctionIndex = 0; ///< Index into RecordStore::Functions.
  uint64_t DynExecCount = 0;  ///< Executions in the clean run (0 if untraced).
  double Score = 0.0;         ///< Classifier decision value (0 if none).
};

/// Per-injection row (one per campaign run, in campaign order).
struct InjectionRow {
  uint32_t InstructionId = 0;
  uint32_t BitIndex = 0;
  uint64_t TargetValueStep = 0;
  uint8_t Outcome = 0;   ///< Raw fault::Outcome code.
  uint32_t LatencyUs = 0; ///< Wall time of this injected run.
};

/// Per-function incremental-campaign metadata (format v2+). Present only
/// when the campaign ran through fault/Incremental.h; one entry per
/// module function, in module order. Rows are function-major in the same
/// order, so prefix sums over PlannedRuns locate each function's rows.
struct FunctionMeta {
  uint32_t FunctionIndex = 0; ///< Index into RecordStore::Functions.
  uint64_t ContentHash = 0;   ///< Canonical body hash (FunctionSummary.h).
  uint64_t ReachableHash = 0; ///< Hash over the reachable callee set.
  uint64_t ProfileHash = 0;   ///< Clean-run (site, value) stream hash.
  uint64_t FirstInstructionId = 0; ///< Local site = instruction id - this.
  uint64_t LocalValueSteps = 0; ///< Clean-run value steps inside the fn.
  uint64_t PlannedRuns = 0;     ///< Injections apportioned to the fn.
  uint64_t ReusedRuns = 0;      ///< Rows carried over from the prior store.
  uint8_t Invalidation = 0;     ///< Raw fault::InvalidationReason code.
};

/// Classifier-verdict codes for InstrRecord::Predicted.
enum : uint8_t {
  PredictNone = 0,    ///< No classifier ran.
  PredictProtect = 1, ///< Model said "vulnerable, protect".
  PredictSkip = 2,    ///< Model said "benign, skip".
};

/// In-memory image of one `.iprec` file.
struct RecordStore {
  // Campaign metadata.
  std::string ModuleName;
  std::string EntryFunction; ///< Function the harness drives.
  std::string Label;         ///< Campaign label (mirrors trace events).
  uint64_t Seed = 0;
  uint64_t CleanSteps = 0;
  uint64_t CleanValueSteps = 0;
  uint64_t PrunedRuns = 0;
  uint64_t PrunedSites = 0;
  std::vector<uint64_t> OutcomeTotals; ///< Indexed by raw outcome code.

  /// MiniC source the module was compiled from (empty when unavailable);
  /// ipas-inspect renders its heatmap against these lines.
  std::string SourceText;

  std::vector<std::string> Functions; ///< Function-name table.
  std::vector<InstrRecord> Instructions;

  /// Static feature matrix, Instructions.size() x NumFeatures row-major
  /// (empty when features were not extracted).
  uint32_t NumFeatures = 0;
  std::vector<double> Features;

  std::vector<InjectionRow> Rows;

  /// Incremental-campaign function table (empty unless the store was
  /// written by an --incremental campaign; always empty in v1 files).
  std::vector<FunctionMeta> FunctionMetas;

  /// Recomputes OutcomeTotals from Rows (codes < 16).
  void tallyOutcomes();
};

/// Current serialization version. Readers reject newer files and still
/// parse older ones (v1 files simply have no FunctionMetas section).
constexpr uint32_t RecordStoreVersion = 2;

/// Serializes \p S to \p Path. Returns false and sets \p Err on failure.
bool writeRecordStore(const RecordStore &S, const std::string &Path,
                      std::string *Err = nullptr);

/// Serializes \p S into \p Out (the exact file bytes).
void serializeRecordStore(const RecordStore &S, std::string &Out);

/// Parses \p Path into \p S. Returns false and sets \p Err on bad magic,
/// unsupported version, truncation, or checksum mismatch.
bool readRecordStore(RecordStore &S, const std::string &Path,
                     std::string *Err = nullptr);

/// Parses the byte image \p Data.
bool parseRecordStore(RecordStore &S, const std::string &Data,
                      std::string *Err = nullptr);

} // namespace obs
} // namespace ipas

#endif // IPAS_OBS_RECORDSTORE_H
