//===- obs/SummaryStore.h - Function-summary store (.ipsum) ---------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent image of the interprocedural SOC-sensitivity summaries
/// (analysis/FunctionSummary.h): one record per function carrying its
/// canonical content hash, reachable-set hash, direct-callee names, and
/// per-argument channels. Written by `ipas-cc --summary-out`, consumed by
/// tooling that wants to diff analysis results across builds without
/// recompiling anything.
///
/// Like the other obs stores this layer is dependency-free: sink masks
/// are raw SocSinkKind bit unions, and the format is versioned,
/// little-endian, and FNV-1a checksummed, so truncation and corruption
/// are rejected loudly (see obs/BinCodec.h).
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_OBS_SUMMARYSTORE_H
#define IPAS_OBS_SUMMARYSTORE_H

#include <cstdint>
#include <string>
#include <vector>

namespace ipas {
namespace obs {

/// One formal argument's channel: what a corrupted argument reaches
/// inside the callee subtree.
struct SummaryArg {
  uint32_t SinkMask = 0;      ///< Raw SocSinkKind bit union.
  uint8_t FlowsToReturn = 0;  ///< 1 when it can corrupt the return value.
  uint32_t MinSinkDistance = 0xffffffffu; ///< Value-flow hops (max = none).
};

/// One function's summary record.
struct SummaryFunc {
  std::string Name;
  uint64_t ContentHash = 0;
  uint64_t ReachableHash = 0;
  std::vector<std::string> Callees; ///< Direct callees, by name.
  std::vector<SummaryArg> Args;     ///< Indexed by argument position.
};

/// In-memory image of one `.ipsum` file.
struct SummaryStore {
  std::string ModuleName;
  std::string EntryFunction;
  std::vector<SummaryFunc> Functions; ///< In module order.
};

/// Current serialization version. Readers reject newer files.
constexpr uint32_t SummaryStoreVersion = 1;

/// Serializes \p S to \p Path. Returns false and sets \p Err on failure.
bool writeSummaryStore(const SummaryStore &S, const std::string &Path,
                       std::string *Err = nullptr);

/// Serializes \p S into \p Out (the exact file bytes).
void serializeSummaryStore(const SummaryStore &S, std::string &Out);

/// Parses \p Path into \p S. Returns false and sets \p Err on bad magic,
/// unsupported version, truncation, or checksum mismatch.
bool readSummaryStore(SummaryStore &S, const std::string &Path,
                      std::string *Err = nullptr);

/// Parses the byte image \p Data.
bool parseSummaryStore(SummaryStore &S, const std::string &Data,
                       std::string *Err = nullptr);

} // namespace obs
} // namespace ipas

#endif // IPAS_OBS_SUMMARYSTORE_H
