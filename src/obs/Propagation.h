//===- obs/Propagation.h - Fault-propagation trace store (.ipprop) --------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact, versioned record of the *path* corruption took through a
/// sampled subset of campaign injections: per-injection propagation depth,
/// latency to first output corruption, corrupted-value count, per-opcode
/// masking events, and the dynamic propagation graph (def-use, memory,
/// and control edges between instruction ids). Where `.iprec` records the
/// endpoint of every injection, `.ipprop` explains the journey for the
/// traced ones — it is the dynamic ground truth that `ipas-prop
/// --cross-validate` confronts with the static `SocPropagation` benign
/// claims and the classifier's predictions.
///
/// Like RecordStore this lives in the obs layer, below ir/, analysis/,
/// and fault/: opcode, outcome, and sink-mask fields are raw integer
/// codes filled in by the fault-layer tracer (fault/Propagation.h) and
/// the driver, and decoded by tools. Serialization reuses the shared
/// little-endian codec + FNV-1a checksum (obs/BinCodec.h); truncated or
/// corrupt files are rejected loudly.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_OBS_PROPAGATION_H
#define IPAS_OBS_PROPAGATION_H

#include <cstdint>
#include <string>
#include <vector>

namespace ipas {
namespace obs {

/// PropEdge::Kind codes — how corruption moved from Src to Dst.
enum : uint8_t {
  PropEdgeDefUse = 0,  ///< Corrupted operand produced a corrupted result.
  PropEdgeMemory = 1,  ///< Corrupted store was loaded back from memory.
  PropEdgeControl = 2, ///< Corrupted condition diverged control flow.
};

/// PropMaskEvent::Kind codes — how corruption died.
enum : uint8_t {
  PropMaskLogical = 0,   ///< Corrupted operand, yet bit-equal result
                         ///< (cmp/and/select/shift absorption).
  PropMaskOverwrite = 1, ///< Clean store overwrote a corrupted address.
  PropMaskDead = 2,      ///< Corrupted value was never consumed.
};

/// PropRecord::DynReachMask bits — which sink kinds corruption
/// *dynamically* reached. Mirrors analysis/SocPropagation's SocSinkKind
/// bit assignment so static and dynamic masks compare directly.
enum : uint32_t {
  PropReachStore = 1u << 0,
  PropReachCallArgument = 1u << 1,
  PropReachReturn = 1u << 2,
  PropReachControlFlow = 1u << 3,
  PropReachCheck = 1u << 4,
  PropReachTrap = 1u << 5,
};

/// One aggregated edge of the dynamic propagation graph for one
/// injection (repeated traversals collapse into Count).
struct PropEdge {
  uint32_t SrcId = 0; ///< Corrupting instruction id.
  uint32_t DstId = 0; ///< Instruction whose result/behaviour it corrupted.
  uint8_t Kind = PropEdgeDefUse;
  uint32_t Count = 0; ///< Dynamic occurrences of this edge.
};

/// One aggregated masking event for one injection.
struct PropMaskEvent {
  uint8_t Opcode = 0; ///< Raw ir::Opcode of the masking instruction
                      ///< (for Dead: of the producer whose value died).
  uint8_t Kind = PropMaskLogical;
  uint32_t Count = 0;
};

/// Per-instruction side table entry (one per static instruction, in id
/// order) carrying the *static* columns the cross-validation confronts
/// with the dynamic records.
struct PropInstr {
  uint32_t Id = 0;
  uint8_t Opcode = 0;       ///< Raw ir::Opcode code.
  uint8_t StaticBenign = 0; ///< 1 if SocPropagation proved it benign.
  uint8_t Predicted = 0;    ///< Classifier verdict (RecordStore codes).
  uint32_t Line = 0;        ///< DebugLoc line (0 = unknown).
  uint32_t Col = 0;
  uint32_t FunctionIndex = 0;  ///< Index into PropagationStore::Functions.
  uint32_t StaticSinkMask = 0; ///< SocPropagation sink mask (same bits
                               ///< as DynReachMask).
};

/// Full propagation trace of one injected run.
struct PropRecord {
  uint64_t RunIndex = 0; ///< Campaign run this injection came from.
  uint32_t InstructionId = 0;
  uint32_t BitIndex = 0;
  uint64_t TargetValueStep = 0;
  uint8_t Outcome = 0;         ///< Raw fault::Outcome code.
  uint8_t ControlDiverged = 0; ///< 1 once control flow left the clean path
                               ///< (fine-grained comparison stops there).
  uint32_t DynReachMask = 0;   ///< PropReach* bits corruption touched.
  uint32_t PropagationDepth = 0; ///< Longest def-use/memory chain from the
                                 ///< injection (injection itself = 0).
  uint64_t CorruptedValues = 0;  ///< Distinct corrupted value commits.
  uint64_t InjectionStep = 0;    ///< Value step of the injection.
  uint64_t FirstOutputStep = UINT64_MAX; ///< Value step when corruption
                                         ///< first reached a store/return
                                         ///< the verifier reads (UINT64_MAX
                                         ///< = never).
  uint64_t MaskedLogical = 0;
  uint64_t MaskedOverwrite = 0;
  uint64_t MaskedDead = 0;
  std::vector<PropEdge> Edges;
  std::vector<PropMaskEvent> Masks;

  /// Value steps from injection to first output corruption (the
  /// "latency" the paper's detector placement cares about).
  bool reachedOutput() const { return FirstOutputStep != UINT64_MAX; }
  uint64_t latencyToOutput() const {
    return reachedOutput() ? FirstOutputStep - InjectionStep : UINT64_MAX;
  }
};

/// In-memory image of one `.ipprop` file.
struct PropagationStore {
  // Campaign metadata.
  std::string ModuleName;
  std::string EntryFunction;
  std::string Label;
  uint64_t Seed = 0;
  uint64_t SampleEvery = 0; ///< PropSampleEvery the campaign ran with.
  uint64_t TotalRuns = 0;   ///< Campaign size the sample was drawn from.
  uint64_t CleanSteps = 0;
  uint64_t CleanValueSteps = 0;

  std::vector<std::string> Functions; ///< Function-name table.
  std::vector<PropInstr> Instructions;
  std::vector<PropRecord> Records;
};

/// Current serialization version. Readers reject newer files.
constexpr uint32_t PropStoreVersion = 1;

/// Serializes \p S to \p Path. Returns false and sets \p Err on failure.
bool writePropagationStore(const PropagationStore &S, const std::string &Path,
                           std::string *Err = nullptr);

/// Serializes \p S into \p Out (the exact file bytes).
void serializePropagationStore(const PropagationStore &S, std::string &Out);

/// Parses \p Path into \p S. Returns false and sets \p Err on bad magic,
/// unsupported version, truncation, or checksum mismatch.
bool readPropagationStore(PropagationStore &S, const std::string &Path,
                          std::string *Err = nullptr);

/// Parses the byte image \p Data.
bool parsePropagationStore(PropagationStore &S, const std::string &Data,
                           std::string *Err = nullptr);

} // namespace obs
} // namespace ipas

#endif // IPAS_OBS_PROPAGATION_H
