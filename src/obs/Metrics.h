//===- obs/Metrics.h - Process-wide counters, gauges, histograms ----------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide metrics registry in the Prometheus mold, sized for the
/// campaign hot paths: registration (name lookup) takes a mutex once,
/// after which the returned Counter/Gauge/Histogram reference is stable
/// for the life of the process and every update is a single relaxed
/// atomic operation — safe under the campaign thread pool with no
/// cross-thread serialization.
///
/// Naming convention: `subsystem.noun[.qualifier]`, all lowercase —
/// e.g. `interp.steps`, `fault.outcome.soc`, `ml.svm.iterations`,
/// `cache.hits`. Histograms use fixed log2-scale bins (bin 0 holds the
/// value 0; bin b>0 holds [2^(b-1), 2^b)), so no configuration is needed
/// and merging across threads is exact.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_OBS_METRICS_H
#define IPAS_OBS_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ipas {
namespace obs {

class JsonWriter;

/// Monotonically increasing event count.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// Log2-binned histogram of non-negative integer observations.
class Histogram {
public:
  /// Bin 0: value 0. Bin b in [1, 64]: values in [2^(b-1), 2^b).
  static constexpr unsigned NumBins = 65;

  static unsigned binOf(uint64_t V) {
    return V == 0 ? 0 : static_cast<unsigned>(std::bit_width(V));
  }
  /// Inclusive lower edge of \p Bin.
  static uint64_t binLowerEdge(unsigned Bin) {
    return Bin == 0 ? 0 : (uint64_t(1) << (Bin - 1));
  }
  /// Exclusive upper edge of \p Bin (saturates at UINT64_MAX).
  static uint64_t binUpperEdge(unsigned Bin) {
    return Bin >= 64 ? UINT64_MAX : (uint64_t(1) << Bin);
  }

  void observe(uint64_t V) {
    Bins[binOf(V)].fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
  }

  uint64_t binCount(unsigned Bin) const {
    return Bins[Bin].load(std::memory_order_relaxed);
  }
  uint64_t count() const;
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  double mean() const;
  /// Upper edge of the bin containing quantile \p Q in [0, 1] — a
  /// log2-resolution approximation (0 when empty).
  uint64_t approxQuantile(double Q) const;
  void reset();

private:
  std::array<std::atomic<uint64_t>, NumBins> Bins{};
  std::atomic<uint64_t> Sum{0};
};

/// Owns every metric in the process. Lookup by name is mutex-protected;
/// returned references stay valid forever (metrics are never removed).
class MetricsRegistry {
public:
  static MetricsRegistry &global();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Human-readable dump, one `name value` line per metric, sorted.
  std::string renderText() const;
  /// Emits {"counters":{...},"gauges":{...},"histograms":{...}} as the
  /// next value of \p W.
  void writeJson(JsonWriter &W) const;
  /// Zeroes every registered metric (registrations persist). Test-only.
  void resetAll();

private:
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// True when subsystems should collect per-execution statistics that are
/// too hot to gather unconditionally (interpreter opcode counts, per-run
/// campaign latencies). Off by default; enabled by `--metrics`, by
/// opening a trace sink, or explicitly.
bool statsEnabled();
void setStatsEnabled(bool On);

} // namespace obs
} // namespace ipas

#endif // IPAS_OBS_METRICS_H
