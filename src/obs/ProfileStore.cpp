//===- obs/ProfileStore.cpp ---------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// File layout (all integers little-endian), mirroring RecordStore:
//
//   offset  size  field
//   0       8     magic "IPASPROF"
//   8       4     version (u32, currently 1)
//   12      8     payload length (u64)
//   20      N     payload (see serializePayload)
//   20+N    8     FNV-1a 64 checksum of the payload bytes
//
//===----------------------------------------------------------------------===//

#include "obs/ProfileStore.h"

#include "obs/BinCodec.h"

#include <cstdio>
#include <cstring>

using namespace ipas;
using namespace ipas::obs;

namespace {

constexpr char Magic[8] = {'I', 'P', 'A', 'S', 'P', 'R', 'O', 'F'};

void serializePayload(const ProfileStore &S, Encoder &E) {
  E.str(S.ModuleName);
  E.str(S.EntryFunction);
  E.str(S.Label);
  E.str(S.SourceText);
  E.u8(S.Mode);
  E.u64(S.CleanSteps);
  E.u64(S.TotalCycles);
  E.u8(S.HasOverhead);
  E.u64(S.BaselineTotalCycles);
  E.u64(S.CostModelCycles.size());
  for (uint32_t C : S.CostModelCycles)
    E.u32(C);
  E.u64(S.Functions.size());
  for (const std::string &F : S.Functions)
    E.str(F);
  E.u64(S.Instructions.size());
  for (const ProfInstr &I : S.Instructions) {
    E.u32(I.Id);
    E.u8(I.Opcode);
    E.u8(I.DupRole);
    E.u32(I.Line);
    E.u32(I.Col);
    E.u32(I.FunctionIndex);
    E.u64(I.ExecCount);
    E.u64(I.Cycles);
  }
  E.u64(S.Contexts.size());
  for (const ProfContext &C : S.Contexts) {
    E.u32(C.Id);
    E.u32(C.Parent);
    E.u32(C.FunctionIndex);
    E.u64(C.Steps);
    E.u64(C.Cycles);
  }
  E.u64(S.LineCosts.size());
  for (const ProfLineCost &L : S.LineCosts) {
    E.u32(L.ContextId);
    E.u32(L.FunctionIndex);
    E.u32(L.Line);
    E.u64(L.Count);
    E.u64(L.Cycles);
  }
  E.u64(S.Overheads.size());
  for (const ProfSiteOverhead &O : S.Overheads) {
    E.u32(O.SiteId);
    E.u8(O.Opcode);
    E.u8(O.Protected_);
    E.u32(O.Line);
    E.u32(O.Col);
    E.u32(O.FunctionIndex);
    E.u64(O.BaseCycles);
    E.u64(O.ProtCycles);
    E.u64(O.ShadowCycles);
    E.u64(O.CheckCycles);
  }
}

bool parsePayload(ProfileStore &S, Decoder &D, std::string *Err) {
  S.ModuleName = D.str();
  S.EntryFunction = D.str();
  S.Label = D.str();
  S.SourceText = D.str();
  S.Mode = D.u8();
  S.CleanSteps = D.u64();
  S.TotalCycles = D.u64();
  S.HasOverhead = D.u8();
  S.BaselineTotalCycles = D.u64();
  S.CostModelCycles.resize(D.count(4));
  for (uint32_t &C : S.CostModelCycles)
    C = D.u32();
  S.Functions.resize(D.count(4));
  for (std::string &F : S.Functions)
    F = D.str();
  S.Instructions.resize(D.count(4 + 1 + 1 + 4 + 4 + 4 + 8 + 8));
  for (ProfInstr &I : S.Instructions) {
    I.Id = D.u32();
    I.Opcode = D.u8();
    I.DupRole = D.u8();
    I.Line = D.u32();
    I.Col = D.u32();
    I.FunctionIndex = D.u32();
    I.ExecCount = D.u64();
    I.Cycles = D.u64();
  }
  S.Contexts.resize(D.count(4 + 4 + 4 + 8 + 8));
  for (ProfContext &C : S.Contexts) {
    C.Id = D.u32();
    C.Parent = D.u32();
    C.FunctionIndex = D.u32();
    C.Steps = D.u64();
    C.Cycles = D.u64();
  }
  S.LineCosts.resize(D.count(4 + 4 + 4 + 8 + 8));
  for (ProfLineCost &L : S.LineCosts) {
    L.ContextId = D.u32();
    L.FunctionIndex = D.u32();
    L.Line = D.u32();
    L.Count = D.u64();
    L.Cycles = D.u64();
  }
  S.Overheads.resize(D.count(4 + 1 + 1 + 4 + 4 + 4 + 4 * 8));
  for (ProfSiteOverhead &O : S.Overheads) {
    O.SiteId = D.u32();
    O.Opcode = D.u8();
    O.Protected_ = D.u8();
    O.Line = D.u32();
    O.Col = D.u32();
    O.FunctionIndex = D.u32();
    O.BaseCycles = D.u64();
    O.ProtCycles = D.u64();
    O.ShadowCycles = D.u64();
    O.CheckCycles = D.u64();
  }
  if (!D.ok()) {
    if (Err)
      *Err = "profile store payload truncated or corrupt";
    return false;
  }
  if (!D.atEnd()) {
    if (Err)
      *Err = "profile store payload has trailing bytes";
    return false;
  }
  return true;
}

} // namespace

void ipas::obs::serializeProfileStore(const ProfileStore &S,
                                      std::string &Out) {
  Out.clear();
  Out.append(Magic, sizeof(Magic));
  Encoder Header(Out);
  Header.u32(ProfileStoreVersion);
  std::string Payload;
  Encoder E(Payload);
  serializePayload(S, E);
  Header.u64(Payload.size());
  Out.append(Payload);
  Encoder Footer(Out);
  Footer.u64(fnv1a(Payload.data(), Payload.size()));
}

bool ipas::obs::writeProfileStore(const ProfileStore &S,
                                  const std::string &Path,
                                  std::string *Err) {
  std::string Bytes;
  serializeProfileStore(S, Bytes);
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = Written == Bytes.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok && Err)
    *Err = "short write to '" + Path + "'";
  return Ok;
}

bool ipas::obs::parseProfileStore(ProfileStore &S, const std::string &Data,
                                  std::string *Err) {
  // Fixed header: magic + version + payload length.
  constexpr size_t HeaderSize = sizeof(Magic) + 4 + 8;
  if (Data.size() < HeaderSize) {
    if (Err)
      *Err = "not a profile store (file too small)";
    return false;
  }
  if (std::memcmp(Data.data(), Magic, sizeof(Magic)) != 0) {
    if (Err)
      *Err = "not a profile store (bad magic)";
    return false;
  }
  Decoder H(Data.data() + sizeof(Magic), Data.size() - sizeof(Magic));
  uint32_t Version = H.u32();
  if (Version == 0 || Version > ProfileStoreVersion) {
    if (Err)
      *Err = "unsupported profile store version " +
             std::to_string(Version) + " (reader supports up to " +
             std::to_string(ProfileStoreVersion) + ")";
    return false;
  }
  uint64_t PayloadLen = H.u64();
  if (Data.size() != HeaderSize + PayloadLen + 8) {
    if (Err)
      *Err = "profile store truncated (header promises " +
             std::to_string(PayloadLen) + " payload bytes)";
    return false;
  }
  const char *Payload = Data.data() + HeaderSize;
  uint64_t WantLE = 0;
  for (int I = 0; I != 8; ++I)
    WantLE |= static_cast<uint64_t>(static_cast<unsigned char>(
                  Data[HeaderSize + PayloadLen + I]))
              << (8 * I);
  if (fnv1a(Payload, PayloadLen) != WantLE) {
    if (Err)
      *Err = "profile store checksum mismatch (corrupt file)";
    return false;
  }
  Decoder D(Payload, PayloadLen);
  return parsePayload(S, D, Err);
}

bool ipas::obs::readProfileStore(ProfileStore &S, const std::string &Path,
                                 std::string *Err) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "'";
    return false;
  }
  std::string Data;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Data.append(Buf, N);
  bool ReadOk = !std::ferror(F);
  std::fclose(F);
  if (!ReadOk) {
    if (Err)
      *Err = "read error on '" + Path + "'";
    return false;
  }
  return parseProfileStore(S, Data, Err);
}
