//===- obs/Json.h - Minimal JSON writer and parser ------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free JSON layer sized for the telemetry subsystem: a
/// streaming writer used to emit JSONL trace records and BENCH_*.json
/// result files, and a recursive-descent parser used by `ipas-report` to
/// read them back. Integers up to 64 bits round-trip exactly (they are
/// written as bare decimal literals and re-parsed with strtoull/strtoll,
/// never through a double), which matters for RNG seeds recorded in trace
/// headers.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_OBS_JSON_H
#define IPAS_OBS_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ipas {
namespace obs {

/// Appends \p S to \p Out with JSON string escaping (no surrounding
/// quotes).
void appendJsonEscaped(std::string &Out, std::string_view S);

/// A push-style JSON writer. Commas and nesting are managed internally;
/// callers interleave beginObject()/key()/value()/endObject() calls.
/// Misuse (e.g. a value without a key inside an object) asserts.
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();
  JsonWriter &key(std::string_view K);
  JsonWriter &value(std::string_view S);
  JsonWriter &value(const char *S) { return value(std::string_view(S)); }
  JsonWriter &value(double V);
  JsonWriter &value(int64_t V);
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(bool V);
  JsonWriter &nullValue();
  /// Splices a pre-rendered JSON fragment as the next value.
  JsonWriter &rawValue(std::string_view Json);

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void beforeValue();
  std::string Out;
  /// One frame per open container: 'O' object (expects key), 'o' object
  /// (expects value), 'A' array.
  std::vector<char> Stack;
};

/// A parsed JSON document node. Numbers remember whether the source was
/// an integral literal so 64-bit values survive the round trip.
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  int64_t Int = 0;     ///< Valid when IsInt (signed view).
  uint64_t UInt = 0;   ///< Valid when IsInt (unsigned view).
  bool IsInt = false;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Members;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue *get(std::string_view Key) const;
  /// Numeric coercions (0 on kind mismatch).
  double asNumber() const;
  int64_t asI64() const;
  uint64_t asU64() const;
  /// String value, or "" on kind mismatch.
  const std::string &asString() const;
};

/// Parses one JSON document; nullopt on malformed input or trailing
/// garbage (surrounding whitespace is allowed).
std::optional<JsonValue> parseJson(std::string_view Text);

} // namespace obs
} // namespace ipas

#endif // IPAS_OBS_JSON_H
