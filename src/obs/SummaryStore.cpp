//===- obs/SummaryStore.cpp -----------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// File layout (all integers little-endian), mirroring RecordStore:
//
//   offset  size  field
//   0       8     magic "IPASSUM\0"
//   8       4     version (u32, currently 1)
//   12      8     payload length (u64)
//   20      N     payload (see serializePayload)
//   20+N    8     FNV-1a 64 checksum of the payload bytes
//
//===----------------------------------------------------------------------===//

#include "obs/SummaryStore.h"

#include "obs/BinCodec.h"

#include <cstdio>
#include <cstring>

using namespace ipas;
using namespace ipas::obs;

namespace {

constexpr char Magic[8] = {'I', 'P', 'A', 'S', 'S', 'U', 'M', '\0'};

void serializePayload(const SummaryStore &S, Encoder &E) {
  E.str(S.ModuleName);
  E.str(S.EntryFunction);
  E.u64(S.Functions.size());
  for (const SummaryFunc &F : S.Functions) {
    E.str(F.Name);
    E.u64(F.ContentHash);
    E.u64(F.ReachableHash);
    E.u64(F.Callees.size());
    for (const std::string &C : F.Callees)
      E.str(C);
    E.u64(F.Args.size());
    for (const SummaryArg &A : F.Args) {
      E.u32(A.SinkMask);
      E.u8(A.FlowsToReturn);
      E.u32(A.MinSinkDistance);
    }
  }
}

bool parsePayload(SummaryStore &S, Decoder &D, std::string *Err) {
  S.ModuleName = D.str();
  S.EntryFunction = D.str();
  S.Functions.resize(D.count(4 + 8 + 8 + 8 + 8));
  for (SummaryFunc &F : S.Functions) {
    F.Name = D.str();
    F.ContentHash = D.u64();
    F.ReachableHash = D.u64();
    F.Callees.resize(D.count(4));
    for (std::string &C : F.Callees)
      C = D.str();
    F.Args.resize(D.count(4 + 1 + 4));
    for (SummaryArg &A : F.Args) {
      A.SinkMask = D.u32();
      A.FlowsToReturn = D.u8();
      A.MinSinkDistance = D.u32();
    }
  }
  if (!D.ok()) {
    if (Err)
      *Err = "summary store payload truncated or corrupt";
    return false;
  }
  if (!D.atEnd()) {
    if (Err)
      *Err = "summary store payload has trailing bytes";
    return false;
  }
  return true;
}

} // namespace

void ipas::obs::serializeSummaryStore(const SummaryStore &S,
                                      std::string &Out) {
  Out.clear();
  Out.append(Magic, sizeof(Magic));
  Encoder Header(Out);
  Header.u32(SummaryStoreVersion);
  std::string Payload;
  Encoder E(Payload);
  serializePayload(S, E);
  Header.u64(Payload.size());
  Out.append(Payload);
  Encoder Footer(Out);
  Footer.u64(fnv1a(Payload.data(), Payload.size()));
}

bool ipas::obs::writeSummaryStore(const SummaryStore &S,
                                  const std::string &Path, std::string *Err) {
  std::string Bytes;
  serializeSummaryStore(S, Bytes);
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = Written == Bytes.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok && Err)
    *Err = "short write to '" + Path + "'";
  return Ok;
}

bool ipas::obs::parseSummaryStore(SummaryStore &S, const std::string &Data,
                                  std::string *Err) {
  constexpr size_t HeaderSize = sizeof(Magic) + 4 + 8;
  if (Data.size() < HeaderSize) {
    if (Err)
      *Err = "not a summary store (file too small)";
    return false;
  }
  if (std::memcmp(Data.data(), Magic, sizeof(Magic)) != 0) {
    if (Err)
      *Err = "not a summary store (bad magic)";
    return false;
  }
  Decoder H(Data.data() + sizeof(Magic), Data.size() - sizeof(Magic));
  uint32_t Version = H.u32();
  if (Version == 0 || Version > SummaryStoreVersion) {
    if (Err)
      *Err = "unsupported summary store version " + std::to_string(Version) +
             " (reader supports up to " +
             std::to_string(SummaryStoreVersion) + ")";
    return false;
  }
  uint64_t PayloadLen = H.u64();
  if (Data.size() != HeaderSize + PayloadLen + 8) {
    if (Err)
      *Err = "summary store truncated (header promises " +
             std::to_string(PayloadLen) + " payload bytes)";
    return false;
  }
  const char *Payload = Data.data() + HeaderSize;
  uint64_t WantLE = 0;
  for (int I = 0; I != 8; ++I)
    WantLE |= static_cast<uint64_t>(static_cast<unsigned char>(
                  Data[HeaderSize + PayloadLen + I]))
              << (8 * I);
  if (fnv1a(Payload, PayloadLen) != WantLE) {
    if (Err)
      *Err = "summary store checksum mismatch (corrupt file)";
    return false;
  }
  Decoder D(Payload, PayloadLen);
  return parsePayload(S, D, Err);
}

bool ipas::obs::readSummaryStore(SummaryStore &S, const std::string &Path,
                                 std::string *Err) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "'";
    return false;
  }
  std::string Data;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Data.append(Buf, N);
  bool ReadOk = !std::ferror(F);
  std::fclose(F);
  if (!ReadOk) {
    if (Err)
      *Err = "read error on '" + Path + "'";
    return false;
  }
  return parseSummaryStore(S, Data, Err);
}
