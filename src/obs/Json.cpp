//===- obs/Json.cpp ------------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ipas;
using namespace ipas::obs;

void ipas::obs::appendJsonEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::beforeValue() {
  if (Stack.empty())
    return;
  char &Top = Stack.back();
  if (Top == 'A') {
    if (Out.back() != '[')
      Out += ',';
  } else {
    assert(Top == 'o' && "value emitted without a key inside an object");
    Top = 'O';
  }
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  Out += '{';
  Stack.push_back('O');
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back() == 'O' && "unbalanced endObject");
  Stack.pop_back();
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  Out += '[';
  Stack.push_back('A');
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back() == 'A' && "unbalanced endArray");
  Stack.pop_back();
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view K) {
  assert(!Stack.empty() && Stack.back() == 'O' &&
         "key() outside an object or after a dangling key");
  if (Out.back() != '{')
    Out += ',';
  Out += '"';
  appendJsonEscaped(Out, K);
  Out += "\":";
  Stack.back() = 'o';
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view S) {
  beforeValue();
  Out += '"';
  appendJsonEscaped(Out, S);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  beforeValue();
  char Buf[40];
  // %.17g round-trips doubles; JSON has no inf/nan, emit null for those.
  if (V != V || V > 1.7976931348623157e308 || V < -1.7976931348623157e308) {
    Out += "null";
    return *this;
  }
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  beforeValue();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  beforeValue();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  beforeValue();
  Out += V ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::nullValue() {
  beforeValue();
  Out += "null";
  return *this;
}

JsonWriter &JsonWriter::rawValue(std::string_view Json) {
  beforeValue();
  Out += Json;
  return *this;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::get(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Members)
    if (Name == Key)
      return &V;
  return nullptr;
}

double JsonValue::asNumber() const {
  if (K != Kind::Number)
    return 0.0;
  return IsInt ? static_cast<double>(Int) : Num;
}

int64_t JsonValue::asI64() const {
  if (K != Kind::Number)
    return 0;
  return IsInt ? Int : static_cast<int64_t>(Num);
}

uint64_t JsonValue::asU64() const {
  if (K != Kind::Number)
    return 0;
  return IsInt ? UInt : static_cast<uint64_t>(Num);
}

const std::string &JsonValue::asString() const {
  static const std::string Empty;
  return K == Kind::String ? Str : Empty;
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : T(Text) {}

  bool parseDocument(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    return Pos == T.size();
  }

private:
  void skipWs() {
    while (Pos < T.size() && (T[Pos] == ' ' || T[Pos] == '\t' ||
                              T[Pos] == '\n' || T[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < T.size() && T[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Lit) {
    size_t Len = std::strlen(Lit);
    if (T.size() - Pos < Len || T.compare(Pos, Len, Lit) != 0)
      return false;
    Pos += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    while (Pos < T.size()) {
      char C = T[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= T.size())
        return false;
      char E = T[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (T.size() - Pos < 4)
          return false;
        unsigned Code = 0;
        for (int K = 0; K != 4; ++K) {
          char H = T[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return false;
        }
        // UTF-8 encode the BMP code point (surrogate pairs are not
        // produced by our writer; decode them as-is if present).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return false;
      }
    }
    return false; // unterminated string
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (consume('-')) {
    }
    while (Pos < T.size() &&
           (std::isdigit(static_cast<unsigned char>(T[Pos])) ||
            T[Pos] == '.' || T[Pos] == 'e' || T[Pos] == 'E' ||
            T[Pos] == '+' || T[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return false;
    std::string Lit(T.substr(Start, Pos - Start));
    Out.K = JsonValue::Kind::Number;
    bool Integral =
        Lit.find('.') == std::string::npos &&
        Lit.find('e') == std::string::npos &&
        Lit.find('E') == std::string::npos;
    char *End = nullptr;
    if (Integral) {
      errno = 0;
      if (Lit[0] == '-') {
        long long V = std::strtoll(Lit.c_str(), &End, 10);
        if (*End == '\0' && errno != ERANGE) {
          Out.IsInt = true;
          Out.Int = V;
          Out.UInt = static_cast<uint64_t>(V);
          Out.Num = static_cast<double>(V);
          return true;
        }
      } else {
        unsigned long long V = std::strtoull(Lit.c_str(), &End, 10);
        if (*End == '\0' && errno != ERANGE) {
          Out.IsInt = true;
          Out.UInt = V;
          Out.Int = static_cast<int64_t>(V);
          Out.Num = static_cast<double>(V);
          return true;
        }
      }
    }
    Out.Num = std::strtod(Lit.c_str(), &End);
    return End && *End == '\0';
  }

  bool parseValue(JsonValue &Out) {
    if (++Depth > 128)
      return false; // nesting bomb guard
    bool Ok = parseValueImpl(Out);
    --Depth;
    return Ok;
  }

  bool parseValueImpl(JsonValue &Out) {
    skipWs();
    if (Pos >= T.size())
      return false;
    char C = T[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = JsonValue::Kind::Object;
      skipWs();
      if (consume('}'))
        return true;
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (!consume(':'))
          return false;
        JsonValue V;
        if (!parseValue(V))
          return false;
        Out.Members.emplace_back(std::move(Key), std::move(V));
        skipWs();
        if (consume('}'))
          return true;
        if (!consume(','))
          return false;
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = JsonValue::Kind::Array;
      skipWs();
      if (consume(']'))
        return true;
      while (true) {
        JsonValue V;
        if (!parseValue(V))
          return false;
        Out.Arr.push_back(std::move(V));
        skipWs();
        if (consume(']'))
          return true;
        if (!consume(','))
          return false;
      }
    }
    if (C == '"') {
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    }
    if (literal("true")) {
      Out.K = JsonValue::Kind::Bool;
      Out.B = true;
      return true;
    }
    if (literal("false")) {
      Out.K = JsonValue::Kind::Bool;
      Out.B = false;
      return true;
    }
    if (literal("null")) {
      Out.K = JsonValue::Kind::Null;
      return true;
    }
    return parseNumber(Out);
  }

  std::string_view T;
  size_t Pos = 0;
  int Depth = 0;
};

} // namespace

std::optional<JsonValue> ipas::obs::parseJson(std::string_view Text) {
  JsonValue V;
  Parser P(Text);
  if (!P.parseDocument(V))
    return std::nullopt;
  return V;
}
