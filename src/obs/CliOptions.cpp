//===- obs/CliOptions.cpp -------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/CliOptions.h"

#include "obs/Metrics.h"
#include "support/ArgParser.h"

#include <cstdio>
#include <cstdlib>

using namespace ipas;
using namespace ipas::obs;

void obs::addCliFlags(ArgParser &P, CliOptions &O) {
  P.addString("trace", &O.TracePath,
              "write a structured JSONL trace to this file");
  P.addBool("metrics", &O.DumpMetrics,
            "dump the metrics registry to stderr at exit");
  P.addBool("v", &O.Verbose, "verbose (Info-level) logging");
  P.addBool("q", &O.Quiet, "quiet: only Error-level logging");
}

static void dumpMetricsAtExit() {
  std::string Text = MetricsRegistry::global().renderText();
  std::fputs("--- metrics ---\n", stderr);
  std::fputs(Text.c_str(), stderr);
}

bool obs::applyCliFlags(const CliOptions &O, const char *ToolName,
                        AttrSet HeaderAttrs) {
  if (O.Verbose)
    setLogLevel(Severity::Info);
  if (O.Quiet)
    setLogLevel(Severity::Error);
  if (O.DumpMetrics) {
    setStatsEnabled(true);
    std::atexit(dumpMetricsAtExit);
  }
  if (!O.TracePath.empty()) {
    AttrSet Attrs;
    Attrs.add("tool", ToolName);
    Attrs.merge(HeaderAttrs);
    if (!TraceSink::open(O.TracePath, Attrs)) {
      std::fprintf(stderr, "error: cannot open trace file '%s'\n",
                   O.TracePath.c_str());
      return false;
    }
  }
  return true;
}
