//===- obs/CliOptions.h - Shared telemetry command-line flags -------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard telemetry flag set shared by every driver (ipas-cc, the
/// campaign examples, benches):
///
///   --trace <file>   write a structured JSONL trace (see
///                    docs/OBSERVABILITY.md); implies stats collection
///   --metrics        dump the metrics registry to stderr at exit
///   -v               verbose (Info-level) logging on stderr
///   -q               quiet: only Error-level logging
///
/// Usage: register with addCliFlags() before ArgParser::parse(), then call
/// applyCliFlags() once parsing succeeded. Teardown (closing the sink,
/// dumping metrics) is registered with atexit, so early returns are fine.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_OBS_CLIOPTIONS_H
#define IPAS_OBS_CLIOPTIONS_H

#include "obs/Trace.h"

#include <string>

namespace ipas {

class ArgParser;

namespace obs {

struct CliOptions {
  std::string TracePath;
  bool DumpMetrics = false;
  bool Verbose = false;
  bool Quiet = false;
};

/// Registers --trace, --metrics, -v, and -q on \p P, bound to \p O.
void addCliFlags(ArgParser &P, CliOptions &O);

/// Applies parsed flags: sets the log level, enables stats, and opens the
/// trace sink with \p HeaderAttrs (augmented with \p ToolName). Returns
/// false (with a message) when the trace file cannot be created.
bool applyCliFlags(const CliOptions &O, const char *ToolName,
                   AttrSet HeaderAttrs = AttrSet());

} // namespace obs
} // namespace ipas

#endif // IPAS_OBS_CLIOPTIONS_H
