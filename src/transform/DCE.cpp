//===- transform/DCE.cpp --------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/DCE.h"

using namespace ipas;

/// True when deleting an unused \p I cannot change program behaviour.
/// Loads are removable (no volatile semantics in this IR); calls are not
/// (callees and intrinsics may have effects); stores, checks, and
/// terminators obviously are not.
static bool isRemovableWhenUnused(const Instruction *I) {
  switch (I->opcode()) {
  case Opcode::Store:
  case Opcode::Call:
  case Opcode::Check:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    return false;
  default:
    return true;
  }
}

unsigned ipas::eliminateDeadCode(Function &F) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      // Iterate a snapshot in reverse so chains die in one sweep.
      std::vector<Instruction *> Work;
      for (Instruction *I : *BB)
        Work.push_back(I);
      for (auto It = Work.rbegin(); It != Work.rend(); ++It) {
        Instruction *I = *It;
        if (I->hasUses() || !isRemovableWhenUnused(I))
          continue;
        BB->erase(I);
        ++Removed;
        Changed = true;
      }
    }
  }
  return Removed;
}

unsigned ipas::eliminateDeadCode(Module &M) {
  unsigned N = 0;
  for (Function *F : M)
    N += eliminateDeadCode(*F);
  return N;
}
