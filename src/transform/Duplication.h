//===- transform/Duplication.h - Instruction duplication (paper §4.4) -----===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The protection transform: selected computation instructions are
/// duplicated into shadow copies, shadows consume shadows where available,
/// and a `soc.check` comparison is inserted at the end of every
/// *duplication path* — a maximal def-use chain of duplicated instructions
/// confined to one basic block. A runtime mismatch between an original and
/// its shadow raises a Detected event.
///
/// Like the paper (and SWIFT), loads, stores, calls, allocas, phis, and
/// control flow are never duplicated: memory is assumed ECC-protected and
/// control-flow faults are out of the fault model.
///
/// The pass stamps protection provenance on every instruction it touches
/// (Instruction::dupRole/dupLink): originals, shadows, and checks. The
/// `ipas-lint` checker (analysis/ProtectionLint.h) consumes the stamps to
/// verify the pass's invariants statically.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_TRANSFORM_DUPLICATION_H
#define IPAS_TRANSFORM_DUPLICATION_H

#include "ir/Module.h"

#include <functional>
#include <set>

namespace ipas {

/// Decides, per instruction, whether it must be protected. Receives the
/// instruction's module-wide id (stable across the renumber() preceding
/// the pass).
using ProtectionPredicate = std::function<bool(const Instruction &)>;

/// Statistics reported by the pass, used for Figure 7 and the slowdown
/// accounting.
struct DuplicationStats {
  size_t TotalInstructions = 0;   ///< Before the pass.
  size_t EligibleInstructions = 0; ///< Duplicable opcodes before the pass.
  size_t SelectedInstructions = 0; ///< Predicate said protect.
  size_t DuplicatedInstructions = 0; ///< Shadows actually inserted.
  size_t ChecksInserted = 0;

  /// Fraction of (pre-pass) instructions that received a shadow.
  double duplicatedFraction() const {
    return TotalInstructions
               ? static_cast<double>(DuplicatedInstructions) /
                     static_cast<double>(TotalInstructions)
               : 0.0;
  }
};

/// Where the pass places `soc.check` comparisons.
enum class CheckPlacement : uint8_t {
  /// One check at the end of each duplication path (the paper's design,
  /// §4.4): errors inside a chain are caught when the chain ends.
  PathEnds,
  /// One check after every duplicated instruction (the SWIFT-style
  /// ablation documented in DESIGN.md): earlier detection, more checks.
  EveryInstruction,
};

struct DuplicationOptions {
  CheckPlacement Placement = CheckPlacement::PathEnds;
  /// Also check every duplicated value immediately before a non-intrinsic
  /// call it is passed to (unless a check already covers it there). Under
  /// PathEnds a value whose duplication path continues past the call
  /// site crosses the boundary unchecked — the callee consumes a
  /// possibly-corrupt original while the path-end check fires only after
  /// the call returns. Closes lint rule R6 (analysis/ProtectionLint.h).
  bool CheckCallBoundary = false;
};

/// Applies duplication to every instruction of \p M for which \p Protect
/// returns true (non-duplicable instructions are skipped regardless).
/// Invalidates instruction numbering; callers re-run Module::renumber().
DuplicationStats duplicateInstructions(Module &M,
                                       const ProtectionPredicate &Protect,
                                       const DuplicationOptions &Opts = {});

/// Full duplication (SWIFT-style): protects every duplicable instruction.
DuplicationStats duplicateAllInstructions(Module &M);

} // namespace ipas

#endif // IPAS_TRANSFORM_DUPLICATION_H
