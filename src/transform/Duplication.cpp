//===- transform/Duplication.cpp ----------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Duplication.h"

#include <map>
#include <set>
#include <vector>

using namespace ipas;

namespace {

/// Duplicates the selected instructions of one basic block and inserts the
/// duplication-path checks.
void processBlock(BasicBlock *BB, const ProtectionPredicate &Protect,
                  const DuplicationOptions &Opts, DuplicationStats &Stats) {
  // Snapshot: the pass inserts while iterating.
  std::vector<Instruction *> Originals;
  Originals.reserve(BB->size());
  for (Instruction *I : *BB)
    Originals.push_back(I);

  // Pass 1: create shadows in order; shadows consume shadows.
  std::map<const Value *, Instruction *> ShadowOf;
  std::vector<Instruction *> Selected;
  for (Instruction *I : Originals) {
    ++Stats.TotalInstructions;
    if (!isDuplicableOpcode(I->opcode()))
      continue;
    ++Stats.EligibleInstructions;
    if (!Protect(*I))
      continue;
    ++Stats.SelectedInstructions;

    Instruction *Shadow = I->clone();
    if (!I->name().empty())
      Shadow->setName(I->name() + ".dup");
    I->setDupRole(DupRole::Original);
    Shadow->setDupRole(DupRole::Shadow);
    Shadow->setDupLink(I);
    for (unsigned OpIdx = 0; OpIdx != Shadow->numOperands(); ++OpIdx) {
      auto It = ShadowOf.find(Shadow->operand(OpIdx));
      if (It != ShadowOf.end())
        Shadow->setOperand(OpIdx, It->second);
    }
    BB->insertAfter(I, std::unique_ptr<Instruction>(Shadow));
    ShadowOf[I] = Shadow;
    Selected.push_back(I);
    ++Stats.DuplicatedInstructions;
  }

  // Pass 2: place checks. In the SWIFT-style ablation every duplicated
  // instruction gets one; in the paper's design only duplication-path
  // ends — selected instructions with no selected user inside this block
  // — are checked.
  for (Instruction *I : Selected) {
    if (Opts.Placement == CheckPlacement::EveryInstruction) {
      auto *Check = new CheckInst(I, ShadowOf[I]);
      Check->setDupLink(I);
      Check->setDebugLoc(I->debugLoc());
      BB->insertAfter(ShadowOf[I], std::unique_ptr<Instruction>(Check));
      ++Stats.ChecksInserted;
      continue;
    }
    bool HasSelectedUserHere = false;
    for (Instruction *User : I->users()) {
      if (User == ShadowOf[I])
        continue; // the shadow itself is not a path continuation
      if (User->parent() == BB && ShadowOf.count(User)) {
        HasSelectedUserHere = true;
        break;
      }
    }
    if (HasSelectedUserHere)
      continue;
    auto *Check = new CheckInst(I, ShadowOf[I]);
    Check->setDupLink(I);
    Check->setDebugLoc(I->debugLoc());
    BB->insertAfter(ShadowOf[I], std::unique_ptr<Instruction>(Check));
    ++Stats.ChecksInserted;
  }
}

/// The shadow of a duplicated original, found through the dupLink stamps
/// (null when the shadow was deleted by a later transform). Shadows are
/// not users of their original — their operands are remapped to other
/// shadows — so this scans the original's block, where the duplication
/// pass always places the shadow.
Instruction *shadowOf(Instruction *Orig) {
  for (Instruction *I : *Orig->parent())
    if (I->dupRole() == DupRole::Shadow && I->dupLink() == Orig)
      return I;
  return nullptr;
}

/// Post-pass for DuplicationOptions::CheckCallBoundary: walk each block
/// in order tracking which originals a preceding soc.check already
/// covers, and insert a check right before any non-intrinsic call that
/// receives an uncovered duplicated value. Runs after the whole module is
/// duplicated so cross-block arguments find their shadows too.
void insertCallBoundaryChecks(Module &M, DuplicationStats &Stats) {
  for (Function *F : M)
    for (BasicBlock *BB : *F) {
      std::vector<Instruction *> Insts;
      Insts.reserve(BB->size());
      for (Instruction *I : *BB)
        Insts.push_back(I);
      std::set<const Value *> Covered;
      for (Instruction *I : Insts) {
        if (auto *Check = dyn_cast<CheckInst>(I)) {
          Covered.insert(Check->original());
          continue;
        }
        auto *Call = dyn_cast<CallInst>(I);
        if (!Call || Call->isIntrinsicCall())
          continue;
        for (unsigned K = 0, E = Call->numArgs(); K != E; ++K) {
          auto *Arg = dyn_cast<Instruction>(Call->arg(K));
          if (!Arg || Arg->dupRole() != DupRole::Original ||
              Covered.count(Arg))
            continue;
          Instruction *Shadow = shadowOf(Arg);
          if (!Shadow)
            continue; // R3 territory: the shadow is gone entirely
          auto *Check = new CheckInst(Arg, Shadow);
          Check->setDupLink(Arg);
          Check->setDebugLoc(Call->debugLoc());
          BB->insertBefore(Call, std::unique_ptr<Instruction>(Check));
          Covered.insert(Arg);
          ++Stats.ChecksInserted;
        }
      }
    }
}

} // namespace

DuplicationStats
ipas::duplicateInstructions(Module &M, const ProtectionPredicate &Protect,
                            const DuplicationOptions &Opts) {
  DuplicationStats Stats;
  for (Function *F : M)
    for (BasicBlock *BB : *F)
      processBlock(BB, Protect, Opts, Stats);
  if (Opts.CheckCallBoundary)
    insertCallBoundaryChecks(M, Stats);
  return Stats;
}

DuplicationStats ipas::duplicateAllInstructions(Module &M) {
  return duplicateInstructions(M, [](const Instruction &) { return true; });
}
