//===- transform/Duplication.cpp ----------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Duplication.h"

#include <map>
#include <vector>

using namespace ipas;

namespace {

/// Duplicates the selected instructions of one basic block and inserts the
/// duplication-path checks.
void processBlock(BasicBlock *BB, const ProtectionPredicate &Protect,
                  const DuplicationOptions &Opts, DuplicationStats &Stats) {
  // Snapshot: the pass inserts while iterating.
  std::vector<Instruction *> Originals;
  Originals.reserve(BB->size());
  for (Instruction *I : *BB)
    Originals.push_back(I);

  // Pass 1: create shadows in order; shadows consume shadows.
  std::map<const Value *, Instruction *> ShadowOf;
  std::vector<Instruction *> Selected;
  for (Instruction *I : Originals) {
    ++Stats.TotalInstructions;
    if (!isDuplicableOpcode(I->opcode()))
      continue;
    ++Stats.EligibleInstructions;
    if (!Protect(*I))
      continue;
    ++Stats.SelectedInstructions;

    Instruction *Shadow = I->clone();
    if (!I->name().empty())
      Shadow->setName(I->name() + ".dup");
    I->setDupRole(DupRole::Original);
    Shadow->setDupRole(DupRole::Shadow);
    Shadow->setDupLink(I);
    for (unsigned OpIdx = 0; OpIdx != Shadow->numOperands(); ++OpIdx) {
      auto It = ShadowOf.find(Shadow->operand(OpIdx));
      if (It != ShadowOf.end())
        Shadow->setOperand(OpIdx, It->second);
    }
    BB->insertAfter(I, std::unique_ptr<Instruction>(Shadow));
    ShadowOf[I] = Shadow;
    Selected.push_back(I);
    ++Stats.DuplicatedInstructions;
  }

  // Pass 2: place checks. In the SWIFT-style ablation every duplicated
  // instruction gets one; in the paper's design only duplication-path
  // ends — selected instructions with no selected user inside this block
  // — are checked.
  for (Instruction *I : Selected) {
    if (Opts.Placement == CheckPlacement::EveryInstruction) {
      auto *Check = new CheckInst(I, ShadowOf[I]);
      Check->setDupLink(I);
      Check->setDebugLoc(I->debugLoc());
      BB->insertAfter(ShadowOf[I], std::unique_ptr<Instruction>(Check));
      ++Stats.ChecksInserted;
      continue;
    }
    bool HasSelectedUserHere = false;
    for (Instruction *User : I->users()) {
      if (User == ShadowOf[I])
        continue; // the shadow itself is not a path continuation
      if (User->parent() == BB && ShadowOf.count(User)) {
        HasSelectedUserHere = true;
        break;
      }
    }
    if (HasSelectedUserHere)
      continue;
    auto *Check = new CheckInst(I, ShadowOf[I]);
    Check->setDupLink(I);
    Check->setDebugLoc(I->debugLoc());
    BB->insertAfter(ShadowOf[I], std::unique_ptr<Instruction>(Check));
    ++Stats.ChecksInserted;
  }
}

} // namespace

DuplicationStats
ipas::duplicateInstructions(Module &M, const ProtectionPredicate &Protect,
                            const DuplicationOptions &Opts) {
  DuplicationStats Stats;
  for (Function *F : M)
    for (BasicBlock *BB : *F)
      processBlock(BB, Protect, Opts, Stats);
  return Stats;
}

DuplicationStats ipas::duplicateAllInstructions(Module &M) {
  return duplicateInstructions(M, [](const Instruction &) { return true; });
}
