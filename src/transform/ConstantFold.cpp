//===- transform/ConstantFold.cpp ----------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/ConstantFold.h"

#include <cmath>
#include <optional>

using namespace ipas;

namespace {

std::optional<int64_t> intValue(const Value *V) {
  if (const auto *CI = dyn_cast<ConstantInt>(V))
    return CI->value();
  return std::nullopt;
}

std::optional<double> fpValue(const Value *V) {
  if (const auto *CF = dyn_cast<ConstantFP>(V))
    return CF->value();
  return std::nullopt;
}

/// Computes the folded replacement for \p I, or null if not foldable.
Value *foldInstruction(Module &M, Instruction *I) {
  Opcode Op = I->opcode();

  if (isIntBinaryOpcode(Op)) {
    auto A = intValue(I->operand(0));
    auto B = intValue(I->operand(1));
    // Identities that need only one constant operand.
    if (B) {
      if ((Op == Opcode::Add || Op == Opcode::Sub || Op == Opcode::Or ||
           Op == Opcode::Xor || Op == Opcode::Shl ||
           Op == Opcode::AShr) &&
          *B == 0 && I->type().isI64())
        return I->operand(0);
      if (Op == Opcode::Mul && *B == 1)
        return I->operand(0);
    }
    if (!A || !B)
      return nullptr;
    uint64_t UA = static_cast<uint64_t>(*A), UB = static_cast<uint64_t>(*B);
    uint64_t R;
    switch (Op) {
    case Opcode::Add:
      R = UA + UB;
      break;
    case Opcode::Sub:
      R = UA - UB;
      break;
    case Opcode::Mul:
      R = UA * UB;
      break;
    case Opcode::SDiv:
    case Opcode::SRem:
      // Trapping cases must stay: they are observable behaviour.
      if (*B == 0 || (*A == INT64_MIN && *B == -1))
        return nullptr;
      R = static_cast<uint64_t>(Op == Opcode::SDiv ? *A / *B : *A % *B);
      break;
    case Opcode::And:
      R = UA & UB;
      break;
    case Opcode::Or:
      R = UA | UB;
      break;
    case Opcode::Xor:
      R = UA ^ UB;
      break;
    case Opcode::Shl:
      R = UA << (UB & 63);
      break;
    default:
      R = static_cast<uint64_t>(*A >> (UB & 63));
      break;
    }
    if (I->type().isI1())
      R &= 1;
    return M.getConstantInt(I->type(), static_cast<int64_t>(R));
  }

  if (isFPBinaryOpcode(Op)) {
    auto A = fpValue(I->operand(0));
    auto B = fpValue(I->operand(1));
    if (!A || !B)
      return nullptr;
    double R;
    switch (Op) {
    case Opcode::FAdd:
      R = *A + *B;
      break;
    case Opcode::FSub:
      R = *A - *B;
      break;
    case Opcode::FMul:
      R = *A * *B;
      break;
    default:
      R = *A / *B;
      break;
    }
    return M.getFloat(R);
  }

  if (isCmpOpcode(Op)) {
    const auto *Cmp = cast<CmpInst>(I);
    bool R;
    if (Op == Opcode::ICmp) {
      auto A = intValue(I->operand(0));
      auto B = intValue(I->operand(1));
      if (!A || !B)
        return nullptr;
      switch (Cmp->predicate()) {
      case CmpPredicate::EQ:
        R = *A == *B;
        break;
      case CmpPredicate::NE:
        R = *A != *B;
        break;
      case CmpPredicate::LT:
        R = *A < *B;
        break;
      case CmpPredicate::LE:
        R = *A <= *B;
        break;
      case CmpPredicate::GT:
        R = *A > *B;
        break;
      default:
        R = *A >= *B;
        break;
      }
    } else {
      auto A = fpValue(I->operand(0));
      auto B = fpValue(I->operand(1));
      if (!A || !B)
        return nullptr;
      switch (Cmp->predicate()) {
      case CmpPredicate::EQ:
        R = *A == *B;
        break;
      case CmpPredicate::NE:
        R = *A != *B;
        break;
      case CmpPredicate::LT:
        R = *A < *B;
        break;
      case CmpPredicate::LE:
        R = *A <= *B;
        break;
      case CmpPredicate::GT:
        R = *A > *B;
        break;
      default:
        R = *A >= *B;
        break;
      }
    }
    return M.getBool(R);
  }

  switch (Op) {
  case Opcode::SIToFP:
    if (auto A = intValue(I->operand(0)))
      return M.getFloat(static_cast<double>(*A));
    return nullptr;
  case Opcode::FPToSI:
    if (auto A = fpValue(I->operand(0))) {
      if (std::isnan(*A) || *A >= 9.2233720368547758e18 ||
          *A <= -9.2233720368547758e18)
        return M.getInt64(INT64_MIN);
      return M.getInt64(static_cast<int64_t>(*A));
    }
    return nullptr;
  case Opcode::ZExt:
    if (auto A = intValue(I->operand(0)))
      return M.getInt64(*A & 1);
    return nullptr;
  case Opcode::Select: {
    auto C = intValue(I->operand(0));
    if (!C)
      return nullptr;
    return I->operand((*C & 1) ? 1 : 2);
  }
  default:
    return nullptr;
  }
}

} // namespace

unsigned ipas::foldConstants(Function &F) {
  Module &M = *F.parent();
  unsigned Folded = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      std::vector<Instruction *> Work;
      for (Instruction *I : *BB)
        Work.push_back(I);
      for (Instruction *I : Work) {
        Value *Replacement = foldInstruction(M, I);
        if (!Replacement)
          continue;
        I->replaceAllUsesWith(Replacement);
        BB->erase(I);
        ++Folded;
        Changed = true;
      }
    }
  }
  return Folded;
}

unsigned ipas::foldConstants(Module &M) {
  unsigned N = 0;
  for (Function *F : M)
    N += foldConstants(*F);
  return N;
}
