//===- transform/Mem2Reg.h - SSA construction ------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Promotes single-slot allocas whose only uses are loads and stores into
/// SSA registers, inserting phi nodes at iterated dominance frontiers
/// (Cytron et al.). The MiniC frontend lowers every local to an alloca;
/// this pass recovers the SSA form the paper's LLVM pipeline would see.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_TRANSFORM_MEM2REG_H
#define IPAS_TRANSFORM_MEM2REG_H

#include "ir/Module.h"

namespace ipas {

/// Promotes eligible allocas in \p F. Returns the number promoted.
unsigned promoteAllocasToRegisters(Function &F);

/// Runs promotion over every function in \p M.
unsigned promoteAllocasToRegisters(Module &M);

} // namespace ipas

#endif // IPAS_TRANSFORM_MEM2REG_H
