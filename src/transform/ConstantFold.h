//===- transform/ConstantFold.h - Constant folding --------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Folds instructions whose operands are all constants (and a few safe
/// algebraic identities). The paper applies protection after user-level
/// optimizations (§3, step 4); this pass and DCE let the pipeline model
/// an optimized build.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_TRANSFORM_CONSTANTFOLD_H
#define IPAS_TRANSFORM_CONSTANTFOLD_H

#include "ir/Module.h"

namespace ipas {

/// Folds constants in \p F until fixpoint. Integer division by zero (and
/// other trapping cases) are never folded. Returns the number of
/// instructions folded away.
unsigned foldConstants(Function &F);

/// Runs folding over every function.
unsigned foldConstants(Module &M);

} // namespace ipas

#endif // IPAS_TRANSFORM_CONSTANTFOLD_H
