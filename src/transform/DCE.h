//===- transform/DCE.h - Dead code elimination -------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_TRANSFORM_DCE_H
#define IPAS_TRANSFORM_DCE_H

#include "ir/Module.h"

namespace ipas {

/// Deletes unused side-effect-free instructions (arithmetic, casts,
/// comparisons, geps, selects, phis, loads, and unused allocas) until
/// fixpoint. Stores, calls, checks, and terminators are never removed.
/// Returns the number of instructions deleted.
unsigned eliminateDeadCode(Function &F);

/// Runs DCE over every function.
unsigned eliminateDeadCode(Module &M);

} // namespace ipas

#endif // IPAS_TRANSFORM_DCE_H
