//===- transform/SimplifyCFG.h - CFG cleanup -------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_TRANSFORM_SIMPLIFYCFG_H
#define IPAS_TRANSFORM_SIMPLIFYCFG_H

#include "ir/Module.h"

namespace ipas {

/// Deletes blocks unreachable from the entry (e.g. the frontend's
/// dead-code landing blocks after `return`). Returns the number removed.
/// Must run before mem2reg inserts phis, or phi incoming lists would need
/// repair.
unsigned removeUnreachableBlocks(Function &F);

/// Runs removeUnreachableBlocks over every function.
unsigned removeUnreachableBlocks(Module &M);

} // namespace ipas

#endif // IPAS_TRANSFORM_SIMPLIFYCFG_H
