//===- transform/SimplifyCFG.cpp ----------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/SimplifyCFG.h"

#include <set>
#include <vector>

using namespace ipas;

unsigned ipas::removeUnreachableBlocks(Function &F) {
  if (F.empty())
    return 0;
  std::set<const BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work{F.entry()};
  Reachable.insert(F.entry());
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    for (BasicBlock *S : BB->successors())
      if (Reachable.insert(S).second)
        Work.push_back(S);
  }
  std::vector<BasicBlock *> Dead;
  for (BasicBlock *BB : F)
    if (!Reachable.count(BB))
      Dead.push_back(BB);
  F.eraseBlocks(Dead);
  return static_cast<unsigned>(Dead.size());
}

unsigned ipas::removeUnreachableBlocks(Module &M) {
  unsigned N = 0;
  for (Function *F : M)
    N += removeUnreachableBlocks(*F);
  return N;
}
