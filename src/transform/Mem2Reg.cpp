//===- transform/Mem2Reg.cpp --------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Mem2Reg.h"

#include "analysis/Dominators.h"
#include "transform/SimplifyCFG.h"

#include <map>
#include <set>
#include <vector>

using namespace ipas;

namespace {

/// Book-keeping for one promotable alloca.
struct PromotionTarget {
  AllocaInst *Slot = nullptr;
  Type VarType;
  std::vector<LoadInst *> Loads;
  std::vector<StoreInst *> Stores;
};

/// Determines whether \p A can be promoted and, if so, fills \p Out.
/// Promotable: exactly one slot; every use is a load from it or a store
/// *to* it (never the stored value); all accesses agree on one type.
bool analyzeAlloca(AllocaInst *A, PromotionTarget &Out) {
  if (A->slotCount() != 1)
    return false;
  Out.Slot = A;
  Type VarType = types::Void;
  for (Instruction *User : A->users()) {
    if (auto *Load = dyn_cast<LoadInst>(User)) {
      if (!VarType.isVoid() && Load->type() != VarType)
        return false;
      VarType = Load->type();
      Out.Loads.push_back(Load);
      continue;
    }
    if (auto *Store = dyn_cast<StoreInst>(User)) {
      if (Store->pointer() != A || Store->storedValue() == A)
        return false; // the address escapes as a stored value
      if (!VarType.isVoid() && Store->storedValue()->type() != VarType)
        return false;
      VarType = Store->storedValue()->type();
      Out.Stores.push_back(Store);
      continue;
    }
    return false; // used by a gep/call/phi/... -> address escapes
  }
  if (VarType.isVoid()) {
    // Never loaded or stored: dead alloca; promote trivially.
    Out.VarType = types::I64;
    return true;
  }
  Out.VarType = VarType;
  return true;
}

/// Default value for a variable read before any store reaches it (the C
/// program would be reading indeterminate memory; we define it as zero).
Value *undefValueFor(Module &M, Type T) {
  if (T.isF64())
    return M.getFloat(0.0);
  if (T.isI1())
    return M.getBool(false);
  if (T.isPtr())
    return M.getNullPtr();
  return M.getInt64(0);
}

class Promoter {
public:
  Promoter(Function &F, DominatorTree &DT) : F(F), DT(DT) {}

  unsigned run() {
    collectTargets();
    if (Targets.empty())
      return 0;
    insertPhis();
    // Seed every variable with its undef value at entry, then rename.
    std::map<const AllocaInst *, Value *> Current;
    for (auto &T : Targets)
      Current[T.Slot] = undefValueFor(*F.parent(), T.VarType);
    rename(F.entry(), Current);
    cleanup();
    return static_cast<unsigned>(Targets.size());
  }

private:
  void collectTargets() {
    for (BasicBlock *BB : F)
      for (Instruction *I : *BB)
        if (auto *A = dyn_cast<AllocaInst>(I)) {
          PromotionTarget T;
          if (analyzeAlloca(A, T))
            Targets.push_back(std::move(T));
        }
    for (size_t I = 0; I != Targets.size(); ++I)
      TargetIndex[Targets[I].Slot] = I;
  }

  void insertPhis() {
    for (PromotionTarget &T : Targets) {
      // Iterated dominance frontier of the store blocks.
      std::set<BasicBlock *> DefBlocks;
      for (StoreInst *S : T.Stores)
        DefBlocks.insert(S->parent());
      std::set<BasicBlock *> PhiBlocks;
      std::vector<BasicBlock *> Work(DefBlocks.begin(), DefBlocks.end());
      while (!Work.empty()) {
        BasicBlock *BB = Work.back();
        Work.pop_back();
        if (!DT.isReachable(BB))
          continue;
        for (BasicBlock *DF : DT.frontier(BB))
          if (PhiBlocks.insert(DF).second)
            Work.push_back(DF);
      }
      for (BasicBlock *BB : PhiBlocks) {
        auto *Phi = new PhiInst(T.VarType);
        Phi->setName(T.Slot->name());
        // The phi merges the promoted variable, so it is attributable to
        // the variable's declaration.
        Phi->setDebugLoc(T.Slot->debugLoc());
        if (BB->empty())
          BB->append(std::unique_ptr<Instruction>(Phi));
        else
          BB->insertBefore(BB->front(), std::unique_ptr<Instruction>(Phi));
        PhiToTarget[Phi] = TargetIndex.at(T.Slot);
      }
    }
  }

  void rename(BasicBlock *BB,
              std::map<const AllocaInst *, Value *> Current) {
    // Phis at the block top define new current values.
    for (Instruction *I : *BB) {
      if (I->opcode() != Opcode::Phi)
        break;
      auto It = PhiToTarget.find(cast<PhiInst>(I));
      if (It != PhiToTarget.end())
        Current[Targets[It->second].Slot] = I;
    }
    // Rewrite loads, record stores.
    std::vector<Instruction *> ToErase;
    for (Instruction *I : *BB) {
      if (auto *Load = dyn_cast<LoadInst>(I)) {
        auto *A = dyn_cast<AllocaInst>(Load->pointer());
        if (A && TargetIndex.count(A)) {
          Load->replaceAllUsesWith(Current.at(A));
          ToErase.push_back(Load);
        }
      } else if (auto *Store = dyn_cast<StoreInst>(I)) {
        auto *A = dyn_cast<AllocaInst>(Store->pointer());
        if (A && TargetIndex.count(A)) {
          Current[A] = Store->storedValue();
          ToErase.push_back(Store);
        }
      }
    }
    for (Instruction *I : ToErase)
      BB->erase(I);
    // Feed successor phis.
    for (BasicBlock *S : BB->successors())
      for (Instruction *I : *S) {
        if (I->opcode() != Opcode::Phi)
          break;
        auto It = PhiToTarget.find(cast<PhiInst>(I));
        if (It != PhiToTarget.end())
          cast<PhiInst>(I)->addIncoming(
              Current.at(Targets[It->second].Slot), BB);
      }
    // Recurse over dominator-tree children (copies Current by value).
    for (BasicBlock *Child : DT.children(BB))
      rename(Child, Current);
  }

  void cleanup() {
    for (PromotionTarget &T : Targets) {
      assert(!T.Slot->hasUses() && "alloca still used after promotion");
      T.Slot->parent()->erase(T.Slot);
    }
  }

  Function &F;
  DominatorTree &DT;
  std::vector<PromotionTarget> Targets;
  std::map<const AllocaInst *, size_t> TargetIndex;
  std::map<const PhiInst *, size_t> PhiToTarget;
};

} // namespace

unsigned ipas::promoteAllocasToRegisters(Function &F) {
  if (F.empty())
    return 0;
  // Renaming walks the dominator tree from the entry, so unreachable
  // blocks (which it would never visit) must be gone first.
  removeUnreachableBlocks(F);
  DominatorTree DT(F);
  return Promoter(F, DT).run();
}

unsigned ipas::promoteAllocasToRegisters(Module &M) {
  unsigned N = 0;
  for (Function *F : M)
    N += promoteAllocasToRegisters(*F);
  return N;
}
