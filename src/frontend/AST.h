//===- frontend/AST.h - MiniC abstract syntax tree ------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_FRONTEND_AST_H
#define IPAS_FRONTEND_AST_H

#include "frontend/Lexer.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace ipas {

/// A MiniC type: int / double / void with a pointer depth of 0..2.
/// `void*` is the type of malloc() and converts implicitly to any pointer.
struct MCType {
  enum class Base : uint8_t { Void, Int, Double };

  Base B = Base::Void;
  unsigned PtrDepth = 0;

  MCType() = default;
  MCType(Base B, unsigned Depth = 0) : B(B), PtrDepth(Depth) {}

  static MCType intTy() { return MCType(Base::Int); }
  static MCType doubleTy() { return MCType(Base::Double); }
  static MCType voidTy() { return MCType(Base::Void); }

  bool isVoid() const { return B == Base::Void && PtrDepth == 0; }
  bool isInt() const { return B == Base::Int && PtrDepth == 0; }
  bool isDouble() const { return B == Base::Double && PtrDepth == 0; }
  bool isArithmetic() const { return isInt() || isDouble(); }
  bool isPointer() const { return PtrDepth > 0; }
  bool isVoidPointer() const { return B == Base::Void && PtrDepth == 1; }

  MCType pointee() const {
    assert(PtrDepth > 0 && "pointee() of non-pointer");
    return MCType(B, PtrDepth - 1);
  }
  MCType pointerTo() const { return MCType(B, PtrDepth + 1); }

  bool operator==(const MCType &O) const {
    return B == O.B && PtrDepth == O.PtrDepth;
  }
  bool operator!=(const MCType &O) const { return !(*this == O); }

  std::string str() const {
    std::string S = B == Base::Void    ? "void"
                    : B == Base::Int   ? "int"
                                       : "double";
    S.append(PtrDepth, '*');
    return S;
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLit,
  FloatLit,
  VarRef,
  Binary,
  Unary,
  Call,
  Index,
  Assign,
  Cast,
};

struct Expr {
  ExprKind Kind;
  SourceLoc Loc;

  Expr(ExprKind K, SourceLoc L) : Kind(K), Loc(L) {}
  virtual ~Expr() = default;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  int64_t Value;
  IntLitExpr(int64_t V, SourceLoc L) : Expr(ExprKind::IntLit, L), Value(V) {}
};

struct FloatLitExpr : Expr {
  double Value;
  FloatLitExpr(double V, SourceLoc L)
      : Expr(ExprKind::FloatLit, L), Value(V) {}
};

struct VarRefExpr : Expr {
  std::string Name;
  VarRefExpr(std::string N, SourceLoc L)
      : Expr(ExprKind::VarRef, L), Name(std::move(N)) {}
};

/// Arithmetic, comparison, and logical (&&, ||) binary operators, keyed by
/// the operator token kind.
struct BinaryExpr : Expr {
  TokenKind Op;
  ExprPtr LHS, RHS;
  BinaryExpr(TokenKind Op, ExprPtr L, ExprPtr R, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(std::move(L)),
        RHS(std::move(R)) {}
};

/// Unary minus, logical not, and pointer dereference.
struct UnaryExpr : Expr {
  TokenKind Op;
  ExprPtr Sub;
  UnaryExpr(TokenKind Op, ExprPtr S, SourceLoc Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Sub(std::move(S)) {}
};

struct CallExpr : Expr {
  std::string Callee;
  std::vector<ExprPtr> Args;
  CallExpr(std::string C, std::vector<ExprPtr> A, SourceLoc Loc)
      : Expr(ExprKind::Call, Loc), Callee(std::move(C)), Args(std::move(A)) {}
};

struct IndexExpr : Expr {
  ExprPtr Base, Index;
  IndexExpr(ExprPtr B, ExprPtr I, SourceLoc Loc)
      : Expr(ExprKind::Index, Loc), Base(std::move(B)), Index(std::move(I)) {}
};

/// `target = value` and the compound forms (+=, -=, *=, /=). The target
/// must be an lvalue: a variable, an index expression, or a dereference.
struct AssignExpr : Expr {
  TokenKind Op; ///< Assign or one of the compound-assign kinds.
  ExprPtr Target, Value;
  AssignExpr(TokenKind Op, ExprPtr T, ExprPtr V, SourceLoc Loc)
      : Expr(ExprKind::Assign, Loc), Op(Op), Target(std::move(T)),
        Value(std::move(V)) {}
};

/// Explicit `(int)x` / `(double)x` conversion.
struct CastExpr : Expr {
  MCType To;
  ExprPtr Sub;
  CastExpr(MCType To, ExprPtr S, SourceLoc Loc)
      : Expr(ExprKind::Cast, Loc), To(To), Sub(std::move(S)) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  Decl,
  Expr,
  If,
  While,
  For,
  Return,
  Break,
  Continue,
};

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;
  Stmt(StmtKind K, SourceLoc L) : Kind(K), Loc(L) {}
  virtual ~Stmt() = default;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt : Stmt {
  std::vector<StmtPtr> Stmts;
  explicit BlockStmt(SourceLoc L) : Stmt(StmtKind::Block, L) {}
};

/// `int x;`, `double v[64];`, `double y = e;`. ArraySlots < 0 means a
/// scalar; otherwise a fixed-size local array of that many elements.
struct DeclStmt : Stmt {
  MCType Ty;
  std::string Name;
  int64_t ArraySlots = -1;
  ExprPtr Init;
  DeclStmt(MCType Ty, std::string N, SourceLoc L)
      : Stmt(StmtKind::Decl, L), Ty(Ty), Name(std::move(N)) {}
};

struct ExprStmt : Stmt {
  ExprPtr E;
  ExprStmt(ExprPtr E, SourceLoc L) : Stmt(StmtKind::Expr, L), E(std::move(E)) {}
};

struct IfStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Then, Else; ///< Else may be null.
  IfStmt(SourceLoc L) : Stmt(StmtKind::If, L) {}
};

struct WhileStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Body;
  WhileStmt(SourceLoc L) : Stmt(StmtKind::While, L) {}
};

struct ForStmt : Stmt {
  StmtPtr Init;  ///< Declaration or expression statement; may be null.
  ExprPtr Cond;  ///< May be null (infinite loop).
  ExprPtr Inc;   ///< May be null.
  StmtPtr Body;
  ForStmt(SourceLoc L) : Stmt(StmtKind::For, L) {}
};

struct ReturnStmt : Stmt {
  ExprPtr Value; ///< Null for `return;`.
  ReturnStmt(SourceLoc L) : Stmt(StmtKind::Return, L) {}
};

struct BreakStmt : Stmt {
  explicit BreakStmt(SourceLoc L) : Stmt(StmtKind::Break, L) {}
};

struct ContinueStmt : Stmt {
  explicit ContinueStmt(SourceLoc L) : Stmt(StmtKind::Continue, L) {}
};

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

struct ParamDecl {
  MCType Ty;
  std::string Name;
  SourceLoc Loc;
};

struct FunctionDecl {
  MCType RetTy;
  std::string Name;
  std::vector<ParamDecl> Params;
  std::unique_ptr<BlockStmt> Body;
  SourceLoc Loc;
};

struct TranslationUnit {
  std::vector<std::unique_ptr<FunctionDecl>> Functions;
};

} // namespace ipas

#endif // IPAS_FRONTEND_AST_H
