//===- frontend/CodeGen.cpp ----------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/CodeGen.h"

#include "frontend/Parser.h"

#include <sstream>

using namespace ipas;

Type CodeGen::irType(MCType T) {
  if (T.isPointer())
    return types::Ptr;
  if (T.isInt())
    return types::I64;
  if (T.isDouble())
    return types::F64;
  return types::Void;
}

/// MiniC-level view of an intrinsic's IR type.
static MCType mcTypeForIR(Type T) {
  if (T.isPtr())
    return MCType(MCType::Base::Void, 1); // void*, converts to any pointer
  if (T.isI64())
    return MCType::intTy();
  if (T.isF64())
    return MCType::doubleTy();
  return MCType::voidTy();
}

std::unique_ptr<Module> CodeGen::run(const TranslationUnit &TU,
                                     std::string ModuleName) {
  M = std::make_unique<Module>(std::move(ModuleName));
  B = std::make_unique<IRBuilder>(*M);
  if (!declareFunctions(TU))
    return nullptr;
  for (const auto &FD : TU.Functions)
    genFunction(*FD);
  if (Diags.hasErrors())
    return nullptr;
  return std::move(M);
}

bool CodeGen::declareFunctions(const TranslationUnit &TU) {
  for (const auto &FD : TU.Functions) {
    if (FunctionDecls.count(FD->Name)) {
      Diags.error(FD->Loc, "redefinition of function '" + FD->Name + "'");
      return false;
    }
    if (intrinsicByName(FD->Name.c_str()) != Intrinsic::None) {
      Diags.error(FD->Loc,
                  "function '" + FD->Name + "' shadows a runtime intrinsic");
      return false;
    }
    std::vector<Type> Params;
    Params.reserve(FD->Params.size());
    for (const ParamDecl &P : FD->Params)
      Params.push_back(irType(P.Ty));
    Function *F =
        M->createFunction(FD->Name, irType(FD->RetTy), std::move(Params));
    for (unsigned I = 0; I != F->numArgs(); ++I)
      F->arg(I)->setName(FD->Params[I].Name);
    FunctionDecls[FD->Name] = FD.get();
  }
  return true;
}

void CodeGen::startBlock(BasicBlock *BB) { B->setInsertPoint(BB); }

void CodeGen::setLoc(SourceLoc L) {
  B->setCurrentDebugLoc(DebugLoc(L.Line, L.Column));
}

bool CodeGen::blockTerminated() const {
  BasicBlock *BB = B->insertBlock();
  return !BB->empty() && BB->back()->isTerminator();
}

Value *CodeGen::createLocalAlloca(uint64_t Slots, const std::string &Name) {
  // Allocas are hoisted to the top of the entry block so that a declaration
  // inside a loop does not grow the frame every iteration.
  auto *A = new AllocaInst(Slots);
  A->setName(Name);
  A->setDebugLoc(B->currentDebugLoc());
  if (NumEntryAllocas < EntryBlock->size())
    EntryBlock->insertBefore(EntryBlock->at(NumEntryAllocas),
                             std::unique_ptr<Instruction>(A));
  else
    EntryBlock->append(std::unique_ptr<Instruction>(A));
  ++NumEntryAllocas;
  return A;
}

CodeGen::LocalVar *CodeGen::lookup(const std::string &Name) {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return &Found->second;
  }
  return nullptr;
}

void CodeGen::genFunction(const FunctionDecl &FD) {
  CurFn = M->getFunction(FD.Name);
  CurDecl = &FD;
  NextBlockId = 0;
  NumEntryAllocas = 0;
  Scopes.clear();
  LoopStack.clear();

  EntryBlock = CurFn->addBlock("entry");
  startBlock(EntryBlock);
  setLoc(FD.Loc);

  // Spill parameters into allocas so they are ordinary mutable locals.
  Scopes.emplace_back();
  for (unsigned I = 0; I != CurFn->numArgs(); ++I) {
    const ParamDecl &P = FD.Params[I];
    setLoc(P.Loc);
    Value *Slot = createLocalAlloca(1, P.Name + ".addr");
    B->createStore(CurFn->arg(I), Slot);
    if (Scopes.back().count(P.Name))
      Diags.error(P.Loc, "duplicate parameter name '" + P.Name + "'");
    Scopes.back()[P.Name] = LocalVar{Slot, P.Ty, /*IsArray=*/false};
  }

  genBlock(*FD.Body);

  // Close every unterminated block with an implicit return, attributed to
  // the function declaration (there is no closing-brace location).
  setLoc(FD.Loc);
  for (BasicBlock *BB : *CurFn) {
    if (BB->terminator())
      continue;
    startBlock(BB);
    if (FD.RetTy.isVoid())
      B->createRet();
    else if (FD.RetTy.isDouble())
      B->createRet(B->getFloat(0.0));
    else if (FD.RetTy.isPointer())
      B->createRet(B->getNullPtr());
    else
      B->createRet(B->getInt64(0));
  }
  Scopes.clear();
}

void CodeGen::genBlock(const BlockStmt &Block) {
  Scopes.emplace_back();
  for (const StmtPtr &S : Block.Stmts)
    genStatement(*S);
  Scopes.pop_back();
}

void CodeGen::genStatement(const Stmt &S) {
  // Statements after a terminator (e.g. code after `return`) land in a
  // fresh unreachable block, which a later CFG cleanup removes.
  if (blockTerminated()) {
    BasicBlock *Dead =
        CurFn->addBlock("dead." + std::to_string(NextBlockId++));
    startBlock(Dead);
  }
  setLoc(S.Loc);
  switch (S.Kind) {
  case StmtKind::Block:
    genBlock(static_cast<const BlockStmt &>(S));
    return;
  case StmtKind::Decl:
    genDecl(static_cast<const DeclStmt &>(S));
    return;
  case StmtKind::Expr:
    genExpr(*static_cast<const ExprStmt &>(S).E);
    return;
  case StmtKind::If:
    genIf(static_cast<const IfStmt &>(S));
    return;
  case StmtKind::While:
    genWhile(static_cast<const WhileStmt &>(S));
    return;
  case StmtKind::For:
    genFor(static_cast<const ForStmt &>(S));
    return;
  case StmtKind::Return:
    genReturn(static_cast<const ReturnStmt &>(S));
    return;
  case StmtKind::Break:
    if (LoopStack.empty()) {
      Diags.error(S.Loc, "'break' outside of a loop");
      return;
    }
    B->createBr(LoopStack.back().BreakTarget);
    return;
  case StmtKind::Continue:
    if (LoopStack.empty()) {
      Diags.error(S.Loc, "'continue' outside of a loop");
      return;
    }
    B->createBr(LoopStack.back().ContinueTarget);
    return;
  }
}

void CodeGen::genDecl(const DeclStmt &D) {
  if (Scopes.back().count(D.Name)) {
    Diags.error(D.Loc, "redeclaration of '" + D.Name + "' in this scope");
    return;
  }
  LocalVar Var;
  if (D.ArraySlots >= 0) {
    Var.Slot = createLocalAlloca(static_cast<uint64_t>(D.ArraySlots), D.Name);
    Var.Ty = D.Ty.pointerTo(); // arrays decay to element pointers
    Var.IsArray = true;
  } else {
    Var.Slot = createLocalAlloca(1, D.Name);
    Var.Ty = D.Ty;
    Var.IsArray = false;
    if (D.Init) {
      RValue Init = genExpr(*D.Init);
      if (!Init.valid())
        return;
      Init = convert(Init, D.Ty, D.Loc);
      if (!Init.valid())
        return;
      B->createStore(Init.V, Var.Slot);
    }
  }
  Scopes.back()[D.Name] = Var;
}

void CodeGen::genIf(const IfStmt &S) {
  Value *Cond = genCondition(*S.Cond);
  if (!Cond)
    return;
  unsigned Id = NextBlockId++;
  BasicBlock *ThenBB = CurFn->addBlock("if.then." + std::to_string(Id));
  BasicBlock *MergeBB = CurFn->addBlock("if.end." + std::to_string(Id));
  BasicBlock *ElseBB =
      S.Else ? CurFn->addBlock("if.else." + std::to_string(Id)) : MergeBB;

  B->createCondBr(Cond, ThenBB, ElseBB);
  startBlock(ThenBB);
  genStatement(*S.Then);
  if (!blockTerminated())
    B->createBr(MergeBB);
  if (S.Else) {
    startBlock(ElseBB);
    genStatement(*S.Else);
    if (!blockTerminated())
      B->createBr(MergeBB);
  }
  startBlock(MergeBB);
}

void CodeGen::genWhile(const WhileStmt &S) {
  unsigned Id = NextBlockId++;
  BasicBlock *CondBB = CurFn->addBlock("while.cond." + std::to_string(Id));
  BasicBlock *BodyBB = CurFn->addBlock("while.body." + std::to_string(Id));
  BasicBlock *EndBB = CurFn->addBlock("while.end." + std::to_string(Id));

  B->createBr(CondBB);
  startBlock(CondBB);
  Value *Cond = genCondition(*S.Cond);
  if (!Cond)
    return;
  B->createCondBr(Cond, BodyBB, EndBB);

  LoopStack.push_back({EndBB, CondBB});
  startBlock(BodyBB);
  genStatement(*S.Body);
  if (!blockTerminated())
    B->createBr(CondBB);
  LoopStack.pop_back();

  startBlock(EndBB);
}

void CodeGen::genFor(const ForStmt &S) {
  Scopes.emplace_back(); // for-init declarations scope to the loop
  if (S.Init)
    genStatement(*S.Init);

  unsigned Id = NextBlockId++;
  BasicBlock *CondBB = CurFn->addBlock("for.cond." + std::to_string(Id));
  BasicBlock *BodyBB = CurFn->addBlock("for.body." + std::to_string(Id));
  BasicBlock *IncBB = CurFn->addBlock("for.inc." + std::to_string(Id));
  BasicBlock *EndBB = CurFn->addBlock("for.end." + std::to_string(Id));

  B->createBr(CondBB);
  startBlock(CondBB);
  if (S.Cond) {
    Value *Cond = genCondition(*S.Cond);
    if (!Cond) {
      Scopes.pop_back();
      return;
    }
    B->createCondBr(Cond, BodyBB, EndBB);
  } else {
    B->createBr(BodyBB);
  }

  LoopStack.push_back({EndBB, IncBB});
  startBlock(BodyBB);
  genStatement(*S.Body);
  if (!blockTerminated())
    B->createBr(IncBB);
  LoopStack.pop_back();

  startBlock(IncBB);
  if (S.Inc)
    genExpr(*S.Inc);
  B->createBr(CondBB);

  startBlock(EndBB);
  Scopes.pop_back();
}

void CodeGen::genReturn(const ReturnStmt &S) {
  if (CurDecl->RetTy.isVoid()) {
    if (S.Value) {
      Diags.error(S.Loc, "void function cannot return a value");
      return;
    }
    B->createRet();
    return;
  }
  if (!S.Value) {
    Diags.error(S.Loc, "non-void function must return a value");
    return;
  }
  RValue V = genExpr(*S.Value);
  if (!V.valid())
    return;
  V = convert(V, CurDecl->RetTy, S.Loc);
  if (!V.valid())
    return;
  B->createRet(V.V);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

CodeGen::RValue CodeGen::convert(RValue V, MCType To, SourceLoc Loc) {
  if (!V.valid())
    return {};
  if (V.Ty == To)
    return V;
  if (V.Ty.isInt() && To.isDouble())
    return {B->createSIToFP(V.V), To};
  if (V.Ty.isDouble() && To.isInt())
    return {B->createFPToSI(V.V), To};
  // void* converts to and from any pointer (both are IR ptr).
  if (V.Ty.isPointer() && To.isPointer() &&
      (V.Ty.isVoidPointer() || To.isVoidPointer()))
    return {V.V, To};
  Diags.error(Loc, "cannot convert '" + V.Ty.str() + "' to '" + To.str() +
                       "'");
  return {};
}

bool CodeGen::usualArithmetic(RValue &L, RValue &R, SourceLoc Loc) {
  if (!L.Ty.isArithmetic() || !R.Ty.isArithmetic()) {
    Diags.error(Loc, "operands must be arithmetic (got '" + L.Ty.str() +
                         "' and '" + R.Ty.str() + "')");
    return false;
  }
  if (L.Ty.isDouble() && R.Ty.isInt())
    R = convert(R, MCType::doubleTy(), Loc);
  else if (L.Ty.isInt() && R.Ty.isDouble())
    L = convert(L, MCType::doubleTy(), Loc);
  return L.valid() && R.valid();
}

Value *CodeGen::toBool(RValue V, SourceLoc Loc) {
  if (!V.valid())
    return nullptr;
  if (V.Ty.isInt())
    return B->createICmp(CmpPredicate::NE, V.V, B->getInt64(0));
  if (V.Ty.isDouble())
    return B->createFCmp(CmpPredicate::NE, V.V, B->getFloat(0.0));
  if (V.Ty.isPointer())
    return B->createICmp(CmpPredicate::NE, V.V, B->getNullPtr());
  Diags.error(Loc, "value of type '" + V.Ty.str() + "' is not a condition");
  return nullptr;
}

static bool isComparisonTok(TokenKind K) {
  return K == TokenKind::Less || K == TokenKind::LessEqual ||
         K == TokenKind::Greater || K == TokenKind::GreaterEqual ||
         K == TokenKind::EqualEqual || K == TokenKind::NotEqual;
}

static CmpPredicate predicateFor(TokenKind K) {
  switch (K) {
  case TokenKind::Less:
    return CmpPredicate::LT;
  case TokenKind::LessEqual:
    return CmpPredicate::LE;
  case TokenKind::Greater:
    return CmpPredicate::GT;
  case TokenKind::GreaterEqual:
    return CmpPredicate::GE;
  case TokenKind::EqualEqual:
    return CmpPredicate::EQ;
  default:
    return CmpPredicate::NE;
  }
}

Value *CodeGen::genCondition(const Expr &E) {
  setLoc(E.Loc);
  // Fold `a < b` style conditions straight to an i1 without the
  // int-materialization round trip.
  if (E.Kind == ExprKind::Binary) {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    if (isComparisonTok(Bin.Op)) {
      RValue L = genExpr(*Bin.LHS);
      RValue R = genExpr(*Bin.RHS);
      if (!L.valid() || !R.valid())
        return nullptr;
      setLoc(Bin.Loc);
      if (L.Ty.isPointer() && R.Ty.isPointer())
        return B->createICmp(predicateFor(Bin.Op), L.V, R.V);
      if (!usualArithmetic(L, R, Bin.Loc))
        return nullptr;
      if (L.Ty.isDouble())
        return B->createFCmp(predicateFor(Bin.Op), L.V, R.V);
      return B->createICmp(predicateFor(Bin.Op), L.V, R.V);
    }
  }
  RValue V = genExpr(E);
  if (!V.valid())
    return nullptr;
  setLoc(E.Loc);
  return toBool(V, E.Loc);
}

CodeGen::RValue CodeGen::genExpr(const Expr &E) {
  setLoc(E.Loc);
  switch (E.Kind) {
  case ExprKind::IntLit:
    return {B->getInt64(static_cast<const IntLitExpr &>(E).Value),
            MCType::intTy()};
  case ExprKind::FloatLit:
    return {B->getFloat(static_cast<const FloatLitExpr &>(E).Value),
            MCType::doubleTy()};
  case ExprKind::VarRef: {
    const auto &Ref = static_cast<const VarRefExpr &>(E);
    LocalVar *Var = lookup(Ref.Name);
    if (!Var) {
      Diags.error(E.Loc, "use of undeclared identifier '" + Ref.Name + "'");
      return {};
    }
    if (Var->IsArray)
      return {Var->Slot, Var->Ty}; // array decays to pointer
    return {B->createLoad(irType(Var->Ty), Var->Slot, Ref.Name), Var->Ty};
  }
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    if (Bin.Op == TokenKind::AmpAmp || Bin.Op == TokenKind::PipePipe)
      return genShortCircuit(Bin);
    return genBinary(Bin);
  }
  case ExprKind::Unary:
    return genUnary(static_cast<const UnaryExpr &>(E));
  case ExprKind::Call:
    return genCall(static_cast<const CallExpr &>(E));
  case ExprKind::Index: {
    LValue LV = genLValue(E);
    if (!LV.valid())
      return {};
    return {B->createLoad(irType(LV.Ty), LV.Addr), LV.Ty};
  }
  case ExprKind::Assign:
    return genAssign(static_cast<const AssignExpr &>(E));
  case ExprKind::Cast: {
    const auto &Cast = static_cast<const CastExpr &>(E);
    RValue V = genExpr(*Cast.Sub);
    return convert(V, Cast.To, Cast.Loc);
  }
  }
  return {};
}

CodeGen::RValue CodeGen::genBinary(const BinaryExpr &E) {
  RValue L = genExpr(*E.LHS);
  RValue R = genExpr(*E.RHS);
  if (!L.valid() || !R.valid())
    return {};
  setLoc(E.Loc);

  // Pointer arithmetic: ptr + int, ptr - int (element-granular like C).
  if (L.Ty.isPointer() &&
      (E.Op == TokenKind::Plus || E.Op == TokenKind::Minus)) {
    R = convert(R, MCType::intTy(), E.Loc);
    if (!R.valid())
      return {};
    Value *Index = R.V;
    if (E.Op == TokenKind::Minus)
      Index = B->createSub(B->getInt64(0), Index);
    return {B->createGep(L.V, Index), L.Ty};
  }

  if (isComparisonTok(E.Op)) {
    Value *Cond = nullptr;
    if (L.Ty.isPointer() && R.Ty.isPointer()) {
      Cond = B->createICmp(predicateFor(E.Op), L.V, R.V);
    } else {
      if (!usualArithmetic(L, R, E.Loc))
        return {};
      Cond = L.Ty.isDouble() ? B->createFCmp(predicateFor(E.Op), L.V, R.V)
                             : B->createICmp(predicateFor(E.Op), L.V, R.V);
    }
    return {B->createZExt(Cond), MCType::intTy()};
  }

  if (!usualArithmetic(L, R, E.Loc))
    return {};
  bool IsFP = L.Ty.isDouble();
  Opcode Op;
  switch (E.Op) {
  case TokenKind::Plus:
    Op = IsFP ? Opcode::FAdd : Opcode::Add;
    break;
  case TokenKind::Minus:
    Op = IsFP ? Opcode::FSub : Opcode::Sub;
    break;
  case TokenKind::Star:
    Op = IsFP ? Opcode::FMul : Opcode::Mul;
    break;
  case TokenKind::Slash:
    Op = IsFP ? Opcode::FDiv : Opcode::SDiv;
    break;
  case TokenKind::Percent:
    if (IsFP) {
      Diags.error(E.Loc, "'%' requires integer operands");
      return {};
    }
    Op = Opcode::SRem;
    break;
  default:
    Diags.error(E.Loc, "unsupported binary operator");
    return {};
  }
  return {B->createBinary(Op, L.V, R.V), L.Ty};
}

CodeGen::RValue CodeGen::genShortCircuit(const BinaryExpr &E) {
  bool IsAnd = E.Op == TokenKind::AmpAmp;
  unsigned Id = NextBlockId++;
  const char *Tag = IsAnd ? "and" : "or";
  BasicBlock *RhsBB =
      CurFn->addBlock(std::string(Tag) + ".rhs." + std::to_string(Id));
  BasicBlock *MergeBB =
      CurFn->addBlock(std::string(Tag) + ".end." + std::to_string(Id));

  Value *Tmp = createLocalAlloca(1, std::string(Tag) + ".tmp");
  B->createStore(B->getInt64(IsAnd ? 0 : 1), Tmp);

  Value *LCond = genCondition(*E.LHS);
  if (!LCond)
    return {};
  if (IsAnd)
    B->createCondBr(LCond, RhsBB, MergeBB);
  else
    B->createCondBr(LCond, MergeBB, RhsBB);

  startBlock(RhsBB);
  Value *RCond = genCondition(*E.RHS);
  if (!RCond)
    return {};
  B->createStore(B->createZExt(RCond), Tmp);
  B->createBr(MergeBB);

  startBlock(MergeBB);
  setLoc(E.Loc);
  return {B->createLoad(types::I64, Tmp), MCType::intTy()};
}

CodeGen::RValue CodeGen::genUnary(const UnaryExpr &E) {
  switch (E.Op) {
  case TokenKind::Minus: {
    RValue V = genExpr(*E.Sub);
    if (!V.valid())
      return {};
    if (V.Ty.isDouble())
      return {B->createFSub(B->getFloat(0.0), V.V), V.Ty};
    if (V.Ty.isInt())
      return {B->createSub(B->getInt64(0), V.V), V.Ty};
    Diags.error(E.Loc, "cannot negate a value of type '" + V.Ty.str() + "'");
    return {};
  }
  case TokenKind::Bang: {
    Value *Cond = genCondition(*E.Sub);
    if (!Cond)
      return {};
    Value *Flipped = B->createBinary(Opcode::Xor, Cond, B->getBool(true));
    return {B->createZExt(Flipped), MCType::intTy()};
  }
  case TokenKind::Star: {
    LValue LV = genLValue(E);
    if (!LV.valid())
      return {};
    return {B->createLoad(irType(LV.Ty), LV.Addr), LV.Ty};
  }
  default:
    Diags.error(E.Loc, "unsupported unary operator");
    return {};
  }
}

CodeGen::LValue CodeGen::genLValue(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::VarRef: {
    const auto &Ref = static_cast<const VarRefExpr &>(E);
    LocalVar *Var = lookup(Ref.Name);
    if (!Var) {
      Diags.error(E.Loc, "use of undeclared identifier '" + Ref.Name + "'");
      return {};
    }
    if (Var->IsArray) {
      Diags.error(E.Loc, "cannot assign to array '" + Ref.Name + "'");
      return {};
    }
    return {Var->Slot, Var->Ty};
  }
  case ExprKind::Index: {
    const auto &Idx = static_cast<const IndexExpr &>(E);
    RValue Base = genExpr(*Idx.Base);
    if (!Base.valid())
      return {};
    if (!Base.Ty.isPointer()) {
      Diags.error(E.Loc, "subscripted value is not a pointer (type '" +
                             Base.Ty.str() + "')");
      return {};
    }
    if (Base.Ty.isVoidPointer()) {
      Diags.error(E.Loc, "cannot index a void pointer");
      return {};
    }
    RValue Index = genExpr(*Idx.Index);
    if (!Index.valid())
      return {};
    Index = convert(Index, MCType::intTy(), E.Loc);
    if (!Index.valid())
      return {};
    return {B->createGep(Base.V, Index.V), Base.Ty.pointee()};
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    if (U.Op != TokenKind::Star)
      break;
    RValue Ptr = genExpr(*U.Sub);
    if (!Ptr.valid())
      return {};
    if (!Ptr.Ty.isPointer() || Ptr.Ty.isVoidPointer()) {
      Diags.error(E.Loc, "cannot dereference a value of type '" +
                             Ptr.Ty.str() + "'");
      return {};
    }
    return {Ptr.V, Ptr.Ty.pointee()};
  }
  default:
    break;
  }
  Diags.error(E.Loc, "expression is not assignable");
  return {};
}

CodeGen::RValue CodeGen::genAssign(const AssignExpr &E) {
  LValue Target = genLValue(*E.Target);
  if (!Target.valid())
    return {};
  RValue Val = genExpr(*E.Value);
  if (!Val.valid())
    return {};
  setLoc(E.Loc);

  if (E.Op != TokenKind::Assign) {
    // Compound assignment: load, combine, store.
    RValue Cur{B->createLoad(irType(Target.Ty), Target.Addr), Target.Ty};
    if (!usualArithmetic(Cur, Val, E.Loc))
      return {};
    bool IsFP = Cur.Ty.isDouble();
    Opcode Op;
    switch (E.Op) {
    case TokenKind::PlusAssign:
      Op = IsFP ? Opcode::FAdd : Opcode::Add;
      break;
    case TokenKind::MinusAssign:
      Op = IsFP ? Opcode::FSub : Opcode::Sub;
      break;
    case TokenKind::StarAssign:
      Op = IsFP ? Opcode::FMul : Opcode::Mul;
      break;
    default:
      Op = IsFP ? Opcode::FDiv : Opcode::SDiv;
      break;
    }
    Val = RValue{B->createBinary(Op, Cur.V, Val.V), Cur.Ty};
  }

  Val = convert(Val, Target.Ty, E.Loc);
  if (!Val.valid())
    return {};
  B->createStore(Val.V, Target.Addr);
  return Val;
}

CodeGen::RValue CodeGen::genCall(const CallExpr &E) {
  // Collect argument rvalues first.
  std::vector<RValue> Args;
  Args.reserve(E.Args.size());
  for (const ExprPtr &A : E.Args) {
    RValue V = genExpr(*A);
    if (!V.valid())
      return {};
    Args.push_back(V);
  }
  setLoc(E.Loc);

  // Runtime intrinsic?
  Intrinsic I = intrinsicByName(E.Callee.c_str());
  if (I != Intrinsic::None) {
    IntrinsicSignature Sig = intrinsicSignature(I);
    if (Sig.Params.size() != Args.size()) {
      std::ostringstream OS;
      OS << "intrinsic '" << E.Callee << "' expects " << Sig.Params.size()
         << " argument(s), got " << Args.size();
      Diags.error(E.Loc, OS.str());
      return {};
    }
    std::vector<Value *> IrArgs;
    for (size_t K = 0; K != Args.size(); ++K) {
      RValue Conv = convert(Args[K], mcTypeForIR(Sig.Params[K]), E.Loc);
      if (!Conv.valid())
        return {};
      IrArgs.push_back(Conv.V);
    }
    Value *Result = B->createIntrinsicCall(I, std::move(IrArgs), E.Callee);
    return {Result, mcTypeForIR(Sig.Result)};
  }

  // User function.
  auto FnIt = FunctionDecls.find(E.Callee);
  if (FnIt == FunctionDecls.end()) {
    Diags.error(E.Loc, "call to undeclared function '" + E.Callee + "'");
    return {};
  }
  const FunctionDecl *FD = FnIt->second;
  if (FD->Params.size() != Args.size()) {
    std::ostringstream OS;
    OS << "function '" << E.Callee << "' expects " << FD->Params.size()
       << " argument(s), got " << Args.size();
    Diags.error(E.Loc, OS.str());
    return {};
  }
  std::vector<Value *> IrArgs;
  for (size_t K = 0; K != Args.size(); ++K) {
    RValue Conv = convert(Args[K], FD->Params[K].Ty, E.Loc);
    if (!Conv.valid())
      return {};
    IrArgs.push_back(Conv.V);
  }
  Function *Callee = M->getFunction(E.Callee);
  Value *Result = B->createCall(Callee, std::move(IrArgs), E.Callee);
  return {Result, FD->RetTy};
}

std::unique_ptr<Module> ipas::compileMiniC(const std::string &Source,
                                           const std::string &ModuleName,
                                           Diagnostics &Diags) {
  // Attach the source so errors can quote the offending line; a driver
  // that already attached the real file path wins (setSource keeps the
  // first attachment).
  Diags.setSource(ModuleName, Source);
  Lexer Lex(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  Parser P(Lex.tokens(), Diags);
  std::unique_ptr<TranslationUnit> TU = P.parseTranslationUnit();
  if (Diags.hasErrors() || !TU)
    return nullptr;
  CodeGen CG(Diags);
  return CG.run(*TU, ModuleName);
}
