//===- frontend/Lexer.h - MiniC tokenizer ----------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniC is the small C subset the five paper workloads are written in:
/// int/double scalars, one- and two-level pointers, fixed-size local
/// arrays, the usual control flow, and calls into the runtime intrinsics.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_FRONTEND_LEXER_H
#define IPAS_FRONTEND_LEXER_H

#include "frontend/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ipas {

enum class TokenKind : uint8_t {
  End,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords.
  KwInt,
  KwDouble,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  // Punctuation / operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  EqualEqual,
  NotEqual,
  AmpAmp,
  PipePipe,
  Bang,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
};

const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::End;
  SourceLoc Loc;
  std::string Text;   ///< Identifier spelling.
  int64_t IntValue = 0;
  double FloatValue = 0.0;
};

/// Tokenizes a whole buffer up front. Unknown characters produce
/// diagnostics and are skipped.
class Lexer {
public:
  Lexer(const std::string &Source, Diagnostics &Diags);

  /// Token stream ending in a single End token.
  const std::vector<Token> &tokens() const { return Tokens; }

  /// Counts non-blank, non-comment source lines — the "lines of code"
  /// metric reported in the paper's Table 3.
  static size_t countCodeLines(const std::string &Source);

private:
  void lex(const std::string &Source, Diagnostics &Diags);

  std::vector<Token> Tokens;
};

} // namespace ipas

#endif // IPAS_FRONTEND_LEXER_H
