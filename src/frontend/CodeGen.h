//===- frontend/CodeGen.h - MiniC AST -> IPAS IR ---------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_FRONTEND_CODEGEN_H
#define IPAS_FRONTEND_CODEGEN_H

#include "frontend/AST.h"
#include "ir/IRBuilder.h"

#include <map>
#include <memory>
#include <string>

namespace ipas {

/// Lowers a type-checked MiniC translation unit to IR. Locals are lowered
/// to entry-block allocas (classic C-frontend style); the mem2reg pass
/// subsequently promotes them to SSA registers with phis.
class CodeGen {
public:
  explicit CodeGen(Diagnostics &Diags) : Diags(Diags) {}

  /// Returns the module, or null if any diagnostics were produced.
  std::unique_ptr<Module> run(const TranslationUnit &TU,
                              std::string ModuleName);

private:
  /// A typed rvalue: the IR value plus its MiniC type.
  struct RValue {
    Value *V = nullptr;
    MCType Ty;
    bool valid() const { return V != nullptr; }
  };

  /// A typed lvalue: the address plus the pointee's MiniC type.
  struct LValue {
    Value *Addr = nullptr;
    MCType Ty;
    bool valid() const { return Addr != nullptr; }
  };

  struct LocalVar {
    Value *Slot = nullptr; ///< Alloca holding the variable (arrays: base).
    MCType Ty;             ///< Variable type (arrays: pointer-to-element).
    bool IsArray = false;
  };

  struct LoopContext {
    BasicBlock *BreakTarget;
    BasicBlock *ContinueTarget;
  };

  // Declaration pass.
  bool declareFunctions(const TranslationUnit &TU);
  static Type irType(MCType T);

  // Function body generation.
  void genFunction(const FunctionDecl &FD);
  void genStatement(const Stmt &S);
  void genBlock(const BlockStmt &B);
  void genDecl(const DeclStmt &D);
  void genIf(const IfStmt &S);
  void genWhile(const WhileStmt &S);
  void genFor(const ForStmt &S);
  void genReturn(const ReturnStmt &S);

  // Expression generation.
  RValue genExpr(const Expr &E);
  RValue genBinary(const BinaryExpr &E);
  RValue genUnary(const UnaryExpr &E);
  RValue genCall(const CallExpr &E);
  RValue genAssign(const AssignExpr &E);
  RValue genShortCircuit(const BinaryExpr &E);
  LValue genLValue(const Expr &E);

  // Helpers.
  Value *createLocalAlloca(uint64_t Slots, const std::string &Name);
  /// Converts \p V to \p To, inserting casts; reports and returns invalid
  /// on an impossible conversion.
  RValue convert(RValue V, MCType To, SourceLoc Loc);
  /// Usual arithmetic conversions for a binary operator.
  bool usualArithmetic(RValue &L, RValue &R, SourceLoc Loc);
  /// Truthiness of a value as an i1 (for branches).
  Value *toBool(RValue V, SourceLoc Loc);
  /// Generates an i1 condition for \p E, folding comparisons directly.
  Value *genCondition(const Expr &E);
  LocalVar *lookup(const std::string &Name);
  bool blockTerminated() const;
  void startBlock(BasicBlock *BB);
  /// Stamps subsequent instructions with the AST node's source location.
  void setLoc(SourceLoc L);

  Diagnostics &Diags;
  std::unique_ptr<Module> M;
  std::unique_ptr<IRBuilder> B;

  // Per-function state.
  Function *CurFn = nullptr;
  const FunctionDecl *CurDecl = nullptr;
  BasicBlock *EntryBlock = nullptr;
  size_t NumEntryAllocas = 0;
  std::vector<std::map<std::string, LocalVar>> Scopes;
  std::vector<LoopContext> LoopStack;
  unsigned NextBlockId = 0;

  // Module-level state.
  std::map<std::string, const FunctionDecl *> FunctionDecls;
};

/// Convenience driver: lex + parse + codegen. Returns null on error (see
/// \p Diags for messages).
std::unique_ptr<Module> compileMiniC(const std::string &Source,
                                     const std::string &ModuleName,
                                     Diagnostics &Diags);

} // namespace ipas

#endif // IPAS_FRONTEND_CODEGEN_H
