//===- frontend/Lexer.cpp ------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace ipas;

const char *ipas::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::End:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwDouble:
    return "'double'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::NotEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::PlusAssign:
    return "'+='";
  case TokenKind::MinusAssign:
    return "'-='";
  case TokenKind::StarAssign:
    return "'*='";
  case TokenKind::SlashAssign:
    return "'/='";
  }
  return "<bad token>";
}

Lexer::Lexer(const std::string &Source, Diagnostics &Diags) {
  lex(Source, Diags);
}

void Lexer::lex(const std::string &Source, Diagnostics &Diags) {
  static const std::map<std::string, TokenKind> Keywords = {
      {"int", TokenKind::KwInt},       {"double", TokenKind::KwDouble},
      {"void", TokenKind::KwVoid},     {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},     {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},       {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},   {"continue", TokenKind::KwContinue},
  };

  size_t I = 0;
  size_t N = Source.size();
  unsigned Line = 1;
  unsigned Col = 1;

  auto Advance = [&]() {
    if (Source[I] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++I;
  };
  auto Peek = [&](size_t Ahead = 0) -> char {
    return I + Ahead < N ? Source[I + Ahead] : '\0';
  };
  auto Push = [&](TokenKind K, SourceLoc Loc) {
    Token T;
    T.Kind = K;
    T.Loc = Loc;
    Tokens.push_back(std::move(T));
  };

  while (I < N) {
    char C = Source[I];
    SourceLoc Loc{Line, Col};

    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance();
      continue;
    }
    // Comments.
    if (C == '/' && Peek(1) == '/') {
      while (I < N && Source[I] != '\n')
        Advance();
      continue;
    }
    if (C == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      while (I < N && !(Source[I] == '*' && Peek(1) == '/'))
        Advance();
      if (I < N) {
        Advance();
        Advance();
      } else {
        Diags.error(Loc, "unterminated block comment");
      }
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_')) {
        Text.push_back(Source[I]);
        Advance();
      }
      auto KwIt = Keywords.find(Text);
      Token T;
      T.Loc = Loc;
      if (KwIt != Keywords.end()) {
        T.Kind = KwIt->second;
      } else {
        T.Kind = TokenKind::Identifier;
        T.Text = std::move(Text);
      }
      Tokens.push_back(std::move(T));
      continue;
    }
    // Numbers. A literal is floating point when it has a '.' or exponent.
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      std::string Text;
      bool IsFloat = false;
      while (I < N) {
        char D = Source[I];
        if (std::isdigit(static_cast<unsigned char>(D))) {
          Text.push_back(D);
          Advance();
        } else if (D == '.') {
          IsFloat = true;
          Text.push_back(D);
          Advance();
        } else if (D == 'e' || D == 'E') {
          IsFloat = true;
          Text.push_back(D);
          Advance();
          if (I < N && (Source[I] == '+' || Source[I] == '-')) {
            Text.push_back(Source[I]);
            Advance();
          }
        } else {
          break;
        }
      }
      Token T;
      T.Loc = Loc;
      if (IsFloat) {
        T.Kind = TokenKind::FloatLiteral;
        T.FloatValue = std::strtod(Text.c_str(), nullptr);
      } else {
        T.Kind = TokenKind::IntLiteral;
        T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
      }
      Tokens.push_back(std::move(T));
      continue;
    }
    // Operators and punctuation.
    switch (C) {
    case '(':
      Push(TokenKind::LParen, Loc);
      Advance();
      break;
    case ')':
      Push(TokenKind::RParen, Loc);
      Advance();
      break;
    case '{':
      Push(TokenKind::LBrace, Loc);
      Advance();
      break;
    case '}':
      Push(TokenKind::RBrace, Loc);
      Advance();
      break;
    case '[':
      Push(TokenKind::LBracket, Loc);
      Advance();
      break;
    case ']':
      Push(TokenKind::RBracket, Loc);
      Advance();
      break;
    case ',':
      Push(TokenKind::Comma, Loc);
      Advance();
      break;
    case ';':
      Push(TokenKind::Semicolon, Loc);
      Advance();
      break;
    case '+':
      Advance();
      if (Peek() == '=') {
        Advance();
        Push(TokenKind::PlusAssign, Loc);
      } else {
        Push(TokenKind::Plus, Loc);
      }
      break;
    case '-':
      Advance();
      if (Peek() == '=') {
        Advance();
        Push(TokenKind::MinusAssign, Loc);
      } else {
        Push(TokenKind::Minus, Loc);
      }
      break;
    case '*':
      Advance();
      if (Peek() == '=') {
        Advance();
        Push(TokenKind::StarAssign, Loc);
      } else {
        Push(TokenKind::Star, Loc);
      }
      break;
    case '/':
      Advance();
      if (Peek() == '=') {
        Advance();
        Push(TokenKind::SlashAssign, Loc);
      } else {
        Push(TokenKind::Slash, Loc);
      }
      break;
    case '%':
      Push(TokenKind::Percent, Loc);
      Advance();
      break;
    case '<':
      Advance();
      if (Peek() == '=') {
        Advance();
        Push(TokenKind::LessEqual, Loc);
      } else {
        Push(TokenKind::Less, Loc);
      }
      break;
    case '>':
      Advance();
      if (Peek() == '=') {
        Advance();
        Push(TokenKind::GreaterEqual, Loc);
      } else {
        Push(TokenKind::Greater, Loc);
      }
      break;
    case '=':
      Advance();
      if (Peek() == '=') {
        Advance();
        Push(TokenKind::EqualEqual, Loc);
      } else {
        Push(TokenKind::Assign, Loc);
      }
      break;
    case '!':
      Advance();
      if (Peek() == '=') {
        Advance();
        Push(TokenKind::NotEqual, Loc);
      } else {
        Push(TokenKind::Bang, Loc);
      }
      break;
    case '&':
      Advance();
      if (Peek() == '&') {
        Advance();
        Push(TokenKind::AmpAmp, Loc);
      } else {
        Diags.error(Loc, "stray '&' (MiniC has no address-of or bitwise &)");
      }
      break;
    case '|':
      Advance();
      if (Peek() == '|') {
        Advance();
        Push(TokenKind::PipePipe, Loc);
      } else {
        Diags.error(Loc, "stray '|' (MiniC has no bitwise |)");
      }
      break;
    default: {
      Diags.error(Loc, std::string("unexpected character '") + C + "'");
      Advance();
      break;
    }
    }
  }

  Token End;
  End.Kind = TokenKind::End;
  End.Loc = SourceLoc{Line, Col};
  Tokens.push_back(std::move(End));
}

size_t Lexer::countCodeLines(const std::string &Source) {
  size_t Count = 0;
  bool InBlockComment = false;
  size_t I = 0;
  size_t N = Source.size();
  while (I < N) {
    bool LineHasCode = false;
    while (I < N && Source[I] != '\n') {
      char C = Source[I];
      if (InBlockComment) {
        if (C == '*' && I + 1 < N && Source[I + 1] == '/') {
          InBlockComment = false;
          ++I;
        }
        ++I;
        continue;
      }
      if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
        while (I < N && Source[I] != '\n')
          ++I;
        break;
      }
      if (C == '/' && I + 1 < N && Source[I + 1] == '*') {
        InBlockComment = true;
        I += 2;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(C)))
        LineHasCode = true;
      ++I;
    }
    if (LineHasCode)
      ++Count;
    if (I < N)
      ++I; // skip '\n'
  }
  return Count;
}
