//===- frontend/Diagnostics.cpp ----------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Diagnostics.h"

#include <sstream>

using namespace ipas;

void Diagnostics::setSource(const std::string &Name,
                            const std::string &Source) {
  if (HasSource)
    return;
  HasSource = true;
  SourceName = Name;
  SourceLines.clear();
  std::string Line;
  for (char C : Source) {
    if (C == '\n') {
      SourceLines.push_back(std::move(Line));
      Line.clear();
    } else {
      Line.push_back(C);
    }
  }
  if (!Line.empty())
    SourceLines.push_back(std::move(Line));
}

void Diagnostics::error(SourceLoc Loc, const std::string &Message) {
  std::ostringstream OS;
  if (HasSource)
    OS << SourceName << ":" << Loc.Line << ":" << Loc.Column
       << ": error: " << Message;
  else
    OS << "line " << Loc.Line << ":" << Loc.Column << ": error: " << Message;
  // Quote the offending line with a caret under the column.
  if (Loc.Line >= 1 && Loc.Line <= SourceLines.size()) {
    const std::string &Src = SourceLines[Loc.Line - 1];
    OS << "\n  " << Src << "\n  ";
    unsigned Col = Loc.Column > 0 ? Loc.Column - 1 : 0;
    if (Col > Src.size())
      Col = static_cast<unsigned>(Src.size());
    // Keep the caret aligned under tabs by echoing them.
    for (unsigned I = 0; I != Col; ++I)
      OS << (Src[I] == '\t' ? '\t' : ' ');
    OS << "^";
  }
  Errors.push_back(OS.str());
}

std::string Diagnostics::summary() const {
  std::ostringstream OS;
  for (size_t I = 0; I != Errors.size(); ++I) {
    if (I)
      OS << "\n";
    OS << Errors[I];
  }
  return OS.str();
}
