//===- frontend/Diagnostics.cpp ----------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Diagnostics.h"

#include <sstream>

using namespace ipas;

void Diagnostics::error(SourceLoc Loc, const std::string &Message) {
  std::ostringstream OS;
  OS << "line " << Loc.Line << ":" << Loc.Column << ": error: " << Message;
  Errors.push_back(OS.str());
}

std::string Diagnostics::summary() const {
  std::ostringstream OS;
  for (size_t I = 0; I != Errors.size(); ++I) {
    if (I)
      OS << "\n";
    OS << Errors[I];
  }
  return OS.str();
}
