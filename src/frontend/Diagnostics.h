//===- frontend/Diagnostics.h - Error reporting for MiniC -----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_FRONTEND_DIAGNOSTICS_H
#define IPAS_FRONTEND_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace ipas {

/// A position in a MiniC source buffer (1-based).
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;
};

/// Collects compile errors; the driver decides how to surface them.
class Diagnostics {
public:
  /// Attaches the source buffer and a display name (file path or module
  /// name). Once attached, errors render clang-style —
  /// `name:line:col: error: msg` followed by the offending source line
  /// and a caret. A later call does not overwrite an earlier one, so a
  /// driver that knows the real file path can attach it before handing
  /// the object to compileMiniC.
  void setSource(const std::string &Name, const std::string &Source);
  bool hasSource() const { return HasSource; }

  void error(SourceLoc Loc, const std::string &Message);

  bool hasErrors() const { return !Errors.empty(); }
  const std::vector<std::string> &errors() const { return Errors; }

  /// All errors joined with newlines (empty when none).
  std::string summary() const;

private:
  bool HasSource = false;
  std::string SourceName;
  std::vector<std::string> SourceLines;
  std::vector<std::string> Errors;
};

} // namespace ipas

#endif // IPAS_FRONTEND_DIAGNOSTICS_H
