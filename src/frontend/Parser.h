//===- frontend/Parser.h - Recursive-descent MiniC parser -----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_FRONTEND_PARSER_H
#define IPAS_FRONTEND_PARSER_H

#include "frontend/AST.h"

#include <memory>

namespace ipas {

/// Parses a whole MiniC translation unit. On error, diagnostics are
/// recorded and a (possibly partial) AST is returned; callers must check
/// Diagnostics::hasErrors() before using the result.
class Parser {
public:
  Parser(const std::vector<Token> &Tokens, Diagnostics &Diags)
      : Tokens(Tokens), Diags(Diags) {}

  std::unique_ptr<TranslationUnit> parseTranslationUnit();

private:
  // Token stream helpers.
  const Token &peek(size_t Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token consume();
  bool match(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  void synchronizeToStatement();

  // Types.
  bool atTypeStart() const;
  bool parseType(MCType &Out);

  // Declarations.
  std::unique_ptr<FunctionDecl> parseFunction();

  // Statements.
  StmtPtr parseStatement();
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseDeclStatement();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseReturn();

  // Expressions (precedence climbing).
  ExprPtr parseExpression(); // assignment level
  ExprPtr parseAssignment();
  ExprPtr parseLogicalOr();
  ExprPtr parseLogicalAnd();
  ExprPtr parseEquality();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  const std::vector<Token> &Tokens;
  Diagnostics &Diags;
  size_t Pos = 0;
};

} // namespace ipas

#endif // IPAS_FRONTEND_PARSER_H
