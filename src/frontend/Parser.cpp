//===- frontend/Parser.cpp -----------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

using namespace ipas;

const Token &Parser::peek(size_t Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // The End token.
  return Tokens[I];
}

Token Parser::consume() {
  Token T = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind K) {
  if (current().Kind != K)
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (match(K))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(K) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

void Parser::synchronizeToStatement() {
  // Error recovery: skip until a statement boundary.
  while (current().Kind != TokenKind::End) {
    if (match(TokenKind::Semicolon))
      return;
    if (current().Kind == TokenKind::RBrace)
      return;
    consume();
  }
}

bool Parser::atTypeStart() const {
  TokenKind K = current().Kind;
  return K == TokenKind::KwInt || K == TokenKind::KwDouble ||
         K == TokenKind::KwVoid;
}

bool Parser::parseType(MCType &Out) {
  MCType::Base B;
  switch (current().Kind) {
  case TokenKind::KwInt:
    B = MCType::Base::Int;
    break;
  case TokenKind::KwDouble:
    B = MCType::Base::Double;
    break;
  case TokenKind::KwVoid:
    B = MCType::Base::Void;
    break;
  default:
    Diags.error(current().Loc, "expected a type");
    return false;
  }
  consume();
  unsigned Depth = 0;
  while (match(TokenKind::Star))
    ++Depth;
  if (Depth > 2) {
    Diags.error(current().Loc, "MiniC supports at most two pointer levels");
    return false;
  }
  Out = MCType(B, Depth);
  return true;
}

std::unique_ptr<TranslationUnit> Parser::parseTranslationUnit() {
  auto TU = std::make_unique<TranslationUnit>();
  while (current().Kind != TokenKind::End) {
    auto Fn = parseFunction();
    if (!Fn) {
      // Unrecoverable at top level: skip one token and try again.
      if (current().Kind != TokenKind::End)
        consume();
      continue;
    }
    TU->Functions.push_back(std::move(Fn));
  }
  return TU;
}

std::unique_ptr<FunctionDecl> Parser::parseFunction() {
  auto Fn = std::make_unique<FunctionDecl>();
  Fn->Loc = current().Loc;
  if (!parseType(Fn->RetTy))
    return nullptr;
  if (current().Kind != TokenKind::Identifier) {
    Diags.error(current().Loc, "expected function name");
    return nullptr;
  }
  Fn->Name = consume().Text;
  if (!expect(TokenKind::LParen, "after function name"))
    return nullptr;
  if (!match(TokenKind::RParen)) {
    do {
      ParamDecl P;
      P.Loc = current().Loc;
      if (!parseType(P.Ty))
        return nullptr;
      if (current().Kind != TokenKind::Identifier) {
        Diags.error(current().Loc, "expected parameter name");
        return nullptr;
      }
      P.Name = consume().Text;
      if (P.Ty.isVoid()) {
        Diags.error(P.Loc, "parameter cannot have type void");
        return nullptr;
      }
      Fn->Params.push_back(std::move(P));
    } while (match(TokenKind::Comma));
    if (!expect(TokenKind::RParen, "after parameter list"))
      return nullptr;
  }
  if (current().Kind != TokenKind::LBrace) {
    Diags.error(current().Loc, "expected function body");
    return nullptr;
  }
  Fn->Body = parseBlock();
  return Fn->Body ? std::move(Fn) : nullptr;
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  auto Block = std::make_unique<BlockStmt>(current().Loc);
  if (!expect(TokenKind::LBrace, "to open a block"))
    return nullptr;
  while (current().Kind != TokenKind::RBrace &&
         current().Kind != TokenKind::End) {
    StmtPtr S = parseStatement();
    if (S)
      Block->Stmts.push_back(std::move(S));
    else
      synchronizeToStatement();
  }
  expect(TokenKind::RBrace, "to close a block");
  return Block;
}

StmtPtr Parser::parseStatement() {
  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwInt:
  case TokenKind::KwDouble:
  case TokenKind::KwVoid:
    return parseDeclStatement();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwBreak: {
    SourceLoc Loc = consume().Loc;
    if (!expect(TokenKind::Semicolon, "after 'break'"))
      return nullptr;
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLoc Loc = consume().Loc;
    if (!expect(TokenKind::Semicolon, "after 'continue'"))
      return nullptr;
    return std::make_unique<ContinueStmt>(Loc);
  }
  case TokenKind::Semicolon:
    consume(); // Empty statement.
    return std::make_unique<BlockStmt>(current().Loc);
  default: {
    SourceLoc Loc = current().Loc;
    ExprPtr E = parseExpression();
    if (!E)
      return nullptr;
    if (!expect(TokenKind::Semicolon, "after expression"))
      return nullptr;
    return std::make_unique<ExprStmt>(std::move(E), Loc);
  }
  }
}

StmtPtr Parser::parseDeclStatement() {
  SourceLoc Loc = current().Loc;
  MCType Ty;
  if (!parseType(Ty))
    return nullptr;
  if (Ty.isVoid()) {
    Diags.error(Loc, "cannot declare a variable of type void");
    return nullptr;
  }
  if (current().Kind != TokenKind::Identifier) {
    Diags.error(current().Loc, "expected variable name");
    return nullptr;
  }
  auto Decl = std::make_unique<DeclStmt>(Ty, consume().Text, Loc);
  if (match(TokenKind::LBracket)) {
    if (current().Kind != TokenKind::IntLiteral) {
      Diags.error(current().Loc, "array size must be an integer literal");
      return nullptr;
    }
    Decl->ArraySlots = consume().IntValue;
    if (Decl->ArraySlots <= 0) {
      Diags.error(Loc, "array size must be positive");
      return nullptr;
    }
    if (!expect(TokenKind::RBracket, "after array size"))
      return nullptr;
  }
  if (match(TokenKind::Assign)) {
    if (Decl->ArraySlots >= 0) {
      Diags.error(Loc, "array declarations cannot have initializers");
      return nullptr;
    }
    Decl->Init = parseExpression();
    if (!Decl->Init)
      return nullptr;
  }
  if (!expect(TokenKind::Semicolon, "after declaration"))
    return nullptr;
  return Decl;
}

StmtPtr Parser::parseIf() {
  auto S = std::make_unique<IfStmt>(consume().Loc);
  if (!expect(TokenKind::LParen, "after 'if'"))
    return nullptr;
  S->Cond = parseExpression();
  if (!S->Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "after if condition"))
    return nullptr;
  S->Then = parseStatement();
  if (!S->Then)
    return nullptr;
  if (match(TokenKind::KwElse)) {
    S->Else = parseStatement();
    if (!S->Else)
      return nullptr;
  }
  return S;
}

StmtPtr Parser::parseWhile() {
  auto S = std::make_unique<WhileStmt>(consume().Loc);
  if (!expect(TokenKind::LParen, "after 'while'"))
    return nullptr;
  S->Cond = parseExpression();
  if (!S->Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "after while condition"))
    return nullptr;
  S->Body = parseStatement();
  return S->Body ? std::move(S) : nullptr;
}

StmtPtr Parser::parseFor() {
  auto S = std::make_unique<ForStmt>(consume().Loc);
  if (!expect(TokenKind::LParen, "after 'for'"))
    return nullptr;
  // Init clause: declaration, expression, or empty.
  if (!match(TokenKind::Semicolon)) {
    if (atTypeStart()) {
      S->Init = parseDeclStatement(); // consumes the ';'
      if (!S->Init)
        return nullptr;
    } else {
      SourceLoc Loc = current().Loc;
      ExprPtr E = parseExpression();
      if (!E)
        return nullptr;
      S->Init = std::make_unique<ExprStmt>(std::move(E), Loc);
      if (!expect(TokenKind::Semicolon, "after for-init"))
        return nullptr;
    }
  }
  // Condition clause.
  if (!match(TokenKind::Semicolon)) {
    S->Cond = parseExpression();
    if (!S->Cond)
      return nullptr;
    if (!expect(TokenKind::Semicolon, "after for-condition"))
      return nullptr;
  }
  // Increment clause.
  if (current().Kind != TokenKind::RParen) {
    S->Inc = parseExpression();
    if (!S->Inc)
      return nullptr;
  }
  if (!expect(TokenKind::RParen, "after for clauses"))
    return nullptr;
  S->Body = parseStatement();
  return S->Body ? std::move(S) : nullptr;
}

StmtPtr Parser::parseReturn() {
  auto S = std::make_unique<ReturnStmt>(consume().Loc);
  if (!match(TokenKind::Semicolon)) {
    S->Value = parseExpression();
    if (!S->Value)
      return nullptr;
    if (!expect(TokenKind::Semicolon, "after return value"))
      return nullptr;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpression() { return parseAssignment(); }

static bool isAssignOp(TokenKind K) {
  return K == TokenKind::Assign || K == TokenKind::PlusAssign ||
         K == TokenKind::MinusAssign || K == TokenKind::StarAssign ||
         K == TokenKind::SlashAssign;
}

ExprPtr Parser::parseAssignment() {
  ExprPtr LHS = parseLogicalOr();
  if (!LHS)
    return nullptr;
  if (!isAssignOp(current().Kind))
    return LHS;
  Token OpTok = consume();
  // Assignment targets are validated during codegen (lvalue check); the
  // grammar accepts any expression on the left.
  ExprPtr RHS = parseAssignment(); // right associative
  if (!RHS)
    return nullptr;
  return std::make_unique<AssignExpr>(OpTok.Kind, std::move(LHS),
                                      std::move(RHS), OpTok.Loc);
}

ExprPtr Parser::parseLogicalOr() {
  ExprPtr LHS = parseLogicalAnd();
  if (!LHS)
    return nullptr;
  while (current().Kind == TokenKind::PipePipe) {
    Token OpTok = consume();
    ExprPtr RHS = parseLogicalAnd();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(OpTok.Kind, std::move(LHS),
                                       std::move(RHS), OpTok.Loc);
  }
  return LHS;
}

ExprPtr Parser::parseLogicalAnd() {
  ExprPtr LHS = parseEquality();
  if (!LHS)
    return nullptr;
  while (current().Kind == TokenKind::AmpAmp) {
    Token OpTok = consume();
    ExprPtr RHS = parseEquality();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(OpTok.Kind, std::move(LHS),
                                       std::move(RHS), OpTok.Loc);
  }
  return LHS;
}

ExprPtr Parser::parseEquality() {
  ExprPtr LHS = parseRelational();
  if (!LHS)
    return nullptr;
  while (current().Kind == TokenKind::EqualEqual ||
         current().Kind == TokenKind::NotEqual) {
    Token OpTok = consume();
    ExprPtr RHS = parseRelational();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(OpTok.Kind, std::move(LHS),
                                       std::move(RHS), OpTok.Loc);
  }
  return LHS;
}

ExprPtr Parser::parseRelational() {
  ExprPtr LHS = parseAdditive();
  if (!LHS)
    return nullptr;
  while (current().Kind == TokenKind::Less ||
         current().Kind == TokenKind::LessEqual ||
         current().Kind == TokenKind::Greater ||
         current().Kind == TokenKind::GreaterEqual) {
    Token OpTok = consume();
    ExprPtr RHS = parseAdditive();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(OpTok.Kind, std::move(LHS),
                                       std::move(RHS), OpTok.Loc);
  }
  return LHS;
}

ExprPtr Parser::parseAdditive() {
  ExprPtr LHS = parseMultiplicative();
  if (!LHS)
    return nullptr;
  while (current().Kind == TokenKind::Plus ||
         current().Kind == TokenKind::Minus) {
    Token OpTok = consume();
    ExprPtr RHS = parseMultiplicative();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(OpTok.Kind, std::move(LHS),
                                       std::move(RHS), OpTok.Loc);
  }
  return LHS;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr LHS = parseUnary();
  if (!LHS)
    return nullptr;
  while (current().Kind == TokenKind::Star ||
         current().Kind == TokenKind::Slash ||
         current().Kind == TokenKind::Percent) {
    Token OpTok = consume();
    ExprPtr RHS = parseUnary();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(OpTok.Kind, std::move(LHS),
                                       std::move(RHS), OpTok.Loc);
  }
  return LHS;
}

ExprPtr Parser::parseUnary() {
  // Explicit cast: '(' type ')' unary
  if (current().Kind == TokenKind::LParen &&
      (peek(1).Kind == TokenKind::KwInt ||
       peek(1).Kind == TokenKind::KwDouble ||
       peek(1).Kind == TokenKind::KwVoid)) {
    SourceLoc Loc = consume().Loc; // '('
    MCType Ty;
    if (!parseType(Ty))
      return nullptr;
    if (!expect(TokenKind::RParen, "after cast type"))
      return nullptr;
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<CastExpr>(Ty, std::move(Sub), Loc);
  }
  if (current().Kind == TokenKind::Minus ||
      current().Kind == TokenKind::Bang ||
      current().Kind == TokenKind::Star) {
    Token OpTok = consume();
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(OpTok.Kind, std::move(Sub),
                                       OpTok.Loc);
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  while (true) {
    if (current().Kind == TokenKind::LBracket) {
      SourceLoc Loc = consume().Loc;
      ExprPtr Index = parseExpression();
      if (!Index)
        return nullptr;
      if (!expect(TokenKind::RBracket, "after index"))
        return nullptr;
      E = std::make_unique<IndexExpr>(std::move(E), std::move(Index), Loc);
      continue;
    }
    break;
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  switch (current().Kind) {
  case TokenKind::IntLiteral: {
    Token T = consume();
    return std::make_unique<IntLitExpr>(T.IntValue, T.Loc);
  }
  case TokenKind::FloatLiteral: {
    Token T = consume();
    return std::make_unique<FloatLitExpr>(T.FloatValue, T.Loc);
  }
  case TokenKind::Identifier: {
    Token T = consume();
    if (current().Kind != TokenKind::LParen)
      return std::make_unique<VarRefExpr>(T.Text, T.Loc);
    consume(); // '('
    std::vector<ExprPtr> Args;
    if (current().Kind != TokenKind::RParen) {
      do {
        ExprPtr Arg = parseExpression();
        if (!Arg)
          return nullptr;
        Args.push_back(std::move(Arg));
      } while (match(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "after call arguments"))
      return nullptr;
    return std::make_unique<CallExpr>(T.Text, std::move(Args), T.Loc);
  }
  case TokenKind::LParen: {
    consume();
    ExprPtr E = parseExpression();
    if (!E)
      return nullptr;
    if (!expect(TokenKind::RParen, "after parenthesized expression"))
      return nullptr;
    return E;
  }
  default:
    Diags.error(current().Loc, std::string("expected an expression, found ") +
                                   tokenKindName(current().Kind));
    return nullptr;
  }
}
