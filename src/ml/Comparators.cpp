//===- ml/Comparators.cpp -------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/Comparators.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace ipas;

namespace {

/// Gini impurity of a (positive, total) split half.
double gini(size_t Pos, size_t Total) {
  if (Total == 0)
    return 0.0;
  double P = static_cast<double>(Pos) / static_cast<double>(Total);
  return 2.0 * P * (1.0 - P);
}

int majorityLabel(const Dataset &D, const std::vector<size_t> &Indices) {
  ptrdiff_t Balance = 0;
  for (size_t I : Indices)
    Balance += D.Y[I];
  return Balance >= 0 ? 1 : -1;
}

} // namespace

int DecisionTree::build(const Dataset &D, std::vector<size_t> Indices,
                        unsigned DepthLeft, const Params &P) {
  Node N;
  N.LeafLabel = majorityLabel(D, Indices);

  // Stop on purity, depth, or sample floor.
  size_t Pos = 0;
  for (size_t I : Indices)
    if (D.Y[I] > 0)
      ++Pos;
  bool Pure = Pos == 0 || Pos == Indices.size();
  if (Pure || DepthLeft == 0 || Indices.size() < 2 * P.MinSamplesPerLeaf) {
    Nodes.push_back(N);
    return static_cast<int>(Nodes.size()) - 1;
  }

  // Exhaustive best split: for each feature, sort and scan thresholds.
  double BestGain = 0.0;
  unsigned BestFeature = 0;
  double BestThreshold = 0.0;
  double ParentImpurity = gini(Pos, Indices.size());
  for (unsigned F = 0; F != D.dim(); ++F) {
    std::vector<std::pair<double, int>> Sorted;
    Sorted.reserve(Indices.size());
    for (size_t I : Indices)
      Sorted.push_back({D.X[I][F], D.Y[I]});
    std::sort(Sorted.begin(), Sorted.end());
    size_t LeftPos = 0;
    for (size_t Cut = 1; Cut != Sorted.size(); ++Cut) {
      if (Sorted[Cut - 1].second > 0)
        ++LeftPos;
      if (Sorted[Cut - 1].first == Sorted[Cut].first)
        continue; // cannot split between equal values
      if (Cut < P.MinSamplesPerLeaf ||
          Sorted.size() - Cut < P.MinSamplesPerLeaf)
        continue;
      double WLeft = static_cast<double>(Cut) /
                     static_cast<double>(Sorted.size());
      double Impurity =
          WLeft * gini(LeftPos, Cut) +
          (1.0 - WLeft) * gini(Pos - LeftPos, Sorted.size() - Cut);
      double Gain = ParentImpurity - Impurity;
      if (Gain > BestGain + 1e-12) {
        BestGain = Gain;
        BestFeature = F;
        BestThreshold =
            0.5 * (Sorted[Cut - 1].first + Sorted[Cut].first);
      }
    }
  }
  if (BestGain <= 0.0) {
    Nodes.push_back(N);
    return static_cast<int>(Nodes.size()) - 1;
  }

  std::vector<size_t> LeftIdx, RightIdx;
  for (size_t I : Indices)
    (D.X[I][BestFeature] <= BestThreshold ? LeftIdx : RightIdx)
        .push_back(I);

  N.IsLeaf = false;
  N.Feature = BestFeature;
  N.Threshold = BestThreshold;
  Nodes.push_back(N);
  int Self = static_cast<int>(Nodes.size()) - 1;
  int Left = build(D, std::move(LeftIdx), DepthLeft - 1, P);
  int Right = build(D, std::move(RightIdx), DepthLeft - 1, P);
  Nodes[Self].Left = Left;
  Nodes[Self].Right = Right;
  return Self;
}

DecisionTree DecisionTree::train(const Dataset &D) {
  return train(D, Params());
}

DecisionTree DecisionTree::train(const Dataset &D, const Params &P) {
  assert(D.size() > 0 && "cannot train a tree on an empty set");
  DecisionTree T;
  T.Depth = P.MaxDepth;
  std::vector<size_t> All(D.size());
  for (size_t I = 0; I != D.size(); ++I)
    All[I] = I;
  T.build(D, std::move(All), P.MaxDepth, P);
  return T;
}

int DecisionTree::predict(const std::vector<double> &X) const {
  assert(!Nodes.empty() && "predicting with an untrained tree");
  int Cur = 0;
  while (!Nodes[static_cast<size_t>(Cur)].IsLeaf) {
    const Node &N = Nodes[static_cast<size_t>(Cur)];
    Cur = X[N.Feature] <= N.Threshold ? N.Left : N.Right;
  }
  return Nodes[static_cast<size_t>(Cur)].LeafLabel;
}

KnnClassifier::KnnClassifier(const Dataset &D, unsigned K)
    : Data(D), K(K) {
  assert(D.size() > 0 && "kNN needs training points");
  assert(K >= 1 && "k must be positive");
}

int KnnClassifier::predict(const std::vector<double> &X) const {
  // Partial selection of the K nearest squared distances.
  std::vector<std::pair<double, int>> Dist;
  Dist.reserve(Data.size());
  for (size_t I = 0; I != Data.size(); ++I) {
    double D2 = 0.0;
    for (size_t F = 0; F != X.size(); ++F) {
      double D = Data.X[I][F] - X[F];
      D2 += D * D;
    }
    Dist.push_back({D2, Data.Y[I]});
  }
  size_t Take = std::min<size_t>(K, Dist.size());
  std::partial_sort(Dist.begin(),
                    Dist.begin() + static_cast<ptrdiff_t>(Take),
                    Dist.end());
  ptrdiff_t Balance = 0;
  for (size_t I = 0; I != Take; ++I)
    Balance += Dist[I].second;
  return Balance >= 0 ? 1 : -1;
}
