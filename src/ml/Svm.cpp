//===- ml/Svm.cpp --------------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// SMO in the Fan–Chen–Lin style used by LIBSVM: at each iteration the
/// maximal violating pair (i from I_up, j from I_low) is selected by
/// first-order information, the two alphas are updated analytically under
/// the box constraints, and the gradient is maintained incrementally.
///
//===----------------------------------------------------------------------===//

#include "ml/Svm.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace ipas;

double ipas::rbfKernel(const std::vector<double> &A,
                       const std::vector<double> &B, double Gamma) {
  double Dist2 = 0.0;
  for (size_t J = 0; J != A.size(); ++J) {
    double D = A[J] - B[J];
    Dist2 += D * D;
  }
  return std::exp(-Gamma * Dist2);
}

double SvmModel::decision(const std::vector<double> &X) const {
  double Sum = Bias;
  for (size_t I = 0; I != SupportVectors.size(); ++I)
    Sum += Coefficients[I] * rbfKernel(SupportVectors[I], X, Gamma);
  return Sum;
}

SvmModel ipas::trainCSvc(const Dataset &D, const SvmParams &P) {
  const size_t N = D.size();
  assert(N > 0 && "cannot train on an empty dataset");
  size_t NumPos = D.countLabel(1);
  size_t NumNeg = N - NumPos;
  assert(NumPos > 0 && NumNeg > 0 && "need samples of both classes");

  double WPos = P.PositiveClassWeight;
  if (P.AutoClassWeight)
    WPos = static_cast<double>(NumNeg) / static_cast<double>(NumPos);
  const double CPos = P.C * WPos;
  const double CNeg = P.C;

  // Precompute the kernel matrix in float (N <= a few thousand in every
  // IPAS training configuration; see DESIGN.md).
  std::vector<float> K(N * N);
  for (size_t I = 0; I != N; ++I) {
    K[I * N + I] = 1.0f; // exp(0)
    for (size_t J = I + 1; J != N; ++J) {
      float V = static_cast<float>(rbfKernel(D.X[I], D.X[J], P.Gamma));
      K[I * N + J] = V;
      K[J * N + I] = V;
    }
  }

  std::vector<double> Alpha(N, 0.0);
  // Gradient of the dual objective: G_i = sum_j y_i y_j K_ij alpha_j - 1.
  std::vector<double> G(N, -1.0);
  std::vector<double> Cap(N);
  for (size_t I = 0; I != N; ++I)
    Cap[I] = D.Y[I] > 0 ? CPos : CNeg;

  auto InUp = [&](size_t I) {
    return (D.Y[I] > 0 && Alpha[I] < Cap[I]) ||
           (D.Y[I] < 0 && Alpha[I] > 0.0);
  };
  auto InLow = [&](size_t I) {
    return (D.Y[I] > 0 && Alpha[I] > 0.0) ||
           (D.Y[I] < 0 && Alpha[I] < Cap[I]);
  };

  size_t Iter = 0;
  for (; Iter != P.MaxIterations; ++Iter) {
    // Working-set selection: i maximizes -y_i G_i over I_up, j minimizes
    // it over I_low; stop when the KKT gap closes.
    double GMax = -std::numeric_limits<double>::infinity();
    double GMin = std::numeric_limits<double>::infinity();
    size_t Imax = N, Jmin = N;
    for (size_t I = 0; I != N; ++I) {
      double V = -static_cast<double>(D.Y[I]) * G[I];
      if (InUp(I) && V > GMax) {
        GMax = V;
        Imax = I;
      }
      if (InLow(I) && V < GMin) {
        GMin = V;
        Jmin = I;
      }
    }
    if (Imax == N || Jmin == N || GMax - GMin < P.Epsilon)
      break;

    const size_t I = Imax, J = Jmin;
    const double Yi = D.Y[I], Yj = D.Y[J];
    const float *Ki = &K[I * N];
    const float *Kj = &K[J * N];

    // Second-order curvature along the (i, j) direction.
    double Quad = Ki[I] + Kj[J] - 2.0 * Yi * Yj * Ki[J];
    if (Quad <= 0.0)
      Quad = 1e-12;
    double Delta = (GMax - GMin) / Quad;

    // Update alphas under box constraints (work in the y-scaled space).
    double OldAi = Alpha[I], OldAj = Alpha[J];
    Alpha[I] += Yi * Delta;
    Alpha[J] -= Yj * Delta;
    Alpha[I] = std::clamp(Alpha[I], 0.0, Cap[I]);
    // Preserve the equality constraint sum(y*alpha) = const.
    double Shift = Yi * (Alpha[I] - OldAi);
    Alpha[J] = OldAj - Yj * Shift;
    Alpha[J] = std::clamp(Alpha[J], 0.0, Cap[J]);
    // Re-adjust i in case j clipped.
    Shift = Yj * (Alpha[J] - OldAj);
    Alpha[I] = OldAi - Yi * Shift;
    Alpha[I] = std::clamp(Alpha[I], 0.0, Cap[I]);

    double DAi = (Alpha[I] - OldAi) * Yi;
    double DAj = (Alpha[J] - OldAj) * Yj;
    if (DAi == 0.0 && DAj == 0.0)
      break; // numerically stuck
    for (size_t T = 0; T != N; ++T)
      G[T] += static_cast<double>(D.Y[T]) *
              (DAi * Ki[T] + DAj * Kj[T]);
  }

  // Bias from the free support vectors (fall back to the KKT midpoint).
  double BiasSum = 0.0;
  size_t FreeCount = 0;
  double UpBound = -std::numeric_limits<double>::infinity();
  double LowBound = std::numeric_limits<double>::infinity();
  for (size_t I = 0; I != N; ++I) {
    double V = -static_cast<double>(D.Y[I]) * G[I];
    if (Alpha[I] > 0.0 && Alpha[I] < Cap[I]) {
      BiasSum += V;
      ++FreeCount;
    }
    if (InUp(I))
      UpBound = std::max(UpBound, V);
    if (InLow(I))
      LowBound = std::min(LowBound, V);
  }
  double Bias = FreeCount ? BiasSum / static_cast<double>(FreeCount)
                          : (UpBound + LowBound) / 2.0;

  // Dual objective from the maintained gradient: G = Q alpha - e, so
  // f(alpha) = 0.5 alpha'Q alpha - e'alpha = 0.5 (alpha'G - e'alpha).
  double AlphaDotG = 0.0, AlphaSum = 0.0;
  for (size_t I = 0; I != N; ++I) {
    AlphaDotG += Alpha[I] * G[I];
    AlphaSum += Alpha[I];
  }
  double Objective = 0.5 * (AlphaDotG - AlphaSum);

  SvmModel Model;
  Model.Gamma = P.Gamma;
  Model.Bias = Bias;
  Model.Iterations = Iter;
  Model.FinalObjective = Objective;
  for (size_t I = 0; I != N; ++I)
    if (Alpha[I] > 1e-12) {
      Model.SupportVectors.push_back(D.X[I]);
      Model.Coefficients.push_back(Alpha[I] *
                                   static_cast<double>(D.Y[I]));
    }

  auto &Reg = obs::MetricsRegistry::global();
  static obs::Counter &Trainings = Reg.counter("ml.svm.trainings");
  static obs::Counter &Iterations = Reg.counter("ml.svm.iterations");
  static obs::Histogram &IterHist = Reg.histogram("ml.svm.iterations_hist");
  Trainings.inc();
  Iterations.inc(Iter);
  IterHist.observe(Iter);
  if (obs::logEnabled(obs::Severity::Debug))
    obs::TraceSink::event("svm.train",
                          obs::AttrSet()
                              .add("samples", static_cast<uint64_t>(N))
                              .add("c", P.C)
                              .add("gamma", P.Gamma)
                              .add("iterations", static_cast<uint64_t>(Iter))
                              .add("objective", Objective)
                              .add("support_vectors",
                                   static_cast<uint64_t>(
                                       Model.SupportVectors.size())));
  return Model;
}
