//===- ml/ModelSelection.cpp --------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/ModelSelection.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cmath>

using namespace ipas;

double ipas::fScore(const ClassAccuracies &A) {
  double Sum = A.Accuracy1 + A.Accuracy2;
  if (Sum <= 0.0)
    return 0.0;
  return 2.0 * A.Accuracy1 * A.Accuracy2 / Sum;
}

ClassAccuracies ipas::evaluateModel(const SvmModel &Model,
                                    const Dataset &Test) {
  size_t Correct1 = 0, Total1 = 0, Correct2 = 0, Total2 = 0;
  for (size_t I = 0; I != Test.size(); ++I) {
    int Pred = Model.predict(Test.X[I]);
    if (Test.Y[I] > 0) {
      ++Total1;
      if (Pred > 0)
        ++Correct1;
    } else {
      ++Total2;
      if (Pred < 0)
        ++Correct2;
    }
  }
  ClassAccuracies A;
  A.Accuracy1 = Total1 ? static_cast<double>(Correct1) /
                             static_cast<double>(Total1)
                       : 0.0;
  A.Accuracy2 = Total2 ? static_cast<double>(Correct2) /
                             static_cast<double>(Total2)
                       : 0.0;
  return A;
}

/// Builds stratified fold assignments: each class's samples are shuffled
/// and dealt round-robin so every fold sees the minority class.
static std::vector<unsigned> stratifiedFolds(const Dataset &D,
                                             unsigned Folds, Rng &R) {
  std::vector<size_t> Pos, Neg;
  for (size_t I = 0; I != D.size(); ++I)
    (D.Y[I] > 0 ? Pos : Neg).push_back(I);
  auto ShuffleIdx = [&](std::vector<size_t> &V) {
    R.shuffle(V.size(), [&](size_t A, size_t B) { std::swap(V[A], V[B]); });
  };
  ShuffleIdx(Pos);
  ShuffleIdx(Neg);
  std::vector<unsigned> FoldOf(D.size(), 0);
  unsigned Next = 0;
  for (size_t I : Pos)
    FoldOf[I] = Next++ % Folds;
  for (size_t I : Neg)
    FoldOf[I] = Next++ % Folds;
  return FoldOf;
}

ClassAccuracies ipas::crossValidate(const Dataset &D, const SvmParams &P,
                                    unsigned Folds, Rng &R) {
  assert(Folds >= 2 && "cross validation needs at least two folds");
  std::vector<unsigned> FoldOf = stratifiedFolds(D, Folds, R);

  size_t Correct1 = 0, Total1 = 0, Correct2 = 0, Total2 = 0;
  for (unsigned Fold = 0; Fold != Folds; ++Fold) {
    Dataset Train, Test;
    for (size_t I = 0; I != D.size(); ++I) {
      if (FoldOf[I] == Fold)
        Test.add(D.X[I], D.Y[I]);
      else
        Train.add(D.X[I], D.Y[I]);
    }
    if (Train.countLabel(1) == 0 || Train.countLabel(-1) == 0 ||
        Test.size() == 0)
      continue; // degenerate fold (tiny minority class)
    SvmModel Model = trainCSvc(Train, P);
    for (size_t I = 0; I != Test.size(); ++I) {
      int Pred = Model.predict(Test.X[I]);
      if (Test.Y[I] > 0) {
        ++Total1;
        if (Pred > 0)
          ++Correct1;
      } else {
        ++Total2;
        if (Pred < 0)
          ++Correct2;
      }
    }
  }
  ClassAccuracies A;
  A.Accuracy1 =
      Total1 ? static_cast<double>(Correct1) / static_cast<double>(Total1)
             : 0.0;
  A.Accuracy2 =
      Total2 ? static_cast<double>(Correct2) / static_cast<double>(Total2)
             : 0.0;
  return A;
}

/// Log-spaced values from Lo to Hi inclusive.
static std::vector<double> logSpace(double Lo, double Hi, unsigned Steps) {
  std::vector<double> V;
  if (Steps == 1) {
    V.push_back(Lo);
    return V;
  }
  double LogLo = std::log10(Lo);
  double LogHi = std::log10(Hi);
  for (unsigned I = 0; I != Steps; ++I)
    V.push_back(std::pow(
        10.0, LogLo + (LogHi - LogLo) * static_cast<double>(I) /
                          static_cast<double>(Steps - 1)));
  return V;
}

std::vector<RankedConfig> ipas::gridSearch(const Dataset &D,
                                           const GridSearchConfig &Cfg) {
  std::vector<double> Cs = logSpace(Cfg.CMin, Cfg.CMax, Cfg.CSteps);
  std::vector<double> Gammas =
      logSpace(Cfg.GammaMin, Cfg.GammaMax, Cfg.GammaSteps);

  obs::PhaseSpan Span(
      "grid_search",
      obs::AttrSet()
          .add("configs", static_cast<uint64_t>(Cs.size() * Gammas.size()))
          .add("folds", Cfg.Folds)
          .add("samples", static_cast<uint64_t>(D.size())));
  obs::MetricsRegistry::global()
      .counter("ml.grid.configs")
      .inc(Cs.size() * Gammas.size());

  std::vector<RankedConfig> Results;
  Results.reserve(Cs.size() * Gammas.size());
  Rng R(Cfg.Seed);
  // Use the same fold split for every configuration so scores are
  // comparable (the Rng is re-seeded per configuration).
  for (double Gamma : Gammas)
    for (double C : Cs) {
      SvmParams P;
      P.C = C;
      P.Gamma = Gamma;
      P.MaxIterations = Cfg.MaxIterations;
      Rng FoldRng(Cfg.Seed ^ 0x9e37);
      RankedConfig RC;
      RC.Params = P;
      RC.Accuracies = crossValidate(D, P, Cfg.Folds, FoldRng);
      RC.FScore = fScore(RC.Accuracies);
      Results.push_back(RC);
    }
  std::stable_sort(Results.begin(), Results.end(),
                   [](const RankedConfig &A, const RankedConfig &B) {
                     return A.FScore > B.FScore;
                   });
  if (!Results.empty())
    Span.addAttr(obs::AttrSet()
                     .add("best_fscore", Results.front().FScore)
                     .add("best_c", Results.front().Params.C)
                     .add("best_gamma", Results.front().Params.Gamma));
  return Results;
}
