//===- ml/Dataset.cpp ----------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/Dataset.h"

using namespace ipas;

void FeatureScaler::fit(const std::vector<std::vector<double>> &X) {
  assert(!X.empty() && "cannot fit a scaler on an empty set");
  size_t D = X.front().size();
  Mins.assign(D, 0.0);
  Ranges.assign(D, 0.0);
  std::vector<double> Maxs(D, 0.0);
  for (size_t J = 0; J != D; ++J) {
    Mins[J] = Maxs[J] = X.front()[J];
  }
  for (const auto &Row : X)
    for (size_t J = 0; J != D; ++J) {
      if (Row[J] < Mins[J])
        Mins[J] = Row[J];
      if (Row[J] > Maxs[J])
        Maxs[J] = Row[J];
    }
  for (size_t J = 0; J != D; ++J)
    Ranges[J] = Maxs[J] - Mins[J];
}

std::vector<double>
FeatureScaler::transform(const std::vector<double> &V) const {
  assert(V.size() == Mins.size() && "dimension mismatch");
  std::vector<double> Out(V.size());
  for (size_t J = 0; J != V.size(); ++J)
    Out[J] = Ranges[J] > 0.0 ? (V[J] - Mins[J]) / Ranges[J] : 0.0;
  return Out;
}

Dataset FeatureScaler::transform(const Dataset &D) const {
  Dataset Out;
  Out.X.reserve(D.size());
  for (size_t I = 0; I != D.size(); ++I)
    Out.add(transform(D.X[I]), D.Y[I]);
  return Out;
}
