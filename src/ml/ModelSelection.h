//===- ml/ModelSelection.h - Cross validation, F-score, grid search -------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model selection exactly as in the paper (§4.3.2): (C, gamma)
/// configurations are scored by stratified k-fold cross validation using
/// the F-score of Eq. (1) — the harmonic mean of the per-class accuracies
/// — and the top-N configurations are carried into the evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ML_MODELSELECTION_H
#define IPAS_ML_MODELSELECTION_H

#include "ml/Svm.h"
#include "support/Random.h"

#include <vector>

namespace ipas {

/// Per-class accuracies of a classifier on a labeled set.
struct ClassAccuracies {
  double Accuracy1 = 0.0; ///< Fraction of +1 samples classified +1.
  double Accuracy2 = 0.0; ///< Fraction of -1 samples classified -1.
};

/// The paper's Eq. (1): 2 * A1 * A2 / (A1 + A2); 0 when degenerate.
double fScore(const ClassAccuracies &A);

/// Evaluates \p Model on \p Test.
ClassAccuracies evaluateModel(const SvmModel &Model, const Dataset &Test);

/// Stratified k-fold cross validation of one parameter setting. Returns
/// the pooled per-class accuracies over all folds.
ClassAccuracies crossValidate(const Dataset &D, const SvmParams &P,
                              unsigned Folds, Rng &R);

struct GridSearchConfig {
  double CMin = 1.0;
  double CMax = 1e5;
  unsigned CSteps = 25;
  double GammaMin = 1e-5;
  double GammaMax = 1.0;
  unsigned GammaSteps = 20; ///< 25 x 20 = the paper's 500 configurations.
  unsigned Folds = 5;
  size_t MaxIterations = 200000;
  uint64_t Seed = 0x5eed;
};

/// One evaluated configuration.
struct RankedConfig {
  SvmParams Params;
  double FScore = 0.0;
  ClassAccuracies Accuracies;
};

/// Exhaustive grid search over log-spaced (C, gamma); returns all
/// configurations sorted by descending F-score. Take the first N for the
/// paper's "top-N configurations" methodology (§6.1).
std::vector<RankedConfig> gridSearch(const Dataset &D,
                                     const GridSearchConfig &Cfg);

} // namespace ipas

#endif // IPAS_ML_MODELSELECTION_H
