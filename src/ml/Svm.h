//===- ml/Svm.h - C-SVC with RBF kernel trained by SMO ---------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A support vector classifier in the LIBSVM mold (the paper uses Chang &
/// Lin's C-SVM): the dual problem is solved by Sequential Minimal
/// Optimization with maximal-violating-pair working-set selection, an RBF
/// kernel, and per-class penalty weights to cope with the heavy class
/// imbalance of SOC training data (3-10% positives, §4.3.1).
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ML_SVM_H
#define IPAS_ML_SVM_H

#include "ml/Dataset.h"

namespace ipas {

struct SvmParams {
  double C = 1.0;
  double Gamma = 0.1;
  /// KKT violation tolerance for SMO termination.
  double Epsilon = 1e-3;
  /// Extra penalty multiplier for the +1 class; with AutoClassWeight the
  /// multiplier is set to (#negatives / #positives) at training time.
  double PositiveClassWeight = 1.0;
  bool AutoClassWeight = true;
  size_t MaxIterations = 200000;
};

/// A trained classifier: support vectors with coefficients and a bias.
class SvmModel {
public:
  /// Signed distance to the separating surface.
  double decision(const std::vector<double> &X) const;
  /// +1 or -1.
  int predict(const std::vector<double> &X) const {
    return decision(X) >= 0.0 ? 1 : -1;
  }

  size_t numSupportVectors() const { return SupportVectors.size(); }
  double gamma() const { return Gamma; }
  double bias() const { return Bias; }
  /// Number of SMO iterations the training run used.
  size_t iterationsUsed() const { return Iterations; }
  /// Final dual objective f(alpha) = 0.5 alpha'Q alpha - e'alpha reached
  /// by SMO (lower is better; telemetry/diagnostics only).
  double objective() const { return FinalObjective; }

private:
  friend SvmModel trainCSvc(const Dataset &D, const SvmParams &P);

  std::vector<std::vector<double>> SupportVectors;
  std::vector<double> Coefficients; ///< alpha_i * y_i per support vector.
  double Bias = 0.0;
  double Gamma = 0.1;
  size_t Iterations = 0;
  double FinalObjective = 0.0;
};

/// Trains on \p D (features should be pre-scaled). Requires at least one
/// sample of each class.
SvmModel trainCSvc(const Dataset &D, const SvmParams &P);

/// RBF kernel exp(-gamma * ||A - B||^2).
double rbfKernel(const std::vector<double> &A, const std::vector<double> &B,
                 double Gamma);

} // namespace ipas

#endif // IPAS_ML_SVM_H
