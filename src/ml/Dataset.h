//===- ml/Dataset.h - Training data and feature scaling --------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_ML_DATASET_H
#define IPAS_ML_DATASET_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace ipas {

/// A dense binary-classification dataset. Labels are +1 (class 1, e.g.
/// SOC-generating) and -1 (class 2).
struct Dataset {
  std::vector<std::vector<double>> X;
  std::vector<int> Y;

  size_t size() const { return X.size(); }
  size_t dim() const { return X.empty() ? 0 : X.front().size(); }

  void add(std::vector<double> Features, int Label) {
    assert((Label == 1 || Label == -1) && "labels are +1/-1");
    assert((X.empty() || Features.size() == dim()) &&
           "inconsistent feature dimension");
    X.push_back(std::move(Features));
    Y.push_back(Label);
  }

  size_t countLabel(int Label) const {
    size_t N = 0;
    for (int L : Y)
      if (L == Label)
        ++N;
    return N;
  }
};

/// Min-max scaling of each feature to [0, 1] (the standard LIBSVM
/// preprocessing). Constant features map to 0.
class FeatureScaler {
public:
  void fit(const std::vector<std::vector<double>> &X);
  std::vector<double> transform(const std::vector<double> &V) const;
  Dataset transform(const Dataset &D) const;
  size_t dim() const { return Mins.size(); }

private:
  std::vector<double> Mins;
  std::vector<double> Ranges; ///< max - min; 0 for constant features.
};

} // namespace ipas

#endif // IPAS_ML_DATASET_H
