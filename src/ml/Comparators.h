//===- ml/Comparators.h - Decision tree and kNN baselines ------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper (§4.3.1) reports that SVMs handled the class-imbalanced SOC
/// data better than "other commonly used classification schemes, such as
/// decision trees and nearest neighbor". These two reference classifiers
/// back the ablation bench that reproduces the comparison.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ML_COMPARATORS_H
#define IPAS_ML_COMPARATORS_H

#include "ml/Dataset.h"

#include <memory>

namespace ipas {

/// CART-style binary decision tree with Gini impurity splits.
class DecisionTree {
public:
  struct Params {
    unsigned MaxDepth = 8;
    size_t MinSamplesPerLeaf = 2;
  };

  static DecisionTree train(const Dataset &D, const Params &P);
  static DecisionTree train(const Dataset &D);

  int predict(const std::vector<double> &X) const;
  size_t numNodes() const { return Nodes.size(); }
  unsigned depth() const { return Depth; }

private:
  struct Node {
    bool IsLeaf = true;
    int LeafLabel = -1;
    unsigned Feature = 0;
    double Threshold = 0.0;
    int Left = -1;  ///< x[Feature] <= Threshold
    int Right = -1; ///< x[Feature] >  Threshold
  };

  int build(const Dataset &D, std::vector<size_t> Indices,
            unsigned DepthLeft, const Params &P);

  std::vector<Node> Nodes;
  unsigned Depth = 0;
};

/// k-nearest-neighbour majority vote over Euclidean distance.
class KnnClassifier {
public:
  KnnClassifier(const Dataset &D, unsigned K = 5);

  int predict(const std::vector<double> &X) const;
  unsigned k() const { return K; }

private:
  Dataset Data;
  unsigned K;
};

} // namespace ipas

#endif // IPAS_ML_COMPARATORS_H
