//===- core/Pipeline.h - The IPAS workflow (paper Figure 1) ---------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end IPAS workflow:
///   1. verification routine  — supplied by each Workload (Table 2)
///   2. data collection       — statistical fault injection + labeling
///   3. training              — SVM grid search ranked by F-score
///   4. application protection— selective duplication per the classifier
/// plus the evaluation machinery for the paper's §6: coverage campaigns,
/// slowdown accounting, best-configuration selection (ideal-point
/// criterion), input-variation studies, and MPI strong-scaling runs.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_CORE_PIPELINE_H
#define IPAS_CORE_PIPELINE_H

#include "analysis/Features.h"
#include "fault/Campaign.h"
#include "ml/ModelSelection.h"
#include "transform/Duplication.h"
#include "workloads/WorkloadHarness.h"

#include <memory>
#include <string>

namespace ipas {

/// Protection techniques compared in the evaluation.
enum class Technique : uint8_t {
  Unprotected,
  FullDup, ///< SWIFT-style full duplication.
  Ipas,    ///< Classifier trained on SOC labels; protect predicted SOC.
  Baseline ///< Shoestring-style: classifier trained on symptom labels;
           ///< protect predicted NON-symptom instructions.
};

const char *techniqueName(Technique T);

struct PipelineConfig {
  int InputLevel = 1;
  size_t TrainSamples = 500; ///< Paper: 2,500 (§4.1).
  size_t EvalRuns = 250;     ///< Paper: 1,024 per configuration (§5.4).
  double HangFactor = 10.0;
  GridSearchConfig Grid;   ///< Defaults below; paperScale() for 25x20.
  unsigned TopN = 5;       ///< Paper: top-5 configurations (§6.1).
  uint64_t Seed = 0xA11CE;
  /// When non-empty, every evaluation campaign writes its .iprec
  /// provenance record store into this directory (one file per variant,
  /// named <workload>-<label>.iprec) for ipas-inspect. The directory
  /// must already exist. See docs/OBSERVABILITY.md.
  std::string RecordDir;
  /// When non-empty, every evaluated variant also writes a .ipprof cost
  /// profile into this directory (one file per variant, named
  /// <workload>-<label>.ipprof) for ipas-profile: one additional serial
  /// profiled clean run per variant, with protection overhead attributed
  /// per original site against a fresh unprotected build. Profiling never
  /// perturbs the campaign record streams. The directory must already
  /// exist. See docs/OBSERVABILITY.md.
  std::string ProfileDir;
  /// Execution engine for the training and evaluation campaigns
  /// (CampaignConfig::Backend). The VM is observably equivalent and
  /// 10-100x faster; the default stays on the reference interpreter.
  ExecBackend Backend = ExecBackend::Interp;
  /// When nonzero, every evaluation campaign also traces fault
  /// propagation for 1-in-N injections (CampaignConfig::PropSampleEvery).
  /// Sampling never perturbs the deterministic record stream; it only
  /// adds serial re-executions after the campaign, so leave it zero
  /// unless the propagation ground truth is wanted.
  size_t PropSampleEvery = 0;
  /// Prune evaluation-campaign injections at sites the summary-aware
  /// interprocedural SOC analysis (analysis/FunctionSummary.h) proves
  /// benign: they are recorded as Masked without executing. Off by
  /// default — pruning changes run time, never outcomes, but the paper's
  /// headline numbers were measured without it.
  bool InterproceduralAnalysis = false;

  /// Scaled-down defaults that keep a full five-workload evaluation in
  /// the minutes range on a laptop.
  static PipelineConfig defaults();
  /// The paper's campaign sizes (2,500 training samples, 1,024 runs per
  /// configuration, 500 grid points, 5 folds).
  static PipelineConfig paperScale();
};

/// Everything produced by steps 2-3 for one workload.
struct TrainingArtifacts {
  CampaignResult Campaign; ///< Injections on the unprotected code.
  FeatureScaler Scaler;
  std::vector<FeatureVector> Features; ///< Per instruction id.
  Dataset IpasData;     ///< +1 = SOC-generating.
  Dataset BaselineData; ///< +1 = symptom-generating.
  std::vector<RankedConfig> IpasConfigs;     ///< Ranked by F-score.
  std::vector<RankedConfig> BaselineConfigs; ///< Ranked by F-score.
  double TrainSeconds = 0.0; ///< Grid-search + final-training time.
};

/// One protected (or reference) variant and its evaluation.
struct VariantEvaluation {
  std::string Label; ///< e.g. "ipas-1".
  Technique Tech = Technique::Unprotected;
  RankedConfig Config;   ///< Meaningful for Ipas/Baseline variants.
  DuplicationStats Dup;
  CampaignResult Campaign;
  double Slowdown = 1.0;        ///< Clean-run dynamic-instruction ratio.
  double SocReductionPct = 0.0; ///< Relative to the unprotected SOC rate.
};

/// Full §6 evaluation record for one workload.
struct WorkloadEvaluation {
  std::string WorkloadName;
  size_t StaticInstructions = 0; ///< Table 3.
  size_t LinesOfCode = 0;        ///< Table 3.
  TrainingArtifacts Training;
  std::vector<VariantEvaluation> Variants;
  double DuplicateSeconds = 0.0; ///< Classification + duplication, Table 6.

  const VariantEvaluation *variant(const std::string &Label) const;
  /// Best Ipas/Baseline variant under the ideal-point criterion (§6.3):
  /// minimal Euclidean distance to (slowdown=1, SOC-reduction=100).
  const VariantEvaluation *bestVariant(Technique T) const;
};

/// Runs steps 1-4 plus the evaluation campaigns for one workload.
class IpasPipeline {
public:
  IpasPipeline(const Workload &W, const PipelineConfig &Cfg);

  /// The full evaluation: training, top-N protected variants for IPAS and
  /// Baseline, plus Unprotected and FullDup references.
  WorkloadEvaluation run();

  // --- Composable pieces (used by the finer-grained benches/tests).

  /// Steps 2-3: fault injection, labeling, grid search. Pass
  /// \p RunGridSearch = false to skip model selection (used when the
  /// (C, gamma) configuration is already known, e.g. from a cached
  /// evaluation); the config lists are then left empty.
  TrainingArtifacts collectAndTrain(bool RunGridSearch = true);

  /// Step 4 for one configuration: returns the instruction ids to protect.
  std::set<unsigned> selectInstructions(Technique T, const SvmParams &P,
                                        const TrainingArtifacts &A) const;

  /// Builds a freshly compiled module with the given protection applied.
  struct ProtectedModule {
    std::unique_ptr<Module> M;
    std::unique_ptr<ModuleLayout> Layout;
    DuplicationStats Stats;
  };
  ProtectedModule protect(const std::set<unsigned> &Ids) const;
  ProtectedModule protectAll() const;
  ProtectedModule protectNone() const;

  /// Campaign over a (protected) module at the configured scale. \p Label
  /// names the campaign in trace records and progress lines.
  CampaignResult evaluate(const ProtectedModule &PM, uint64_t Seed,
                          int InputLevel = 0,
                          const std::string &Label = std::string()) const;

  /// Clean-run slowdown of \p PM versus the unprotected module with
  /// \p NumRanks MPI ranks (critical-path cycle ratio). Figure 8.
  double scalabilitySlowdown(const ProtectedModule &PM, int NumRanks,
                             int InputLevel = 0) const;

  const PipelineConfig &config() const { return Cfg; }
  const Workload &workload() const { return W; }

private:
  const Workload &W;
  PipelineConfig Cfg;
};

} // namespace ipas

#endif // IPAS_CORE_PIPELINE_H
