//===- core/ResultsCache.cpp --------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ResultsCache.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

using namespace ipas;

uint64_t ipas::pipelineConfigHash(const PipelineConfig &Cfg) {
  // FNV-1a over the fields that change evaluation results.
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    for (int B = 0; B != 8; ++B) {
      H ^= (V >> (B * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  Mix(static_cast<uint64_t>(Cfg.InputLevel));
  Mix(Cfg.TrainSamples);
  Mix(Cfg.EvalRuns);
  Mix(static_cast<uint64_t>(Cfg.HangFactor * 1000));
  Mix(Cfg.Grid.CSteps);
  Mix(Cfg.Grid.GammaSteps);
  Mix(Cfg.Grid.Folds);
  Mix(Cfg.Grid.MaxIterations);
  Mix(static_cast<uint64_t>(Cfg.Grid.CMin * 1000));
  Mix(static_cast<uint64_t>(Cfg.Grid.CMax));
  Mix(static_cast<uint64_t>(Cfg.Grid.GammaMin * 1e9));
  Mix(static_cast<uint64_t>(Cfg.Grid.GammaMax * 1000));
  Mix(Cfg.TopN);
  Mix(Cfg.Seed);
  return H;
}

static void writeCampaign(std::ostream &OS, const char *Tag,
                          const CampaignResult &C) {
  OS << Tag << " " << C.CleanSteps << " " << C.CleanValueSteps << " "
     << C.CleanCriticalPathCycles;
  for (size_t K : C.Counts)
    OS << " " << K;
  OS << "\n";
}

static bool readCampaign(std::istream &IS, CampaignResult &C) {
  if (!(IS >> C.CleanSteps >> C.CleanValueSteps >> C.CleanCriticalPathCycles))
    return false;
  for (size_t &K : C.Counts)
    if (!(IS >> K))
      return false;
  return true;
}

static void writeConfig(std::ostream &OS, const RankedConfig &RC) {
  OS.precision(17);
  OS << RC.Params.C << " " << RC.Params.Gamma << " " << RC.FScore << " "
     << RC.Accuracies.Accuracy1 << " " << RC.Accuracies.Accuracy2;
}

static bool readConfig(std::istream &IS, RankedConfig &RC) {
  return static_cast<bool>(IS >> RC.Params.C >> RC.Params.Gamma >>
                           RC.FScore >> RC.Accuracies.Accuracy1 >>
                           RC.Accuracies.Accuracy2);
}

std::string ipas::serializeEvaluation(const WorkloadEvaluation &WE) {
  std::ostringstream OS;
  OS.precision(17);
  OS << "ipas-cache-v1\n";
  OS << "workload " << WE.WorkloadName << "\n";
  OS << "static_instructions " << WE.StaticInstructions << "\n";
  OS << "lines_of_code " << WE.LinesOfCode << "\n";
  OS << "train_seconds " << WE.Training.TrainSeconds << "\n";
  OS << "duplicate_seconds " << WE.DuplicateSeconds << "\n";
  writeCampaign(OS, "training_campaign", WE.Training.Campaign);
  for (const RankedConfig &RC : WE.Training.IpasConfigs) {
    OS << "ipas_config ";
    writeConfig(OS, RC);
    OS << "\n";
  }
  for (const RankedConfig &RC : WE.Training.BaselineConfigs) {
    OS << "baseline_config ";
    writeConfig(OS, RC);
    OS << "\n";
  }
  for (const VariantEvaluation &V : WE.Variants) {
    OS << "variant " << V.Label << " "
       << static_cast<int>(V.Tech) << " ";
    writeConfig(OS, V.Config);
    OS << " " << V.Dup.TotalInstructions << " "
       << V.Dup.EligibleInstructions << " " << V.Dup.SelectedInstructions
       << " " << V.Dup.DuplicatedInstructions << " "
       << V.Dup.ChecksInserted << " " << V.Slowdown << " "
       << V.SocReductionPct << " ";
    writeCampaign(OS, "campaign", V.Campaign);
  }
  OS << "end\n";
  return OS.str();
}

std::optional<WorkloadEvaluation>
ipas::deserializeEvaluation(const std::string &Text) {
  std::istringstream IS(Text);
  std::string Tok;
  if (!(IS >> Tok) || Tok != "ipas-cache-v1")
    return std::nullopt;
  WorkloadEvaluation WE;
  while (IS >> Tok) {
    if (Tok == "end")
      return WE;
    if (Tok == "workload") {
      if (!(IS >> WE.WorkloadName))
        return std::nullopt;
    } else if (Tok == "static_instructions") {
      if (!(IS >> WE.StaticInstructions))
        return std::nullopt;
    } else if (Tok == "lines_of_code") {
      if (!(IS >> WE.LinesOfCode))
        return std::nullopt;
    } else if (Tok == "train_seconds") {
      if (!(IS >> WE.Training.TrainSeconds))
        return std::nullopt;
    } else if (Tok == "duplicate_seconds") {
      if (!(IS >> WE.DuplicateSeconds))
        return std::nullopt;
    } else if (Tok == "training_campaign") {
      if (!readCampaign(IS, WE.Training.Campaign))
        return std::nullopt;
    } else if (Tok == "ipas_config") {
      RankedConfig RC;
      if (!readConfig(IS, RC))
        return std::nullopt;
      WE.Training.IpasConfigs.push_back(RC);
    } else if (Tok == "baseline_config") {
      RankedConfig RC;
      if (!readConfig(IS, RC))
        return std::nullopt;
      WE.Training.BaselineConfigs.push_back(RC);
    } else if (Tok == "variant") {
      VariantEvaluation V;
      int Tech = 0;
      if (!(IS >> V.Label >> Tech) || !readConfig(IS, V.Config))
        return std::nullopt;
      V.Tech = static_cast<Technique>(Tech);
      std::string CampaignTag;
      if (!(IS >> V.Dup.TotalInstructions >> V.Dup.EligibleInstructions >>
            V.Dup.SelectedInstructions >> V.Dup.DuplicatedInstructions >>
            V.Dup.ChecksInserted >> V.Slowdown >> V.SocReductionPct >>
            CampaignTag) ||
          CampaignTag != "campaign" || !readCampaign(IS, V.Campaign))
        return std::nullopt;
      WE.Variants.push_back(std::move(V));
    } else {
      return std::nullopt; // unknown record
    }
  }
  return std::nullopt; // missing "end"
}

static std::string cacheDir() {
  if (const char *Dir = std::getenv("IPAS_CACHE_DIR"))
    return Dir;
  return ".ipas-cache";
}

static bool cacheDisabled() {
  const char *V = std::getenv("IPAS_NO_CACHE");
  return V && V[0] == '1';
}

static std::string cachePath(const std::string &WorkloadName,
                             const PipelineConfig &Cfg) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(pipelineConfigHash(Cfg)));
  return cacheDir() + "/" + WorkloadName + "-" + Buf + ".txt";
}

std::optional<WorkloadEvaluation>
ipas::loadCachedEvaluation(const std::string &WorkloadName,
                           const PipelineConfig &Cfg) {
  if (cacheDisabled())
    return std::nullopt;
  std::ifstream In(cachePath(WorkloadName, Cfg));
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return deserializeEvaluation(SS.str());
}

void ipas::storeCachedEvaluation(const WorkloadEvaluation &WE,
                                 const PipelineConfig &Cfg) {
  if (cacheDisabled())
    return;
  ::mkdir(cacheDir().c_str(), 0755); // best effort
  std::ofstream Out(cachePath(WE.WorkloadName, Cfg));
  if (Out)
    Out << serializeEvaluation(WE);
}

WorkloadEvaluation ipas::evaluateWorkloadCached(const Workload &W,
                                                const PipelineConfig &Cfg) {
  auto &Reg = obs::MetricsRegistry::global();
  if (auto Cached = loadCachedEvaluation(W.name(), Cfg)) {
    Reg.counter("cache.hits").inc();
    obs::TraceSink::event("cache.hit",
                          obs::AttrSet().add("workload", W.name()));
    return *Cached;
  }
  Reg.counter("cache.misses").inc();
  obs::TraceSink::event("cache.miss",
                        obs::AttrSet().add("workload", W.name()));
  IpasPipeline Pipeline(W, Cfg);
  WorkloadEvaluation WE = Pipeline.run();
  storeCachedEvaluation(WE, Cfg);
  Reg.counter("cache.stores").inc();
  return WE;
}
