//===- core/Pipeline.cpp -------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "analysis/FunctionSummary.h"
#include "fault/ProfileBuild.h"
#include "fault/RecordBuild.h"
#include "frontend/Lexer.h"
#include "obs/Trace.h"
#include "support/Statistics.h"

using namespace ipas;

namespace {

/// Writes the .iprec provenance record for one evaluated variant into
/// Cfg.RecordDir. Classifier columns (score, prediction) are attached by
/// exploiting the duplication layout: shadows and checks are inserted
/// after their originals and renumber() preserves order, so the k-th
/// non-shadow, non-check instruction of the protected module corresponds
/// to unprotected instruction id k. When that correspondence does not
/// hold (counts differ), the columns are left empty rather than guessed.
void writeVariantRecord(const Workload &W, const PipelineConfig &Cfg,
                        const IpasPipeline::ProtectedModule &PM,
                        const VariantEvaluation &V,
                        const TrainingArtifacts &A, uint64_t Seed) {
  std::vector<Instruction *> Insts = PM.M->allInstructions();

  std::vector<double> Scores;
  std::vector<int> Predictions;
  bool WantClassifier =
      V.Tech == Technique::Ipas || V.Tech == Technique::Baseline;
  if (WantClassifier) {
    size_t NumOriginal = 0;
    for (const Instruction *I : Insts)
      if (I->dupRole() != DupRole::Shadow && I->dupRole() != DupRole::Check)
        ++NumOriginal;
    if (NumOriginal == A.Features.size()) {
      const Dataset &Data =
          V.Tech == Technique::Ipas ? A.IpasData : A.BaselineData;
      SvmModel Model = trainCSvc(Data, V.Config.Params);
      Scores.resize(Insts.size(), 0.0);
      Predictions.resize(Insts.size(), 0);
      size_t K = 0;
      for (const Instruction *I : Insts) {
        if (I->dupRole() == DupRole::Shadow ||
            I->dupRole() == DupRole::Check)
          continue;
        const FeatureVector &FV = A.Features[K++];
        std::vector<double> X =
            A.Scaler.transform(std::vector<double>(FV.begin(), FV.end()));
        Scores[I->id()] = Model.decision(X);
        Predictions[I->id()] = Model.predict(X);
      }
    }
  }

  WorkloadHarness Harness(W, Cfg.InputLevel);
  std::vector<unsigned> StepTrace = Harness.traceValueSteps(*PM.Layout);

  FeatureExtractor Extractor;
  std::vector<std::vector<double>> Rows = Extractor.extractModuleRows(*PM.M);
  std::vector<double> Flat;
  Flat.reserve(Rows.size() * Extractor.numFeatures());
  for (const std::vector<double> &Row : Rows)
    Flat.insert(Flat.end(), Row.begin(), Row.end());

  RecordBuildInputs In;
  In.M = PM.M.get();
  In.Result = &V.Campaign;
  In.EntryFunction = Workload::EntryName;
  In.Label = V.Label;
  In.Seed = Seed;
  In.SourceText = W.source();
  In.ValueStepTrace = &StepTrace;
  In.NumFeatures = Extractor.numFeatures();
  In.Features = &Flat;
  if (!Scores.empty()) {
    In.Scores = &Scores;
    In.Predictions = &Predictions;
  }

  std::string Path = Cfg.RecordDir + "/" + W.name() + "-" + V.Label +
                     ".iprec";
  std::string Err;
  if (!writeCampaignRecord(buildRecordStore(In), Path, &Err))
    std::fprintf(stderr, "warning: cannot write record store: %s\n",
                 Err.c_str());
}

/// Writes the .ipprof cost profile for one evaluated variant into
/// Cfg.ProfileDir: a counting-mode profiled clean run of the variant,
/// with per-site protection overhead attributed against a freshly
/// compiled unprotected build profiled on the same input. All runs are
/// serial and happen after the variant's campaign, so the record stream
/// is untouched.
void writeVariantProfile(const Workload &W, const PipelineConfig &Cfg,
                         const IpasPipeline &P,
                         const IpasPipeline::ProtectedModule &PM,
                         const std::string &Label) {
  WorkloadHarness Harness(W, Cfg.InputLevel);
  CostProfiler Prof(*PM.Layout, CostProfiler::Mode::Counting);
  ProfileBuildInputs In;
  In.EntryFunction = Workload::EntryName;
  In.Label = Label;
  In.SourceText = W.source();
  obs::ProfileStore S;
  std::string Err;
  if (!buildProfileStore(Harness, *PM.Layout, Prof, In, S, &Err)) {
    obs::logMessage(obs::Severity::Warn,
                    "%s: cannot profile variant: %s", Label.c_str(),
                    Err.c_str());
    return;
  }

  IpasPipeline::ProtectedModule Base = P.protectNone();
  WorkloadHarness BaseHarness(W, Cfg.InputLevel);
  CostProfiler BaseProf(*Base.Layout, CostProfiler::Mode::Counting,
                        Prof.model());
  ExecutionRecord R = BaseHarness.executeProfiled(*Base.Layout, BaseProf);
  if (R.Status == RunStatus::Finished && R.OutputValid) {
    if (!attributeOverhead(*Base.M, BaseProf.flatCounts(), *PM.M,
                           Prof.flatCounts(), Prof.model(), S, &Err))
      obs::logMessage(obs::Severity::Warn,
                      "%s: overhead attribution failed: %s", Label.c_str(),
                      Err.c_str());
  } else {
    obs::logMessage(obs::Severity::Warn,
                    "%s: baseline clean run failed; overhead attribution "
                    "skipped",
                    Label.c_str());
  }

  std::string Path = Cfg.ProfileDir + "/" + W.name() + "-" + Label +
                     ".ipprof";
  if (!writeProfileArtifact(S, Path, &Err))
    std::fprintf(stderr, "warning: cannot write profile store: %s\n",
                 Err.c_str());
}

} // namespace

const char *ipas::techniqueName(Technique T) {
  switch (T) {
  case Technique::Unprotected:
    return "unprotected";
  case Technique::FullDup:
    return "full-duplication";
  case Technique::Ipas:
    return "ipas";
  case Technique::Baseline:
    return "baseline";
  }
  return "<bad technique>";
}

PipelineConfig PipelineConfig::defaults() {
  PipelineConfig Cfg;
  Cfg.TrainSamples = 400;
  Cfg.EvalRuns = 200;
  Cfg.Grid.CSteps = 8;
  Cfg.Grid.GammaSteps = 8;
  Cfg.Grid.Folds = 3;
  Cfg.Grid.MaxIterations = 20000;
  return Cfg;
}

PipelineConfig PipelineConfig::paperScale() {
  PipelineConfig Cfg;
  Cfg.TrainSamples = 2500;
  Cfg.EvalRuns = 1024;
  Cfg.Grid.CSteps = 25;
  Cfg.Grid.GammaSteps = 20;
  Cfg.Grid.Folds = 5;
  Cfg.Grid.MaxIterations = 200000;
  return Cfg;
}

const VariantEvaluation *
WorkloadEvaluation::variant(const std::string &Label) const {
  for (const VariantEvaluation &V : Variants)
    if (V.Label == Label)
      return &V;
  return nullptr;
}

const VariantEvaluation *
WorkloadEvaluation::bestVariant(Technique T) const {
  const VariantEvaluation *Best = nullptr;
  double BestDist = 0.0;
  for (const VariantEvaluation &V : Variants) {
    if (V.Tech != T)
      continue;
    // Ideal point: (slowdown, SOC reduction %) == (1, 100). Paper §6.3.
    double Dist =
        euclideanDistance(V.Slowdown, V.SocReductionPct, 1.0, 100.0);
    if (!Best || Dist < BestDist) {
      Best = &V;
      BestDist = Dist;
    }
  }
  return Best;
}

IpasPipeline::IpasPipeline(const Workload &W, const PipelineConfig &Cfg)
    : W(W), Cfg(Cfg) {}

IpasPipeline::ProtectedModule
IpasPipeline::protect(const std::set<unsigned> &Ids) const {
  ProtectedModule PM;
  PM.M = compileWorkload(W);
  PM.Stats = duplicateInstructions(
      *PM.M, [&Ids](const Instruction &I) { return Ids.count(I.id()) != 0; });
  PM.M->renumber();
  PM.Layout = std::make_unique<ModuleLayout>(*PM.M);
  return PM;
}

IpasPipeline::ProtectedModule IpasPipeline::protectAll() const {
  ProtectedModule PM;
  PM.M = compileWorkload(W);
  PM.Stats = duplicateAllInstructions(*PM.M);
  PM.M->renumber();
  PM.Layout = std::make_unique<ModuleLayout>(*PM.M);
  return PM;
}

IpasPipeline::ProtectedModule IpasPipeline::protectNone() const {
  ProtectedModule PM;
  PM.M = compileWorkload(W);
  PM.M->renumber();
  PM.Layout = std::make_unique<ModuleLayout>(*PM.M);
  return PM;
}

CampaignResult IpasPipeline::evaluate(const ProtectedModule &PM,
                                      uint64_t Seed, int InputLevel,
                                      const std::string &Label) const {
  WorkloadHarness Harness(W, InputLevel ? InputLevel : Cfg.InputLevel);
  CampaignConfig CC;
  CC.NumRuns = Cfg.EvalRuns;
  CC.HangFactor = Cfg.HangFactor;
  CC.Seed = Seed;
  CC.Label = Label;
  CC.Backend = Cfg.Backend;
  CC.PropSampleEvery = Cfg.PropSampleEvery;
  if (!Cfg.InterproceduralAnalysis)
    return runCampaign(Harness, *PM.Layout, CC);
  // Summary-aware pruning: sites the interprocedural analysis proves
  // benign are recorded as Masked without executing. The analysis must
  // outlive the campaign — ProvablyBenign borrows its flag vector.
  CallGraph CG(*PM.M);
  ModuleSummaries Summaries(*PM.M, CG);
  SocPropagation Soc(*PM.M, Summaries);
  CC.ProvablyBenign = &Soc.provablyBenign();
  return runCampaign(Harness, *PM.Layout, CC);
}

TrainingArtifacts IpasPipeline::collectAndTrain(bool RunGridSearch) {
  obs::PhaseSpan Training("pipeline.training",
                          obs::AttrSet().add("workload", W.name()));
  TrainingArtifacts A;

  // Step 2: data collection on the unprotected code.
  ProtectedModule Unprot = protectNone();
  {
    obs::PhaseSpan Span("training.campaign");
    WorkloadHarness Harness(W, Cfg.InputLevel);
    CampaignConfig CC;
    CC.NumRuns = Cfg.TrainSamples;
    CC.HangFactor = Cfg.HangFactor;
    CC.Seed = Cfg.Seed ^ 0x7121117;
    CC.Label = "training";
    CC.Backend = Cfg.Backend;
    A.Campaign = runCampaign(Harness, *Unprot.Layout, CC);
  }

  // Instruction features (Table 1) over the unprotected module.
  {
    obs::PhaseSpan Span("training.features");
    FeatureExtractor Extractor;
    A.Features = Extractor.extractModule(*Unprot.M);
    std::vector<std::vector<double>> Raw;
    Raw.reserve(A.Features.size());
    for (const FeatureVector &FV : A.Features)
      Raw.emplace_back(FV.begin(), FV.end());
    A.Scaler.fit(Raw);
  }

  // Labeling: IPAS (SOC vs non-SOC) and Baseline (symptom vs non-symptom).
  {
    obs::PhaseSpan Span("training.labeling");
    for (const InjectionRecord &Rec : A.Campaign.Records) {
      const FeatureVector &FV = A.Features.at(Rec.InstructionId);
      std::vector<double> X =
          A.Scaler.transform(std::vector<double>(FV.begin(), FV.end()));
      A.IpasData.add(X, Rec.Result == Outcome::SOC ? 1 : -1);
      A.BaselineData.add(std::move(X), isSymptom(Rec.Result) ? 1 : -1);
    }
  }

  // Step 3: grid search ranked by F-score (Eq. 1).
  if (RunGridSearch) {
    obs::PhaseSpan Span("training.grid_search");
    GridSearchConfig GC = Cfg.Grid;
    GC.Seed = Cfg.Seed ^ 0x62d5;
    auto TruncateTopN = [&](std::vector<RankedConfig> All) {
      if (All.size() > Cfg.TopN)
        All.resize(Cfg.TopN);
      return All;
    };
    A.IpasConfigs = TruncateTopN(gridSearch(A.IpasData, GC));
    A.BaselineConfigs = TruncateTopN(gridSearch(A.BaselineData, GC));
  }

  A.TrainSeconds = Training.seconds();
  return A;
}

std::set<unsigned>
IpasPipeline::selectInstructions(Technique T, const SvmParams &P,
                                 const TrainingArtifacts &A) const {
  assert((T == Technique::Ipas || T == Technique::Baseline) &&
         "only classifier techniques select instructions");
  const Dataset &Data =
      T == Technique::Ipas ? A.IpasData : A.BaselineData;
  SvmModel Model = trainCSvc(Data, P);

  std::set<unsigned> Ids;
  for (unsigned Id = 0; Id != A.Features.size(); ++Id) {
    const FeatureVector &FV = A.Features[Id];
    int Pred = Model.predict(
        A.Scaler.transform(std::vector<double>(FV.begin(), FV.end())));
    // IPAS protects predicted SOC-generating instructions; the baseline
    // (Shoestring policy) protects predicted NON-symptom-generating ones.
    bool Protect = T == Technique::Ipas ? Pred > 0 : Pred < 0;
    if (Protect)
      Ids.insert(Id);
  }
  return Ids;
}

WorkloadEvaluation IpasPipeline::run() {
  obs::PhaseSpan Pipeline("pipeline",
                          obs::AttrSet().add("workload", W.name()));
  obs::TraceSink::event("pipeline.begin",
                        obs::AttrSet()
                            .add("workload", W.name())
                            .addHex("seed", Cfg.Seed)
                            .add("train_samples",
                                 static_cast<uint64_t>(Cfg.TrainSamples))
                            .add("eval_runs",
                                 static_cast<uint64_t>(Cfg.EvalRuns)));
  WorkloadEvaluation WE;
  WE.WorkloadName = W.name();
  {
    obs::PhaseSpan Setup("pipeline.setup");
    WE.LinesOfCode = Lexer::countCodeLines(W.source());
    ProtectedModule Unprot = protectNone();
    WE.StaticInstructions = Unprot.M->numInstructions();
  }

  WE.Training = collectAndTrain();

  obs::PhaseSpan Evaluation("pipeline.evaluation");

  // Reference variants.
  ProtectedModule Unprot = protectNone();
  CampaignResult UnprotCampaign =
      evaluate(Unprot, Cfg.Seed ^ 0xE0, 0, "unprotected");
  double UnprotSoc = UnprotCampaign.fraction(Outcome::SOC);
  double UnprotCleanSteps =
      static_cast<double>(UnprotCampaign.CleanSteps);

  auto MakeVariant = [&](std::string Label, Technique T,
                         const RankedConfig &RC, ProtectedModule PM,
                         uint64_t Seed) {
    obs::PhaseSpan Span("pipeline.variant",
                        obs::AttrSet()
                            .add("label", Label)
                            .add("technique", techniqueName(T)));
    VariantEvaluation V;
    V.Label = std::move(Label);
    V.Tech = T;
    V.Config = RC;
    V.Dup = PM.Stats;
    V.Campaign = T == Technique::Unprotected
                     ? UnprotCampaign
                     : evaluate(PM, Seed, 0, V.Label);
    V.Slowdown = static_cast<double>(V.Campaign.CleanSteps) /
                 UnprotCleanSteps;
    double Soc = V.Campaign.fraction(Outcome::SOC);
    V.SocReductionPct =
        UnprotSoc > 0.0 ? 100.0 * (UnprotSoc - Soc) / UnprotSoc : 0.0;
    Span.addAttr(obs::AttrSet()
                     .add("slowdown", V.Slowdown)
                     .add("soc_reduction_pct", V.SocReductionPct));
    if (!Cfg.RecordDir.empty())
      writeVariantRecord(W, Cfg, PM, V, WE.Training, Seed);
    if (!Cfg.ProfileDir.empty())
      writeVariantProfile(W, Cfg, *this, PM, V.Label);
    WE.Variants.push_back(std::move(V));
  };

  MakeVariant("unprotected", Technique::Unprotected, RankedConfig(),
              std::move(Unprot), 0);
  MakeVariant("full", Technique::FullDup, RankedConfig(), protectAll(),
              Cfg.Seed ^ 0xE1);

  // Classification + duplication time (Table 6) covers only the model
  // application and the transform, not the evaluation campaigns (which in
  // the paper run as separate parallel fault-injection jobs).
  auto TimedProtect = [&](Technique T, const RankedConfig &RC) {
    obs::PhaseSpan Span("pipeline.protect",
                        obs::AttrSet().add("technique", techniqueName(T)));
    std::set<unsigned> Ids = selectInstructions(T, RC.Params, WE.Training);
    ProtectedModule PM = protect(Ids);
    WE.DuplicateSeconds += Span.seconds();
    return PM;
  };
  for (unsigned K = 0; K != WE.Training.IpasConfigs.size(); ++K) {
    const RankedConfig &RC = WE.Training.IpasConfigs[K];
    MakeVariant("ipas-" + std::to_string(K + 1), Technique::Ipas, RC,
                TimedProtect(Technique::Ipas, RC), Cfg.Seed ^ (0x100 + K));
  }
  for (unsigned K = 0; K != WE.Training.BaselineConfigs.size(); ++K) {
    const RankedConfig &RC = WE.Training.BaselineConfigs[K];
    MakeVariant("baseline-" + std::to_string(K + 1), Technique::Baseline,
                RC, TimedProtect(Technique::Baseline, RC),
                Cfg.Seed ^ (0x200 + K));
  }
  obs::TraceSink::event(
      "pipeline.done",
      obs::AttrSet()
          .add("workload", WE.WorkloadName)
          .add("variants", static_cast<uint64_t>(WE.Variants.size()))
          .add("train_seconds", WE.Training.TrainSeconds)
          .add("duplicate_seconds", WE.DuplicateSeconds));
  return WE;
}

double IpasPipeline::scalabilitySlowdown(const ProtectedModule &PM,
                                         int NumRanks,
                                         int InputLevel) const {
  int Level = InputLevel ? InputLevel : Cfg.InputLevel;
  auto CleanCycles = [&](const ProtectedModule &Mod) {
    WorkloadHarness Harness(W, Level, NumRanks);
    ExecutionRecord R = Harness.execute(*Mod.Layout, nullptr, UINT64_MAX);
    assert(R.Status == RunStatus::Finished && R.OutputValid &&
           "clean parallel run failed");
    return static_cast<double>(R.CriticalPathCycles);
  };
  ProtectedModule Unprot = protectNone();
  return CleanCycles(PM) / CleanCycles(Unprot);
}
