//===- core/ResultsCache.h - On-disk cache of workload evaluations --------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Several benches (Figures 5-7, Table 4) present different views of the
/// same expensive evaluation. The cache serializes a WorkloadEvaluation
/// (aggregates only — per-injection records are dropped) keyed by the
/// pipeline configuration, so the first bench pays and the rest reuse.
/// Delete the cache directory (or set IPAS_NO_CACHE=1) to force re-runs.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_CORE_RESULTSCACHE_H
#define IPAS_CORE_RESULTSCACHE_H

#include "core/Pipeline.h"

#include <optional>
#include <string>

namespace ipas {

/// Stable hash of the evaluation-relevant configuration fields.
uint64_t pipelineConfigHash(const PipelineConfig &Cfg);

/// Serializes \p WE (aggregates only) to text.
std::string serializeEvaluation(const WorkloadEvaluation &WE);

/// Parses a serialized evaluation; nullopt on malformed input.
std::optional<WorkloadEvaluation>
deserializeEvaluation(const std::string &Text);

/// Loads a cached evaluation for (workload, config); nullopt on miss.
/// The cache directory defaults to ".ipas-cache" (override with the
/// IPAS_CACHE_DIR environment variable; disable with IPAS_NO_CACHE=1).
std::optional<WorkloadEvaluation>
loadCachedEvaluation(const std::string &WorkloadName,
                     const PipelineConfig &Cfg);

/// Stores an evaluation in the cache (best effort; failures are ignored).
void storeCachedEvaluation(const WorkloadEvaluation &WE,
                           const PipelineConfig &Cfg);

/// Convenience: load from cache or run the pipeline and store.
WorkloadEvaluation evaluateWorkloadCached(const Workload &W,
                                          const PipelineConfig &Cfg);

} // namespace ipas

#endif // IPAS_CORE_RESULTSCACHE_H
