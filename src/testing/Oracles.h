//===- testing/Oracles.h - Differential-testing oracles -------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four semantic oracles of the differential-testing subsystem. Each
/// takes MiniC source (typically from testing/ProgramGen.h, which makes it
/// UB-free by construction) and decides whether one layer of the pipeline
/// preserved its semantics:
///
///  - O1 round-trip: print(parse(Source)) is a printer/parser fixpoint and
///    compiles to a module with the same behavior as Source itself.
///  - O2 optimizer: ConstantFold + DCE + CFG cleanup preserve the
///    interpreted result bit for bit.
///  - O3 protection: a Duplication-protected module is observationally
///    identical under fault-free execution — same status, same return
///    value, and no spuriously firing `soc.check` (paper §4.3).
///  - O4 static acceptance: the verifier accepts every transformed module
///    and ipas-lint R1-R5 accept the protected one.
///  - O5 backend differential: the threaded-code bytecode VM (vm/VM.h)
///    reproduces the interpreter exactly — status, trap kind, return
///    bits, step and value-step counts — on both the plain and the
///    duplication-protected build, clean and under derived fault plans.
///    A program the VM compiler refuses is a *failure* (silent fallback
///    would shrink coverage invisibly).
///
/// Outputs are compared bitwise (RtValue::Bits), so NaN payloads and
/// signed zeros count — the strictest notion of "same result" the
/// interpreter can express.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_TESTING_ORACLES_H
#define IPAS_TESTING_ORACLES_H

#include "ir/Module.h"

#include <string>

namespace ipas {
namespace testing {

enum class OracleKind : uint8_t {
  RoundTrip, ///< O1
  Optimizer, ///< O2
  Protection,///< O3
  Lint,      ///< O4
  Backend,   ///< O5
};

constexpr unsigned NumOracles = 5;

/// Stable short name ("O1-roundtrip", ...) used by the CLI and reports.
const char *oracleName(OracleKind K);

/// Parses an oracle selector: "O1".."O5", a full name, a bare suffix
/// ("backend", "optimizer", ...), or "all" (returns false and leaves
/// \p K untouched for "all"/unknown; \p IsAll reports which).
bool parseOracleName(const std::string &Name, OracleKind &K, bool &IsAll);

struct OracleOptions {
  /// Step budget per interpreter run. Generated programs are bounded by
  /// construction; this is a backstop, not a tuning knob.
  uint64_t MaxSteps = 20000000;
  /// Deliberately miscompile the optimized module in O2 (operand swap on
  /// the first integer subtraction). Used by the shrinker self-test and
  /// `ipas-fuzz --inject-miscompile` to prove the harness can see and
  /// minimize a real bug.
  bool InjectMiscompile = false;
  /// Deliberately corrupt the compiled bytecode in O5 (operand swap on
  /// the first non-commutative arithmetic op, see vm::injectSelftestBug).
  /// Used by `ipas-fuzz --inject-vm-bug` and the O5 shrinker self-test.
  bool InjectVmBug = false;
};

struct OracleResult {
  bool Passed = true;
  /// The input failed to compile or verify *before* any transform under
  /// test ran. Generated programs never hit this; shrinker mutants can,
  /// and the shrinker must not count it as reproducing a failure.
  bool InvalidProgram = false;
  std::string Detail; ///< Human-readable failure description.
};

/// Runs one oracle against \p Source.
OracleResult runOracle(OracleKind K, const std::string &Source,
                       const OracleOptions &Opts = {});

/// Runs all five oracles, stopping at the first failure.
OracleResult runAllOracles(const std::string &Source,
                           const OracleOptions &Opts = {});

/// Swaps the operands of the first integer `sub` whose operands differ —
/// a canned miscompilation (a - b becomes b - a) for harness self-tests.
/// Returns false if the module has no such instruction.
bool injectSubSwapMiscompile(Module &M);

} // namespace testing
} // namespace ipas

#endif // IPAS_TESTING_ORACLES_H
