//===- testing/Fuzzer.h - Differential fuzzing campaign driver ------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the subsystem together: generate N programs from a base seed, run
/// the selected oracles on each, shrink any failure, and report. Both the
/// `ipas-fuzz` CLI and the ctest smoke suite sit on top of this driver.
///
/// Determinism contract: program K of a campaign is generated from
/// programSeed(BaseSeed, K) only — no global state, no wall clock — so a
/// campaign report is byte-identical across runs and any failing program
/// can be regenerated from (BaseSeed, K) alone.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_TESTING_FUZZER_H
#define IPAS_TESTING_FUZZER_H

#include "testing/Oracles.h"
#include "testing/ProgramGen.h"
#include "testing/Shrinker.h"

#include <vector>

namespace ipas {
namespace testing {

/// Derives the per-program generator seed. Splitmix-style mixing keeps
/// neighboring campaign indices uncorrelated.
uint64_t programSeed(uint64_t BaseSeed, uint64_t Index);

struct FuzzConfig {
  uint64_t Seed = 1;        ///< Campaign base seed.
  uint64_t Count = 200;     ///< Programs to generate.
  bool RunAll = true;       ///< All four oracles (ignore Oracle below).
  OracleKind Oracle = OracleKind::RoundTrip; ///< When RunAll is false.
  bool Shrink = true;       ///< Minimize failures before reporting.
  OracleOptions Oracles;    ///< Step budget / miscompile injection.
  GenConfig Gen;            ///< Program-shape knobs (Seed overridden).
};

struct FuzzFailure {
  uint64_t Index = 0;       ///< Campaign index of the failing program.
  uint64_t Seed = 0;        ///< programSeed(BaseSeed, Index).
  OracleKind Oracle = OracleKind::RoundTrip;
  std::string Detail;       ///< Oracle failure description.
  std::string Source;       ///< The failing program as generated.
  std::string Shrunk;       ///< Minimized repro (== Source if !Shrink).
  ShrinkResult ShrinkInfo;
};

struct FuzzReport {
  uint64_t ProgramsRun = 0;
  uint64_t OraclesRun = 0;  ///< Total (program, oracle) evaluations.
  std::vector<FuzzFailure> Failures;
  bool allPassed() const { return Failures.empty(); }
};

/// Runs the campaign. Failures carry everything needed to reproduce and
/// report; the caller decides how to surface them (CLI, gtest, ...).
FuzzReport runFuzzCampaign(const FuzzConfig &Cfg);

} // namespace testing
} // namespace ipas

#endif // IPAS_TESTING_FUZZER_H
