//===- testing/Shrinker.h - Delta-debugging program minimizer -------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimizes a failing MiniC program before it is reported. Classic
/// delta debugging at the AST level: repeatedly try structure-removing
/// mutations (drop a statement, unwrap a loop or if body, drop a helper
/// function, replace a subexpression with a leaf) and keep any mutant on
/// which the failing oracle still fails, until a full sweep produces no
/// further progress.
///
/// Mutating the AST rather than source lines keeps nearly every candidate
/// syntactically valid; candidates that nevertheless fail to compile (a
/// dropped declaration, say) report OracleResult::InvalidProgram and are
/// rejected, never mistaken for a reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_TESTING_SHRINKER_H
#define IPAS_TESTING_SHRINKER_H

#include "testing/Oracles.h"

#include <string>

namespace ipas {
namespace testing {

struct ShrinkResult {
  std::string Source;     ///< Minimized program (canonical print).
  size_t OriginalLines = 0;
  size_t FinalLines = 0;
  unsigned Attempts = 0;  ///< Candidate mutants evaluated.
  unsigned Accepted = 0;  ///< Mutants that kept the failure.
};

/// Shrinks \p Source with respect to oracle \p K: the result is the
/// smallest program found on which the oracle still fails (with
/// InvalidProgram excluded). \p Source itself must fail the oracle;
/// otherwise it is returned unchanged.
ShrinkResult shrinkFailure(const std::string &Source, OracleKind K,
                           const OracleOptions &Opts = {});

} // namespace testing
} // namespace ipas

#endif // IPAS_TESTING_SHRINKER_H
