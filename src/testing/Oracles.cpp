//===- testing/Oracles.cpp -----------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "testing/Oracles.h"

#include "analysis/ProtectionLint.h"
#include "frontend/CodeGen.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "testing/ProgramGen.h"
#include "testing/SourcePrinter.h"
#include "transform/ConstantFold.h"
#include "transform/DCE.h"
#include "transform/Duplication.h"
#include "transform/Mem2Reg.h"
#include "transform/SimplifyCFG.h"
#include "vm/VM.h"

#include <sstream>

using namespace ipas;
using namespace ipas::testing;

namespace {

/// Entry arguments each oracle executes under. Two fixed pairs: one
/// small/positive, one mixed-sign, so argument-dependent paths get some
/// exercise while runs stay deterministic.
const int64_t ArgSets[][2] = {{3, 5}, {250, -9}};
constexpr size_t NumArgSets = sizeof(ArgSets) / sizeof(ArgSets[0]);

/// Compiles Source through the standard frontend pipeline (parse,
/// codegen, unreachable-block cleanup, mem2reg, renumber, verify).
/// On any error returns null and fills \p Error.
std::unique_ptr<Module> compilePipeline(const std::string &Source,
                                        std::string &Error) {
  Diagnostics Diags;
  std::unique_ptr<Module> M = compileMiniC(Source, "fuzz", Diags);
  if (!M || Diags.hasErrors()) {
    Error = "compile failed: " + Diags.summary();
    return nullptr;
  }
  removeUnreachableBlocks(*M);
  promoteAllocasToRegisters(*M);
  M->renumber();
  std::vector<std::string> Errs = verifyModule(*M);
  if (!Errs.empty()) {
    Error = "verifier rejected frontend output: " + Errs.front();
    return nullptr;
  }
  return M;
}

struct RunOutcome {
  RunStatus Status = RunStatus::Finished;
  TrapKind Trap = TrapKind::None;
  uint64_t Bits = 0; ///< Raw return-value bits.
};

bool runEntry(const Module &M, int64_t A, int64_t B, uint64_t MaxSteps,
              RunOutcome &Out, std::string &Error) {
  const Function *F = M.getFunction(GenEntryName);
  if (!F) {
    Error = std::string("no entry function '") + GenEntryName + "'";
    return false;
  }
  ModuleLayout Layout(M);
  ExecutionContext Ctx(Layout);
  Ctx.start(F, {RtValue::fromI64(A), RtValue::fromI64(B)});
  Out.Status = Ctx.run(MaxSteps);
  Out.Trap = Ctx.trap();
  Out.Bits = Ctx.returnValue().Bits;
  return true;
}

std::string describeOutcome(const RunOutcome &O) {
  std::ostringstream S;
  S << runStatusName(O.Status);
  if (O.Status == RunStatus::Trapped)
    S << "(" << trapKindName(O.Trap) << ")";
  if (O.Status == RunStatus::Finished)
    S << " value=0x" << std::hex << O.Bits;
  return S.str();
}

/// Runs the entry of \p Base and \p Variant under every argument set and
/// demands identical status and bit-identical return values.
OracleResult compareModules(const Module &Base, const Module &Variant,
                            const char *VariantName, uint64_t MaxSteps) {
  OracleResult R;
  for (size_t I = 0; I != NumArgSets; ++I) {
    RunOutcome OB, OV;
    std::string Error;
    if (!runEntry(Base, ArgSets[I][0], ArgSets[I][1], MaxSteps, OB, Error)) {
      R.Passed = false;
      R.InvalidProgram = true;
      R.Detail = Error;
      return R;
    }
    if (OB.Status != RunStatus::Finished) {
      // The generator promises bounded, trap-free programs; a baseline
      // that does not finish is itself a bug worth minimizing.
      R.Passed = false;
      R.Detail = "baseline run did not finish: " + describeOutcome(OB);
      return R;
    }
    if (!runEntry(Variant, ArgSets[I][0], ArgSets[I][1], MaxSteps, OV,
                  Error)) {
      R.Passed = false;
      R.Detail = Error;
      return R;
    }
    if (OV.Status != OB.Status || OV.Bits != OB.Bits) {
      std::ostringstream S;
      S << VariantName << " diverges on run(" << ArgSets[I][0] << ", "
        << ArgSets[I][1] << "): baseline " << describeOutcome(OB) << ", "
        << VariantName << " " << describeOutcome(OV);
      R.Passed = false;
      R.Detail = S.str();
      return R;
    }
  }
  return R;
}

std::unique_ptr<TranslationUnit> parseOnly(const std::string &Source,
                                           std::string &Error) {
  Diagnostics Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.tokens(), Diags);
  std::unique_ptr<TranslationUnit> TU = P.parseTranslationUnit();
  if (!TU || Diags.hasErrors()) {
    Error = "parse failed: " + Diags.summary();
    return nullptr;
  }
  return TU;
}

//===----------------------------------------------------------------------===//
// O1: printer/parser round trip
//===----------------------------------------------------------------------===//

OracleResult oracleRoundTrip(const std::string &Source,
                             const OracleOptions &Opts) {
  OracleResult R;
  std::string Error;
  std::unique_ptr<TranslationUnit> TU = parseOnly(Source, Error);
  if (!TU) {
    R.Passed = false;
    R.InvalidProgram = true;
    R.Detail = Error;
    return R;
  }
  std::string Printed = printTranslationUnit(*TU);

  // Byte fixpoint: the canonical form must reprint to itself.
  std::unique_ptr<TranslationUnit> TU2 = parseOnly(Printed, Error);
  if (!TU2) {
    R.Passed = false;
    R.Detail = "printed source does not re-parse: " + Error;
    return R;
  }
  std::string Printed2 = printTranslationUnit(*TU2);
  if (Printed2 != Printed) {
    R.Passed = false;
    R.Detail = "printer/parser fixpoint violated: print(parse(print(AST))) "
               "differs from print(AST)";
    return R;
  }

  // Behavioral equality: the original text and its printed form must
  // compile to modules with identical interpreted behavior.
  std::unique_ptr<Module> MBase = compilePipeline(Source, Error);
  if (!MBase) {
    R.Passed = false;
    R.InvalidProgram = true;
    R.Detail = Error;
    return R;
  }
  std::unique_ptr<Module> MPrinted = compilePipeline(Printed, Error);
  if (!MPrinted) {
    R.Passed = false;
    R.Detail = "printed source fails to compile: " + Error;
    return R;
  }
  return compareModules(*MBase, *MPrinted, "reprinted program",
                        Opts.MaxSteps);
}

//===----------------------------------------------------------------------===//
// O2: optimizer soundness
//===----------------------------------------------------------------------===//

OracleResult oracleOptimizer(const std::string &Source,
                             const OracleOptions &Opts) {
  OracleResult R;
  std::string Error;
  std::unique_ptr<Module> MBase = compilePipeline(Source, Error);
  if (!MBase) {
    R.Passed = false;
    R.InvalidProgram = true;
    R.Detail = Error;
    return R;
  }
  std::unique_ptr<Module> MOpt = compilePipeline(Source, Error);
  if (!MOpt) {
    R.Passed = false;
    R.InvalidProgram = true;
    R.Detail = Error;
    return R;
  }
  foldConstants(*MOpt);
  eliminateDeadCode(*MOpt);
  removeUnreachableBlocks(*MOpt);
  if (Opts.InjectMiscompile)
    injectSubSwapMiscompile(*MOpt);
  MOpt->renumber();
  std::vector<std::string> Errs = verifyModule(*MOpt);
  if (!Errs.empty()) {
    R.Passed = false;
    R.Detail = "verifier rejected optimized module: " + Errs.front();
    return R;
  }
  return compareModules(*MBase, *MOpt, "optimized program", Opts.MaxSteps);
}

//===----------------------------------------------------------------------===//
// O3: protection transparency (paper §4.3)
//===----------------------------------------------------------------------===//

OracleResult oracleProtection(const std::string &Source,
                              const OracleOptions &Opts) {
  OracleResult R;
  std::string Error;
  std::unique_ptr<Module> MBase = compilePipeline(Source, Error);
  if (!MBase) {
    R.Passed = false;
    R.InvalidProgram = true;
    R.Detail = Error;
    return R;
  }
  std::unique_ptr<Module> MProt = compilePipeline(Source, Error);
  if (!MProt) {
    R.Passed = false;
    R.InvalidProgram = true;
    R.Detail = Error;
    return R;
  }
  duplicateAllInstructions(*MProt);
  MProt->renumber();
  std::vector<std::string> Errs = verifyModule(*MProt);
  if (!Errs.empty()) {
    R.Passed = false;
    R.Detail = "verifier rejected protected module: " + Errs.front();
    return R;
  }
  // Fault-free execution must finish with the same value; a Detected
  // status here is a spuriously firing soc.check, the exact failure the
  // paper's transparency invariant forbids. Duplication roughly triples
  // dynamic steps, so the budget scales accordingly.
  OracleResult C = compareModules(*MBase, *MProt, "protected program",
                                  4 * Opts.MaxSteps);
  if (!C.Passed && C.Detail.find("Detected") != std::string::npos)
    C.Detail += " [a duplication check fired under fault-free execution]";
  return C;
}

//===----------------------------------------------------------------------===//
// O4: verifier + ipas-lint acceptance
//===----------------------------------------------------------------------===//

OracleResult oracleLint(const std::string &Source, const OracleOptions &) {
  OracleResult R;
  std::string Error;
  std::unique_ptr<Module> M = compilePipeline(Source, Error);
  if (!M) {
    R.Passed = false;
    R.InvalidProgram = true;
    R.Detail = Error;
    return R;
  }
  foldConstants(*M);
  eliminateDeadCode(*M);
  removeUnreachableBlocks(*M);
  M->renumber();
  std::vector<std::string> Errs = verifyModule(*M);
  if (!Errs.empty()) {
    R.Passed = false;
    R.Detail = "verifier rejected optimized module: " + Errs.front();
    return R;
  }
  duplicateAllInstructions(*M);
  M->renumber();
  Errs = verifyModule(*M);
  if (!Errs.empty()) {
    R.Passed = false;
    R.Detail = "verifier rejected protected module: " + Errs.front();
    return R;
  }
  LintOptions LO;
  LO.ExpectFullDuplication = true;
  std::vector<LintViolation> Violations = lintProtectedModule(*M, LO);
  if (!Violations.empty()) {
    R.Passed = false;
    R.Detail = "ipas-lint rejected protected module: " +
               Violations.front().toString();
    return R;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// O5: backend differential (interpreter vs bytecode VM)
//===----------------------------------------------------------------------===//

/// Everything the two backends promise to agree on, for one run.
struct BackendOutcome {
  RunStatus Status = RunStatus::Finished;
  TrapKind Trap = TrapKind::None;
  uint64_t Bits = 0;
  uint64_t Steps = 0;
  uint64_t ValueSteps = 0;
  bool FaultInjected = false;
  unsigned FaultedId = 0;
};

BackendOutcome runInterpFull(const ModuleLayout &Layout, const Function *F,
                             int64_t A, int64_t B, const FaultPlan *Plan,
                             uint64_t MaxSteps) {
  ExecutionContext Ctx(Layout);
  if (Plan)
    Ctx.setFaultPlan(*Plan);
  Ctx.start(F, {RtValue::fromI64(A), RtValue::fromI64(B)});
  BackendOutcome O;
  O.Status = Ctx.run(MaxSteps);
  O.Trap = Ctx.trap();
  O.Bits = Ctx.returnValue().Bits;
  O.Steps = Ctx.steps();
  O.ValueSteps = Ctx.valueSteps();
  O.FaultInjected = Ctx.faultWasInjected();
  O.FaultedId = Ctx.faultedInstructionId();
  return O;
}

BackendOutcome runVmFull(vm::VmContext &Ctx, uint32_t EntryIdx, int64_t A,
                         int64_t B, const FaultPlan *Plan,
                         uint64_t MaxSteps) {
  vm::VmContext::Result V = Ctx.run(
      EntryIdx, {RtValue::fromI64(A), RtValue::fromI64(B)}, Plan, MaxSteps);
  BackendOutcome O;
  O.Status = V.Status;
  O.Trap = V.Trap;
  O.Bits = V.ReturnValue.Bits;
  O.Steps = V.Steps;
  O.ValueSteps = V.ValueSteps;
  O.FaultInjected = V.FaultInjected;
  O.FaultedId = V.FaultedInstructionId;
  return O;
}

bool sameBackendOutcome(const BackendOutcome &A, const BackendOutcome &B) {
  if (A.Status != B.Status || A.Trap != B.Trap || A.Steps != B.Steps ||
      A.ValueSteps != B.ValueSteps || A.FaultInjected != B.FaultInjected ||
      A.FaultedId != B.FaultedId)
    return false;
  // Return bits are only defined for runs that finished.
  return A.Status != RunStatus::Finished || A.Bits == B.Bits;
}

std::string describeBackendOutcome(const BackendOutcome &O) {
  std::ostringstream S;
  S << runStatusName(O.Status);
  if (O.Status == RunStatus::Trapped)
    S << "(" << trapKindName(O.Trap) << ")";
  if (O.Status == RunStatus::Finished)
    S << " value=0x" << std::hex << O.Bits << std::dec;
  S << " steps=" << O.Steps << " vsteps=" << O.ValueSteps;
  if (O.FaultInjected)
    S << " faulted=" << O.FaultedId;
  return S.str();
}

OracleResult oracleBackend(const std::string &Source,
                           const OracleOptions &Opts) {
  OracleResult R;
  std::string Error;
  // Two builds: the plain mem2reg'd module, and a fully duplicated one
  // (exercises soc.check, the tripled value-step stream, and the
  // protected phi graph on the VM's staging registers).
  std::unique_ptr<Module> MPlain = compilePipeline(Source, Error);
  if (!MPlain) {
    R.Passed = false;
    R.InvalidProgram = true;
    R.Detail = Error;
    return R;
  }
  std::unique_ptr<Module> MProt = compilePipeline(Source, Error);
  if (!MProt) {
    R.Passed = false;
    R.InvalidProgram = true;
    R.Detail = Error;
    return R;
  }
  duplicateAllInstructions(*MProt);
  MProt->renumber();

  const uint64_t Budget = 4 * Opts.MaxSteps; // covers the protected build
  const struct {
    const Module *M;
    const char *Name;
  } Variants[] = {{MPlain.get(), "plain"}, {MProt.get(), "protected"}};

  for (const auto &V : Variants) {
    const Function *F = V.M->getFunction(GenEntryName);
    if (!F) {
      R.Passed = false;
      R.InvalidProgram = true;
      R.Detail = std::string("no entry function '") + GenEntryName + "'";
      return R;
    }
    ModuleLayout Layout(*V.M);
    std::unique_ptr<vm::VmProgram> Prog = vm::compile(Layout, &Error);
    if (!Prog) {
      // A compile refusal is a finding, not a fallback: the harness
      // would silently stop covering this program shape.
      R.Passed = false;
      R.Detail = std::string("vm compiler refused the ") + V.Name +
                 " module: " + Error;
      return R;
    }
    if (Opts.InjectVmBug)
      vm::injectSelftestBug(*Prog);
    uint32_t EntryIdx = Prog->indexOf(GenEntryName);
    vm::VmContext VCtx(*Prog);

    for (size_t I = 0; I != NumArgSets; ++I) {
      const int64_t A = ArgSets[I][0], B = ArgSets[I][1];
      auto Diverge = [&](const char *RunDesc, const BackendOutcome &OI,
                         const BackendOutcome &OV) {
        std::ostringstream S;
        S << "vm diverges on " << V.Name << " run(" << A << ", " << B
          << ") " << RunDesc << ": interp " << describeBackendOutcome(OI)
          << ", vm " << describeBackendOutcome(OV);
        R.Passed = false;
        R.Detail = S.str();
      };

      BackendOutcome OI =
          runInterpFull(Layout, F, A, B, nullptr, Budget);
      BackendOutcome OV = runVmFull(VCtx, EntryIdx, A, B, nullptr, Budget);
      if (!sameBackendOutcome(OI, OV)) {
        Diverge("clean", OI, OV);
        return R;
      }

      // Fault parity: plans derived from the clean value-step count hit
      // a low-bit flip mid-run and a high-bit flip late — enough to
      // drive the fault machinery down both backends' commit paths.
      if (OI.Status != RunStatus::Finished || OI.ValueSteps < 3)
        continue;
      const struct {
        uint64_t Step;
        uint64_t Bit;
      } PlanSpecs[] = {{OI.ValueSteps / 3, 52}, {(2 * OI.ValueSteps) / 3, 1}};
      for (const auto &PS : PlanSpecs) {
        FaultPlan Plan;
        Plan.TargetValueStep = PS.Step;
        Plan.BitDraw = PS.Bit;
        BackendOutcome FI = runInterpFull(Layout, F, A, B, &Plan, Budget);
        BackendOutcome FV = runVmFull(VCtx, EntryIdx, A, B, &Plan, Budget);
        if (!sameBackendOutcome(FI, FV)) {
          std::ostringstream RD;
          RD << "fault(step=" << PS.Step << ", bit=" << PS.Bit << ")";
          Diverge(RD.str().c_str(), FI, FV);
          return R;
        }
      }
    }
  }
  return R;
}

} // namespace

const char *ipas::testing::oracleName(OracleKind K) {
  switch (K) {
  case OracleKind::RoundTrip:
    return "O1-roundtrip";
  case OracleKind::Optimizer:
    return "O2-optimizer";
  case OracleKind::Protection:
    return "O3-protection";
  case OracleKind::Lint:
    return "O4-lint";
  case OracleKind::Backend:
    return "O5-backend";
  }
  return "<bad oracle>";
}

bool ipas::testing::parseOracleName(const std::string &Name, OracleKind &K,
                                    bool &IsAll) {
  IsAll = false;
  if (Name == "all") {
    IsAll = true;
    return false;
  }
  static const OracleKind All[] = {
      OracleKind::RoundTrip, OracleKind::Optimizer, OracleKind::Protection,
      OracleKind::Lint, OracleKind::Backend};
  for (OracleKind O : All) {
    std::string Full = oracleName(O);
    // "O5-backend" matches in full, as "O5", or as bare "backend".
    if (Name == Full || Name == Full.substr(0, 2) ||
        Name == Full.substr(3)) {
      K = O;
      return true;
    }
  }
  return false;
}

OracleResult ipas::testing::runOracle(OracleKind K, const std::string &Source,
                                      const OracleOptions &Opts) {
  switch (K) {
  case OracleKind::RoundTrip:
    return oracleRoundTrip(Source, Opts);
  case OracleKind::Optimizer:
    return oracleOptimizer(Source, Opts);
  case OracleKind::Protection:
    return oracleProtection(Source, Opts);
  case OracleKind::Lint:
    return oracleLint(Source, Opts);
  case OracleKind::Backend:
    return oracleBackend(Source, Opts);
  }
  OracleResult R;
  R.Passed = false;
  R.Detail = "unknown oracle";
  return R;
}

OracleResult ipas::testing::runAllOracles(const std::string &Source,
                                          const OracleOptions &Opts) {
  static const OracleKind All[] = {
      OracleKind::RoundTrip, OracleKind::Optimizer, OracleKind::Protection,
      OracleKind::Lint, OracleKind::Backend};
  for (OracleKind K : All) {
    OracleResult R = runOracle(K, Source, Opts);
    if (!R.Passed) {
      R.Detail = std::string(oracleName(K)) + ": " + R.Detail;
      return R;
    }
  }
  return OracleResult{};
}

bool ipas::testing::injectSubSwapMiscompile(Module &M) {
  for (Function *F : M)
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB) {
        if (I->opcode() != Opcode::Sub)
          continue;
        Value *L = I->operand(0);
        Value *R = I->operand(1);
        if (L == R)
          continue; // a - a swaps to itself; keep looking
        I->setOperand(0, R);
        I->setOperand(1, L);
        return true;
      }
  return false;
}
