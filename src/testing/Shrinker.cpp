//===- testing/Shrinker.cpp ----------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "testing/Shrinker.h"

#include "frontend/Parser.h"
#include "testing/ProgramGen.h"
#include "testing/SourcePrinter.h"

#include <limits>

using namespace ipas;
using namespace ipas::testing;

namespace {

std::unique_ptr<TranslationUnit> parseSource(const std::string &Source) {
  Diagnostics Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.tokens(), Diags);
  std::unique_ptr<TranslationUnit> TU = P.parseTranslationUnit();
  if (!TU || Diags.hasErrors())
    return nullptr;
  return TU;
}

/// Coarse failure classification. A mutant only counts as reproducing the
/// original failure when its category matches; without this, shrinking an
/// optimizer divergence could wander into a program that merely traps at
/// baseline (e.g. a guarded divisor reduced to its unguarded half) and
/// "minimize" the wrong bug.
enum class FailCat : uint8_t {
  Divergence,
  NoFinish,
  Verifier,
  Lint,
  RoundTrip,
  Other,
};

FailCat categorize(const OracleResult &R) {
  if (R.Detail.find("diverges") != std::string::npos)
    return FailCat::Divergence;
  if (R.Detail.find("did not finish") != std::string::npos)
    return FailCat::NoFinish;
  if (R.Detail.find("ipas-lint") != std::string::npos)
    return FailCat::Lint;
  if (R.Detail.find("verifier") != std::string::npos)
    return FailCat::Verifier;
  if (R.Detail.find("fixpoint") != std::string::npos ||
      R.Detail.find("re-parse") != std::string::npos ||
      R.Detail.find("printed source") != std::string::npos)
    return FailCat::RoundTrip;
  return FailCat::Other;
}

/// Enumerates and applies structural mutations over an AST. Visiting
/// order is deterministic, so slot N denotes the same mutation on every
/// walk of the same tree. In counting mode (no target) nothing is
/// mutated; in apply mode the walk stops at the target slot.
class MutationWalker {
public:
  explicit MutationWalker(
      unsigned Target = std::numeric_limits<unsigned>::max())
      : Target(Target) {}

  bool applied() const { return Applied; }
  unsigned count() const { return Counter; }

  void walkTU(TranslationUnit &TU) {
    // Drop droppable (non-entry) functions whole.
    for (size_t I = 0; I != TU.Functions.size(); ++I) {
      if (Applied)
        return;
      if (TU.Functions[I]->Name != GenEntryName && at()) {
        TU.Functions.erase(TU.Functions.begin() + I);
        return;
      }
    }
    for (auto &F : TU.Functions) {
      if (Applied)
        return;
      walkStmts(F->Body->Stmts);
    }
  }

private:
  bool at() {
    if (Counter++ == Target) {
      Applied = true;
      return true;
    }
    return false;
  }

  void walkBody(StmtPtr &Body) {
    if (!Body || Applied)
      return;
    if (Body->Kind == StmtKind::Block)
      walkStmts(static_cast<BlockStmt *>(Body.get())->Stmts);
    else
      walkOwnExprs(*Body);
  }

  /// Replaces the statement slot with the statement's own body.
  void hoistBody(StmtPtr &Slot, StmtPtr &Body) {
    StmtPtr Tmp = std::move(Body);
    Slot = std::move(Tmp);
  }

  void walkStmts(std::vector<StmtPtr> &Stmts) {
    for (size_t I = 0; I < Stmts.size(); ++I) {
      if (Applied)
        return;
      if (at()) {
        Stmts.erase(Stmts.begin() + I);
        return;
      }
      Stmt &S = *Stmts[I];
      switch (S.Kind) {
      case StmtKind::Block:
        walkStmts(static_cast<BlockStmt &>(S).Stmts);
        break;
      case StmtKind::If: {
        auto &If = static_cast<IfStmt &>(S);
        if (at()) {
          hoistBody(Stmts[I], If.Then);
          return;
        }
        if (If.Else && at()) {
          hoistBody(Stmts[I], If.Else);
          return;
        }
        walkExpr(If.Cond);
        walkBody(If.Then);
        walkBody(If.Else);
        break;
      }
      case StmtKind::For: {
        auto &For = static_cast<ForStmt &>(S);
        if (at()) {
          hoistBody(Stmts[I], For.Body);
          return;
        }
        // Init/Cond/Inc are deliberately off limits: the generator's loop
        // headers are what bound execution, and a mutated header could
        // turn a miscompile repro into a nonterminating one.
        walkBody(For.Body);
        break;
      }
      case StmtKind::While: {
        auto &W = static_cast<WhileStmt &>(S);
        if (at()) {
          hoistBody(Stmts[I], W.Body);
          return;
        }
        walkBody(W.Body);
        break;
      }
      default:
        walkOwnExprs(S);
        break;
      }
    }
  }

  void walkOwnExprs(Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Decl: {
      auto &D = static_cast<DeclStmt &>(S);
      if (D.Init)
        walkExpr(D.Init);
      return;
    }
    case StmtKind::Expr:
      walkExpr(static_cast<ExprStmt &>(S).E);
      return;
    case StmtKind::Return: {
      auto &R = static_cast<ReturnStmt &>(S);
      if (R.Value)
        walkExpr(R.Value);
      return;
    }
    default:
      return;
    }
  }

  void replaceWith(ExprPtr &Slot, ExprPtr &Child) {
    ExprPtr Tmp = std::move(Child);
    Slot = std::move(Tmp);
  }

  void walkExpr(ExprPtr &E) {
    if (Applied)
      return;
    switch (E->Kind) {
    case ExprKind::Binary: {
      auto *B = static_cast<BinaryExpr *>(E.get());
      if (at()) {
        replaceWith(E, B->LHS);
        return;
      }
      if (at()) {
        replaceWith(E, B->RHS);
        return;
      }
      walkExpr(B->LHS);
      walkExpr(B->RHS);
      return;
    }
    case ExprKind::Unary: {
      auto *U = static_cast<UnaryExpr *>(E.get());
      if (at()) {
        replaceWith(E, U->Sub);
        return;
      }
      walkExpr(U->Sub);
      return;
    }
    case ExprKind::Cast: {
      auto *C = static_cast<CastExpr *>(E.get());
      if (at()) {
        replaceWith(E, C->Sub);
        return;
      }
      walkExpr(C->Sub);
      return;
    }
    case ExprKind::Call: {
      auto *C = static_cast<CallExpr *>(E.get());
      for (ExprPtr &A : C->Args) {
        if (at()) {
          replaceWith(E, A);
          return;
        }
      }
      for (ExprPtr &A : C->Args) {
        if (Applied)
          return;
        walkExpr(A);
      }
      return;
    }
    case ExprKind::Index:
      // Keep the base (it must stay an array lvalue); shrink the index.
      walkExpr(static_cast<IndexExpr *>(E.get())->Index);
      return;
    case ExprKind::Assign: {
      auto *A = static_cast<AssignExpr *>(E.get());
      if (at()) {
        replaceWith(E, A->Value);
        return;
      }
      walkExpr(A->Value);
      return;
    }
    case ExprKind::VarRef:
      // Zeroing a use lets the defining declaration die in a later sweep.
      if (at())
        E = std::make_unique<IntLitExpr>(0, SourceLoc{0, 0});
      return;
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
      return; // never reduces the line count
    }
  }

  unsigned Target;
  unsigned Counter = 0;
  bool Applied = false;
};

/// Applies mutation \p Index to a fresh parse of \p Source; empty string
/// when the index is out of range (walk exhausted without applying).
std::string mutate(const std::string &Source, unsigned Index) {
  std::unique_ptr<TranslationUnit> TU = parseSource(Source);
  if (!TU)
    return std::string();
  MutationWalker W(Index);
  W.walkTU(*TU);
  if (!W.applied())
    return std::string();
  return printTranslationUnit(*TU);
}

unsigned countMutations(const std::string &Source) {
  std::unique_ptr<TranslationUnit> TU = parseSource(Source);
  if (!TU)
    return 0;
  MutationWalker W;
  W.walkTU(*TU);
  return W.count();
}

} // namespace

ShrinkResult ipas::testing::shrinkFailure(const std::string &Source,
                                          OracleKind K,
                                          const OracleOptions &Opts) {
  ShrinkResult SR;
  SR.Source = Source;
  SR.OriginalLines = countLines(Source);
  SR.FinalLines = SR.OriginalLines;

  // Canonicalize first so the line metric and mutation enumeration work
  // on printer output; keep the raw source if canonicalization changes
  // the verdict (it should not for generated programs).
  std::string Best = Source;
  if (std::unique_ptr<TranslationUnit> TU = parseSource(Source))
    Best = printTranslationUnit(*TU);

  OracleResult Baseline = runOracle(K, Best, Opts);
  if (Baseline.Passed || Baseline.InvalidProgram)
    return SR; // nothing to shrink against
  FailCat Cat = categorize(Baseline);

  bool Progress = true;
  while (Progress) {
    Progress = false;
    unsigned N = countMutations(Best);
    for (unsigned I = 0; I != N; ++I) {
      std::string Cand = mutate(Best, I);
      if (Cand.empty() || Cand == Best)
        continue;
      ++SR.Attempts;
      OracleResult R = runOracle(K, Cand, Opts);
      if (!R.Passed && !R.InvalidProgram && categorize(R) == Cat) {
        Best = std::move(Cand);
        ++SR.Accepted;
        Progress = true;
        break; // re-enumerate against the smaller program
      }
    }
  }

  SR.Source = Best;
  SR.FinalLines = countLines(Best);
  return SR;
}
