//===- testing/ProgramGen.cpp --------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "testing/ProgramGen.h"

#include "testing/SourcePrinter.h"
#include "support/Random.h"

#include <cassert>

using namespace ipas;
using namespace ipas::testing;

namespace {

SourceLoc noLoc() { return SourceLoc{0, 0}; }

//===----------------------------------------------------------------------===//
// AST construction shorthand
//===----------------------------------------------------------------------===//

ExprPtr intLit(int64_t V) {
  assert(V >= 0 && "negative literals are spelled with unary minus");
  return std::make_unique<IntLitExpr>(V, noLoc());
}

ExprPtr floatLit(double V) {
  return std::make_unique<FloatLitExpr>(V, noLoc());
}

ExprPtr varRef(const std::string &Name) {
  return std::make_unique<VarRefExpr>(Name, noLoc());
}

ExprPtr binary(TokenKind Op, ExprPtr L, ExprPtr R) {
  return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R),
                                      noLoc());
}

ExprPtr unary(TokenKind Op, ExprPtr S) {
  return std::make_unique<UnaryExpr>(Op, std::move(S), noLoc());
}

ExprPtr call(const char *Callee, std::vector<ExprPtr> Args) {
  return std::make_unique<CallExpr>(Callee, std::move(Args), noLoc());
}

ExprPtr call1(const char *Callee, ExprPtr A) {
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(A));
  return call(Callee, std::move(Args));
}

ExprPtr call2(const char *Callee, ExprPtr A, ExprPtr B) {
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(A));
  Args.push_back(std::move(B));
  return call(Callee, std::move(Args));
}

ExprPtr index(const std::string &Array, ExprPtr Idx) {
  return std::make_unique<IndexExpr>(varRef(Array), std::move(Idx), noLoc());
}

ExprPtr assign(TokenKind Op, ExprPtr Target, ExprPtr V) {
  return std::make_unique<AssignExpr>(Op, std::move(Target), std::move(V),
                                      noLoc());
}

ExprPtr castTo(MCType To, ExprPtr S) {
  return std::make_unique<CastExpr>(To, std::move(S), noLoc());
}

StmtPtr exprStmt(ExprPtr E) {
  return std::make_unique<ExprStmt>(std::move(E), noLoc());
}

StmtPtr declStmt(MCType Ty, const std::string &Name, ExprPtr Init) {
  auto D = std::make_unique<DeclStmt>(Ty, Name, noLoc());
  D->Init = std::move(Init);
  return D;
}

std::unique_ptr<BlockStmt> block() {
  return std::make_unique<BlockStmt>(noLoc());
}

/// `for (int <Var> = 0; <Var> < Trip; <Var> = <Var> + 1) <Body>`
StmtPtr countedFor(const std::string &Var, int64_t Trip,
                   std::unique_ptr<BlockStmt> Body) {
  auto F = std::make_unique<ForStmt>(noLoc());
  F->Init = declStmt(MCType::intTy(), Var, intLit(0));
  F->Cond = binary(TokenKind::Less, varRef(Var), intLit(Trip));
  F->Inc = assign(TokenKind::Assign, varRef(Var),
                  binary(TokenKind::Plus, varRef(Var), intLit(1)));
  F->Body = std::move(Body);
  return F;
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

struct VarInfo {
  std::string Name;
  bool IsInt = true;
  bool IsArray = false;
  int64_t Len = -1;       ///< Array length (arrays only).
  bool Assignable = true; ///< False for loop counters.
};

struct HelperSig {
  std::string Name;
  bool RetInt = true;
  std::vector<bool> ParamIsInt;
  /// First parameter is a recursion depth: generated call sites must pass
  /// a small positive constant there, never an arbitrary expression
  /// (termination relies on it).
  bool DepthParam = false;
};

class Gen {
public:
  Gen(const GenConfig &Cfg) : Cfg(Cfg), R(Cfg.Seed) {}

  std::unique_ptr<TranslationUnit> run() {
    auto TU = std::make_unique<TranslationUnit>();
    // Recursive functions come first so plain helpers and the entry can
    // call them (with constant depths). The group is only registered in
    // Helpers once every body exists: a group member calling itself (or
    // its partner) with a *constant* depth from inside its own body would
    // recurse forever, so those in-body calls are crafted explicitly with
    // `d - 1` and pickHelper must not see the group until it is closed.
    unsigned NumRec =
        Cfg.MaxRecursiveFns
            ? static_cast<unsigned>(R.nextBelow(Cfg.MaxRecursiveFns + 1))
            : 0;
    if (NumRec >= 2) {
      HelperSig A = drawRecursiveSig("r0");
      HelperSig B = drawRecursiveSig("r1");
      TU->Functions.push_back(genRecursiveFn(A, B));
      TU->Functions.push_back(genRecursiveFn(B, A));
      Helpers.push_back(std::move(A));
      Helpers.push_back(std::move(B));
    } else if (NumRec == 1) {
      HelperSig A = drawRecursiveSig("r0");
      TU->Functions.push_back(genRecursiveFn(A, A));
      Helpers.push_back(std::move(A));
    }
    unsigned NumHelpers =
        Cfg.MaxHelpers ? static_cast<unsigned>(R.nextBelow(Cfg.MaxHelpers + 1))
                       : 0;
    for (unsigned I = 0; I != NumHelpers; ++I)
      TU->Functions.push_back(genHelper(I));
    TU->Functions.push_back(genEntry());
    return TU;
  }

private:
  const GenConfig &Cfg;
  Rng R;
  std::vector<HelperSig> Helpers; ///< Callable (already generated) helpers.

  // Per-function state. Vars is the visibility stack: block scopes save
  // its size on entry and truncate back on exit.
  std::vector<VarInfo> Vars;
  unsigned NextName = 0;
  unsigned LoopDepth = 0;
  bool RetInt = true;

  std::string freshName(char Prefix) {
    return std::string(1, Prefix) + std::to_string(NextName++);
  }

  void beginFunction(bool ReturnsInt) {
    Vars.clear();
    NextName = 0;
    LoopDepth = 0;
    RetInt = ReturnsInt;
  }

  /// Uniformly picks a visible scalar of the given type; null if none.
  const VarInfo *pickScalar(bool WantInt, bool MustAssign = false) {
    size_t Count = 0;
    for (const VarInfo &V : Vars)
      if (!V.IsArray && V.IsInt == WantInt && (!MustAssign || V.Assignable))
        ++Count;
    if (!Count)
      return nullptr;
    size_t Pick = R.nextBelow(Count);
    for (const VarInfo &V : Vars)
      if (!V.IsArray && V.IsInt == WantInt && (!MustAssign || V.Assignable))
        if (Pick-- == 0)
          return &V;
    return nullptr;
  }

  const VarInfo *pickArray() {
    size_t Count = 0;
    for (const VarInfo &V : Vars)
      if (V.IsArray)
        ++Count;
    if (!Count)
      return nullptr;
    size_t Pick = R.nextBelow(Count);
    for (const VarInfo &V : Vars)
      if (V.IsArray)
        if (Pick-- == 0)
          return &V;
    return nullptr;
  }

  const HelperSig *pickHelper(bool WantInt) {
    size_t Count = 0;
    for (const HelperSig &H : Helpers)
      if (H.RetInt == WantInt)
        ++Count;
    if (!Count)
      return nullptr;
    size_t Pick = R.nextBelow(Count);
    for (const HelperSig &H : Helpers)
      if (H.RetInt == WantInt)
        if (Pick-- == 0)
          return &H;
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// `((E % Len) + Len) % Len` — in [0, Len) for every E.
  ExprPtr safeIndex(int64_t Len, unsigned Depth) {
    ExprPtr E = genInt(Depth);
    return binary(
        TokenKind::Percent,
        binary(TokenKind::Plus,
               binary(TokenKind::Percent, std::move(E), intLit(Len)),
               intLit(Len)),
        intLit(Len));
  }

  /// `(E % K) + (K + 2)` — in [3, 2K+1], never zero, never negative.
  ExprPtr safeIntDivisor(unsigned Depth) {
    static const int64_t Ks[] = {5, 7, 11};
    int64_t K = Ks[R.nextBelow(3)];
    return binary(TokenKind::Plus,
                  binary(TokenKind::Percent, genInt(Depth), intLit(K)),
                  intLit(K + 2));
  }

  /// `fabs(E) + C` with C >= 1 — never zero, never negative, never NaN
  /// from a zero/zero.
  ExprPtr safeFpDivisor(unsigned Depth) {
    double C = 1.0 + 0.5 * static_cast<double>(R.nextBelow(4));
    return binary(TokenKind::Plus, call1("fabs", genDouble(Depth)),
                  floatLit(C));
  }

  /// `(int)(fmin(fmax(E, -9.0e8), 9.0e8))` — an exact, saturation-free
  /// double-to-int conversion for any E (NaN collapses to a bound via
  /// fmax/fmin's NaN-ignoring semantics).
  ExprPtr clampedIntOfDouble(ExprPtr E) {
    ExprPtr Clamped = call2(
        "fmin",
        call2("fmax", std::move(E), unary(TokenKind::Minus, floatLit(9.0e8))),
        floatLit(9.0e8));
    return castTo(MCType::intTy(), std::move(Clamped));
  }

  ExprPtr genIntLeaf() {
    if (const VarInfo *V = R.nextBool(0.7) ? pickScalar(true) : nullptr)
      return varRef(V->Name);
    return intLit(static_cast<int64_t>(R.nextBelow(100)));
  }

  ExprPtr genDoubleLeaf() {
    if (const VarInfo *V = R.nextBool(0.7) ? pickScalar(false) : nullptr)
      return varRef(V->Name);
    // Multiples of 0.125: short exact decimal renderings.
    double V = 0.125 * static_cast<double>(R.nextBelow(65));
    return floatLit(V);
  }

  ExprPtr genCall(const HelperSig &H, unsigned Depth) {
    std::vector<ExprPtr> Args;
    for (size_t I = 0; I != H.ParamIsInt.size(); ++I) {
      if (I == 0 && H.DepthParam) {
        // Constant recursion depth — the termination contract.
        Args.push_back(intLit(1 + static_cast<int64_t>(R.nextBelow(
                               static_cast<uint64_t>(
                                   Cfg.MaxRecursionDepth)))));
        continue;
      }
      Args.push_back(H.ParamIsInt[I] ? genInt(Depth) : genDouble(Depth));
    }
    return call(H.Name.c_str(), std::move(Args));
  }

  ExprPtr genInt(unsigned Depth) {
    if (Depth == 0)
      return genIntLeaf();
    switch (R.nextBelow(12)) {
    case 0:
    case 1:
      return genIntLeaf();
    case 2:
      return unary(TokenKind::Minus, genInt(Depth - 1));
    case 3:
      return binary(TokenKind::Plus, genInt(Depth - 1), genInt(Depth - 1));
    case 4:
      return binary(TokenKind::Minus, genInt(Depth - 1), genInt(Depth - 1));
    case 5:
      return binary(TokenKind::Star, genInt(Depth - 1), genInt(Depth - 1));
    case 6:
      return binary(TokenKind::Slash, genInt(Depth - 1),
                    safeIntDivisor(Depth - 1));
    case 7:
      return binary(TokenKind::Percent, genInt(Depth - 1),
                    safeIntDivisor(Depth - 1));
    case 8:
      return genCondition(Depth - 1); // comparisons/logical yield 0/1
    case 9:
      if (const VarInfo *A = pickArray())
        if (A->IsInt)
          return index(A->Name, safeIndex(A->Len, Depth - 1));
      return binary(TokenKind::Plus, genInt(Depth - 1), genIntLeaf());
    case 10:
      if (const HelperSig *H = pickHelper(true))
        return genCall(*H, Depth - 1);
      return clampedIntOfDouble(genDouble(Depth - 1));
    default:
      return R.nextBool()
                 ? call2("imin", genInt(Depth - 1), genInt(Depth - 1))
                 : call2("imax", genInt(Depth - 1), genInt(Depth - 1));
    }
  }

  ExprPtr genDouble(unsigned Depth) {
    if (Depth == 0)
      return genDoubleLeaf();
    switch (R.nextBelow(12)) {
    case 0:
    case 1:
      return genDoubleLeaf();
    case 2:
      return unary(TokenKind::Minus, genDouble(Depth - 1));
    case 3:
      return binary(TokenKind::Plus, genDouble(Depth - 1),
                    genDouble(Depth - 1));
    case 4:
      return binary(TokenKind::Minus, genDouble(Depth - 1),
                    genDouble(Depth - 1));
    case 5:
      return binary(TokenKind::Star, genDouble(Depth - 1),
                    genDouble(Depth - 1));
    case 6:
      return binary(TokenKind::Slash, genDouble(Depth - 1),
                    safeFpDivisor(Depth - 1));
    case 7:
      return call1("sqrt", call1("fabs", genDouble(Depth - 1)));
    case 8:
      return call1(R.nextBool() ? "sin" : "cos", genDouble(Depth - 1));
    case 9:
      if (const VarInfo *A = pickArray())
        if (!A->IsInt)
          return index(A->Name, safeIndex(A->Len, Depth - 1));
      return call1("floor", genDouble(Depth - 1));
    case 10:
      if (const HelperSig *H = pickHelper(false))
        return genCall(*H, Depth - 1);
      return castTo(MCType::doubleTy(), genInt(Depth - 1));
    default:
      return R.nextBool()
                 ? call2("fmin", genDouble(Depth - 1), genDouble(Depth - 1))
                 : call2("fmax", genDouble(Depth - 1), genDouble(Depth - 1));
    }
  }

  /// An int-typed truth value: comparison or logical combination.
  ExprPtr genCondition(unsigned Depth) {
    static const TokenKind Cmps[] = {
        TokenKind::Less,    TokenKind::LessEqual,    TokenKind::Greater,
        TokenKind::GreaterEqual, TokenKind::EqualEqual, TokenKind::NotEqual};
    switch (Depth == 0 ? 0 : R.nextBelow(5)) {
    case 0:
    case 1: {
      TokenKind Op = Cmps[R.nextBelow(6)];
      return R.nextBool()
                 ? binary(Op, genInt(Depth), genInt(Depth))
                 : binary(Op, genDouble(Depth), genDouble(Depth));
    }
    case 2:
      return binary(TokenKind::AmpAmp, genCondition(Depth - 1),
                    genCondition(Depth - 1));
    case 3:
      return binary(TokenKind::PipePipe, genCondition(Depth - 1),
                    genCondition(Depth - 1));
    default:
      return unary(TokenKind::Bang, genCondition(Depth - 1));
    }
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void genDeclInto(std::vector<StmtPtr> &Out) {
    bool IsInt = R.nextBool();
    std::string Name = freshName('v');
    Out.push_back(declStmt(IsInt ? MCType::intTy() : MCType::doubleTy(),
                           Name,
                           IsInt ? genInt(Cfg.MaxExprDepth - 1)
                                 : genDouble(Cfg.MaxExprDepth - 1)));
    Vars.push_back({Name, IsInt, false, -1, true});
  }

  /// `double tN[L];` followed by a fill loop; the array only becomes
  /// visible to later statements once every slot is initialized.
  void genArrayInto(std::vector<StmtPtr> &Out) {
    bool IsInt = R.nextBool(0.35);
    int64_t Len = 2 + static_cast<int64_t>(R.nextBelow(
                          static_cast<uint64_t>(Cfg.MaxArrayLen - 1)));
    std::string Name = freshName('t');
    auto D = std::make_unique<DeclStmt>(
        IsInt ? MCType::intTy() : MCType::doubleTy(), Name, noLoc());
    D->ArraySlots = Len;
    Out.push_back(std::move(D));

    std::string Idx = freshName('f');
    auto Body = block();
    Vars.push_back({Idx, true, false, -1, false});
    Body->Stmts.push_back(exprStmt(
        assign(TokenKind::Assign, index(Name, varRef(Idx)),
               IsInt ? genInt(2) : genDouble(2))));
    Vars.pop_back();
    Out.push_back(countedFor(Idx, Len, std::move(Body)));
    Vars.push_back({Name, IsInt, true, Len, true});
  }

  StmtPtr genAssign() {
    // Prefer scalar stores; fall back to array elements.
    if (R.nextBool(0.3)) {
      if (const VarInfo *A = pickArray()) {
        ExprPtr Target = index(A->Name, safeIndex(A->Len, 2));
        ExprPtr V = A->IsInt ? genInt(Cfg.MaxExprDepth - 1)
                             : genDouble(Cfg.MaxExprDepth - 1);
        return exprStmt(assign(TokenKind::Assign, std::move(Target),
                               std::move(V)));
      }
    }
    bool WantInt = R.nextBool();
    const VarInfo *V = pickScalar(WantInt, /*MustAssign=*/true);
    if (!V)
      V = pickScalar(!WantInt, /*MustAssign=*/true);
    if (!V)
      return exprStmt(genInt(1)); // no assignable vars: harmless compute
    bool IsInt = V->IsInt;
    switch (R.nextBelow(5)) {
    case 0:
      return exprStmt(assign(
          TokenKind::PlusAssign, varRef(V->Name),
          IsInt ? genInt(Cfg.MaxExprDepth - 1)
                : genDouble(Cfg.MaxExprDepth - 1)));
    case 1:
      return exprStmt(assign(
          TokenKind::MinusAssign, varRef(V->Name),
          IsInt ? genInt(Cfg.MaxExprDepth - 2)
                : genDouble(Cfg.MaxExprDepth - 2)));
    case 2:
      return exprStmt(assign(TokenKind::StarAssign, varRef(V->Name),
                             IsInt ? genInt(1) : genDouble(1)));
    case 3:
      // Compound division keeps the guarded-divisor invariant.
      return exprStmt(assign(TokenKind::SlashAssign, varRef(V->Name),
                             IsInt ? safeIntDivisor(1) : safeFpDivisor(1)));
    default:
      return exprStmt(assign(
          TokenKind::Assign, varRef(V->Name),
          IsInt ? genInt(Cfg.MaxExprDepth) : genDouble(Cfg.MaxExprDepth)));
    }
  }

  StmtPtr genIf(unsigned BlockNest, unsigned StmtBudget) {
    auto S = std::make_unique<IfStmt>(noLoc());
    S->Cond = genCondition(2);
    auto Then = block();
    fillBlock(*Then, StmtBudget, BlockNest + 1);
    // A guarded break/continue is only meaningful inside a loop and is
    // always the last statement of the branch (nothing after it would run).
    if (LoopDepth > 0 && R.nextBool(0.25))
      Then->Stmts.push_back(
          R.nextBool() ? StmtPtr(std::make_unique<BreakStmt>(noLoc()))
                       : StmtPtr(std::make_unique<ContinueStmt>(noLoc())));
    S->Then = std::move(Then);
    if (R.nextBool(0.4)) {
      auto Else = block();
      fillBlock(*Else, StmtBudget, BlockNest + 1);
      S->Else = std::move(Else);
    }
    return S;
  }

  StmtPtr genLoop(unsigned BlockNest, unsigned StmtBudget) {
    int64_t Trip = 1 + static_cast<int64_t>(R.nextBelow(
                           static_cast<uint64_t>(Cfg.MaxTripCount)));
    std::string Idx = freshName('i');
    auto Body = block();
    Vars.push_back({Idx, true, false, -1, false});
    ++LoopDepth;
    fillBlock(*Body, StmtBudget, BlockNest + 1);
    --LoopDepth;
    Vars.pop_back();
    return countedFor(Idx, Trip, std::move(Body));
  }

  /// Appends StmtBudget-ish statements to \p B (each may recurse). With
  /// \p KeepVars the declarations stay visible to the caller — used for
  /// the function body's own statement list, whose scope extends to the
  /// closing return.
  void fillBlock(BlockStmt &B, unsigned StmtBudget, unsigned BlockNest,
                 bool KeepVars = false) {
    size_t Mark = Vars.size();
    unsigned N = 1 + static_cast<unsigned>(R.nextBelow(StmtBudget));
    for (unsigned I = 0; I != N; ++I) {
      switch (R.nextBelow(10)) {
      case 0:
      case 1:
        genDeclInto(B.Stmts);
        break;
      case 2:
      case 3:
      case 4:
      case 5:
        B.Stmts.push_back(genAssign());
        break;
      case 6:
      case 7:
        if (BlockNest < Cfg.MaxBlockNest) {
          B.Stmts.push_back(genIf(BlockNest, Cfg.MaxNestedStmts));
          break;
        }
        B.Stmts.push_back(genAssign());
        break;
      default:
        if (BlockNest < Cfg.MaxBlockNest && LoopDepth < Cfg.MaxLoopNest) {
          B.Stmts.push_back(genLoop(BlockNest, Cfg.MaxNestedStmts));
          break;
        }
        B.Stmts.push_back(genAssign());
        break;
      }
    }
    if (!KeepVars)
      Vars.resize(Mark);
  }

  /// Folds every visible scalar (and the edges of every array) into one
  /// returned checksum so the oracles observe nearly all computation.
  ExprPtr checksumExpr() {
    ExprPtr IntChain = intLit(0);
    ExprPtr DblChain = floatLit(0.0);
    for (const VarInfo &V : Vars) {
      if (V.IsArray) {
        DblChain = binary(
            TokenKind::Plus, std::move(DblChain),
            V.IsInt ? castTo(MCType::doubleTy(), index(V.Name, intLit(0)))
                    : index(V.Name, intLit(0)));
        DblChain = binary(
            TokenKind::Plus, std::move(DblChain),
            V.IsInt
                ? castTo(MCType::doubleTy(), index(V.Name, intLit(V.Len - 1)))
                : index(V.Name, intLit(V.Len - 1)));
      } else if (V.IsInt) {
        IntChain = binary(TokenKind::Plus, std::move(IntChain),
                          varRef(V.Name));
      } else {
        DblChain = binary(TokenKind::Plus, std::move(DblChain),
                          varRef(V.Name));
      }
    }
    // (ints + (int)clamp(doubles * 512)) — scaling keeps fractional bits
    // visible in the integer checksum.
    ExprPtr Scaled = binary(TokenKind::Star, std::move(DblChain),
                            floatLit(512.0));
    ExprPtr Combined = binary(TokenKind::Plus, std::move(IntChain),
                              clampedIntOfDouble(std::move(Scaled)));
    if (RetInt)
      return Combined;
    return castTo(MCType::doubleTy(), std::move(Combined));
  }

  std::unique_ptr<BlockStmt> genBody(unsigned TopStmts, unsigned NumArrays) {
    auto Body = block();
    // Prologue: a couple of seeded locals of each type so expressions have
    // material to work with from the start.
    genDeclInto(Body->Stmts);
    genDeclInto(Body->Stmts);
    for (unsigned I = 0; I != NumArrays; ++I)
      if (R.nextBool(0.75))
        genArrayInto(Body->Stmts);
    fillBlock(*Body, TopStmts, 0, /*KeepVars=*/true);
    // KeepVars left top-level declarations visible for the checksum.
    auto Ret = std::make_unique<ReturnStmt>(noLoc());
    Ret->Value = checksumExpr();
    Body->Stmts.push_back(std::move(Ret));
    return Body;
  }

  HelperSig drawRecursiveSig(const char *Name) {
    HelperSig Sig;
    Sig.Name = Name;
    Sig.RetInt = R.nextBool();
    Sig.DepthParam = true;
    Sig.ParamIsInt.push_back(true); // the depth
    Sig.ParamIsInt.push_back(R.nextBool());
    return Sig;
  }

  /// One member of a recursion group: guards on the depth, does a little
  /// local computation, and folds a `Target(d - 1, ...)` call into its
  /// return value. \p Target is \p Self for a self-recursive function and
  /// the partner signature for a mutually recursive pair (MiniC
  /// pre-declares every function, so calling a later definition is fine).
  std::unique_ptr<FunctionDecl> genRecursiveFn(const HelperSig &Self,
                                               const HelperSig &Target) {
    beginFunction(Self.RetInt);
    auto FD = std::make_unique<FunctionDecl>();
    FD->RetTy = Self.RetInt ? MCType::intTy() : MCType::doubleTy();
    FD->Name = Self.Name;
    FD->Loc = noLoc();
    FD->Params.push_back({MCType::intTy(), "d", noLoc()});
    // `d` is deliberately non-assignable: termination needs the depth the
    // recursive call decrements to be the depth this frame was given.
    Vars.push_back({"d", true, false, -1, false});
    for (size_t I = 1; I != Self.ParamIsInt.size(); ++I) {
      std::string Name = "p" + std::to_string(I);
      FD->Params.push_back({Self.ParamIsInt[I] ? MCType::intTy()
                                               : MCType::doubleTy(),
                            Name, noLoc()});
      Vars.push_back({Name, Self.ParamIsInt[I], false, -1, true});
    }

    auto Body = block();
    // Base case: `if (d <= 0) return <leaf>;`
    auto If = std::make_unique<IfStmt>(noLoc());
    If->Cond = binary(TokenKind::LessEqual, varRef("d"), intLit(0));
    auto Then = block();
    auto Base = std::make_unique<ReturnStmt>(noLoc());
    Base->Value = Self.RetInt ? genInt(2) : genDouble(2);
    Then->Stmts.push_back(std::move(Base));
    If->Then = std::move(Then);
    Body->Stmts.push_back(std::move(If));

    genDeclInto(Body->Stmts);
    Body->Stmts.push_back(genAssign());

    // `Target(d - 1, ...)`, coerced to this function's return type.
    std::vector<ExprPtr> Args;
    Args.push_back(binary(TokenKind::Minus, varRef("d"), intLit(1)));
    for (size_t I = 1; I != Target.ParamIsInt.size(); ++I)
      Args.push_back(Target.ParamIsInt[I] ? genInt(2) : genDouble(2));
    ExprPtr Rec = call(Target.Name.c_str(), std::move(Args));
    ExprPtr Combined;
    if (Self.RetInt) {
      ExprPtr RecInt =
          Target.RetInt ? std::move(Rec) : clampedIntOfDouble(std::move(Rec));
      Combined = binary(TokenKind::Plus, std::move(RecInt), genInt(2));
    } else {
      ExprPtr RecDbl = Target.RetInt
                           ? castTo(MCType::doubleTy(), std::move(Rec))
                           : std::move(Rec);
      Combined = binary(TokenKind::Plus, std::move(RecDbl), genDouble(2));
    }
    auto Ret = std::make_unique<ReturnStmt>(noLoc());
    Ret->Value = std::move(Combined);
    Body->Stmts.push_back(std::move(Ret));
    FD->Body = std::move(Body);
    return FD;
  }

  std::unique_ptr<FunctionDecl> genHelper(unsigned Index) {
    HelperSig Sig;
    Sig.Name = "h" + std::to_string(Index);
    Sig.RetInt = R.nextBool();
    unsigned NumParams = 1 + static_cast<unsigned>(R.nextBelow(3));
    for (unsigned I = 0; I != NumParams; ++I)
      Sig.ParamIsInt.push_back(R.nextBool());

    beginFunction(Sig.RetInt);
    auto FD = std::make_unique<FunctionDecl>();
    FD->RetTy = Sig.RetInt ? MCType::intTy() : MCType::doubleTy();
    FD->Name = Sig.Name;
    FD->Loc = noLoc();
    for (unsigned I = 0; I != NumParams; ++I) {
      std::string Name = "p" + std::to_string(I);
      FD->Params.push_back({Sig.ParamIsInt[I] ? MCType::intTy()
                                              : MCType::doubleTy(),
                            Name, noLoc()});
      Vars.push_back({Name, Sig.ParamIsInt[I], false, -1, true});
    }
    FD->Body = genBody(/*TopStmts=*/3, /*NumArrays=*/0);
    Helpers.push_back(std::move(Sig));
    return FD;
  }

  std::unique_ptr<FunctionDecl> genEntry() {
    beginFunction(/*ReturnsInt=*/true);
    auto FD = std::make_unique<FunctionDecl>();
    FD->RetTy = MCType::intTy();
    FD->Name = GenEntryName;
    FD->Loc = noLoc();
    FD->Params.push_back({MCType::intTy(), "a", noLoc()});
    FD->Params.push_back({MCType::intTy(), "b", noLoc()});
    Vars.push_back({"a", true, false, -1, true});
    Vars.push_back({"b", true, false, -1, true});
    FD->Body = genBody(Cfg.MaxTopStmts, Cfg.MaxArrays);
    return FD;
  }
};

} // namespace

GeneratedProgram ipas::testing::generateProgram(const GenConfig &Cfg) {
  GeneratedProgram P;
  P.Seed = Cfg.Seed;
  P.TU = Gen(Cfg).run();
  P.Source = printTranslationUnit(*P.TU);
  return P;
}
