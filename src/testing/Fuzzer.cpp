//===- testing/Fuzzer.cpp ------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "testing/Fuzzer.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace ipas;
using namespace ipas::testing;

uint64_t ipas::testing::programSeed(uint64_t BaseSeed, uint64_t Index) {
  // splitmix64 step over (BaseSeed, Index); the constant offset keeps
  // programSeed(s, 0) distinct from s itself.
  uint64_t Z = BaseSeed + (Index + 1) * 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

FuzzReport ipas::testing::runFuzzCampaign(const FuzzConfig &Cfg) {
  obs::PhaseSpan Span("fuzz.campaign", obs::AttrSet()
                                           .addHex("seed", Cfg.Seed)
                                           .add("count", Cfg.Count));
  obs::Counter &Programs =
      obs::MetricsRegistry::global().counter("fuzz.programs");
  obs::Counter &Checks = obs::MetricsRegistry::global().counter("fuzz.oracles");
  obs::Counter &Failed = obs::MetricsRegistry::global().counter("fuzz.failures");

  static const OracleKind AllOracles[] = {
      OracleKind::RoundTrip, OracleKind::Optimizer, OracleKind::Protection,
      OracleKind::Lint, OracleKind::Backend};
  static_assert(sizeof(AllOracles) / sizeof(AllOracles[0]) == NumOracles,
                "AllOracles must cover every OracleKind");

  FuzzReport Report;
  for (uint64_t I = 0; I != Cfg.Count; ++I) {
    GenConfig GC = Cfg.Gen;
    GC.Seed = programSeed(Cfg.Seed, I);
    GeneratedProgram P = generateProgram(GC);
    ++Report.ProgramsRun;
    Programs.inc();

    const OracleKind *Kinds = Cfg.RunAll ? AllOracles : &Cfg.Oracle;
    size_t NumKinds = Cfg.RunAll ? NumOracles : 1;
    for (size_t K = 0; K != NumKinds; ++K) {
      OracleResult R = runOracle(Kinds[K], P.Source, Cfg.Oracles);
      ++Report.OraclesRun;
      Checks.inc();
      if (R.Passed)
        continue;

      Failed.inc();
      FuzzFailure F;
      F.Index = I;
      F.Seed = GC.Seed;
      F.Oracle = Kinds[K];
      F.Detail = R.Detail;
      F.Source = P.Source;
      F.Shrunk = P.Source;
      obs::logMessage(obs::Severity::Warn,
                      "fuzz: %s failed on program %llu (seed 0x%llx): %s",
                      oracleName(Kinds[K]),
                      static_cast<unsigned long long>(I),
                      static_cast<unsigned long long>(GC.Seed),
                      R.Detail.c_str());
      if (Cfg.Shrink) {
        obs::PhaseSpan ShrinkSpan(
            "fuzz.shrink", obs::AttrSet().addHex("seed", GC.Seed));
        F.ShrinkInfo = shrinkFailure(P.Source, Kinds[K], Cfg.Oracles);
        F.Shrunk = F.ShrinkInfo.Source;
      }
      Report.Failures.push_back(std::move(F));
      break; // remaining oracles on this program add noise, not signal
    }
  }
  return Report;
}
