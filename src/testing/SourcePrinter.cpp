//===- testing/SourcePrinter.cpp -----------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "testing/SourcePrinter.h"

#include <cstdio>

using namespace ipas;
using namespace ipas::testing;

namespace {

const char *operatorSpelling(TokenKind K) {
  switch (K) {
  case TokenKind::Assign:
    return "=";
  case TokenKind::Plus:
    return "+";
  case TokenKind::Minus:
    return "-";
  case TokenKind::Star:
    return "*";
  case TokenKind::Slash:
    return "/";
  case TokenKind::Percent:
    return "%";
  case TokenKind::Less:
    return "<";
  case TokenKind::LessEqual:
    return "<=";
  case TokenKind::Greater:
    return ">";
  case TokenKind::GreaterEqual:
    return ">=";
  case TokenKind::EqualEqual:
    return "==";
  case TokenKind::NotEqual:
    return "!=";
  case TokenKind::AmpAmp:
    return "&&";
  case TokenKind::PipePipe:
    return "||";
  case TokenKind::Bang:
    return "!";
  case TokenKind::PlusAssign:
    return "+=";
  case TokenKind::MinusAssign:
    return "-=";
  case TokenKind::StarAssign:
    return "*=";
  case TokenKind::SlashAssign:
    return "/=";
  default:
    assert(false && "not an operator token");
    return "?";
  }
}

/// %.17g is a lossless double rendering; force a '.' or exponent so the
/// lexer re-reads it as a FloatLiteral, not an IntLiteral.
std::string floatLiteral(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  std::string S(Buf);
  if (S.find('.') == std::string::npos &&
      S.find('e') == std::string::npos &&
      S.find('E') == std::string::npos &&
      S.find("inf") == std::string::npos &&
      S.find("nan") == std::string::npos)
    S += ".0";
  return S;
}

void emitExpr(const Expr &E, std::string &Out);

void emitParenthesized(const Expr &E, std::string &Out) {
  // Leaves never need parens; everything compound always gets them, which
  // makes printing canonical without tracking precedence.
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
  case ExprKind::VarRef:
  case ExprKind::Call:
  case ExprKind::Index:
    emitExpr(E, Out);
    return;
  default:
    Out += '(';
    emitExpr(E, Out);
    Out += ')';
    return;
  }
}

void emitExpr(const Expr &E, std::string &Out) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    Out += std::to_string(static_cast<const IntLitExpr *>(&E)->Value);
    return;
  case ExprKind::FloatLit:
    Out += floatLiteral(static_cast<const FloatLitExpr *>(&E)->Value);
    return;
  case ExprKind::VarRef:
    Out += static_cast<const VarRefExpr *>(&E)->Name;
    return;
  case ExprKind::Binary: {
    const auto *B = static_cast<const BinaryExpr *>(&E);
    emitParenthesized(*B->LHS, Out);
    Out += ' ';
    Out += operatorSpelling(B->Op);
    Out += ' ';
    emitParenthesized(*B->RHS, Out);
    return;
  }
  case ExprKind::Unary: {
    const auto *U = static_cast<const UnaryExpr *>(&E);
    Out += operatorSpelling(U->Op);
    emitParenthesized(*U->Sub, Out);
    return;
  }
  case ExprKind::Call: {
    const auto *C = static_cast<const CallExpr *>(&E);
    Out += C->Callee;
    Out += '(';
    for (size_t I = 0; I != C->Args.size(); ++I) {
      if (I)
        Out += ", ";
      emitExpr(*C->Args[I], Out);
    }
    Out += ')';
    return;
  }
  case ExprKind::Index: {
    const auto *I = static_cast<const IndexExpr *>(&E);
    emitParenthesized(*I->Base, Out);
    Out += '[';
    emitExpr(*I->Index, Out);
    Out += ']';
    return;
  }
  case ExprKind::Assign: {
    const auto *A = static_cast<const AssignExpr *>(&E);
    emitParenthesized(*A->Target, Out);
    Out += ' ';
    Out += operatorSpelling(A->Op);
    Out += ' ';
    emitParenthesized(*A->Value, Out);
    return;
  }
  case ExprKind::Cast: {
    const auto *C = static_cast<const CastExpr *>(&E);
    Out += '(';
    Out += C->To.str();
    Out += ')';
    emitParenthesized(*C->Sub, Out);
    return;
  }
  }
  assert(false && "unhandled expression kind");
}

void emitIndent(unsigned Indent, std::string &Out) {
  Out.append(2 * static_cast<size_t>(Indent), ' ');
}

void emitStmt(const Stmt &S, unsigned Indent, std::string &Out);

/// Emits a statement that syntactically occupies a body position (if/loop
/// body). Non-block bodies are wrapped in braces so that the printed form
/// parses back to an identical tree modulo the BlockStmt wrapper the
/// parser does not add for single statements — to keep the fixpoint exact
/// we always print braces AND the parser keeps whatever it saw; since the
/// generator and shrinker only ever build BlockStmt bodies this wrapper
/// fires only on hand-written inputs.
void emitBody(const Stmt &S, unsigned Indent, std::string &Out) {
  if (S.Kind == StmtKind::Block) {
    Out += " {\n";
    for (const StmtPtr &Child : static_cast<const BlockStmt *>(&S)->Stmts)
      emitStmt(*Child, Indent + 1, Out);
    emitIndent(Indent, Out);
    Out += '}';
  } else {
    Out += " {\n";
    emitStmt(S, Indent + 1, Out);
    emitIndent(Indent, Out);
    Out += '}';
  }
}

void emitStmt(const Stmt &S, unsigned Indent, std::string &Out) {
  switch (S.Kind) {
  case StmtKind::Block: {
    emitIndent(Indent, Out);
    Out += "{\n";
    for (const StmtPtr &Child : static_cast<const BlockStmt *>(&S)->Stmts)
      emitStmt(*Child, Indent + 1, Out);
    emitIndent(Indent, Out);
    Out += "}\n";
    return;
  }
  case StmtKind::Decl: {
    const auto *D = static_cast<const DeclStmt *>(&S);
    emitIndent(Indent, Out);
    Out += D->Ty.str();
    Out += ' ';
    Out += D->Name;
    if (D->ArraySlots >= 0) {
      Out += '[';
      Out += std::to_string(D->ArraySlots);
      Out += ']';
    }
    if (D->Init) {
      Out += " = ";
      emitExpr(*D->Init, Out);
    }
    Out += ";\n";
    return;
  }
  case StmtKind::Expr: {
    emitIndent(Indent, Out);
    emitExpr(*static_cast<const ExprStmt *>(&S)->E, Out);
    Out += ";\n";
    return;
  }
  case StmtKind::If: {
    const auto *I = static_cast<const IfStmt *>(&S);
    emitIndent(Indent, Out);
    Out += "if (";
    emitExpr(*I->Cond, Out);
    Out += ')';
    emitBody(*I->Then, Indent, Out);
    if (I->Else) {
      Out += " else";
      emitBody(*I->Else, Indent, Out);
    }
    Out += '\n';
    return;
  }
  case StmtKind::While: {
    const auto *W = static_cast<const WhileStmt *>(&S);
    emitIndent(Indent, Out);
    Out += "while (";
    emitExpr(*W->Cond, Out);
    Out += ')';
    emitBody(*W->Body, Indent, Out);
    Out += '\n';
    return;
  }
  case StmtKind::For: {
    const auto *F = static_cast<const ForStmt *>(&S);
    emitIndent(Indent, Out);
    Out += "for (";
    if (F->Init) {
      // Init is a declaration or expression statement; both print with a
      // trailing ";\n" — reuse and trim to keep one source of truth.
      std::string Init;
      emitStmt(*F->Init, 0, Init);
      assert(Init.size() >= 2 && Init[Init.size() - 1] == '\n');
      Init.pop_back(); // '\n' — the ';' stays as the clause separator.
      Out += Init;
      Out += ' ';
    } else {
      Out += "; ";
    }
    if (F->Cond)
      emitExpr(*F->Cond, Out);
    Out += "; ";
    if (F->Inc)
      emitExpr(*F->Inc, Out);
    Out += ')';
    emitBody(*F->Body, Indent, Out);
    Out += '\n';
    return;
  }
  case StmtKind::Return: {
    const auto *R = static_cast<const ReturnStmt *>(&S);
    emitIndent(Indent, Out);
    Out += "return";
    if (R->Value) {
      Out += ' ';
      emitExpr(*R->Value, Out);
    }
    Out += ";\n";
    return;
  }
  case StmtKind::Break:
    emitIndent(Indent, Out);
    Out += "break;\n";
    return;
  case StmtKind::Continue:
    emitIndent(Indent, Out);
    Out += "continue;\n";
    return;
  }
  assert(false && "unhandled statement kind");
}

} // namespace

std::string ipas::testing::printExpr(const Expr &E) {
  std::string Out;
  emitExpr(E, Out);
  return Out;
}

std::string ipas::testing::printStmt(const Stmt &S, unsigned Indent) {
  std::string Out;
  emitStmt(S, Indent, Out);
  return Out;
}

std::string ipas::testing::printTranslationUnit(const TranslationUnit &TU) {
  std::string Out;
  for (size_t FI = 0; FI != TU.Functions.size(); ++FI) {
    const FunctionDecl &F = *TU.Functions[FI];
    if (FI)
      Out += '\n';
    Out += F.RetTy.str();
    Out += ' ';
    Out += F.Name;
    Out += '(';
    for (size_t I = 0; I != F.Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += F.Params[I].Ty.str();
      Out += ' ';
      Out += F.Params[I].Name;
    }
    Out += ')';
    emitBody(*F.Body, 0, Out);
    Out += '\n';
  }
  return Out;
}

size_t ipas::testing::countLines(const std::string &Source) {
  size_t N = 0;
  for (char C : Source)
    if (C == '\n')
      ++N;
  if (!Source.empty() && Source.back() != '\n')
    ++N;
  return N;
}
