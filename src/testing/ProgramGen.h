//===- testing/ProgramGen.h - Random UB-free MiniC programs ---------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic random-program generator for MiniC, in the
/// Csmith tradition but scoped to this repo's language: every generated
/// program is well defined by construction, so any behavioral divergence
/// between two compilations of it is a compiler bug, never an artifact of
/// the input.
///
/// The guarantees, and how each is enforced:
///
///  - No trapping division: integer `/` and `%` divisors are always
///    generated in the guarded form `(e % K) + (K + 2)` for a small
///    positive constant K, which lies in [3, 2K+1] for every value of e —
///    never zero, never -1 (so INT64_MIN / -1 cannot trap either).
///    Floating division uses `fabs(e) + c` with c >= 1.
///  - Bounded execution: the only loop forms are canonical counted
///    `for` loops with a constant trip count and a loop variable the body
///    never assigns; `break`/`continue` appear only inside them.
///  - In-bounds indexing: every array subscript is generated as
///    `((e % Len) + Len) % Len`, which lies in [0, Len) for every e.
///  - No indeterminate reads: every scalar declaration carries an
///    initializer and every local array is filled by a generated loop
///    before its first use.
///
/// Integer overflow wraps and FP follows IEEE-754 in MiniC (docs/MINIC.md),
/// so neither needs avoiding. Each program ends by folding every live
/// local into a returned checksum, which makes almost all computation
/// observable to the differential oracles (testing/Oracles.h).
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_TESTING_PROGRAMGEN_H
#define IPAS_TESTING_PROGRAMGEN_H

#include "frontend/AST.h"

#include <memory>
#include <string>

namespace ipas {
namespace testing {

/// Name and signature of the generated entry point: `int run(int a, int b)`.
/// Fixed so the differential harness can execute every program the same way.
constexpr const char *GenEntryName = "run";

struct GenConfig {
  uint64_t Seed = 1;
  unsigned MaxHelpers = 2;       ///< Helper functions before `run` (0..N).
  /// Recursive functions ahead of the helpers (0..N drawn; 1 yields a
  /// self-recursive function, 2+ a mutually recursive pair). Termination
  /// is by construction: each takes an explicit depth as its first
  /// parameter, returns a base value when it reaches zero, passes `d - 1`
  /// on every recursive call, and never reassigns `d`; non-recursive call
  /// sites always pass a constant depth in [1, MaxRecursionDepth].
  unsigned MaxRecursiveFns = 2;
  int64_t MaxRecursionDepth = 5; ///< Constant depths at call sites.
  unsigned MaxTopStmts = 6;      ///< Statement budget at function top level.
  unsigned MaxNestedStmts = 4;   ///< Statement budget inside if/loop bodies.
  unsigned MaxExprDepth = 4;     ///< Recursion budget for expressions.
  unsigned MaxBlockNest = 2;     ///< if/loop nesting depth.
  unsigned MaxLoopNest = 2;      ///< Loop-in-loop depth (trip counts multiply).
  int64_t MaxTripCount = 8;      ///< Constant `for` trip counts in [1, N].
  unsigned MaxArrays = 2;        ///< Local arrays in the entry function.
  int64_t MaxArrayLen = 12;      ///< Array lengths in [2, N].
};

struct GeneratedProgram {
  uint64_t Seed = 0;
  std::unique_ptr<TranslationUnit> TU;
  std::string Source; ///< printTranslationUnit(*TU).
};

/// Generates one program. Deterministic: equal configs (including Seed)
/// yield byte-identical Source on every platform.
GeneratedProgram generateProgram(const GenConfig &Cfg);

} // namespace testing
} // namespace ipas

#endif // IPAS_TESTING_PROGRAMGEN_H
