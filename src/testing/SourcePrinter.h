//===- testing/SourcePrinter.h - MiniC AST -> source text -----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a MiniC AST back to compilable source text. The printer is the
/// hinge of the differential-testing subsystem: the fuzzer's generated ASTs
/// become `.mc` files through it, oracle O1 checks that
/// print(parse(print(AST))) is byte-identical to print(AST) (a printer/
/// parser fixpoint), and the delta-debugging shrinker re-prints every
/// mutated candidate before handing it to an oracle.
///
/// To make the fixpoint trivially true the printer is deliberately
/// canonical: every nested expression is fully parenthesized (parse trees
/// carry no parens, so reprinting reinserts exactly the same ones), one
/// statement per line, two-space indentation, float literals via %.17g
/// (exact double round trip) with a ".0" suffix forced when the rendering
/// would otherwise re-lex as an integer.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_TESTING_SOURCEPRINTER_H
#define IPAS_TESTING_SOURCEPRINTER_H

#include "frontend/AST.h"

#include <string>

namespace ipas {
namespace testing {

/// Renders one expression (fully parenthesized, no trailing newline).
std::string printExpr(const Expr &E);

/// Renders one statement (indented, newline-terminated).
std::string printStmt(const Stmt &S, unsigned Indent = 0);

/// Renders a whole translation unit as compilable MiniC source.
std::string printTranslationUnit(const TranslationUnit &TU);

/// Counts the newline-terminated lines of \p Source (the size metric the
/// shrinker minimizes and the acceptance bound for repro files).
size_t countLines(const std::string &Source);

} // namespace testing
} // namespace ipas

#endif // IPAS_TESTING_SOURCEPRINTER_H
