//===- support/Random.h - Deterministic random number generation ---------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seedable, splittable random number generator used throughout the fault
/// injection and machine learning components. Every stochastic component of
/// the system draws from an explicitly passed Rng so that campaigns are
/// reproducible from a single seed.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_SUPPORT_RANDOM_H
#define IPAS_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace ipas {

/// Deterministic 64-bit generator (xoshiro256** core) with convenience
/// sampling helpers. Cheap to copy; copies evolve independently.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64 so that nearby
  /// seeds yield uncorrelated streams.
  void reseed(uint64_t Seed) {
    uint64_t X = Seed;
    for (auto &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Returns the next raw 64-bit word.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow() bound must be positive");
    // Debiased multiply-shift (Lemire).
    while (true) {
      uint64_t X = next();
      __uint128_t M = static_cast<__uint128_t>(X) * Bound;
      uint64_t Low = static_cast<uint64_t>(M);
      if (Low >= Bound || Low >= (-Bound) % Bound)
        return static_cast<uint64_t>(M >> 64);
    }
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "nextInRange() empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [Lo, Hi).
  double nextDoubleIn(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }

  /// Bernoulli draw with probability \p P of returning true.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

  /// Derives an independent child generator; useful for giving each
  /// injection run its own stream while keeping the campaign reproducible.
  Rng split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

  /// Fisher-Yates shuffles \p N elements through \p Swap(I, J) callbacks.
  template <typename SwapFn> void shuffle(size_t N, SwapFn Swap) {
    for (size_t I = N; I > 1; --I) {
      size_t J = nextBelow(I);
      if (J != I - 1)
        Swap(I - 1, J);
    }
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace ipas

#endif // IPAS_SUPPORT_RANDOM_H
