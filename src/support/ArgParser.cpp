//===- support/ArgParser.cpp ----------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace ipas;

void ArgParser::addInt(const std::string &Name, int64_t *Storage,
                       const std::string &Help) {
  Flags.push_back({Name, FlagKind::Int, Storage, Help});
}

void ArgParser::addDouble(const std::string &Name, double *Storage,
                          const std::string &Help) {
  Flags.push_back({Name, FlagKind::Double, Storage, Help});
}

void ArgParser::addString(const std::string &Name, std::string *Storage,
                          const std::string &Help) {
  Flags.push_back({Name, FlagKind::String, Storage, Help});
}

void ArgParser::addBool(const std::string &Name, bool *Storage,
                        const std::string &Help) {
  Flags.push_back({Name, FlagKind::Bool, Storage, Help});
}

ArgParser::Flag *ArgParser::findFlag(const std::string &Name) {
  for (Flag &F : Flags)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

bool ArgParser::assign(Flag &F, const std::string &Value) {
  char *End = nullptr;
  switch (F.Kind) {
  case FlagKind::Int: {
    long long V = std::strtoll(Value.c_str(), &End, 10);
    if (End == Value.c_str() || *End != '\0') {
      std::fprintf(stderr, "error: flag --%s expects an integer, got '%s'\n",
                   F.Name.c_str(), Value.c_str());
      return false;
    }
    *static_cast<int64_t *>(F.Storage) = V;
    return true;
  }
  case FlagKind::Double: {
    double V = std::strtod(Value.c_str(), &End);
    if (End == Value.c_str() || *End != '\0') {
      std::fprintf(stderr, "error: flag --%s expects a number, got '%s'\n",
                   F.Name.c_str(), Value.c_str());
      return false;
    }
    *static_cast<double *>(F.Storage) = V;
    return true;
  }
  case FlagKind::String:
    *static_cast<std::string *>(F.Storage) = Value;
    return true;
  case FlagKind::Bool:
    if (Value == "true" || Value == "1") {
      *static_cast<bool *>(F.Storage) = true;
      return true;
    }
    if (Value == "false" || Value == "0") {
      *static_cast<bool *>(F.Storage) = false;
      return true;
    }
    std::fprintf(stderr, "error: flag --%s expects true/false, got '%s'\n",
                 F.Name.c_str(), Value.c_str());
    return false;
  }
  return false;
}

bool ArgParser::parse(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      // Short flags: `-v` matches a registered one-character flag. The
      // alpha guard keeps negative-number positionals (e.g. `-3`) intact.
      if (Arg.size() == 2 && Arg[0] == '-' &&
          std::isalpha(static_cast<unsigned char>(Arg[1])) &&
          findFlag(Arg.substr(1))) {
        Flag *F = findFlag(Arg.substr(1));
        if (F->Kind == FlagKind::Bool) {
          *static_cast<bool *>(F->Storage) = true;
          continue;
        }
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "error: flag -%s requires a value\n",
                       F->Name.c_str());
          return false;
        }
        if (!assign(*F, Argv[++I]))
          return false;
        continue;
      }
      Positionals.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    if (Body == "help") {
      std::fputs(usage().c_str(), stderr);
      return false;
    }
    std::string Name = Body;
    std::string Value;
    bool HasValue = false;
    size_t Eq = Body.find('=');
    if (Eq != std::string::npos) {
      Name = Body.substr(0, Eq);
      Value = Body.substr(Eq + 1);
      HasValue = true;
    }
    Flag *F = findFlag(Name);
    if (!F) {
      std::fprintf(stderr, "error: unknown flag --%s\n%s", Name.c_str(),
                   usage().c_str());
      return false;
    }
    if (!HasValue) {
      // Boolean switches may omit the value; everything else consumes the
      // next argument.
      if (F->Kind == FlagKind::Bool) {
        *static_cast<bool *>(F->Storage) = true;
        continue;
      }
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: flag --%s requires a value\n",
                     Name.c_str());
        return false;
      }
      Value = Argv[++I];
    }
    if (!assign(*F, Value))
      return false;
  }
  return true;
}

std::string ArgParser::usage() const {
  std::ostringstream OS;
  OS << Description << "\n\nFlags:\n";
  for (const Flag &F : Flags) {
    OS << (F.Name.size() == 1 ? "  -" : "  --") << F.Name;
    switch (F.Kind) {
    case FlagKind::Int:
      OS << " <int>";
      break;
    case FlagKind::Double:
      OS << " <num>";
      break;
    case FlagKind::String:
      OS << " <str>";
      break;
    case FlagKind::Bool:
      OS << " [bool]";
      break;
    }
    OS << "\n      " << F.Help << "\n";
  }
  OS << "  --help\n      Print this message.\n";
  return OS.str();
}
