//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-rolled RTTI scheme in the style of llvm/Support/Casting.h. A class
/// hierarchy participates by exposing a `static bool classof(const Base *)`
/// predicate on each derived class; `isa<>`, `cast<>`, and `dyn_cast<>` then
/// work without enabling C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_SUPPORT_CASTING_H
#define IPAS_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace ipas {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const overload.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (returns false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates a null pointer (propagates it).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace ipas

#endif // IPAS_SUPPORT_CASTING_H
