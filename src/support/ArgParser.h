//===- support/ArgParser.h - Minimal command-line flag parsing -----------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small `--flag value` / `--flag=value` / `--switch` parser shared by the
/// benchmark harnesses and example tools. One-character flags also match
/// with a single dash (`-v`, `-q`). Unknown flags are reported and
/// cause parse() to fail so that typos do not silently change experiments.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_SUPPORT_ARGPARSER_H
#define IPAS_SUPPORT_ARGPARSER_H

#include <cstdint>
#include <string>
#include <vector>

namespace ipas {

/// Registers typed flags bound to caller-owned storage, then parses argv.
class ArgParser {
public:
  explicit ArgParser(std::string ProgramDescription)
      : Description(std::move(ProgramDescription)) {}

  void addInt(const std::string &Name, int64_t *Storage,
              const std::string &Help);
  void addDouble(const std::string &Name, double *Storage,
                 const std::string &Help);
  void addString(const std::string &Name, std::string *Storage,
                 const std::string &Help);
  void addBool(const std::string &Name, bool *Storage,
               const std::string &Help);

  /// Parses argv; returns false (after printing a message to stderr) on an
  /// unknown flag, a missing value, or a malformed number. `--help` prints
  /// usage and returns false as well.
  bool parse(int Argc, const char *const *Argv);

  /// Positional (non-flag) arguments encountered during parse().
  const std::vector<std::string> &positionals() const { return Positionals; }

  /// Renders the usage/help text.
  std::string usage() const;

private:
  enum class FlagKind { Int, Double, String, Bool };
  struct Flag {
    std::string Name;
    FlagKind Kind;
    void *Storage;
    std::string Help;
  };

  Flag *findFlag(const std::string &Name);
  bool assign(Flag &F, const std::string &Value);

  std::string Description;
  std::vector<Flag> Flags;
  std::vector<std::string> Positionals;
};

} // namespace ipas

#endif // IPAS_SUPPORT_ARGPARSER_H
