//===- support/Statistics.h - Summary statistics helpers -----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistics utilities used by the evaluation harness: running
/// mean/variance, and the margin of error for proportions estimated by
/// statistical fault injection (paper §5.4).
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_SUPPORT_STATISTICS_H
#define IPAS_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace ipas {

/// Accumulates a stream of samples and reports mean / variance / extrema
/// using Welford's numerically stable update.
class RunningStat {
public:
  void add(double X);

  size_t count() const { return N; }
  double mean() const { return N ? Mean : 0.0; }
  /// Unbiased sample variance; zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return N ? Min : 0.0; }
  double max() const { return N ? Max : 0.0; }

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Margin of error (half-width of the confidence interval) for a proportion
/// \p P estimated from \p N fault-injection samples, using the normal
/// approximation the paper assumes (§5.4). \p Confidence is e.g. 0.95.
double proportionMarginOfError(double P, size_t N, double Confidence = 0.95);

/// Two-sided z critical value for the given confidence level, computed by
/// inverting the standard normal CDF (Acklam's rational approximation).
double zCriticalValue(double Confidence);

/// Arithmetic mean of \p Xs; zero when empty.
double mean(const std::vector<double> &Xs);

/// Unbiased sample standard deviation of \p Xs; zero for fewer than two.
double sampleStddev(const std::vector<double> &Xs);

/// Euclidean distance between (X1, Y1) and (X2, Y2); used by the
/// ideal-point best-configuration criterion (paper §6.3).
double euclideanDistance(double X1, double Y1, double X2, double Y2);

} // namespace ipas

#endif // IPAS_SUPPORT_STATISTICS_H
