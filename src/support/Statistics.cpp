//===- support/Statistics.cpp ---------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <cassert>
#include <cmath>

using namespace ipas;

void RunningStat::add(double X) {
  ++N;
  if (N == 1) {
    Mean = Min = Max = X;
    M2 = 0.0;
    return;
  }
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
  if (X < Min)
    Min = X;
  if (X > Max)
    Max = X;
}

double RunningStat::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

/// Inverse standard normal CDF via Acklam's rational approximation,
/// accurate to ~1e-9 over (0, 1).
static double inverseNormalCdf(double P) {
  assert(P > 0.0 && P < 1.0 && "probability must be in (0, 1)");
  static const double A[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double B[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double C[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double D[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double PLow = 0.02425;
  const double PHigh = 1.0 - PLow;

  if (P < PLow) {
    double Q = std::sqrt(-2.0 * std::log(P));
    return (((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
            C[5]) /
           ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1.0);
  }
  if (P > PHigh) {
    double Q = std::sqrt(-2.0 * std::log(1.0 - P));
    return -(((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
             C[5]) /
           ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1.0);
  }
  double Q = P - 0.5;
  double R = Q * Q;
  return (((((A[0] * R + A[1]) * R + A[2]) * R + A[3]) * R + A[4]) * R +
          A[5]) *
         Q /
         (((((B[0] * R + B[1]) * R + B[2]) * R + B[3]) * R + B[4]) * R + 1.0);
}

double ipas::zCriticalValue(double Confidence) {
  assert(Confidence > 0.0 && Confidence < 1.0 && "confidence in (0, 1)");
  return inverseNormalCdf(0.5 + Confidence / 2.0);
}

double ipas::proportionMarginOfError(double P, size_t N, double Confidence) {
  if (N == 0)
    return 1.0;
  double Z = zCriticalValue(Confidence);
  return Z * std::sqrt(P * (1.0 - P) / static_cast<double>(N));
}

double ipas::mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

double ipas::sampleStddev(const std::vector<double> &Xs) {
  if (Xs.size() < 2)
    return 0.0;
  double M = mean(Xs);
  double Sum = 0.0;
  for (double X : Xs)
    Sum += (X - M) * (X - M);
  return std::sqrt(Sum / static_cast<double>(Xs.size() - 1));
}

double ipas::euclideanDistance(double X1, double Y1, double X2, double Y2) {
  double DX = X1 - X2;
  double DY = Y1 - Y2;
  return std::sqrt(DX * DX + DY * DY);
}
