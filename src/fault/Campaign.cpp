//===- fault/Campaign.cpp ------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fault/Campaign.h"

#include "fault/Propagation.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace ipas;

const char *ipas::outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Crash:
    return "crash";
  case Outcome::Hang:
    return "hang";
  case Outcome::Detected:
    return "detected";
  case Outcome::Masked:
    return "masked";
  case Outcome::SOC:
    return "soc";
  }
  return "<bad outcome>";
}

Outcome ipas::classifyOutcome(const ExecutionRecord &R) {
  switch (R.Status) {
  case RunStatus::Trapped:
    return Outcome::Crash;
  case RunStatus::OutOfSteps:
    return Outcome::Hang;
  case RunStatus::Detected:
    return Outcome::Detected;
  case RunStatus::Finished:
    return R.OutputValid ? Outcome::Masked : Outcome::SOC;
  case RunStatus::Running:
  case RunStatus::Blocked:
    break;
  }
  assert(false && "execution ended in a non-terminal state");
  return Outcome::Crash;
}

namespace {

/// Pre-resolved metric handles (name lookup once per process).
struct FaultMetrics {
  obs::Counter &Campaigns;
  obs::Counter &Runs;
  obs::Counter &PrunedRuns;
  obs::Counter *ByOutcome[NumOutcomes];
  obs::Histogram &RunMicros;
  obs::Gauge &RunsPerSec;

  static FaultMetrics &get() {
    auto &Reg = obs::MetricsRegistry::global();
    static FaultMetrics M{
        Reg.counter("fault.campaigns"),
        Reg.counter("fault.runs"),
        Reg.counter("fault.pruned_runs"),
        {
            &Reg.counter("fault.outcome.crash"),
            &Reg.counter("fault.outcome.hang"),
            &Reg.counter("fault.outcome.detected"),
            &Reg.counter("fault.outcome.masked"),
            &Reg.counter("fault.outcome.soc"),
        },
        Reg.histogram("fault.run_micros"),
        Reg.gauge("fault.campaign.runs_per_sec"),
    };
    return M;
  }
};

} // namespace

CampaignResult ipas::runCampaign(ProgramHarness &Harness,
                                 const ModuleLayout &Layout,
                                 const CampaignConfig &Cfg) {
  CampaignResult Result;

  const char *Label = Cfg.Label.empty() ? "campaign" : Cfg.Label.c_str();
  obs::PhaseSpan Span("campaign",
                      obs::AttrSet().add("label", Label));

  // Select the execution engine before the first run so the golden
  // output and clean step counts come from the same backend as the
  // injection loop (they are equal across backends by construction, but
  // the VM compiles lazily on first execute — doing that here, on the
  // serial clean run, keeps the threaded loop below race-free).
  Harness.setPreferredBackend(Cfg.Backend);

  // Clean profiling run: establishes the golden step counts and checks the
  // program is correct to begin with.
  ExecutionRecord Clean = Harness.execute(Layout, nullptr, UINT64_MAX);
  if (Clean.Status != RunStatus::Finished || !Clean.OutputValid) {
    obs::logMessage(obs::Severity::Error,
                    "fatal: clean run failed (%s) — refusing to inject "
                    "faults into a broken program",
                    runStatusName(Clean.Status));
    std::abort();
  }
  Result.CleanSteps = Clean.Steps;
  Result.CleanValueSteps = Clean.ValueSteps;
  Result.CleanCriticalPathCycles = Clean.CriticalPathCycles;

  uint64_t Budget = static_cast<uint64_t>(
      Cfg.HangFactor * static_cast<double>(Clean.Steps));
  if (Budget < Clean.Steps + 1000)
    Budget = Clean.Steps + 1000;

  // Everything needed to re-run this campaign bit-identically lives in
  // this one event (plus the harness identity the driver records in the
  // trace header): seed, run count, hang budget, and the prune decision.
  obs::TraceSink::event(
      "campaign.begin",
      obs::AttrSet()
          .add("label", Label)
          .addHex("seed", Cfg.Seed)
          .add("runs", static_cast<uint64_t>(Cfg.NumRuns))
          .add("hang_factor", Cfg.HangFactor)
          .add("threads", Cfg.NumThreads)
          .add("backend", Cfg.Backend == ExecBackend::Vm ? "vm" : "interp")
          .add("prune", Cfg.ProvablyBenign != nullptr)
          .add("clean_steps", Clean.Steps)
          .add("clean_value_steps", Clean.ValueSteps));

  // Draw every plan up front so results do not depend on the thread
  // count or scheduling.
  Rng CampaignRng(Cfg.Seed);
  std::vector<FaultPlan> Plans(Cfg.NumRuns);
  for (FaultPlan &Plan : Plans) {
    Plan.TargetValueStep = CampaignRng.nextBelow(Clean.ValueSteps);
    Plan.BitDraw = CampaignRng.next();
  }

  // Injection-site pruning: a clean traced run maps each dynamic value
  // step to its static instruction. Plans whose target the static
  // SOC-propagation analysis proved benign are classified Masked without
  // executing — the outcome the execution would produce, since by
  // construction the corruption reaches no store, call, return, branch,
  // check, or trap-capable use. Decisions are made up front so the
  // threaded loop below stays race-free.
  std::vector<unsigned> Trace;
  std::vector<char> Pruned(Cfg.NumRuns, 0);
  if (Cfg.ProvablyBenign) {
    Trace = Harness.traceValueSteps(Layout);
    if (Trace.size() == Clean.ValueSteps) {
      std::vector<char> SiteSeen(Cfg.ProvablyBenign->size(), 0);
      for (size_t Run = 0; Run != Cfg.NumRuns; ++Run) {
        unsigned Id = Trace[Plans[Run].TargetValueStep];
        if (Id < Cfg.ProvablyBenign->size() && (*Cfg.ProvablyBenign)[Id]) {
          Pruned[Run] = 1;
          ++Result.PrunedRuns;
          if (!SiteSeen[Id]) {
            SiteSeen[Id] = 1;
            ++Result.PrunedSites;
          }
        }
      }
    }
  }

  const bool Stats = obs::statsEnabled();
  const bool TraceRuns = Cfg.TraceRuns && obs::TraceSink::enabled();
  size_t Every = Cfg.ProgressEvery ? Cfg.ProgressEvery : Cfg.NumRuns / 10;
  if (Every == 0)
    Every = 1;
  std::atomic<size_t> Done{0};
  const uint64_t LoopStartUs = obs::monotonicMicros();

  Result.Records.assign(Cfg.NumRuns, InjectionRecord());
  auto RunOne = [&](size_t Run) {
    const FaultPlan &Plan = Plans[Run];
    InjectionRecord &Rec = Result.Records[Run];
    if (Pruned[Run]) {
      Rec.InstructionId = Trace[Plan.TargetValueStep];
      Rec.BitIndex = static_cast<unsigned>(Plan.BitDraw % 64);
      Rec.TargetValueStep = Plan.TargetValueStep;
      Rec.Result = Outcome::Masked;
    } else {
      uint64_t T0 = obs::monotonicMicros();
      ExecutionRecord R = Harness.execute(Layout, &Plan, Budget);
      uint64_t Us = obs::monotonicMicros() - T0;
      assert((R.Status != RunStatus::Finished || R.FaultInjected) &&
             "the clean prefix must always reach the target step");
      Rec.InstructionId = R.FaultedInstructionId;
      Rec.BitIndex = static_cast<unsigned>(Plan.BitDraw % 64);
      Rec.TargetValueStep = Plan.TargetValueStep;
      Rec.Result = classifyOutcome(R);
      Rec.LatencyUs =
          Us > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(Us);
      if (Stats) {
        FaultMetrics::get().RunMicros.observe(Us);
        if (TraceRuns)
          obs::TraceSink::event(
              "campaign.run",
              obs::AttrSet()
                  .add("label", Label)
                  .add("run", static_cast<uint64_t>(Run))
                  .add("inst", Rec.InstructionId)
                  .add("bit", Rec.BitIndex)
                  .add("outcome", outcomeName(Rec.Result))
                  .add("us", Us));
      }
    }
    size_t Finished = Done.fetch_add(1, std::memory_order_relaxed) + 1;
    // Rate-limited progress (every `Every` runs, never at completion —
    // the campaign.done event covers that). Throughput and ETA derive
    // from the loop clock and go through the metrics registry, so any
    // concurrent exporter sees the same numbers the log line prints.
    if (Finished % Every == 0 && Finished != Cfg.NumRuns) {
      double Elapsed =
          static_cast<double>(obs::monotonicMicros() - LoopStartUs) * 1e-6;
      double Rate = Elapsed > 0 ? static_cast<double>(Finished) / Elapsed
                                : 0.0;
      if (Stats)
        FaultMetrics::get().RunsPerSec.set(Rate);
      double EtaS =
          Rate > 0 ? static_cast<double>(Cfg.NumRuns - Finished) / Rate
                   : 0.0;
      if (obs::logEnabled(obs::Severity::Info))
        obs::logMessage(obs::Severity::Info,
                        "%s: %zu/%zu runs  %.0f runs/s  eta %.1fs", Label,
                        Finished, Cfg.NumRuns, Rate, EtaS);
      obs::TraceSink::event("campaign.progress",
                            obs::AttrSet()
                                .add("label", Label)
                                .add("done", static_cast<uint64_t>(Finished))
                                .add("runs",
                                     static_cast<uint64_t>(Cfg.NumRuns))
                                .add("runs_per_sec", Rate)
                                .add("eta_seconds", EtaS));
    }
  };

  unsigned Threads = Cfg.NumThreads;
  if (Threads <= 1 || Cfg.NumRuns < 2 * Threads) {
    for (size_t Run = 0; Run != Cfg.NumRuns; ++Run)
      RunOne(Run);
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back([&, T] {
        for (size_t Run = T; Run < Cfg.NumRuns; Run += Threads)
          RunOne(Run);
      });
    for (std::thread &Th : Pool)
      Th.join();
  }

  for (const InjectionRecord &Rec : Result.Records)
    ++Result.Counts[static_cast<size_t>(Rec.Result)];

  // Propagation tracing: a *serial* post-pass re-executing the sampled
  // runs under full observation, inside the campaign span (so the
  // per-injection `campaign.prop` child spans nest laminarly under it).
  // Running after the injection loop keeps the deterministic record
  // stream untouched by construction: the plans are already drawn and
  // classified, and the traced executions are independent repeats.
  if (Cfg.PropSampleEvery) {
    if (Harness.supportsObservation()) {
      CleanReference Ref = captureCleanReference(Harness, Layout);
      if (Ref.Valid) {
        for (size_t Run = 0; Run < Cfg.NumRuns;
             Run += Cfg.PropSampleEvery) {
          if (Pruned[Run])
            continue; // provably benign: nothing propagates, by proof
          obs::PhaseSpan PropSpan(
              "campaign.prop",
              obs::AttrSet().add("label", Label).add(
                  "run", static_cast<uint64_t>(Run)));
          Result.PropRecords.push_back(tracePropagation(
              Harness, Layout, Ref, Plans[Run], Budget, Run));
        }
        Result.TracedRuns = Result.PropRecords.size();
      } else {
        obs::logMessage(obs::Severity::Warn,
                        "%s: propagation tracing disabled: clean "
                        "reference capture failed",
                        Label);
      }
    } else {
      obs::logMessage(obs::Severity::Warn,
                      "%s: propagation tracing requested but the harness "
                      "does not support observation",
                      Label);
    }
    Result.SkippedTraceRuns = Cfg.NumRuns - Result.TracedRuns;
    // Sampling must never be silent: say what was traced and what was
    // not, in the log and in the trace.
    obs::logMessage(obs::Severity::Info,
                    "%s: propagation tracing: %zu of %zu injections "
                    "traced (1 in %zu sampled), %zu skipped",
                    Label, Result.TracedRuns, Cfg.NumRuns,
                    Cfg.PropSampleEvery, Result.SkippedTraceRuns);
    obs::TraceSink::event(
        "campaign.prop.sample",
        obs::AttrSet()
            .add("label", Label)
            .add("sample_every",
                 static_cast<uint64_t>(Cfg.PropSampleEvery))
            .add("traced", static_cast<uint64_t>(Result.TracedRuns))
            .add("skipped",
                 static_cast<uint64_t>(Result.SkippedTraceRuns)));
  }

  Result.WallSeconds = Span.seconds();

  if (Stats) {
    FaultMetrics &M = FaultMetrics::get();
    M.Campaigns.inc();
    M.Runs.inc(Cfg.NumRuns);
    M.PrunedRuns.inc(Result.PrunedRuns);
    for (size_t O = 0; O != NumOutcomes; ++O)
      M.ByOutcome[O]->inc(Result.Counts[O]);
  }
  obs::AttrSet DoneAttrs;
  DoneAttrs.add("label", Label)
      .add("runs", static_cast<uint64_t>(Cfg.NumRuns))
      .add("pruned", static_cast<uint64_t>(Result.PrunedRuns))
      .add("seconds", Result.WallSeconds);
  for (size_t O = 0; O != NumOutcomes; ++O)
    DoneAttrs.add(outcomeName(static_cast<Outcome>(O)),
                  static_cast<uint64_t>(Result.Counts[O]));
  obs::TraceSink::event("campaign.done", DoneAttrs);
  Span.addAttr(DoneAttrs);
  return Result;
}
