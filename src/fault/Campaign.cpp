//===- fault/Campaign.cpp ------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fault/Campaign.h"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace ipas;

const char *ipas::outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Crash:
    return "crash";
  case Outcome::Hang:
    return "hang";
  case Outcome::Detected:
    return "detected";
  case Outcome::Masked:
    return "masked";
  case Outcome::SOC:
    return "soc";
  }
  return "<bad outcome>";
}

Outcome ipas::classifyOutcome(const ExecutionRecord &R) {
  switch (R.Status) {
  case RunStatus::Trapped:
    return Outcome::Crash;
  case RunStatus::OutOfSteps:
    return Outcome::Hang;
  case RunStatus::Detected:
    return Outcome::Detected;
  case RunStatus::Finished:
    return R.OutputValid ? Outcome::Masked : Outcome::SOC;
  case RunStatus::Running:
  case RunStatus::Blocked:
    break;
  }
  assert(false && "execution ended in a non-terminal state");
  return Outcome::Crash;
}

CampaignResult ipas::runCampaign(ProgramHarness &Harness,
                                 const ModuleLayout &Layout,
                                 const CampaignConfig &Cfg) {
  CampaignResult Result;

  // Clean profiling run: establishes the golden step counts and checks the
  // program is correct to begin with.
  ExecutionRecord Clean = Harness.execute(Layout, nullptr, UINT64_MAX);
  if (Clean.Status != RunStatus::Finished || !Clean.OutputValid) {
    std::fprintf(stderr,
                 "fatal: clean run failed (%s) — refusing to inject faults "
                 "into a broken program\n",
                 runStatusName(Clean.Status));
    std::abort();
  }
  Result.CleanSteps = Clean.Steps;
  Result.CleanValueSteps = Clean.ValueSteps;
  Result.CleanCriticalPathCycles = Clean.CriticalPathCycles;

  uint64_t Budget = static_cast<uint64_t>(
      Cfg.HangFactor * static_cast<double>(Clean.Steps));
  if (Budget < Clean.Steps + 1000)
    Budget = Clean.Steps + 1000;

  // Draw every plan up front so results do not depend on the thread
  // count or scheduling.
  Rng CampaignRng(Cfg.Seed);
  std::vector<FaultPlan> Plans(Cfg.NumRuns);
  for (FaultPlan &Plan : Plans) {
    Plan.TargetValueStep = CampaignRng.nextBelow(Clean.ValueSteps);
    Plan.BitDraw = CampaignRng.next();
  }

  // Injection-site pruning: a clean traced run maps each dynamic value
  // step to its static instruction. Plans whose target the static
  // SOC-propagation analysis proved benign are classified Masked without
  // executing — the outcome the execution would produce, since by
  // construction the corruption reaches no store, call, return, branch,
  // check, or trap-capable use. Decisions are made up front so the
  // threaded loop below stays race-free.
  std::vector<unsigned> Trace;
  std::vector<char> Pruned(Cfg.NumRuns, 0);
  if (Cfg.ProvablyBenign) {
    Trace = Harness.traceValueSteps(Layout);
    if (Trace.size() == Clean.ValueSteps) {
      std::vector<char> SiteSeen(Cfg.ProvablyBenign->size(), 0);
      for (size_t Run = 0; Run != Cfg.NumRuns; ++Run) {
        unsigned Id = Trace[Plans[Run].TargetValueStep];
        if (Id < Cfg.ProvablyBenign->size() && (*Cfg.ProvablyBenign)[Id]) {
          Pruned[Run] = 1;
          ++Result.PrunedRuns;
          if (!SiteSeen[Id]) {
            SiteSeen[Id] = 1;
            ++Result.PrunedSites;
          }
        }
      }
    }
  }

  Result.Records.assign(Cfg.NumRuns, InjectionRecord());
  auto RunOne = [&](size_t Run) {
    const FaultPlan &Plan = Plans[Run];
    if (Pruned[Run]) {
      InjectionRecord &Rec = Result.Records[Run];
      Rec.InstructionId = Trace[Plan.TargetValueStep];
      Rec.BitIndex = static_cast<unsigned>(Plan.BitDraw % 64);
      Rec.TargetValueStep = Plan.TargetValueStep;
      Rec.Result = Outcome::Masked;
      return;
    }
    ExecutionRecord R = Harness.execute(Layout, &Plan, Budget);
    assert((R.Status != RunStatus::Finished || R.FaultInjected) &&
           "the clean prefix must always reach the target step");
    InjectionRecord &Rec = Result.Records[Run];
    Rec.InstructionId = R.FaultedInstructionId;
    Rec.BitIndex = static_cast<unsigned>(Plan.BitDraw % 64);
    Rec.TargetValueStep = Plan.TargetValueStep;
    Rec.Result = classifyOutcome(R);
  };

  unsigned Threads = Cfg.NumThreads;
  if (Threads <= 1 || Cfg.NumRuns < 2 * Threads) {
    for (size_t Run = 0; Run != Cfg.NumRuns; ++Run)
      RunOne(Run);
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back([&, T] {
        for (size_t Run = T; Run < Cfg.NumRuns; Run += Threads)
          RunOne(Run);
      });
    for (std::thread &Th : Pool)
      Th.join();
  }

  for (const InjectionRecord &Rec : Result.Records)
    ++Result.Counts[static_cast<size_t>(Rec.Result)];
  return Result;
}
