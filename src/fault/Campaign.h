//===- fault/Campaign.h - Statistical fault injection (paper §4.1, §5.4) --===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistical fault injection in the FlipIt model: each run targets a
/// uniformly random dynamic instance of a value-producing instruction and
/// flips a uniformly random bit of its result value. Sampling dynamic
/// instances weights static instructions by execution frequency, exactly
/// like injecting at a random cycle of a real execution.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_FAULT_CAMPAIGN_H
#define IPAS_FAULT_CAMPAIGN_H

#include "fault/Outcome.h"
#include "fault/ProgramHarness.h"
#include "obs/Propagation.h"
#include "support/Random.h"

#include <array>
#include <vector>

namespace ipas {

struct CampaignConfig {
  size_t NumRuns = 1024;
  /// A run exceeding HangFactor x clean-run steps is classified as a hang
  /// ("substantially longer execution time", §5.5).
  double HangFactor = 10.0;
  uint64_t Seed = 0xf417;
  /// Injection runs are independent, so campaigns parallelize trivially —
  /// the paper (§7) suggests exactly this for large codes. Plans are
  /// drawn up front, so results are deterministic regardless of the
  /// thread count. Harnesses must be thread-safe for concurrent
  /// execute() calls once their golden output is captured (the bundled
  /// WorkloadHarness is).
  unsigned NumThreads = 1;
  /// Per-instruction-id flags from analysis/SocPropagation: a true entry
  /// means a corruption of that instruction's result provably reaches no
  /// sink, so the run's outcome is Masked without executing. Pruning does
  /// not perturb plan drawing or non-pruned runs in any way — the full
  /// campaign's per-record (InstructionId, BitIndex, Result) stream stays
  /// bit-identical. Requires a harness that supports traceValueSteps();
  /// null (or an unsupported harness) disables pruning.
  const std::vector<bool> *ProvablyBenign = nullptr;
  /// Telemetry label carried on every trace record and progress line —
  /// drivers pass the technique/variant name (empty means "campaign").
  /// Together with Seed and ProvablyBenign it is recorded in the
  /// `campaign.begin` trace event, so a campaign is reproducible from
  /// its trace file alone.
  std::string Label;
  /// Emit a progress log line (Info severity, so -q silences it) and
  /// trace event every N completed runs; 0 picks one tenth of the
  /// campaign.
  size_t ProgressEvery = 0;
  /// Emit one `campaign.run` trace record (outcome + latency) per
  /// injection when a trace sink is open.
  bool TraceRuns = true;
  /// Execution engine for the clean run and the injection loop. Vm asks
  /// the harness to run on the bytecode VM (10-100x faster, observably
  /// equivalent — see DESIGN.md); harnesses that cannot honor it fall
  /// back to the interpreter per run, and hook-dependent paths
  /// (traceValueSteps, propagation re-execution) always use the
  /// interpreter. The record stream is bit-identical either way.
  ExecBackend Backend = ExecBackend::Interp;
  /// Propagation tracing: every PropSampleEvery-th run (run indices with
  /// `Run % PropSampleEvery == 0`, skipping pruned runs) is re-executed
  /// under full observation after the injection loop, yielding one
  /// obs::PropRecord in CampaignResult::PropRecords. 0 disables tracing.
  /// Sampling is a pure function of the run index — it draws nothing
  /// from the campaign RNG and the traced runs are separate
  /// re-executions — so the (InstructionId, BitIndex, Result) record
  /// stream is bit-identical with tracing on or off and for any
  /// NumThreads. Requires a harness whose supportsObservation() is true;
  /// ignored otherwise.
  size_t PropSampleEvery = 0;
};

/// One injection and its classified outcome.
struct InjectionRecord {
  unsigned InstructionId = 0; ///< Static instruction whose result was hit.
  unsigned BitIndex = 0;      ///< Bit flipped (modulo the result width).
  uint64_t TargetValueStep = 0;
  Outcome Result = Outcome::Masked;
  /// Wall time of this injected run in microseconds (0 for pruned runs).
  /// Measured unconditionally — two clock reads per run — and persisted
  /// into the record store; not part of the deterministic record stream.
  uint32_t LatencyUs = 0;
};

struct CampaignResult {
  uint64_t CleanSteps = 0;
  uint64_t CleanValueSteps = 0;
  uint64_t CleanCriticalPathCycles = 0;
  std::vector<InjectionRecord> Records;
  std::array<size_t, NumOutcomes> Counts{};
  /// Injection-site pruning statistics (zero when pruning was disabled).
  size_t PrunedRuns = 0;  ///< Runs classified without executing.
  size_t PrunedSites = 0; ///< Distinct benign static instructions hit.
  /// Wall-clock duration of the whole campaign, including the clean
  /// profiling run (not serialized by the results cache).
  double WallSeconds = 0.0;
  /// Propagation traces of the sampled runs, in run order (empty unless
  /// CampaignConfig::PropSampleEvery was set and the harness supports
  /// observation). Not part of the deterministic record stream.
  std::vector<obs::PropRecord> PropRecords;
  /// Injections traced (== PropRecords.size()) vs skipped by sampling,
  /// pruning, or an unobservable harness.
  size_t TracedRuns = 0;
  size_t SkippedTraceRuns = 0;

  size_t count(Outcome O) const {
    return Counts[static_cast<size_t>(O)];
  }
  /// Total classified runs (equals Records.size() unless the result was
  /// restored from a cache, which keeps only the counts).
  size_t totalRuns() const {
    size_t Total = 0;
    for (size_t C : Counts)
      Total += C;
    return Total;
  }
  double fraction(Outcome O) const {
    size_t Total = totalRuns();
    return Total ? static_cast<double>(count(O)) /
                       static_cast<double>(Total)
                 : 0.0;
  }
};

/// Classifies a finished/failed execution into the paper's taxonomy.
Outcome classifyOutcome(const ExecutionRecord &R);

/// Runs a clean profiling run followed by \p Cfg.NumRuns injections.
/// Aborts (assert) if the clean run itself fails verification — the
/// program under test must be correct before injecting faults.
CampaignResult runCampaign(ProgramHarness &Harness,
                           const ModuleLayout &Layout,
                           const CampaignConfig &Cfg);

} // namespace ipas

#endif // IPAS_FAULT_CAMPAIGN_H
