//===- fault/ProgramHarness.h - Abstract injectable program ---------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign driver is generic over the program under test. A harness
/// knows how to set a program up (allocate buffers, pass arguments), run
/// it under a given fault plan, and verify its output — the
/// application-specific verification routine of the paper's Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_FAULT_PROGRAMHARNESS_H
#define IPAS_FAULT_PROGRAMHARNESS_H

#include "interp/Interpreter.h"

namespace ipas {

class CostProfiler; // interp/CostProfiler.h

/// Result of one (possibly fault-injected) execution.
struct ExecutionRecord {
  RunStatus Status = RunStatus::Finished;
  TrapKind Trap = TrapKind::None;
  uint64_t Steps = 0;
  uint64_t ValueSteps = 0;
  uint64_t CriticalPathCycles = 0; ///< steps + comm cost (parallel runs).
  bool FaultInjected = false;
  unsigned FaultedInstructionId = 0;
  /// Verification verdict; meaningful only when Status == Finished.
  bool OutputValid = false;
};

/// Which execution engine a harness should use for plain execute()
/// calls. Interp is the reference tree-walking interpreter; Vm is the
/// threaded-code bytecode VM (vm/VM.h), observably equivalent but much
/// faster on campaign workloads. Runs that need interpreter hooks
/// (observers, profilers, value-step traces) always use the
/// interpreter regardless of this setting.
enum class ExecBackend : uint8_t { Interp, Vm };

/// One program + input + verification routine, executable under fault
/// injection. Implementations live in src/workloads.
class ProgramHarness {
public:
  virtual ~ProgramHarness() = default;

  /// Requests an execution backend for subsequent execute() calls. A
  /// harness that cannot honor the request (no VM support, or the
  /// module does not compile to bytecode) silently keeps using the
  /// interpreter — the backends are observably equivalent, so this is
  /// purely a throughput hint. The default ignores it.
  virtual void setPreferredBackend(ExecBackend Backend) { (void)Backend; }

  /// Executes once. \p Plan may be null (clean run). \p StepBudget bounds
  /// execution (hang detection); pass UINT64_MAX for unbounded.
  virtual ExecutionRecord execute(const ModuleLayout &Layout,
                                  const FaultPlan *Plan,
                                  uint64_t StepBudget) = 0;

  /// Runs one clean execution and returns, per dynamic value step, the id
  /// of the static instruction that produced it (so Trace[k] is the
  /// injection target of a plan with TargetValueStep == k). An empty
  /// vector means the harness does not support tracing; the campaign
  /// driver then disables injection-site pruning. The default does exactly
  /// that.
  virtual std::vector<unsigned> traceValueSteps(const ModuleLayout &Layout) {
    (void)Layout;
    return {};
  }

  /// True when executeObserved() actually attaches the observer. The
  /// campaign driver only offers propagation tracing on harnesses that
  /// return true (multi-rank workloads, for instance, do not).
  virtual bool supportsObservation() const { return false; }

  /// Executes once with \p Obs attached to the interpreter, receiving
  /// every value commit, memory access, and control decision of the run.
  /// The default ignores the observer and delegates to execute().
  virtual ExecutionRecord executeObserved(const ModuleLayout &Layout,
                                          const FaultPlan *Plan,
                                          uint64_t StepBudget,
                                          ExecObserver &Obs) {
    (void)Obs;
    return execute(Layout, Plan, StepBudget);
  }

  /// True when executeProfiled() actually arms the profiler. The profile
  /// builder (fault/ProfileBuild.h) refuses harnesses that return false
  /// rather than writing an empty store.
  virtual bool supportsProfiling() const { return false; }

  /// Runs one *clean* (no fault plan, unbounded) execution with \p Prof
  /// attached to the interpreter's site-count hook (and observer slot
  /// when the profiler's mode needs it). The default ignores the
  /// profiler and delegates to execute().
  virtual ExecutionRecord executeProfiled(const ModuleLayout &Layout,
                                          CostProfiler &Prof) {
    (void)Prof;
    return execute(Layout, nullptr, UINT64_MAX);
  }
};

} // namespace ipas

#endif // IPAS_FAULT_PROGRAMHARNESS_H
