//===- fault/FunctionHarness.cpp ----------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fault/FunctionHarness.h"

#include "interp/CostProfiler.h"
#include "ir/Module.h"

using namespace ipas;

ExecutionRecord FunctionHarness::execute(const ModuleLayout &Layout,
                                         const FaultPlan *Plan,
                                         uint64_t StepBudget) {
  if (Backend == ExecBackend::Vm && vmProgram(Layout))
    return runOnceVm(Layout, Plan, StepBudget);
  return runOnce(Layout, Plan, StepBudget, nullptr);
}

const vm::VmProgram *FunctionHarness::vmProgram(const ModuleLayout &Layout) {
  std::lock_guard<std::mutex> Lock(VmMutex);
  if (VmLayout != &Layout) {
    VmLayout = &Layout;
    VmPool.clear();
    VmProg = vm::compile(Layout);
    if (VmProg) {
      VmEntryIndex = VmProg->indexOf(Entry);
      if (VmEntryIndex == UINT32_MAX)
        VmProg.reset(); // entry missing: fall back to the interpreter
    }
  }
  return VmProg.get();
}

ExecutionRecord FunctionHarness::runOnceVm(const ModuleLayout &Layout,
                                           const FaultPlan *Plan,
                                           uint64_t StepBudget) {
  (void)Layout; // already baked into VmProg by vmProgram()
  // Borrow a context from the pool (one per concurrently running
  // thread); contexts are reusable because run() fully resets them.
  std::unique_ptr<vm::VmContext> Ctx;
  {
    std::lock_guard<std::mutex> Lock(VmMutex);
    if (!VmPool.empty()) {
      Ctx = std::move(VmPool.back());
      VmPool.pop_back();
    }
  }
  if (!Ctx)
    Ctx = std::make_unique<vm::VmContext>(*VmProg);

  vm::VmContext::Result V = Ctx->run(VmEntryIndex, Args, Plan, StepBudget);

  ExecutionRecord R;
  R.Status = V.Status;
  R.Trap = V.Trap;
  R.Steps = V.Steps;
  R.ValueSteps = V.ValueSteps;
  R.FaultInjected = V.FaultInjected;
  R.FaultedInstructionId = V.FaultedInstructionId;
  if (V.Status == RunStatus::Finished) {
    uint64_t Bits = V.ReturnValue.Bits;
    if (!HaveGolden) {
      GoldenBits = Bits;
      HaveGolden = true;
      R.OutputValid = true;
    } else {
      R.OutputValid = Bits == GoldenBits;
    }
  }

  {
    std::lock_guard<std::mutex> Lock(VmMutex);
    VmPool.push_back(std::move(Ctx));
  }
  return R;
}

ExecutionRecord FunctionHarness::executeObserved(const ModuleLayout &Layout,
                                                 const FaultPlan *Plan,
                                                 uint64_t StepBudget,
                                                 ExecObserver &Obs) {
  return runOnce(Layout, Plan, StepBudget, &Obs);
}

ExecutionRecord FunctionHarness::executeProfiled(const ModuleLayout &Layout,
                                                 CostProfiler &Prof) {
  return runOnce(Layout, nullptr, UINT64_MAX, nullptr, &Prof);
}

ExecutionRecord FunctionHarness::runOnce(const ModuleLayout &Layout,
                                         const FaultPlan *Plan,
                                         uint64_t StepBudget,
                                         ExecObserver *Obs,
                                         CostProfiler *Prof) {
  ExecutionContext Ctx(Layout);
  if (Plan)
    Ctx.setFaultPlan(*Plan);
  if (Obs)
    Ctx.setObserver(Obs);
  const Function *F = Layout.module().getFunction(Entry);
  assert(F && "harness entry function not found");
  if (Prof)
    Prof->attach(Ctx, F); // arms site counts (+observer when needed)
  Ctx.start(F, Args);
  RunStatus S = Ctx.run(StepBudget);

  ExecutionRecord R;
  R.Status = S;
  R.Trap = Ctx.trap();
  R.Steps = Ctx.steps();
  R.ValueSteps = Ctx.valueSteps();
  R.FaultInjected = Ctx.faultWasInjected();
  R.FaultedInstructionId = Ctx.faultedInstructionId();
  if (S == RunStatus::Finished) {
    uint64_t Bits = Ctx.returnValue().Bits;
    if (!HaveGolden) {
      GoldenBits = Bits;
      HaveGolden = true;
      R.OutputValid = true;
    } else {
      R.OutputValid = Bits == GoldenBits;
    }
  }
  return R;
}

std::vector<unsigned>
FunctionHarness::traceValueSteps(const ModuleLayout &Layout) {
  std::vector<unsigned> Trace;
  ExecutionContext Ctx(Layout);
  Ctx.setValueStepTrace(&Trace);
  Ctx.start(Layout.module().getFunction(Entry), Args);
  if (Ctx.run(UINT64_MAX) != RunStatus::Finished)
    Trace.clear(); // tracing failed: disable pruning rather than misprune
  return Trace;
}
