//===- fault/FunctionHarness.cpp ----------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fault/FunctionHarness.h"

#include "interp/CostProfiler.h"
#include "ir/Module.h"

using namespace ipas;

ExecutionRecord FunctionHarness::execute(const ModuleLayout &Layout,
                                         const FaultPlan *Plan,
                                         uint64_t StepBudget) {
  return runOnce(Layout, Plan, StepBudget, nullptr);
}

ExecutionRecord FunctionHarness::executeObserved(const ModuleLayout &Layout,
                                                 const FaultPlan *Plan,
                                                 uint64_t StepBudget,
                                                 ExecObserver &Obs) {
  return runOnce(Layout, Plan, StepBudget, &Obs);
}

ExecutionRecord FunctionHarness::executeProfiled(const ModuleLayout &Layout,
                                                 CostProfiler &Prof) {
  return runOnce(Layout, nullptr, UINT64_MAX, nullptr, &Prof);
}

ExecutionRecord FunctionHarness::runOnce(const ModuleLayout &Layout,
                                         const FaultPlan *Plan,
                                         uint64_t StepBudget,
                                         ExecObserver *Obs,
                                         CostProfiler *Prof) {
  ExecutionContext Ctx(Layout);
  if (Plan)
    Ctx.setFaultPlan(*Plan);
  if (Obs)
    Ctx.setObserver(Obs);
  const Function *F = Layout.module().getFunction(Entry);
  assert(F && "harness entry function not found");
  if (Prof)
    Prof->attach(Ctx, F); // arms site counts (+observer when needed)
  Ctx.start(F, Args);
  RunStatus S = Ctx.run(StepBudget);

  ExecutionRecord R;
  R.Status = S;
  R.Trap = Ctx.trap();
  R.Steps = Ctx.steps();
  R.ValueSteps = Ctx.valueSteps();
  R.FaultInjected = Ctx.faultWasInjected();
  R.FaultedInstructionId = Ctx.faultedInstructionId();
  if (S == RunStatus::Finished) {
    uint64_t Bits = Ctx.returnValue().Bits;
    if (!HaveGolden) {
      GoldenBits = Bits;
      HaveGolden = true;
      R.OutputValid = true;
    } else {
      R.OutputValid = Bits == GoldenBits;
    }
  }
  return R;
}

std::vector<unsigned>
FunctionHarness::traceValueSteps(const ModuleLayout &Layout) {
  std::vector<unsigned> Trace;
  ExecutionContext Ctx(Layout);
  Ctx.setValueStepTrace(&Trace);
  Ctx.start(Layout.module().getFunction(Entry), Args);
  if (Ctx.run(UINT64_MAX) != RunStatus::Finished)
    Trace.clear(); // tracing failed: disable pruning rather than misprune
  return Trace;
}
