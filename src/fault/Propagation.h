//===- fault/Propagation.h - Dynamic fault-propagation tracing ------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shadow dual execution for sampled campaign injections: one observed
/// clean run is flattened into a CleanReference (instruction id + bits
/// per value commit, address + bits per store, condition per branch),
/// then each sampled injection re-executes with a PropagationTracer
/// observer that compares every event against the reference while
/// control flow is still in lockstep. The comparison yields ground
/// truth the endpoint-only `.iprec` record cannot give:
///
///  - *spread*: def-use / memory / control edges along which corrupted
///    bits travelled (the dynamic propagation graph),
///  - *masking*: where corruption died — a corrupted operand producing a
///    bit-equal result (logical masking in cmp/and/select and friends),
///    a clean store overwriting a corrupted address, or a corrupted
///    value that was never consumed (dead),
///  - *reach*: which sink kinds (store, call argument, return, control
///    flow, check, trap) the corruption dynamically touched, in the same
///    bit assignment as analysis/SocPropagation's static SinkMask, and
///    the value step at which it first reached program output.
///
/// Once a corrupted branch condition actually flips control flow the
/// two executions stop being comparable instruction-for-instruction;
/// the tracer records the control edge, sets ControlDiverged, and stops
/// fine-grained accounting (the run's endpoint outcome still comes from
/// the harness). Everything is packaged as obs::PropRecord rows and
/// persisted via the `.ipprop` store (obs/Propagation.h).
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_FAULT_PROPAGATION_H
#define IPAS_FAULT_PROPAGATION_H

#include "fault/Campaign.h"
#include "obs/Propagation.h"

#include <string>
#include <vector>

namespace ipas {

class Module;

/// One observed clean run, flattened into the event sequences a faulty
/// re-execution is compared against. Index k of Ids/Values is dynamic
/// value step k, so lockstep validity at a faulty commit is simply
/// `Ids[k] == I->id()`.
struct CleanReference {
  std::vector<unsigned> Ids;      ///< Producing instruction id per commit.
  std::vector<uint64_t> Values;   ///< Committed bits per commit.
  std::vector<std::pair<uint64_t, uint64_t>> Stores; ///< (addr, bits)/store.
  std::vector<uint8_t> Branches;  ///< Condition taken per cond-branch.
  bool Valid = false;
};

/// Runs one observed clean execution of \p Harness and captures the
/// reference. Valid is false when the clean run did not finish (the
/// campaign driver then skips propagation tracing).
CleanReference captureCleanReference(ProgramHarness &Harness,
                                     const ModuleLayout &Layout);

/// Re-executes the injection described by \p Plan under full observation
/// and returns its propagation record. RunIndex, bit/step identity, and
/// the endpoint outcome are filled in; the static side-table columns
/// live in the store, not the record.
obs::PropRecord tracePropagation(ProgramHarness &Harness,
                                 const ModuleLayout &Layout,
                                 const CleanReference &Ref,
                                 const FaultPlan &Plan, uint64_t StepBudget,
                                 uint64_t RunIndex);

/// Everything buildPropagationStore needs. Module and campaign result
/// are required; the static/classifier columns (which this layer cannot
/// compute — they come from analysis/ and ml/) enrich the side table
/// when the driver supplies them, indexed by instruction id.
struct PropBuildInputs {
  const Module *M = nullptr;
  const CampaignResult *Result = nullptr; ///< PropRecords source.
  std::string EntryFunction;
  std::string Label;
  uint64_t Seed = 0;
  uint64_t SampleEvery = 0;
  /// SocPropagation::provablyBenign(), by id. Optional.
  const std::vector<bool> *StaticBenign = nullptr;
  /// SocPropagation per-instruction SinkMask, by id. Optional.
  const std::vector<unsigned> *StaticSinkMask = nullptr;
  /// Classifier verdicts by id: +1 protect / -1 skip / 0 none. Optional.
  const std::vector<int> *Predictions = nullptr;
};

/// Builds the in-memory `.ipprop` store. The module must be
/// renumber()ed and must be the module the campaign ran on.
obs::PropagationStore buildPropagationStore(const PropBuildInputs &In);

/// Writes \p S to \p Path and emits a `campaign.prop.record` trace event
/// carrying the path, label, and record count. Returns false and sets
/// \p Err on I/O failure.
bool writePropagationRecord(const obs::PropagationStore &S,
                            const std::string &Path,
                            std::string *Err = nullptr);

} // namespace ipas

#endif // IPAS_FAULT_PROPAGATION_H
