//===- fault/Incremental.cpp ----------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fault/Incremental.h"

#include "analysis/CallGraph.h"
#include "analysis/FunctionSummary.h"
#include "interp/CostProfiler.h"
#include "ir/Module.h"
#include "obs/BinCodec.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace ipas;

const char *ipas::invalidationReasonName(InvalidationReason R) {
  switch (R) {
  case InvalidationReason::Fresh:
    return "fresh";
  case InvalidationReason::Reused:
    return "reused";
  case InvalidationReason::ContentChanged:
    return "content-changed";
  case InvalidationReason::CalleesChanged:
    return "callees-changed";
  case InvalidationReason::StepsChanged:
    return "steps-changed";
  case InvalidationReason::ProfileChanged:
    return "profile-changed";
  case InvalidationReason::PlanMismatch:
    return "plan-mismatch";
  }
  return "<bad reason>";
}

namespace {

/// Largest-remainder apportionment of \p Total runs proportional to
/// \p Weights (functions with zero weight get zero runs). Deterministic:
/// leftovers go to the largest remainders, ties to the lowest index.
std::vector<uint64_t> apportionRuns(size_t Total,
                                    const std::vector<uint64_t> &Weights) {
  std::vector<uint64_t> Runs(Weights.size(), 0);
  uint64_t Sum = 0;
  for (uint64_t W : Weights)
    Sum += W;
  if (Sum == 0)
    return Runs;
  uint64_t Assigned = 0;
  std::vector<std::pair<uint64_t, size_t>> Rem; // (remainder, index)
  for (size_t I = 0; I != Weights.size(); ++I) {
    uint64_t Num = static_cast<uint64_t>(Total) * Weights[I];
    Runs[I] = Num / Sum;
    Assigned += Runs[I];
    if (Weights[I])
      Rem.push_back({Num % Sum, I});
  }
  std::sort(Rem.begin(), Rem.end(),
            [](const std::pair<uint64_t, size_t> &A,
               const std::pair<uint64_t, size_t> &B) {
              return A.first != B.first ? A.first > B.first
                                        : A.second < B.second;
            });
  for (size_t K = 0; Assigned < Total && !Rem.empty(); ++K) {
    ++Runs[Rem[K % Rem.size()].second];
    ++Assigned;
  }
  return Runs;
}

} // namespace

IncrementalResult ipas::runIncrementalCampaign(ProgramHarness &Harness,
                                               const ModuleLayout &Layout,
                                               const Module &M,
                                               const IncrementalConfig &Cfg) {
  IncrementalResult Result;
  const CampaignConfig &Base = Cfg.Base;
  const char *Label =
      Base.Label.empty() ? "incremental" : Base.Label.c_str();
  obs::PhaseSpan Span("campaign.incremental",
                      obs::AttrSet().add("label", Label));

  // Same backend selection as runCampaign (and for the same reason: the
  // lazy VM compile must happen on this serial clean run).
  Harness.setPreferredBackend(Base.Backend);

  // Clean profiling run — same gate as runCampaign: refuse to inject into
  // a program that is wrong before any fault.
  ExecutionRecord Clean = Harness.execute(Layout, nullptr, UINT64_MAX);
  if (Clean.Status != RunStatus::Finished || !Clean.OutputValid) {
    obs::logMessage(obs::Severity::Error,
                    "fatal: clean run failed (%s) — refusing to inject "
                    "faults into a broken program",
                    runStatusName(Clean.Status));
    std::abort();
  }
  Result.Campaign.CleanSteps = Clean.Steps;
  Result.Campaign.CleanValueSteps = Clean.ValueSteps;
  Result.Campaign.CleanCriticalPathCycles = Clean.CriticalPathCycles;

  uint64_t Budget = static_cast<uint64_t>(
      Base.HangFactor * static_cast<double>(Clean.Steps));
  if (Budget < Clean.Steps + 1000)
    Budget = Clean.Steps + 1000;

  // The per-function plan domain needs the clean value-step → instruction
  // trace. Without it there is nothing to key reuse on; fall back to the
  // plain campaign (everything fresh, no function table).
  std::vector<unsigned> Trace = Harness.traceValueSteps(Layout);
  if (Trace.size() != Clean.ValueSteps || Trace.empty()) {
    obs::logMessage(obs::Severity::Warn,
                    "%s: harness cannot trace value steps; falling back "
                    "to a non-incremental campaign",
                    Label);
    Result.Campaign = runCampaign(Harness, Layout, Base);
    Result.ExecutedRuns = Base.NumRuns - Result.Campaign.PrunedRuns;
    return Result;
  }

  // Static geometry: ids are function-contiguous in module order.
  size_t NumFns = M.numFunctions();
  std::vector<uint64_t> FirstId(NumFns, 0);
  std::vector<uint32_t> IdToFn(M.numInstructions(), 0);
  {
    uint64_t Next = 0;
    for (size_t Fi = 0; Fi != NumFns; ++Fi) {
      FirstId[Fi] = Next;
      uint64_t N = M.function(Fi)->numInstructions();
      for (uint64_t K = 0; K != N; ++K)
        IdToFn[Next + K] = static_cast<uint32_t>(Fi);
      Next += N;
    }
  }

  // Dynamic geometry: each function's local value steps, and the mapping
  // from (function, local step) back to the global step a FaultPlan needs.
  std::vector<std::vector<uint64_t>> GlobalStepOf(NumFns);
  for (uint64_t Step = 0; Step != Trace.size(); ++Step)
    GlobalStepOf[IdToFn[Trace[Step]]].push_back(Step);
  std::vector<uint64_t> LocalSteps(NumFns);
  for (size_t Fi = 0; Fi != NumFns; ++Fi)
    LocalSteps[Fi] = GlobalStepOf[Fi].size();

  // Profile hashes: the caller's profiled clean run when it supplied one
  // (ipas-cc --profile), else one profiled clean run here. All-zero when
  // the harness cannot profile — consistently on both sides of a reuse
  // comparison, so reuse still works, just with a weaker guard.
  std::vector<uint64_t> Profile(NumFns, 0);
  if (Cfg.ProfileHashes && Cfg.ProfileHashes->size() == NumFns) {
    Profile = *Cfg.ProfileHashes;
  } else if (Harness.supportsProfiling()) {
    CostProfiler Prof(Layout, CostProfiler::Mode::Counting);
    Prof.enableFunctionHashes();
    ExecutionRecord Obs = Harness.executeProfiled(Layout, Prof);
    if (Obs.Status == RunStatus::Finished && Obs.OutputValid)
      Profile = Prof.functionHashes();
    else
      obs::logMessage(obs::Severity::Warn,
                      "%s: profiled clean run failed; profile hashes "
                      "disabled",
                      Label);
  }

  // Content and reachable-set hashes from the interprocedural analysis.
  CallGraph CG(M);
  ModuleSummaries MS(M, CG);

  // Apportion runs across functions by clean-run value-step share, then
  // draw each function's plans from its own name-derived RNG stream. The
  // first min(new, prior) draws of a stream are identical whenever seed
  // and name match — that prefix property is what lets a shifted
  // apportionment still reuse the prior rows it overlaps.
  std::vector<uint64_t> Planned =
      apportionRuns(Base.NumRuns, LocalSteps);

  struct RowPlan {
    uint64_t GlobalStep;
    uint64_t BitDraw;
    uint32_t LocalSite; ///< Expected site, function-local id.
  };
  std::vector<std::vector<RowPlan>> FnPlans(NumFns);
  for (size_t Fi = 0; Fi != NumFns; ++Fi) {
    if (!Planned[Fi])
      continue;
    const std::string &Name = M.function(Fi)->name();
    Rng FnRng(Base.Seed ^ obs::fnv1a(Name.data(), Name.size()));
    FnPlans[Fi].reserve(Planned[Fi]);
    for (uint64_t R = 0; R != Planned[Fi]; ++R) {
      uint64_t Local = FnRng.nextBelow(LocalSteps[Fi]);
      uint64_t Bits = FnRng.next();
      uint64_t Global = GlobalStepOf[Fi][Local];
      FnPlans[Fi].push_back(
          {Global, Bits,
           static_cast<uint32_t>(Trace[Global] - FirstId[Fi])});
    }
  }

  // Prior store: usable only when it came from the same seed and carries
  // a function table whose planned-run counts actually partition its
  // rows (anything else means it was not written by this driver).
  const obs::RecordStore *Prior = Cfg.Prior;
  std::vector<uint64_t> PriorRowStart;
  if (Prior) {
    bool Usable = Prior->Seed == Base.Seed && !Prior->FunctionMetas.empty();
    if (Usable) {
      uint64_t Off = 0;
      for (const obs::FunctionMeta &FM : Prior->FunctionMetas) {
        PriorRowStart.push_back(Off);
        Off += FM.PlannedRuns;
      }
      Usable = Off == Prior->Rows.size();
    }
    if (!Usable) {
      if (Prior->Seed != Base.Seed)
        obs::logMessage(obs::Severity::Warn,
                        "%s: prior store was campaigned with a different "
                        "seed; ignoring it",
                        Label);
      Prior = nullptr;
      PriorRowStart.clear();
    }
  }

  obs::TraceSink::event(
      "campaign.incremental.begin",
      obs::AttrSet()
          .add("label", Label)
          .addHex("seed", Base.Seed)
          .add("runs", static_cast<uint64_t>(Base.NumRuns))
          .add("functions", static_cast<uint64_t>(NumFns))
          .add("prior", Prior != nullptr)
          .add("clean_value_steps", Clean.ValueSteps));

  // Per-function reuse decision. A function's prior rows carry over only
  // when every invalidation key matches AND every overlapping prior row
  // agrees with the re-drawn plan (site and bit) — the plan check turns
  // any residual hash-collision or store-tampering risk into plain
  // re-execution instead of wrong data.
  std::vector<obs::FunctionMeta> &Metas = Result.FunctionMetas;
  Metas.resize(NumFns);
  std::vector<uint64_t> ReuseCount(NumFns, 0); // prior rows to copy
  std::vector<const obs::FunctionMeta *> PriorMeta(NumFns, nullptr);
  std::vector<uint64_t> PriorStart(NumFns, 0);
  for (size_t Fi = 0; Fi != NumFns; ++Fi) {
    obs::FunctionMeta &FM = Metas[Fi];
    FM.FunctionIndex = static_cast<uint32_t>(Fi);
    const Function *F = M.function(Fi);
    FM.ContentHash = MS.contentHash(F);
    FM.ReachableHash = MS.reachableHash(F);
    FM.ProfileHash = Profile[Fi];
    FM.FirstInstructionId = FirstId[Fi];
    FM.LocalValueSteps = LocalSteps[Fi];
    FM.PlannedRuns = Planned[Fi];

    InvalidationReason Reason = InvalidationReason::Fresh;
    const obs::FunctionMeta *PM = nullptr;
    if (Prior) {
      for (size_t K = 0; K != Prior->FunctionMetas.size(); ++K) {
        const obs::FunctionMeta &Cand = Prior->FunctionMetas[K];
        if (Cand.FunctionIndex < Prior->Functions.size() &&
            Prior->Functions[Cand.FunctionIndex] == F->name()) {
          PM = &Cand;
          PriorStart[Fi] = PriorRowStart[K];
          break;
        }
      }
    }
    if (PM) {
      if (PM->ContentHash != FM.ContentHash)
        Reason = InvalidationReason::ContentChanged;
      else if (PM->ReachableHash != FM.ReachableHash)
        Reason = InvalidationReason::CalleesChanged;
      else if (PM->LocalValueSteps != FM.LocalValueSteps)
        Reason = InvalidationReason::StepsChanged;
      else if (PM->ProfileHash != FM.ProfileHash)
        Reason = InvalidationReason::ProfileChanged;
      else {
        Reason = InvalidationReason::Reused;
        uint64_t Overlap = std::min(Planned[Fi], PM->PlannedRuns);
        for (uint64_t R = 0; R != Overlap; ++R) {
          const obs::InjectionRow &Row =
              Prior->Rows[PriorStart[Fi] + R];
          const RowPlan &Plan = FnPlans[Fi][R];
          if (Row.InstructionId - PM->FirstInstructionId !=
                  Plan.LocalSite ||
              Row.BitIndex != Plan.BitDraw % 64 ||
              Row.Outcome >= NumOutcomes) {
            Reason = InvalidationReason::PlanMismatch;
            break;
          }
        }
        if (Reason == InvalidationReason::Reused)
          ReuseCount[Fi] = Overlap;
      }
    }
    FM.Invalidation = static_cast<uint8_t>(Reason);
    PriorMeta[Fi] = PM;
  }

  // Row layout: function-major in module order (what PlannedRuns prefix
  // sums promise the next incremental consumer).
  size_t TotalRows = 0;
  for (uint64_t P : Planned)
    TotalRows += P;
  Result.Campaign.Records.assign(TotalRows, InjectionRecord());
  std::vector<uint64_t> RowStart(NumFns, 0);
  {
    uint64_t Off = 0;
    for (size_t Fi = 0; Fi != NumFns; ++Fi) {
      RowStart[Fi] = Off;
      Off += Planned[Fi];
    }
  }

  // Pruning decision per row, same semantics as runCampaign: provably
  // benign target → Masked without executing. Decided up front; the
  // threaded loop below never branches on shared mutable state.
  std::vector<char> Pruned(TotalRows, 0);
  std::vector<char> Reused(TotalRows, 0);
  std::vector<char> SiteSeen;
  if (Base.ProvablyBenign)
    SiteSeen.assign(Base.ProvablyBenign->size(), 0);
  std::vector<size_t> ToExecute;
  for (size_t Fi = 0; Fi != NumFns; ++Fi) {
    for (uint64_t R = 0; R != Planned[Fi]; ++R) {
      size_t RowIdx = RowStart[Fi] + R;
      const RowPlan &Plan = FnPlans[Fi][R];
      unsigned Id = Trace[Plan.GlobalStep];
      InjectionRecord &Rec = Result.Campaign.Records[RowIdx];
      Rec.InstructionId = Id;
      Rec.BitIndex = static_cast<unsigned>(Plan.BitDraw % 64);
      Rec.TargetValueStep = Plan.GlobalStep;
      if (Base.ProvablyBenign && Id < Base.ProvablyBenign->size() &&
          (*Base.ProvablyBenign)[Id]) {
        Pruned[RowIdx] = 1;
        Rec.Result = Outcome::Masked;
        ++Result.Campaign.PrunedRuns;
        if (!SiteSeen[Id]) {
          SiteSeen[Id] = 1;
          ++Result.Campaign.PrunedSites;
        }
        continue;
      }
      if (R < ReuseCount[Fi]) {
        const obs::InjectionRow &Row =
            Prior->Rows[PriorStart[Fi] + R];
        Rec.Result = static_cast<Outcome>(Row.Outcome);
        Rec.LatencyUs = 0; // latency is not part of the reused stream
        Reused[RowIdx] = 1;
        ++Result.ReusedRuns;
        continue;
      }
      ToExecute.push_back(RowIdx);
    }
  }
  for (size_t Fi = 0; Fi != NumFns; ++Fi) {
    uint64_t Reusable = ReuseCount[Fi];
    // Pruned rows inside the reusable prefix were classified by proof,
    // not by the prior store; report only rows actually carried over.
    uint64_t Carried = 0;
    for (uint64_t R = 0; R != Reusable; ++R)
      if (Reused[RowStart[Fi] + R])
        ++Carried;
    Metas[Fi].ReusedRuns = Carried;
  }
  Result.ExecutedRuns = ToExecute.size();

  const bool Stats = obs::statsEnabled();
  const bool TraceRuns = Base.TraceRuns && obs::TraceSink::enabled();
  size_t Every =
      Base.ProgressEvery ? Base.ProgressEvery : ToExecute.size() / 10;
  if (Every == 0)
    Every = 1;
  std::atomic<size_t> Done{0};
  const uint64_t LoopStartUs = obs::monotonicMicros();

  auto RunOne = [&](size_t RowIdx) {
    InjectionRecord &Rec = Result.Campaign.Records[RowIdx];
    FaultPlan Plan;
    Plan.TargetValueStep = Rec.TargetValueStep;
    // BitIndex is BitDraw % 64 and the interpreter reduces modulo the
    // value width, which always divides 64 here — so the reduced index
    // injects the identical bit the raw draw would have.
    Plan.BitDraw = Rec.BitIndex;
    uint64_t T0 = obs::monotonicMicros();
    ExecutionRecord R = Harness.execute(Layout, &Plan, Budget);
    uint64_t Us = obs::monotonicMicros() - T0;
    assert((R.Status != RunStatus::Finished || R.FaultInjected) &&
           "the clean prefix must always reach the target step");
    Rec.InstructionId = R.FaultedInstructionId;
    Rec.Result = classifyOutcome(R);
    Rec.LatencyUs = Us > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(Us);
    if (Stats && TraceRuns)
      obs::TraceSink::event("campaign.run",
                            obs::AttrSet()
                                .add("label", Label)
                                .add("run", static_cast<uint64_t>(RowIdx))
                                .add("inst", Rec.InstructionId)
                                .add("bit", Rec.BitIndex)
                                .add("outcome", outcomeName(Rec.Result))
                                .add("us", Us));
    size_t Finished = Done.fetch_add(1, std::memory_order_relaxed) + 1;
    // Same rate-limited throughput/ETA progress as runCampaign, over the
    // executed (non-reused, non-pruned) runs only.
    if (Finished % Every == 0 && Finished != ToExecute.size() &&
        obs::logEnabled(obs::Severity::Info)) {
      double Elapsed =
          static_cast<double>(obs::monotonicMicros() - LoopStartUs) * 1e-6;
      double Rate = Elapsed > 0 ? static_cast<double>(Finished) / Elapsed
                                : 0.0;
      if (Stats)
        obs::MetricsRegistry::global()
            .gauge("fault.campaign.runs_per_sec")
            .set(Rate);
      double EtaS =
          Rate > 0
              ? static_cast<double>(ToExecute.size() - Finished) / Rate
              : 0.0;
      obs::logMessage(obs::Severity::Info,
                      "%s: %zu/%zu executed runs  %.0f runs/s  eta %.1fs",
                      Label, Finished, ToExecute.size(), Rate, EtaS);
    }
  };

  unsigned Threads = Base.NumThreads;
  if (Threads <= 1 || ToExecute.size() < 2 * Threads) {
    for (size_t RowIdx : ToExecute)
      RunOne(RowIdx);
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back([&, T] {
        for (size_t K = T; K < ToExecute.size(); K += Threads)
          RunOne(ToExecute[K]);
      });
    for (std::thread &Th : Pool)
      Th.join();
  }

  for (const InjectionRecord &Rec : Result.Campaign.Records)
    ++Result.Campaign.Counts[static_cast<size_t>(Rec.Result)];
  Result.Campaign.WallSeconds = Span.seconds();

  if (Stats) {
    auto &Reg = obs::MetricsRegistry::global();
    Reg.counter("fault.incremental.campaigns").inc();
    Reg.counter("fault.incremental.reused_runs").inc(Result.ReusedRuns);
    Reg.counter("fault.incremental.executed_runs")
        .inc(Result.ExecutedRuns);
  }
  obs::AttrSet DoneAttrs;
  DoneAttrs.add("label", Label)
      .add("runs", static_cast<uint64_t>(TotalRows))
      .add("reused", static_cast<uint64_t>(Result.ReusedRuns))
      .add("executed", static_cast<uint64_t>(Result.ExecutedRuns))
      .add("pruned", static_cast<uint64_t>(Result.Campaign.PrunedRuns));
  for (size_t O = 0; O != NumOutcomes; ++O)
    DoneAttrs.add(outcomeName(static_cast<Outcome>(O)),
                  static_cast<uint64_t>(Result.Campaign.Counts[O]));
  obs::TraceSink::event("campaign.incremental.done", DoneAttrs);
  Span.addAttr(DoneAttrs);
  return Result;
}
