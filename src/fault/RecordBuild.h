//===- fault/RecordBuild.h - Campaign result -> .iprec record store -------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue between the fault layer and the dependency-free obs::RecordStore:
/// converts a Module + CampaignResult (plus optional classifier columns
/// the driver computed with analysis/ml, which this layer cannot see)
/// into a provenance store, and writes it with a `campaign.record` trace
/// event so ipas-report can cross-check trace totals against store
/// totals.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_FAULT_RECORDBUILD_H
#define IPAS_FAULT_RECORDBUILD_H

#include "fault/Campaign.h"
#include "obs/RecordStore.h"

#include <string>
#include <vector>

namespace ipas {

class Module;

/// Everything buildRecordStore needs. Module and campaign result are
/// required; the rest enriches the store when available.
struct RecordBuildInputs {
  const Module *M = nullptr;
  const CampaignResult *Result = nullptr;
  std::string EntryFunction;
  std::string Label;
  uint64_t Seed = 0;
  /// MiniC source of the module (pre-protection), for annotated listings.
  std::string SourceText;
  /// Clean-run value-step trace (Harness.traceValueSteps); used to derive
  /// per-instruction dynamic execution counts. Optional.
  const std::vector<unsigned> *ValueStepTrace = nullptr;
  /// Classifier columns, indexed by instruction id (size must be the
  /// module's instruction count when present). Optional.
  const std::vector<double> *Scores = nullptr;
  const std::vector<int> *Predictions = nullptr; ///< +1 protect / -1 skip.
  /// Static feature matrix, instruction-id major. Optional.
  uint32_t NumFeatures = 0;
  const std::vector<double> *Features = nullptr;
  /// Incremental-campaign function table (fault/Incremental.h), one entry
  /// per module function in module order. Presence makes the store v2
  /// rows reusable by later `--incremental` campaigns. Optional.
  const std::vector<obs::FunctionMeta> *FunctionMetas = nullptr;
};

/// Builds the in-memory store. The module must be renumber()ed and must
/// be the module the campaign ran on (row instruction ids index into it).
obs::RecordStore buildRecordStore(const RecordBuildInputs &In);

/// Writes \p S to \p Path and emits a `campaign.record` trace event
/// carrying the path, label, and per-outcome totals. Returns false and
/// sets \p Err on I/O failure.
bool writeCampaignRecord(const obs::RecordStore &S, const std::string &Path,
                         std::string *Err = nullptr);

} // namespace ipas

#endif // IPAS_FAULT_RECORDBUILD_H
