//===- fault/RecordBuild.cpp --------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fault/RecordBuild.h"

#include "ir/Module.h"
#include "obs/Trace.h"

#include <cassert>
#include <map>

using namespace ipas;

obs::RecordStore ipas::buildRecordStore(const RecordBuildInputs &In) {
  assert(In.M && In.Result && "module and campaign result are required");
  const Module &M = *In.M;
  const CampaignResult &R = *In.Result;

  obs::RecordStore S;
  S.ModuleName = M.name();
  S.EntryFunction = In.EntryFunction;
  S.Label = In.Label;
  S.Seed = In.Seed;
  S.CleanSteps = R.CleanSteps;
  S.CleanValueSteps = R.CleanValueSteps;
  S.PrunedRuns = R.PrunedRuns;
  S.PrunedSites = R.PrunedSites;
  S.SourceText = In.SourceText;

  // Per-instruction dynamic execution counts from the clean trace.
  std::vector<uint64_t> DynCounts;
  if (In.ValueStepTrace) {
    for (unsigned Id : *In.ValueStepTrace) {
      if (Id >= DynCounts.size())
        DynCounts.resize(Id + 1, 0);
      ++DynCounts[Id];
    }
  }

  std::map<const Function *, uint32_t> FnIndex;
  std::vector<Instruction *> Insts = M.allInstructions();
  S.Instructions.reserve(Insts.size());
  for (const Instruction *I : Insts) {
    obs::InstrRecord Rec;
    Rec.Id = I->id();
    Rec.Opcode = static_cast<uint8_t>(I->opcode());
    Rec.DupRole = static_cast<uint8_t>(I->dupRole());
    Rec.Protected_ = I->dupRole() == DupRole::Original ? 1 : 0;
    Rec.Line = I->debugLoc().Line;
    Rec.Col = I->debugLoc().Col;
    const Function *F = I->parent() ? I->parent()->parent() : nullptr;
    auto It = FnIndex.find(F);
    if (It == FnIndex.end()) {
      It = FnIndex.emplace(F, static_cast<uint32_t>(S.Functions.size()))
               .first;
      S.Functions.push_back(F ? F->name() : std::string("<detached>"));
    }
    Rec.FunctionIndex = It->second;
    if (Rec.Id < DynCounts.size())
      Rec.DynExecCount = DynCounts[Rec.Id];
    if (In.Scores && Rec.Id < In.Scores->size())
      Rec.Score = (*In.Scores)[Rec.Id];
    if (In.Predictions && Rec.Id < In.Predictions->size()) {
      int P = (*In.Predictions)[Rec.Id];
      Rec.Predicted = P > 0 ? obs::PredictProtect
                            : (P < 0 ? obs::PredictSkip : obs::PredictNone);
    }
    S.Instructions.push_back(Rec);
  }

  if (In.Features && In.NumFeatures) {
    assert(In.Features->size() == Insts.size() * In.NumFeatures &&
           "feature matrix shape mismatch");
    S.NumFeatures = In.NumFeatures;
    S.Features = *In.Features;
  }

  S.Rows.reserve(R.Records.size());
  for (const InjectionRecord &Rec : R.Records) {
    obs::InjectionRow Row;
    Row.InstructionId = Rec.InstructionId;
    Row.BitIndex = Rec.BitIndex;
    Row.TargetValueStep = Rec.TargetValueStep;
    Row.Outcome = static_cast<uint8_t>(Rec.Result);
    Row.LatencyUs = Rec.LatencyUs;
    S.Rows.push_back(Row);
  }
  if (In.FunctionMetas)
    S.FunctionMetas = *In.FunctionMetas;
  S.tallyOutcomes();
  return S;
}

bool ipas::writeCampaignRecord(const obs::RecordStore &S,
                               const std::string &Path, std::string *Err) {
  if (!obs::writeRecordStore(S, Path, Err))
    return false;
  obs::AttrSet Attrs;
  Attrs.add("label", S.Label.empty() ? "campaign" : S.Label.c_str())
      .add("path", Path)
      .add("rows", static_cast<uint64_t>(S.Rows.size()));
  for (size_t O = 0; O != S.OutcomeTotals.size() && O != NumOutcomes; ++O)
    Attrs.add(outcomeName(static_cast<Outcome>(O)), S.OutcomeTotals[O]);
  obs::TraceSink::event("campaign.record", Attrs);
  return true;
}
