//===- fault/FunctionHarness.h - Campaign harness for one function --------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ProgramHarness that drives a single function of a compiled module
/// with fixed arguments and verifies the return value bit-exactly
/// against the first clean run. This is what `ipas-cc --campaign` and
/// the record-store tests use: any MiniC function whose result is its
/// return value gets fault-injection campaigns (with value-step tracing,
/// so SocPropagation pruning works) without a bespoke harness.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_FAULT_FUNCTIONHARNESS_H
#define IPAS_FAULT_FUNCTIONHARNESS_H

#include "fault/ProgramHarness.h"
#include "vm/VM.h"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ipas {

class FunctionHarness : public ProgramHarness {
public:
  /// Drives \p EntryName(Args...). The entry must return a value (the
  /// campaign's correctness oracle is the returned bit pattern).
  FunctionHarness(std::string EntryName, std::vector<RtValue> Args)
      : Entry(std::move(EntryName)), Args(std::move(Args)) {}

  /// Vm routes plain execute() calls through the bytecode VM when the
  /// module compiles (lazily, once per layout); otherwise every run
  /// falls back to the interpreter. Observed/profiled/traced runs stay
  /// on the interpreter either way.
  void setPreferredBackend(ExecBackend B) override { Backend = B; }

  ExecutionRecord execute(const ModuleLayout &Layout, const FaultPlan *Plan,
                          uint64_t StepBudget) override;

  std::vector<unsigned> traceValueSteps(const ModuleLayout &Layout) override;

  bool supportsObservation() const override { return true; }
  ExecutionRecord executeObserved(const ModuleLayout &Layout,
                                  const FaultPlan *Plan, uint64_t StepBudget,
                                  ExecObserver &Obs) override;

  bool supportsProfiling() const override { return true; }
  ExecutionRecord executeProfiled(const ModuleLayout &Layout,
                                  CostProfiler &Prof) override;

private:
  ExecutionRecord runOnce(const ModuleLayout &Layout, const FaultPlan *Plan,
                          uint64_t StepBudget, ExecObserver *Obs,
                          CostProfiler *Prof = nullptr);
  ExecutionRecord runOnceVm(const ModuleLayout &Layout, const FaultPlan *Plan,
                            uint64_t StepBudget);
  /// Compiles (once) and returns the bytecode program for \p Layout, or
  /// null when the module does not compile — callers then fall back to
  /// the interpreter. Thread-safe, but the first call for a layout must
  /// happen before concurrent runs begin (runCampaign's serial clean run
  /// guarantees this).
  const vm::VmProgram *vmProgram(const ModuleLayout &Layout);

  std::string Entry;
  std::vector<RtValue> Args;
  ExecBackend Backend = ExecBackend::Interp;
  // Golden return bits, captured on the first clean run (runCampaign's
  // serial profiling run) and only read by the threaded injection runs.
  bool HaveGolden = false;
  uint64_t GoldenBits = 0;
  // Lazily compiled bytecode, keyed on the layout it was built from,
  // plus a pool of reusable per-thread execution contexts.
  std::mutex VmMutex;
  const ModuleLayout *VmLayout = nullptr;
  std::unique_ptr<vm::VmProgram> VmProg;
  uint32_t VmEntryIndex = 0;
  std::vector<std::unique_ptr<vm::VmContext>> VmPool;
};

} // namespace ipas

#endif // IPAS_FAULT_FUNCTIONHARNESS_H
