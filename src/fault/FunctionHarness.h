//===- fault/FunctionHarness.h - Campaign harness for one function --------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ProgramHarness that drives a single function of a compiled module
/// with fixed arguments and verifies the return value bit-exactly
/// against the first clean run. This is what `ipas-cc --campaign` and
/// the record-store tests use: any MiniC function whose result is its
/// return value gets fault-injection campaigns (with value-step tracing,
/// so SocPropagation pruning works) without a bespoke harness.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_FAULT_FUNCTIONHARNESS_H
#define IPAS_FAULT_FUNCTIONHARNESS_H

#include "fault/ProgramHarness.h"

#include <string>
#include <vector>

namespace ipas {

class FunctionHarness : public ProgramHarness {
public:
  /// Drives \p EntryName(Args...). The entry must return a value (the
  /// campaign's correctness oracle is the returned bit pattern).
  FunctionHarness(std::string EntryName, std::vector<RtValue> Args)
      : Entry(std::move(EntryName)), Args(std::move(Args)) {}

  ExecutionRecord execute(const ModuleLayout &Layout, const FaultPlan *Plan,
                          uint64_t StepBudget) override;

  std::vector<unsigned> traceValueSteps(const ModuleLayout &Layout) override;

  bool supportsObservation() const override { return true; }
  ExecutionRecord executeObserved(const ModuleLayout &Layout,
                                  const FaultPlan *Plan, uint64_t StepBudget,
                                  ExecObserver &Obs) override;

  bool supportsProfiling() const override { return true; }
  ExecutionRecord executeProfiled(const ModuleLayout &Layout,
                                  CostProfiler &Prof) override;

private:
  ExecutionRecord runOnce(const ModuleLayout &Layout, const FaultPlan *Plan,
                          uint64_t StepBudget, ExecObserver *Obs,
                          CostProfiler *Prof = nullptr);

  std::string Entry;
  std::vector<RtValue> Args;
  // Golden return bits, captured on the first clean run (runCampaign's
  // serial profiling run) and only read by the threaded injection runs.
  bool HaveGolden = false;
  uint64_t GoldenBits = 0;
};

} // namespace ipas

#endif // IPAS_FAULT_FUNCTIONHARNESS_H
