//===- fault/Outcome.h - Fault-injection outcome taxonomy -----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's outcome categories (§5.5): observable symptoms (crash,
/// hang), faults detected by duplication checks, masked faults, and silent
/// output corruption.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_FAULT_OUTCOME_H
#define IPAS_FAULT_OUTCOME_H

#include <cstdint>

namespace ipas {

enum class Outcome : uint8_t {
  Crash,    ///< Trap (hardware-exception symptom).
  Hang,     ///< Step budget exceeded (or MPI deadlock).
  Detected, ///< Caught by a duplication check.
  Masked,   ///< Run completed and the verification routine accepted it.
  SOC,      ///< Run completed but the output was silently corrupted.
};

inline constexpr unsigned NumOutcomes = 5;

const char *outcomeName(Outcome O);

/// Crash and Hang are the paper's "observable symptom" bucket.
inline bool isSymptom(Outcome O) {
  return O == Outcome::Crash || O == Outcome::Hang;
}

} // namespace ipas

#endif // IPAS_FAULT_OUTCOME_H
