//===- fault/ProfileBuild.cpp -------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fault/ProfileBuild.h"

#include "ir/Module.h"
#include "obs/Trace.h"

#include <cassert>
#include <map>

using namespace ipas;

static std::map<const Function *, uint32_t> functionIndexOf(const Module &M) {
  std::map<const Function *, uint32_t> Ix;
  for (size_t Fi = 0; Fi != M.numFunctions(); ++Fi)
    Ix.emplace(M.function(Fi), static_cast<uint32_t>(Fi));
  return Ix;
}

static uint32_t indexOrZero(const std::map<const Function *, uint32_t> &Ix,
                            const Instruction *I) {
  const Function *F = I->parent() ? I->parent()->parent() : nullptr;
  auto It = Ix.find(F);
  return It == Ix.end() ? 0 : It->second;
}

bool ipas::buildProfileStore(ProgramHarness &Harness,
                             const ModuleLayout &Layout, CostProfiler &Prof,
                             const ProfileBuildInputs &In,
                             obs::ProfileStore &Out, std::string *Err) {
  const Module &M = Layout.module();
  assert(&M == &Prof.module() && "profiler built for a different layout");
  if (!Harness.supportsProfiling()) {
    if (Err)
      *Err = "harness does not support profiling";
    return false;
  }

  bool CtxMode = Prof.mode() == CostProfiler::Mode::Context;
  obs::PhaseSpan Span(
      CtxMode ? "profile.context" : "profile.clean",
      obs::AttrSet()
          .add("entry", In.EntryFunction)
          .add("label", In.Label.empty() ? "profile" : In.Label.c_str()));
  ExecutionRecord R = Harness.executeProfiled(Layout, Prof);
  if (R.Status != RunStatus::Finished || !R.OutputValid) {
    if (Err)
      *Err = "profiled clean run did not finish with valid output";
    return false;
  }

  Out.ModuleName = M.name();
  Out.EntryFunction = In.EntryFunction;
  Out.Label = In.Label;
  Out.SourceText = In.SourceText;
  Out.Mode = CtxMode ? obs::ProfileContext : obs::ProfileCounting;
  const CostModel &CM = Prof.model();
  Out.CostModelCycles.assign(CM.Cycles.begin(), CM.Cycles.end());

  std::map<const Function *, uint32_t> FnIndex = functionIndexOf(M);
  Out.Functions.reserve(M.numFunctions());
  for (size_t Fi = 0; Fi != M.numFunctions(); ++Fi)
    Out.Functions.push_back(M.function(Fi)->name());

  std::vector<uint64_t> Flat = Prof.flatCounts();
  std::vector<Instruction *> Insts = M.allInstructions();
  Out.CleanSteps = Prof.totalSteps();
  Out.TotalCycles = 0;
  Out.Instructions.reserve(Insts.size());
  for (const Instruction *I : Insts) {
    obs::ProfInstr P;
    P.Id = I->id();
    P.Opcode = static_cast<uint8_t>(I->opcode());
    P.DupRole = static_cast<uint8_t>(I->dupRole());
    P.Line = I->debugLoc().Line;
    P.Col = I->debugLoc().Col;
    P.FunctionIndex = indexOrZero(FnIndex, I);
    P.ExecCount = P.Id < Flat.size() ? Flat[P.Id] : 0;
    P.Cycles = P.ExecCount * CM.of(I->opcode());
    Out.TotalCycles += P.Cycles;
    Out.Instructions.push_back(P);
  }

  if (CtxMode) {
    const std::vector<CostProfiler::ContextNode> &Nodes = Prof.contexts();
    Out.Contexts.reserve(Nodes.size());
    for (size_t N = 0; N != Nodes.size(); ++N) {
      const CostProfiler::ContextNode &Node = Nodes[N];
      obs::ProfContext PC;
      PC.Id = static_cast<uint32_t>(N);
      PC.Parent = Node.Parent;
      auto FIt = FnIndex.find(Node.Fn);
      PC.FunctionIndex = FIt == FnIndex.end() ? 0 : FIt->second;
      for (uint64_t Cnt : Node.Counts)
        PC.Steps += Cnt;
      PC.Cycles = Prof.nodeCycles(Node);
      Out.Contexts.push_back(PC);

      // (function, line) cost rows for this context. A node only ever
      // counts instructions of its own function, but the aggregation
      // does not rely on that.
      std::map<std::pair<uint32_t, uint32_t>, std::pair<uint64_t, uint64_t>>
          ByLine;
      for (const Instruction *I : Insts) {
        uint64_t Cnt =
            I->id() < Node.Counts.size() ? Node.Counts[I->id()] : 0;
        if (!Cnt)
          continue;
        auto &Cell = ByLine[{indexOrZero(FnIndex, I), I->debugLoc().Line}];
        Cell.first += Cnt;
        Cell.second += Cnt * CM.of(I->opcode());
      }
      for (const auto &[Key, Cell] : ByLine) {
        obs::ProfLineCost LC;
        LC.ContextId = PC.Id;
        LC.FunctionIndex = Key.first;
        LC.Line = Key.second;
        LC.Count = Cell.first;
        LC.Cycles = Cell.second;
        Out.LineCosts.push_back(LC);
      }
    }
  }

  Span.addAttr(obs::AttrSet()
                   .add("steps", Out.CleanSteps)
                   .add("cycles", Out.TotalCycles)
                   .add("contexts",
                        static_cast<uint64_t>(Out.Contexts.size())));
  return true;
}

bool ipas::attributeOverhead(const Module &Base,
                             const std::vector<uint64_t> &BaseCounts,
                             const Module &Prot,
                             const std::vector<uint64_t> &ProtCounts,
                             const CostModel &CM, obs::ProfileStore &Out,
                             std::string *Err) {
  auto Fail = [&](const char *Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  std::vector<Instruction *> BaseInsts = Base.allInstructions();
  std::vector<Instruction *> ProtInsts = Prot.allInstructions();

  // Pass 1: the non-clone subsequence of the protected module corresponds
  // 1:1 in order with the baseline (duplication inserts Shadow/Check
  // clones but never removes or reorders surviving originals). Verify
  // rather than trust it.
  std::vector<uint32_t> ProtToSite(Prot.numInstructions(), UINT32_MAX);
  size_t Bi = 0;
  for (const Instruction *PI : ProtInsts) {
    DupRole Role = PI->dupRole();
    if (Role == DupRole::Shadow || Role == DupRole::Check)
      continue;
    if (Bi == BaseInsts.size())
      return Fail("overhead attribution: protected build has more "
                  "surviving originals than the baseline has instructions");
    if (BaseInsts[Bi]->opcode() != PI->opcode())
      return Fail("overhead attribution: opcode mismatch between baseline "
                  "and protected builds (different pass pipelines?)");
    if (PI->id() < ProtToSite.size())
      ProtToSite[PI->id()] = static_cast<uint32_t>(Bi);
    ++Bi;
  }
  if (Bi != BaseInsts.size())
    return Fail("overhead attribution: baseline has more instructions than "
                "the protected build's surviving originals");

  // Pass 2: clones charge to their original's site via dupLink.
  for (const Instruction *PI : ProtInsts) {
    DupRole Role = PI->dupRole();
    if (Role != DupRole::Shadow && Role != DupRole::Check)
      continue;
    const Instruction *Orig = PI->dupLink();
    if (!Orig || Orig->id() >= ProtToSite.size() ||
        ProtToSite[Orig->id()] == UINT32_MAX)
      return Fail("overhead attribution: clone without a mapped original "
                  "(broken dupLink provenance)");
    if (PI->id() < ProtToSite.size())
      ProtToSite[PI->id()] = ProtToSite[Orig->id()];
  }

  // One row per baseline site, zero rows included — the optimizer needs
  // the unprotected sites too (their marginal cost is the Prot-Base skew,
  // normally 0).
  std::map<const Function *, uint32_t> FnIndex = functionIndexOf(Base);
  Out.Overheads.assign(BaseInsts.size(), obs::ProfSiteOverhead());
  for (size_t Si = 0; Si != BaseInsts.size(); ++Si) {
    const Instruction *BI = BaseInsts[Si];
    obs::ProfSiteOverhead &Row = Out.Overheads[Si];
    Row.SiteId = BI->id();
    Row.Opcode = static_cast<uint8_t>(BI->opcode());
    Row.Line = BI->debugLoc().Line;
    Row.Col = BI->debugLoc().Col;
    Row.FunctionIndex = indexOrZero(FnIndex, BI);
    if (BI->id() < BaseCounts.size())
      Row.BaseCycles = BaseCounts[BI->id()] * CM.of(BI->opcode());
  }
  for (const Instruction *PI : ProtInsts) {
    uint32_t Site =
        PI->id() < ProtToSite.size() ? ProtToSite[PI->id()] : UINT32_MAX;
    if (Site == UINT32_MAX)
      return Fail("overhead attribution: unmapped protected instruction");
    uint64_t Cyc = (PI->id() < ProtCounts.size() ? ProtCounts[PI->id()] : 0) *
                   CM.of(PI->opcode());
    obs::ProfSiteOverhead &Row = Out.Overheads[Site];
    switch (PI->dupRole()) {
    case DupRole::Shadow:
      Row.ShadowCycles += Cyc;
      Row.Protected_ = 1;
      break;
    case DupRole::Check:
      Row.CheckCycles += Cyc;
      Row.Protected_ = 1;
      break;
    default:
      Row.ProtCycles += Cyc;
      break;
    }
  }
  Out.BaselineTotalCycles = cyclesOfCounts(Base, BaseCounts, CM);
  Out.HasOverhead = 1;
  return true;
}

bool ipas::writeProfileArtifact(const obs::ProfileStore &S,
                                const std::string &Path, std::string *Err) {
  if (!obs::writeProfileStore(S, Path, Err))
    return false;
  obs::AttrSet Attrs;
  Attrs.add("label", S.Label.empty() ? "profile" : S.Label.c_str())
      .add("path", Path)
      .add("mode", S.Mode == obs::ProfileContext ? "context" : "counting")
      .add("instructions", static_cast<uint64_t>(S.Instructions.size()))
      .add("steps", S.CleanSteps)
      .add("cycles", S.TotalCycles);
  if (S.HasOverhead)
    Attrs.add("baseline_cycles", S.BaselineTotalCycles);
  obs::TraceSink::event("profile.store", Attrs);
  return true;
}
