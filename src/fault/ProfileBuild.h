//===- fault/ProfileBuild.h - Clean-run profiles -> .ipprof stores --------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue between the interpreter's cost profiler and the dependency-free
/// obs::ProfileStore: runs one profiled clean execution under a
/// `profile.*` trace span, converts the counts into the columnar store,
/// and — given a second profile of the *unprotected baseline* build —
/// attributes every added cycle of the protected run to the original
/// site whose protection caused it (the DupRole/dupLink provenance on
/// cloned instructions makes that attribution exact: Σ per-site marginal
/// cycles == protected − baseline total).
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_FAULT_PROFILEBUILD_H
#define IPAS_FAULT_PROFILEBUILD_H

#include "fault/ProgramHarness.h"
#include "interp/CostProfiler.h"
#include "obs/ProfileStore.h"

#include <string>
#include <vector>

namespace ipas {

struct ProfileBuildInputs {
  std::string EntryFunction;
  std::string Label;
  /// MiniC source of the profiled build, for the per-line cost heatmap.
  std::string SourceText;
};

/// Runs one profiled clean execution of \p Harness over \p Layout with
/// \p Prof (constructed by the caller in the desired mode, so the caller
/// can also read its function hashes afterwards) and fills \p Out from
/// the counts. Emits a `profile.clean` (counting) or `profile.context`
/// span. Returns false with \p *Err when the harness cannot profile or
/// the clean run does not finish with valid output.
bool buildProfileStore(ProgramHarness &Harness, const ModuleLayout &Layout,
                       CostProfiler &Prof, const ProfileBuildInputs &In,
                       obs::ProfileStore &Out, std::string *Err);

/// Protection-overhead attribution. \p Base / \p BaseCounts are the
/// unprotected module and its profiled clean-run counts; \p Prot /
/// \p ProtCounts the protected build of the same source on the same
/// inputs. Fills Out.Overheads (one row per baseline site) and
/// Out.BaselineTotalCycles, pricing both sides with \p CM. Duplication
/// only inserts Shadow/Check clones, never removes or reorders the
/// surviving originals, so the non-clone subsequence of \p Prot
/// corresponds 1:1 in order with \p Base — the correspondence is checked
/// (count and opcode) and mismatch fails rather than misattributing.
bool attributeOverhead(const Module &Base,
                       const std::vector<uint64_t> &BaseCounts,
                       const Module &Prot,
                       const std::vector<uint64_t> &ProtCounts,
                       const CostModel &CM, obs::ProfileStore &Out,
                       std::string *Err);

/// Writes \p S to \p Path and emits a `profile.store` trace event
/// carrying the path, label, mode, and cycle totals. Returns false and
/// sets \p Err on I/O failure.
bool writeProfileArtifact(const obs::ProfileStore &S,
                          const std::string &Path,
                          std::string *Err = nullptr);

} // namespace ipas

#endif // IPAS_FAULT_PROFILEBUILD_H
