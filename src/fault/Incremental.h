//===- fault/Incremental.h - Incremental re-campaigning -------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FastFlip-style incremental fault campaigns (PAPERS.md): injection
/// plans are drawn *per function* from a name-derived RNG stream over
/// function-local value steps, so an edit to one function leaves every
/// other function's plans — and therefore its prior outcomes — intact.
/// A function's prior `.iprec` rows are reused verbatim when all four
/// invalidation keys match the prior store:
///
///   1. content hash   — its own body is unchanged (whitespace/comment
///                       edits do not count; see FunctionSummary.h);
///   2. reachable hash — no function it can call into changed, so
///                       corruption propagating *down* meets the same
///                       code;
///   3. profile hash   — the clean run drives the same (site, value)
///                       stream through it, so injected runs start from
///                       identical machine states;
///   4. local value steps — the plan domain is unchanged.
///
/// Documented approximation: corruption that escapes *upward* (through
/// the return value or memory) into an edited caller is only guarded by
/// the profile key — an edited caller that feeds bit-identical values
/// and consumes results the same way keeps reuse exact, which is the
/// common incremental-edit case; anything that changes the values
/// flowing through a function invalidates it outright. The merged
/// record stream is bit-identical (outcomes, sites, bits — not
/// latencies) to a from-scratch --incremental campaign whenever that
/// assumption holds, and the ctest goldens pin it down on residual.mc.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_FAULT_INCREMENTAL_H
#define IPAS_FAULT_INCREMENTAL_H

#include "fault/Campaign.h"
#include "obs/RecordStore.h"

#include <string>
#include <vector>

namespace ipas {

class Module;

/// Why a function's prior rows were (or were not) reusable. Serialized
/// raw into obs::FunctionMeta::Invalidation.
enum class InvalidationReason : uint8_t {
  Fresh = 0,        ///< No prior store, or it lacks this function.
  Reused,           ///< All keys matched; prior rows carried over.
  ContentChanged,   ///< The function's own body hash changed.
  CalleesChanged,   ///< A function reachable from it changed.
  StepsChanged,     ///< Clean-run value-step count inside it changed.
  ProfileChanged,   ///< Clean-run (site, value) stream changed.
  PlanMismatch,     ///< Prior rows disagreed with the re-drawn plans.
};

const char *invalidationReasonName(InvalidationReason R);

struct IncrementalConfig {
  CampaignConfig Base;
  /// Prior campaign over an earlier build of the same program (same
  /// entry function and seed). Null means everything runs fresh. A prior
  /// store without FunctionMetas (a non-incremental or v1 store) is
  /// ignored the same way.
  const obs::RecordStore *Prior = nullptr;
  /// Per-function clean-run profile hashes already computed by a
  /// CostProfiler with function hashes enabled (ipas-cc --profile does
  /// this), indexed by module function order. When set and sized to the
  /// module's function count, the campaign reuses them instead of running
  /// its own observed clean run — the fold is identical, so reuse keys
  /// are unchanged. Null (or wrong-sized) means compute them here.
  const std::vector<uint64_t> *ProfileHashes = nullptr;
};

struct IncrementalResult {
  CampaignResult Campaign;
  /// One entry per module function, in module order (FunctionIndex is
  /// the module function index, matching RecordBuild's function table).
  std::vector<obs::FunctionMeta> FunctionMetas;
  size_t ReusedRuns = 0;
  size_t ExecutedRuns = 0;

  /// Per-function reuse decision, parallel to FunctionMetas.
  InvalidationReason reason(size_t I) const {
    return static_cast<InvalidationReason>(FunctionMetas[I].Invalidation);
  }
};

/// Runs an incremental campaign over \p M. Requires a harness whose
/// traceValueSteps() works (the per-function plan domain comes from the
/// clean trace); without it the campaign still runs, but everything is
/// Fresh and the result carries no FunctionMetas. The record stream is
/// deterministic for a fixed (module, seed, NumRuns) regardless of
/// thread count or prior store — a reusable prior only swaps execution
/// for lookup of identical rows.
IncrementalResult runIncrementalCampaign(ProgramHarness &Harness,
                                         const ModuleLayout &Layout,
                                         const Module &M,
                                         const IncrementalConfig &Cfg);

} // namespace ipas

#endif // IPAS_FAULT_INCREMENTAL_H
