//===- fault/Propagation.cpp --------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The tracer is a two-pass scheme rather than two interpreters in literal
// lockstep: one observed clean run is flattened into per-event sequences
// (CleanReference), then the faulty run re-executes with an observer that
// compares each event against the reference. While control flow matches
// the clean path, commit index k *is* dynamic value step k, so "is this
// value corrupted" is one array compare — no second interpreter state to
// keep in sync. The observer mirrors the call stack with per-slot taint
// (corrupt bit, propagation depth, producing instruction) to attribute
// each corrupted result to the operands that carried the corruption in,
// and a store-address taint map to carry corruption through memory.
//
//===----------------------------------------------------------------------===//

#include "fault/Propagation.h"

#include "ir/Module.h"
#include "obs/RecordStore.h" // classifier-verdict codes (PredictProtect...)
#include "obs/Trace.h"

#include <cassert>
#include <deque>
#include <map>
#include <tuple>

using namespace ipas;

namespace {

/// Observer for the clean pass: records the event sequences the faulty
/// pass compares against.
class CleanRecorder : public ExecObserver {
public:
  explicit CleanRecorder(CleanReference &Ref) : Ref(Ref) {}

  void onValueCommit(const Instruction *I, RtValue V, uint64_t) override {
    Ref.Ids.push_back(I->id());
    Ref.Values.push_back(V.Bits);
  }
  void onStore(const Instruction *, uint64_t Addr, RtValue V) override {
    Ref.Stores.emplace_back(Addr, V.Bits);
  }
  void onCondBranch(const Instruction *, bool Cond) override {
    Ref.Branches.push_back(Cond ? 1 : 0);
  }

private:
  CleanReference &Ref;
};

/// Observer for the faulty pass. See the file header for the scheme.
class PropagationTracer : public ExecObserver {
public:
  PropagationTracer(const ModuleLayout &Layout, const CleanReference &Ref,
                    uint64_t TargetStep)
      : Layout(Layout), Ref(Ref), TargetStep(TargetStep) {
    Rec.InjectionStep = TargetStep;
  }

  void onValueCommit(const Instruction *I, RtValue V,
                     uint64_t) override {
    if (Diverged)
      return;
    ensureFrame(I);
    uint64_t K = CommitIdx++;
    if (K >= Ref.Ids.size() || Ref.Ids[K] != I->id()) {
      // Commit stream left the clean path without a corrupted branch —
      // stop comparing (defensive; branches catch the normal case).
      markDiverged();
      return;
    }

    // Gather the operands that could have carried corruption in.
    Sources.clear();
    uint8_t EdgeKind = obs::PropEdgeDefUse;
    switch (I->opcode()) {
    case Opcode::Phi: {
      // Only the incoming value for the edge actually taken is live.
      if (!PhiChoices.empty()) {
        addSource(PhiChoices.front());
        PhiChoices.pop_front();
      } else {
        for (unsigned K2 = 0; K2 != I->numOperands(); ++K2)
          addSource(I->operand(K2));
      }
      break;
    }
    case Opcode::Select: {
      const Value *Cond = I->operand(0);
      addSource(Cond);
      uint64_t CondBits;
      if (knownBits(Cond, CondBits)) {
        addSource(I->operand((CondBits & 1) ? 1 : 2));
      } else {
        addSource(I->operand(1));
        addSource(I->operand(2));
      }
      break;
    }
    case Opcode::Load: {
      addSource(I->operand(0));
      if (PendingLoad.Valid) {
        auto It = MemTaint.find(PendingLoad.Addr);
        if (It != MemTaint.end()) {
          Sources.push_back({It->second.ProducerId, It->second.Depth,
                             /*Corrupt=*/true});
          EdgeKind = obs::PropEdgeMemory;
        }
      }
      break;
    }
    case Opcode::Call:
      if (PendingRet.Valid) {
        // Function return: attribute to the returned value, not the
        // call's arguments (those were attributed at onCall).
        if (PendingRet.Corrupt)
          Sources.push_back(
              {PendingRet.ProducerId, PendingRet.Depth, /*Corrupt=*/true});
        break;
      }
      // Intrinsic call: arguments are the operands.
      for (unsigned K2 = 0; K2 != I->numOperands(); ++K2)
        addSource(I->operand(K2));
      break;
    default:
      for (unsigned K2 = 0; K2 != I->numOperands(); ++K2)
        addSource(I->operand(K2));
      break;
    }
    PendingLoad.Valid = false;
    PendingRet.Valid = false;

    bool AnyCorruptSource = false;
    uint32_t SrcDepth = 0;
    for (const Source &S : Sources)
      if (S.Corrupt) {
        AnyCorruptSource = true;
        if (S.Depth > SrcDepth)
          SrcDepth = S.Depth;
      }

    SlotState &St = Frames.back().Slots[Layout.slotOfInstruction(I)];
    // A corrupted value overwritten without ever being consumed died
    // unobserved (loop-carried slots).
    if (St.Corrupt && !St.Consumed)
      addMask(St.ProducerOp, obs::PropMaskDead);

    bool IsInjection = K == TargetStep;
    bool Corrupt = V.Bits != Ref.Values[K];
    St.Bits = V.Bits;
    St.BitsKnown = true;
    St.Consumed = false;
    if (IsInjection) {
      St.Corrupt = true;
      St.Depth = 0;
      St.ProducerId = I->id();
      St.ProducerOp = static_cast<uint8_t>(I->opcode());
      ++Rec.CorruptedValues;
    } else if (Corrupt) {
      uint32_t Depth = AnyCorruptSource ? SrcDepth + 1 : 0;
      for (const Source &S : Sources)
        if (S.Corrupt)
          addEdge(S.ProducerId, I->id(), EdgeKind);
      St.Corrupt = true;
      St.Depth = Depth;
      St.ProducerId = I->id();
      St.ProducerOp = static_cast<uint8_t>(I->opcode());
      ++Rec.CorruptedValues;
      if (Depth > Rec.PropagationDepth)
        Rec.PropagationDepth = Depth;
    } else {
      if (AnyCorruptSource)
        // Corrupted operand, bit-equal result: logical masking.
        addMask(static_cast<uint8_t>(I->opcode()), obs::PropMaskLogical);
      St.Corrupt = false;
    }
  }

  void onPhiChoice(const PhiInst *, const Value *Chosen) override {
    if (Diverged)
      return;
    PhiChoices.push_back(Chosen);
  }

  void onLoad(const Instruction *, uint64_t Addr) override {
    if (Diverged)
      return;
    PendingLoad.Valid = true;
    PendingLoad.Addr = Addr;
  }

  void onStore(const Instruction *I, uint64_t Addr, RtValue V) override {
    if (Diverged)
      return;
    ensureFrame(I);
    size_t Idx = StoreIdx++;
    SlotState *ValSt = stateOf(I->operand(0));
    SlotState *PtrSt = stateOf(I->operand(1));
    bool ValCorrupt = ValSt && ValSt->Corrupt;
    bool PtrCorrupt = PtrSt && PtrSt->Corrupt;
    if (ValCorrupt)
      ValSt->Consumed = true;
    if (PtrCorrupt)
      PtrSt->Consumed = true;
    if (Idx >= Ref.Stores.size()) {
      markDiverged();
      return;
    }
    uint64_t CleanAddr = Ref.Stores[Idx].first;
    uint64_t CleanBits = Ref.Stores[Idx].second;
    if (ValCorrupt || PtrCorrupt)
      Rec.DynReachMask |= obs::PropReachStore;
    if (Addr == CleanAddr && V.Bits == CleanBits) {
      // The store's effect is bit-identical to the clean run's: any
      // corruption previously written to this address is overwritten.
      auto It = MemTaint.find(Addr);
      if (It != MemTaint.end()) {
        addMask(static_cast<uint8_t>(I->opcode()), obs::PropMaskOverwrite);
        MemTaint.erase(It);
      }
      return;
    }
    // Memory diverges from the clean run at this store: record the
    // propagation edge(s) and taint the written (and, on a corrupted
    // address, the abandoned clean) location.
    uint32_t Depth = 0;
    if (ValCorrupt && ValSt->Depth > Depth)
      Depth = ValSt->Depth;
    if (PtrCorrupt && PtrSt->Depth > Depth)
      Depth = PtrSt->Depth;
    Depth += (ValCorrupt || PtrCorrupt) ? 1 : 0;
    if (ValCorrupt)
      addEdge(ValSt->ProducerId, I->id(), obs::PropEdgeDefUse);
    if (PtrCorrupt)
      addEdge(PtrSt->ProducerId, I->id(), obs::PropEdgeDefUse);
    MemTaint[Addr] = {I->id(), Depth};
    if (Addr != CleanAddr)
      MemTaint[CleanAddr] = {I->id(), Depth};
    if (Depth > Rec.PropagationDepth)
      Rec.PropagationDepth = Depth;
    if (Rec.FirstOutputStep == UINT64_MAX)
      Rec.FirstOutputStep = CommitIdx;
  }

  void onCondBranch(const Instruction *I, bool Cond) override {
    if (Diverged)
      return;
    ensureFrame(I);
    size_t Idx = BranchIdx++;
    SlotState *CS = stateOf(I->operand(0));
    if (CS && CS->Corrupt) {
      CS->Consumed = true;
      Rec.DynReachMask |= obs::PropReachControlFlow;
      addEdge(CS->ProducerId, I->id(), obs::PropEdgeControl);
      if (CS->Depth + 1 > Rec.PropagationDepth)
        Rec.PropagationDepth = CS->Depth + 1;
    }
    bool CleanCond =
        Idx < Ref.Branches.size() && Ref.Branches[Idx] != 0;
    if (Idx >= Ref.Branches.size() || Cond != CleanCond)
      markDiverged();
  }

  void onCheck(const Instruction *I, RtValue A, RtValue B) override {
    if (Diverged)
      return;
    ensureFrame(I);
    SlotState *AS = stateOf(I->operand(0));
    SlotState *BS = stateOf(I->operand(1));
    bool AC = AS && AS->Corrupt, BC = BS && BS->Corrupt;
    if (AC)
      AS->Consumed = true;
    if (BC)
      BS->Consumed = true;
    if (AC || BC) {
      Rec.DynReachMask |= obs::PropReachCheck;
      if (AC)
        addEdge(AS->ProducerId, I->id(), obs::PropEdgeDefUse);
      if (BC)
        addEdge(BS->ProducerId, I->id(), obs::PropEdgeDefUse);
      // Both operands corrupted identically: the check cannot fire —
      // the duplication protection was itself masked.
      if (A.Bits == B.Bits)
        addMask(static_cast<uint8_t>(I->opcode()), obs::PropMaskLogical);
    }
  }

  void onCall(const CallInst *Call,
              const std::vector<RtValue> &Args) override {
    if (Diverged)
      return;
    ensureFrame(Call);
    MirrorFrame Callee;
    Callee.Slots.assign(Layout.frameSlots(Call->callee()), SlotState());
    for (unsigned K = 0; K != Call->numArgs(); ++K) {
      SlotState *AS = stateOf(Call->arg(K));
      SlotState &Dst = Callee.Slots[K];
      Dst.Bits = Args[K].Bits;
      Dst.BitsKnown = true;
      if (AS && AS->Corrupt) {
        AS->Consumed = true;
        Rec.DynReachMask |= obs::PropReachCallArgument;
        addEdge(AS->ProducerId, Call->id(), obs::PropEdgeDefUse);
        Dst.Corrupt = true;
        Dst.Depth = AS->Depth;
        Dst.ProducerId = AS->ProducerId;
        Dst.ProducerOp = AS->ProducerOp;
      }
    }
    Frames.push_back(std::move(Callee));
  }

  void onReturn(const Instruction *I, bool HasValue, RtValue) override {
    if (Diverged)
      return;
    ensureFrame(I);
    SlotState *RS = HasValue ? stateOf(I->operand(0)) : nullptr;
    bool RetCorrupt = RS && RS->Corrupt;
    if (RetCorrupt) {
      RS->Consumed = true;
      Rec.DynReachMask |= obs::PropReachReturn;
    }
    scanDead(Frames.back());
    uint32_t Depth = RetCorrupt ? RS->Depth : 0;
    uint32_t Producer = RetCorrupt ? RS->ProducerId : 0;
    Frames.pop_back();
    if (Frames.empty()) {
      // Top-level return: this is the output the FunctionHarness
      // verification routine reads.
      if (RetCorrupt && Rec.FirstOutputStep == UINT64_MAX)
        Rec.FirstOutputStep = CommitIdx;
      return;
    }
    PendingRet.Valid = true;
    PendingRet.Corrupt = RetCorrupt;
    PendingRet.ProducerId = Producer;
    PendingRet.Depth = Depth;
  }

  /// Flushes aggregates and returns the finished record. \p R is the
  /// endpoint of the traced execution.
  obs::PropRecord finish(const ExecutionRecord &R) {
    if (!Diverged)
      for (const MirrorFrame &F : Frames)
        scanDead(F);
    if (R.Status == RunStatus::Trapped)
      Rec.DynReachMask |= obs::PropReachTrap;
    for (const auto &[Key, Count] : EdgeCounts) {
      obs::PropEdge E;
      E.SrcId = std::get<0>(Key);
      E.DstId = std::get<1>(Key);
      E.Kind = std::get<2>(Key);
      E.Count = Count;
      Rec.Edges.push_back(E);
    }
    for (const auto &[Key, Count] : MaskCounts) {
      obs::PropMaskEvent M;
      M.Opcode = Key.first;
      M.Kind = Key.second;
      M.Count = Count;
      Rec.Masks.push_back(M);
      switch (Key.second) {
      case obs::PropMaskLogical:
        Rec.MaskedLogical += Count;
        break;
      case obs::PropMaskOverwrite:
        Rec.MaskedOverwrite += Count;
        break;
      default:
        Rec.MaskedDead += Count;
        break;
      }
    }
    return Rec;
  }

private:
  struct SlotState {
    bool Corrupt = false;
    bool Consumed = false;
    bool BitsKnown = false;
    uint8_t ProducerOp = 0;
    uint32_t Depth = 0;
    uint32_t ProducerId = 0;
    uint64_t Bits = 0;
  };
  struct MirrorFrame {
    std::vector<SlotState> Slots;
  };
  struct Source {
    uint32_t ProducerId;
    uint32_t Depth;
    bool Corrupt;
  };
  struct Taint {
    uint32_t ProducerId = 0;
    uint32_t Depth = 0;
  };

  /// The entry frame is created lazily from the first observed
  /// instruction (the interpreter pushes it in start(), before any
  /// observable event fires).
  void ensureFrame(const Instruction *I) {
    if (!Frames.empty())
      return;
    const Function *Fn = I->parent()->parent();
    MirrorFrame F;
    F.Slots.assign(Layout.frameSlots(Fn), SlotState());
    Frames.push_back(std::move(F));
  }

  SlotState *stateOf(const Value *V) {
    MirrorFrame &F = Frames.back();
    if (V->kind() == ValueKind::Argument)
      return &F.Slots[static_cast<const Argument *>(V)->index()];
    if (V->kind() == ValueKind::Instruction)
      return &F.Slots[Layout.slotOfInstruction(
          static_cast<const Instruction *>(V))];
    return nullptr; // constants are never corrupt
  }

  void addSource(const Value *V) {
    SlotState *S = stateOf(V);
    if (!S)
      return;
    if (S->Corrupt)
      S->Consumed = true;
    Sources.push_back({S->ProducerId, S->Depth, S->Corrupt});
  }

  /// Faulty-run bits of \p V when derivable (committed slots, seeded
  /// arguments, integer constants).
  bool knownBits(const Value *V, uint64_t &Bits) {
    if (V->kind() == ValueKind::ConstantInt) {
      Bits = static_cast<uint64_t>(
          static_cast<const ConstantInt *>(V)->value());
      return true;
    }
    SlotState *S = stateOf(V);
    if (S && S->BitsKnown) {
      Bits = S->Bits;
      return true;
    }
    return false;
  }

  void addEdge(uint32_t Src, uint32_t Dst, uint8_t Kind) {
    ++EdgeCounts[{Src, Dst, Kind}];
  }
  void addMask(uint8_t Op, uint8_t Kind) { ++MaskCounts[{Op, Kind}]; }

  void scanDead(const MirrorFrame &F) {
    for (const SlotState &S : F.Slots)
      if (S.Corrupt && !S.Consumed)
        addMask(S.ProducerOp, obs::PropMaskDead);
  }

  void markDiverged() {
    Diverged = true;
    Rec.ControlDiverged = 1;
  }

  const ModuleLayout &Layout;
  const CleanReference &Ref;
  uint64_t TargetStep;
  obs::PropRecord Rec;

  bool Diverged = false;
  uint64_t CommitIdx = 0;
  size_t StoreIdx = 0;
  size_t BranchIdx = 0;
  std::vector<MirrorFrame> Frames;
  std::vector<Source> Sources;
  std::deque<const Value *> PhiChoices;
  struct {
    bool Valid = false;
    uint64_t Addr = 0;
  } PendingLoad;
  struct {
    bool Valid = false;
    bool Corrupt = false;
    uint32_t ProducerId = 0;
    uint32_t Depth = 0;
  } PendingRet;
  std::map<uint64_t, Taint> MemTaint;
  std::map<std::tuple<uint32_t, uint32_t, uint8_t>, uint32_t> EdgeCounts;
  std::map<std::pair<uint8_t, uint8_t>, uint32_t> MaskCounts;
};

} // namespace

CleanReference ipas::captureCleanReference(ProgramHarness &Harness,
                                           const ModuleLayout &Layout) {
  CleanReference Ref;
  CleanRecorder Recorder(Ref);
  ExecutionRecord R =
      Harness.executeObserved(Layout, nullptr, UINT64_MAX, Recorder);
  Ref.Valid = R.Status == RunStatus::Finished && R.OutputValid;
  if (!Ref.Valid) {
    Ref.Ids.clear();
    Ref.Values.clear();
    Ref.Stores.clear();
    Ref.Branches.clear();
  }
  return Ref;
}

obs::PropRecord ipas::tracePropagation(ProgramHarness &Harness,
                                       const ModuleLayout &Layout,
                                       const CleanReference &Ref,
                                       const FaultPlan &Plan,
                                       uint64_t StepBudget,
                                       uint64_t RunIndex) {
  PropagationTracer Tracer(Layout, Ref, Plan.TargetValueStep);
  ExecutionRecord R =
      Harness.executeObserved(Layout, &Plan, StepBudget, Tracer);
  obs::PropRecord Rec = Tracer.finish(R);
  Rec.RunIndex = RunIndex;
  Rec.InstructionId = R.FaultedInstructionId;
  Rec.BitIndex = static_cast<uint32_t>(Plan.BitDraw % 64);
  Rec.TargetValueStep = Plan.TargetValueStep;
  Rec.Outcome = static_cast<uint8_t>(classifyOutcome(R));
  return Rec;
}

obs::PropagationStore
ipas::buildPropagationStore(const PropBuildInputs &In) {
  assert(In.M && In.Result && "module and campaign result are required");
  const Module &M = *In.M;

  obs::PropagationStore S;
  S.ModuleName = M.name();
  S.EntryFunction = In.EntryFunction;
  S.Label = In.Label;
  S.Seed = In.Seed;
  S.SampleEvery = In.SampleEvery;
  S.TotalRuns = In.Result->totalRuns();
  S.CleanSteps = In.Result->CleanSteps;
  S.CleanValueSteps = In.Result->CleanValueSteps;

  std::map<const Function *, uint32_t> FnIndex;
  std::vector<Instruction *> Insts = M.allInstructions();
  S.Instructions.reserve(Insts.size());
  for (const Instruction *I : Insts) {
    obs::PropInstr Rec;
    Rec.Id = I->id();
    Rec.Opcode = static_cast<uint8_t>(I->opcode());
    Rec.Line = I->debugLoc().Line;
    Rec.Col = I->debugLoc().Col;
    const Function *F = I->parent() ? I->parent()->parent() : nullptr;
    auto It = FnIndex.find(F);
    if (It == FnIndex.end()) {
      It = FnIndex.emplace(F, static_cast<uint32_t>(S.Functions.size()))
               .first;
      S.Functions.push_back(F ? F->name() : std::string("<detached>"));
    }
    Rec.FunctionIndex = It->second;
    if (In.StaticBenign && Rec.Id < In.StaticBenign->size())
      Rec.StaticBenign = (*In.StaticBenign)[Rec.Id] ? 1 : 0;
    if (In.StaticSinkMask && Rec.Id < In.StaticSinkMask->size())
      Rec.StaticSinkMask = (*In.StaticSinkMask)[Rec.Id];
    if (In.Predictions && Rec.Id < In.Predictions->size()) {
      int P = (*In.Predictions)[Rec.Id];
      Rec.Predicted = P > 0 ? obs::PredictProtect
                            : (P < 0 ? obs::PredictSkip : obs::PredictNone);
    }
    S.Instructions.push_back(Rec);
  }

  S.Records = In.Result->PropRecords;
  return S;
}

bool ipas::writePropagationRecord(const obs::PropagationStore &S,
                                  const std::string &Path,
                                  std::string *Err) {
  if (!obs::writePropagationStore(S, Path, Err))
    return false;
  obs::TraceSink::event(
      "campaign.prop.record",
      obs::AttrSet()
          .add("label", S.Label.empty() ? "campaign" : S.Label.c_str())
          .add("path", Path)
          .add("records", static_cast<uint64_t>(S.Records.size()))
          .add("sample_every", S.SampleEvery));
  return true;
}
