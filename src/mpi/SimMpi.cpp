//===- mpi/SimMpi.cpp ----------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "mpi/SimMpi.h"

#include <algorithm>

using namespace ipas;

MpiJob::MpiJob(const ModuleLayout &Layout, const Config &Cfg) : Cfg(Cfg) {
  assert(Cfg.NumRanks >= 1 && "job needs at least one rank");
  for (int R = 0; R != Cfg.NumRanks; ++R) {
    ExecutionContext::Config RankCfg = Cfg.Rank;
    RankCfg.Rank = R;
    RankCfg.NumRanks = Cfg.NumRanks;
    // Decorrelate per-rank workload RNG streams.
    RankCfg.WorkloadRngSeed =
        Cfg.Rank.WorkloadRngSeed * 1000003ull + static_cast<uint64_t>(R);
    Ranks.push_back(std::make_unique<ExecutionContext>(Layout, RankCfg));
  }
}

void MpiJob::start(
    const Function *Entry,
    const std::function<std::vector<RtValue>(ExecutionContext &, int)>
        &ArgsFor) {
  for (int R = 0; R != Cfg.NumRanks; ++R) {
    ExecutionContext &Ctx = *Ranks[static_cast<size_t>(R)];
    Ctx.start(Entry, ArgsFor(Ctx, R));
  }
}

void MpiJob::chargeComm(uint64_t Bytes) {
  uint64_t Cost = Cfg.AlphaCost +
                  static_cast<uint64_t>(Cfg.BetaCostPerByte *
                                        static_cast<double>(Bytes));
  for (auto &R : Ranks)
    R->addCommCost(Cost);
}

JobResult MpiJob::run() {
  JobResult Result;
  while (true) {
    bool AnyRunning = false;
    for (int R = 0; R != Cfg.NumRanks; ++R) {
      ExecutionContext &Ctx = *Ranks[static_cast<size_t>(R)];
      if (Ctx.status() != RunStatus::Running)
        continue;
      AnyRunning = true;
      RunStatus S = Ctx.run(Cfg.StepBudgetPerRank);
      if (S == RunStatus::Trapped || S == RunStatus::Detected ||
          S == RunStatus::OutOfSteps) {
        // One failing process aborts the whole job (observable symptom /
        // detection propagates, paper §4.4.1).
        Result.Status = S;
        Result.Trap = Ctx.trap();
        Result.FailedRank = R;
        break;
      }
    }
    if (Result.Status != RunStatus::Finished)
      break;

    bool AllFinished = true;
    bool AllSettled = true; // finished or blocked
    int NumBlocked = 0;
    for (auto &Ctx : Ranks) {
      if (Ctx->status() == RunStatus::Blocked)
        ++NumBlocked;
      if (Ctx->status() != RunStatus::Finished)
        AllFinished = false;
      if (Ctx->status() == RunStatus::Running)
        AllSettled = false;
    }
    if (AllFinished)
      break;
    if (!AllSettled)
      continue;
    if (NumBlocked != Cfg.NumRanks) {
      // Some ranks exited while others wait on a collective: the real job
      // would hang in MPI_Wait forever.
      Result.Status = RunStatus::OutOfSteps;
      Result.FailedRank = -1;
      break;
    }
    if (!resolveCollective(Result))
      break;
    (void)AnyRunning;
  }

  for (auto &Ctx : Ranks) {
    Result.TotalSteps += Ctx->steps();
    Result.CriticalPathCycles =
        std::max(Result.CriticalPathCycles, Ctx->steps() + Ctx->commCost());
  }
  return Result;
}

bool MpiJob::resolveCollective(JobResult &Result) {
  const int P = Cfg.NumRanks;
  Intrinsic Op = Ranks[0]->pending().Op;
  for (auto &Ctx : Ranks)
    if (Ctx->pending().Op != Op) {
      // A corrupted rank reached a different collective: communicator
      // mismatch, which MVAPICH would surface as a fatal error.
      Ctx->failPending(TrapKind::MpiMismatch);
      Result.Status = RunStatus::Trapped;
      Result.Trap = TrapKind::MpiMismatch;
      Result.FailedRank = Ctx->rank();
      return false;
    }

  auto CompleteAll = [&](RtValue V) {
    for (auto &Ctx : Ranks)
      Ctx->completePendingCall(V);
  };

  switch (Op) {
  case Intrinsic::MpiBarrier:
    chargeComm(0);
    CompleteAll(RtValue());
    return true;
  case Intrinsic::MpiAllreduceSumD: {
    double Sum = 0.0;
    for (auto &Ctx : Ranks)
      Sum += Ctx->pending().Args[0].asF64();
    chargeComm(8ull * static_cast<uint64_t>(P));
    CompleteAll(RtValue::fromF64(Sum));
    return true;
  }
  case Intrinsic::MpiAllreduceMaxD: {
    double Max = Ranks[0]->pending().Args[0].asF64();
    for (auto &Ctx : Ranks)
      Max = std::max(Max, Ctx->pending().Args[0].asF64());
    chargeComm(8ull * static_cast<uint64_t>(P));
    CompleteAll(RtValue::fromF64(Max));
    return true;
  }
  case Intrinsic::MpiAllreduceSumI: {
    int64_t Sum = 0;
    for (auto &Ctx : Ranks)
      Sum += Ctx->pending().Args[0].asI64();
    chargeComm(8ull * static_cast<uint64_t>(P));
    CompleteAll(RtValue::fromI64(Sum));
    return true;
  }
  case Intrinsic::MpiBcastD:
  case Intrinsic::MpiBcastI: {
    int64_t Root = Ranks[0]->pending().Args[1].asI64();
    if (Root < 0 || Root >= P) {
      Ranks[0]->failPending(TrapKind::MpiMismatch);
      Result.Status = RunStatus::Trapped;
      Result.Trap = TrapKind::MpiMismatch;
      Result.FailedRank = 0;
      return false;
    }
    RtValue V = Ranks[static_cast<size_t>(Root)]->pending().Args[0];
    chargeComm(8ull * static_cast<uint64_t>(P));
    CompleteAll(V);
    return true;
  }
  case Intrinsic::MpiAllgatherD: {
    // Rank r contributes N slots; every rank receives P*N slots with rank
    // r's data at offset r*N.
    int64_t N = Ranks[0]->pending().Args[2].asI64();
    for (auto &Ctx : Ranks)
      if (Ctx->pending().Args[2].asI64() != N || N < 0) {
        Ctx->failPending(TrapKind::MpiMismatch);
        Result.Status = RunStatus::Trapped;
        Result.Trap = TrapKind::MpiMismatch;
        Result.FailedRank = Ctx->rank();
        return false;
      }
    uint64_t Count = static_cast<uint64_t>(N);
    // Validate all buffers before moving data.
    for (auto &Ctx : Ranks) {
      uint64_t Send = Ctx->pending().Args[0].asPtr();
      uint64_t Recv = Ctx->pending().Args[1].asPtr();
      if (!Ctx->memory().validRange(Send, Count * 8) ||
          !Ctx->memory().validRange(Recv,
                                    Count * 8 * static_cast<uint64_t>(P))) {
        Ctx->failPending(TrapKind::OutOfBounds);
        Result.Status = RunStatus::Trapped;
        Result.Trap = TrapKind::OutOfBounds;
        Result.FailedRank = Ctx->rank();
        return false;
      }
    }
    for (int Src = 0; Src != P; ++Src) {
      uint64_t SendAddr = Ranks[Src]->pending().Args[0].asPtr();
      for (int Dst = 0; Dst != P; ++Dst) {
        uint64_t RecvAddr = Ranks[Dst]->pending().Args[1].asPtr() +
                            static_cast<uint64_t>(Src) * Count * 8;
        for (uint64_t K = 0; K != Count; ++K)
          Ranks[Dst]->memory().write64(
              RecvAddr + K * 8,
              Ranks[Src]->memory().read64(SendAddr + K * 8));
      }
    }
    chargeComm(Count * 8 * static_cast<uint64_t>(P));
    CompleteAll(RtValue());
    return true;
  }
  case Intrinsic::MpiAlltoallD: {
    // Rank r's send buffer holds P segments of N slots; segment k goes to
    // rank k's recv buffer at offset r*N.
    int64_t N = Ranks[0]->pending().Args[2].asI64();
    for (auto &Ctx : Ranks)
      if (Ctx->pending().Args[2].asI64() != N || N < 0) {
        Ctx->failPending(TrapKind::MpiMismatch);
        Result.Status = RunStatus::Trapped;
        Result.Trap = TrapKind::MpiMismatch;
        Result.FailedRank = Ctx->rank();
        return false;
      }
    uint64_t Count = static_cast<uint64_t>(N);
    uint64_t Full = Count * 8 * static_cast<uint64_t>(P);
    for (auto &Ctx : Ranks) {
      uint64_t Send = Ctx->pending().Args[0].asPtr();
      uint64_t Recv = Ctx->pending().Args[1].asPtr();
      if (!Ctx->memory().validRange(Send, Full) ||
          !Ctx->memory().validRange(Recv, Full)) {
        Ctx->failPending(TrapKind::OutOfBounds);
        Result.Status = RunStatus::Trapped;
        Result.Trap = TrapKind::OutOfBounds;
        Result.FailedRank = Ctx->rank();
        return false;
      }
    }
    for (int Src = 0; Src != P; ++Src) {
      uint64_t SendBase = Ranks[Src]->pending().Args[0].asPtr();
      for (int Dst = 0; Dst != P; ++Dst) {
        uint64_t SegSrc = SendBase + static_cast<uint64_t>(Dst) * Count * 8;
        uint64_t SegDst = Ranks[Dst]->pending().Args[1].asPtr() +
                          static_cast<uint64_t>(Src) * Count * 8;
        for (uint64_t K = 0; K != Count; ++K)
          Ranks[Dst]->memory().write64(
              SegDst + K * 8, Ranks[Src]->memory().read64(SegSrc + K * 8));
      }
    }
    chargeComm(Full);
    CompleteAll(RtValue());
    return true;
  }
  default:
    assert(false && "non-collective op left pending");
    return false;
  }
}
