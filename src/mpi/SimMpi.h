//===- mpi/SimMpi.h - Simulated MPI job scheduler ---------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SimMPI runs one ExecutionContext per rank and resolves blocking
/// collectives when every rank has arrived, providing the semantics the
/// paper relies on (§4.4.1): rank/size queries, collectives, and "one
/// process fails => the whole job aborts with an observable symptom".
/// Ranks are scheduled deterministically (round-robin), so fault-injection
/// campaigns over MPI jobs are exactly reproducible.
///
/// A simple alpha-beta cost model charges each rank for communication so
/// that the scalability experiment (Figure 8) has a communication term
/// that duplication does not inflate.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_MPI_SIMMPI_H
#define IPAS_MPI_SIMMPI_H

#include "interp/Interpreter.h"

#include <functional>
#include <memory>
#include <vector>

namespace ipas {

/// Aggregate result of a parallel run.
struct JobResult {
  /// Finished when all ranks completed; otherwise the failure kind
  /// (Trapped/Detected/OutOfSteps) of the first rank that failed.
  RunStatus Status = RunStatus::Finished;
  TrapKind Trap = TrapKind::None;
  int FailedRank = -1;
  /// Critical-path cycles: max over ranks of (steps + comm cost). The
  /// slowdown metric for Figures 6 and 8 is a ratio of these.
  uint64_t CriticalPathCycles = 0;
  uint64_t TotalSteps = 0;
};

class MpiJob {
public:
  struct Config {
    int NumRanks = 1;
    ExecutionContext::Config Rank; ///< Template; Rank/NumRanks overridden.
    /// Per-rank step budget; exceeding it classifies the job as a hang.
    uint64_t StepBudgetPerRank = UINT64_MAX;
    /// Communication cost model: Alpha cycles per collective plus Beta
    /// cycles per byte moved (charged to every participating rank).
    uint64_t AlphaCost = 200;
    double BetaCostPerByte = 0.05;
  };

  MpiJob(const ModuleLayout &Layout, const Config &Cfg);

  int numRanks() const { return Cfg.NumRanks; }
  ExecutionContext &rank(int R) { return *Ranks[static_cast<size_t>(R)]; }

  /// Starts every rank on \p Entry. \p ArgsFor builds the per-rank argument
  /// list (and may allocate buffers in the rank's memory).
  void
  start(const Function *Entry,
        const std::function<std::vector<RtValue>(ExecutionContext &, int)>
            &ArgsFor);

  /// Runs the job to completion (or failure).
  JobResult run();

private:
  bool resolveCollective(JobResult &Result);
  void chargeComm(uint64_t Bytes);

  Config Cfg;
  std::vector<std::unique_ptr<ExecutionContext>> Ranks;
};

} // namespace ipas

#endif // IPAS_MPI_SIMMPI_H
