//===- ir/Value.h - Base of the IR value hierarchy -----------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value is the root of the SSA value hierarchy (arguments, constants,
/// instructions). Every Value tracks its users so that def-use chains — the
/// backbone of IPAS's forward slicing and duplication-path construction —
/// can be walked in both directions.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_IR_VALUE_H
#define IPAS_IR_VALUE_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ipas {

class Instruction;
class Function;

/// Discriminator for the Value hierarchy (LLVM-style RTTI).
enum class ValueKind : uint8_t {
  Argument,
  ConstantInt,
  ConstantFP,
  Instruction,
};

/// Base class of everything that can appear as an instruction operand.
class Value {
public:
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind kind() const { return Kind; }
  Type type() const { return Ty; }

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Instructions that use this value as an operand. An instruction appears
  /// once per operand slot that references this value.
  const std::vector<Instruction *> &users() const { return Users; }
  bool hasUses() const { return !Users.empty(); }

  /// Rewrites every use of this value to refer to \p New instead.
  /// \p New must have the same type.
  void replaceAllUsesWith(Value *New);

private:
  friend class Instruction;
  void addUser(Instruction *I) { Users.push_back(I); }
  void removeUser(Instruction *I);

protected:
  Value(ValueKind K, Type T) : Kind(K), Ty(T) {}

private:
  ValueKind Kind;
  Type Ty;
  std::string Name;
  std::vector<Instruction *> Users;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type T, Function *Parent, unsigned Index)
      : Value(ValueKind::Argument, T), Parent(Parent), Index(Index) {}

  Function *parent() const { return Parent; }
  unsigned index() const { return Index; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Argument;
  }

private:
  Function *Parent;
  unsigned Index;
};

/// Base class for constants (no users need to be tracked differently; they
/// participate in use lists like any Value).
class Constant : public Value {
public:
  static bool classof(const Value *V) {
    return V->kind() == ValueKind::ConstantInt ||
           V->kind() == ValueKind::ConstantFP;
  }

protected:
  using Value::Value;
};

/// An integer (i64), boolean (i1), or null-pointer (ptr) constant.
class ConstantInt : public Constant {
public:
  ConstantInt(Type T, int64_t V)
      : Constant(ValueKind::ConstantInt, T), Val(V) {
    assert((T.isInteger() || T.isPtr()) && "bad constant type");
  }

  int64_t value() const { return Val; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::ConstantInt;
  }

private:
  int64_t Val;
};

/// A double-precision floating-point constant.
class ConstantFP : public Constant {
public:
  explicit ConstantFP(double V)
      : Constant(ValueKind::ConstantFP, types::F64), Val(V) {}

  double value() const { return Val; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::ConstantFP;
  }

private:
  double Val;
};

} // namespace ipas

#endif // IPAS_IR_VALUE_H
