//===- ir/Intrinsics.cpp -----------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Intrinsics.h"

#include <cstring>

using namespace ipas;

const char *ipas::intrinsicName(Intrinsic I) {
  switch (I) {
  case Intrinsic::None:
    return "<none>";
  case Intrinsic::Sqrt:
    return "sqrt";
  case Intrinsic::Fabs:
    return "fabs";
  case Intrinsic::Sin:
    return "sin";
  case Intrinsic::Cos:
    return "cos";
  case Intrinsic::Exp:
    return "exp";
  case Intrinsic::Log:
    return "log";
  case Intrinsic::Pow:
    return "pow";
  case Intrinsic::Floor:
    return "floor";
  case Intrinsic::FMin:
    return "fmin";
  case Intrinsic::FMax:
    return "fmax";
  case Intrinsic::IMin:
    return "imin";
  case Intrinsic::IMax:
    return "imax";
  case Intrinsic::Malloc:
    return "malloc";
  case Intrinsic::Free:
    return "free";
  case Intrinsic::RandSeed:
    return "rand_seed";
  case Intrinsic::RandI64:
    return "rand_i64";
  case Intrinsic::RandF64:
    return "rand_f64";
  case Intrinsic::MpiRank:
    return "mpi_rank";
  case Intrinsic::MpiSize:
    return "mpi_size";
  case Intrinsic::MpiBarrier:
    return "mpi_barrier";
  case Intrinsic::MpiAllreduceSumD:
    return "mpi_allreduce_sum_d";
  case Intrinsic::MpiAllreduceMaxD:
    return "mpi_allreduce_max_d";
  case Intrinsic::MpiAllreduceSumI:
    return "mpi_allreduce_sum_i";
  case Intrinsic::MpiBcastD:
    return "mpi_bcast_d";
  case Intrinsic::MpiBcastI:
    return "mpi_bcast_i";
  case Intrinsic::MpiAllgatherD:
    return "mpi_allgather_d";
  case Intrinsic::MpiAlltoallD:
    return "mpi_alltoall_d";
  }
  return "<bad intrinsic>";
}

IntrinsicSignature ipas::intrinsicSignature(Intrinsic I) {
  using namespace types;
  switch (I) {
  case Intrinsic::None:
    return {Void, {}};
  case Intrinsic::Sqrt:
  case Intrinsic::Fabs:
  case Intrinsic::Sin:
  case Intrinsic::Cos:
  case Intrinsic::Exp:
  case Intrinsic::Log:
  case Intrinsic::Floor:
    return {F64, {F64}};
  case Intrinsic::Pow:
  case Intrinsic::FMin:
  case Intrinsic::FMax:
    return {F64, {F64, F64}};
  case Intrinsic::IMin:
  case Intrinsic::IMax:
    return {I64, {I64, I64}};
  case Intrinsic::Malloc:
    return {Ptr, {I64}};
  case Intrinsic::Free:
    return {Void, {Ptr}};
  case Intrinsic::RandSeed:
    return {Void, {I64}};
  case Intrinsic::RandI64:
    return {I64, {I64}};
  case Intrinsic::RandF64:
    return {F64, {}};
  case Intrinsic::MpiRank:
  case Intrinsic::MpiSize:
    return {I64, {}};
  case Intrinsic::MpiBarrier:
    return {Void, {}};
  case Intrinsic::MpiAllreduceSumD:
  case Intrinsic::MpiAllreduceMaxD:
    return {F64, {F64}};
  case Intrinsic::MpiAllreduceSumI:
    return {I64, {I64}};
  case Intrinsic::MpiBcastD:
    return {F64, {F64, I64}};
  case Intrinsic::MpiBcastI:
    return {I64, {I64, I64}};
  case Intrinsic::MpiAllgatherD:
  case Intrinsic::MpiAlltoallD:
    return {Void, {Ptr, Ptr, I64}};
  }
  return {Void, {}};
}

Intrinsic ipas::intrinsicByName(const char *Name) {
  static const Intrinsic All[] = {
      Intrinsic::Sqrt,           Intrinsic::Fabs,
      Intrinsic::Sin,            Intrinsic::Cos,
      Intrinsic::Exp,            Intrinsic::Log,
      Intrinsic::Pow,            Intrinsic::Floor,
      Intrinsic::FMin,           Intrinsic::FMax,
      Intrinsic::IMin,           Intrinsic::IMax,
      Intrinsic::Malloc,         Intrinsic::Free,
      Intrinsic::RandSeed,       Intrinsic::RandI64,
      Intrinsic::RandF64,        Intrinsic::MpiRank,
      Intrinsic::MpiSize,        Intrinsic::MpiBarrier,
      Intrinsic::MpiAllreduceSumD, Intrinsic::MpiAllreduceMaxD,
      Intrinsic::MpiAllreduceSumI, Intrinsic::MpiBcastD,
      Intrinsic::MpiBcastI,      Intrinsic::MpiAllgatherD,
      Intrinsic::MpiAlltoallD};
  for (Intrinsic I : All)
    if (std::strcmp(intrinsicName(I), Name) == 0)
      return I;
  return Intrinsic::None;
}

bool ipas::isMpiIntrinsic(Intrinsic I) {
  switch (I) {
  case Intrinsic::MpiBarrier:
  case Intrinsic::MpiAllreduceSumD:
  case Intrinsic::MpiAllreduceMaxD:
  case Intrinsic::MpiAllreduceSumI:
  case Intrinsic::MpiBcastD:
  case Intrinsic::MpiBcastI:
  case Intrinsic::MpiAllgatherD:
  case Intrinsic::MpiAlltoallD:
    return true;
  default:
    return false;
  }
}
