//===- ir/Module.h - Top-level IR container -------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module owns functions and the constant pool. It also assigns the
/// module-wide instruction numbering that the fault injector, the feature
/// extractor, and the classifier use to address static instructions.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_IR_MODULE_H
#define IPAS_IR_MODULE_H

#include "ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace ipas {

class Module {
public:
  explicit Module(std::string Name) : Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  const std::string &name() const { return Name; }

  /// Creates a new function owned by this module.
  Function *createFunction(std::string FnName, Type ReturnType,
                           std::vector<Type> ParamTypes);

  /// Finds a function by name; null when absent.
  Function *getFunction(const std::string &FnName) const;

  size_t numFunctions() const { return Functions.size(); }
  Function *function(size_t I) const {
    assert(I < Functions.size() && "function index out of range");
    return Functions[I].get();
  }

  /// Interned i64/i1/ptr constant.
  ConstantInt *getConstantInt(Type T, int64_t V);
  /// Interned f64 constant.
  ConstantFP *getConstantFP(double V);

  /// Convenience shorthands.
  ConstantInt *getInt64(int64_t V) { return getConstantInt(types::I64, V); }
  ConstantInt *getBool(bool V) { return getConstantInt(types::I1, V); }
  ConstantInt *getNullPtr() { return getConstantInt(types::Ptr, 0); }
  ConstantFP *getFloat(double V) { return getConstantFP(V); }

  /// Assigns sequential ids (0..N-1) to every instruction in layout order
  /// and returns the flat instruction list in id order. Must be re-run
  /// after any transformation that adds or removes instructions.
  std::vector<Instruction *> renumber();

  /// Flat instruction list in current id order (renumber() must be up to
  /// date; asserts on stale numbering in debug builds).
  std::vector<Instruction *> allInstructions() const;

  /// Total static instruction count (Table 3).
  size_t numInstructions() const;

  class FunctionIterator {
  public:
    FunctionIterator(const std::vector<std::unique_ptr<Function>> *V,
                     size_t I)
        : Vec(V), Idx(I) {}
    Function *operator*() const { return (*Vec)[Idx].get(); }
    FunctionIterator &operator++() {
      ++Idx;
      return *this;
    }
    bool operator!=(const FunctionIterator &O) const { return Idx != O.Idx; }

  private:
    const std::vector<std::unique_ptr<Function>> *Vec;
    size_t Idx;
  };

  FunctionIterator begin() const { return FunctionIterator(&Functions, 0); }
  FunctionIterator end() const {
    return FunctionIterator(&Functions, Functions.size());
  }

private:
  std::string Name;
  // Constants are declared before Functions so that during destruction the
  // Functions (whose instructions hold uses of the constants) are destroyed
  // first.
  std::vector<std::unique_ptr<Constant>> Constants;
  std::vector<std::unique_ptr<Function>> Functions;
};

} // namespace ipas

#endif // IPAS_IR_MODULE_H
