//===- ir/Intrinsics.h - Runtime intrinsics callable from IR -------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intrinsics are the IR's interface to the runtime: math library calls,
/// memory allocation, the deterministic workload RNG, and the simulated MPI
/// library. Following the paper (§4.4.1), IPAS never duplicates calls, and
/// the libraries behind these intrinsics are considered protected
/// externally; faults are still injected into the *values returned* by
/// calls, matching the paper's fault model (§3).
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_IR_INTRINSICS_H
#define IPAS_IR_INTRINSICS_H

#include "ir/Type.h"

#include <cstdint>
#include <vector>

namespace ipas {

enum class Intrinsic : uint8_t {
  None, ///< Not an intrinsic (direct call to a Function).
  // Math.
  Sqrt,
  Fabs,
  Sin,
  Cos,
  Exp,
  Log,
  Pow,
  Floor,
  FMin,
  FMax,
  IMin,
  IMax,
  // Memory management (bump allocator in the interpreter).
  Malloc,
  Free,
  // Deterministic workload RNG (xorshift state per execution context).
  RandSeed, ///< rand_seed(i64) -> void
  RandI64,  ///< rand_i64(bound) -> i64 in [0, bound)
  RandF64,  ///< rand_f64() -> f64 in [0, 1)
  // Simulated MPI. Blocking operations suspend the rank until all ranks in
  // the job reach a matching call.
  MpiRank,          ///< mpi_rank() -> i64
  MpiSize,          ///< mpi_size() -> i64
  MpiBarrier,       ///< mpi_barrier() -> void
  MpiAllreduceSumD, ///< mpi_allreduce_sum_d(f64) -> f64
  MpiAllreduceMaxD, ///< mpi_allreduce_max_d(f64) -> f64
  MpiAllreduceSumI, ///< mpi_allreduce_sum_i(i64) -> i64
  MpiBcastD,        ///< mpi_bcast_d(f64, i64 root) -> f64
  MpiBcastI,        ///< mpi_bcast_i(i64, i64 root) -> i64
  MpiAllgatherD,    ///< mpi_allgather_d(ptr send, ptr recv, i64 n) -> void
  MpiAlltoallD,     ///< mpi_alltoall_d(ptr send, ptr recv, i64 n) -> void
};

/// Signature of an intrinsic: result and parameter types.
struct IntrinsicSignature {
  Type Result;
  std::vector<Type> Params;
};

/// Returns the canonical source-level name (what MiniC programs call).
const char *intrinsicName(Intrinsic I);

/// Returns the signature used by codegen and the verifier.
IntrinsicSignature intrinsicSignature(Intrinsic I);

/// Looks an intrinsic up by source-level name; Intrinsic::None if unknown.
Intrinsic intrinsicByName(const char *Name);

/// True for the blocking MPI operations that must rendezvous across ranks.
bool isMpiIntrinsic(Intrinsic I);

} // namespace ipas

#endif // IPAS_IR_INTRINSICS_H
