//===- ir/IRBuilder.h - Convenience instruction factory -------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder appends instructions to a basic block, mirroring LLVM's
/// builder. The MiniC code generator and the unit tests construct all IR
/// through this interface.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_IR_IRBUILDER_H
#define IPAS_IR_IRBUILDER_H

#include "ir/Module.h"

#include <memory>

namespace ipas {

class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  void setInsertPoint(BasicBlock *Block) { BB = Block; }
  BasicBlock *insertBlock() const { return BB; }
  Module &module() const { return M; }

  /// Every instruction created until the next call is stamped with \p L.
  /// The frontend sets this from the AST node it is lowering; IR built by
  /// hand (tests, synthetic modules) carries the invalid default location.
  void setCurrentDebugLoc(DebugLoc L) { CurLoc = L; }
  DebugLoc currentDebugLoc() const { return CurLoc; }

  // Constants.
  ConstantInt *getInt64(int64_t V) { return M.getInt64(V); }
  ConstantInt *getBool(bool V) { return M.getBool(V); }
  ConstantFP *getFloat(double V) { return M.getFloat(V); }
  ConstantInt *getNullPtr() { return M.getNullPtr(); }

  // Binary operations.
  Value *createBinary(Opcode Op, Value *L, Value *R,
                      const std::string &Name = "") {
    return insert(new BinaryInst(Op, L, R), Name);
  }
  Value *createAdd(Value *L, Value *R) {
    return createBinary(Opcode::Add, L, R);
  }
  Value *createSub(Value *L, Value *R) {
    return createBinary(Opcode::Sub, L, R);
  }
  Value *createMul(Value *L, Value *R) {
    return createBinary(Opcode::Mul, L, R);
  }
  Value *createSDiv(Value *L, Value *R) {
    return createBinary(Opcode::SDiv, L, R);
  }
  Value *createSRem(Value *L, Value *R) {
    return createBinary(Opcode::SRem, L, R);
  }
  Value *createFAdd(Value *L, Value *R) {
    return createBinary(Opcode::FAdd, L, R);
  }
  Value *createFSub(Value *L, Value *R) {
    return createBinary(Opcode::FSub, L, R);
  }
  Value *createFMul(Value *L, Value *R) {
    return createBinary(Opcode::FMul, L, R);
  }
  Value *createFDiv(Value *L, Value *R) {
    return createBinary(Opcode::FDiv, L, R);
  }

  // Comparisons.
  Value *createICmp(CmpPredicate P, Value *L, Value *R,
                    const std::string &Name = "") {
    return insert(new CmpInst(Opcode::ICmp, P, L, R), Name);
  }
  Value *createFCmp(CmpPredicate P, Value *L, Value *R,
                    const std::string &Name = "") {
    return insert(new CmpInst(Opcode::FCmp, P, L, R), Name);
  }

  // Casts.
  Value *createCast(Opcode Op, Value *Src, const std::string &Name = "") {
    return insert(new CastInst(Op, Src), Name);
  }
  Value *createSIToFP(Value *Src) { return createCast(Opcode::SIToFP, Src); }
  Value *createFPToSI(Value *Src) { return createCast(Opcode::FPToSI, Src); }
  Value *createZExt(Value *Src) { return createCast(Opcode::ZExt, Src); }

  // Memory.
  Value *createAlloca(uint64_t Slots, const std::string &Name = "") {
    return insert(new AllocaInst(Slots), Name);
  }
  Value *createLoad(Type T, Value *Ptr, const std::string &Name = "") {
    return insert(new LoadInst(T, Ptr), Name);
  }
  Instruction *createStore(Value *V, Value *Ptr) {
    return insert(new StoreInst(V, Ptr), "");
  }
  Value *createGep(Value *Base, Value *Index, const std::string &Name = "") {
    return insert(new GepInst(Base, Index), Name);
  }

  // Phis / selects / calls.
  PhiInst *createPhi(Type T, const std::string &Name = "") {
    return static_cast<PhiInst *>(insert(new PhiInst(T), Name));
  }
  Value *createSelect(Value *Cond, Value *TrueV, Value *FalseV,
                      const std::string &Name = "") {
    return insert(new SelectInst(Cond, TrueV, FalseV), Name);
  }
  Value *createCall(Function *Callee, std::vector<Value *> Args,
                    const std::string &Name = "") {
    return insert(new CallInst(Callee, Callee->returnType(), std::move(Args)),
                  Name);
  }
  Value *createIntrinsicCall(Intrinsic I, std::vector<Value *> Args,
                             const std::string &Name = "") {
    return insert(new CallInst(I, intrinsicSignature(I).Result,
                               std::move(Args)),
                  Name);
  }

  // Terminators.
  Instruction *createBr(BasicBlock *Target) {
    return insert(new BranchInst(Target), "");
  }
  Instruction *createCondBr(Value *Cond, BasicBlock *TrueT,
                            BasicBlock *FalseT) {
    return insert(new CondBranchInst(Cond, TrueT, FalseT), "");
  }
  Instruction *createRet(Value *V = nullptr) {
    return insert(new RetInst(V), "");
  }

private:
  Instruction *insert(Instruction *I, const std::string &Name) {
    assert(BB && "no insertion point set");
    if (!Name.empty())
      I->setName(Name);
    I->setDebugLoc(CurLoc);
    return BB->append(std::unique_ptr<Instruction>(I));
  }

  Module &M;
  BasicBlock *BB = nullptr;
  DebugLoc CurLoc;
};

} // namespace ipas

#endif // IPAS_IR_IRBUILDER_H
