//===- ir/IRPrinter.cpp -------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "ir/Module.h"

#include <map>
#include <sstream>

using namespace ipas;

namespace {

/// Assigns %N names to unnamed values within a function, LLVM style.
class Namer {
public:
  explicit Namer(const Function &F) {
    for (unsigned I = 0; I != F.numArgs(); ++I)
      nameOf(F.arg(I));
    for (BasicBlock *BB : F)
      for (Instruction *Inst : *BB)
        if (Inst->producesValue())
          nameOf(Inst);
  }

  std::string nameOf(const Value *V) {
    if (auto *CI = dyn_cast<ConstantInt>(V)) {
      std::ostringstream OS;
      if (CI->type().isPtr())
        OS << (CI->value() == 0 ? "null" : std::to_string(CI->value()));
      else
        OS << CI->value();
      return OS.str();
    }
    if (auto *CF = dyn_cast<ConstantFP>(V)) {
      std::ostringstream OS;
      OS.precision(17);
      OS << CF->value();
      return OS.str();
    }
    if (!V->name().empty())
      return "%" + V->name() + suffixFor(V);
    auto It = Numbers.find(V);
    if (It == Numbers.end())
      It = Numbers.emplace(V, NextNumber++).first;
    return "%" + std::to_string(It->second);
  }

private:
  /// Distinct unnamed values can share a user-provided name; disambiguate
  /// with a numeric suffix on collision.
  std::string suffixFor(const Value *V) {
    auto It = NameClaims.find(V->name());
    if (It == NameClaims.end()) {
      NameClaims.emplace(V->name(), V);
      return "";
    }
    if (It->second == V)
      return "";
    auto NumIt = Numbers.find(V);
    if (NumIt == Numbers.end())
      NumIt = Numbers.emplace(V, NextNumber++).first;
    return "." + std::to_string(NumIt->second);
  }

  std::map<const Value *, unsigned> Numbers;
  std::map<std::string, const Value *> NameClaims;
  unsigned NextNumber = 0;
};

std::string renderInstruction(const Instruction &I, Namer &N) {
  std::ostringstream OS;
  if (I.producesValue())
    OS << N.nameOf(&I) << " = ";
  OS << opcodeName(I.opcode());
  if (const auto *Cmp = dyn_cast<CmpInst>(&I))
    OS << " " << cmpPredicateName(Cmp->predicate());
  if (const auto *Alloca = dyn_cast<AllocaInst>(&I))
    OS << " " << Alloca->slotCount() << " x i64slot";
  if (const auto *Call = dyn_cast<CallInst>(&I)) {
    OS << " @"
       << (Call->isIntrinsicCall() ? intrinsicName(Call->intrinsicId())
                                   : Call->callee()->name());
  }
  if (!I.type().isVoid())
    OS << " " << I.type().name();

  bool First = true;
  if (const auto *Phi = dyn_cast<PhiInst>(&I)) {
    for (unsigned K = 0; K != Phi->numIncoming(); ++K) {
      OS << (First ? " " : ", ");
      First = false;
      OS << "[" << N.nameOf(Phi->incomingValue(K)) << ", %"
         << Phi->incomingBlock(K)->name() << "]";
    }
  } else {
    for (const Value *Op : I.operands()) {
      OS << (First ? " " : ", ");
      First = false;
      OS << N.nameOf(Op);
    }
  }

  if (const auto *Br = dyn_cast<BranchInst>(&I))
    OS << " label %" << Br->target()->name();
  if (const auto *CBr = dyn_cast<CondBranchInst>(&I))
    OS << ", label %" << CBr->trueTarget()->name() << ", label %"
       << CBr->falseTarget()->name();
  return OS.str();
}

} // namespace

std::string ipas::printInstruction(const Instruction &I) {
  assert(I.parent() && I.parent()->parent() &&
         "printing a detached instruction");
  Namer N(*I.parent()->parent());
  return renderInstruction(I, N);
}

std::string ipas::printFunction(const Function &F) {
  Namer N(F);
  std::ostringstream OS;
  OS << "define " << F.returnType().name() << " @" << F.name() << "(";
  for (unsigned I = 0; I != F.numArgs(); ++I) {
    if (I)
      OS << ", ";
    OS << F.arg(I)->type().name() << " " << N.nameOf(F.arg(I));
  }
  OS << ") {\n";
  for (BasicBlock *BB : F) {
    OS << BB->name() << ":\n";
    for (Instruction *I : *BB)
      OS << "  " << renderInstruction(*I, N) << "\n";
  }
  OS << "}\n";
  return OS.str();
}

std::string ipas::printModule(const Module &M) {
  std::ostringstream OS;
  OS << "; module " << M.name() << "\n";
  for (Function *F : M)
    OS << "\n" << printFunction(*F);
  return OS.str();
}
