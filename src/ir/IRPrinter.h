//===- ir/IRPrinter.h - Textual IR dump ------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_IR_IRPRINTER_H
#define IPAS_IR_IRPRINTER_H

#include <string>

namespace ipas {

class Function;
class Module;
class Instruction;

/// Renders \p F as LLVM-like text (for debugging and golden tests).
std::string printFunction(const Function &F);

/// Renders all functions in \p M.
std::string printModule(const Module &M);

/// Renders one instruction (operands by name or %id).
std::string printInstruction(const Instruction &I);

} // namespace ipas

#endif // IPAS_IR_IRPRINTER_H
