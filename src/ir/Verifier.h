//===- ir/Verifier.h - Structural IR well-formedness checks --------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_IR_VERIFIER_H
#define IPAS_IR_VERIFIER_H

#include <string>
#include <vector>

namespace ipas {

class Function;
class Module;

/// Optional strictness knobs layered on top of the structural checks.
struct VerifierOptions {
  /// Require a valid DebugLoc (Line != 0) on every instruction. Enabled
  /// for modules compiled from MiniC source (the frontend stamps every
  /// instruction), where a missing location would break campaign
  /// provenance attribution; hand-built test IR leaves this off.
  bool RequireDebugLocs = false;
};

/// Checks structural invariants: every block ends in exactly one
/// terminator, phis are at the top of their block and match the
/// predecessor set, operand types match opcode expectations, calls match
/// callee/intrinsic signatures, and every SSA use is dominated by its
/// definition. Returns human-readable violation messages (empty = valid).
std::vector<std::string> verifyFunction(const Function &F);
std::vector<std::string> verifyFunction(const Function &F,
                                        const VerifierOptions &Opts);

/// Verifies every function in \p M.
std::vector<std::string> verifyModule(const Module &M);
std::vector<std::string> verifyModule(const Module &M,
                                      const VerifierOptions &Opts);

} // namespace ipas

#endif // IPAS_IR_VERIFIER_H
