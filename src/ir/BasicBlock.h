//===- ir/BasicBlock.h - Straight-line instruction sequence --------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BasicBlock owns an ordered list of instructions ending in exactly one
/// terminator. The IPAS duplication pass confines duplication paths to a
/// single basic block (paper §4.4), so the block is also the unit of
/// protection.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_IR_BASICBLOCK_H
#define IPAS_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace ipas {

class Function;

class BasicBlock {
public:
  BasicBlock(std::string Name, Function *Parent)
      : Name(std::move(Name)), Parent(Parent) {}
  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;
  ~BasicBlock();

  const std::string &name() const { return Name; }
  Function *parent() const { return Parent; }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  /// Instruction at position \p I.
  Instruction *at(size_t I) const {
    assert(I < Insts.size() && "instruction index out of range");
    return Insts[I].get();
  }

  /// Position of \p I within the block; asserts when not found.
  size_t indexOf(const Instruction *I) const;

  /// Appends \p I (takes ownership) and returns the raw pointer.
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts \p I before \p Pos (takes ownership); returns the raw pointer.
  Instruction *insertBefore(Instruction *Pos, std::unique_ptr<Instruction> I);

  /// Inserts \p I immediately after \p Pos.
  Instruction *insertAfter(Instruction *Pos, std::unique_ptr<Instruction> I);

  /// Removes and destroys \p I. The instruction must have no remaining
  /// users.
  void erase(Instruction *I);

  /// Removes \p I from the block without destroying it.
  std::unique_ptr<Instruction> remove(Instruction *I);

  /// Last instruction when it is a terminator; null otherwise.
  Instruction *terminator() const;

  /// Successor blocks, derived from the terminator.
  std::vector<BasicBlock *> successors() const;

  /// Range-style iteration over raw instruction pointers.
  class InstIterator {
  public:
    InstIterator(const std::vector<std::unique_ptr<Instruction>> *V,
                 size_t I)
        : Vec(V), Idx(I) {}
    Instruction *operator*() const { return (*Vec)[Idx].get(); }
    InstIterator &operator++() {
      ++Idx;
      return *this;
    }
    bool operator!=(const InstIterator &O) const { return Idx != O.Idx; }
    bool operator==(const InstIterator &O) const { return Idx == O.Idx; }

  private:
    const std::vector<std::unique_ptr<Instruction>> *Vec;
    size_t Idx;
  };

  InstIterator begin() const { return InstIterator(&Insts, 0); }
  InstIterator end() const { return InstIterator(&Insts, Insts.size()); }

private:
  friend class Function;

  std::string Name;
  Function *Parent;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

} // namespace ipas

#endif // IPAS_IR_BASICBLOCK_H
