//===- ir/Module.cpp ---------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

using namespace ipas;

Function *Module::createFunction(std::string FnName, Type ReturnType,
                                 std::vector<Type> ParamTypes) {
  assert(!getFunction(FnName) && "duplicate function name");
  Functions.push_back(std::make_unique<Function>(
      std::move(FnName), ReturnType, std::move(ParamTypes), this));
  return Functions.back().get();
}

Function *Module::getFunction(const std::string &FnName) const {
  for (const auto &F : Functions)
    if (F->name() == FnName)
      return F.get();
  return nullptr;
}

ConstantInt *Module::getConstantInt(Type T, int64_t V) {
  for (const auto &C : Constants)
    if (auto *CI = dyn_cast<ConstantInt>(C.get()))
      if (CI->type() == T && CI->value() == V)
        return CI;
  Constants.push_back(std::make_unique<ConstantInt>(T, V));
  return cast<ConstantInt>(Constants.back().get());
}

ConstantFP *Module::getConstantFP(double V) {
  // Compare bit patterns so that -0.0 and 0.0 intern separately and NaNs
  // do not defeat the cache.
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  __builtin_memcpy(&Bits, &V, sizeof(V));
  for (const auto &C : Constants)
    if (auto *CF = dyn_cast<ConstantFP>(C.get())) {
      uint64_t CBits;
      double CV = CF->value();
      __builtin_memcpy(&CBits, &CV, sizeof(CV));
      if (CBits == Bits)
        return CF;
    }
  Constants.push_back(std::make_unique<ConstantFP>(V));
  return cast<ConstantFP>(Constants.back().get());
}

std::vector<Instruction *> Module::renumber() {
  std::vector<Instruction *> All;
  unsigned Id = 0;
  for (const auto &F : Functions)
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB) {
        I->setId(Id++);
        All.push_back(I);
      }
  return All;
}

std::vector<Instruction *> Module::allInstructions() const {
  std::vector<Instruction *> All;
  for (const auto &F : Functions)
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        All.push_back(I);
  return All;
}

size_t Module::numInstructions() const {
  size_t N = 0;
  for (const auto &F : Functions)
    N += F->numInstructions();
  return N;
}
