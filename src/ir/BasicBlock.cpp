//===- ir/BasicBlock.cpp ----------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"

#include <algorithm>

using namespace ipas;

BasicBlock::~BasicBlock() {
  // Break operand references first so destruction order is irrelevant.
  for (auto &I : Insts)
    I->dropAllReferences();
}

size_t BasicBlock::indexOf(const Instruction *I) const {
  for (size_t Idx = 0, E = Insts.size(); Idx != E; ++Idx)
    if (Insts[Idx].get() == I)
      return Idx;
  assert(false && "instruction not in this block");
  return Insts.size();
}

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert(I && "appending null instruction");
  I->setParent(this);
  Insts.push_back(std::move(I));
  return Insts.back().get();
}

Instruction *BasicBlock::insertBefore(Instruction *Pos,
                                      std::unique_ptr<Instruction> I) {
  assert(I && "inserting null instruction");
  size_t Idx = indexOf(Pos);
  I->setParent(this);
  Instruction *Raw = I.get();
  Insts.insert(Insts.begin() + static_cast<ptrdiff_t>(Idx), std::move(I));
  return Raw;
}

Instruction *BasicBlock::insertAfter(Instruction *Pos,
                                     std::unique_ptr<Instruction> I) {
  assert(I && "inserting null instruction");
  size_t Idx = indexOf(Pos) + 1;
  I->setParent(this);
  Instruction *Raw = I.get();
  Insts.insert(Insts.begin() + static_cast<ptrdiff_t>(Idx), std::move(I));
  return Raw;
}

void BasicBlock::erase(Instruction *I) {
  assert(!I->hasUses() && "erasing an instruction that still has users");
  size_t Idx = indexOf(I);
  Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Idx));
}

std::unique_ptr<Instruction> BasicBlock::remove(Instruction *I) {
  size_t Idx = indexOf(I);
  std::unique_ptr<Instruction> Owned = std::move(Insts[Idx]);
  Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Idx));
  Owned->setParent(nullptr);
  return Owned;
}

Instruction *BasicBlock::terminator() const {
  if (Insts.empty())
    return nullptr;
  Instruction *Last = Insts.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Result;
  if (Instruction *Term = terminator())
    for (unsigned I = 0, E = Term->numSuccessors(); I != E; ++I)
      Result.push_back(Term->successor(I));
  return Result;
}
