//===- ir/Instruction.h - IR instruction hierarchy -----------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set is a compact subset of LLVM IR: integer and floating
/// binary operations, comparisons, casts, memory operations over a flat
/// address space, phis, selects, calls, and terminators — plus `Check`, the
/// comparison instruction the IPAS duplication pass inserts at the end of a
/// duplication path (paper §4.4).
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_IR_INSTRUCTION_H
#define IPAS_IR_INSTRUCTION_H

#include "ir/Intrinsics.h"
#include "ir/Value.h"

#include <memory>
#include <vector>

namespace ipas {

class BasicBlock;
class Function;

enum class Opcode : uint8_t {
  // Integer binary operations.
  Add,
  Sub,
  Mul,
  SDiv,
  SRem,
  And,
  Or,
  Xor,
  Shl,
  AShr,
  // Floating-point binary operations.
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Comparisons (produce i1).
  ICmp,
  FCmp,
  // Casts.
  SIToFP,
  FPToSI,
  ZExt,       ///< i1 -> i64
  BitcastF2I, ///< reinterpret f64 bits as i64
  BitcastI2F, ///< reinterpret i64 bits as f64
  // Memory.
  Alloca,
  Load,
  Store,
  Gep,
  // Other value-producing operations.
  Phi,
  Select,
  Call,
  // Fault-detection comparison inserted by the duplication pass.
  Check,
  // Terminators.
  Br,
  CondBr,
  Ret,
};

/// Printable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

inline bool isIntBinaryOpcode(Opcode Op) {
  return Op >= Opcode::Add && Op <= Opcode::AShr;
}
inline bool isFPBinaryOpcode(Opcode Op) {
  return Op >= Opcode::FAdd && Op <= Opcode::FDiv;
}
inline bool isBinaryOpcode(Opcode Op) {
  return isIntBinaryOpcode(Op) || isFPBinaryOpcode(Op);
}
inline bool isCmpOpcode(Opcode Op) {
  return Op == Opcode::ICmp || Op == Opcode::FCmp;
}
inline bool isCastOpcode(Opcode Op) {
  return Op >= Opcode::SIToFP && Op <= Opcode::BitcastI2F;
}
inline bool isTerminatorOpcode(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

/// True for opcodes the duplication pass knows how to duplicate:
/// computation instructions only — no loads/stores (ECC-protected memory),
/// no calls (library code is protected separately, §5.1), no allocas, no
/// phis (their incoming shadows would cross block boundaries), and no
/// control flow (covered by control-flow checking techniques, §3). Lives
/// in the IR layer so both transform/Duplication and the ipas-lint
/// checker (analysis/ProtectionLint) share one definition.
inline bool isDuplicableOpcode(Opcode Op) {
  return isBinaryOpcode(Op) || isCmpOpcode(Op) || isCastOpcode(Op) ||
         Op == Opcode::Gep || Op == Opcode::Select;
}

/// Comparison predicate shared by ICmp (signed) and FCmp (ordered).
enum class CmpPredicate : uint8_t { EQ, NE, LT, LE, GT, GE };

const char *cmpPredicateName(CmpPredicate P);

/// Protection-provenance role recorded by the duplication pass and consumed
/// by the `ipas-lint` invariant checker (analysis/ProtectionLint.h).
enum class DupRole : uint8_t {
  None,     ///< Untouched by the duplication pass.
  Original, ///< Selected instruction that received a shadow copy.
  Shadow,   ///< Shadow copy of an Original (dupLink() is the original).
  Check,    ///< `soc.check` comparing an original against its shadow.
};

const char *dupRoleName(DupRole R);

/// Source attribution for an instruction: the 1-based line/column of the
/// MiniC construct it was compiled from. Line 0 means "no location"; the
/// verifier can require valid locations on every instruction (see
/// VerifierOptions::RequireDebugLocs) so that campaign provenance stores
/// can attribute every injection to a source line.
struct DebugLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  DebugLoc() = default;
  DebugLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }
  bool operator==(const DebugLoc &O) const {
    return Line == O.Line && Col == O.Col;
  }
  bool operator!=(const DebugLoc &O) const { return !(*this == O); }
};

/// Base class of all IR instructions. Owns its operand list and keeps the
/// operands' use lists in sync.
class Instruction : public Value {
public:
  ~Instruction() override;

  Opcode opcode() const { return Op; }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  unsigned numOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  Value *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  const std::vector<Value *> &operands() const { return Operands; }

  /// Replaces operand \p I, updating use lists.
  void setOperand(unsigned I, Value *V);

  /// Clears the operand list (removing this from use lists). Used prior to
  /// bulk deletion so that destruction order does not matter.
  void dropAllReferences();

  bool producesValue() const { return !type().isVoid(); }
  bool isTerminator() const { return isTerminatorOpcode(Op); }

  /// Module-wide stable identifier, assigned by Module::renumber(). Fault
  /// campaigns and classifiers address instructions by this id.
  unsigned id() const { return Id; }
  void setId(unsigned I) { Id = I; }

  /// Protection provenance. The duplication pass stamps every instruction
  /// it touches; clone() deliberately does not copy the stamp (a clone of
  /// a shadow is not itself a shadow).
  DupRole dupRole() const { return Role; }
  void setDupRole(DupRole R) { Role = R; }

  /// For a Shadow or Check: the Original instruction it protects; null
  /// otherwise. The link is a plain pointer — it dangles if the original
  /// is erased, which is itself a lint violation.
  Instruction *dupLink() const { return Link; }
  void setDupLink(Instruction *I) { Link = I; }

  /// Source attribution, stamped by the frontend (via IRBuilder) and
  /// inherited through clone() and the transform passes.
  DebugLoc debugLoc() const { return Loc; }
  void setDebugLoc(DebugLoc L) { Loc = L; }

  /// Creates an unattached copy of this instruction referencing the same
  /// operands. Branch targets and phi incoming blocks are copied verbatim.
  /// The copy inherits this instruction's DebugLoc (a shadow protects the
  /// same source line as its original) but, deliberately, not its DupRole
  /// — a clone of a shadow is not itself a shadow.
  Instruction *clone() const {
    Instruction *C = cloneImpl();
    C->Loc = Loc;
    return C;
  }

  /// Number of successor blocks (nonzero only for Br/CondBr).
  unsigned numSuccessors() const;
  BasicBlock *successor(unsigned I) const;

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Instruction;
  }

protected:
  Instruction(Opcode Op, Type T, std::vector<Value *> Ops);

  /// Subclass hook for clone(): copies opcode-specific state; the base
  /// clone() wrapper copies the shared DebugLoc.
  virtual Instruction *cloneImpl() const = 0;

  /// Appends an operand after construction (phi incoming values),
  /// maintaining the use list.
  void appendOperand(Value *V);

private:
  Opcode Op;
  std::vector<Value *> Operands;
  BasicBlock *Parent = nullptr;
  unsigned Id = 0;
  DupRole Role = DupRole::None;
  Instruction *Link = nullptr;
  DebugLoc Loc;
};

/// Integer or floating-point binary operation.
class BinaryInst : public Instruction {
public:
  BinaryInst(Opcode Op, Value *LHS, Value *RHS)
      : Instruction(Op, LHS->type(), {LHS, RHS}) {
    assert(isBinaryOpcode(Op) && "not a binary opcode");
    assert(LHS->type() == RHS->type() && "binary operand type mismatch");
  }

  Value *lhs() const { return operand(0); }
  Value *rhs() const { return operand(1); }

  Instruction *cloneImpl() const override {
    return new BinaryInst(opcode(), operand(0), operand(1));
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && isBinaryOpcode(I->opcode());
  }
};

/// Integer (signed) or floating-point (ordered) comparison; result i1.
class CmpInst : public Instruction {
public:
  CmpInst(Opcode Op, CmpPredicate Pred, Value *LHS, Value *RHS)
      : Instruction(Op, types::I1, {LHS, RHS}), Pred(Pred) {
    assert(isCmpOpcode(Op) && "not a comparison opcode");
    assert(LHS->type() == RHS->type() && "cmp operand type mismatch");
  }

  CmpPredicate predicate() const { return Pred; }
  Value *lhs() const { return operand(0); }
  Value *rhs() const { return operand(1); }

  Instruction *cloneImpl() const override {
    return new CmpInst(opcode(), Pred, operand(0), operand(1));
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && isCmpOpcode(I->opcode());
  }

private:
  CmpPredicate Pred;
};

/// Conversion between the scalar types.
class CastInst : public Instruction {
public:
  CastInst(Opcode Op, Value *Src) : Instruction(Op, resultType(Op), {Src}) {
    assert(isCastOpcode(Op) && "not a cast opcode");
  }

  Value *source() const { return operand(0); }

  Instruction *cloneImpl() const override {
    return new CastInst(opcode(), operand(0));
  }

  static Type resultType(Opcode Op) {
    switch (Op) {
    case Opcode::SIToFP:
    case Opcode::BitcastI2F:
      return types::F64;
    case Opcode::FPToSI:
    case Opcode::ZExt:
    case Opcode::BitcastF2I:
      return types::I64;
    default:
      assert(false && "not a cast opcode");
      return types::Void;
    }
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && isCastOpcode(I->opcode());
  }
};

/// Stack allocation of \p slotCount 8-byte slots; yields a pointer.
class AllocaInst : public Instruction {
public:
  explicit AllocaInst(uint64_t SlotCount)
      : Instruction(Opcode::Alloca, types::Ptr, {}), Slots(SlotCount) {
    assert(SlotCount > 0 && "alloca of zero slots");
  }

  uint64_t slotCount() const { return Slots; }

  Instruction *cloneImpl() const override { return new AllocaInst(Slots); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Alloca;
  }

private:
  uint64_t Slots;
};

/// Loads a scalar of the given type from a pointer operand.
class LoadInst : public Instruction {
public:
  LoadInst(Type T, Value *Ptr) : Instruction(Opcode::Load, T, {Ptr}) {
    assert(Ptr->type().isPtr() && "load pointer operand must be ptr");
    assert(!T.isVoid() && "cannot load void");
  }

  Value *pointer() const { return operand(0); }

  Instruction *cloneImpl() const override {
    return new LoadInst(type(), operand(0));
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Load;
  }
};

/// Stores a scalar value through a pointer operand.
class StoreInst : public Instruction {
public:
  StoreInst(Value *Val, Value *Ptr)
      : Instruction(Opcode::Store, types::Void, {Val, Ptr}) {
    assert(Ptr->type().isPtr() && "store pointer operand must be ptr");
  }

  Value *storedValue() const { return operand(0); }
  Value *pointer() const { return operand(1); }

  Instruction *cloneImpl() const override {
    return new StoreInst(operand(0), operand(1));
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Store;
  }
};

/// Pointer arithmetic: base + 8 * index (every memory slot is 8 bytes).
class GepInst : public Instruction {
public:
  GepInst(Value *Base, Value *Index)
      : Instruction(Opcode::Gep, types::Ptr, {Base, Index}) {
    assert(Base->type().isPtr() && "gep base must be ptr");
    assert(Index->type().isI64() && "gep index must be i64");
  }

  Value *base() const { return operand(0); }
  Value *index() const { return operand(1); }

  Instruction *cloneImpl() const override {
    return new GepInst(operand(0), operand(1));
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Gep;
  }
};

/// SSA phi node. Incoming values are operands; incoming blocks are kept in
/// a parallel array.
class PhiInst : public Instruction {
public:
  explicit PhiInst(Type T) : Instruction(Opcode::Phi, T, {}) {}

  void addIncoming(Value *V, BasicBlock *BB);

  unsigned numIncoming() const { return numOperands(); }
  Value *incomingValue(unsigned I) const { return operand(I); }
  BasicBlock *incomingBlock(unsigned I) const {
    assert(I < Blocks.size() && "phi incoming index out of range");
    return Blocks[I];
  }
  void setIncomingBlock(unsigned I, BasicBlock *BB) {
    assert(I < Blocks.size() && "phi incoming index out of range");
    Blocks[I] = BB;
  }

  /// Returns the incoming value for \p BB; null when BB is not incoming.
  Value *incomingValueFor(const BasicBlock *BB) const;

  Instruction *cloneImpl() const override;

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Phi;
  }

private:
  std::vector<BasicBlock *> Blocks;
};

/// Two-way select: cond ? a : b.
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueV, Value *FalseV)
      : Instruction(Opcode::Select, TrueV->type(), {Cond, TrueV, FalseV}) {
    assert(Cond->type().isI1() && "select condition must be i1");
    assert(TrueV->type() == FalseV->type() && "select arm type mismatch");
  }

  Value *condition() const { return operand(0); }
  Value *trueValue() const { return operand(1); }
  Value *falseValue() const { return operand(2); }

  Instruction *cloneImpl() const override {
    return new SelectInst(operand(0), operand(1), operand(2));
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Select;
  }
};

/// Call to either a Function in the module or a runtime intrinsic.
class CallInst : public Instruction {
public:
  CallInst(Function *Callee, Type ResultType, std::vector<Value *> Args);
  CallInst(Intrinsic IntrinsicId, Type ResultType, std::vector<Value *> Args);

  Function *callee() const { return Callee; }
  Intrinsic intrinsicId() const { return IntrinsicId; }
  bool isIntrinsicCall() const { return IntrinsicId != Intrinsic::None; }

  unsigned numArgs() const { return numOperands(); }
  Value *arg(unsigned I) const { return operand(I); }

  Instruction *cloneImpl() const override;

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Call;
  }

private:
  Function *Callee = nullptr;
  Intrinsic IntrinsicId = Intrinsic::None;
};

/// Detector inserted by the duplication pass: if the two operands differ at
/// runtime the interpreter raises a Detected event.
class CheckInst : public Instruction {
public:
  CheckInst(Value *Original, Value *Shadow)
      : Instruction(Opcode::Check, types::Void, {Original, Shadow}) {
    assert(Original->type() == Shadow->type() && "check type mismatch");
    setDupRole(DupRole::Check);
  }

  Value *original() const { return operand(0); }
  Value *shadow() const { return operand(1); }

  Instruction *cloneImpl() const override {
    return new CheckInst(operand(0), operand(1));
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Check;
  }
};

/// Unconditional branch.
class BranchInst : public Instruction {
public:
  explicit BranchInst(BasicBlock *Target)
      : Instruction(Opcode::Br, types::Void, {}), Target(Target) {
    assert(Target && "branch target must be non-null");
  }

  BasicBlock *target() const { return Target; }
  void setTarget(BasicBlock *BB) { Target = BB; }

  Instruction *cloneImpl() const override { return new BranchInst(Target); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Br;
  }

private:
  BasicBlock *Target;
};

/// Conditional branch on an i1 operand.
class CondBranchInst : public Instruction {
public:
  CondBranchInst(Value *Cond, BasicBlock *TrueTarget, BasicBlock *FalseTarget)
      : Instruction(Opcode::CondBr, types::Void, {Cond}),
        TrueTarget(TrueTarget), FalseTarget(FalseTarget) {
    assert(Cond->type().isI1() && "condbr condition must be i1");
    assert(TrueTarget && FalseTarget && "condbr targets must be non-null");
  }

  Value *condition() const { return operand(0); }
  BasicBlock *trueTarget() const { return TrueTarget; }
  BasicBlock *falseTarget() const { return FalseTarget; }
  void setTrueTarget(BasicBlock *BB) { TrueTarget = BB; }
  void setFalseTarget(BasicBlock *BB) { FalseTarget = BB; }

  Instruction *cloneImpl() const override {
    return new CondBranchInst(operand(0), TrueTarget, FalseTarget);
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::CondBr;
  }

private:
  BasicBlock *TrueTarget;
  BasicBlock *FalseTarget;
};

/// Function return, with an optional value.
class RetInst : public Instruction {
public:
  explicit RetInst(Value *V = nullptr)
      : Instruction(Opcode::Ret, types::Void,
                    V ? std::vector<Value *>{V} : std::vector<Value *>{}) {}

  bool hasReturnValue() const { return numOperands() == 1; }
  Value *returnValue() const {
    assert(hasReturnValue() && "ret void has no value");
    return operand(0);
  }

  Instruction *cloneImpl() const override {
    return new RetInst(hasReturnValue() ? operand(0) : nullptr);
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Ret;
  }
};

} // namespace ipas

#endif // IPAS_IR_INSTRUCTION_H
