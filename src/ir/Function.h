//===- ir/Function.h - IR function ----------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef IPAS_IR_FUNCTION_H
#define IPAS_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace ipas {

class Module;

/// A function: typed arguments plus a CFG of basic blocks. The first block
/// is the entry block.
class Function {
public:
  Function(std::string Name, Type ReturnType, std::vector<Type> ParamTypes,
           Module *Parent);
  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;
  ~Function();

  const std::string &name() const { return Name; }
  Type returnType() const { return RetTy; }
  Module *parent() const { return Parent; }

  unsigned numArgs() const { return static_cast<unsigned>(Args.size()); }
  Argument *arg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I].get();
  }

  bool empty() const { return Blocks.empty(); }
  size_t numBlocks() const { return Blocks.size(); }
  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no entry block");
    return Blocks.front().get();
  }
  BasicBlock *block(size_t I) const {
    assert(I < Blocks.size() && "block index out of range");
    return Blocks[I].get();
  }

  /// Creates and appends a new basic block.
  BasicBlock *addBlock(std::string BlockName);

  /// Position of \p BB in layout order; asserts when not found.
  size_t indexOf(const BasicBlock *BB) const;

  /// Predecessor blocks of \p BB (computed by scanning terminators).
  std::vector<BasicBlock *> predecessors(const BasicBlock *BB) const;

  /// Total number of instructions across all blocks.
  size_t numInstructions() const;

  /// Destroys the given blocks (dropping all operand references in them
  /// first, so mutual references among the removed blocks are fine). The
  /// entry block cannot be removed.
  void eraseBlocks(const std::vector<BasicBlock *> &ToErase);

  /// Range-style iteration over raw block pointers.
  class BlockIterator {
  public:
    BlockIterator(const std::vector<std::unique_ptr<BasicBlock>> *V,
                  size_t I)
        : Vec(V), Idx(I) {}
    BasicBlock *operator*() const { return (*Vec)[Idx].get(); }
    BlockIterator &operator++() {
      ++Idx;
      return *this;
    }
    bool operator!=(const BlockIterator &O) const { return Idx != O.Idx; }

  private:
    const std::vector<std::unique_ptr<BasicBlock>> *Vec;
    size_t Idx;
  };

  BlockIterator begin() const { return BlockIterator(&Blocks, 0); }
  BlockIterator end() const { return BlockIterator(&Blocks, Blocks.size()); }

private:
  std::string Name;
  Type RetTy;
  Module *Parent;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace ipas

#endif // IPAS_IR_FUNCTION_H
