//===- ir/Instruction.cpp ---------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"

using namespace ipas;

const char *ipas::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::SDiv:
    return "sdiv";
  case Opcode::SRem:
    return "srem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::AShr:
    return "ashr";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::FCmp:
    return "fcmp";
  case Opcode::SIToFP:
    return "sitofp";
  case Opcode::FPToSI:
    return "fptosi";
  case Opcode::ZExt:
    return "zext";
  case Opcode::BitcastF2I:
    return "bitcast.f2i";
  case Opcode::BitcastI2F:
    return "bitcast.i2f";
  case Opcode::Alloca:
    return "alloca";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Gep:
    return "gep";
  case Opcode::Phi:
    return "phi";
  case Opcode::Select:
    return "select";
  case Opcode::Call:
    return "call";
  case Opcode::Check:
    return "soc.check";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  }
  return "<bad opcode>";
}

const char *ipas::dupRoleName(DupRole R) {
  switch (R) {
  case DupRole::None:
    return "none";
  case DupRole::Original:
    return "original";
  case DupRole::Shadow:
    return "shadow";
  case DupRole::Check:
    return "check";
  }
  return "<bad role>";
}

const char *ipas::cmpPredicateName(CmpPredicate P) {
  switch (P) {
  case CmpPredicate::EQ:
    return "eq";
  case CmpPredicate::NE:
    return "ne";
  case CmpPredicate::LT:
    return "lt";
  case CmpPredicate::LE:
    return "le";
  case CmpPredicate::GT:
    return "gt";
  case CmpPredicate::GE:
    return "ge";
  }
  return "<bad predicate>";
}

Instruction::Instruction(Opcode Op, Type T, std::vector<Value *> Ops)
    : Value(ValueKind::Instruction, T), Op(Op), Operands(std::move(Ops)) {
  for (Value *V : Operands) {
    assert(V && "null operand");
    V->addUser(this);
  }
}

Instruction::~Instruction() { dropAllReferences(); }

void Instruction::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "null operand");
  assert(V->type() == Operands[I]->type() && "operand type change");
  Operands[I]->removeUser(this);
  Operands[I] = V;
  V->addUser(this);
}

void Instruction::dropAllReferences() {
  for (Value *V : Operands)
    V->removeUser(this);
  Operands.clear();
}

unsigned Instruction::numSuccessors() const {
  switch (Op) {
  case Opcode::Br:
    return 1;
  case Opcode::CondBr:
    return 2;
  default:
    return 0;
  }
}

BasicBlock *Instruction::successor(unsigned I) const {
  if (const auto *Br = dyn_cast<BranchInst>(this)) {
    assert(I == 0 && "br has one successor");
    (void)I;
    return Br->target();
  }
  const auto *CBr = cast<CondBranchInst>(this);
  assert(I < 2 && "condbr has two successors");
  return I == 0 ? CBr->trueTarget() : CBr->falseTarget();
}

void Instruction::appendOperand(Value *V) {
  assert(V && "null operand");
  Operands.push_back(V);
  V->addUser(this);
}

void PhiInst::addIncoming(Value *V, BasicBlock *BB) {
  assert(V && BB && "phi incoming must be non-null");
  assert(V->type() == type() && "phi incoming type mismatch");
  appendOperand(V);
  Blocks.push_back(BB);
}

Value *PhiInst::incomingValueFor(const BasicBlock *BB) const {
  for (unsigned I = 0, E = numIncoming(); I != E; ++I)
    if (Blocks[I] == BB)
      return incomingValue(I);
  return nullptr;
}

Instruction *PhiInst::cloneImpl() const {
  auto *P = new PhiInst(type());
  for (unsigned I = 0, E = numIncoming(); I != E; ++I)
    P->addIncoming(incomingValue(I), Blocks[I]);
  return P;
}

CallInst::CallInst(Function *Callee, Type ResultType,
                   std::vector<Value *> Args)
    : Instruction(Opcode::Call, ResultType, std::move(Args)),
      Callee(Callee) {
  assert(Callee && "direct call requires a callee");
  assert(Callee->returnType() == ResultType && "call result type mismatch");
  assert(Callee->numArgs() == numOperands() && "call arity mismatch");
}

CallInst::CallInst(Intrinsic IntrinsicId, Type ResultType,
                   std::vector<Value *> Args)
    : Instruction(Opcode::Call, ResultType, std::move(Args)),
      IntrinsicId(IntrinsicId) {
  assert(IntrinsicId != Intrinsic::None && "intrinsic call requires an id");
}

Instruction *CallInst::cloneImpl() const {
  std::vector<Value *> Args(operands().begin(), operands().end());
  if (isIntrinsicCall())
    return new CallInst(IntrinsicId, type(), std::move(Args));
  return new CallInst(Callee, type(), std::move(Args));
}
