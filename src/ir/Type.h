//===- ir/Type.h - Scalar type system for the IPAS IR --------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR uses a deliberately small scalar type system: 1-bit booleans,
/// 64-bit signed integers, IEEE-754 doubles, opaque pointers, and void.
/// This mirrors what the paper's workloads actually exercise (C codes with
/// int/double/pointer arithmetic) while keeping the fault model simple:
/// a fault flips one bit within a value's bit width.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_IR_TYPE_H
#define IPAS_IR_TYPE_H

#include <cassert>
#include <cstdint>

namespace ipas {

/// Discriminates the scalar types the IR supports.
enum class TypeKind : uint8_t {
  Void, ///< No value (stores, branches, ret void).
  I1,   ///< Boolean produced by comparisons.
  I64,  ///< 64-bit two's-complement integer.
  F64,  ///< IEEE-754 binary64.
  Ptr,  ///< Opaque pointer into the interpreter's flat memory.
};

/// A value type. Cheap to copy; equality is kind equality.
class Type {
public:
  constexpr Type() : Kind(TypeKind::Void) {}
  constexpr Type(TypeKind K) : Kind(K) {}

  constexpr TypeKind kind() const { return Kind; }

  constexpr bool isVoid() const { return Kind == TypeKind::Void; }
  constexpr bool isI1() const { return Kind == TypeKind::I1; }
  constexpr bool isI64() const { return Kind == TypeKind::I64; }
  constexpr bool isF64() const { return Kind == TypeKind::F64; }
  constexpr bool isPtr() const { return Kind == TypeKind::Ptr; }
  constexpr bool isInteger() const { return isI1() || isI64(); }

  /// Number of live bits in the value; faults flip one of these.
  unsigned bits() const {
    switch (Kind) {
    case TypeKind::Void:
      return 0;
    case TypeKind::I1:
      return 1;
    case TypeKind::I64:
    case TypeKind::F64:
    case TypeKind::Ptr:
      return 64;
    }
    assert(false && "unknown type kind");
    return 0;
  }

  /// Size used for the "bytes in the instruction's result" feature
  /// (Table 1, feature 12).
  unsigned bytes() const { return Kind == TypeKind::I1 ? 1 : bits() / 8; }

  const char *name() const {
    switch (Kind) {
    case TypeKind::Void:
      return "void";
    case TypeKind::I1:
      return "i1";
    case TypeKind::I64:
      return "i64";
    case TypeKind::F64:
      return "f64";
    case TypeKind::Ptr:
      return "ptr";
    }
    return "<bad>";
  }

  friend bool operator==(Type A, Type B) { return A.Kind == B.Kind; }
  friend bool operator!=(Type A, Type B) { return A.Kind != B.Kind; }

private:
  TypeKind Kind;
};

namespace types {
inline constexpr Type Void{TypeKind::Void};
inline constexpr Type I1{TypeKind::I1};
inline constexpr Type I64{TypeKind::I64};
inline constexpr Type F64{TypeKind::F64};
inline constexpr Type Ptr{TypeKind::Ptr};
} // namespace types

} // namespace ipas

#endif // IPAS_IR_TYPE_H
