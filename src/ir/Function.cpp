//===- ir/Function.cpp -------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include <algorithm>

using namespace ipas;

Function::Function(std::string Name, Type ReturnType,
                   std::vector<Type> ParamTypes, Module *Parent)
    : Name(std::move(Name)), RetTy(ReturnType), Parent(Parent) {
  Args.reserve(ParamTypes.size());
  for (unsigned I = 0, E = static_cast<unsigned>(ParamTypes.size()); I != E;
       ++I)
    Args.push_back(std::make_unique<Argument>(ParamTypes[I], this, I));
}

Function::~Function() {
  // Instructions across blocks can reference each other (and arguments);
  // break all references before any destructor runs.
  for (auto &BB : Blocks)
    for (Instruction *I : *BB)
      I->dropAllReferences();
}

BasicBlock *Function::addBlock(std::string BlockName) {
  Blocks.push_back(
      std::make_unique<BasicBlock>(std::move(BlockName), this));
  return Blocks.back().get();
}

size_t Function::indexOf(const BasicBlock *BB) const {
  for (size_t I = 0, E = Blocks.size(); I != E; ++I)
    if (Blocks[I].get() == BB)
      return I;
  assert(false && "block not in this function");
  return Blocks.size();
}

std::vector<BasicBlock *> Function::predecessors(const BasicBlock *BB) const {
  std::vector<BasicBlock *> Preds;
  for (const auto &Candidate : Blocks) {
    Instruction *Term = Candidate->terminator();
    if (!Term)
      continue;
    for (unsigned I = 0, E = Term->numSuccessors(); I != E; ++I)
      if (Term->successor(I) == BB) {
        Preds.push_back(Candidate.get());
        break;
      }
  }
  return Preds;
}

void Function::eraseBlocks(const std::vector<BasicBlock *> &ToErase) {
  if (ToErase.empty())
    return;
  for (BasicBlock *BB : ToErase) {
    assert(BB != entry() && "cannot erase the entry block");
    for (Instruction *I : *BB)
      I->dropAllReferences();
  }
  auto ShouldErase = [&](const std::unique_ptr<BasicBlock> &BB) {
    return std::find(ToErase.begin(), ToErase.end(), BB.get()) !=
           ToErase.end();
  };
  Blocks.erase(std::remove_if(Blocks.begin(), Blocks.end(), ShouldErase),
               Blocks.end());
}

size_t Function::numInstructions() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->size();
  return N;
}
