//===- ir/Value.cpp --------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

#include "ir/Instruction.h"

#include <algorithm>

using namespace ipas;

Value::~Value() = default;

void Value::removeUser(Instruction *I) {
  // Remove one occurrence only: an instruction using a value in two operand
  // slots appears twice in the use list.
  auto It = std::find(Users.begin(), Users.end(), I);
  assert(It != Users.end() && "removing a non-existent user");
  Users.erase(It);
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with self");
  assert(New->type() == type() && "RAUW type mismatch");
  // setOperand mutates the use list, so iterate over a snapshot.
  std::vector<Instruction *> Snapshot = Users;
  for (Instruction *User : Snapshot)
    for (unsigned I = 0, E = User->numOperands(); I != E; ++I)
      if (User->operand(I) == this)
        User->setOperand(I, New);
  assert(Users.empty() && "stale users after RAUW");
}
