//===- ir/Verifier.cpp --------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Module.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace ipas;

namespace {

/// Collects violations for one function.
class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, const VerifierOptions &Opts)
      : F(F), Opts(Opts) {}

  std::vector<std::string> run() {
    checkBlocks();
    checkInstructions();
    checkDominance();
    if (Opts.RequireDebugLocs)
      checkDebugLocs();
    return std::move(Errors);
  }

private:
  void report(const std::string &Msg) {
    Errors.push_back("in function '" + F.name() + "': " + Msg);
  }

  std::string describe(const Instruction *I) {
    std::ostringstream OS;
    OS << "'" << opcodeName(I->opcode()) << "' in block '"
       << (I->parent() ? I->parent()->name() : std::string("<detached>"))
       << "'";
    return OS.str();
  }

  void checkBlocks() {
    if (F.empty()) {
      report("function has no blocks");
      return;
    }
    for (BasicBlock *BB : F) {
      if (BB->empty()) {
        report("block '" + BB->name() + "' is empty");
        continue;
      }
      if (!BB->terminator())
        report("block '" + BB->name() + "' lacks a terminator");
      bool SeenNonPhi = false;
      for (size_t I = 0, E = BB->size(); I != E; ++I) {
        Instruction *Inst = BB->at(I);
        if (Inst->isTerminator() && I + 1 != E)
          report("terminator in the middle of block '" + BB->name() + "'");
        if (Inst->opcode() == Opcode::Phi) {
          if (SeenNonPhi)
            report("phi after non-phi in block '" + BB->name() + "'");
        } else {
          SeenNonPhi = true;
        }
        if (Inst->parent() != BB)
          report("instruction parent pointer is stale in block '" +
                 BB->name() + "'");
      }
    }
  }

  void checkInstructions() {
    for (BasicBlock *BB : F)
      for (Instruction *I : *BB)
        checkInstruction(I, BB);
  }

  void checkInstruction(Instruction *I, BasicBlock *BB) {
    for (Value *Op : I->operands())
      if (!Op)
        report("null operand on " + describe(I));

    switch (I->opcode()) {
    case Opcode::Phi: {
      auto *Phi = cast<PhiInst>(I);
      std::vector<BasicBlock *> Preds = F.predecessors(BB);
      if (Phi->numIncoming() != Preds.size()) {
        report("phi incoming count does not match predecessors in block '" +
               BB->name() + "'");
        break;
      }
      for (unsigned K = 0, E = Phi->numIncoming(); K != E; ++K) {
        BasicBlock *In = Phi->incomingBlock(K);
        if (std::find(Preds.begin(), Preds.end(), In) == Preds.end())
          report("phi incoming block '" + In->name() +
                 "' is not a predecessor of '" + BB->name() + "'");
      }
      break;
    }
    case Opcode::Call: {
      auto *Call = cast<CallInst>(I);
      if (Call->isIntrinsicCall()) {
        IntrinsicSignature Sig = intrinsicSignature(Call->intrinsicId());
        if (Sig.Params.size() != Call->numArgs()) {
          report("intrinsic call arity mismatch on " + describe(I));
          break;
        }
        for (unsigned K = 0; K != Call->numArgs(); ++K)
          if (Call->arg(K)->type() != Sig.Params[K])
            report("intrinsic call argument type mismatch on " +
                   describe(I));
        if (Call->type() != Sig.Result)
          report("intrinsic call result type mismatch on " + describe(I));
      } else {
        Function *Callee = Call->callee();
        if (Callee->numArgs() != Call->numArgs()) {
          report("call arity mismatch on " + describe(I));
          break;
        }
        for (unsigned K = 0; K != Call->numArgs(); ++K)
          if (Call->arg(K)->type() != Callee->arg(K)->type())
            report("call argument type mismatch on " + describe(I));
      }
      break;
    }
    case Opcode::Ret: {
      auto *Ret = cast<RetInst>(I);
      if (F.returnType().isVoid()) {
        if (Ret->hasReturnValue())
          report("ret with a value in a void function");
      } else if (!Ret->hasReturnValue()) {
        report("ret void in a non-void function");
      } else if (Ret->returnValue()->type() != F.returnType()) {
        report("ret value type mismatch");
      }
      break;
    }
    case Opcode::SIToFP:
    case Opcode::BitcastI2F:
      if (!I->operand(0)->type().isI64())
        report("cast source type mismatch on " + describe(I));
      break;
    case Opcode::FPToSI:
    case Opcode::BitcastF2I:
      if (!I->operand(0)->type().isF64())
        report("cast source type mismatch on " + describe(I));
      break;
    case Opcode::ZExt:
      if (!I->operand(0)->type().isI1())
        report("zext source must be i1 on " + describe(I));
      break;
    case Opcode::Check:
      // The soc.check intrinsic compares a value against its shadow: it
      // takes exactly two non-void operands of the same type and produces
      // nothing. Constructor assertions cover debug builds; malformed
      // checks (e.g. after hand mutation) must still fail verification.
      if (I->numOperands() != 2) {
        report("soc.check arity mismatch (expected 2 operands, got " +
               std::to_string(I->numOperands()) + ") on " + describe(I));
      } else if (I->operand(0) && I->operand(1)) {
        if (I->operand(0)->type() != I->operand(1)->type())
          report("soc.check operand type mismatch on " + describe(I));
        else if (I->operand(0)->type().isVoid())
          report("soc.check operand must be non-void on " + describe(I));
      }
      if (!I->type().isVoid())
        report("soc.check must not produce a value on " + describe(I));
      break;
    default:
      // Constructor assertions cover the remaining opcode/type contracts;
      // binary/cmp type agreement is rechecked here for release builds.
      if (isBinaryOpcode(I->opcode()) || isCmpOpcode(I->opcode()))
        if (I->operand(0)->type() != I->operand(1)->type())
          report("operand type mismatch on " + describe(I));
      break;
    }

    // Every operand defined by an instruction must belong to this function.
    for (Value *Op : I->operands()) {
      if (auto *OpInst = dyn_cast<Instruction>(Op)) {
        if (!OpInst->parent() || OpInst->parent()->parent() != &F)
          report("operand crosses function boundary on " + describe(I));
      } else if (auto *Arg = dyn_cast<Argument>(Op)) {
        if (Arg->parent() != &F)
          report("argument operand from another function on " + describe(I));
      }
    }
  }

  /// SSA dominance: a use must be dominated by its definition. Implemented
  /// with a simple iterative dominator computation local to the verifier to
  /// avoid a layering cycle with the analysis library.
  void checkDominance() {
    if (F.empty())
      return;
    std::map<const BasicBlock *, size_t> Index;
    std::vector<BasicBlock *> Order;
    for (BasicBlock *BB : F) {
      Index[BB] = Order.size();
      Order.push_back(BB);
    }
    size_t N = Order.size();
    // Bitset-based iterative data-flow: Dom(b) = {b} ∪ ∩ Dom(preds).
    std::vector<std::vector<bool>> Dom(N, std::vector<bool>(N, true));
    Dom[0].assign(N, false);
    Dom[0][0] = true;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t B = 1; B != N; ++B) {
        std::vector<bool> NewDom(N, true);
        bool HasPred = false;
        for (BasicBlock *P : F.predecessors(Order[B])) {
          HasPred = true;
          const std::vector<bool> &PD = Dom[Index[P]];
          for (size_t K = 0; K != N; ++K)
            NewDom[K] = NewDom[K] && PD[K];
        }
        if (!HasPred)
          NewDom.assign(N, false); // unreachable: dominated by nothing
        NewDom[B] = true;
        if (NewDom != Dom[B]) {
          Dom[B] = std::move(NewDom);
          Changed = true;
        }
      }
    }

    auto Dominates = [&](const Instruction *Def, const Instruction *Use,
                         unsigned UseOpIdx) {
      const BasicBlock *DefBB = Def->parent();
      const BasicBlock *UseBB = Use->parent();
      if (auto *Phi = dyn_cast<PhiInst>(Use)) {
        // A phi use must be dominated at the end of the incoming block.
        const BasicBlock *In = Phi->incomingBlock(UseOpIdx);
        return DefBB == In || Dom[Index.at(In)][Index.at(DefBB)];
      }
      if (DefBB == UseBB)
        return DefBB->indexOf(Def) < UseBB->indexOf(Use);
      return static_cast<bool>(Dom[Index.at(UseBB)][Index.at(DefBB)]);
    };

    for (BasicBlock *BB : F) {
      // Skip unreachable blocks: they have no dominance facts.
      bool Reachable = Index.at(BB) == 0 || !F.predecessors(BB).empty();
      if (!Reachable)
        continue;
      for (Instruction *I : *BB)
        for (unsigned OpIdx = 0; OpIdx != I->numOperands(); ++OpIdx)
          if (auto *Def = dyn_cast<Instruction>(I->operand(OpIdx)))
            if (!Dominates(Def, I, OpIdx))
              report("use of " + describe(Def) +
                     " is not dominated by its definition (user " +
                     describe(I) + ")");
    }
  }

  /// Provenance completeness: every instruction carries a valid source
  /// location so campaign record stores can attribute it to a line.
  void checkDebugLocs() {
    for (BasicBlock *BB : F)
      for (Instruction *I : *BB)
        if (!I->debugLoc().isValid())
          report("missing debug location on " + describe(I));
  }

  const Function &F;
  VerifierOptions Opts;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> ipas::verifyFunction(const Function &F) {
  return verifyFunction(F, VerifierOptions());
}

std::vector<std::string> ipas::verifyFunction(const Function &F,
                                              const VerifierOptions &Opts) {
  return FunctionVerifier(F, Opts).run();
}

std::vector<std::string> ipas::verifyModule(const Module &M) {
  return verifyModule(M, VerifierOptions());
}

std::vector<std::string> ipas::verifyModule(const Module &M,
                                            const VerifierOptions &Opts) {
  std::vector<std::string> All;
  for (Function *F : M) {
    std::vector<std::string> Errs = verifyFunction(*F, Opts);
    All.insert(All.end(), Errs.begin(), Errs.end());
  }
  return All;
}
