//===- interp/Memory.h - Flat bounds-checked memory ------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One flat address space per execution context, split into a stack region
/// (allocas) and a heap region (malloc). All accesses are bounds-checked;
/// an access outside the valid range models the segmentation fault a
/// corrupted pointer produces on real hardware — an *observable symptom*
/// in the paper's outcome taxonomy.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_INTERP_MEMORY_H
#define IPAS_INTERP_MEMORY_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace ipas {

class Memory {
public:
  /// Unmapped page at the bottom of the address space; catches null and
  /// near-null pointers. Shared with the VM arena (vm/VM.h), whose
  /// address layout must match this class byte for byte.
  static constexpr uint64_t GuardBytes = 4096;

  struct Config {
    // Zero-filling this memory is a per-execution cost, so the defaults
    // are modest; workloads size their own regions via memoryConfig().
    uint64_t StackBytes = 1ull << 20; ///< 1 MiB stack region.
    uint64_t HeapBytes = 8ull << 20;  ///< 8 MiB heap region.
  };

  explicit Memory(const Config &Cfg);
  Memory(); ///< Default-sized memory.

  /// Bump-allocates \p Bytes on the stack; returns 0 on overflow.
  uint64_t allocaBytes(uint64_t Bytes);

  /// Current stack pointer (for frame save/restore across calls).
  uint64_t stackPointer() const { return StackPtr; }
  void restoreStackPointer(uint64_t SP) { StackPtr = SP; }

  /// Bump-allocates \p Bytes on the heap; returns 0 on exhaustion.
  /// free() is accepted but does not recycle (the workloads allocate
  /// up front, like the paper's mini applications).
  uint64_t mallocBytes(uint64_t Bytes);
  void free(uint64_t Addr);

  /// True when [Addr, Addr+Size) lies fully inside allocated memory.
  bool validRange(uint64_t Addr, uint64_t Size) const {
    return Addr >= FirstValid && Size <= Limit && Addr <= Limit - Size;
  }

  // Unchecked accessors; callers must validate the range first.
  uint64_t read64(uint64_t Addr) const {
    uint64_t V;
    std::memcpy(&V, &Data[Addr], sizeof(V));
    return V;
  }
  void write64(uint64_t Addr, uint64_t V) {
    std::memcpy(&Data[Addr], &V, sizeof(V));
  }
  double readF64(uint64_t Addr) const {
    double V;
    std::memcpy(&V, &Data[Addr], sizeof(V));
    return V;
  }
  void writeF64(uint64_t Addr, double V) {
    std::memcpy(&Data[Addr], &V, sizeof(V));
  }

  uint64_t heapBytesUsed() const { return HeapPtr - HeapBase; }
  uint64_t stackBytesUsed() const { return StackPtr - StackBase; }

private:
  std::vector<uint8_t> Data;
  uint64_t FirstValid; ///< Address 0..FirstValid-1 is the unmapped page.
  uint64_t Limit;      ///< One past the last valid byte.
  uint64_t StackBase, StackLimit, StackPtr;
  uint64_t HeapBase, HeapLimit, HeapPtr;
};

} // namespace ipas

#endif // IPAS_INTERP_MEMORY_H
