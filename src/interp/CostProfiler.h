//===- interp/CostProfiler.h - Instruction-level cost profiling -----------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic cost profiling for interpreted programs. Two modes:
///
///  * Counting — per-instruction dynamic execution counts via the
///    interpreter's site-count hook (ExecutionContext::setSiteCounts), one
///    predicted branch plus an indexed increment per step. Cost is then
///    counts × a per-opcode cycle model, so a profiled clean run prices
///    every static instruction. This is the mode campaigns and the
///    pipeline use; bench/profile_overhead.cpp pins its overhead.
///
///  * Context — the same counts kept per *calling context*: the profiler
///    rides the ExecObserver onCall/onReturn hooks to maintain a calling
///    context tree (one node per distinct call path) and swaps the armed
///    count array at every call boundary. Costs then attribute to
///    (function, source line, context) triples and fold into
///    flamegraph-style stacks.
///
/// Either mode can additionally fold the per-function FNV-1a hash over
/// the committed (local site, value bits) stream that incremental
/// campaigns (fault/Incremental.h) key reuse on — the fold is identical,
/// so hashes from a profiled clean run are interchangeable with the ones
/// an unprofiled campaign computes.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_INTERP_COSTPROFILER_H
#define IPAS_INTERP_COSTPROFILER_H

#include "interp/Interpreter.h"

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace ipas {

/// Per-opcode cycle costs. The absolute numbers are a model, not a
/// measurement — what matters downstream is that they are *fixed and
/// versioned* (serialized into every .ipprof store), so per-site marginal
/// costs and cross-build diffs compare like with like.
struct CostModel {
  std::array<uint32_t, NumOpcodeKinds> Cycles{};

  uint32_t of(Opcode Op) const { return Cycles[static_cast<unsigned>(Op)]; }

  /// Rough single-issue x86 latency classes: cheap ALU ops cost 1, integer
  /// multiply 3, integer divide 24, FP add/sub 3, FP multiply 4, FP divide
  /// 13, loads 4 (L1 hit), stores 1, calls 2 (call+ret pair charged at the
  /// call site), checks 2 (compare + branch). Phis and unconditional
  /// branches cost 0: register coalescing and straight-line fallthrough
  /// make them free on real hardware.
  static CostModel standard();
};

/// Σ Counts[id] × model cycles of the instruction's opcode, over every
/// instruction of \p M. \p Counts is indexed by instruction id and may be
/// shorter than the module (missing tails count as zero).
uint64_t cyclesOfCounts(const Module &M, const std::vector<uint64_t> &Counts,
                        const CostModel &CM);

/// One profiling run's collector. Construct, attach() to a fresh
/// ExecutionContext before start(), run, then read the counts. A profiler
/// accumulates across runs if re-attached (campaign clean runs use one
/// profiler per run).
class CostProfiler : public ExecObserver {
public:
  enum class Mode : uint8_t {
    Counting, ///< Flat per-instruction counts (the cheap hook alone).
    Context,  ///< Counts per calling-context-tree node.
  };

  /// One calling context: the chain of Parent links names the call path.
  /// Node 0 is the entry function's root context.
  struct ContextNode {
    uint32_t Parent = UINT32_MAX; ///< Caller context; UINT32_MAX at root.
    const Function *Fn = nullptr; ///< Function executing in this context.
    std::vector<uint64_t> Counts; ///< Per-instruction-id execution counts.
    /// Memoized callee → child-node lookup (small, linear scan).
    std::vector<std::pair<const Function *, uint32_t>> Children;
  };

  CostProfiler(const ModuleLayout &Layout, Mode M,
               const CostModel &CM = CostModel::standard());

  /// Also fold the per-function (local site, value bits) FNV-1a stream
  /// hashes (see fault/Incremental.h). Requires the observer slot even in
  /// Counting mode — callers that need the 10%-class overhead guarantee
  /// must leave this off.
  void enableFunctionHashes();

  /// Arms \p Ctx for this profiler: site counts always, the observer when
  /// Context mode or function hashes need it. Must run before
  /// Ctx.start(). \p Entry labels the root context.
  void attach(ExecutionContext &Ctx, const Function *Entry);

  Mode mode() const { return ProfMode; }
  const CostModel &model() const { return Model; }
  const Module &module() const;

  /// Per-instruction counts summed over all contexts.
  std::vector<uint64_t> flatCounts() const;
  /// Σ flatCounts — equals ExecutionContext::steps() of the profiled runs.
  uint64_t totalSteps() const;
  /// Model cycles of the whole profile.
  uint64_t totalCycles() const;
  const std::vector<ContextNode> &contexts() const { return Nodes; }
  uint64_t nodeCycles(const ContextNode &N) const;

  bool functionHashesEnabled() const { return HashesEnabled; }
  /// Per-function hashes, indexed by module function order. Functions the
  /// clean run never committed a value in keep the FNV offset basis,
  /// matching the incremental campaign's own hasher.
  const std::vector<uint64_t> &functionHashes() const { return FnHashes; }

  // ExecObserver (context tracking + optional hash folding).
  void onCall(const CallInst *Call,
              const std::vector<RtValue> &Args) override;
  void onReturn(const Instruction *Ret, bool HasValue, RtValue V) override;
  void onValueCommit(const Instruction *I, RtValue V,
                     uint64_t ValueStep) override;

private:
  const ModuleLayout &Layout;
  Mode ProfMode;
  CostModel Model;
  ExecutionContext *C = nullptr;
  std::vector<ContextNode> Nodes;
  uint32_t Cur = 0;
  bool HashesEnabled = false;
  std::vector<uint64_t> FnHashes;  ///< Per function index.
  std::vector<uint32_t> IdToFn;    ///< Instruction id → function index.
  std::vector<uint64_t> FirstId;   ///< Function index → first id.
};

} // namespace ipas

#endif // IPAS_INTERP_COSTPROFILER_H
