//===- interp/CostProfiler.cpp ------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/CostProfiler.h"

#include "obs/BinCodec.h"

using namespace ipas;

CostModel CostModel::standard() {
  CostModel CM;
  auto Set = [&](Opcode Op, uint32_t C) {
    CM.Cycles[static_cast<unsigned>(Op)] = C;
  };
  Set(Opcode::Add, 1);
  Set(Opcode::Sub, 1);
  Set(Opcode::Mul, 3);
  Set(Opcode::SDiv, 24);
  Set(Opcode::SRem, 24);
  Set(Opcode::And, 1);
  Set(Opcode::Or, 1);
  Set(Opcode::Xor, 1);
  Set(Opcode::Shl, 1);
  Set(Opcode::AShr, 1);
  Set(Opcode::FAdd, 3);
  Set(Opcode::FSub, 3);
  Set(Opcode::FMul, 4);
  Set(Opcode::FDiv, 13);
  Set(Opcode::ICmp, 1);
  Set(Opcode::FCmp, 2);
  Set(Opcode::SIToFP, 4);
  Set(Opcode::FPToSI, 4);
  Set(Opcode::ZExt, 1);
  Set(Opcode::BitcastF2I, 1);
  Set(Opcode::BitcastI2F, 1);
  Set(Opcode::Alloca, 2);
  Set(Opcode::Load, 4);
  Set(Opcode::Store, 1);
  Set(Opcode::Gep, 1);
  Set(Opcode::Phi, 0);
  Set(Opcode::Select, 1);
  Set(Opcode::Call, 2);
  Set(Opcode::Check, 2);
  Set(Opcode::Br, 0);
  Set(Opcode::CondBr, 1);
  Set(Opcode::Ret, 1);
  return CM;
}

uint64_t ipas::cyclesOfCounts(const Module &M,
                              const std::vector<uint64_t> &Counts,
                              const CostModel &CM) {
  uint64_t Total = 0;
  for (Function *F : M)
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (I->id() < Counts.size())
          Total += Counts[I->id()] * CM.of(I->opcode());
  return Total;
}

CostProfiler::CostProfiler(const ModuleLayout &Layout, Mode M,
                           const CostModel &CM)
    : Layout(Layout), ProfMode(M), Model(CM) {
  // Static geometry for hash folding: ids are function-contiguous in
  // module order (Module::renumber()).
  const Module &Mod = Layout.module();
  size_t NumFns = Mod.numFunctions();
  FnHashes.assign(NumFns, obs::FnvOffset);
  FirstId.assign(NumFns, 0);
  IdToFn.assign(Mod.numInstructions(), 0);
  uint64_t Next = 0;
  for (size_t Fi = 0; Fi != NumFns; ++Fi) {
    FirstId[Fi] = Next;
    uint64_t N = Mod.function(Fi)->numInstructions();
    for (uint64_t K = 0; K != N; ++K)
      IdToFn[Next + K] = static_cast<uint32_t>(Fi);
    Next += N;
  }
}

const Module &CostProfiler::module() const { return Layout.module(); }

void CostProfiler::enableFunctionHashes() { HashesEnabled = true; }

void CostProfiler::attach(ExecutionContext &Ctx, const Function *Entry) {
  C = &Ctx;
  if (Nodes.empty()) {
    Nodes.emplace_back();
    Nodes[0].Fn = Entry;
    Nodes[0].Counts.assign(Layout.numInstructions(), 0);
  }
  Cur = 0;
  Ctx.setSiteCounts(&Nodes[Cur].Counts);
  if (ProfMode == Mode::Context || HashesEnabled)
    Ctx.setObserver(this);
}

void CostProfiler::onCall(const CallInst *Call,
                          const std::vector<RtValue> & /*Args*/) {
  if (ProfMode != Mode::Context)
    return;
  const Function *Callee = Call->callee();
  uint32_t Child = UINT32_MAX;
  for (const auto &E : Nodes[Cur].Children)
    if (E.first == Callee) {
      Child = E.second;
      break;
    }
  if (Child == UINT32_MAX) {
    Child = static_cast<uint32_t>(Nodes.size());
    Nodes[Cur].Children.push_back({Callee, Child});
    Nodes.emplace_back();
    Nodes[Child].Parent = Cur;
    Nodes[Child].Fn = Callee;
    Nodes[Child].Counts.assign(Layout.numInstructions(), 0);
  }
  Cur = Child;
  // Re-arm unconditionally: growing Nodes may have moved every Counts
  // vector's owner, and the context holds a raw pointer.
  C->setSiteCounts(&Nodes[Cur].Counts);
}

void CostProfiler::onReturn(const Instruction * /*Ret*/, bool /*HasValue*/,
                            RtValue /*V*/) {
  if (ProfMode != Mode::Context)
    return;
  if (Nodes[Cur].Parent != UINT32_MAX) {
    Cur = Nodes[Cur].Parent;
    C->setSiteCounts(&Nodes[Cur].Counts);
  }
}

void CostProfiler::onValueCommit(const Instruction *I, RtValue V,
                                 uint64_t /*ValueStep*/) {
  if (!HashesEnabled)
    return;
  // Identical fold to the incremental campaign's clean-run hasher, so the
  // two sources of FunctionMeta::ProfileHash are interchangeable.
  uint32_t Fn = IdToFn[I->id()];
  uint64_t H = FnHashes[Fn];
  uint64_t Local = I->id() - FirstId[Fn];
  for (int B = 0; B != 8; ++B) {
    H ^= (Local >> (8 * B)) & 0xff;
    H *= obs::FnvPrime;
  }
  for (int B = 0; B != 8; ++B) {
    H ^= (V.Bits >> (8 * B)) & 0xff;
    H *= obs::FnvPrime;
  }
  FnHashes[Fn] = H;
}

std::vector<uint64_t> CostProfiler::flatCounts() const {
  std::vector<uint64_t> Flat(Layout.numInstructions(), 0);
  for (const ContextNode &N : Nodes)
    for (size_t I = 0; I != N.Counts.size(); ++I)
      Flat[I] += N.Counts[I];
  return Flat;
}

uint64_t CostProfiler::totalSteps() const {
  uint64_t Total = 0;
  for (const ContextNode &N : Nodes)
    for (uint64_t C : N.Counts)
      Total += C;
  return Total;
}

uint64_t CostProfiler::totalCycles() const {
  return cyclesOfCounts(module(), flatCounts(), Model);
}

uint64_t CostProfiler::nodeCycles(const ContextNode &N) const {
  return cyclesOfCounts(module(), N.Counts, Model);
}
