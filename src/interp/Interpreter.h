//===- interp/Interpreter.h - IR interpreter with fault injection ---------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, non-recursive IR interpreter. It is the "hardware" of
/// this reproduction: the fault injector flips a bit in the result of a
/// chosen dynamic instruction instance, exactly the FlipIt fault model the
/// paper uses. Traps (out-of-bounds access, division by zero, stack
/// overflow) model the observable symptoms of §5.5; `soc.check`
/// mismatches raise Detected; exceeding a step budget models hangs.
///
/// MPI intrinsics execute inline for single-rank contexts; in multi-rank
/// jobs they suspend the context (RunStatus::Blocked) until the SimMPI
/// scheduler resolves the collective across ranks.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_INTERP_INTERPRETER_H
#define IPAS_INTERP_INTERPRETER_H

#include "interp/Memory.h"
#include "interp/RuntimeValue.h"
#include "ir/Module.h"
#include "support/Random.h"

#include <array>
#include <map>
#include <memory>
#include <vector>

namespace ipas {

enum class RunStatus : uint8_t {
  Running,    ///< More work to do (internal).
  Blocked,    ///< Waiting on an MPI rendezvous (multi-rank only).
  Finished,   ///< Entry function returned.
  Trapped,    ///< Hardware-exception symptom (see TrapKind).
  Detected,   ///< A duplication check caught a mismatch.
  OutOfSteps, ///< Step budget exceeded (hang symptom when budgeted so).
};

enum class TrapKind : uint8_t {
  None,
  OutOfBounds,
  DivByZero,
  OutOfMemory,
  StackOverflow,
  CallDepthExceeded,
  MpiMismatch, ///< Ranks disagreed on the collective being executed.
};

const char *runStatusName(RunStatus S);
const char *trapKindName(TrapKind K);

/// Number of distinct opcodes (for per-opcode execution counters).
constexpr unsigned NumOpcodeKinds = static_cast<unsigned>(Opcode::Ret) + 1;

/// One planned bit flip: when the running context is about to commit the
/// result of its TargetValueStep-th value-producing dynamic instruction,
/// bit (BitDraw % width) of that result is flipped.
struct FaultPlan {
  uint64_t TargetValueStep = UINT64_MAX;
  uint64_t BitDraw = 0;
};

/// Dense slot assignment for fast operand access: per function, arguments
/// occupy slots [0, numArgs) and each value-producing instruction gets one
/// slot. Built once per module (after Module::renumber()) and shared by
/// every context executing it.
class ModuleLayout {
public:
  explicit ModuleLayout(const Module &M);

  const Module &module() const { return M; }
  unsigned slotOfInstruction(const Instruction *I) const {
    assert(I->id() < InstSlot.size() && "stale module numbering");
    return InstSlot[I->id()];
  }
  unsigned frameSlots(const Function *F) const {
    return FrameSlots.at(F);
  }
  size_t numInstructions() const { return InstSlot.size(); }

private:
  const Module &M;
  std::vector<unsigned> InstSlot;
  std::map<const Function *, unsigned> FrameSlots;
};

/// A pending blocking MPI operation (multi-rank mode).
struct PendingMpi {
  Intrinsic Op = Intrinsic::None;
  RtValue Args[3];
};

/// Passive execution observer: the interpreter calls these hooks at the
/// semantically interesting points of a run (value commits, memory
/// traffic, control decisions, call boundaries). Every call site is
/// gated on a null check, so an unobserved run pays one well-predicted
/// branch per event — the same cost class as the existing value-step
/// trace hook. The fault-propagation tracer (fault/Propagation.h)
/// implements this to reconstruct where a flipped bit spread, was
/// masked, and first reached output.
class ExecObserver {
public:
  virtual ~ExecObserver();

  /// A value-producing instruction I committed value V (post
  /// fault-injection) as the given dynamic value step.
  virtual void onValueCommit(const Instruction * /*I*/, RtValue /*V*/,
                             uint64_t /*ValueStep*/) {}
  /// A phi is about to commit the value of Chosen (the incoming value
  /// for the edge actually taken). Fired in block order just before the
  /// phi's onValueCommit, so observers can attribute the commit to the
  /// one operand that was live rather than scanning all incoming values.
  virtual void onPhiChoice(const PhiInst * /*Phi*/,
                           const Value * /*Chosen*/) {}
  /// A Store wrote V to a validated address.
  virtual void onStore(const Instruction * /*I*/, uint64_t /*Addr*/,
                       RtValue /*V*/) {}
  /// A Load is about to read from a validated address (its
  /// onValueCommit follows immediately).
  virtual void onLoad(const Instruction * /*I*/, uint64_t /*Addr*/) {}
  /// A conditional branch evaluated its condition.
  virtual void onCondBranch(const Instruction * /*I*/, bool /*Cond*/) {}
  /// A `soc.check` compared A against B (fires before the mismatch
  /// verdict, so it is seen even when the run ends Detected).
  virtual void onCheck(const Instruction * /*I*/, RtValue /*A*/,
                       RtValue /*B*/) {}
  /// A non-intrinsic call evaluated its arguments and is about to push
  /// the callee frame.
  virtual void onCall(const CallInst * /*Call*/,
                      const std::vector<RtValue> & /*Args*/) {}
  /// A Ret is about to pop the current frame, returning V when HasValue.
  virtual void onReturn(const Instruction * /*Ret*/, bool /*HasValue*/,
                        RtValue /*V*/) {}
};

/// One executing "process" (MPI rank): memory, call stack, and counters.
class ExecutionContext {
public:
  struct Config {
    Memory::Config Mem;
    unsigned MaxCallDepth = 512;
    int Rank = 0;
    int NumRanks = 1;
    uint64_t WorkloadRngSeed = 0x1234abcd;
  };

  ExecutionContext(const ModuleLayout &Layout, const Config &Cfg);
  explicit ExecutionContext(const ModuleLayout &Layout);
  /// Flushes locally collected telemetry (opcode counts, step totals,
  /// execution time) into the global obs::MetricsRegistry. Collection is
  /// armed at construction when obs::statsEnabled() is true; otherwise
  /// the interpreter pays only a dead branch per step.
  ~ExecutionContext();

  /// Prepares execution of \p Entry with the given arguments. The context
  /// must be freshly constructed.
  void start(const Function *Entry, const std::vector<RtValue> &Args);

  /// Runs until finish/trap/detect/block, or until the *cumulative* step
  /// count reaches \p MaxSteps (returns OutOfSteps; resumable).
  RunStatus run(uint64_t MaxSteps);

  RunStatus status() const { return Status; }
  TrapKind trap() const { return Trap; }
  RtValue returnValue() const { return ReturnValue; }

  uint64_t steps() const { return Steps; }
  uint64_t valueSteps() const { return ValueSteps; }
  /// Dynamic executions of \p Op in this context (all zero unless stats
  /// collection was enabled when the context was constructed).
  uint64_t opcodeCount(Opcode Op) const {
    return OpCount[static_cast<unsigned>(Op)];
  }
  uint64_t commCost() const { return CommCost; }
  void addCommCost(uint64_t C) { CommCost += C; }

  Memory &memory() { return Mem; }
  const Memory &memory() const { return Mem; }

  /// Host-side heap allocation for I/O buffers shared with the program.
  uint64_t hostAlloc(uint64_t Slots) { return Mem.mallocBytes(Slots * 8); }

  // Fault injection.
  void setFaultPlan(const FaultPlan &P) { Plan = P; }
  bool faultWasInjected() const { return FaultInjected; }
  unsigned faultedInstructionId() const { return FaultedId; }

  /// When set, every committed value step appends the producing
  /// instruction's id to \p T, so T[k] is the static instruction behind
  /// dynamic value step k. The campaign driver uses one traced clean run
  /// to map fault plans to instructions without executing (site pruning).
  void setValueStepTrace(std::vector<unsigned> *T) { ValueStepTrace = T; }

  /// Attaches \p O (may be null) to receive execution events. Must be
  /// set before start(); the observer is borrowed, not owned.
  void setObserver(ExecObserver *O) { Obs = O; }

  /// When set, every executed instruction (every step, not just value
  /// commits) bumps (*C)[I->id()]. The vector must be sized to
  /// ModuleLayout::numInstructions() and is borrowed, not owned. This is
  /// the cost profiler's counting hook (interp/CostProfiler.h): the same
  /// cost class as the value-step trace — one well-predicted branch plus
  /// an indexed increment when armed, a dead branch when not. May be
  /// re-seated between steps (the calling-context profiler swaps the
  /// destination array at call boundaries). Invariant: the sum over all
  /// armed arrays equals steps().
  void setSiteCounts(std::vector<uint64_t> *C) { SiteCounts = C; }

  // Multi-rank MPI interface (used by the SimMPI scheduler).
  int rank() const { return Cfg.Rank; }
  int numRanks() const { return Cfg.NumRanks; }
  const PendingMpi &pending() const { return Pending; }
  /// Completes the blocked MPI call with \p Result and resumes.
  void completePendingCall(RtValue Result);
  /// Aborts the blocked MPI call with a trap (e.g. bad buffer).
  void failPending(TrapKind K);

private:
  struct Frame {
    const Function *Fn = nullptr;
    const BasicBlock *Block = nullptr;
    const BasicBlock *PrevBlock = nullptr;
    size_t InstIdx = 0;
    uint64_t SavedStackPtr = 0;
    std::vector<RtValue> Slots;
  };

  /// Per-opcode accounting: a well-predicted dead branch when stats
  /// collection is off (measured within noise of no instrumentation on
  /// the campaign workloads).
  void countOp(Opcode Op) {
    if (CollectStats)
      ++OpCount[static_cast<unsigned>(Op)];
  }

  /// Per-site accounting for the cost profiler. Called at exactly the
  /// same points as the `++Steps` bookkeeping, so profiled counts sum to
  /// the step total.
  void countSite(const Instruction *I) {
    if (SiteCounts)
      ++(*SiteCounts)[I->id()];
  }

  RtValue eval(const Frame &F, const Value *V) const;
  /// Commits a value-producing instruction's result, applying the fault
  /// plan when this is the targeted dynamic instance.
  void writeResult(Frame &F, const Instruction *I, RtValue V);
  void stepOnce();
  void execPhis(Frame &F);
  void execCall(Frame &F, const CallInst *Call);
  void execIntrinsic(Frame &F, const CallInst *Call);
  bool execMpiSingleRank(Frame &F, const CallInst *Call);
  void raiseTrap(TrapKind K) {
    Trap = K;
    Status = RunStatus::Trapped;
  }
  void pushFrame(const Function *Fn, std::vector<RtValue> Args);
  void returnFromFrame(bool HasValue, RtValue V);

  const ModuleLayout &Layout;
  Config Cfg;
  Memory Mem;
  std::vector<Frame> CallStack;
  RunStatus Status = RunStatus::Running;
  TrapKind Trap = TrapKind::None;
  RtValue ReturnValue;
  uint64_t Steps = 0;
  uint64_t ValueSteps = 0;
  uint64_t CommCost = 0;
  Rng WorkloadRng;
  FaultPlan Plan;
  bool FaultInjected = false;
  unsigned FaultedId = 0;
  std::vector<unsigned> *ValueStepTrace = nullptr;
  std::vector<uint64_t> *SiteCounts = nullptr;
  ExecObserver *Obs = nullptr;
  PendingMpi Pending;
  bool Started = false;
  // Telemetry (see ~ExecutionContext).
  bool CollectStats = false;
  std::array<uint64_t, NumOpcodeKinds> OpCount{};
  uint64_t ExecMicros = 0;
};

} // namespace ipas

#endif // IPAS_INTERP_INTERPRETER_H
