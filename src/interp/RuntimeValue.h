//===- interp/RuntimeValue.h - Raw 64-bit runtime values ------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every runtime value is a raw 64-bit word interpreted through the
/// instruction's static type. Keeping the representation raw makes the
/// fault model exact: a soft error flips one bit of the word, whatever the
/// type — mantissa, exponent, sign, address bit, or boolean.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_INTERP_RUNTIMEVALUE_H
#define IPAS_INTERP_RUNTIMEVALUE_H

#include "ir/Type.h"

#include <cstring>

namespace ipas {

struct RtValue {
  uint64_t Bits = 0;

  static RtValue fromI64(int64_t V) {
    RtValue R;
    R.Bits = static_cast<uint64_t>(V);
    return R;
  }
  static RtValue fromF64(double V) {
    RtValue R;
    std::memcpy(&R.Bits, &V, sizeof(V));
    return R;
  }
  static RtValue fromBool(bool V) {
    RtValue R;
    R.Bits = V ? 1 : 0;
    return R;
  }
  static RtValue fromPtr(uint64_t Addr) {
    RtValue R;
    R.Bits = Addr;
    return R;
  }

  int64_t asI64() const { return static_cast<int64_t>(Bits); }
  double asF64() const {
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  bool asBool() const { return (Bits & 1) != 0; }
  uint64_t asPtr() const { return Bits; }

  /// Flips bit \p Index within the live width of \p T (masking the value to
  /// that width first, so an i1 stays a 1-bit quantity).
  void flipBit(unsigned Index, Type T) {
    unsigned Width = T.bits();
    if (Width == 0)
      return;
    Bits ^= (1ULL << (Index % Width));
    if (Width < 64)
      Bits &= (1ULL << Width) - 1;
  }
};

} // namespace ipas

#endif // IPAS_INTERP_RUNTIMEVALUE_H
