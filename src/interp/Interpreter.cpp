//===- interp/Interpreter.cpp -------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cmath>

using namespace ipas;

namespace {

/// Pre-resolved global metric handles so the per-context flush costs a
/// handful of relaxed atomic adds instead of name lookups.
struct InterpMetrics {
  obs::Counter *Op[NumOpcodeKinds];
  obs::Counter *Steps;
  obs::Counter *ValueSteps;
  obs::Counter *Runs;
  obs::Counter *ExecMicros;
  obs::Counter *MemLoads;
  obs::Counter *MemStores;
  obs::Gauge *StepRate;

  InterpMetrics() {
    auto &R = obs::MetricsRegistry::global();
    for (unsigned K = 0; K != NumOpcodeKinds; ++K)
      Op[K] = &R.counter(std::string("interp.op.") +
                         opcodeName(static_cast<Opcode>(K)));
    Steps = &R.counter("interp.steps");
    ValueSteps = &R.counter("interp.value_steps");
    Runs = &R.counter("interp.runs");
    ExecMicros = &R.counter("interp.exec_micros");
    MemLoads = &R.counter("interp.mem.loads");
    MemStores = &R.counter("interp.mem.stores");
    StepRate = &R.gauge("interp.steps_per_sec");
  }

  static InterpMetrics &get() {
    static InterpMetrics M;
    return M;
  }
};

} // namespace

// Out-of-line key function anchoring the observer vtable.
ExecObserver::~ExecObserver() = default;

const char *ipas::runStatusName(RunStatus S) {
  switch (S) {
  case RunStatus::Running:
    return "running";
  case RunStatus::Blocked:
    return "blocked";
  case RunStatus::Finished:
    return "finished";
  case RunStatus::Trapped:
    return "trapped";
  case RunStatus::Detected:
    return "detected";
  case RunStatus::OutOfSteps:
    return "out-of-steps";
  }
  return "<bad status>";
}

const char *ipas::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::None:
    return "none";
  case TrapKind::OutOfBounds:
    return "out-of-bounds access";
  case TrapKind::DivByZero:
    return "integer division by zero";
  case TrapKind::OutOfMemory:
    return "heap exhausted";
  case TrapKind::StackOverflow:
    return "stack overflow";
  case TrapKind::CallDepthExceeded:
    return "call depth exceeded";
  case TrapKind::MpiMismatch:
    return "mismatched MPI collective";
  }
  return "<bad trap>";
}

//===----------------------------------------------------------------------===//
// ModuleLayout
//===----------------------------------------------------------------------===//

ModuleLayout::ModuleLayout(const Module &M) : M(M) {
  InstSlot.assign(M.numInstructions(), 0);
  for (Function *F : M) {
    unsigned Next = F->numArgs();
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB) {
        assert(I->id() < InstSlot.size() &&
               "Module::renumber() must run before building a layout");
        if (I->producesValue())
          InstSlot[I->id()] = Next++;
      }
    FrameSlots[F] = Next;
  }
}

//===----------------------------------------------------------------------===//
// ExecutionContext
//===----------------------------------------------------------------------===//

ExecutionContext::ExecutionContext(const ModuleLayout &Layout,
                                   const Config &Cfg)
    : Layout(Layout), Cfg(Cfg), Mem(Cfg.Mem),
      WorkloadRng(Cfg.WorkloadRngSeed),
      CollectStats(obs::statsEnabled()) {}

ExecutionContext::ExecutionContext(const ModuleLayout &Layout)
    : ExecutionContext(Layout, Config()) {}

ExecutionContext::~ExecutionContext() {
  if (!CollectStats || !Steps)
    return;
  InterpMetrics &M = InterpMetrics::get();
  for (unsigned K = 0; K != NumOpcodeKinds; ++K)
    if (OpCount[K])
      M.Op[K]->inc(OpCount[K]);
  M.Steps->inc(Steps);
  M.ValueSteps->inc(ValueSteps);
  M.Runs->inc(1);
  M.MemLoads->inc(opcodeCount(Opcode::Load));
  M.MemStores->inc(opcodeCount(Opcode::Store));
  if (ExecMicros) {
    M.ExecMicros->inc(ExecMicros);
    double Secs = static_cast<double>(M.ExecMicros->value()) / 1e6;
    if (Secs > 0.0)
      M.StepRate->set(static_cast<double>(M.Steps->value()) / Secs);
  }
}

void ExecutionContext::start(const Function *Entry,
                             const std::vector<RtValue> &Args) {
  assert(!Started && "context already started");
  assert(Entry->numArgs() == Args.size() && "entry argument count mismatch");
  Started = true;
  pushFrame(Entry, Args);
}

void ExecutionContext::pushFrame(const Function *Fn,
                                 std::vector<RtValue> Args) {
  Frame F;
  F.Fn = Fn;
  F.Block = Fn->entry();
  F.InstIdx = 0;
  F.SavedStackPtr = Mem.stackPointer();
  F.Slots.assign(Layout.frameSlots(Fn), RtValue());
  for (size_t I = 0; I != Args.size(); ++I)
    F.Slots[I] = Args[I];
  CallStack.push_back(std::move(F));
}

RtValue ExecutionContext::eval(const Frame &F, const Value *V) const {
  switch (V->kind()) {
  case ValueKind::ConstantInt:
    return RtValue::fromI64(static_cast<const ConstantInt *>(V)->value());
  case ValueKind::ConstantFP:
    return RtValue::fromF64(static_cast<const ConstantFP *>(V)->value());
  case ValueKind::Argument:
    return F.Slots[static_cast<const Argument *>(V)->index()];
  case ValueKind::Instruction:
    return F.Slots[Layout.slotOfInstruction(
        static_cast<const Instruction *>(V))];
  }
  return RtValue();
}

void ExecutionContext::writeResult(Frame &F, const Instruction *I,
                                   RtValue V) {
  if (ValueStepTrace)
    ValueStepTrace->push_back(I->id());
  if (ValueSteps == Plan.TargetValueStep) {
    V.flipBit(static_cast<unsigned>(Plan.BitDraw), I->type());
    FaultInjected = true;
    FaultedId = I->id();
  }
  if (Obs)
    Obs->onValueCommit(I, V, ValueSteps);
  ++ValueSteps;
  F.Slots[Layout.slotOfInstruction(I)] = V;
}

RunStatus ExecutionContext::run(uint64_t MaxSteps) {
  uint64_t T0 = CollectStats ? obs::monotonicMicros() : 0;
  RunStatus Result;
  while (true) {
    if (Status != RunStatus::Running) {
      Result = Status;
      break;
    }
    if (Steps >= MaxSteps) {
      Result = RunStatus::OutOfSteps;
      break;
    }
    stepOnce();
  }
  if (CollectStats)
    ExecMicros += obs::monotonicMicros() - T0;
  return Result;
}

void ExecutionContext::returnFromFrame(bool HasValue, RtValue V) {
  Frame Done = std::move(CallStack.back());
  CallStack.pop_back();
  Mem.restoreStackPointer(Done.SavedStackPtr);
  if (CallStack.empty()) {
    ReturnValue = V;
    Status = RunStatus::Finished;
    return;
  }
  Frame &Caller = CallStack.back();
  const auto *Call = cast<CallInst>(Caller.Block->at(Caller.InstIdx));
  if (HasValue && Call->producesValue())
    writeResult(Caller, Call, V);
  ++Caller.InstIdx;
}

void ExecutionContext::execPhis(Frame &F) {
  // All phis at the block top read their incoming values simultaneously.
  const BasicBlock *BB = F.Block;
  size_t NumPhis = 0;
  while (NumPhis < BB->size() && BB->at(NumPhis)->opcode() == Opcode::Phi)
    ++NumPhis;
  std::vector<RtValue> Incoming(NumPhis);
  for (size_t K = 0; K != NumPhis; ++K) {
    const auto *Phi = cast<PhiInst>(BB->at(K));
    const Value *V = Phi->incomingValueFor(F.PrevBlock);
    assert(V && "phi has no incoming value for the predecessor");
    if (Obs)
      Obs->onPhiChoice(Phi, V);
    Incoming[K] = eval(F, V);
  }
  for (size_t K = 0; K != NumPhis; ++K) {
    ++Steps;
    countOp(Opcode::Phi);
    countSite(BB->at(K));
    writeResult(F, BB->at(K), Incoming[K]);
  }
  F.InstIdx = NumPhis;
}

void ExecutionContext::stepOnce() {
  Frame &F = CallStack.back();
  const Instruction *I = F.Block->at(F.InstIdx);

  if (I->opcode() == Opcode::Phi) {
    execPhis(F);
    return;
  }

  // Calls manage their own step accounting and instruction-pointer
  // movement (they may push a frame or block on MPI).
  if (I->opcode() == Opcode::Call) {
    execCall(F, cast<CallInst>(I));
    return;
  }

  ++Steps;
  countOp(I->opcode());
  countSite(I);
  switch (I->opcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::AShr: {
    uint64_t A = eval(F, I->operand(0)).Bits;
    uint64_t B = eval(F, I->operand(1)).Bits;
    uint64_t R = 0;
    switch (I->opcode()) {
    case Opcode::Add:
      R = A + B;
      break;
    case Opcode::Sub:
      R = A - B;
      break;
    case Opcode::Mul:
      R = A * B;
      break;
    case Opcode::And:
      R = A & B;
      break;
    case Opcode::Or:
      R = A | B;
      break;
    case Opcode::Xor:
      R = A ^ B;
      break;
    case Opcode::Shl:
      R = A << (B & 63);
      break;
    default:
      R = static_cast<uint64_t>(static_cast<int64_t>(A) >>
                                (B & 63));
      break;
    }
    if (I->type().isI1())
      R &= 1;
    RtValue V;
    V.Bits = R;
    writeResult(F, I, V);
    ++F.InstIdx;
    return;
  }
  case Opcode::SDiv:
  case Opcode::SRem: {
    int64_t A = eval(F, I->operand(0)).asI64();
    int64_t B = eval(F, I->operand(1)).asI64();
    // Division by zero and INT64_MIN / -1 raise SIGFPE on x86.
    if (B == 0 || (A == INT64_MIN && B == -1)) {
      raiseTrap(TrapKind::DivByZero);
      return;
    }
    int64_t R = I->opcode() == Opcode::SDiv ? A / B : A % B;
    writeResult(F, I, RtValue::fromI64(R));
    ++F.InstIdx;
    return;
  }
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv: {
    double A = eval(F, I->operand(0)).asF64();
    double B = eval(F, I->operand(1)).asF64();
    double R;
    switch (I->opcode()) {
    case Opcode::FAdd:
      R = A + B;
      break;
    case Opcode::FSub:
      R = A - B;
      break;
    case Opcode::FMul:
      R = A * B;
      break;
    default:
      R = A / B; // IEEE: inf/NaN, never traps
      break;
    }
    writeResult(F, I, RtValue::fromF64(R));
    ++F.InstIdx;
    return;
  }
  case Opcode::ICmp: {
    const auto *Cmp = cast<CmpInst>(I);
    bool Unsigned = Cmp->lhs()->type().isPtr();
    RtValue AV = eval(F, I->operand(0));
    RtValue BV = eval(F, I->operand(1));
    bool R = false;
    if (Unsigned) {
      uint64_t A = AV.Bits, B = BV.Bits;
      switch (Cmp->predicate()) {
      case CmpPredicate::EQ:
        R = A == B;
        break;
      case CmpPredicate::NE:
        R = A != B;
        break;
      case CmpPredicate::LT:
        R = A < B;
        break;
      case CmpPredicate::LE:
        R = A <= B;
        break;
      case CmpPredicate::GT:
        R = A > B;
        break;
      case CmpPredicate::GE:
        R = A >= B;
        break;
      }
    } else {
      int64_t A = AV.asI64(), B = BV.asI64();
      switch (Cmp->predicate()) {
      case CmpPredicate::EQ:
        R = A == B;
        break;
      case CmpPredicate::NE:
        R = A != B;
        break;
      case CmpPredicate::LT:
        R = A < B;
        break;
      case CmpPredicate::LE:
        R = A <= B;
        break;
      case CmpPredicate::GT:
        R = A > B;
        break;
      case CmpPredicate::GE:
        R = A >= B;
        break;
      }
    }
    writeResult(F, I, RtValue::fromBool(R));
    ++F.InstIdx;
    return;
  }
  case Opcode::FCmp: {
    const auto *Cmp = cast<CmpInst>(I);
    double A = eval(F, I->operand(0)).asF64();
    double B = eval(F, I->operand(1)).asF64();
    bool R = false;
    switch (Cmp->predicate()) {
    case CmpPredicate::EQ:
      R = A == B;
      break;
    case CmpPredicate::NE:
      R = A != B; // true on NaN, matching C
      break;
    case CmpPredicate::LT:
      R = A < B;
      break;
    case CmpPredicate::LE:
      R = A <= B;
      break;
    case CmpPredicate::GT:
      R = A > B;
      break;
    case CmpPredicate::GE:
      R = A >= B;
      break;
    }
    writeResult(F, I, RtValue::fromBool(R));
    ++F.InstIdx;
    return;
  }
  case Opcode::SIToFP:
    writeResult(F, I,
                RtValue::fromF64(static_cast<double>(
                    eval(F, I->operand(0)).asI64())));
    ++F.InstIdx;
    return;
  case Opcode::FPToSI: {
    double V = eval(F, I->operand(0)).asF64();
    // Out-of-range conversions produce the x86 "integer indefinite".
    int64_t R;
    if (std::isnan(V) || V >= 9.2233720368547758e18 ||
        V <= -9.2233720368547758e18)
      R = INT64_MIN;
    else
      R = static_cast<int64_t>(V);
    writeResult(F, I, RtValue::fromI64(R));
    ++F.InstIdx;
    return;
  }
  case Opcode::ZExt: {
    RtValue V;
    V.Bits = eval(F, I->operand(0)).Bits & 1;
    writeResult(F, I, V);
    ++F.InstIdx;
    return;
  }
  case Opcode::BitcastF2I:
  case Opcode::BitcastI2F:
    writeResult(F, I, eval(F, I->operand(0)));
    ++F.InstIdx;
    return;
  case Opcode::Alloca: {
    const auto *A = cast<AllocaInst>(I);
    uint64_t Addr = Mem.allocaBytes(A->slotCount() * 8);
    if (!Addr) {
      raiseTrap(TrapKind::StackOverflow);
      return;
    }
    writeResult(F, I, RtValue::fromPtr(Addr));
    ++F.InstIdx;
    return;
  }
  case Opcode::Load: {
    uint64_t Addr = eval(F, I->operand(0)).asPtr();
    if (!Mem.validRange(Addr, 8)) {
      raiseTrap(TrapKind::OutOfBounds);
      return;
    }
    if (Obs)
      Obs->onLoad(I, Addr);
    RtValue V;
    V.Bits = Mem.read64(Addr);
    if (I->type().isI1())
      V.Bits &= 1;
    writeResult(F, I, V);
    ++F.InstIdx;
    return;
  }
  case Opcode::Store: {
    RtValue V = eval(F, I->operand(0));
    uint64_t Addr = eval(F, I->operand(1)).asPtr();
    if (!Mem.validRange(Addr, 8)) {
      raiseTrap(TrapKind::OutOfBounds);
      return;
    }
    if (Obs)
      Obs->onStore(I, Addr, V);
    Mem.write64(Addr, V.Bits);
    ++F.InstIdx;
    return;
  }
  case Opcode::Gep: {
    uint64_t Base = eval(F, I->operand(0)).asPtr();
    uint64_t Index = eval(F, I->operand(1)).Bits;
    writeResult(F, I, RtValue::fromPtr(Base + Index * 8));
    ++F.InstIdx;
    return;
  }
  case Opcode::Select: {
    bool C = eval(F, I->operand(0)).asBool();
    writeResult(F, I, eval(F, I->operand(C ? 1 : 2)));
    ++F.InstIdx;
    return;
  }
  case Opcode::Check: {
    uint64_t A = eval(F, I->operand(0)).Bits;
    uint64_t B = eval(F, I->operand(1)).Bits;
    if (Obs) {
      RtValue AV, BV;
      AV.Bits = A;
      BV.Bits = B;
      Obs->onCheck(I, AV, BV);
    }
    if (A != B) {
      Status = RunStatus::Detected;
      return;
    }
    ++F.InstIdx;
    return;
  }
  case Opcode::Br: {
    const auto *Br = cast<BranchInst>(I);
    F.PrevBlock = F.Block;
    F.Block = Br->target();
    F.InstIdx = 0;
    return;
  }
  case Opcode::CondBr: {
    const auto *CBr = cast<CondBranchInst>(I);
    bool C = eval(F, I->operand(0)).asBool();
    if (Obs)
      Obs->onCondBranch(I, C);
    F.PrevBlock = F.Block;
    F.Block = C ? CBr->trueTarget() : CBr->falseTarget();
    F.InstIdx = 0;
    return;
  }
  case Opcode::Ret: {
    const auto *Ret = cast<RetInst>(I);
    bool HasValue = Ret->hasReturnValue();
    RtValue V = HasValue ? eval(F, I->operand(0)) : RtValue();
    if (Obs)
      Obs->onReturn(I, HasValue, V);
    returnFromFrame(HasValue, V);
    return;
  }
  case Opcode::Phi:
  case Opcode::Call:
    break; // handled above
  }
  assert(false && "unhandled opcode in stepOnce");
}

void ExecutionContext::execCall(Frame &F, const CallInst *Call) {
  if (!Call->isIntrinsicCall()) {
    if (CallStack.size() >= Cfg.MaxCallDepth) {
      raiseTrap(TrapKind::CallDepthExceeded);
      return;
    }
    ++Steps;
    countOp(Opcode::Call);
    countSite(Call);
    std::vector<RtValue> Args(Call->numArgs());
    for (unsigned K = 0; K != Call->numArgs(); ++K)
      Args[K] = eval(F, Call->arg(K));
    if (Obs)
      Obs->onCall(Call, Args);
    pushFrame(Call->callee(), std::move(Args));
    // The caller's InstIdx advances when the callee returns.
    return;
  }
  execIntrinsic(F, Call);
}

/// Copies \p Count doubles between two (validated) regions of \p Mem.
static bool copySlots(Memory &Mem, uint64_t Dst, uint64_t Src,
                      uint64_t Count) {
  if (!Mem.validRange(Src, Count * 8) || !Mem.validRange(Dst, Count * 8))
    return false;
  for (uint64_t K = 0; K != Count; ++K)
    Mem.write64(Dst + K * 8, Mem.read64(Src + K * 8));
  return true;
}

bool ExecutionContext::execMpiSingleRank(Frame &F, const CallInst *Call) {
  // Single-process semantics: collectives are identities, gathers are
  // local copies.
  switch (Call->intrinsicId()) {
  case Intrinsic::MpiRank:
    writeResult(F, Call, RtValue::fromI64(0));
    return true;
  case Intrinsic::MpiSize:
    writeResult(F, Call, RtValue::fromI64(1));
    return true;
  case Intrinsic::MpiBarrier:
    return true;
  case Intrinsic::MpiAllreduceSumD:
  case Intrinsic::MpiAllreduceMaxD:
  case Intrinsic::MpiAllreduceSumI:
    writeResult(F, Call, eval(F, Call->arg(0)));
    return true;
  case Intrinsic::MpiBcastD:
  case Intrinsic::MpiBcastI:
    writeResult(F, Call, eval(F, Call->arg(0)));
    return true;
  case Intrinsic::MpiAllgatherD:
  case Intrinsic::MpiAlltoallD: {
    uint64_t Send = eval(F, Call->arg(0)).asPtr();
    uint64_t Recv = eval(F, Call->arg(1)).asPtr();
    int64_t N = eval(F, Call->arg(2)).asI64();
    if (N < 0 || !copySlots(Mem, Recv, Send, static_cast<uint64_t>(N))) {
      raiseTrap(TrapKind::OutOfBounds);
      return false;
    }
    return true;
  }
  default:
    assert(false && "not an MPI intrinsic");
    return true;
  }
}

void ExecutionContext::execIntrinsic(Frame &F, const CallInst *Call) {
  Intrinsic Id = Call->intrinsicId();

  if (isMpiIntrinsic(Id) || Id == Intrinsic::MpiRank ||
      Id == Intrinsic::MpiSize) {
    if (Cfg.NumRanks <= 1) {
      ++Steps;
      countOp(Opcode::Call);
      countSite(Call);
      if (execMpiSingleRank(F, Call))
        ++F.InstIdx;
      return;
    }
    // Rank and size resolve locally even in multi-rank mode.
    if (Id == Intrinsic::MpiRank || Id == Intrinsic::MpiSize) {
      ++Steps;
      countOp(Opcode::Call);
      countSite(Call);
      writeResult(F, Call,
                  RtValue::fromI64(Id == Intrinsic::MpiRank ? Cfg.Rank
                                                            : Cfg.NumRanks));
      ++F.InstIdx;
      return;
    }
    // Blocking collective: suspend until the scheduler resolves it. The
    // step is accounted when the call completes.
    Pending.Op = Id;
    for (unsigned K = 0; K != Call->numArgs() && K != 3; ++K)
      Pending.Args[K] = eval(F, Call->arg(K));
    Status = RunStatus::Blocked;
    return;
  }

  ++Steps;
  countOp(Opcode::Call);
  countSite(Call);
  auto Ret = [&](RtValue V) {
    writeResult(F, Call, V);
    ++F.InstIdx;
  };
  auto A0 = [&]() { return eval(F, Call->arg(0)); };
  auto A1 = [&]() { return eval(F, Call->arg(1)); };

  switch (Id) {
  case Intrinsic::Sqrt:
    Ret(RtValue::fromF64(std::sqrt(A0().asF64())));
    return;
  case Intrinsic::Fabs:
    Ret(RtValue::fromF64(std::fabs(A0().asF64())));
    return;
  case Intrinsic::Sin:
    Ret(RtValue::fromF64(std::sin(A0().asF64())));
    return;
  case Intrinsic::Cos:
    Ret(RtValue::fromF64(std::cos(A0().asF64())));
    return;
  case Intrinsic::Exp:
    Ret(RtValue::fromF64(std::exp(A0().asF64())));
    return;
  case Intrinsic::Log:
    Ret(RtValue::fromF64(std::log(A0().asF64())));
    return;
  case Intrinsic::Pow:
    Ret(RtValue::fromF64(std::pow(A0().asF64(), A1().asF64())));
    return;
  case Intrinsic::Floor:
    Ret(RtValue::fromF64(std::floor(A0().asF64())));
    return;
  case Intrinsic::FMin:
    Ret(RtValue::fromF64(std::fmin(A0().asF64(), A1().asF64())));
    return;
  case Intrinsic::FMax:
    Ret(RtValue::fromF64(std::fmax(A0().asF64(), A1().asF64())));
    return;
  case Intrinsic::IMin:
    Ret(RtValue::fromI64(std::min(A0().asI64(), A1().asI64())));
    return;
  case Intrinsic::IMax:
    Ret(RtValue::fromI64(std::max(A0().asI64(), A1().asI64())));
    return;
  case Intrinsic::Malloc: {
    int64_t Slots = A0().asI64();
    if (Slots < 0) {
      raiseTrap(TrapKind::OutOfMemory);
      return;
    }
    uint64_t Addr = Mem.mallocBytes(static_cast<uint64_t>(Slots) * 8);
    if (!Addr) {
      raiseTrap(TrapKind::OutOfMemory);
      return;
    }
    Ret(RtValue::fromPtr(Addr));
    return;
  }
  case Intrinsic::Free:
    Mem.free(A0().asPtr());
    ++F.InstIdx;
    return;
  case Intrinsic::RandSeed:
    WorkloadRng.reseed(static_cast<uint64_t>(A0().asI64()));
    ++F.InstIdx;
    return;
  case Intrinsic::RandI64: {
    int64_t Bound = A0().asI64();
    Ret(RtValue::fromI64(
        Bound <= 0 ? 0
                   : static_cast<int64_t>(WorkloadRng.nextBelow(
                         static_cast<uint64_t>(Bound)))));
    return;
  }
  case Intrinsic::RandF64:
    Ret(RtValue::fromF64(WorkloadRng.nextDouble()));
    return;
  default:
    assert(false && "unhandled intrinsic");
    ++F.InstIdx;
    return;
  }
}

void ExecutionContext::completePendingCall(RtValue Result) {
  assert(Status == RunStatus::Blocked && "no pending call to complete");
  Frame &F = CallStack.back();
  const auto *Call = cast<CallInst>(F.Block->at(F.InstIdx));
  ++Steps;
  countOp(Opcode::Call);
  countSite(Call);
  if (Call->producesValue())
    writeResult(F, Call, Result);
  ++F.InstIdx;
  Pending.Op = Intrinsic::None;
  Status = RunStatus::Running;
}

void ExecutionContext::failPending(TrapKind K) {
  assert(Status == RunStatus::Blocked && "no pending call to fail");
  Pending.Op = Intrinsic::None;
  raiseTrap(K);
}
