//===- interp/Memory.cpp -------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Memory.h"

using namespace ipas;

Memory::Memory() : Memory(Config()) {}

Memory::Memory(const Config &Cfg) {
  uint64_t Total = GuardBytes + Cfg.StackBytes + Cfg.HeapBytes;
  Data.assign(Total, 0);
  FirstValid = GuardBytes;
  Limit = Total;
  StackBase = GuardBytes;
  StackLimit = StackBase + Cfg.StackBytes;
  StackPtr = StackBase;
  HeapBase = StackLimit;
  HeapLimit = Total;
  HeapPtr = HeapBase;
}

uint64_t Memory::allocaBytes(uint64_t Bytes) {
  // Keep 8-byte alignment.
  Bytes = (Bytes + 7) & ~7ull;
  if (Bytes > StackLimit - StackPtr)
    return 0;
  uint64_t Addr = StackPtr;
  StackPtr += Bytes;
  return Addr;
}

uint64_t Memory::mallocBytes(uint64_t Bytes) {
  Bytes = (Bytes + 7) & ~7ull;
  if (Bytes == 0)
    Bytes = 8;
  if (Bytes > HeapLimit - HeapPtr)
    return 0;
  uint64_t Addr = HeapPtr;
  HeapPtr += Bytes;
  return Addr;
}

void Memory::free(uint64_t) {
  // Bump allocator: no recycling (documented in the header).
}
