//===- analysis/SocPropagation.h - Static SOC reachability ----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static SOC-propagation analysis: for every instruction, which *sinks* —
/// program points where a corrupted value becomes externally observable —
/// can a corruption of the instruction's result reach? The analysis is a
/// backward fixpoint over the value-flow graph: def-use edges, plus
/// conservative memory edges from a store to every load of the same
/// pointer root (analysis/Slicing.h's base-object approximation of alias
/// analysis).
///
/// Sinks, and why each one matters to the outcome taxonomy:
///
///  - Store:        corrupted data (or a corrupted address) reaches memory
///                   and from there the program's output — the SOC case.
///  - CallArgument: a corrupted argument escapes into a callee whose body
///                   this conservative summary does not track.
///  - Return:       the corruption escapes through the function's result.
///  - ControlFlow:  a corrupted branch condition changes the path, which
///                   can change output, steps, or termination.
///  - Check:        a corrupted `soc.check` operand flips the run's label
///                   to Detected — not an output change, but a label
///                   change, so it must block benign classification.
///  - TrapCapable:  the corruption can trap (corrupted divisor of
///                   sdiv/srem, corrupted pointer of a load or store),
///                   turning the run into a Crash.
///
/// An instruction whose result reaches *no* sink is **provably benign**:
/// flipping any bit of its result leaves the program's output, step
/// counts, and exit status bit-identical. fault/Campaign uses this to
/// prune injection sites, and analysis/Features exposes the per-sink
/// reachability bits as extra feature columns.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ANALYSIS_SOCPROPAGATION_H
#define IPAS_ANALYSIS_SOCPROPAGATION_H

#include "analysis/Dataflow.h"
#include "ir/Module.h"

#include <limits>
#include <map>

namespace ipas {

class ModuleSummaries;

/// Bit flags naming the kinds of sinks a corrupted value can reach.
enum SocSinkKind : unsigned {
  SocSinkNone = 0,
  SocSinkStore = 1u << 0,
  SocSinkCallArgument = 1u << 1,
  SocSinkReturn = 1u << 2,
  SocSinkControlFlow = 1u << 3,
  SocSinkCheck = 1u << 4,
  SocSinkTrapCapable = 1u << 5,
};

/// Human-readable name of one sink-kind flag (exactly one bit set).
const char *socSinkKindName(SocSinkKind K);

/// Per-instruction result of the analysis.
struct SocInstructionInfo {
  /// No sink reachable: the sentinel distance.
  static constexpr unsigned NoSink = std::numeric_limits<unsigned>::max();

  unsigned SinkMask = SocSinkNone; ///< Union of reachable SocSinkKind bits.
  unsigned SinkCount = 0;          ///< Number of distinct sink instructions.
  unsigned MinSinkDistance = NoSink; ///< Value-flow hops to nearest sink.

  bool reaches(SocSinkKind K) const { return (SinkMask & K) != 0; }

  /// True when a corruption of this value reaches no sink at all.
  bool isBenign() const { return SinkMask == SocSinkNone; }
};

/// Runs the propagation analysis for a whole module. Requires a prior
/// Module::renumber() — results are addressed by instruction id.
class SocPropagation {
public:
  explicit SocPropagation(const Module &M);

  /// Summary-aware (interprocedural) variant: direct calls substitute
  /// the callee's per-argument channels from \p Summaries instead of
  /// acting as opaque CallArgument barriers, and trap-free math
  /// intrinsics become plain value edges. Strictly sharpens the
  /// intraprocedural result — every site benign there stays benign here,
  /// and sites whose corruption provably dies inside a callee become
  /// benign too. Return values remain conservative sinks in every
  /// function. See analysis/FunctionSummary.h.
  SocPropagation(const Module &M, const ModuleSummaries &Summaries);

  /// Info for \p I; a default (benign, distance NoSink) record when \p I
  /// does not produce a value.
  const SocInstructionInfo &info(const Instruction *I) const;

  /// True when \p I produces a value and that value provably reaches no
  /// sink: injecting any bit flip into its result cannot change output,
  /// step counts, or exit status.
  bool isProvablyBenign(const Instruction *I) const {
    return I->producesValue() && info(I).isBenign();
  }

  /// Benign flags indexed by instruction id (size = numInstructions()).
  /// Non-value-producing instructions are never benign-flagged: the fault
  /// model only targets instruction results.
  const std::vector<bool> &provablyBenign() const { return BenignById; }

  size_t numBenign() const { return NumBenign; }

private:
  void analyzeFunction(const Function &F);
  void finalize(const Module &M);

  std::map<const Instruction *, SocInstructionInfo> Info;
  SocInstructionInfo Default;
  std::vector<bool> BenignById;
  size_t NumBenign = 0;
};

} // namespace ipas

#endif // IPAS_ANALYSIS_SOCPROPAGATION_H
