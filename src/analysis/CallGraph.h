//===- analysis/CallGraph.h - Direct-call graph + SCC condensation --------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The direct-call graph over a module's functions. MiniC has no function
/// pointers, so every non-intrinsic CallInst names its callee statically
/// and the graph is exact. Intrinsic calls (sin, malloc, MPI, ...) are
/// runtime primitives, not module functions, and do not create edges —
/// their effects are modeled per-intrinsic by the analyses that consume
/// this graph (see FunctionSummary.cpp).
///
/// Recursion is handled by Tarjan's SCC condensation: sccs() returns the
/// strongly connected components in bottom-up (callee-before-caller)
/// order, which is exactly the order a compositional summary computation
/// wants — process each SCC after all the SCCs it calls into, and run a
/// fixpoint only *inside* recursive components.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ANALYSIS_CALLGRAPH_H
#define IPAS_ANALYSIS_CALLGRAPH_H

#include "ir/Module.h"

#include <map>
#include <vector>

namespace ipas {

class CallGraph {
public:
  explicit CallGraph(const Module &M);

  /// Direct callees of \p F (deduplicated, in first-call order).
  const std::vector<const Function *> &callees(const Function *F) const;

  /// Direct callers of \p F (deduplicated, in module order).
  const std::vector<const Function *> &callers(const Function *F) const;

  /// Strongly connected components in bottom-up order: every SCC appears
  /// after all SCCs it has call edges into. Singleton SCCs are the common
  /// case; multi-node SCCs (or self-loops) are recursion.
  const std::vector<std::vector<const Function *>> &sccs() const {
    return Sccs;
  }

  /// Index of \p F's SCC within sccs().
  unsigned sccIndex(const Function *F) const;

  /// True when \p F participates in a call cycle: its SCC has more than
  /// one member, or it calls itself directly.
  bool isRecursive(const Function *F) const;

  /// Every function reachable from \p F along call edges, including \p F
  /// itself, in deterministic (module) order.
  std::vector<const Function *> reachableFrom(const Function *F) const;

private:
  std::map<const Function *, std::vector<const Function *>> Callees;
  std::map<const Function *, std::vector<const Function *>> Callers;
  std::map<const Function *, unsigned> SccOf;
  std::vector<std::vector<const Function *>> Sccs;
  std::vector<const Function *> ModuleOrder;
  std::vector<const Function *> Empty;
};

} // namespace ipas

#endif // IPAS_ANALYSIS_CALLGRAPH_H
