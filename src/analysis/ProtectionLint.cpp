//===- analysis/ProtectionLint.cpp --------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ProtectionLint.h"

#include "analysis/Dataflow.h"

#include <map>
#include <sstream>

using namespace ipas;

const char *ipas::lintRuleName(LintRule R) {
  switch (R) {
  case LintRule::UncoveredOriginal:
    return "R1";
  case LintRule::ShadowEscapes:
    return "R2";
  case LintRule::Unduplicated:
    return "R3";
  case LintRule::BadCheckPairing:
    return "R4";
  case LintRule::WrongShadowOperand:
    return "R5";
  case LintRule::UncheckedCallArgument:
    return "R6";
  }
  return "<bad rule>";
}

std::string LintViolation::toString() const {
  std::ostringstream OS;
  OS << lintRuleName(Rule) << " in " << FunctionName << "/" << BlockName
     << " at #" << InstructionId << " (" << opcodeName(Op)
     << "): " << Message;
  return OS.str();
}

namespace {

class FunctionLinter {
public:
  FunctionLinter(const Function &F, const LintOptions &Opts)
      : F(F), Opts(Opts) {}

  std::vector<LintViolation> run() {
    // Pairing map: original -> its shadow. Built from the Shadow stamps so
    // that a deleted shadow shows up as a missing entry, not a dangle.
    for (const BasicBlock *BB : F)
      for (const Instruction *I : *BB)
        if (I->dupRole() == DupRole::Shadow && I->dupLink())
          ShadowOf[I->dupLink()] = I;

    for (const BasicBlock *BB : F)
      for (const Instruction *I : *BB) {
        checkShadowEscapes(I);                 // R2
        if (Opts.ExpectFullDuplication)
          checkFullyDuplicated(I);             // R3
        if (const auto *Check = dyn_cast<CheckInst>(I))
          checkPairing(Check);                 // R4
        if (I->dupRole() == DupRole::Shadow)
          checkShadowOperands(I);              // R5
        if (Opts.CheckCallBoundary)
          if (const auto *Call = dyn_cast<CallInst>(I))
            checkCallBoundary(Call);           // R6
      }

    checkCoverage(); // R1 (needs the whole function's checks)
    return std::move(Violations);
  }

private:
  void report(LintRule Rule, const Instruction *I, std::string Msg) {
    Violations.push_back({Rule, F.name(),
                          I->parent() ? I->parent()->name()
                                      : std::string("<detached>"),
                          I->id(), I->opcode(), std::move(Msg)});
  }

  /// R1: every Original must be covered by a check at the end of its own
  /// block — the paper's duplication paths never cross blocks, so an
  /// original left uncovered there is uncovered everywhere.
  void checkCoverage() {
    CheckCoverageAnalysis Coverage(F);
    for (const BasicBlock *BB : F)
      for (const Instruction *I : *BB)
        if (I->dupRole() == DupRole::Original &&
            !Coverage.isCoveredAtBlockEnd(I, BB))
          report(LintRule::UncoveredOriginal, I,
                 "duplicated instruction is not covered by any soc.check "
                 "at the end of its block");
  }

  /// R2: a shadow's consumers must be shadows or checks.
  void checkShadowEscapes(const Instruction *I) {
    if (I->dupRole() == DupRole::Shadow || I->opcode() == Opcode::Check)
      return;
    for (unsigned K = 0, E = I->numOperands(); K != E; ++K)
      if (const auto *Op = dyn_cast<Instruction>(I->operand(K)))
        if (Op->dupRole() == DupRole::Shadow)
          report(LintRule::ShadowEscapes, I,
                 "shadow value '" + std::string(opcodeName(Op->opcode())) +
                     "' #" + std::to_string(Op->id()) +
                     " flows into a non-shadow instruction (operand " +
                     std::to_string(K) + ")");
  }

  /// R3: under full duplication no duplicable instruction may remain
  /// unstamped, and every Original must still have a live shadow.
  void checkFullyDuplicated(const Instruction *I) {
    if (!isDuplicableOpcode(I->opcode()))
      return;
    switch (I->dupRole()) {
    case DupRole::None:
      report(LintRule::Unduplicated, I,
             "duplicable instruction was never duplicated");
      break;
    case DupRole::Original:
      if (!ShadowOf.count(I))
        report(LintRule::Unduplicated, I,
               "duplicated instruction lost its shadow");
      break;
    case DupRole::Shadow:
    case DupRole::Check:
      break;
    }
  }

  /// R4: check operands must be an (original, its-own-shadow) pair.
  void checkPairing(const CheckInst *Check) {
    if (Check->numOperands() != 2)
      return; // verifier territory
    const auto *Orig = dyn_cast<Instruction>(Check->original());
    const auto *Shadow = dyn_cast<Instruction>(Check->shadow());
    if (Orig && Orig->dupRole() == DupRole::Shadow)
      report(LintRule::BadCheckPairing, Check,
             "check's original operand is itself a shadow");
    if (!Shadow || Shadow->dupRole() != DupRole::Shadow) {
      report(LintRule::BadCheckPairing, Check,
             "check's shadow operand is not a shadow value");
      return;
    }
    if (Shadow->dupLink() != Check->original())
      report(LintRule::BadCheckPairing, Check,
             "check compares an original against another instruction's "
             "shadow");
  }

  /// R5: shadow operand K must mirror the original's operand K — its
  /// shadow when one exists in the same block, the original operand
  /// itself otherwise.
  void checkShadowOperands(const Instruction *Shadow) {
    const Instruction *Orig = Shadow->dupLink();
    if (!Orig) {
      report(LintRule::WrongShadowOperand, Shadow,
             "shadow carries no link to an original");
      return;
    }
    if (Shadow->numOperands() != Orig->numOperands()) {
      report(LintRule::WrongShadowOperand, Shadow,
             "shadow operand count differs from its original");
      return;
    }
    for (unsigned K = 0, E = Shadow->numOperands(); K != E; ++K) {
      const Value *Expected = Orig->operand(K);
      auto It = ShadowOf.find(Expected);
      if (It != ShadowOf.end() &&
          It->second->parent() == Shadow->parent())
        Expected = It->second;
      if (Shadow->operand(K) != Expected)
        report(LintRule::WrongShadowOperand, Shadow,
               "shadow operand " + std::to_string(K) +
                   " does not mirror its original's operand");
    }
  }

  /// R6: each duplicated argument of a non-intrinsic call must be
  /// checked before the callee can consume it — a soc.check earlier in
  /// the call's own block, or (for a value defined upstream) anywhere in
  /// the value's defining block, where the duplication path ended.
  void checkCallBoundary(const CallInst *Call) {
    if (Call->isIntrinsicCall())
      return;
    const BasicBlock *CallBB = Call->parent();
    size_t CallPos = CallBB->indexOf(Call);
    for (unsigned K = 0, E = Call->numArgs(); K != E; ++K) {
      const auto *Arg = dyn_cast<Instruction>(Call->arg(K));
      if (!Arg || Arg->dupRole() != DupRole::Original)
        continue;
      bool Checked = false;
      for (size_t P = 0; P != CallPos && !Checked; ++P)
        if (const auto *C = dyn_cast<CheckInst>(CallBB->at(P)))
          Checked = C->original() == Arg;
      const BasicBlock *DefBB = Arg->parent();
      if (!Checked && DefBB != CallBB)
        for (const Instruction *I : *DefBB) {
          if (const auto *C = dyn_cast<CheckInst>(I))
            if (C->original() == Arg) {
              Checked = true;
              break;
            }
        }
      if (!Checked)
        report(LintRule::UncheckedCallArgument, Call,
               "duplicated value '" +
                   std::string(opcodeName(Arg->opcode())) + "' #" +
                   std::to_string(Arg->id()) +
                   " crosses the call boundary (argument " +
                   std::to_string(K) + ") without a preceding soc.check");
    }
  }

  const Function &F;
  const LintOptions &Opts;
  std::map<const Value *, const Instruction *> ShadowOf;
  std::vector<LintViolation> Violations;
};

} // namespace

std::vector<LintViolation>
ipas::lintProtectedFunction(const Function &F, const LintOptions &Opts) {
  return FunctionLinter(F, Opts).run();
}

std::vector<LintViolation> ipas::lintProtectedModule(const Module &M,
                                                     const LintOptions &Opts) {
  std::vector<LintViolation> All;
  for (const Function *F : M) {
    std::vector<LintViolation> Vs = lintProtectedFunction(*F, Opts);
    All.insert(All.end(), Vs.begin(), Vs.end());
  }
  return All;
}
