//===- analysis/Dataflow.cpp --------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include <algorithm>
#include <deque>
#include <set>

using namespace ipas;

//===----------------------------------------------------------------------===//
// ValueNumbering
//===----------------------------------------------------------------------===//

ValueNumbering::ValueNumbering(const Function &F) {
  for (unsigned I = 0, E = F.numArgs(); I != E; ++I) {
    Index[F.arg(I)] = static_cast<unsigned>(Values.size());
    Values.push_back(F.arg(I));
  }
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB) {
      Index[I] = static_cast<unsigned>(Values.size());
      Values.push_back(I);
    }
}

//===----------------------------------------------------------------------===//
// DataflowSolver
//===----------------------------------------------------------------------===//

namespace {

/// Reverse post-order of the CFG from the entry block. Unreachable blocks
/// are appended at the end so they still get (vacuous) states.
std::vector<const BasicBlock *> reversePostOrder(const Function &F) {
  std::vector<const BasicBlock *> Post;
  std::set<const BasicBlock *> Visited;
  // Iterative DFS with an explicit stack of (block, next-successor) pairs.
  struct Frame {
    const BasicBlock *BB;
    std::vector<BasicBlock *> Succs;
    size_t Next = 0;
  };
  if (!F.empty()) {
    std::vector<Frame> Stack;
    const BasicBlock *Entry = F.entry();
    Visited.insert(Entry);
    Stack.push_back({Entry, Entry->successors(), 0});
    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      if (Top.Next == Top.Succs.size()) {
        Post.push_back(Top.BB);
        Stack.pop_back();
        continue;
      }
      const BasicBlock *Succ = Top.Succs[Top.Next++];
      if (Visited.insert(Succ).second)
        Stack.push_back({Succ, Succ->successors(), 0});
    }
  }
  std::reverse(Post.begin(), Post.end());
  for (const BasicBlock *BB : F)
    if (!Visited.count(BB))
      Post.push_back(BB);
  return Post;
}

} // namespace

DataflowSolver::DataflowSolver(const Function &F, const DataflowProblem &P)
    : F(F), P(P) {}

void DataflowSolver::solve() {
  if (F.empty())
    return;

  const bool Forward = P.direction() == DataflowDirection::Forward;

  // Iteration order: RPO for forward problems, reverse RPO (≈ post-order)
  // for backward ones — both make a reducible CFG converge in O(loop
  // nesting depth) passes.
  std::vector<const BasicBlock *> Order = reversePostOrder(F);
  if (!Forward)
    std::reverse(Order.begin(), Order.end());

  // Boundary blocks: entry for forward problems, exit blocks (those whose
  // terminator is a return) for backward ones.
  auto IsBoundary = [&](const BasicBlock *BB) {
    if (Forward)
      return BB == F.entry();
    const Instruction *Term = BB->terminator();
    return Term && Term->opcode() == Opcode::Ret;
  };

  for (const BasicBlock *BB : Order) {
    BlockState S{P.initialState(), P.initialState()};
    if (IsBoundary(BB)) {
      if (Forward)
        S.In = P.boundaryState();
      else
        S.Out = P.boundaryState();
    }
    States.emplace(BB, std::move(S));
  }

  std::deque<const BasicBlock *> Worklist(Order.begin(), Order.end());
  std::set<const BasicBlock *> OnList(Order.begin(), Order.end());

  while (!Worklist.empty()) {
    const BasicBlock *BB = Worklist.front();
    Worklist.pop_front();
    OnList.erase(BB);
    BlockState &S = States.at(BB);

    // Meet over the incoming edges (predecessors' out for forward
    // problems, successors' in for backward). Boundary blocks keep their
    // boundary state — in this IR the entry block has no predecessors and
    // returning blocks have no successors, so the meet below is a no-op
    // for them either way.
    std::vector<BasicBlock *> Incoming =
        Forward ? F.predecessors(BB) : BB->successors();
    BitSet &MeetInto = Forward ? S.In : S.Out;
    bool First = true;
    for (const BasicBlock *Edge : Incoming) {
      const BlockState &ES = States.at(Edge);
      const BitSet &EdgeState = Forward ? ES.Out : ES.In;
      if (First) {
        MeetInto = EdgeState;
        First = false;
      } else if (P.meet() == MeetKind::Union) {
        MeetInto.unionWith(EdgeState);
      } else {
        MeetInto.intersectWith(EdgeState);
      }
    }

    BitSet New = MeetInto;
    P.transfer(BB, New);
    ++Transfers;

    BitSet &Result = Forward ? S.Out : S.In;
    if (New == Result)
      continue;
    Result = std::move(New);

    // Push everyone downstream of the changed state.
    std::vector<BasicBlock *> Dependents =
        Forward ? BB->successors() : F.predecessors(BB);
    for (const BasicBlock *Dep : Dependents)
      if (OnList.insert(Dep).second)
        Worklist.push_back(Dep);
  }
}

//===----------------------------------------------------------------------===//
// LivenessAnalysis
//===----------------------------------------------------------------------===//

LivenessAnalysis::Problem::Problem(const Function &F,
                                   const ValueNumbering &N)
    : Width(N.size()) {
  for (const BasicBlock *BB : F) {
    BitSet G(Width), K(Width);
    // Walk in reverse so a use below a same-block def is killed, while an
    // upward-exposed use (before any def in this block) stays in gen. SSA
    // means the only def of a value is its instruction, so "kill" is
    // simply "defined here".
    for (size_t I = BB->size(); I != 0; --I) {
      const Instruction *Inst = BB->at(I - 1);
      if (Inst->producesValue()) {
        unsigned Idx = N.indexOf(Inst);
        K.set(Idx);
        G.reset(Idx);
      }
      for (const Value *Op : Inst->operands())
        if (N.has(Op))
          G.set(N.indexOf(Op));
    }
    Gen.emplace(BB, std::move(G));
    Kill.emplace(BB, std::move(K));
  }
}

LivenessAnalysis::LivenessAnalysis(const Function &F)
    : Numbering(F), Prob(F, Numbering), Solver(F, Prob) {
  Solver.solve();
}

//===----------------------------------------------------------------------===//
// CheckCoverageAnalysis
//===----------------------------------------------------------------------===//

namespace {

/// Values a `soc.check` detects corruption of: its original operand plus,
/// through the provenance metadata, the original of every shadow that
/// transitively feeds the check's shadow operand. Shadows recompute the
/// whole duplication path, so a fault anywhere along it skews the
/// comparison at the path end.
void collectCheckedValues(const CheckInst *Check, const ValueNumbering &N,
                          BitSet &Out) {
  if (Check->numOperands() != 2)
    return; // malformed check (verifier reports it); covers nothing
  if (N.has(Check->original()))
    Out.set(N.indexOf(Check->original()));
  std::vector<const Value *> Stack{Check->shadow()};
  std::set<const Value *> Seen;
  while (!Stack.empty()) {
    const Value *V = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(V).second)
      continue;
    const auto *Shadow = dyn_cast<Instruction>(V);
    if (!Shadow || Shadow->dupRole() != DupRole::Shadow)
      continue;
    if (const Instruction *Orig = Shadow->dupLink())
      if (N.has(Orig))
        Out.set(N.indexOf(Orig));
    for (const Value *Op : Shadow->operands())
      Stack.push_back(Op);
  }
}

} // namespace

CheckCoverageAnalysis::Problem::Problem(const Function &F,
                                        const ValueNumbering &N)
    : Width(N.size()), EmptyKill(N.size()) {
  for (const BasicBlock *BB : F) {
    BitSet G(Width);
    for (const Instruction *I : *BB)
      if (const auto *Check = dyn_cast<CheckInst>(I))
        collectCheckedValues(Check, N, G);
    Gen.emplace(BB, std::move(G));
    Kill.emplace(BB, EmptyKill);
  }
}

CheckCoverageAnalysis::CheckCoverageAnalysis(const Function &F)
    : Numbering(F), Prob(F, Numbering), Solver(F, Prob) {
  Solver.solve();
}
